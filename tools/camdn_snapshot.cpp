// camdn_snapshot — save/load/inspect scheduler snapshots as files.
//
// Snapshots were in-memory byte buffers until this tool: writing the
// versioned encode() format to disk enables cross-process long-horizon
// runs (pause a serving simulation in one process, resume it in another)
// and crash recovery (periodically save, re-load after a crash). The file
// *is* the encoded snapshot — same magic, version and fingerprints, so
// decode rejects truncation, corruption and legacy versions exactly as
// in-process restore does.
//
//   camdn_snapshot save <file> [--kind K] [--boundary CYCLES] [--seed N]
//       runs the built-in demo scenario of K until the first pause point
//       at/after the boundary (mid-layer: transfers may be in flight) and
//       writes the snapshot to <file>;
//   camdn_snapshot load <file> [--kind K] [--seed N]
//       reconstructs the identical scenario, exact-resumes from the file
//       and runs to completion (fingerprints must match the flags);
//   camdn_snapshot inspect <file> [--json]
//       prints the header, in-flight state and section sizes without
//       simulating anything; --json emits one machine-readable JSON
//       object instead (numeric leaves flatten into camdn_report
//       metrics, so snapshots diff like any other run dump).
//
// Scenario kinds: closed, poisson, mmpp, churn, hybrid (closed-loop +
// churn). The scenario is a pure function of the flags, so a file saved by
// one process resumes bit-identically in another.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "model/model_zoo.h"
#include "runtime/scheduler.h"
#include "runtime/scheduler_snapshot.h"
#include "runtime/workload.h"
#include "sim/experiment.h"

namespace {

using camdn::cycle_t;
using camdn::runtime::scheduler_snapshot;

struct options {
    std::string command;
    std::string file;
    std::string kind = "poisson";
    cycle_t boundary = camdn::ms_to_cycles(2.0);
    std::uint64_t seed = 17;
    std::uint32_t arrivals = 12;
    std::uint32_t slots = 2;
    bool json = false;  ///< inspect: machine-readable output
};

void usage() {
    std::cerr
        << "usage: camdn_snapshot <save|load|inspect> <file>\n"
           "         [--kind closed|poisson|mmpp|churn|hybrid]\n"
           "         [--boundary CYCLES] [--seed N] [--arrivals N] "
           "[--slots N] [--json]\n"
           "save: run the demo scenario to the boundary, snapshot to file\n"
           "load: exact-resume the scenario from file, run to completion\n"
           "inspect: print header, in-flight state and section sizes\n"
           "         (--json: one JSON object for camdn_report)\n";
}

bool parse(int argc, char** argv, options& opt) {
    if (argc < 3) return false;
    opt.command = argv[1];
    opt.file = argv[2];
    for (int i = 3; i < argc; i += 2) {
        const std::string flag = argv[i];
        if (flag == "--json") {  // valueless
            opt.json = true;
            i -= 1;
            continue;
        }
        if (i + 1 >= argc) return false;  // flag missing its value
        const std::string val = argv[i + 1];
        if (flag == "--kind")
            opt.kind = val;
        else if (flag == "--boundary")
            opt.boundary = std::stoull(val);
        else if (flag == "--seed")
            opt.seed = std::stoull(val);
        else if (flag == "--arrivals")
            opt.arrivals = static_cast<std::uint32_t>(std::stoul(val));
        else if (flag == "--slots")
            opt.slots = static_cast<std::uint32_t>(std::stoul(val));
        else
            return false;
    }
    return opt.command == "save" || opt.command == "load" ||
           opt.command == "inspect";
}

/// The built-in demo scenario: a pure function of the flags, so save and
/// load construct fingerprint-identical configurations across processes.
camdn::sim::experiment_config demo_config(const options& opt) {
    using camdn::runtime::workload_kind;
    using camdn::sim::policy;
    camdn::sim::experiment_config cfg;
    cfg.workload = {&camdn::model::model_by_abbr("MB."),
                    &camdn::model::model_by_abbr("EF.")};
    cfg.co_located = opt.slots;
    cfg.telemetry = true;
    cfg.seed = opt.seed;
    if (opt.kind == "closed") {
        cfg.kind = workload_kind::closed_loop;
        cfg.pol = policy::moca;
        cfg.inferences_per_slot = opt.arrivals;
        cfg.think_time_ms = 1.0;
    } else if (opt.kind == "poisson") {
        cfg.kind = workload_kind::open_loop_poisson;
        cfg.pol = policy::camdn_full;
        cfg.arrival_rate_per_ms = 1.0;
        cfg.total_arrivals = opt.arrivals;
        cfg.admission_queue_limit = 8;
    } else if (opt.kind == "mmpp") {
        cfg.kind = workload_kind::open_loop_mmpp;
        cfg.pol = policy::camdn_adaptive;
        cfg.arrival_rate_per_ms = 1.0;
        cfg.mmpp_rate_scale = {0.25, 3.0};
        cfg.mmpp_sojourn_ms = 3.0;
        cfg.total_arrivals = opt.arrivals;
        cfg.admission_queue_limit = camdn::runtime::unbounded_queue;
    } else if (opt.kind == "churn") {
        cfg.kind = workload_kind::tenant_churn;
        cfg.pol = policy::camdn_full;
        cfg.workload.push_back(&camdn::model::model_by_abbr("RS."));
        cfg.workload.push_back(&camdn::model::model_by_abbr("VT."));
        cfg.arrival_rate_per_ms = 0.6;
        cfg.churn_interval_ms = 4.0;
        cfg.churn_active_models = 2;
        cfg.total_arrivals = opt.arrivals;
        cfg.admission_queue_limit = 8;
    } else if (opt.kind == "hybrid") {
        cfg.kind = workload_kind::closed_loop_churn;
        cfg.pol = policy::camdn_full;
        cfg.workload.push_back(&camdn::model::model_by_abbr("RS."));
        cfg.inferences_per_slot = opt.arrivals;
        cfg.think_time_ms = 1.0;
        cfg.churn_interval_ms = 4.0;
        cfg.churn_active_models = 2;
    } else {
        throw std::invalid_argument("unknown scenario kind: " + opt.kind);
    }
    return cfg;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("short write to " + path);
}

int cmd_save(const options& opt) {
    const auto cfg = demo_config(opt);
    auto gen = camdn::runtime::make_workload_generator(cfg);
    camdn::runtime::scheduler sched(cfg, *gen);
    const bool paused = sched.run_segment(opt.boundary);
    const scheduler_snapshot snap = sched.save();
    const auto bytes = snap.encode();
    write_file(opt.file, bytes);
    std::cout << "saved " << bytes.size() << " bytes to " << opt.file
              << (paused ? " (paused" : " (completed")
              << " at cycle " << snap.now << ", " << snap.running.size()
              << " inference(s) in flight, " << snap.admission_queue.size()
              << " queued)\n";
    return 0;
}

int cmd_load(const options& opt) {
    const auto cfg = demo_config(opt);
    const auto snap = scheduler_snapshot::decode(read_file(opt.file));
    auto gen = camdn::runtime::make_workload_generator(cfg);
    camdn::runtime::scheduler sched(cfg, *gen, snap,
                                    camdn::runtime::resume_mode::exact);
    const auto res = sched.run();
    std::cout << "resumed from cycle " << snap.now << " and ran to cycle "
              << res.makespan << ": " << res.completions.size()
              << " completions, "
              << res.dram_total_bytes / (1024.0 * 1024.0) << " MiB DRAM\n";
    return 0;
}

/// Machine-readable inspect: one JSON object whose numeric leaves flatten
/// into camdn_report metrics (so two snapshots diff like two run dumps).
/// Mirrors the text report's fields; section parse failures degrade to
/// omitting that group rather than failing the inspect.
int cmd_inspect_json(const std::vector<std::uint8_t>& bytes,
                     const scheduler_snapshot& snap) {
    std::ostream& o = std::cout;
    o << "{\"snapshot\":{"
      << "\"bytes\":" << bytes.size()
      << ",\"version\":" << scheduler_snapshot::version
      << ",\"machine_fingerprint\":\"0x" << std::hex
      << snap.machine_fingerprint << "\""
      << ",\"run_fingerprint\":\"0x" << snap.run_fingerprint << "\""
      << std::dec
      << ",\"clock\":" << snap.now
      << ",\"event_seq\":" << snap.event_seq
      << ",\"slots\":" << snap.slots
      << ",\"bw_timer_armed\":" << (snap.bw_timer_armed ? 1 : 0)
      << ",\"admission_queue\":" << snap.admission_queue.size()
      << ",\"in_flight\":" << snap.running.size() << "}";

    o << ",\"running\":[";
    for (std::size_t i = 0; i < snap.running.size(); ++i) {
        const auto& rs = snap.running[i];
        o << (i ? "," : "") << "{\"slot\":" << rs.slot << ",\"model\":\""
          << rs.model << "\",\"layer\":" << rs.current_layer
          << ",\"cores\":" << rs.cores.size()
          << ",\"negotiating\":" << (rs.neg_armed ? 1 : 0) << "}";
    }
    o << "]";

    try {
        std::uint64_t runs = 0, flights = 0, typed = 0;
        if (!snap.engine.empty()) {
            camdn::snapshot_reader r(snap.engine);
            runs = r.u64();
            for (std::uint64_t i = 0; i < runs; ++i) {
                r.i32();
                r.i32();
                r.u64();
                r.u64();
                r.u32();
                r.u64();
                r.u64();
                r.u8();
                for (int f = 0; f < 4; ++f) r.u64();
            }
            r.u64();  // next flight id
            flights = r.u64();
        }
        if (!snap.typed_events.empty()) {
            camdn::snapshot_reader r(snap.typed_events);
            typed = r.u64();
        }
        o << ",\"engine\":{\"layer_runs\":" << runs
          << ",\"dma_flights\":" << flights
          << ",\"pending_typed_events\":" << typed << "}";
    } catch (const camdn::snapshot_error&) {
    }

    try {
        if (!snap.telemetry.empty()) {
            camdn::snapshot_reader r(snap.telemetry);
            const std::uint64_t epoch_start = r.u64();
            const std::uint64_t slots = r.u64();
            std::uint64_t open_layers = 0, open_completions = 0;
            for (std::uint64_t s = 0; s < slots; ++s) {
                std::uint64_t c[15];
                for (auto& v : c) v = r.u64();
                r.i64();
                open_layers += c[5];
                open_completions += c[12];
            }
            const std::uint64_t epochs = r.u64();
            std::uint64_t layers = 0, completions = 0, dma_bytes = 0;
            std::uint64_t hits = 0, misses = 0, waits = 0, timeouts = 0;
            std::uint64_t dram_bytes = 0;
            for (std::uint64_t e = 0; e < epochs; ++e) {
                r.u64();
                r.u64();
                r.u64();
                const std::uint64_t n = r.u64();
                for (std::uint64_t s = 0; s < n; ++s) {
                    std::uint64_t c[15];
                    for (auto& v : c) v = r.u64();
                    r.i64();
                    hits += c[0];
                    misses += c[1];
                    dma_bytes += c[4];
                    layers += c[5];
                    waits += c[9];
                    timeouts += c[10];
                    completions += c[12];
                }
                dram_bytes += r.u64();
                r.u64();
                r.d();
                r.u32();
                r.u32();
            }
            o << ",\"telemetry\":{\"epochs\":" << epochs
              << ",\"open_epoch_start\":" << epoch_start
              << ",\"open_layers\":" << open_layers
              << ",\"open_completions\":" << open_completions
              << ",\"layers\":" << layers
              << ",\"completions\":" << completions
              << ",\"dma_bytes\":" << dma_bytes
              << ",\"dram_bytes\":" << dram_bytes
              << ",\"cache_hits\":" << hits
              << ",\"cache_misses\":" << misses
              << ",\"page_wait_cycles\":" << waits
              << ",\"page_timeouts\":" << timeouts << "}";
        }
    } catch (const camdn::snapshot_error&) {
    }

    o << ",\"sections\":{"
      << "\"machine\":" << snap.machine.size()
      << ",\"engine\":" << snap.engine.size()
      << ",\"typed_events\":" << snap.typed_events.size()
      << ",\"telemetry\":" << snap.telemetry.size()
      << ",\"controller\":" << snap.controller.size()
      << ",\"workload\":" << snap.workload.size()
      << ",\"results\":" << snap.results.size() << "}}\n";
    return 0;
}

int cmd_inspect(const options& opt) {
    const auto bytes = read_file(opt.file);
    const auto snap = scheduler_snapshot::decode(bytes);
    if (opt.json) return cmd_inspect_json(bytes, snap);

    std::cout << "camdn scheduler snapshot (" << bytes.size() << " bytes)\n"
              << "  version:              " << scheduler_snapshot::version
              << "\n"
              << "  machine fingerprint:  0x" << std::hex
              << snap.machine_fingerprint << "\n"
              << "  run fingerprint:      0x" << snap.run_fingerprint
              << std::dec << "\n"
              << "  clock:                " << snap.now << " cycles\n"
              << "  event seq:            " << snap.event_seq << "\n"
              << "  slots:                " << snap.slots << "\n"
              << "  bw timer:             "
              << (snap.bw_timer_armed
                      ? "armed at " + std::to_string(snap.bw_timer_when)
                      : std::string("idle"))
              << "\n"
              << "  admission queue:      " << snap.admission_queue.size()
              << " request(s)\n"
              << "  in-flight inferences: " << snap.running.size() << "\n";
    for (const auto& rs : snap.running) {
        std::cout << "    slot " << rs.slot << ": " << rs.model << " layer "
                  << rs.current_layer << ", " << rs.cores.size()
                  << " core(s)"
                  << (rs.neg_armed ? ", page negotiation pending" : "")
                  << "\n";
    }

    // The engine section: layer-run cursors, then DMA flights. This
    // mirrors the save_state layouts of sim::layer_engine and
    // npu::dma_engine for the current snapshot version (decode above
    // already rejected any other version); a parse failure here is
    // reported without failing the inspect.
    try {
        if (!snap.engine.empty()) {
            camdn::snapshot_reader r(snap.engine);
            const std::uint64_t runs = r.u64();
            for (std::uint64_t i = 0; i < runs; ++i) {
                const std::int32_t slot = r.i32();
                r.i32();  // candidate index
                const std::uint64_t idx = r.u64();
                r.u64();  // load_tile
                const std::uint32_t loads = r.u32();
                r.u64();  // load_latest
                const std::uint64_t stores = r.u64();
                r.u8();   // all_issued
                for (int f = 0; f < 4; ++f) r.u64();  // horizons
                std::cout << "  layer run (slot " << slot
                          << "): tile cursor " << idx << ", " << loads
                          << " load(s) and " << stores
                          << " store(s) outstanding\n";
            }
            r.u64();  // next flight id
            const std::uint64_t flights = r.u64();
            std::cout << "  dma flights:          " << flights << "\n";
        }
        if (!snap.typed_events.empty()) {
            camdn::snapshot_reader r(snap.typed_events);
            const std::uint64_t n = r.u64();
            std::cout << "  pending typed events: " << n << "\n";
        }
    } catch (const camdn::snapshot_error& e) {
        std::cout << "  (engine section did not parse: " << e.what() << ")\n";
    }

    // Telemetry summary: epoch count, open-epoch state and the counter
    // totals across the recorded history (mirrors adapt::telemetry_bus::
    // save_state for the current snapshot version).
    try {
        if (!snap.telemetry.empty()) {
            camdn::snapshot_reader r(snap.telemetry);
            const std::uint64_t epoch_start = r.u64();
            const std::uint64_t slots = r.u64();
            // Open-epoch counters: layers retired / completions accumulated
            // since the last cut tell whether the epoch has content.
            std::uint64_t open_layers = 0, open_completions = 0;
            for (std::uint64_t s = 0; s < slots; ++s) {
                std::uint64_t c[15];
                for (auto& v : c) v = r.u64();
                r.i64();  // slack_cycles
                open_layers += c[5];
                open_completions += c[12];
            }
            const std::uint64_t epochs = r.u64();
            std::uint64_t layers = 0, completions = 0, dma_bytes = 0;
            std::uint64_t hits = 0, misses = 0, waits = 0, timeouts = 0;
            std::uint64_t dram_bytes = 0;
            for (std::uint64_t e = 0; e < epochs; ++e) {
                r.u64();  // index
                r.u64();  // start
                r.u64();  // end
                const std::uint64_t n = r.u64();
                for (std::uint64_t s = 0; s < n; ++s) {
                    std::uint64_t c[15];
                    for (auto& v : c) v = r.u64();
                    r.i64();  // slack_cycles
                    hits += c[0];
                    misses += c[1];
                    dma_bytes += c[4];
                    layers += c[5];
                    waits += c[9];
                    timeouts += c[10];
                    completions += c[12];
                }
                dram_bytes += r.u64();
                r.u64();  // dram_throttled
                r.d();    // bw_utilization
                r.u32();  // idle_pages
                r.u32();  // active_slots
            }
            std::cout << "  telemetry epochs:     " << epochs
                      << " (open epoch since cycle " << epoch_start << ": "
                      << open_layers << " layer(s), " << open_completions
                      << " completion(s))\n"
                      << "  telemetry totals:     " << layers << " layers, "
                      << completions << " completions, "
                      << dma_bytes / (1024.0 * 1024.0) << " MiB DMA, "
                      << dram_bytes / (1024.0 * 1024.0) << " MiB DRAM\n"
                      << "                        cache " << hits << " hit(s) / "
                      << misses << " miss(es), page-wait " << waits
                      << " cycle(s), " << timeouts << " timeout(s)\n";
        }
    } catch (const camdn::snapshot_error& e) {
        std::cout << "  (telemetry section did not parse: " << e.what()
                  << ")\n";
    }

    auto section = [](const char* name, const std::vector<std::uint8_t>& b) {
        std::cout << "  section " << name << ": " << b.size() << " bytes\n";
    };
    section("machine     ", snap.machine);
    section("engine      ", snap.engine);
    section("typed_events", snap.typed_events);
    section("telemetry   ", snap.telemetry);
    section("controller  ", snap.controller);
    section("workload    ", snap.workload);
    section("results     ", snap.results);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    options opt;
    if (!parse(argc, argv, opt)) {
        usage();
        return 2;
    }
    try {
        if (opt.command == "save") return cmd_save(opt);
        if (opt.command == "load") return cmd_load(opt);
        return cmd_inspect(opt);
    } catch (const std::exception& e) {
        std::cerr << "camdn_snapshot: " << e.what() << "\n";
        return 1;
    }
}

// camdn_report — attribution summaries and run-to-run diffs of camdn
// metrics dumps.
//
// Loads one or two run dumps and either prints a latency-attribution
// summary (component taxonomy, per-tenant blame, interference matrix) or
// diffs every shared numeric metric between a baseline and a candidate
// run with configurable regression thresholds:
//
//   camdn_report <dump>
//       prints the attribution summary of one dump;
//   camdn_report --diff <baseline> <candidate>
//             [--rel-threshold R] [--abs-threshold A] [--all]
//       compares every numeric metric the two dumps share, classifies
//       each delta by a direction heuristic (latency/wait/stall/misses up
//       = worse, completions/hits/throughput down = worse) and exits
//       non-zero when any regression exceeds both thresholds.
//
// Accepted dump formats (auto-detected):
//   * a metrics_registry JSON dump ({"counters":{...},...});
//   * a metrics JSONL stream (serve::run_cluster's metrics_jsonl_path):
//     the final {"type":"metrics"} row supplies the registry and the last
//     {"type":"attribution"} row the cumulative fleet attribution;
//   * camdn_snapshot inspect --json output (any JSON object works — every
//     numeric leaf flattens to a dotted-path metric).
//
// The flattener is the contract: {"counters":{"attr.RS..compute_cycles":5}}
// becomes counters.attr.RS..compute_cycles = 5, so new exporter fields
// appear in diffs without tool changes.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- minimal JSON value parser ----------------------------------------

struct json_parser {
    const std::string& s;
    std::size_t i = 0;
    bool ok = true;

    void ws() {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                                s[i] == '\r'))
            ++i;
    }
    bool eat(char c) {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }
    std::string string() {
        std::string out;
        ws();
        if (i >= s.size() || s[i] != '"') {
            ok = false;
            return out;
        }
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size()) ++i;
            out += s[i++];
        }
        if (!eat('"') && i > 0 && s[i - 1] != '"') ok = false;
        return out;
    }
    /// Parses one value; numeric leaves land in `out` under `path`.
    void value(const std::string& path, std::map<std::string, double>& out) {
        ws();
        if (!ok || i >= s.size()) {
            ok = false;
            return;
        }
        switch (s[i]) {
            case '{': {
                ++i;
                if (eat('}')) return;
                do {
                    const std::string key = string();
                    if (!ok || !eat(':')) {
                        ok = false;
                        return;
                    }
                    value(path.empty() ? key : path + "." + key, out);
                } while (ok && eat(','));
                if (!eat('}')) ok = false;
                return;
            }
            case '[': {
                ++i;
                if (eat(']')) return;
                std::size_t idx = 0;
                do {
                    value(path + "[" + std::to_string(idx++) + "]", out);
                } while (ok && eat(','));
                if (!eat(']')) ok = false;
                return;
            }
            case '"':
                string();
                return;
            case 't':
                if (s.compare(i, 4, "true") == 0) {
                    i += 4;
                    out[path] = 1.0;
                } else {
                    ok = false;
                }
                return;
            case 'f':
                if (s.compare(i, 5, "false") == 0) {
                    i += 5;
                    out[path] = 0.0;
                } else {
                    ok = false;
                }
                return;
            case 'n':
                if (s.compare(i, 4, "null") == 0)
                    i += 4;
                else
                    ok = false;
                return;
            default: {
                const std::size_t start = i;
                if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
                while (i < s.size() &&
                       (std::isdigit(static_cast<unsigned char>(s[i])) ||
                        s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                        s[i] == '+' || s[i] == '-'))
                    ++i;
                if (i == start) {
                    ok = false;
                    return;
                }
                out[path] = std::strtod(s.c_str() + start, nullptr);
                return;
            }
        }
    }
};

/// Flattens one JSON text into dotted-path numeric leaves under `prefix`.
bool flatten(const std::string& text, const std::string& prefix,
             std::map<std::string, double>& out) {
    json_parser p{text};
    p.value(prefix, out);
    p.ws();
    return p.ok && p.i == text.size();
}

/// Loads a dump file: whole-file JSON, or a JSONL stream whose final
/// "metrics" row supplies the registry and whose last "attribution" row
/// the cumulative fleet attribution.
bool load_dump(const std::string& path, std::map<std::string, double>& out) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "camdn_report: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream whole;
    whole << in.rdbuf();
    const std::string text = whole.str();
    if (flatten(text, "", out)) return true;

    // JSONL: keep the last row of each interesting type.
    out.clear();
    std::istringstream lines(text);
    std::string line, metrics_row, attribution_row, fleet_round_row,
        scale_row;
    std::size_t parsed = 0, scale_rows = 0;
    while (std::getline(lines, line)) {
        if (line.empty()) continue;
        if (line.find("\"type\":\"metrics\"") != std::string::npos)
            metrics_row = line;
        else if (line.find("\"type\":\"attribution\"") != std::string::npos)
            attribution_row = line;
        else if (line.find("\"type\":\"fleet_round\"") != std::string::npos)
            fleet_round_row = line;
        else if (line.find("\"type\":\"scale_event\"") != std::string::npos) {
            scale_row = line;
            ++scale_rows;
        }
        ++parsed;
    }
    if (parsed == 0) {
        std::cerr << "camdn_report: " << path << " is neither JSON nor JSONL\n";
        return false;
    }
    bool any = false;
    if (!metrics_row.empty()) {
        std::map<std::string, double> row;
        if (flatten(metrics_row, "", row)) {
            // Strip the "payload." wrapper: the registry dump's own
            // counters./gauges./histograms. paths are the metric names.
            for (const auto& [k, v] : row) {
                const std::string want = "payload.";
                if (k.compare(0, want.size(), want) == 0)
                    out[k.substr(want.size())] = v;
            }
            any = true;
        }
    }
    if (!attribution_row.empty() &&
        flatten(attribution_row, "attribution", out))
        any = true;
    // Long-horizon context rides along under its own prefixes: the last
    // fleet_round row (round progress, live fleet width) and the last
    // scale_event row plus the event count. Diffable like every other
    // numeric leaf.
    if (!fleet_round_row.empty()) flatten(fleet_round_row, "fleet_round", out);
    if (!scale_row.empty() && flatten(scale_row, "scale_event", out))
        out["scale_event.count"] = static_cast<double>(scale_rows);
    if (!any)
        std::cerr << "camdn_report: no metrics or attribution rows in "
                  << path << "\n";
    return any;
}

// ---- summary ----------------------------------------------------------

const char* component_names[6] = {"queue_wait",      "page_wait",
                                  "dma_stall",       "dram_contention",
                                  "cache_penalty",   "compute"};

double get(const std::map<std::string, double>& m, const std::string& k) {
    const auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
}

void print_summary(const std::map<std::string, double>& m) {
    // Component totals come from either exporter: the metrics registry's
    // attr.total.* counters or a JSONL attribution row.
    double totals[6] = {};
    bool have = false;
    for (int c = 0; c < 6; ++c) {
        const std::string name = component_names[c];
        double v = get(m, "counters.attr.total." + name + "_cycles");
        if (v == 0.0) v = get(m, "attribution." + name);
        totals[c] = v;
        have |= v != 0.0;
    }
    if (have) {
        double sum = 0.0;
        for (const double v : totals) sum += v;
        std::printf("latency attribution (cycles)\n");
        std::printf("  %-16s %16s %7s\n", "component", "cycles", "share");
        for (int c = 0; c < 6; ++c)
            std::printf("  %-16s %16.0f %6.1f%%\n", component_names[c],
                        totals[c], sum > 0 ? 100.0 * totals[c] / sum : 0.0);
        std::printf("  %-16s %16.0f\n", "total", sum);
    } else {
        std::printf("no attribution totals in this dump\n");
    }

    // Per-tenant rollup and interference matrix from the registry keys
    // (attr.<tenant>.completed / attr.interference.<victim>.<holder>).
    std::map<std::string, double> tenants;
    std::vector<std::pair<std::string, double>> interference;
    for (const auto& [k, v] : m) {
        const std::string tpre = "counters.attr.";
        if (k.compare(0, tpre.size(), tpre) != 0) continue;
        const std::string rest = k.substr(tpre.size());
        const std::size_t dot = rest.rfind('.');
        if (dot == std::string::npos) continue;
        const std::string field = rest.substr(dot + 1);
        const std::string owner = rest.substr(0, dot);
        if (owner == "total" || owner.empty()) continue;
        if (owner.compare(0, 13, "interference.") == 0) {
            if (v != 0.0) interference.push_back({owner.substr(13), v});
        } else if (field == "completed") {
            tenants[owner] = v;
        }
    }
    if (!tenants.empty()) {
        std::printf("\nper-tenant attribution\n");
        std::printf("  %-8s %10s %16s %-16s\n", "tenant", "completed",
                    "latency_cycles", "top stall");
        for (const auto& [tenant, completed] : tenants) {
            const std::string base = "counters.attr." + tenant + ".";
            double worst = 0.0;
            const char* top = "none";
            for (int c = 1; c < 5; ++c) {  // the four blameable components
                const double v = get(
                    m, base + std::string(component_names[c]) + "_cycles");
                if (v > worst) {
                    worst = v;
                    top = component_names[c];
                }
            }
            std::printf("  %-8s %10.0f %16.0f %-16s\n", tenant.c_str(),
                        completed, get(m, base + "latency_cycles"), top);
        }
    }
    if (!interference.empty()) {
        std::printf("\ninterference (victim.holder -> cycles)\n");
        for (const auto& [pair, v] : interference)
            std::printf("  %-24s %16.0f\n", pair.c_str(), v);
    }

    // Fleet-scaling section (long-horizon autoscaled runs only): scale
    // counters from the registry plus the last scale_event / fleet_round
    // rows of the JSONL stream.
    const double adds = get(m, "counters.fleet.scale_adds");
    const double drains = get(m, "counters.fleet.scale_drains");
    const double retires = get(m, "counters.fleet.scale_retires");
    if (adds + drains + retires + get(m, "scale_event.count") != 0.0) {
        std::printf("\nfleet scaling\n");
        std::printf("  %-24s %.0f adds, %.0f drains, %.0f retires\n",
                    "scale events", adds, drains, retires);
        std::printf("  %-24s %.0f\n", "migrated requests",
                    get(m, "counters.fleet.migrated_requests"));
        if (m.count("scale_event.round"))
            std::printf(
                "  %-24s round %.0f, soc %.0f, %.0f active after "
                "(backlog %.2f, sla %.3f)\n",
                "last event", get(m, "scale_event.round"),
                get(m, "scale_event.soc"), get(m, "scale_event.active"),
                get(m, "scale_event.backlog"), get(m, "scale_event.sla"));
        if (m.count("fleet_round.round"))
            std::printf(
                "  %-24s round %.0f, %.0f active SoCs, %.0f completions\n",
                "last round", get(m, "fleet_round.round"),
                get(m, "fleet_round.active_socs"),
                get(m, "fleet_round.completions"));
    }
}

// ---- diff -------------------------------------------------------------

enum class direction { higher_is_worse, lower_is_worse, neutral };

bool contains_any(const std::string& key,
                  std::initializer_list<const char*> words) {
    for (const char* w : words)
        if (key.find(w) != std::string::npos) return true;
    return false;
}

/// Which way a metric regresses. Lower-is-worse words win ties ("cache
/// hits" must not be read as a wait metric).
direction direction_of(const std::string& key) {
    if (contains_any(key, {"completions", "completed", "hit", "throughput",
                           "deadline_met", "rounds"}))
        return direction::lower_is_worse;
    if (contains_any(key, {"latency", "wait", "stall", "contention",
                           "penalty", "miss", "timeout", "dropped",
                           "throttled", "eviction", "queue_delay"}))
        return direction::higher_is_worse;
    return direction::neutral;
}

int run_diff(const std::string& base_path, const std::string& cand_path,
             double rel_threshold, double abs_threshold, bool show_all) {
    std::map<std::string, double> base, cand;
    if (!load_dump(base_path, base) || !load_dump(cand_path, cand)) return 2;

    std::size_t shared = 0, changed = 0, regressions = 0;
    std::printf("%-52s %14s %14s %9s\n", "metric", "baseline", "candidate",
                "delta");
    for (const auto& [key, b] : base) {
        const auto it = cand.find(key);
        if (it == cand.end()) continue;
        ++shared;
        const double c = it->second;
        const double delta = c - b;
        if (delta == 0.0 && !show_all) continue;
        if (delta != 0.0) ++changed;

        const direction dir = direction_of(key);
        const bool worse = (dir == direction::higher_is_worse && delta > 0) ||
                           (dir == direction::lower_is_worse && delta < 0);
        const double rel =
            b != 0.0 ? std::fabs(delta) / std::fabs(b)
                     : (delta != 0.0 ? std::numeric_limits<double>::infinity()
                                     : 0.0);
        const bool regression = worse && std::fabs(delta) > abs_threshold &&
                                rel > rel_threshold;
        if (regression) ++regressions;
        if (delta != 0.0 || show_all)
            std::printf("%-52s %14.4g %14.4g %+8.2f%% %s\n", key.c_str(), b, c,
                        b != 0.0 ? 100.0 * delta / b : 0.0,
                        regression ? "REGRESSION"
                                   : (worse ? "worse" : ""));
    }
    std::printf("\n%zu shared metrics, %zu changed, %zu regressions "
                "(rel > %.3g and abs > %.3g)\n",
                shared, changed, regressions, rel_threshold, abs_threshold);
    if (shared == 0) {
        std::cerr << "camdn_report: the dumps share no metrics\n";
        return 2;
    }
    return regressions > 0 ? 1 : 0;
}

void usage() {
    std::cerr
        << "usage: camdn_report <dump>\n"
           "       camdn_report --diff <baseline> <candidate>\n"
           "           [--rel-threshold R] [--abs-threshold A] [--all]\n"
           "dump formats: metrics registry JSON, cluster metrics JSONL,\n"
           "camdn_snapshot inspect --json\n"
           "exit status: 0 ok, 1 regression found, 2 usage/load error\n";
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string first = argv[1];
    if (first == "--diff") {
        if (argc < 4) {
            usage();
            return 2;
        }
        double rel = 0.05, abs = 0.0;
        bool all = false;
        for (int i = 4; i < argc; ++i) {
            const std::string flag = argv[i];
            if (flag == "--all") {
                all = true;
            } else if (flag == "--rel-threshold" && i + 1 < argc) {
                rel = std::strtod(argv[++i], nullptr);
            } else if (flag == "--abs-threshold" && i + 1 < argc) {
                abs = std::strtod(argv[++i], nullptr);
            } else {
                usage();
                return 2;
            }
        }
        return run_diff(argv[2], argv[3], rel, abs, all);
    }
    if (first == "--help" || first == "-h") {
        usage();
        return 0;
    }
    std::map<std::string, double> dump;
    if (!load_dump(first, dump)) return 2;
    print_summary(dump);
    return 0;
}

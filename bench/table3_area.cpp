// Regenerates Table III: 45 nm area breakdown of one NPU core (with CPT)
// and one cache slice (with NEC) under the Table II configuration.
//
// Paper reference: CPT = 0.9% of the NPU, NEC = 0.3% of the slice —
// CaMDN's architectural additions are negligible.
#include <iostream>

#include "area/area_model.h"
#include "bench/harness.h"

using namespace camdn;

int main() {
    const auto b = area::estimate_area(npu::npu_config{}, cache::cache_config{});

    bench::banner(
        "Table III: area breakdown of the CaMDN architecture (45 nm)");

    auto print_side = [](const std::string& title,
                         const std::vector<area::area_item>& items,
                         double total) {
        std::cout << title << "  (total " << fmt_fixed(total / 1000.0, 0)
                  << "k um^2)\n";
        table_printer t({"Component", "Area(um^2)", "(%)"});
        for (const auto& item : items) {
            t.add_row({item.name, fmt_fixed(item.um2 / 1000.0, 0) + "k",
                       fmt_fixed(100.0 * item.um2 / total, 1)});
        }
        t.print(std::cout);
        std::cout << '\n';
    };

    print_side("NPU core", b.npu, b.npu_total());
    print_side("Cache slice", b.slice, b.slice_total());

    std::cout << "CaMDN additions: CPT = "
              << fmt_fixed(100.0 * b.of(b.npu, "CPT") / b.npu_total(), 2)
              << "% of the NPU [paper: 0.9%], NEC = "
              << fmt_fixed(100.0 * b.of(b.slice, "NEC") / b.slice_total(), 2)
              << "% of the slice [paper: 0.3%]\n";
    return 0;
}

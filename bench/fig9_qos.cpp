// Regenerates Figure 9: SLA satisfaction rate, system throughput (STP) and
// fairness for MoCA, AuRORA and CaMDN under QoS levels H/M/L (0.8x / 1.0x /
// 1.2x the Table I latency targets). CaMDN composes its cache scheduling
// with AuRORA's bandwidth and NPU allocators, as in the paper (§IV-A4).
//
// Paper reference: CaMDN improves SLA rate 5.9x, STP 2.5x and fairness
// 3.0x on average, with the largest gains at QoS-H.
#include <iostream>

#include "bench/harness.h"

using namespace camdn;

int main() {
    constexpr std::uint32_t co_located = 16;
    const sim::soc_config soc;
    const auto workload = bench::zoo();

    std::cout << "Computing isolated latencies (normalized-progress "
                 "reference)...\n";
    const auto& iso = sim::cached_isolated_latencies(soc, workload);

    const struct {
        const char* name;
        double scale;
    } levels[] = {{"QoS-H", 0.8}, {"QoS-M", 1.0}, {"QoS-L", 1.2}};
    const sim::policy pols[] = {sim::policy::moca, sim::policy::aurora,
                                sim::policy::camdn_full};

    // All (level, policy) cells as one parallel sweep.
    std::vector<sim::experiment_config> cfgs;
    for (const auto& level : levels) {
        for (const auto pol : pols) {
            sim::experiment_config cfg;
            cfg.soc = soc;
            cfg.pol = pol;
            cfg.co_located = co_located;
            cfg.inferences_per_slot = bench::fast_mode() ? 1 : 3;
            cfg.seed = 42;
            cfg.qos_mode = true;
            cfg.qos_scale = level.scale;
            cfgs.push_back(std::move(cfg));
        }
    }
    const auto results = sim::run_sweep(cfgs);

    std::cout << "\nFigure 9: QoS improvement (16 co-located tasks)\n";
    table_printer t({"Level", "Policy", "SLA rate", "STP", "Fairness"});
    double camdn_sla = 0, base_sla = 0, camdn_stp = 0, base_stp = 0,
           camdn_fair = 0, base_fair = 0;
    std::size_t idx = 0;
    for (const auto& level : levels) {
        for (const auto pol : pols) {
            const auto& res = results[idx++];
            const auto records = bench::qos_records(res, level.scale, iso);
            const auto m = runtime::compute_qos(records, co_located);
            t.add_row({level.name, sim::policy_name(pol),
                       fmt_fixed(m.sla_rate, 3), fmt_fixed(m.stp, 2),
                       fmt_fixed(m.fairness, 3)});
            if (pol == sim::policy::camdn_full) {
                camdn_sla += m.sla_rate;
                camdn_stp += m.stp;
                camdn_fair += m.fairness;
            }
            if (pol == sim::policy::aurora) {
                base_sla += m.sla_rate;
                base_stp += m.stp;
                base_fair += m.fairness;
            }
        }
    }
    t.print(std::cout);

    auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    std::cout << "\nCaMDN vs AuRORA averages over levels:\n"
              << "  SLA rate  " << fmt_fixed(ratio(camdn_sla, base_sla), 2)
              << "x   [paper: 5.9x vs baselines]\n"
              << "  STP       " << fmt_fixed(ratio(camdn_stp, base_stp), 2)
              << "x   [paper: 2.5x]\n"
              << "  Fairness  " << fmt_fixed(ratio(camdn_fair, base_fair), 2)
              << "x   [paper: 3.0x]\n";
    return 0;
}

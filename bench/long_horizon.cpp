// Long-horizon streaming serving: a million-arrival elastic fleet run.
//
// Exercises the pull-based stream_source (arrivals generated lazily, no
// O(total_arrivals) materialization), bounded history (per-round results
// fold at each barrier; the exact latency trackers are replaced by the P²
// streaming backend), and the autoscaler (MMPP bursts push queued backlog
// over the scale-up threshold, lulls drain it back down). The program
// asserts arrival conservation and, when CAMDN_RSS_CEILING_MB is set,
// exits non-zero if peak RSS exceeded the ceiling — the CI gate that the
// run really is O(fleet) memory, not O(arrivals).
//
//   ./long_horizon [total_arrivals]       (default 1,000,000)
//   CAMDN_METRICS_JSONL=path  stream telemetry + scale events during the run
//   CAMDN_RSS_CEILING_MB=N    fail if peak RSS exceeds N MiB
#include <sys/resource.h>

#include <cstdlib>
#include <cstring>

#include "bench/harness.h"
#include "serve/cluster.h"

using namespace camdn;

namespace {

double peak_rss_mb() {
    struct rusage ru {};
    getrusage(RUSAGE_SELF, &ru);
    // ru_maxrss is KiB on Linux.
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
    bench::banner(
        "Long-horizon streaming fleet: lazy arrivals, bounded history,\n"
        "elastic autoscaling under bursty MMPP load");

    std::uint32_t total = 1000000;
    if (argc > 1) total = static_cast<std::uint32_t>(std::atol(argv[1]));

    serve::soc_instance_config inst;
    inst.slots = 2;
    inst.admission_queue_limit = 8;

    auto cfg = serve::uniform_cluster(2, inst);
    cfg.models = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.total_arrivals = total;
    cfg.seed = 1234;

    // Bursty load: the high MMPP state massively oversubscribes the fleet
    // (arrivals drop cheaply at the admission bound, which is what keeps a
    // million-arrival run fast), the low state falls under capacity so
    // queues drain and the autoscaler can shed SoCs.
    cfg.process = serve::arrival_process::mmpp;
    cfg.arrival_rate_per_ms = 1000.0;
    cfg.mmpp_rate_scale = {0.002, 4.0};
    cfg.mmpp_sojourn_ms = 40.0;

    // Time-sliced rounds ~one sojourn long, so consecutive barriers see
    // different pressure regimes.
    cfg.feedback_rounds = 16;
    cfg.round_cycles = ms_to_cycles(40.0);
    cfg.qos_scale = 8.0;  // keep lull-round SLA healthy: drains are
                          // backlog-driven, adds are backlog/SLA-driven

    cfg.autoscale.enabled = true;
    cfg.autoscale.min_socs = 1;
    cfg.autoscale.max_socs = 6;
    cfg.autoscale.backlog_high = 6.0;
    cfg.autoscale.backlog_low = 0.5;
    cfg.autoscale.cooldown_rounds = 0;

    cfg.bounded_history = true;  // implies streaming quantiles
    cfg.history_records = 256;

    if (const char* path = std::getenv("CAMDN_METRICS_JSONL"))
        cfg.metrics_jsonl_path = path;

    const auto res = serve::run_cluster(cfg);

    if (res.arrivals != total) {
        std::fprintf(stderr, "arrival count mismatch: %llu != %u\n",
                     static_cast<unsigned long long>(res.arrivals), total);
        return 1;
    }
    if (res.arrivals !=
        res.completed + res.dropped_queue + res.dropped_unroutable) {
        std::fprintf(stderr, "arrival conservation violated\n");
        return 1;
    }
    if (!res.per_soc.empty()) {
        std::fprintf(stderr, "bounded history retained per-SoC results\n");
        return 1;
    }

    table_printer t({"metric", "value"});
    t.add_row({"arrivals", std::to_string(res.arrivals)});
    t.add_row({"completed", std::to_string(res.completed)});
    t.add_row({"dropped (queue)", std::to_string(res.dropped_queue)});
    t.add_row({"dropped (unroutable)", std::to_string(res.dropped_unroutable)});
    t.add_row({"events executed", std::to_string(res.events_executed)});
    t.add_row({"makespan (ms)", fmt_fixed(cycles_to_ms(res.makespan), 1)});
    t.add_row({"latency p50 (ms)", fmt_fixed(res.fleet_latency_ms.p50(), 3)});
    t.add_row({"latency p99 (ms)", fmt_fixed(res.fleet_latency_ms.p99(), 3)});
    t.add_row({"migrated requests", std::to_string(res.migrated_requests)});
    t.add_row({"round summaries", std::to_string(res.round_summaries.size())});
    t.add_row({"recent completions",
               std::to_string(res.recent_completions.size())});
    t.add_row({"peak RSS (MiB)", fmt_fixed(peak_rss_mb(), 1)});
    t.print(std::cout);

    std::uint64_t adds = 0, drains = 0, retires = 0;
    std::cout << "\nscale events\n";
    for (const auto& ev : res.scale_events) {
        std::printf("  round %2u %-7s soc %2u -> %u active"
                    "  (backlog %5.2f, sla %.3f, migrated %llu)\n",
                    ev.round, serve::scale_event_kind_name(ev.kind),
                    ev.soc_id, ev.active_after, ev.backlog, ev.sla,
                    static_cast<unsigned long long>(ev.migrated));
        switch (ev.kind) {
            case serve::scale_event_kind::add: ++adds; break;
            case serve::scale_event_kind::drain: ++drains; break;
            case serve::scale_event_kind::retire: ++retires; break;
        }
    }
    if (res.scale_events.empty()) std::cout << "  (none)\n";

    bench::json_report(
        "long_horizon",
        {bench::jint("arrivals", res.arrivals),
         bench::jint("completed", res.completed),
         bench::jint("dropped_queue", res.dropped_queue),
         bench::jint("dropped_unroutable", res.dropped_unroutable),
         bench::jint("events_executed", res.events_executed),
         bench::jnum("p50_ms", res.fleet_latency_ms.p50()),
         bench::jnum("p99_ms", res.fleet_latency_ms.p99()),
         bench::jint("scale_adds", adds), bench::jint("scale_drains", drains),
         bench::jint("scale_retires", retires),
         bench::jint("migrated_requests", res.migrated_requests),
         bench::jnum("peak_rss_mb", peak_rss_mb())});

    std::cout << "\nThe stream is generated lazily and per-round results\n"
                 "fold at each barrier, so memory stays O(fleet) while the\n"
                 "arrival count scales to millions; the autoscaler reacts\n"
                 "to the queued backlog each MMPP regime leaves behind.\n";

    if (const char* ceiling = std::getenv("CAMDN_RSS_CEILING_MB")) {
        const double limit = std::atof(ceiling);
        const double rss = peak_rss_mb();
        if (limit > 0.0 && rss > limit) {
            std::fprintf(stderr,
                         "peak RSS %.1f MiB exceeds ceiling %.1f MiB\n", rss,
                         limit);
            return 1;
        }
        std::printf("peak RSS %.1f MiB within ceiling %.1f MiB\n", rss,
                    limit);
    }
    return 0;
}

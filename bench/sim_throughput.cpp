// Raw simulator speed harness — the committed perf trajectory.
//
// Runs a fixed set of scenarios (single-SoC closed loop, open-loop
// Poisson, multi-SoC fleet) and reports, per scenario: simulated cycles,
// executed events, wall time, events/sec and simulated Mcycles/sec.
// Mapping (the offline phase) is warmed before the timer starts, so the
// numbers measure the event engine + machine model, not the mapper.
//
// Output rides the CAMDN_BENCH_JSON reporter (schema 2); each row carries
// a "phase" tag (CAMDN_BENCH_PHASE, default "dev") so the committed
// BENCH_sim_throughput.json holds the pre-/post-optimization trajectory:
//   CAMDN_BENCH_PHASE=baseline CAMDN_BENCH_JSON=out.json ./sim_throughput
//
// Regression check (CI perf-smoke, no python needed):
//   ./sim_throughput --check BENCH_sim_throughput.json
// re-runs the scenarios and fails loudly when any measured events/sec
// falls below (1 - tolerance) x the committed reference (the last
// "optimized" row per scenario, else the last row). The tolerance is
// generous by design — CI machines vary — and tunable via
// CAMDN_PERF_TOLERANCE (fraction, default 0.6). REPRO_FAST=1 shrinks the
// scenarios for smoke runs; the committed file carries both fast and full
// rows, and the check compares against the matching variant.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "obs/attribution.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/cluster.h"
#include "sim/mapping_registry.h"

namespace {

using namespace camdn;

struct measurement {
    std::string scenario;
    std::uint64_t sim_cycles = 0;
    std::uint64_t events = 0;
    double wall_ms = 0.0;
    std::uint32_t reps = 1;

    double events_per_s() const {
        return wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms * 1e-3)
                             : 0.0;
    }
    double mcycles_per_s() const {
        return wall_ms > 0.0
                   ? static_cast<double>(sim_cycles) / (wall_ms * 1e-3) / 1e6
                   : 0.0;
    }
};

double now_ms() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

/// Runs `body` `reps` times; returns (best wall ms, result of last run).
/// The repeated runs double as a determinism check: every repetition must
/// report identical simulated cycles and event counts.
template <typename Fn>
measurement time_scenario(const std::string& name, std::uint32_t reps,
                          Fn body) {
    measurement m;
    m.scenario = name;
    m.reps = reps;
    for (std::uint32_t r = 0; r < reps; ++r) {
        const double t0 = now_ms();
        const auto [cycles, events] = body();
        const double wall = now_ms() - t0;
        if (r == 0) {
            m.sim_cycles = cycles;
            m.events = events;
            m.wall_ms = wall;
        } else {
            if (cycles != m.sim_cycles || events != m.events) {
                std::fprintf(stderr,
                             "sim_throughput: %s is nondeterministic "
                             "(rep %u: %llu cycles / %llu events, rep 0: "
                             "%llu / %llu)\n",
                             name.c_str(), r,
                             static_cast<unsigned long long>(cycles),
                             static_cast<unsigned long long>(events),
                             static_cast<unsigned long long>(m.sim_cycles),
                             static_cast<unsigned long long>(m.events));
                std::exit(2);
            }
            m.wall_ms = std::min(m.wall_ms, wall);
        }
    }
    return m;
}

sim::experiment_config base_experiment() {
    sim::experiment_config cfg;
    cfg.pol = sim::policy::camdn_full;
    cfg.features = sim::camdn_features{};  // bypass + multicast + lbm on
    cfg.workload = bench::zoo();
    cfg.co_located = 8;
    cfg.seed = 42;
    return cfg;
}

/// Runs one single-SoC scenario, optionally with the full observability
/// stack attached (trace recorder with chunk events, metrics registry,
/// epoch JSONL sink, host profiler, latency attributor) — the obs_on
/// timed body also pays for serializing the trace, metrics and
/// attribution row, since a real observed run does.
measurement run_experiment_scenario(const std::string& name,
                                    sim::experiment_config cfg,
                                    std::uint32_t reps, bool obs_on) {
    return time_scenario(name, reps, [&cfg, obs_on]() {
        // Bounded trace: the long scenarios overflow any cap — the
        // recorder counts what it drops — so a quarter-million events
        // bounds record/export/serialize cost without losing information
        // the full default cap would have kept either.
        obs::trace_recorder trace(0, std::size_t{1} << 18);
        obs::metrics_registry metrics;
        obs::jsonl_sink epochs;
        obs::profiler prof;
        obs::latency_attributor attr;
        if (obs_on) {
            trace.set_chunk_events(true);
            // The obs fast lane's default chunk sampling: the chunk lane
            // outnumbers every other trace category by an order of
            // magnitude, so recording (and later exporting) every 32nd
            // keeps the timeline representative at a fraction of the
            // cost. Deterministic — sampling is count-based on the chunk
            // issue order.
            trace.set_chunk_sample_every(32);
            trace.set_flight_sample_every(8);
            // Sampled scope charging: per-burst/per-chunk scopes fire tens
            // of millions of times per run; reading the TSC at every 64th
            // transition keeps the subsystem shares representative at ~2%
            // of the cost.
            prof.set_sample_every(64);
            cfg.obs.trace = &trace;
            cfg.obs.metrics = &metrics;
            cfg.obs.epochs = &epochs;
            cfg.obs.prof = &prof;
            cfg.obs.attr = &attr;
        }
        const auto t_run0 = std::chrono::steady_clock::now();
        const auto res = sim::run_experiment(cfg);
        const auto t_run1 = std::chrono::steady_clock::now();
        if (obs_on) {
            std::ostringstream sink;
            obs::write_chrome_trace(sink, trace.events());
            metrics.write_json(sink);
            sink << attr.jsonl_row(0, 0);
            const auto t_exp = std::chrono::steady_clock::now();
            if (std::getenv("CAMDN_OBS_DEBUG") != nullptr) {
                std::ostringstream prof_json;
                prof.write_json(prof_json);
                std::fprintf(
                    stderr,
                    "[obs] run=%.1fms export=%.1fms trace_events=%zu "
                    "dropped=%llu prof=%s\n",
                    std::chrono::duration<double, std::milli>(t_run1 - t_run0)
                        .count(),
                    std::chrono::duration<double, std::milli>(t_exp - t_run1)
                        .count(),
                    trace.size(),
                    static_cast<unsigned long long>(trace.dropped()),
                    prof_json.str().c_str());
            }
            cfg.obs = {};
        }
        return std::make_pair(res.makespan, res.events_executed);
    });
}

sim::experiment_config closed_loop_config(bool fast) {
    auto cfg = base_experiment();
    cfg.kind = runtime::workload_kind::closed_loop;
    cfg.inferences_per_slot = fast ? 2 : 6;
    return cfg;
}

sim::experiment_config poisson_config(bool fast) {
    auto cfg = base_experiment();
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.arrival_rate_per_ms = 4.0;
    cfg.total_arrivals = fast ? 96 : 512;
    cfg.admission_queue_limit = 64;
    return cfg;
}

measurement run_fleet(bool fast, std::uint32_t reps, bool obs_on = false) {
    serve::cluster_config cfg = serve::uniform_cluster(4);
    cfg.arrival_rate_per_ms = 8.0;
    cfg.total_arrivals = fast ? 128 : 640;
    cfg.seed = 42;
    cfg.threads = 1;  // wall time measures one core, not the pool width
    if (obs_on) {
        // File-backed outputs (cwd-relative, like the committed bench
        // JSON), as a real observed fleet run would use.
        cfg.trace_path = "sim_throughput_obs_trace.json";
        cfg.metrics_jsonl_path = "sim_throughput_obs_metrics.jsonl";
        cfg.attribution = true;  // implied by the paths; explicit anyway
        // Bounded master trace (see run_experiment_scenario): the fleet
        // overflows any cap; a bounded one caps the absorb/export/file
        // cost and dropped events are counted.
        cfg.trace_max_events = std::size_t{1} << 18;
        // Sampled flight lane: one completion event per DMA flight is
        // still over a million events in this scenario; every 8th keeps
        // the timeline shape at a fraction of the record/fold cost.
        cfg.trace_flight_sample_every = 8;
    }
    return time_scenario("fleet", reps, [&cfg]() {
        const auto res = serve::run_cluster(cfg);
        return std::make_pair(res.makespan, res.events_executed);
    });
}

// ---- committed-baseline comparison ---------------------------------------
//
// The committed file is written by bench::json_reporter — a flat JSON
// array, one object per line. The extractor below only needs to read that
// shape back; it is not a general JSON parser.

std::string get_str(const std::string& row, const std::string& key) {
    const std::string pat = "\"" + key + "\": \"";
    const auto at = row.find(pat);
    if (at == std::string::npos) return "";
    const auto from = at + pat.size();
    const auto end = row.find('"', from);
    return end == std::string::npos ? "" : row.substr(from, end - from);
}

double get_num(const std::string& row, const std::string& key) {
    const std::string pat = "\"" + key + "\": ";
    const auto at = row.find(pat);
    if (at == std::string::npos) return 0.0;
    return std::atof(row.c_str() + at + pat.size());
}

struct committed_row {
    std::string scenario;
    std::string phase;
    std::string base_phase;  ///< the obs_off phase an obs_on row rode on
    std::string mode;
    double events_per_s = 0.0;
};

std::vector<committed_row> load_committed(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "sim_throughput: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::vector<committed_row> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"bench\": \"sim_throughput\"") == std::string::npos)
            continue;
        committed_row r;
        r.scenario = get_str(line, "scenario");
        r.phase = get_str(line, "phase");
        r.base_phase = get_str(line, "base_phase");
        r.mode = get_str(line, "mode");
        r.events_per_s = get_num(line, "events_per_s");
        if (!r.scenario.empty() && r.events_per_s > 0.0) rows.push_back(r);
    }
    return rows;
}

/// Committed rate for one scenario/mode at a named phase (the last
/// matching row — phases may be re-recorded over the file's history).
double phase_rate(const std::vector<committed_row>& rows,
                  const std::string& scenario, const std::string& mode,
                  const std::string& phase) {
    double rate = 0.0;
    for (const auto& r : rows)
        if (r.scenario == scenario && r.mode == mode && r.phase == phase)
            rate = r.events_per_s;
    return rate;
}

/// Reference rate for one scenario: the last "batched" row of the matching
/// fast/full mode, else the last "optimized" row, else the last matching
/// obs_off row of any phase. Newer optimization phases supersede older
/// ones as the floor the current build must clear.
double reference_rate(const std::vector<committed_row>& rows,
                      const std::string& scenario, const std::string& mode) {
    double any = 0.0;
    for (const auto& r : rows) {
        if (r.scenario != scenario || r.mode != mode) continue;
        if (r.phase == "obs_on") continue;  // gated separately
        any = r.events_per_s;
    }
    const double batched = phase_rate(rows, scenario, mode, "batched");
    if (batched > 0.0) return batched;
    const double optimized = phase_rate(rows, scenario, mode, "optimized");
    return optimized > 0.0 ? optimized : any;
}

/// Committed obs_on rate for one scenario/mode: the last row whose
/// base_phase is "batched", else the last obs_on row of any vintage.
double obs_reference_rate(const std::vector<committed_row>& rows,
                          const std::string& scenario,
                          const std::string& mode) {
    double any = 0.0, batched = 0.0;
    for (const auto& r : rows) {
        if (r.scenario != scenario || r.mode != mode || r.phase != "obs_on")
            continue;
        any = r.events_per_s;
        if (r.base_phase == "batched") batched = r.events_per_s;
    }
    return batched > 0.0 ? batched : any;
}

double baseline_rate(const std::vector<committed_row>& rows,
                     const std::string& scenario, const std::string& mode) {
    for (const auto& r : rows)
        if (r.scenario == scenario && r.mode == mode && r.phase == "baseline")
            return r.events_per_s;
    return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--check BENCH_sim_throughput.json]\n",
                         argv[0]);
            return 2;
        }
    }

    const bool fast = bench::fast_mode();
    const std::uint32_t reps = fast ? 2 : 3;
    const char* phase_env = std::getenv("CAMDN_BENCH_PHASE");
    const std::string phase = phase_env != nullptr ? phase_env : "dev";
    const std::string mode = fast ? "fast" : "full";

    bench::banner("Simulator raw throughput (" + mode + " scenarios, best of " +
                  std::to_string(reps) + " reps)");

    // Warm the mapping registry: the offline phase is not what this bench
    // measures, and the first scenario must not pay for it.
    {
        const sim::soc_config soc{};
        for (const auto* m : bench::zoo()) sim::mapping_for(*m, soc.mapper());
    }

    std::vector<measurement> results;
    results.push_back(
        run_experiment_scenario("closed_loop", closed_loop_config(fast), reps,
                                false));
    results.push_back(
        run_experiment_scenario("poisson", poisson_config(fast), reps, false));
    results.push_back(run_fleet(fast, reps));

    std::printf("%-12s %14s %12s %10s %14s %12s\n", "scenario", "sim_cycles",
                "events", "wall_ms", "events/s", "Mcycles/s");
    for (const auto& m : results) {
        std::printf("%-12s %14llu %12llu %10.1f %14.0f %12.1f\n",
                    m.scenario.c_str(),
                    static_cast<unsigned long long>(m.sim_cycles),
                    static_cast<unsigned long long>(m.events), m.wall_ms,
                    m.events_per_s(), m.mcycles_per_s());
        bench::json_report(
            "sim_throughput",
            {bench::jstr("scenario", m.scenario), bench::jstr("phase", phase),
             bench::jstr("mode", mode), bench::jint("reps", m.reps),
             bench::jint("sim_cycles", m.sim_cycles),
             bench::jint("events", m.events), bench::jnum("wall_ms", m.wall_ms),
             bench::jnum("events_per_s", m.events_per_s()),
             bench::jnum("mcycles_per_s", m.mcycles_per_s())});
    }

    // ---- observability overhead: obs_off vs obs_on per scenario ----
    // obs_off is the measurement above (no observer attached); obs_on
    // re-runs the same deterministic scenario with the full stack (trace
    // with per-chunk events, metrics, epoch JSONL, profiler) plus export
    // serialization. The determinism check inside time_scenario doubles as
    // the observation-only guarantee: cycles/events must match exactly.
    std::vector<measurement> obs_results;
    obs_results.push_back(
        run_experiment_scenario("closed_loop", closed_loop_config(fast), reps,
                                true));
    obs_results.push_back(
        run_experiment_scenario("poisson", poisson_config(fast), reps, true));
    obs_results.push_back(run_fleet(fast, reps, true));

    std::printf("\n%-12s %14s %14s %12s\n", "scenario", "off ev/s", "on ev/s",
                "overhead %");
    for (std::size_t i = 0; i < obs_results.size(); ++i) {
        const measurement& off = results[i];
        const measurement& on = obs_results[i];
        if (off.sim_cycles != on.sim_cycles || off.events != on.events) {
            std::fprintf(stderr,
                         "sim_throughput: %s with observers attached is not "
                         "bit-identical to the bare run\n",
                         on.scenario.c_str());
            return 2;
        }
        const double overhead_pct =
            on.events_per_s() > 0.0
                ? 100.0 * (off.events_per_s() / on.events_per_s() - 1.0)
                : 0.0;
        std::printf("%-12s %14.0f %14.0f %12.1f\n", on.scenario.c_str(),
                    off.events_per_s(), on.events_per_s(), overhead_pct);
        bench::json_report(
            "sim_throughput",
            {bench::jstr("scenario", on.scenario),
             bench::jstr("phase", "obs_on"),
             bench::jstr("base_phase", phase), bench::jstr("mode", mode),
             bench::jint("reps", on.reps),
             bench::jint("events", on.events),
             bench::jnum("wall_ms", on.wall_ms),
             bench::jnum("events_per_s", on.events_per_s()),
             bench::jnum("obs_off_events_per_s", off.events_per_s()),
             bench::jnum("overhead_pct", overhead_pct)});
    }

    if (check_path.empty()) return 0;

    // ---- regression check against the committed trajectory ----
    const auto rows = load_committed(check_path);
    const char* tol_env = std::getenv("CAMDN_PERF_TOLERANCE");
    const double tol = tol_env != nullptr ? std::atof(tol_env) : 0.6;
    std::printf("\nPerf check vs %s (tolerance %.0f%%):\n", check_path.c_str(),
                tol * 100.0);
    bool ok = true;
    for (const auto& m : results) {
        const double ref = reference_rate(rows, m.scenario, mode);
        if (ref <= 0.0) {
            std::printf("  %-12s no committed %s reference — skipped\n",
                        m.scenario.c_str(), mode.c_str());
            continue;
        }
        const double floor = ref * (1.0 - tol);
        const double measured = m.events_per_s();
        const bool pass = measured >= floor;
        ok = ok && pass;
        const double base = baseline_rate(rows, m.scenario, mode);
        std::printf(
            "  %-12s measured %.0f ev/s vs committed %.0f (floor %.0f): %s",
            m.scenario.c_str(), measured, ref, floor, pass ? "OK" : "FAIL");
        if (base > 0.0)
            std::printf("   [%.2fx over pre-optimization baseline]",
                        measured / base);
        std::printf("\n");

        // The batched phase must not regress the optimized phase it
        // replaced: the committed trajectory itself is gated, so a refresh
        // that recorded a slower batched row fails in CI rather than
        // silently lowering the floor for every later build.
        const double batched = phase_rate(rows, m.scenario, mode, "batched");
        const double optimized =
            phase_rate(rows, m.scenario, mode, "optimized");
        if (batched > 0.0 && optimized > 0.0) {
            const bool phase_ok = batched >= optimized * (1.0 - tol);
            ok = ok && phase_ok;
            std::printf(
                "  %-12s committed batched %.0f vs optimized %.0f "
                "(%.2fx): %s\n",
                m.scenario.c_str(), batched, optimized, batched / optimized,
                phase_ok ? "OK" : "FAIL");
        }
    }

    // Observability fast-lane gate: the obs_on rate (full stack attached)
    // must hold the committed batched-phase level within the same
    // tolerance, so a change that bloats observer cost — even one that
    // leaves the bare run fast — fails here.
    for (const auto& m : obs_results) {
        const double ref = obs_reference_rate(rows, m.scenario, mode);
        if (ref <= 0.0) {
            std::printf("  %-12s no committed obs_on reference — skipped\n",
                        m.scenario.c_str());
            continue;
        }
        const double floor = ref * (1.0 - tol);
        const double measured = m.events_per_s();
        const bool pass = measured >= floor;
        ok = ok && pass;
        std::printf(
            "  %-12s obs_on   %.0f ev/s vs committed %.0f (floor %.0f): %s\n",
            m.scenario.c_str(), measured, ref, floor, pass ? "OK" : "FAIL");
    }
    if (!ok) {
        std::fprintf(stderr,
                     "\nsim_throughput: PERF REGRESSION — measured events/sec "
                     "fell below the committed floor (see numbers above). If "
                     "this is a legitimate trade-off, refresh "
                     "BENCH_sim_throughput.json and say so in the PR.\n");
        return 1;
    }
    std::printf("perf check passed.\n");
    return 0;
}

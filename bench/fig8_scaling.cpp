// Regenerates Figure 8: average latency and memory access for AuRORA vs
// CaMDN(Full) across system scales — cache capacity 4..64 MiB (at 8
// co-located DNNs) and 1..16 co-located DNNs (at 16 MiB).
//
// Paper reference: CaMDN(Full) reduces latency 34.3%..42.3% and memory
// access 16.0%..37.7% across scales.
#include <cstdlib>
#include <iostream>

#include "common/stats.h"
#include "common/table_printer.h"
#include "sim/experiment.h"

using namespace camdn;

namespace {

struct pair_result {
    double base_lat, full_lat, base_mem, full_mem;
};

pair_result run_pair(std::uint64_t cache_bytes, std::uint32_t dnns,
                     std::uint32_t inferences) {
    pair_result out{};
    for (int p = 0; p < 2; ++p) {
        sim::experiment_config cfg;
        cfg.pol = p == 0 ? sim::policy::aurora : sim::policy::camdn_full;
        cfg.soc.cache.total_bytes = cache_bytes;
        cfg.co_located = dnns;
        cfg.inferences_per_slot = inferences;
        cfg.seed = 42;
        const auto res = sim::run_experiment(cfg);
        (p == 0 ? out.base_lat : out.full_lat) = res.avg_latency_ms();
        (p == 0 ? out.base_mem : out.full_mem) = res.mem_mb_per_inference();
    }
    return out;
}

void emit(table_printer& t, const std::string& label, const pair_result& r) {
    t.add_row({label, fmt_fixed(r.base_lat, 2), fmt_fixed(r.full_lat, 2),
               fmt_fixed(100.0 * (1.0 - r.full_lat / r.base_lat), 1),
               fmt_fixed(r.base_mem, 1), fmt_fixed(r.full_mem, 1),
               fmt_fixed(100.0 * (1.0 - r.full_mem / r.base_mem), 1)});
}

}  // namespace

int main() {
    const bool fast = std::getenv("REPRO_FAST") != nullptr;
    const std::uint32_t inferences = fast ? 1 : 2;

    std::cout << "Figure 8: scaling of AuRORA vs CaMDN(Full)\n\n";

    std::cout << "(a) cache capacity sweep, 8 co-located DNNs\n";
    {
        table_printer t({"Cache", "AuRORA(ms)", "Full(ms)", "lat red.%",
                         "AuRORA(MB)", "Full(MB)", "mem red.%"});
        const std::vector<std::uint64_t> sizes =
            fast ? std::vector<std::uint64_t>{mib(4), mib(16), mib(64)}
                 : std::vector<std::uint64_t>{mib(4), mib(8), mib(16), mib(32),
                                              mib(64)};
        for (auto bytes : sizes)
            emit(t, std::to_string(bytes / mib(1)) + "MB",
                 run_pair(bytes, 8, inferences));
        t.print(std::cout);
    }

    std::cout << "\n(b) co-located DNN sweep, 16 MiB cache\n";
    {
        table_printer t({"DNNs", "AuRORA(ms)", "Full(ms)", "lat red.%",
                         "AuRORA(MB)", "Full(MB)", "mem red.%"});
        const std::vector<std::uint32_t> counts =
            fast ? std::vector<std::uint32_t>{2, 8, 16}
                 : std::vector<std::uint32_t>{1, 2, 4, 8, 16};
        for (auto dnns : counts)
            emit(t, std::to_string(dnns), run_pair(mib(16), dnns, inferences));
        t.print(std::cout);
    }

    std::cout << "\n[paper: 34.3-42.3% latency reduction, 16.0-37.7% memory "
                 "access reduction across scales]\n";
    return 0;
}

// Regenerates Figure 8: average latency and memory access for AuRORA vs
// CaMDN(Full) across system scales — cache capacity 4..64 MiB (at 8
// co-located DNNs) and 1..16 co-located DNNs (at 16 MiB).
//
// Paper reference: CaMDN(Full) reduces latency 34.3%..42.3% and memory
// access 16.0%..37.7% across scales.
#include <iostream>

#include "bench/harness.h"

using namespace camdn;

namespace {

sim::experiment_config point_cfg(sim::policy pol, std::uint64_t cache_bytes,
                                 std::uint32_t dnns, std::uint32_t inferences) {
    sim::experiment_config cfg;
    cfg.pol = pol;
    cfg.soc.cache.total_bytes = cache_bytes;
    cfg.co_located = dnns;
    cfg.inferences_per_slot = inferences;
    cfg.seed = 42;
    return cfg;
}

void emit(table_printer& t, const std::string& label,
          const sim::experiment_result& base, const sim::experiment_result& full) {
    const double base_lat = base.avg_latency_ms();
    const double full_lat = full.avg_latency_ms();
    const double base_mem = base.mem_mb_per_inference();
    const double full_mem = full.mem_mb_per_inference();
    t.add_row({label, fmt_fixed(base_lat, 2), fmt_fixed(full_lat, 2),
               fmt_fixed(100.0 * (1.0 - full_lat / base_lat), 1),
               fmt_fixed(base_mem, 1), fmt_fixed(full_mem, 1),
               fmt_fixed(100.0 * (1.0 - full_mem / base_mem), 1)});
}

}  // namespace

int main() {
    const std::uint32_t inferences = bench::fast_mode() ? 1 : 2;

    bench::banner("Figure 8: scaling of AuRORA vs CaMDN(Full)");

    const auto sizes = bench::pick(
        std::vector<std::uint64_t>{mib(4), mib(16), mib(64)},
        std::vector<std::uint64_t>{mib(4), mib(8), mib(16), mib(32), mib(64)});
    const auto counts =
        bench::pick(std::vector<std::uint32_t>{2, 8, 16},
                    std::vector<std::uint32_t>{1, 2, 4, 8, 16});

    // Both sub-figures as one parallel sweep: (AuRORA, Full) per point.
    std::vector<sim::experiment_config> cfgs;
    for (auto bytes : sizes) {
        cfgs.push_back(point_cfg(sim::policy::aurora, bytes, 8, inferences));
        cfgs.push_back(point_cfg(sim::policy::camdn_full, bytes, 8, inferences));
    }
    for (auto dnns : counts) {
        cfgs.push_back(point_cfg(sim::policy::aurora, mib(16), dnns, inferences));
        cfgs.push_back(
            point_cfg(sim::policy::camdn_full, mib(16), dnns, inferences));
    }
    const auto results = sim::run_sweep(cfgs);
    std::size_t idx = 0;

    std::cout << "(a) cache capacity sweep, 8 co-located DNNs\n";
    {
        table_printer t({"Cache", "AuRORA(ms)", "Full(ms)", "lat red.%",
                         "AuRORA(MB)", "Full(MB)", "mem red.%"});
        for (auto bytes : sizes) {
            const auto& base = results[idx++];
            const auto& full = results[idx++];
            emit(t, std::to_string(bytes / mib(1)) + "MB", base, full);
        }
        t.print(std::cout);
    }

    std::cout << "\n(b) co-located DNN sweep, 16 MiB cache\n";
    {
        table_printer t({"DNNs", "AuRORA(ms)", "Full(ms)", "lat red.%",
                         "AuRORA(MB)", "Full(MB)", "mem red.%"});
        for (auto dnns : counts) {
            const auto& base = results[idx++];
            const auto& full = results[idx++];
            emit(t, std::to_string(dnns), base, full);
        }
        t.print(std::cout);
    }

    std::cout << "\n[paper: 34.3-42.3% latency reduction, 16.0-37.7% memory "
                 "access reduction across scales]\n";
    return 0;
}

// Regenerates Figure 7: model-wise speedup of CaMDN(HW-only) and
// CaMDN(Full) over AuRORA with all 16 NPUs kept busy (Table II config).
//
// Paper reference: CaMDN(Full) averages 1.88x (max 2.56x, on the
// intermediate-heavy MobileNet-v2 / EfficientNet-b0); CaMDN(Full) exceeds
// CaMDN(HW-only) by 1.18x on average; memory access falls 33.4% on average.
#include <cstdlib>
#include <iostream>

#include "common/stats.h"
#include "common/table_printer.h"
#include "model/model_zoo.h"
#include "sim/experiment.h"

using namespace camdn;

int main() {
    const bool fast = std::getenv("REPRO_FAST") != nullptr;

    sim::experiment_config cfg;
    cfg.co_located = 16;  // every NPU busy -> maximum cache contention
    cfg.inferences_per_slot = fast ? 2 : 4;
    cfg.seed = 42;

    std::cout << "Table II SoC: " << cfg.soc.npu.cores << " NPUs ("
              << cfg.soc.npu.pe_rows << "x" << cfg.soc.npu.pe_cols
              << " PEs, " << cfg.soc.npu.scratchpad_bytes / kib(1)
              << "KB scratchpad), " << cfg.soc.cache.total_bytes / mib(1)
              << "MB cache (" << cfg.soc.cache.npu_ways << "/"
              << cfg.soc.cache.ways << " NPU ways, "
              << cfg.soc.cache.slices << " slices), "
              << fmt_fixed(cfg.soc.dram.peak_bytes_per_cycle(), 1)
              << "GB/s DRAM\n\n";

    sim::experiment_result results[3];
    const sim::policy pols[3] = {sim::policy::aurora,
                                 sim::policy::camdn_hw_only,
                                 sim::policy::camdn_full};
    for (int p = 0; p < 3; ++p) {
        cfg.pol = pols[p];
        results[p] = sim::run_experiment(cfg);
    }

    std::cout << "Figure 7: model-wise speedup over AuRORA\n";
    table_printer t({"Model", "AuRORA(ms)", "HW-only(ms)", "Full(ms)",
                     "spdup HW", "spdup Full", "mem red. %"});
    double hw_sum = 0.0, full_sum = 0.0, full_max = 0.0;
    double mem_red_sum = 0.0;
    int counted = 0;
    for (const auto& m : model::benchmark_models()) {
        const double base = results[0].mean_latency_ms(m.abbr);
        const double hw = results[1].mean_latency_ms(m.abbr);
        const double full = results[2].mean_latency_ms(m.abbr);
        if (base == 0.0 || hw == 0.0 || full == 0.0) continue;
        const double mem_red =
            100.0 * (1.0 - results[2].mem_mb_per_inference(m.abbr) /
                               results[0].mem_mb_per_inference(m.abbr));
        t.add_row({m.abbr, fmt_fixed(base, 2), fmt_fixed(hw, 2),
                   fmt_fixed(full, 2), fmt_fixed(base / hw, 2),
                   fmt_fixed(base / full, 2), fmt_fixed(mem_red, 1)});
        hw_sum += base / hw;
        full_sum += base / full;
        full_max = std::max(full_max, base / full);
        mem_red_sum += mem_red;
        ++counted;
    }
    t.print(std::cout);

    std::cout << "\nAverages over " << counted << " models:\n"
              << "  CaMDN(HW-only) speedup: " << fmt_fixed(hw_sum / counted, 2)
              << "x\n"
              << "  CaMDN(Full)    speedup: " << fmt_fixed(full_sum / counted, 2)
              << "x (max " << fmt_fixed(full_max, 2)
              << "x)   [paper: 1.88x avg, 2.56x max]\n"
              << "  Full / HW-only ratio  : "
              << fmt_fixed(full_sum / hw_sum, 2) << "x   [paper: 1.18x]\n"
              << "  Memory access reduction: "
              << fmt_fixed(mem_red_sum / counted, 1)
              << "% avg   [paper: 33.4%]\n";
    return 0;
}

// Regenerates Figure 7: model-wise speedup of CaMDN(HW-only) and
// CaMDN(Full) over AuRORA with all 16 NPUs kept busy (Table II config).
//
// Paper reference: CaMDN(Full) averages 1.88x (max 2.56x, on the
// intermediate-heavy MobileNet-v2 / EfficientNet-b0); CaMDN(Full) exceeds
// CaMDN(HW-only) by 1.18x on average; memory access falls 33.4% on average.
#include <iostream>

#include "bench/harness.h"

using namespace camdn;

int main() {
    sim::experiment_config cfg;
    cfg.co_located = 16;  // every NPU busy -> maximum cache contention
    cfg.inferences_per_slot = bench::fast_mode() ? 2 : 4;
    cfg.seed = 42;

    bench::banner("Table II SoC: " + bench::soc_summary(cfg.soc));

    const auto results =
        bench::run_policies(cfg, {sim::policy::aurora,
                                  sim::policy::camdn_hw_only,
                                  sim::policy::camdn_full});

    std::cout << "Figure 7: model-wise speedup over AuRORA\n";
    table_printer t({"Model", "AuRORA(ms)", "HW-only(ms)", "Full(ms)",
                     "spdup HW", "spdup Full", "mem red. %"});
    double hw_sum = 0.0, full_sum = 0.0, full_max = 0.0;
    double mem_red_sum = 0.0;
    int counted = 0;
    for (const auto* m : bench::zoo()) {
        const double base = results[0].mean_latency_ms(m->abbr);
        const double hw = results[1].mean_latency_ms(m->abbr);
        const double full = results[2].mean_latency_ms(m->abbr);
        if (base == 0.0 || hw == 0.0 || full == 0.0) continue;
        const double mem_red =
            100.0 * (1.0 - results[2].mem_mb_per_inference(m->abbr) /
                               results[0].mem_mb_per_inference(m->abbr));
        t.add_row({m->abbr, fmt_fixed(base, 2), fmt_fixed(hw, 2),
                   fmt_fixed(full, 2), fmt_fixed(base / hw, 2),
                   fmt_fixed(base / full, 2), fmt_fixed(mem_red, 1)});
        hw_sum += base / hw;
        full_sum += base / full;
        full_max = std::max(full_max, base / full);
        mem_red_sum += mem_red;
        ++counted;
    }
    t.print(std::cout);

    std::cout << "\nAverages over " << counted << " models:\n"
              << "  CaMDN(HW-only) speedup: " << fmt_fixed(hw_sum / counted, 2)
              << "x\n"
              << "  CaMDN(Full)    speedup: " << fmt_fixed(full_sum / counted, 2)
              << "x (max " << fmt_fixed(full_max, 2)
              << "x)   [paper: 1.88x avg, 2.56x max]\n"
              << "  Full / HW-only ratio  : "
              << fmt_fixed(full_sum / hw_sum, 2) << "x   [paper: 1.18x]\n"
              << "  Memory access reduction: "
              << fmt_fixed(mem_red_sum / counted, 1)
              << "% avg   [paper: 33.4%]\n";
    return 0;
}

// Ablation study of the design choices DESIGN.md calls out: the NEC's
// bypass and multicast semantics, layer-block mapping (LBM), and the cache
// page size. Each row disables one feature of CaMDN(Full) (or changes the
// page geometry) under the Fig 7 workload.
#include <cstdlib>
#include <iostream>

#include "common/stats.h"
#include "common/table_printer.h"
#include "sim/experiment.h"

using namespace camdn;

namespace {

struct row {
    std::string label;
    double latency_ms;
    double mem_mb;
};

row run(const std::string& label, sim::camdn_features features,
        std::uint64_t page_bytes, std::uint32_t inferences) {
    sim::experiment_config cfg;
    cfg.pol = sim::policy::camdn_full;
    cfg.features = features;
    cfg.soc.cache.page_bytes = page_bytes;
    cfg.co_located = 16;
    cfg.inferences_per_slot = inferences;
    cfg.seed = 42;
    const auto res = sim::run_experiment(cfg);
    return {label, res.avg_latency_ms(), res.mem_mb_per_inference()};
}

}  // namespace

int main() {
    const bool fast = std::getenv("REPRO_FAST") != nullptr;
    const std::uint32_t inferences = fast ? 1 : 2;

    std::cout << "Ablation: CaMDN(Full) feature and page-size study\n"
              << "(16 co-located DNNs, Table II otherwise)\n\n";

    std::vector<row> rows;
    sim::camdn_features all{};
    rows.push_back(run("Full (32KB pages)", all, kib(32), inferences));

    sim::camdn_features no_bypass = all;
    no_bypass.bypass = false;
    rows.push_back(run("- bypass", no_bypass, kib(32), inferences));

    sim::camdn_features no_multicast = all;
    no_multicast.multicast = false;
    rows.push_back(run("- multicast", no_multicast, kib(32), inferences));

    sim::camdn_features no_lbm = all;
    no_lbm.lbm = false;
    rows.push_back(run("- LBM", no_lbm, kib(32), inferences));

    rows.push_back(run("8KB pages", all, kib(8), inferences));
    rows.push_back(run("16KB pages", all, kib(16), inferences));
    rows.push_back(run("64KB pages", all, kib(64), inferences));
    rows.push_back(run("128KB pages", all, kib(128), inferences));

    table_printer t({"Configuration", "avg latency (ms)", "vs Full",
                     "mem (MB/inf)", "vs Full"});
    const double base_lat = rows[0].latency_ms;
    const double base_mem = rows[0].mem_mb;
    for (const auto& r : rows) {
        t.add_row({r.label, fmt_fixed(r.latency_ms, 2),
                   fmt_fixed(r.latency_ms / base_lat, 2) + "x",
                   fmt_fixed(r.mem_mb, 1),
                   fmt_fixed(r.mem_mb / base_mem, 2) + "x"});
    }
    t.print(std::cout);

    std::cout << "\nLBM carries most of the memory-access reduction; bypass\n"
                 "protects the partitioned transparent subspace; page size\n"
                 "trades CPT capacity against allocation granularity.\n";
    return 0;
}

// Ablation study of the design choices DESIGN.md calls out: the NEC's
// bypass and multicast semantics, layer-block mapping (LBM), and the cache
// page size. Each row disables one feature of CaMDN(Full) (or changes the
// page geometry) under the Fig 7 workload.
#include <iostream>

#include "bench/harness.h"

using namespace camdn;

namespace {

sim::experiment_config row_cfg(sim::camdn_features features,
                               std::uint64_t page_bytes,
                               std::uint32_t inferences) {
    sim::experiment_config cfg;
    cfg.pol = sim::policy::camdn_full;
    cfg.features = features;
    cfg.soc.cache.page_bytes = page_bytes;
    cfg.co_located = 16;
    cfg.inferences_per_slot = inferences;
    cfg.seed = 42;
    return cfg;
}

}  // namespace

int main() {
    const std::uint32_t inferences = bench::fast_mode() ? 1 : 2;

    bench::banner(
        "Ablation: CaMDN(Full) feature and page-size study\n"
        "(16 co-located DNNs, Table II otherwise)");

    const sim::camdn_features all{};
    sim::camdn_features no_bypass = all;
    no_bypass.bypass = false;
    sim::camdn_features no_multicast = all;
    no_multicast.multicast = false;
    sim::camdn_features no_lbm = all;
    no_lbm.lbm = false;

    const std::vector<std::string> labels{
        "Full (32KB pages)", "- bypass", "- multicast", "- LBM",
        "8KB pages", "16KB pages", "64KB pages", "128KB pages"};
    const std::vector<sim::experiment_config> cfgs{
        row_cfg(all, kib(32), inferences),
        row_cfg(no_bypass, kib(32), inferences),
        row_cfg(no_multicast, kib(32), inferences),
        row_cfg(no_lbm, kib(32), inferences),
        row_cfg(all, kib(8), inferences),
        row_cfg(all, kib(16), inferences),
        row_cfg(all, kib(64), inferences),
        row_cfg(all, kib(128), inferences)};
    const auto results = sim::run_sweep(cfgs);

    table_printer t({"Configuration", "avg latency (ms)", "vs Full",
                     "mem (MB/inf)", "vs Full"});
    const double base_lat = results[0].avg_latency_ms();
    const double base_mem = results[0].mem_mb_per_inference();
    for (std::size_t i = 0; i < results.size(); ++i) {
        t.add_row({labels[i], fmt_fixed(results[i].avg_latency_ms(), 2),
                   fmt_fixed(results[i].avg_latency_ms() / base_lat, 2) + "x",
                   fmt_fixed(results[i].mem_mb_per_inference(), 1),
                   fmt_fixed(results[i].mem_mb_per_inference() / base_mem, 2) +
                       "x"});
    }
    t.print(std::cout);

    std::cout << "\nLBM carries most of the memory-access reduction; bypass\n"
                 "protects the partitioned transparent subspace; page size\n"
                 "trades CPT capacity against allocation granularity.\n";
    return 0;
}

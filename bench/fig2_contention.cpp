// Regenerates Figure 2 (motivation): cache hit rate, memory access per
// model and average latency of the transparent shared-cache baseline while
// sweeping the number of co-located DNNs and the cache capacity.
//
// Paper reference points (16 MiB): hit rate falls 18.9%..59.7% and memory
// access rises 32.7%..64.1% from 1 to 32 DNNs; latency grows 3.46x..5.65x.
// Set REPRO_FAST=1 for a reduced grid.
#include <iostream>
#include <map>

#include "bench/harness.h"

using namespace camdn;

int main() {
    const auto dnn_counts =
        bench::pick(std::vector<std::uint32_t>{1, 4, 16},
                    std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32});
    const auto cache_sizes = bench::pick(
        std::vector<std::uint64_t>{mib(4), mib(16), mib(64)},
        std::vector<std::uint64_t>{mib(4), mib(8), mib(16), mib(32), mib(64)});

    bench::banner(
        "Figure 2: cache inefficiency with multi-tenant DNNs\n"
        "(transparent shared cache, random dispatch on 16 NPUs)");

    // One sweep over the whole (cache size x DNN count) grid.
    std::vector<sim::experiment_config> cfgs;
    for (auto cache_bytes : cache_sizes) {
        for (auto dnns : dnn_counts) {
            sim::experiment_config cfg;
            cfg.pol = sim::policy::shared_baseline;
            cfg.soc.cache.total_bytes = cache_bytes;
            cfg.co_located = dnns;
            // One NPU per task (paper §II-C methodology) and a roughly
            // constant completion count per grid point for stable stats.
            cfg.spread_idle_cores = false;
            cfg.inferences_per_slot = std::max<std::uint32_t>(2, 32 / dnns);
            cfg.seed = 42;
            cfgs.push_back(std::move(cfg));
        }
    }
    const auto results = sim::run_sweep(cfgs);

    struct point {
        double hit_rate, mem_mb, latency_ms;
    };
    std::map<std::pair<std::uint64_t, std::uint32_t>, point> grid;
    std::size_t idx = 0;
    for (auto cache_bytes : cache_sizes) {
        for (auto dnns : dnn_counts) {
            const auto& res = results[idx++];
            grid[{cache_bytes, dnns}] = point{res.cache_hit_rate,
                                              res.mem_mb_per_inference(),
                                              res.avg_latency_ms()};
        }
    }

    auto print_metric = [&](const std::string& title, auto getter, int digits) {
        std::cout << title << '\n';
        std::vector<std::string> headers{"num DNNs"};
        for (auto c : cache_sizes)
            headers.push_back(std::to_string(c / mib(1)) + "MB");
        table_printer t(headers);
        for (auto dnns : dnn_counts) {
            std::vector<std::string> row{std::to_string(dnns)};
            for (auto c : cache_sizes)
                row.push_back(fmt_fixed(getter(grid[{c, dnns}]), digits));
            t.add_row(row);
        }
        t.print(std::cout);
        std::cout << '\n';
    };

    print_metric("(a) Cache hit rate",
                 [](const point& p) { return p.hit_rate; }, 3);
    print_metric("(b) Memory access (MB/model)",
                 [](const point& p) { return p.mem_mb; }, 1);
    print_metric("(c) Average latency (ms)",
                 [](const point& p) { return p.latency_ms; }, 2);

    // Paper-style summary at the largest co-location.
    const auto lo = dnn_counts.front();
    const auto hi = dnn_counts.back();
    std::cout << "Summary (" << lo << " -> " << hi << " DNNs):\n";
    for (auto c : cache_sizes) {
        const auto& a = grid[{c, lo}];
        const auto& b = grid[{c, hi}];
        std::cout << "  " << c / mib(1) << "MB: hit rate "
                  << fmt_fixed(100.0 * (a.hit_rate - b.hit_rate) /
                                   std::max(a.hit_rate, 1e-9),
                               1)
                  << "% lower, memory access "
                  << fmt_fixed(100.0 * (b.mem_mb / a.mem_mb - 1.0), 1)
                  << "% higher, latency " << fmt_fixed(b.latency_ms / a.latency_ms, 2)
                  << "x\n";
    }
    return 0;
}

// Shared harness for the figure benches and the examples.
//
// Collapses the config/loop/print boilerplate that used to be copy-pasted
// per binary: REPRO_FAST gating, fast/full sweep-axis selection, the Table
// II banner, parallel policy sweeps on the sweep engine, and QoS record
// assembly against the memoized single-tenant reference.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table_printer.h"
#include "model/model_zoo.h"
#include "runtime/qos.h"
#include "sim/experiment.h"
#include "sim/sweep.h"

namespace camdn::bench {

/// REPRO_FAST=1 shrinks grids and repetition counts for smoke runs.
inline bool fast_mode() { return std::getenv("REPRO_FAST") != nullptr; }

/// Picks the fast or full variant of a sweep axis.
template <typename T>
T pick(const T& fast_axis, const T& full_axis) {
    return fast_mode() ? fast_axis : full_axis;
}

/// Prints the bench/example title followed by a blank line.
inline void banner(const std::string& title) {
    std::cout << title << "\n\n";
}

/// All Table I benchmark models, as workload pointers.
inline std::vector<const model::model*> zoo() {
    std::vector<const model::model*> out;
    for (const auto& m : model::benchmark_models()) out.push_back(&m);
    return out;
}

/// One-line Table II summary of an SoC configuration.
inline std::string soc_summary(const sim::soc_config& soc) {
    return std::to_string(soc.npu.cores) + " NPUs (" +
           std::to_string(soc.npu.pe_rows) + "x" +
           std::to_string(soc.npu.pe_cols) + " PEs, " +
           std::to_string(soc.npu.scratchpad_bytes / kib(1)) +
           "KB scratchpad), " + std::to_string(soc.cache.total_bytes / mib(1)) +
           "MB cache (" + std::to_string(soc.cache.npu_ways) + "/" +
           std::to_string(soc.cache.ways) + " NPU ways, " +
           std::to_string(soc.cache.slices) + " slices), " +
           fmt_fixed(soc.dram.peak_bytes_per_cycle(), 1) + "GB/s DRAM";
}

/// Runs `base` once per policy through the parallel sweep engine; results
/// come back in policy order, bit-identical to sequential runs.
inline std::vector<sim::experiment_result> run_policies(
    const sim::experiment_config& base, const std::vector<sim::policy>& pols) {
    std::vector<sim::experiment_config> cfgs;
    cfgs.reserve(pols.size());
    for (auto pol : pols) {
        cfgs.push_back(base);
        cfgs.back().pol = pol;
    }
    return sim::run_sweep(cfgs);
}

/// Builds compute_qos() input from one result: deadline = scale * Table I
/// target, normalized progress against the isolated reference (use
/// sim::cached_isolated_latencies for `iso`).
inline std::vector<runtime::qos_record> qos_records(
    const sim::experiment_result& res, double scale,
    const std::map<std::string, cycle_t>& iso) {
    std::vector<runtime::qos_record> records;
    records.reserve(res.completions.size());
    for (const auto& rec : res.completions) {
        runtime::qos_record q;
        q.task = rec.slot;
        q.model_abbr = rec.abbr;
        q.latency = rec.latency();
        q.deadline_rel = static_cast<cycle_t>(
            scale * ms_to_cycles(model::model_by_abbr(rec.abbr).qos_ms));
        q.isolated = iso.at(rec.abbr);
        records.push_back(std::move(q));
    }
    return records;
}

}  // namespace camdn::bench

// Shared harness for the figure benches and the examples.
//
// Collapses the config/loop/print boilerplate that used to be copy-pasted
// per binary: REPRO_FAST gating, fast/full sweep-axis selection, the Table
// II banner, parallel policy sweeps on the sweep engine, and QoS record
// assembly against the memoized single-tenant reference.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/table_printer.h"
#include "model/model_zoo.h"
#include "runtime/qos.h"
#include "sim/experiment.h"
#include "sim/sweep.h"

namespace camdn::bench {

/// REPRO_FAST=1 shrinks grids and repetition counts for smoke runs.
inline bool fast_mode() { return std::getenv("REPRO_FAST") != nullptr; }

/// Picks the fast or full variant of a sweep axis.
template <typename T>
T pick(const T& fast_axis, const T& full_axis) {
    return fast_mode() ? fast_axis : full_axis;
}

/// Prints the bench/example title followed by a blank line.
inline void banner(const std::string& title) {
    std::cout << title << "\n\n";
}

/// All Table I benchmark models, as workload pointers.
inline std::vector<const model::model*> zoo() {
    std::vector<const model::model*> out;
    for (const auto& m : model::benchmark_models()) out.push_back(&m);
    return out;
}

/// One-line Table II summary of an SoC configuration.
inline std::string soc_summary(const sim::soc_config& soc) {
    return std::to_string(soc.npu.cores) + " NPUs (" +
           std::to_string(soc.npu.pe_rows) + "x" +
           std::to_string(soc.npu.pe_cols) + " PEs, " +
           std::to_string(soc.npu.scratchpad_bytes / kib(1)) +
           "KB scratchpad), " + std::to_string(soc.cache.total_bytes / mib(1)) +
           "MB cache (" + std::to_string(soc.cache.npu_ways) + "/" +
           std::to_string(soc.cache.ways) + " NPU ways, " +
           std::to_string(soc.cache.slices) + " slices), " +
           fmt_fixed(soc.dram.peak_bytes_per_cycle(), 1) + "GB/s DRAM";
}

/// Runs `base` once per policy through the parallel sweep engine; results
/// come back in policy order, bit-identical to sequential runs.
inline std::vector<sim::experiment_result> run_policies(
    const sim::experiment_config& base, const std::vector<sim::policy>& pols) {
    std::vector<sim::experiment_config> cfgs;
    cfgs.reserve(pols.size());
    for (auto pol : pols) {
        cfgs.push_back(base);
        cfgs.back().pol = pol;
    }
    return sim::run_sweep(cfgs);
}

// ---- Machine-readable bench output --------------------------------------
//
// Opt-in via CAMDN_BENCH_JSON=<path>: every row a bench reports through
// json_report() is collected and written to <path> as a JSON array at
// process exit (e.g. CAMDN_BENCH_JSON=BENCH_fleet.json ./fleet_scaling),
// alongside the printed tables. Without the variable, reporting is a no-op.
//
// Every row carries "schema", the file-format version, so downstream
// consumers of the accumulated BENCH_*.json artifacts can evolve with it:
//   1 — bench + free-form fields (implicit; rows carried no version)
//   2 — version stamped per row; rows MAY additionally carry the
//       telemetry epoch counters (json_telemetry_fields) when the bench
//       records telemetry — their absence just means "not recorded"

/// Version stamped into every reported row.
inline constexpr int bench_json_schema = 2;

/// One key/value of a JSON row; the value is pre-rendered JSON.
struct json_field {
    std::string key;
    std::string literal;
};

inline std::string json_quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out + "\"";
}

inline json_field jstr(std::string key, const std::string& value) {
    return {std::move(key), json_quote(value)};
}
inline json_field jnum(std::string key, double value) {
    std::ostringstream os;
    os << value;
    return {std::move(key), os.str()};
}
inline json_field jint(std::string key, std::uint64_t value) {
    return {std::move(key), std::to_string(value)};
}

class json_reporter {
public:
    static json_reporter& instance() {
        static json_reporter reporter;
        return reporter;
    }

    bool enabled() const { return path_ != nullptr; }

    void add_row(const std::string& bench,
                 const std::vector<json_field>& fields) {
        if (!enabled()) return;
        std::string row = "{\"bench\": " + json_quote(bench) +
                          ", \"schema\": " + std::to_string(bench_json_schema);
        for (const auto& f : fields)
            row += ", " + json_quote(f.key) + ": " + f.literal;
        rows_.push_back(row + "}");
    }

    ~json_reporter() {
        if (!enabled()) return;
        std::ofstream out(path_);
        out << "[\n";
        for (std::size_t i = 0; i < rows_.size(); ++i)
            out << "  " << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
        out << "]\n";
    }

private:
    json_reporter() : path_(std::getenv("CAMDN_BENCH_JSON")) {}

    const char* path_;
    std::vector<std::string> rows_;
};

/// Reports one bench data point (no-op unless CAMDN_BENCH_JSON is set).
inline void json_report(const std::string& bench,
                        const std::vector<json_field>& fields) {
    json_reporter::instance().add_row(bench, fields);
}

/// Schema-2 telemetry epoch counters of one result, for appending to a
/// json_report row (all zero when the run recorded no telemetry).
inline std::vector<json_field> json_telemetry_fields(
    const sim::experiment_result& res) {
    std::uint64_t wait = 0, timeouts = 0, downgrades = 0, lbm = 0;
    double bw = 0.0;
    for (const auto& e : res.telemetry) {
        wait += e.total_page_wait();
        timeouts += e.total_timeouts();
        for (const auto& t : e.tasks) {
            downgrades += t.lbm_downgrades;
            lbm += t.lbm_layers;
        }
        bw += e.bw_utilization;
    }
    const auto n = res.telemetry.size();
    return {jint("telemetry_epochs", n),
            jint("page_wait_cycles", wait),
            jint("page_timeouts", timeouts),
            jint("lbm_downgrades", downgrades),
            jint("lbm_layers", lbm),
            jnum("bw_utilization_mean", n ? bw / static_cast<double>(n) : 0.0)};
}

/// Builds compute_qos() input from one result: deadline = scale * Table I
/// target, normalized progress against the isolated reference (use
/// sim::cached_isolated_latencies for `iso`).
inline std::vector<runtime::qos_record> qos_records(
    const sim::experiment_result& res, double scale,
    const std::map<std::string, cycle_t>& iso) {
    std::vector<runtime::qos_record> records;
    records.reserve(res.completions.size());
    for (const auto& rec : res.completions) {
        runtime::qos_record q;
        q.task = rec.slot;
        q.model_abbr = rec.abbr;
        q.latency = rec.latency();
        q.deadline_rel = static_cast<cycle_t>(
            scale * ms_to_cycles(model::model_by_abbr(rec.abbr).qos_ms));
        q.isolated = iso.at(rec.abbr);
        records.push_back(std::move(q));
    }
    return records;
}

}  // namespace camdn::bench

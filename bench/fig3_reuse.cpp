// Regenerates Figure 3 (motivation): byte-weighted reuse-count and
// reuse-distance distributions of the benchmark DNNs on the shared cache,
// plus the Table I benchmark listing.
//
// Paper reference: on average 68.0% of data has no future reuse; 61.8% of
// intermediate data has a reuse distance above 1 MiB (47.9% above 2 MiB).
#include <array>
#include <iostream>

#include "bench/harness.h"
#include "model/reuse_analysis.h"

using namespace camdn;

int main() {
    bench::banner("Table I: benchmark models for multi-tenant execution");
    {
        table_printer t({"Domain", "Model", "Abbr.", "Type", "QoS(ms)",
                         "Layers", "MACs(G)", "Weights(MB)"});
        const char* domains[] = {"Computer Vision", "NLP", "Audio",
                                 "Point Cloud"};
        for (const auto* m : bench::zoo()) {
            t.add_row({domains[static_cast<int>(m->domain)], m->name, m->abbr,
                       m->type, fmt_fixed(m->qos_ms, 1),
                       std::to_string(m->layers.size()),
                       fmt_fixed(m->total_macs() / 1e9, 2),
                       fmt_fixed(m->total_weight_bytes() / 1048576.0, 1)});
        }
        t.print(std::cout);
    }

    std::cout << "\nFigure 3(a): percentages of data with different reuse "
                 "counts\n";
    table_printer counts({"Model", "1", "[2,4]", "[5,8]", "[9,inf)"});
    std::cout << "Figure 3(b) follows below.\n";
    double single_sum = 0.0;
    std::vector<std::array<double, 4>> dist_rows;
    for (const auto& m : model::benchmark_models()) {
        const auto rep = model::analyze_reuse(m);
        counts.add_row({m.abbr,
                        fmt_fixed(100.0 * rep.count_hist.fraction(0), 1),
                        fmt_fixed(100.0 * rep.count_hist.fraction(1), 1),
                        fmt_fixed(100.0 * rep.count_hist.fraction(2), 1),
                        fmt_fixed(100.0 * rep.count_hist.fraction(3), 1)});
        single_sum += rep.single_use_fraction();
        dist_rows.push_back({rep.distance_hist.fraction(0),
                             rep.distance_hist.fraction(1),
                             rep.distance_hist.fraction(2),
                             rep.distance_hist.fraction(3)});
    }
    // Average row.
    counts.add_row({"Avg.", fmt_fixed(100.0 * single_sum / 8.0, 1), "", "", ""});
    counts.print(std::cout);
    std::cout << "(paper: 68.0% of data has no future reuse on average)\n";

    std::cout << "\nFigure 3(b): percentages of intermediate data with "
                 "different reuse distances\n";
    table_printer dist({"Model", "(0,1MB]", "(1,2MB]", "(2,4MB]", "(4MB,inf)"});
    double long_sum = 0.0, very_long_sum = 0.0;
    std::size_t idx = 0;
    for (const auto& m : model::benchmark_models()) {
        const auto& r = dist_rows[idx++];
        dist.add_row({m.abbr, fmt_fixed(100.0 * r[0], 1),
                      fmt_fixed(100.0 * r[1], 1), fmt_fixed(100.0 * r[2], 1),
                      fmt_fixed(100.0 * r[3], 1)});
        long_sum += r[1] + r[2] + r[3];
        very_long_sum += r[2] + r[3];
    }
    dist.print(std::cout);
    std::cout << "Avg. > 1MB: " << fmt_fixed(100.0 * long_sum / 8.0, 1)
              << "%  (paper: 61.8%)\n";
    std::cout << "Avg. > 2MB: " << fmt_fixed(100.0 * very_long_sum / 8.0, 1)
              << "%  (paper: 47.9%)\n";
    return 0;
}

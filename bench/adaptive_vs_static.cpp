// Adaptive vs static: does closing the feedback loop pay?
//
// Three scenarios, each comparing static CaMDN(Full) (and MoCA as the
// bandwidth-only reference) against CaMDN(Adaptive):
//   1. the paper's steady-state closed loop (§IV-A4) — the adaptive
//      controller must not lose what static CaMDN already wins;
//   2. a bursty MMPP open-loop stream on one SoC — lulls and bursts are
//      where the static equal split and fixed look-ahead leave room;
//   3. a bursty fleet served in feedback rounds — router weights and
//      re-placement vs a load-blind static fleet.
// A determinism pass re-runs scenario 2 across sweep-pool widths and
// asserts bit-identical results and telemetry. The process exits non-zero
// if adaptive regresses on the acceptance metrics (SLA, p99).
#include <cstdint>
#include <iostream>

#include "bench/harness.h"
#include "serve/cluster.h"

using namespace camdn;

namespace {

struct outcome {
    double sla = 0.0;
    double p99_ms = 0.0;
    double mean_ms = 0.0;
    std::uint64_t served = 0;
    std::uint64_t dropped = 0;
};

/// SLA against the Table-I targets (scale 1.0): completions within target
/// over all offered work — drops count as misses.
outcome score(const sim::experiment_result& res) {
    outcome o;
    o.served = res.completions.size();
    o.dropped = res.rejected_arrivals;
    o.mean_ms = res.avg_latency_ms();
    percentile_tracker lat;
    std::uint64_t met = 0;
    for (const auto& rec : res.completions) {
        lat.add(cycles_to_ms(rec.latency()));
        if (runtime::meets_qos_target(rec.abbr, rec.latency(), 1.0)) ++met;
    }
    o.p99_ms = lat.p99();
    const std::uint64_t offered = o.served + o.dropped;
    o.sla = offered ? static_cast<double>(met) / offered : 1.0;
    return o;
}

bool telemetry_identical(const std::vector<adapt::epoch_snapshot>& a,
                         const std::vector<adapt::epoch_snapshot>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].start != b[i].start || a[i].end != b[i].end ||
            a[i].dram_bytes != b[i].dram_bytes ||
            a[i].active_slots != b[i].active_slots ||
            a[i].tasks.size() != b[i].tasks.size())
            return false;
        for (std::size_t s = 0; s < a[i].tasks.size(); ++s) {
            const auto& x = a[i].tasks[s];
            const auto& y = b[i].tasks[s];
            if (x.cache_hits != y.cache_hits || x.dma_bytes != y.dma_bytes ||
                x.page_wait_cycles != y.page_wait_cycles ||
                x.page_timeouts != y.page_timeouts ||
                x.completions != y.completions)
                return false;
        }
    }
    return true;
}

int verdict(const char* what, bool ok) {
    std::cout << "verdict: " << what << ": " << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}

}  // namespace

int main() {
    bench::banner(
        "Adaptive vs static: telemetry feedback control against static\n"
        "CaMDN(Full) and MoCA, steady-state / bursty / fleet");
    int failures = 0;

    const auto workload = bench::zoo();

    // ---- 1. steady-state closed loop ----------------------------------
    std::cout << "== Steady state: closed loop, " << "8 co-located slots ==\n\n";
    sim::experiment_config steady;
    steady.workload = workload;
    steady.co_located = 8;
    steady.inferences_per_slot = bench::fast_mode() ? 2 : 4;

    const std::vector<sim::policy> pols{sim::policy::moca,
                                        sim::policy::camdn_full,
                                        sim::policy::camdn_adaptive};
    const auto steady_res = bench::run_policies(steady, pols);

    table_printer st({"policy", "SLA", "p99 (ms)", "mean (ms)",
                      "makespan (ms)"});
    std::vector<outcome> steady_out;
    for (std::size_t i = 0; i < pols.size(); ++i) {
        steady_out.push_back(score(steady_res[i]));
        st.add_row({sim::policy_name(pols[i]),
                    fmt_fixed(steady_out[i].sla, 3),
                    fmt_fixed(steady_out[i].p99_ms, 2),
                    fmt_fixed(steady_out[i].mean_ms, 2),
                    fmt_fixed(cycles_to_ms(steady_res[i].makespan), 2)});
        bench::json_report(
            "adaptive_vs_static",
            {bench::jstr("scenario", "steady_closed_loop"),
             bench::jstr("policy", sim::policy_name(pols[i])),
             bench::jnum("sla", steady_out[i].sla),
             bench::jnum("p99_ms", steady_out[i].p99_ms),
             bench::jnum("mean_ms", steady_out[i].mean_ms)});
    }
    st.print(std::cout);
    std::cout << "\n";

    const outcome& s_static = steady_out[1];
    const outcome& s_adapt = steady_out[2];
    failures += verdict("steady: adaptive SLA >= static CaMDN",
                        s_adapt.sla >= s_static.sla - 1e-12);
    failures += verdict("steady: adaptive p99 <= 1.02x static CaMDN",
                        s_adapt.p99_ms <= s_static.p99_ms * 1.02 + 1e-9);

    // ---- 2. bursty MMPP, one SoC --------------------------------------
    std::cout << "\n== Bursty MMPP open loop (x0.25 lull / x4 burst) ==\n\n";
    sim::experiment_config bursty;
    bursty.kind = runtime::workload_kind::open_loop_mmpp;
    bursty.workload = workload;
    bursty.co_located = 8;
    bursty.arrival_rate_per_ms = 2.5;
    bursty.mmpp_rate_scale = {0.25, 4.0};
    bursty.mmpp_sojourn_ms = 4.0;
    bursty.total_arrivals = bench::fast_mode() ? 32 : 96;
    bursty.admission_queue_limit = 24;
    bursty.telemetry = true;

    const auto bursty_res = bench::run_policies(bursty, pols);
    table_printer bt({"policy", "SLA", "p99 (ms)", "served", "dropped",
                      "page-wait (Mcyc)", "timeouts"});
    std::vector<outcome> bursty_out;
    for (std::size_t i = 0; i < pols.size(); ++i) {
        bursty_out.push_back(score(bursty_res[i]));
        std::uint64_t wait = 0, tmo = 0;
        for (const auto& e : bursty_res[i].telemetry) {
            wait += e.total_page_wait();
            tmo += e.total_timeouts();
        }
        bt.add_row({sim::policy_name(pols[i]), fmt_fixed(bursty_out[i].sla, 3),
                    fmt_fixed(bursty_out[i].p99_ms, 2),
                    std::to_string(bursty_out[i].served),
                    std::to_string(bursty_out[i].dropped),
                    fmt_fixed(static_cast<double>(wait) * 1e-6, 2),
                    std::to_string(tmo)});
        std::vector<bench::json_field> fields{
            bench::jstr("scenario", "bursty_mmpp"),
            bench::jstr("policy", sim::policy_name(pols[i])),
            bench::jnum("sla", bursty_out[i].sla),
            bench::jnum("p99_ms", bursty_out[i].p99_ms),
            bench::jint("dropped", bursty_out[i].dropped)};
        for (auto& f : bench::json_telemetry_fields(bursty_res[i]))
            fields.push_back(std::move(f));
        bench::json_report("adaptive_vs_static", fields);
    }
    bt.print(std::cout);
    std::cout << "\n";

    const outcome& b_static = bursty_out[1];
    const outcome& b_adapt = bursty_out[2];
    failures += verdict("bursty: adaptive SLA >= static CaMDN",
                        b_adapt.sla >= b_static.sla - 1e-12);
    failures += verdict("bursty: adaptive p99 <= static CaMDN",
                        b_adapt.p99_ms <= b_static.p99_ms + 1e-9);

    // ---- determinism across sweep widths ------------------------------
    {
        std::vector<sim::experiment_config> cfgs(2, bursty);
        cfgs[0].pol = sim::policy::camdn_adaptive;
        cfgs[1].pol = sim::policy::camdn_adaptive;
        cfgs[1].seed += 1;
        const auto seq = sim::run_sweep(cfgs, 1);
        const auto par = sim::run_sweep(cfgs, 4);
        bool same = true;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            same = same && seq[i].makespan == par[i].makespan &&
                   seq[i].dram_total_bytes == par[i].dram_total_bytes &&
                   seq[i].completions.size() == par[i].completions.size() &&
                   telemetry_identical(seq[i].telemetry, par[i].telemetry);
        }
        failures += verdict("determinism: pool width 1 == 4 (incl telemetry)",
                            same);
    }

    // ---- 3. fleet: static vs adaptive under MMPP ----------------------
    std::cout << "\n== Fleet: 4 SoCs, MMPP stream, static vs adaptive ==\n\n";
    serve::soc_instance_config inst;
    inst.slots = 2;
    inst.admission_queue_limit = 12;
    auto fleet = serve::uniform_cluster(4, inst);
    fleet.models = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
                    &model::model_by_abbr("EF."), &model::model_by_abbr("VT.")};
    fleet.process = serve::arrival_process::mmpp;
    fleet.mmpp_rate_scale = {0.25, 4.0};
    fleet.mmpp_sojourn_ms = 4.0;
    fleet.arrival_rate_per_ms = 6.0;
    fleet.total_arrivals = bench::fast_mode() ? 96 : 256;

    auto static_fleet = fleet;  // static: camdn_full, no feedback
    for (auto& s : static_fleet.socs) s.pol = sim::policy::camdn_full;

    auto adaptive_fleet = fleet;
    for (auto& s : adaptive_fleet.socs) s.pol = sim::policy::camdn_adaptive;
    adaptive_fleet.feedback_rounds = 4;

    const auto rs = serve::run_cluster(static_fleet);
    const auto ra = serve::run_cluster(adaptive_fleet);
    const auto ra2 = serve::run_cluster(adaptive_fleet);  // repeatability

    table_printer ft({"fleet", "SLA", "p99 (ms)", "served", "dropped",
                      "re-place"});
    for (const auto* r : {&rs, &ra}) {
        ft.add_row({r == &rs ? "static CaMDN" : "adaptive + feedback",
                    fmt_fixed(r->sla_rate(), 3),
                    fmt_fixed(r->fleet_latency_ms.p99(), 2),
                    std::to_string(r->completed),
                    std::to_string(r->dropped_queue + r->dropped_unroutable),
                    std::to_string(r->replacements)});
        bench::json_report(
            "adaptive_vs_static",
            {bench::jstr("scenario", "fleet_mmpp"),
             bench::jstr("policy",
                         r == &rs ? "static_camdn" : "adaptive_feedback"),
             bench::jnum("sla", r->sla_rate()),
             bench::jnum("p99_ms", r->fleet_latency_ms.p99()),
             bench::jint("served", r->completed),
             bench::jint("dropped",
                         r->dropped_queue + r->dropped_unroutable)});
    }
    ft.print(std::cout);
    std::cout << "\n";

    failures += verdict("fleet: adaptive SLA >= static",
                        ra.sla_rate() >= rs.sla_rate() - 1e-12);
    failures += verdict("fleet: adaptive p99 <= static",
                        ra.fleet_latency_ms.p99() <=
                            rs.fleet_latency_ms.p99() + 1e-9);
    failures += verdict("fleet: adaptive run is repeatable bit-for-bit",
                        ra.completed == ra2.completed &&
                            ra.makespan == ra2.makespan &&
                            ra.fleet_latency_ms.p99() ==
                                ra2.fleet_latency_ms.p99());

    std::cout << "\n"
              << (failures == 0 ? "ALL VERDICTS PASS"
                                : "SOME VERDICTS FAILED")
              << "\n";
    return failures == 0 ? 0 : 1;
}

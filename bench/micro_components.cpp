// Google-benchmark micro-benchmarks of the core components: DRAM timing,
// transparent/NEC cache paths, CPT translation, page allocation, the layer
// mapper and Algorithm 1. These gauge simulator throughput, not modelled
// hardware performance.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "cache/shared_cache.h"
#include "common/event_queue.h"
#include "dram/dram_system.h"
#include "mapping/layer_mapper.h"
#include "runtime/cache_allocation.h"
#include "sim/sweep.h"

using namespace camdn;

static void bm_event_queue(benchmark::State& state) {
    for (auto _ : state) {
        event_queue eq;
        for (int i = 0; i < 1024; ++i) eq.schedule(i, [] {});
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(bm_event_queue);

static void bm_dram_access(benchmark::State& state) {
    dram::dram_system d{dram::dram_config{}};
    addr_t addr = 0;
    cycle_t now = 0;
    for (auto _ : state) {
        now = d.access(addr, false, now);
        addr += line_bytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_dram_access);

static void bm_transparent_access(benchmark::State& state) {
    dram::dram_system d{dram::dram_config{}};
    cache::shared_cache c{cache::cache_config{}, d};
    addr_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.transparent_access(addr, false, 0, 0));
        addr += line_bytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_transparent_access);

static void bm_region_read_burst(benchmark::State& state) {
    dram::dram_system d{dram::dram_config{}};
    cache::shared_cache c{cache::cache_config{}, d};
    auto pages = c.pages().try_allocate(0, 8).value();
    auto& cpt = c.cpt(0);
    for (std::uint32_t v = 0; v < pages.size(); ++v) cpt.map(v, pages[v]);
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.region_read_burst(0, 0, 512, 0));
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(bm_region_read_burst);

static void bm_cpt_translate(benchmark::State& state) {
    cache::cache_page_table cpt{cache::cache_config{}};
    for (std::uint32_t v = 0; v < 384; ++v) cpt.map(v, 128 + v);
    addr_t vcaddr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cpt.translate(vcaddr));
        vcaddr = (vcaddr + line_bytes) % (384 * kib(32));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_cpt_translate);

static void bm_page_alloc_release(benchmark::State& state) {
    cache::page_allocator pool{cache::cache_config{}};
    for (auto _ : state) {
        auto got = pool.try_allocate(0, 32);
        benchmark::DoNotOptimize(got);
        pool.release(0, 32);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_page_alloc_release);

static void bm_map_layer(benchmark::State& state) {
    const auto& m = model::model_by_abbr("RS.");
    mapping::mapper_config cfg;
    const auto blocks = model::segment_layer_blocks(m, cfg.lbm_block_budget,
                                                    cfg.lbm_max_layers);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapping::map_layer(m, 10, blocks[2], cfg));
    }
}
BENCHMARK(bm_map_layer);

static void bm_map_whole_model(benchmark::State& state) {
    const auto& m = model::model_by_abbr("MB.");
    mapping::mapper_config cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapping::map_model(m, cfg));
    }
}
BENCHMARK(bm_map_whole_model);

static void bm_algorithm1_select(benchmark::State& state) {
    const auto& m = model::model_by_abbr("RS.");
    mapping::mapper_config mcfg;
    static const auto mapping = mapping::map_model(m, mcfg);
    cache::page_allocator pool{cache::cache_config{}};
    runtime::cache_allocation_algorithm alg;

    std::vector<runtime::task> tasks(8);
    std::vector<const runtime::task*> running;
    for (int i = 0; i < 8; ++i) {
        tasks[i].id = i;
        tasks[i].mdl = &m;
        tasks[i].mapping = &mapping;
        tasks[i].current_layer = static_cast<std::uint32_t>(i * 7 % 60);
        tasks[i].p_alloc = 24;
        tasks[i].p_next = 12;
        tasks[i].t_next = 1000 * i;
        running.push_back(&tasks[i]);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(alg.select(tasks[0], running, pool, 5000));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_algorithm1_select);

static void bm_end_to_end_small_experiment(benchmark::State& state) {
    for (auto _ : state) {
        sim::experiment_config cfg;
        cfg.pol = sim::policy::camdn_full;
        cfg.workload = {&model::model_by_abbr("MB.")};
        cfg.co_located = 2;
        cfg.inferences_per_slot = 1;
        benchmark::DoNotOptimize(sim::run_experiment(cfg));
    }
}
BENCHMARK(bm_end_to_end_small_experiment)->Unit(benchmark::kMillisecond);

// Sweep-engine throughput: the Fig-7 policy triple on a small workload,
// serial (threads=1) vs the machine's thread pool (threads=0). The ratio
// approaches the core count on multi-core hosts.
static void bm_sweep_policies(benchmark::State& state) {
    sim::experiment_config base;
    base.workload = {&model::model_by_abbr("MB.")};
    base.co_located = 2;
    base.inferences_per_slot = 1;
    std::vector<sim::experiment_config> cfgs;
    for (auto pol : {sim::policy::aurora, sim::policy::camdn_hw_only,
                     sim::policy::camdn_full}) {
        cfgs.push_back(base);
        cfgs.back().pol = pol;
    }
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::run_sweep(cfgs, threads));
    }
    state.SetItemsProcessed(state.iterations() * cfgs.size());
}
BENCHMARK(bm_sweep_policies)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

static void bm_open_loop_experiment(benchmark::State& state) {
    for (auto _ : state) {
        sim::experiment_config cfg;
        cfg.pol = sim::policy::camdn_full;
        cfg.kind = runtime::workload_kind::open_loop_poisson;
        cfg.workload = {&model::model_by_abbr("MB.")};
        cfg.co_located = 2;
        cfg.arrival_rate_per_ms = 4.0;
        cfg.total_arrivals = 8;
        benchmark::DoNotOptimize(sim::run_experiment(cfg));
    }
}
BENCHMARK(bm_open_loop_experiment)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

// Fleet scaling: cluster size x arrival rate x routing policy.
//
// Sweeps a homogeneous CaMDN fleet across cluster sizes and fleet-wide
// arrival rates, comparing the three routing policies on throughput, drop
// rate and tail latency, then re-runs the largest grid point with the
// streaming P² quantile backend to quantify the estimator's error against
// the exact trackers. Set CAMDN_BENCH_JSON=BENCH_fleet_scaling.json to
// also emit the grid as a machine-readable trajectory file.
#include <cmath>

#include "bench/harness.h"
#include "serve/cluster.h"

using namespace camdn;

namespace {

/// Percent error of a P² estimate against the exact quantile (0 when the
/// exact value is 0).
double pct_err(double p2, double exact) {
    return exact != 0.0 ? 100.0 * std::abs(p2 - exact) / std::abs(exact)
                        : 0.0;
}

}  // namespace

int main() {
    bench::banner(
        "Fleet scaling: homogeneous CaMDN(Full) SoCs serving a shared\n"
        "4-model stream, cluster size x arrival rate x routing policy");

    const std::vector<const model::model*> catalog{
        &model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
        &model::model_by_abbr("EF."), &model::model_by_abbr("VT.")};

    const auto sizes = bench::pick<std::vector<std::uint32_t>>({2, 4}, {2, 4, 8});
    const auto rates =
        bench::pick<std::vector<double>>({4.0}, {2.0, 4.0, 8.0});
    const std::vector<serve::route_policy> policies{
        serve::route_policy::round_robin,
        serve::route_policy::least_outstanding,
        serve::route_policy::cache_affinity};

    table_printer t({"SoCs", "rate (/ms)", "policy", "served", "dropped",
                     "p50 (ms)", "p95 (ms)", "p99 (ms)", "tput (/s)"});
    for (const std::uint32_t n : sizes) {
        for (const double rate : rates) {
            for (const auto pol : policies) {
                serve::soc_instance_config inst;
                inst.slots = 2;
                inst.admission_queue_limit = 16;
                auto cfg = serve::uniform_cluster(n, inst);
                cfg.models = catalog;
                cfg.arrival_rate_per_ms = rate * n / 4.0;  // scale with fleet
                cfg.total_arrivals = bench::fast_mode() ? 48 : 192;
                cfg.router = pol;
                const auto res = serve::run_cluster(cfg);

                t.add_row({std::to_string(n), fmt_fixed(cfg.arrival_rate_per_ms, 1),
                           serve::route_policy_name(pol),
                           std::to_string(res.completed),
                           std::to_string(res.dropped_queue +
                                          res.dropped_unroutable),
                           fmt_fixed(res.fleet_latency_ms.p50(), 2),
                           fmt_fixed(res.fleet_latency_ms.p95(), 2),
                           fmt_fixed(res.fleet_latency_ms.p99(), 2),
                           fmt_fixed(res.throughput_per_s(), 1)});
                bench::json_report(
                    "fleet_scaling",
                    {bench::jint("socs", n),
                     bench::jnum("rate_per_ms", cfg.arrival_rate_per_ms),
                     bench::jstr("policy", serve::route_policy_name(pol)),
                     bench::jint("served", res.completed),
                     bench::jint("dropped_queue", res.dropped_queue),
                     bench::jint("dropped_unroutable", res.dropped_unroutable),
                     bench::jnum("p50_ms", res.fleet_latency_ms.p50()),
                     bench::jnum("p95_ms", res.fleet_latency_ms.p95()),
                     bench::jnum("p99_ms", res.fleet_latency_ms.p99()),
                     bench::jnum("throughput_per_s", res.throughput_per_s())});
            }
        }
    }
    t.print(std::cout);

    std::cout << "\nArrival rate scales with fleet size (column 2 is the\n"
                 "fleet-wide rate); cache_affinity narrows each SoC's model\n"
                 "mix, which shows up as lower tail latency at equal load.\n";

    // P² vs exact: the same cluster run under both quantile backends. The
    // simulation is deterministic, so any difference in the reported
    // percentiles is pure estimator error.
    bench::banner(
        "Streaming P² quantiles vs exact trackers (same fleet run)");
    serve::soc_instance_config inst;
    inst.slots = 2;
    inst.admission_queue_limit = 16;
    auto cfg = serve::uniform_cluster(sizes.back(), inst);
    cfg.models = catalog;
    cfg.arrival_rate_per_ms = rates.back() * sizes.back() / 4.0;
    cfg.total_arrivals = bench::fast_mode() ? 96 : 384;
    const auto exact = serve::run_cluster(cfg);
    cfg.streaming_quantiles = true;
    const auto p2 = serve::run_cluster(cfg);

    table_printer q({"quantile", "exact (ms)", "P2 (ms)", "err (%)"});
    const double qs[3][2] = {{exact.fleet_latency_ms.p50(),
                              p2.fleet_latency_ms.p50()},
                             {exact.fleet_latency_ms.p95(),
                              p2.fleet_latency_ms.p95()},
                             {exact.fleet_latency_ms.p99(),
                              p2.fleet_latency_ms.p99()}};
    const char* names[3] = {"p50", "p95", "p99"};
    for (int i = 0; i < 3; ++i)
        q.add_row({names[i], fmt_fixed(qs[i][0], 3), fmt_fixed(qs[i][1], 3),
                   fmt_fixed(pct_err(qs[i][1], qs[i][0]), 2)});
    q.print(std::cout);
    bench::json_report(
        "fleet_scaling",
        {bench::jstr("phase", "p2_vs_exact"),
         bench::jint("socs", sizes.back()),
         bench::jint("samples", exact.fleet_latency_ms.count()),
         bench::jnum("p50_exact_ms", qs[0][0]), bench::jnum("p50_p2_ms", qs[0][1]),
         bench::jnum("p95_exact_ms", qs[1][0]), bench::jnum("p95_p2_ms", qs[1][1]),
         bench::jnum("p99_exact_ms", qs[2][0]), bench::jnum("p99_p2_ms", qs[2][1]),
         bench::jnum("p99_err_pct", pct_err(qs[2][1], qs[2][0]))});
    std::cout << "\nP² keeps five markers per quantile (O(1) memory)\n"
                 "instead of every sample; the error column is what that\n"
                 "buys on this run's latency distribution.\n";
    return 0;
}

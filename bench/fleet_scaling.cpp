// Fleet scaling: cluster size x arrival rate x routing policy.
//
// Sweeps a homogeneous CaMDN fleet across cluster sizes and fleet-wide
// arrival rates, comparing the three routing policies on throughput, drop
// rate and tail latency, then re-runs the largest grid point with the
// streaming P² quantile backend to quantify the estimator's error against
// the exact trackers. Set CAMDN_BENCH_JSON=BENCH_fleet_scaling.json to
// also emit the grid as a machine-readable trajectory file.
#include <cmath>

#include "bench/harness.h"
#include "serve/cluster.h"

using namespace camdn;

namespace {

/// Percent error of a P² estimate against the exact quantile (0 when the
/// exact value is 0).
double pct_err(double p2, double exact) {
    return exact != 0.0 ? 100.0 * std::abs(p2 - exact) / std::abs(exact)
                        : 0.0;
}

}  // namespace

int main() {
    bench::banner(
        "Fleet scaling: homogeneous CaMDN(Full) SoCs serving a shared\n"
        "4-model stream, cluster size x arrival rate x routing policy");

    const std::vector<const model::model*> catalog{
        &model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
        &model::model_by_abbr("EF."), &model::model_by_abbr("VT.")};

    const auto sizes = bench::pick<std::vector<std::uint32_t>>({2, 4}, {2, 4, 8});
    const auto rates =
        bench::pick<std::vector<double>>({4.0}, {2.0, 4.0, 8.0});
    const std::vector<serve::route_policy> policies{
        serve::route_policy::round_robin,
        serve::route_policy::least_outstanding,
        serve::route_policy::cache_affinity};

    table_printer t({"SoCs", "rate (/ms)", "policy", "served", "dropped",
                     "p50 (ms)", "p95 (ms)", "p99 (ms)", "tput (/s)"});
    for (const std::uint32_t n : sizes) {
        for (const double rate : rates) {
            for (const auto pol : policies) {
                serve::soc_instance_config inst;
                inst.slots = 2;
                inst.admission_queue_limit = 16;
                auto cfg = serve::uniform_cluster(n, inst);
                cfg.models = catalog;
                cfg.arrival_rate_per_ms = rate * n / 4.0;  // scale with fleet
                cfg.total_arrivals = bench::fast_mode() ? 48 : 192;
                cfg.router = pol;
                const auto res = serve::run_cluster(cfg);

                t.add_row({std::to_string(n), fmt_fixed(cfg.arrival_rate_per_ms, 1),
                           serve::route_policy_name(pol),
                           std::to_string(res.completed),
                           std::to_string(res.dropped_queue +
                                          res.dropped_unroutable),
                           fmt_fixed(res.fleet_latency_ms.p50(), 2),
                           fmt_fixed(res.fleet_latency_ms.p95(), 2),
                           fmt_fixed(res.fleet_latency_ms.p99(), 2),
                           fmt_fixed(res.throughput_per_s(), 1)});
                bench::json_report(
                    "fleet_scaling",
                    {bench::jint("socs", n),
                     bench::jnum("rate_per_ms", cfg.arrival_rate_per_ms),
                     bench::jstr("policy", serve::route_policy_name(pol)),
                     bench::jint("served", res.completed),
                     bench::jint("dropped_queue", res.dropped_queue),
                     bench::jint("dropped_unroutable", res.dropped_unroutable),
                     bench::jnum("p50_ms", res.fleet_latency_ms.p50()),
                     bench::jnum("p95_ms", res.fleet_latency_ms.p95()),
                     bench::jnum("p99_ms", res.fleet_latency_ms.p99()),
                     bench::jnum("throughput_per_s", res.throughput_per_s())});
            }
        }
    }
    t.print(std::cout);

    std::cout << "\nArrival rate scales with fleet size (column 2 is the\n"
                 "fleet-wide rate); cache_affinity narrows each SoC's model\n"
                 "mix, which shows up as lower tail latency at equal load.\n";

    // P² vs exact: the same cluster run under both quantile backends. The
    // simulation is deterministic, so any difference in the reported
    // percentiles is pure estimator error.
    bench::banner(
        "Streaming P² quantiles vs exact trackers (same fleet run)");
    serve::soc_instance_config inst;
    inst.slots = 2;
    inst.admission_queue_limit = 16;
    auto cfg = serve::uniform_cluster(sizes.back(), inst);
    cfg.models = catalog;
    cfg.arrival_rate_per_ms = rates.back() * sizes.back() / 4.0;
    cfg.total_arrivals = bench::fast_mode() ? 96 : 384;
    const auto exact = serve::run_cluster(cfg);
    cfg.streaming_quantiles = true;
    const auto p2 = serve::run_cluster(cfg);

    table_printer q({"quantile", "exact (ms)", "P2 (ms)", "err (%)"});
    const double qs[3][2] = {{exact.fleet_latency_ms.p50(),
                              p2.fleet_latency_ms.p50()},
                             {exact.fleet_latency_ms.p95(),
                              p2.fleet_latency_ms.p95()},
                             {exact.fleet_latency_ms.p99(),
                              p2.fleet_latency_ms.p99()}};
    const char* names[3] = {"p50", "p95", "p99"};
    for (int i = 0; i < 3; ++i)
        q.add_row({names[i], fmt_fixed(qs[i][0], 3), fmt_fixed(qs[i][1], 3),
                   fmt_fixed(pct_err(qs[i][1], qs[i][0]), 2)});
    q.print(std::cout);
    bench::json_report(
        "fleet_scaling",
        {bench::jstr("phase", "p2_vs_exact"),
         bench::jint("socs", sizes.back()),
         bench::jint("samples", exact.fleet_latency_ms.count()),
         bench::jnum("p50_exact_ms", qs[0][0]), bench::jnum("p50_p2_ms", qs[0][1]),
         bench::jnum("p95_exact_ms", qs[1][0]), bench::jnum("p95_p2_ms", qs[1][1]),
         bench::jnum("p99_exact_ms", qs[2][0]), bench::jnum("p99_p2_ms", qs[2][1]),
         bench::jnum("p99_err_pct", pct_err(qs[2][1], qs[2][0]))});
    std::cout << "\nP² keeps five markers per quantile (O(1) memory)\n"
                 "instead of every sample; the error column is what that\n"
                 "buys on this run's latency distribution.\n";

    // Blame table: the same largest grid point with latency attribution
    // on — which stall component dominates each tenant's latency and
    // which co-tenant it mostly waited behind (row max of the
    // interference matrix, self excluded; dma_stall blames "self").
    bench::banner("Per-tenant blame: top stall component + top interferer");
    cfg.streaming_quantiles = false;
    cfg.attribution = true;
    const auto blamed = serve::run_cluster(cfg);

    table_printer b({"tenant", "served", "stall (ms)", "stall frac",
                     "top stall component", "top interferer"});
    for (const auto& [name, tm] : blamed.tenants) {
        if (tm.attribution_completed == 0) continue;
        const auto& c = tm.attribution;
        const std::uint64_t stall = c.stall_sum();
        std::string interferer = "-";
        std::uint64_t worst = 0;
        const auto row = blamed.interference.find(name);
        if (row != blamed.interference.end()) {
            for (const auto& [holder, cycles] : row->second) {
                if (cycles > worst) {
                    worst = cycles;
                    interferer = holder == name ? "self" : holder;
                }
            }
        }
        b.add_row({name, std::to_string(tm.attribution_completed),
                   fmt_fixed(cycles_to_ms(stall), 2),
                   fmt_fixed(tm.attribution_latency_cycles != 0
                                 ? static_cast<double>(stall) /
                                       tm.attribution_latency_cycles
                                 : 0.0,
                             3),
                   obs::top_stall_component(c), interferer});
        bench::json_report(
            "fleet_scaling",
            {bench::jstr("phase", "blame"), bench::jstr("tenant", name),
             bench::jint("served", tm.attribution_completed),
             bench::jint("stall_cycles", stall),
             bench::jint("latency_cycles", tm.attribution_latency_cycles),
             bench::jstr("top_stall", obs::top_stall_component(c)),
             bench::jstr("top_interferer", interferer)});
    }
    b.print(std::cout);
    std::cout << "\nAttribution decomposes each tenant's latency into six\n"
                 "exclusive components (bit-exact sum); the interferer\n"
                 "column is who held the resource during those stalls.\n";
    return 0;
}

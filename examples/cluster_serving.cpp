// Domain example: a heterogeneous serving cluster.
//
// Four SoCs — two with the Table II cache, two with a half-size cache —
// serve a shared Poisson stream of three models with a skewed traffic
// mix. The placement planner decides residency/replication against each
// SoC's page capacity, then the three routing policies compete on the
// identical stream: round_robin is load- and cache-blind,
// least_outstanding balances load, cache_affinity additionally keeps each
// model on SoCs where its pages are warm.
//
//   ./build/cluster_serving [arrivals]
//
// Observability knobs (see README "Observability"):
//   CAMDN_TRACE=out.trace.json    write a Chrome/Perfetto trace of the
//                                 per-tenant breakdown run
//   CAMDN_METRICS_JSONL=out.jsonl stream per-epoch/per-round telemetry
#include <cstdlib>
#include <iostream>

#include "bench/harness.h"
#include "serve/cluster.h"
#include "serve/placement.h"

using namespace camdn;

int main(int argc, char** argv) {
    bench::banner(
        "Cluster serving: 4 heterogeneous SoCs, 3 tenants, skewed mix\n"
        "(RS. 50%, MB. 25%, EF. 25%), one shared Poisson stream");

    serve::cluster_config base;
    for (int s = 0; s < 4; ++s) {
        serve::soc_instance_config inst;
        inst.slots = 2;
        inst.admission_queue_limit = 12;
        if (s >= 2) inst.soc.cache.total_bytes = mib(8);  // small-cache pair
        base.socs.push_back(inst);
    }
    base.models = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
                   &model::model_by_abbr("EF.")};
    base.traffic_share = {2.0, 1.0, 1.0};
    base.arrival_rate_per_ms = 3.0;
    base.total_arrivals = bench::fast_mode() ? 32 : 96;
    if (argc > 1) base.total_arrivals = std::atoi(argv[1]);

    const auto place = serve::plan_placement(base);
    std::cout << "Placement (model residency per SoC):\n";
    for (std::size_t s = 0; s < place.resident.size(); ++s) {
        std::cout << "  SoC " << s << " ("
                  << base.socs[s].soc.cache.total_bytes / mib(1) << "MB cache, "
                  << place.capacity_pages[s] << " pages):";
        for (auto m : place.resident[s])
            std::cout << ' ' << base.models[m]->abbr;
        std::cout << '\n';
    }
    std::cout << '\n';

    table_printer t({"policy", "served", "dropped", "p50 (ms)", "p95 (ms)",
                     "p99 (ms)", "queue p95 (ms)", "tput (/s)"});
    for (const auto pol : {serve::route_policy::round_robin,
                           serve::route_policy::least_outstanding,
                           serve::route_policy::cache_affinity}) {
        auto cfg = base;
        cfg.router = pol;
        const auto res = serve::run_cluster(cfg);
        t.add_row({serve::route_policy_name(pol), std::to_string(res.completed),
                   std::to_string(res.dropped_queue + res.dropped_unroutable),
                   fmt_fixed(res.fleet_latency_ms.p50(), 2),
                   fmt_fixed(res.fleet_latency_ms.p95(), 2),
                   fmt_fixed(res.fleet_latency_ms.p99(), 2),
                   fmt_fixed(res.fleet_queue_delay_ms.p95(), 2),
                   fmt_fixed(res.throughput_per_s(), 1)});
        bench::json_report("cluster_serving",
                           {bench::jstr("policy", serve::route_policy_name(pol)),
                            bench::jint("served", res.completed),
                            bench::jnum("p99_ms", res.fleet_latency_ms.p99())});
    }
    t.print(std::cout);

    // Per-tenant breakdown under the affinity router, with the
    // observability outputs attached when the env knobs ask for them
    // (observation only: the numbers below are identical either way).
    auto cfg = base;
    cfg.router = serve::route_policy::cache_affinity;
    if (const char* path = std::getenv("CAMDN_TRACE")) cfg.trace_path = path;
    if (const char* path = std::getenv("CAMDN_METRICS_JSONL"))
        cfg.metrics_jsonl_path = path;
    const auto res = serve::run_cluster(cfg);
    if (!cfg.trace_path.empty())
        std::cout << "\n[obs] Chrome trace written to " << cfg.trace_path
                  << " (load in Perfetto or chrome://tracing)\n";
    if (!cfg.metrics_jsonl_path.empty())
        std::cout << "[obs] telemetry JSONL streamed to "
                  << cfg.metrics_jsonl_path << "\n";
    std::cout << "\nPer-tenant (cache_affinity):\n\n";
    table_printer tt({"tenant", "routed", "served", "dropped", "p50 (ms)",
                      "p99 (ms)"});
    for (const auto& [abbr, tenant] : res.tenants)
        tt.add_row({abbr, std::to_string(tenant.routed),
                    std::to_string(tenant.completed),
                    std::to_string(tenant.dropped),
                    fmt_fixed(tenant.latency_ms.p50(), 2),
                    fmt_fixed(tenant.latency_ms.p99(), 2)});
    tt.print(std::cout);

    std::cout << "\nThe affinity router concentrates each tenant on a stable\n"
                 "subset of SoCs (bounded by the load-imbalance guard), so\n"
                 "co-located model diversity — and with it shared-cache\n"
                 "contention — drops without sacrificing balance.\n";
    return 0;
}

// Domain example: the adaptive control loop (src/adapt) end to end.
//
// Part 1 runs a bursty MMPP stream through static CaMDN(Full) and
// CaMDN(Adaptive) on one SoC and prints the telemetry the controller
// steers by (per-epoch page-wait pressure, look-ahead trajectory, DRAM
// utilization) next to the serving outcome. Part 2 rotates the tenant
// population (tenant_churn) — the drifting-mix case the static equal
// split handles worst. Part 3 closes the fleet loop: a 4-SoC cluster
// served in feedback rounds, where per-SoC telemetry rollups re-weight
// the router and sustained SLA violation re-plans placement.
//
//   ./build/adaptive_serving            (REPRO_FAST=1 shrinks everything)
//
// Observability: CAMDN_TRACE=<path> writes a Chrome trace of the Part-3
// fleet run, CAMDN_METRICS_JSONL=<path> streams its telemetry/attribution
// rows (both optional; results are bit-identical either way).
#include <cstdlib>
#include <iostream>

#include "bench/harness.h"
#include "serve/cluster.h"

using namespace camdn;

namespace {

void print_epochs(const sim::experiment_result& res, std::size_t max_rows) {
    table_printer t({"epoch", "span (ms)", "active", "page-wait frac",
                     "timeouts", "bw util", "idle pages"});
    const std::size_t n = std::min(res.telemetry.size(), max_rows);
    for (std::size_t i = 0; i < n; ++i) {
        const auto& e = res.telemetry[i];
        t.add_row({std::to_string(e.index), fmt_fixed(cycles_to_ms(e.span()), 2),
                   std::to_string(e.active_slots),
                   fmt_fixed(e.page_wait_frac(), 4),
                   std::to_string(e.total_timeouts()),
                   fmt_fixed(e.bw_utilization, 2),
                   std::to_string(e.idle_pages)});
    }
    t.print(std::cout);
    if (res.telemetry.size() > n)
        std::cout << "(" << res.telemetry.size() - n << " more epochs)\n";
}

}  // namespace

int main() {
    bench::banner(
        "Adaptive serving: telemetry-driven feedback control vs static\n"
        "CaMDN under bursty (MMPP) and drifting (tenant churn) traffic");

    const std::vector<const model::model*> workload{
        &model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
        &model::model_by_abbr("RS."), &model::model_by_abbr("VT.")};

    // ---- Part 1: MMPP burst on one SoC --------------------------------
    std::cout << "== Bursty MMPP stream (lull x0.25 / burst x4, "
                 "sojourn 4 ms) ==\n\n";

    sim::experiment_config base;
    base.kind = runtime::workload_kind::open_loop_mmpp;
    base.workload = workload;
    base.co_located = 6;
    base.arrival_rate_per_ms = 2.0;
    base.mmpp_rate_scale = {0.25, 4.0};
    base.mmpp_sojourn_ms = 4.0;
    base.total_arrivals = bench::fast_mode() ? 24 : 64;
    base.admission_queue_limit = 16;
    base.telemetry = true;

    const auto results = bench::run_policies(
        base, {sim::policy::camdn_full, sim::policy::camdn_adaptive});

    table_printer t({"policy", "served", "dropped", "mean lat (ms)",
                     "queue p95 (ms)", "epochs"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto pol = i == 0 ? sim::policy::camdn_full
                                : sim::policy::camdn_adaptive;
        const auto& res = results[i];
        t.add_row({sim::policy_name(pol), std::to_string(res.completions.size()),
                   std::to_string(res.rejected_arrivals),
                   fmt_fixed(res.avg_latency_ms(), 2),
                   fmt_fixed(res.queue_delay_ms.p95(), 2),
                   std::to_string(res.telemetry.size())});
    }
    t.print(std::cout);

    std::cout << "\nAdaptive run's telemetry (what the controller saw):\n\n";
    print_epochs(results[1], bench::fast_mode() ? 6 : 10);

    // ---- Part 2: tenant churn -----------------------------------------
    std::cout << "\n== Tenant churn (active pair rotates every 8 ms) ==\n\n";

    sim::experiment_config churn = base;
    churn.kind = runtime::workload_kind::tenant_churn;
    churn.churn_interval_ms = 8.0;
    churn.churn_active_models = 2;

    const auto churn_res = bench::run_policies(
        churn, {sim::policy::camdn_full, sim::policy::camdn_adaptive});
    table_printer ct({"policy", "served", "dropped", "mean lat (ms)",
                      "queue p95 (ms)"});
    for (std::size_t i = 0; i < churn_res.size(); ++i) {
        const auto pol = i == 0 ? sim::policy::camdn_full
                                : sim::policy::camdn_adaptive;
        const auto& res = churn_res[i];
        ct.add_row({sim::policy_name(pol),
                    std::to_string(res.completions.size()),
                    std::to_string(res.rejected_arrivals),
                    fmt_fixed(res.avg_latency_ms(), 2),
                    fmt_fixed(res.queue_delay_ms.p95(), 2)});
    }
    ct.print(std::cout);

    // ---- Part 3: fleet feedback rounds --------------------------------
    std::cout << "\n== Fleet feedback: 4 SoCs, bursty stream, 4 rounds ==\n\n";

    serve::soc_instance_config inst;
    inst.pol = sim::policy::camdn_adaptive;
    inst.slots = 2;
    inst.admission_queue_limit = 12;
    auto fleet = serve::uniform_cluster(4, inst);
    fleet.models = workload;
    fleet.process = serve::arrival_process::mmpp;
    fleet.arrival_rate_per_ms = 6.0;
    fleet.total_arrivals = bench::fast_mode() ? 64 : 192;
    fleet.feedback_rounds = 4;
    if (const char* path = std::getenv("CAMDN_TRACE")) {
        fleet.trace_path = path;
        std::cout << "[obs] writing Chrome trace to " << path << "\n";
    }
    if (const char* path = std::getenv("CAMDN_METRICS_JSONL")) {
        fleet.metrics_jsonl_path = path;
        std::cout << "[obs] streaming metrics JSONL to " << path << "\n";
    }
    const auto res = serve::run_cluster(fleet);

    std::cout << "served " << res.completed << "/" << res.arrivals
              << ", dropped " << res.dropped_queue + res.dropped_unroutable
              << ", SLA " << fmt_fixed(res.sla_rate() * 100.0, 1)
              << "%, p99 " << fmt_fixed(res.fleet_latency_ms.p99(), 2)
              << " ms, re-placements " << res.replacements << "\n";
    std::cout << "final router weights:";
    for (const double w : res.route_weights)
        std::cout << " " << fmt_fixed(w, 2);
    std::cout << "\n";

    std::cout << "\nThe controller widens per-slot cache shares in lulls\n"
                 "(idle slots no longer strand pages), backs the Algorithm-1\n"
                 "look-ahead off when page waits pile up, and the fleet loop\n"
                 "drains traffic away from pressured SoCs between rounds.\n";
    return 0;
}

// Domain example: an AR/VR-style SoC running a vision + audio + language
// pipeline concurrently (the multi-DNN applications motivating the paper's
// introduction). Shows per-model latency and memory traffic under every
// policy, and the page-level view of the dynamic cache allocation.
//
//   ./build/multi_tenant_colocation
#include <iostream>

#include "bench/harness.h"

int main() {
    using namespace camdn;

    // An AR headset pipeline: object detection (ResNet50), hand/scene
    // segmentation backbone (MobileNet-v2), speech recognition
    // (Wav2Vec2) and an on-device assistant encoder (BERT) — co-located
    // on one SoC with 8 busy task slots.
    std::vector<const model::model*> pipeline{
        &model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
        &model::model_by_abbr("WV."), &model::model_by_abbr("BE.")};

    bench::banner(
        "AR/VR co-location scenario: RS. + MB. + WV. + BE.\n"
        "8 task slots on 16 NPUs, 16 MiB shared cache");

    sim::experiment_config cfg;
    cfg.workload = pipeline;
    cfg.co_located = 8;
    cfg.inferences_per_slot = 3;
    cfg.seed = 2025;
    const std::vector<sim::policy> pols{sim::policy::shared_baseline,
                                        sim::policy::aurora,
                                        sim::policy::camdn_full};
    const auto results = bench::run_policies(cfg, pols);

    table_printer t({"policy", "model", "mean latency (ms)", "DRAM (MiB/inf)",
                     "inferences"});
    for (std::size_t i = 0; i < pols.size(); ++i) {
        for (const auto* m : pipeline) {
            if (results[i].completions_of(m->abbr) == 0) continue;
            t.add_row({sim::policy_name(pols[i]), m->abbr,
                       fmt_fixed(results[i].mean_latency_ms(m->abbr), 2),
                       fmt_fixed(results[i].mem_mb_per_inference(m->abbr), 1),
                       std::to_string(results[i].completions_of(m->abbr))});
        }
        t.add_row({"", "", "", "", ""});
    }
    t.print(std::cout);

    std::cout << "\nThe latency-critical small models (MB.) benefit most:\n"
                 "CaMDN pins their intermediates in model-exclusive cache\n"
                 "regions instead of letting the heavyweight co-runners\n"
                 "(BE., WV.) thrash them out of the shared cache.\n";
    return 0;
}

// Domain example: an AR/VR-style SoC running a vision + audio + language
// pipeline concurrently (the multi-DNN applications motivating the paper's
// introduction). Shows per-model latency and memory traffic under every
// policy, and the page-level view of the dynamic cache allocation.
//
//   ./build/examples/multi_tenant_colocation
#include <iostream>

#include "common/stats.h"
#include "common/table_printer.h"
#include "model/model_zoo.h"
#include "sim/experiment.h"

int main() {
    using namespace camdn;

    // An AR headset pipeline: object detection (ResNet50), hand/scene
    // segmentation backbone (MobileNet-v2), speech recognition
    // (Wav2Vec2) and an on-device assistant encoder (BERT) — co-located
    // on one SoC with 8 busy task slots.
    std::vector<const model::model*> pipeline{
        &model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
        &model::model_by_abbr("WV."), &model::model_by_abbr("BE.")};

    std::cout << "AR/VR co-location scenario: RS. + MB. + WV. + BE.\n"
              << "8 task slots on 16 NPUs, 16 MiB shared cache\n\n";

    table_printer t({"policy", "model", "mean latency (ms)", "DRAM (MiB/inf)",
                     "inferences"});
    for (sim::policy pol : {sim::policy::shared_baseline, sim::policy::aurora,
                            sim::policy::camdn_full}) {
        sim::experiment_config cfg;
        cfg.pol = pol;
        cfg.workload = pipeline;
        cfg.co_located = 8;
        cfg.inferences_per_slot = 3;
        cfg.seed = 2025;
        const auto res = sim::run_experiment(cfg);
        for (const auto* m : pipeline) {
            if (res.completions_of(m->abbr) == 0) continue;
            t.add_row({sim::policy_name(pol), m->abbr,
                       fmt_fixed(res.mean_latency_ms(m->abbr), 2),
                       fmt_fixed(res.mem_mb_per_inference(m->abbr), 1),
                       std::to_string(res.completions_of(m->abbr))});
        }
        t.add_row({"", "", "", "", ""});
    }
    t.print(std::cout);

    std::cout << "\nThe latency-critical small models (MB.) benefit most:\n"
                 "CaMDN pins their intermediates in model-exclusive cache\n"
                 "regions instead of letting the heavyweight co-runners\n"
                 "(BE., WV.) thrash them out of the shared cache.\n";
    return 0;
}

// Developer example: explore the offline cache-aware mapping of one model.
// Prints the layer-block segmentation and the per-layer Mapping Candidate
// Tables (usage level, tiling, pinning, pages, traffic), then demonstrates
// the compact mapping-file round trip.
//
//   ./build/mapping_explorer [abbr] [max_layers]   (default RS. 12)
#include <iostream>
#include <sstream>

#include "bench/harness.h"
#include "mapping/layer_mapper.h"
#include "mapping/mct_io.h"

int main(int argc, char** argv) {
    using namespace camdn;

    const std::string abbr = argc > 1 ? argv[1] : "RS.";
    const std::size_t max_layers = argc > 2 ? std::atoi(argv[2]) : 12;

    bool known = false;
    for (const auto* candidate : bench::zoo()) known |= candidate->abbr == abbr;
    if (!known) {
        std::cerr << "Unknown model '" << abbr << "'. Table I abbreviations:";
        for (const auto* candidate : bench::zoo())
            std::cerr << ' ' << candidate->abbr;
        std::cerr << '\n';
        return 1;
    }

    const auto& m = model::model_by_abbr(abbr);
    const auto cfg = sim::soc_config{}.mapper();
    const auto mapping = mapping::map_model(m, cfg);

    std::cout << "Offline mapping of " << m.name << " (" << m.layers.size()
              << " layers, " << fmt_fixed(m.total_macs() / 1e9, 2)
              << " GMACs)\n\n";

    std::cout << "Layer blocks (LBM segmentation, budget "
              << cfg.lbm_block_budget / mib(1) << " MiB):\n";
    for (std::size_t b = 0; b < mapping.blocks.size() && b < 10; ++b) {
        const auto& blk = mapping.blocks[b];
        std::cout << "  block " << b << ": layers [" << blk.first << ", "
                  << blk.last << "], region "
                  << fmt_fixed(blk.peak_bytes / 1024.0, 0) << " KiB\n";
    }
    if (mapping.blocks.size() > 10)
        std::cout << "  ... (" << mapping.blocks.size() << " blocks total)\n";

    std::cout << "\nMapping candidate tables:\n";
    table_printer t({"layer", "kind", "cand", "pages", "tm", "tn", "tk",
                     "pinned W/I (KiB)", "DRAM (KiB)", "est (us)"});
    for (std::size_t i = 0; i < std::min(m.layers.size(), max_layers); ++i) {
        const auto& table = mapping.tables[i];
        bool first = true;
        auto add = [&](const mapping::mapping_candidate& c,
                       const std::string& tag) {
            t.add_row({first ? m.layers[i].name : "", first ? "" : "", tag,
                       std::to_string(c.pages_needed), std::to_string(c.tm),
                       std::to_string(c.tn), std::to_string(c.tk),
                       fmt_fixed(c.weights_pinned_bytes / 1024.0, 0) + "/" +
                           fmt_fixed(c.input_pinned_bytes / 1024.0, 0),
                       fmt_fixed(c.dram_bytes() / 1024.0, 0),
                       fmt_fixed(c.est_cycles / 1000.0, 1)});
            first = false;
        };
        for (const auto& c : table.lwm)
            add(c, "LWM@" + std::to_string(c.usage_level / 1024) + "K");
        if (table.lbm) add(*table.lbm, "LBM");
    }
    t.print(std::cout);

    // Compact model-mapping-file round trip (paper §III-C3).
    const std::string file = mapping::mapping_to_string(mapping);
    const auto restored = mapping::mapping_from_string(file);
    std::cout << "\nMapping file: " << file.size() / 1024 << " KiB for "
              << mapping.tables.size() << " MCTs; round-trip "
              << (restored.tables.size() == mapping.tables.size() ? "OK"
                                                                  : "FAILED")
              << '\n';
    return 0;
}

// Domain example: QoS-constrained serving. Every inference carries a
// deadline (Table I targets at a chosen strictness); the example reports
// SLA satisfaction, system throughput and fairness per policy — the
// cloud/edge serving scenario of the paper's QoS experiment.
//
//   ./build/qos_scheduling [qos_scale]   (default 1.0)
#include <cstdlib>
#include <iostream>

#include "bench/harness.h"

int main(int argc, char** argv) {
    using namespace camdn;

    const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    sim::soc_config soc;
    std::vector<const model::model*> workload{
        &model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
        &model::model_by_abbr("EF."), &model::model_by_abbr("GN.")};

    std::cout << "QoS serving scenario at " << scale
              << "x Table I latency targets\n";
    std::cout << "Deadlines: ";
    for (const auto* m : workload)
        std::cout << m->abbr << fmt_fixed(scale * m->qos_ms, 1) << "ms  ";
    std::cout << "\n\nMeasuring isolated latencies for normalized progress...\n";
    const auto& iso = sim::cached_isolated_latencies(soc, workload);

    sim::experiment_config cfg;
    cfg.soc = soc;
    cfg.workload = workload;
    cfg.co_located = 12;
    cfg.inferences_per_slot = 2;
    cfg.seed = 7;
    cfg.qos_mode = true;
    cfg.qos_scale = scale;
    const std::vector<sim::policy> pols{sim::policy::moca, sim::policy::aurora,
                                        sim::policy::camdn_full};
    const auto results = bench::run_policies(cfg, pols);

    table_printer t({"policy", "SLA rate", "STP", "fairness", "mean lat (ms)"});
    for (std::size_t i = 0; i < pols.size(); ++i) {
        const auto records = bench::qos_records(results[i], scale, iso);
        const auto m = runtime::compute_qos(records, cfg.co_located);
        t.add_row({sim::policy_name(pols[i]), fmt_fixed(m.sla_rate, 3),
                   fmt_fixed(m.stp, 2), fmt_fixed(m.fairness, 3),
                   fmt_fixed(results[i].avg_latency_ms(), 2)});
    }
    t.print(std::cout);

    std::cout << "\nCaMDN composes its cache scheduling with AuRORA's NPU and\n"
                 "bandwidth allocators in QoS mode: faster inferences free\n"
                 "bandwidth and cores, lifting SLA satisfaction without\n"
                 "sacrificing fairness (paper Fig 9).\n";
    return 0;
}

// Domain example: open-loop serving. Unlike the paper's closed-loop slots
// (which re-dispatch on completion and therefore never queue), requests
// here arrive on their own clock: a Poisson stream at a configurable rate
// hits a bounded admission queue, and overload shows up as queue delay and
// dropped arrivals. A second part replays an explicit bursty trace.
//
//   ./build/open_loop_serving [rate_per_ms]   (default sweep 1/2/4 per ms)
//
// Observability: CAMDN_TRACE=<path> writes a Chrome trace of the burst
// replay, CAMDN_METRICS_JSONL=<path> streams its epoch/attribution rows
// plus a final metrics dump (camdn_report-consumable). Both optional;
// results are bit-identical either way.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/harness.h"
#include "obs/attribution.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace camdn;

int main(int argc, char** argv) {
    const std::vector<const model::model*> workload{
        &model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
        &model::model_by_abbr("RS.")};

    bench::banner(
        "Open-loop serving: Poisson arrivals on 4 task slots, bounded\n"
        "admission queue (8 requests), shared baseline vs CaMDN(Full)");

    std::vector<double> rates{1.0, 2.0, 4.0};
    if (argc > 1) rates = {std::atof(argv[1])};

    const std::vector<sim::policy> pols{sim::policy::shared_baseline,
                                        sim::policy::camdn_full};
    std::vector<sim::experiment_config> cfgs;
    for (const double rate : rates) {
        for (const auto pol : pols) {
            sim::experiment_config cfg;
            cfg.pol = pol;
            cfg.kind = runtime::workload_kind::open_loop_poisson;
            cfg.workload = workload;
            cfg.co_located = 4;
            cfg.arrival_rate_per_ms = rate;
            cfg.total_arrivals = bench::fast_mode() ? 16 : 48;
            cfg.admission_queue_limit = 8;
            cfg.seed = 42;
            cfgs.push_back(std::move(cfg));
        }
    }
    const auto results = sim::run_sweep(cfgs);

    table_printer t({"rate (/ms)", "policy", "served", "dropped",
                     "mean lat (ms)", "queue p50 (ms)", "queue p95 (ms)"});
    std::size_t idx = 0;
    for (const double rate : rates) {
        for (const auto pol : pols) {
            const auto& res = results[idx++];
            t.add_row({fmt_fixed(rate, 1), sim::policy_name(pol),
                       std::to_string(res.completions.size()),
                       std::to_string(res.rejected_arrivals),
                       fmt_fixed(res.avg_latency_ms(), 2),
                       fmt_fixed(res.queue_delay_ms.p50(), 2),
                       fmt_fixed(res.queue_delay_ms.p95(), 2)});
        }
    }
    t.print(std::cout);

    std::cout << "\nTrace replay: a 6-request burst at t=0 followed by a\n"
                 "second burst at t=2ms (e.g. a frame boundary in an AR\n"
                 "pipeline), on 2 slots:\n\n";

    sim::experiment_config burst;
    burst.pol = sim::policy::camdn_full;
    burst.kind = runtime::workload_kind::trace_replay;
    burst.co_located = 2;
    for (int i = 0; i < 6; ++i) {
        burst.trace.push_back({0, &model::model_by_abbr("MB.")});
        burst.trace.push_back(
            {ms_to_cycles(2.0), &model::model_by_abbr("MB.")});
    }

    // Optional observability on the burst replay (observation only: the
    // table below is bit-identical with or without these attached).
    const char* trace_path = std::getenv("CAMDN_TRACE");
    const char* jsonl_path = std::getenv("CAMDN_METRICS_JSONL");
    obs::trace_recorder trace(0);
    obs::metrics_registry metrics;
    obs::latency_attributor attr;
    std::ofstream jsonl_out;
    obs::jsonl_sink epochs(&jsonl_out);
    if (trace_path != nullptr) {
        burst.obs.trace = &trace;
        std::cout << "[obs] writing Chrome trace to " << trace_path << "\n";
    }
    if (jsonl_path != nullptr) {
        jsonl_out.open(jsonl_path);
        burst.obs.metrics = &metrics;
        burst.obs.epochs = &epochs;
        std::cout << "[obs] streaming metrics JSONL to " << jsonl_path
                  << "\n";
    }
    if (trace_path != nullptr || jsonl_path != nullptr) burst.obs.attr = &attr;

    const auto res = sim::run_experiment(burst);

    if (trace_path != nullptr) {
        std::ofstream tf(trace_path);
        obs::write_chrome_trace(tf, trace.events());
    }
    if (jsonl_path != nullptr) {
        jsonl_out << attr.jsonl_row(0, 0) << "\n";
        std::ostringstream payload;
        metrics.write_json(payload);
        jsonl_out << "{\"type\":\"metrics\",\"payload\":" << payload.str()
                  << "}\n";
    }

    table_printer bt({"arrival (ms)", "start (ms)", "end (ms)",
                      "queue delay (ms)"});
    for (const auto& rec : res.completions)
        bt.add_row({fmt_fixed(cycles_to_ms(rec.arrival), 2),
                    fmt_fixed(cycles_to_ms(rec.start), 2),
                    fmt_fixed(cycles_to_ms(rec.end), 2),
                    fmt_fixed(cycles_to_ms(rec.queue_delay()), 2)});
    bt.print(std::cout);

    std::cout << "\nClosed-loop slots hide queueing by construction; the\n"
                 "open-loop generators expose it, which is the regime where\n"
                 "cache scheduling buys head-room before the queue grows.\n";
    return 0;
}

// Quickstart: co-locate eight DNNs on a 16-NPU SoC (Table II defaults) and
// compare the shared-cache baseline against CaMDN(Full). The three policy
// runs execute in parallel on the sweep engine.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart
#include <iostream>

#include "bench/harness.h"

int main() {
    using namespace camdn;

    // Table II SoC: 16 NPUs (32x32 PEs, 256 KiB scratchpads), 16 MiB shared
    // cache in 8 slices with 12/16 ways for the NPU subspace, 102.4 GB/s
    // DRAM over 4 channels.
    sim::experiment_config cfg;
    cfg.co_located = 8;
    cfg.inferences_per_slot = 1;
    cfg.seed = 7;

    bench::banner("CaMDN quickstart: 8 co-located DNNs, " +
                  bench::soc_summary(cfg.soc));

    const std::vector<sim::policy> pols{sim::policy::shared_baseline,
                                        sim::policy::camdn_hw_only,
                                        sim::policy::camdn_full};
    const auto results = bench::run_policies(cfg, pols);

    table_printer table({"policy", "avg latency (ms)", "DRAM per inference (MiB)",
                         "cache hit rate"});
    for (std::size_t i = 0; i < pols.size(); ++i) {
        table.add_row({sim::policy_name(pols[i]),
                       fmt_fixed(results[i].avg_latency_ms(), 2),
                       fmt_fixed(results[i].mem_mb_per_inference(), 1),
                       fmt_fixed(results[i].cache_hit_rate, 3)});
    }
    table.print(std::cout);

    std::cout << "\nCaMDN eliminates inter-model cache contention with\n"
                 "model-exclusive regions and cuts DRAM traffic via\n"
                 "cache-aware mapping + dynamic allocation (LBM).\n";
    return 0;
}

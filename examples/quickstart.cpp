// Quickstart: co-locate eight DNNs on a 16-NPU SoC (Table II defaults) and
// compare the shared-cache baseline against CaMDN(Full).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "common/table_printer.h"
#include "common/stats.h"
#include "model/model_zoo.h"
#include "sim/experiment.h"

int main() {
    using namespace camdn;

    // Table II SoC: 16 NPUs (32x32 PEs, 256 KiB scratchpads), 16 MiB shared
    // cache in 8 slices with 12/16 ways for the NPU subspace, 102.4 GB/s
    // DRAM over 4 channels.
    sim::soc_config soc;

    sim::experiment_config cfg;
    cfg.soc = soc;
    cfg.co_located = 8;
    cfg.inferences_per_slot = 1;
    cfg.seed = 7;

    std::cout << "CaMDN quickstart: 8 co-located DNNs, "
              << soc.npu.cores << " NPUs, "
              << soc.cache.total_bytes / mib(1) << " MiB shared cache\n\n";

    table_printer table({"policy", "avg latency (ms)", "DRAM per inference (MiB)",
                         "cache hit rate"});
    for (sim::policy pol :
         {sim::policy::shared_baseline, sim::policy::camdn_hw_only,
          sim::policy::camdn_full}) {
        cfg.pol = pol;
        const auto res = sim::run_experiment(cfg);
        table.add_row({sim::policy_name(pol),
                       fmt_fixed(res.avg_latency_ms(), 2),
                       fmt_fixed(res.mem_mb_per_inference(), 1),
                       fmt_fixed(res.cache_hit_rate, 3)});
    }
    table.print(std::cout);

    std::cout << "\nCaMDN eliminates inter-model cache contention with\n"
                 "model-exclusive regions and cuts DRAM traffic via\n"
                 "cache-aware mapping + dynamic allocation (LBM).\n";
    return 0;
}

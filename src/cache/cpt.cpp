#include "cache/cpt.h"

#include <cassert>

namespace camdn::cache {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_of(std::uint64_t v) {
    std::uint32_t s = 0;
    while ((std::uint64_t{1} << s) < v) ++s;
    return s;
}
}  // namespace

cache_page_table::cache_page_table(const cache_config& config)
    : config_(config), entries_(config.pages_total()) {
    sets_per_page_ = config_.sets_per_page();
    pow2_geometry_ = is_pow2(config_.page_bytes) && is_pow2(config_.slices) &&
                     is_pow2(config_.pages_per_way());
    if (pow2_geometry_) {
        page_shift_ = log2_of(config_.page_bytes);
        page_mask_ = config_.page_bytes - 1;
        slice_shift_ = log2_of(config_.slices);
        slice_mask_ = config_.slices - 1;
        ppw_shift_ = log2_of(config_.pages_per_way());
        ppw_mask_ = config_.pages_per_way() - 1;
    }
}

void cache_page_table::map(std::uint32_t vcpn, std::uint32_t pcpn) {
    assert(vcpn < entries_.size());
    assert(pcpn < config_.pages_total());
    if (!entries_[vcpn].valid) ++mapped_;
    entries_[vcpn] = entry{pcpn, true};
}

void cache_page_table::unmap(std::uint32_t vcpn) {
    assert(vcpn < entries_.size());
    if (entries_[vcpn].valid) {
        entries_[vcpn].valid = false;
        --mapped_;
    }
}

void cache_page_table::clear() {
    for (auto& e : entries_) e.valid = false;
    mapped_ = 0;
}

bool cache_page_table::is_mapped(std::uint32_t vcpn) const {
    return vcpn < entries_.size() && entries_[vcpn].valid;
}

std::optional<std::uint32_t> cache_page_table::lookup(std::uint32_t vcpn) const {
    if (!is_mapped(vcpn)) return std::nullopt;
    return entries_[vcpn].pcpn;
}

pcaddr cache_page_table::translate(addr_t vcaddr) const {
    pcaddr out;
    if (pow2_geometry_) {
        const std::uint32_t vcpn =
            static_cast<std::uint32_t>(vcaddr >> page_shift_);
        assert(is_mapped(vcpn) && "translate() on an unmapped cache page");
        const std::uint32_t pcpn = entries_[vcpn].pcpn;
        const std::uint64_t line_in_page = (vcaddr & page_mask_) / line_bytes;
        out.slice = static_cast<std::uint32_t>(line_in_page & slice_mask_);
        const std::uint32_t set_in_page =
            static_cast<std::uint32_t>(line_in_page >> slice_shift_);
        out.way = pcpn >> ppw_shift_;
        out.set = (pcpn & ppw_mask_) * sets_per_page_ + set_in_page;
        return out;
    }
    const std::uint32_t vcpn =
        static_cast<std::uint32_t>(vcaddr / config_.page_bytes);
    assert(is_mapped(vcpn) && "translate() on an unmapped cache page");
    const std::uint32_t pcpn = entries_[vcpn].pcpn;

    const std::uint64_t line_in_page =
        (vcaddr % config_.page_bytes) / line_bytes;
    out.slice = static_cast<std::uint32_t>(line_in_page % config_.slices);
    const std::uint32_t set_in_page =
        static_cast<std::uint32_t>(line_in_page / config_.slices);
    out.way = pcpn / config_.pages_per_way();
    out.set = (pcpn % config_.pages_per_way()) * sets_per_page_ + set_in_page;
    return out;
}

void cache_page_table::save_state(snapshot_writer& w) const {
    w.u64(entries_.size());
    for (const auto& e : entries_) {
        w.u32(e.pcpn);
        w.b(e.valid);
    }
}

void cache_page_table::restore_state(snapshot_reader& r) {
    const std::uint64_t n = r.count(5);
    if (n != entries_.size())
        throw snapshot_error("snapshot CPT capacity mismatch: saved " +
                             std::to_string(n) + ", configured " +
                             std::to_string(entries_.size()));
    mapped_ = 0;
    for (auto& e : entries_) {
        e.pcpn = r.u32();
        e.valid = r.b();
        if (e.valid) {
            if (e.pcpn >= config_.pages_total())
                throw snapshot_error("snapshot CPT entry maps pcpn " +
                                     std::to_string(e.pcpn) +
                                     " beyond the cache's " +
                                     std::to_string(config_.pages_total()) +
                                     " pages");
            ++mapped_;
        }
    }
}

}  // namespace camdn::cache

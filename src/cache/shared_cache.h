// Sliced shared last-level cache with two access paths:
//
//  * transparent path — conventional set-associative LRU lookup used by the
//    general-purpose subspace and by all baseline policies (the NPU DMA of
//    MoCA/AuRORA/shared-baseline goes through here and contends freely);
//  * NEC path — the NPU-Exclusive Controller semantics of CaMDN
//    (§III-B2): explicit line read/write inside a model-exclusive region,
//    fill/writeback against DRAM, bypass around the cache, and multicast
//    variants that combine identical requests from a group of NPUs.
//
// The two paths are disjoint by way index once partitioning is enabled:
// the way-mask register keeps transparent fills inside the low
// `cpu_ways` ways while NEC operations address the high `npu_ways` ways
// through CPT translation.
//
// Timing: each slice serves one line per cycle (tracked as a busy-until
// horizon per slice); DRAM interactions delegate to dram::dram_system.
// Burst entry points exploit the fact that consecutive lines stripe across
// slices, so a burst's slice occupancy is computed in O(slices).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adapt/telemetry.h"
#include "cache/cache_config.h"
#include "cache/cpt.h"
#include "cache/page_allocator.h"
#include "common/types.h"
#include "dram/dram_system.h"

namespace camdn::obs {
class latency_attributor;
}

namespace camdn::cache {

struct cache_stats {
    // Transparent path.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t read_miss_fills = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t evictions = 0;
    /// Evictions where the victim belonged to a different task — the
    /// paper's definition of cache contention (§II-C).
    std::uint64_t inter_task_evictions = 0;

    // NEC path.
    std::uint64_t region_reads = 0;
    std::uint64_t region_writes = 0;
    std::uint64_t region_fills = 0;
    std::uint64_t region_writebacks = 0;
    std::uint64_t bypass_reads = 0;
    std::uint64_t bypass_writes = 0;
    std::uint64_t multicast_reads = 0;
    /// Requests that multicast combining removed from the NoC/memory.
    std::uint64_t multicast_combined = 0;
    /// Total slice service slots consumed (1 cycle each).
    std::uint64_t slice_busy_cycles = 0;

    double hit_rate() const {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

struct access_result {
    bool hit = false;
    cycle_t done = 0;
};

class shared_cache {
public:
    shared_cache(const cache_config& config, dram::dram_system& dram);

    const cache_config& config() const { return config_; }

    // ---- Partitioning (way-mask register) ----

    /// Number of ways the transparent path may allocate into. Baselines run
    /// unpartitioned (== config.ways); CaMDN policies restrict the
    /// transparent path to config.cpu_ways().
    void set_transparent_ways(std::uint32_t ways);
    std::uint32_t transparent_ways() const { return transparent_ways_; }

    // ---- Transparent path ----

    access_result transparent_access(addr_t paddr, bool is_write,
                                     cycle_t arrival, task_id task);

    /// Accesses `nlines` consecutive lines; returns completion of the last.
    cycle_t transparent_burst(addr_t paddr, std::uint64_t nlines, bool is_write,
                              cycle_t arrival, task_id task);

    /// Per-task transparent hit/miss counts (Fig 2's hit-rate metric).
    std::uint64_t task_hits(task_id task) const;
    std::uint64_t task_misses(task_id task) const;

    // ---- Model-exclusive regions (CPT + page pool) ----

    cache_page_table& cpt(task_id task);
    void destroy_cpt(task_id task);
    page_allocator& pages() { return pages_; }
    const page_allocator& pages() const { return pages_; }

    // ---- NEC semantics (single line) ----

    cycle_t region_read(task_id task, addr_t vcaddr, cycle_t arrival);
    cycle_t region_write(task_id task, addr_t vcaddr, cycle_t arrival);
    cycle_t region_fill(task_id task, addr_t vcaddr, addr_t dram_addr,
                        cycle_t arrival);
    cycle_t region_writeback(task_id task, addr_t vcaddr, addr_t dram_addr,
                             cycle_t arrival);
    cycle_t bypass_read(addr_t dram_addr, cycle_t arrival, task_id task);
    cycle_t bypass_write(addr_t dram_addr, cycle_t arrival, task_id task);
    cycle_t multicast_read(task_id task, addr_t vcaddr, cycle_t arrival,
                           std::uint32_t group_size);
    cycle_t multicast_bypass_read(addr_t dram_addr, cycle_t arrival,
                                  task_id task, std::uint32_t group_size);

    // ---- NEC semantics (bursts over consecutive lines) ----

    cycle_t region_read_burst(task_id task, addr_t vcaddr, std::uint64_t nlines,
                              cycle_t arrival, std::uint32_t group_size = 1);
    cycle_t region_write_burst(task_id task, addr_t vcaddr, std::uint64_t nlines,
                               cycle_t arrival);
    cycle_t region_fill_burst(task_id task, addr_t vcaddr, addr_t dram_addr,
                              std::uint64_t nlines, cycle_t arrival);
    cycle_t region_writeback_burst(task_id task, addr_t vcaddr, addr_t dram_addr,
                                   std::uint64_t nlines, cycle_t arrival);
    cycle_t bypass_read_burst(addr_t dram_addr, std::uint64_t nlines,
                              cycle_t arrival, task_id task,
                              std::uint32_t group_size = 1);
    cycle_t bypass_write_burst(addr_t dram_addr, std::uint64_t nlines,
                               cycle_t arrival, task_id task);

    const cache_stats& stats() const { return stats_; }
    void reset_stats();

    /// Attaches the per-epoch telemetry bus (nullptr detaches; hooks are a
    /// null check when telemetry is off).
    void set_telemetry(adapt::telemetry_bus* bus) { telemetry_ = bus; }

    /// Attaches the latency attributor (nullptr detaches): slice-occupancy
    /// waits are charged against each slice's previous user and
    /// transparent read misses against the evicted line's owner.
    /// Observation only — the side tables never enter snapshot bytes.
    void set_attribution(obs::latency_attributor* attr);

    /// Drops every transparent line (used between experiment repetitions).
    void invalidate_all();

    /// Checkpoint support: serializes / restores the full warm state —
    /// transparent lines with their LRU order, slice busy horizons
    /// (absolute cycles; the resumed run continues the same clock),
    /// cumulative stats, per-task hit/miss counters, the page pool and
    /// every live CPT. restore_state throws snapshot_error on a geometry
    /// mismatch.
    void save_state(snapshot_writer& w) const;
    void restore_state(snapshot_reader& r);

private:
    struct line_entry {
        std::uint64_t tag = 0;  // full line id, so the victim address is known
        std::uint64_t lru = 0;
        task_id owner = no_task;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t entry_index(std::uint32_t slice, std::uint32_t set,
                            std::uint32_t way) const {
        return (static_cast<std::size_t>(slice) * sets_ + set) * config_.ways + way;
    }

    /// Reserves one service slot on `slice` at or after `arrival`; returns
    /// the cycle the slot completes. `task` is the requester, for
    /// attribution only (no_task = untracked) — timing ignores it.
    cycle_t occupy_slice(std::uint32_t slice, cycle_t arrival,
                         task_id task = no_task);

    /// Reserves `nlines` striped service slots starting at `start_slice`.
    cycle_t occupy_striped(std::uint32_t start_slice, std::uint64_t nlines,
                           cycle_t arrival, task_id task = no_task);

    void bump_task(std::vector<std::uint64_t>& v, task_id task);

    cache_config config_;
    dram::dram_system& dram_;
    std::uint32_t sets_ = 0;
    std::uint32_t transparent_ways_ = 0;
    // Transparent lookup decodes slice/set once per line on the hot path;
    // power-of-two geometries (every stock config) use shift/mask, which
    // yields the same quotients as the div/mod fallback bit for bit.
    bool pow2_geometry_ = false;
    std::uint32_t slice_shift_ = 0;
    std::uint64_t slice_mask_ = 0;
    std::uint64_t set_mask_ = 0;
    std::vector<line_entry> lines_;
    std::vector<cycle_t> slice_free_;
    std::uint64_t lru_tick_ = 0;

    page_allocator pages_;
    /// Per-task CPTs, indexed by task id (small dense ints) — the hot NEC
    /// path reaches its table with one load instead of a hash probe. Tasks
    /// without a table hold nullptr.
    std::vector<std::unique_ptr<cache_page_table>> cpts_;

    cache_stats stats_;
    adapt::telemetry_bus* telemetry_ = nullptr;
    std::vector<std::uint64_t> task_hits_;
    std::vector<std::uint64_t> task_misses_;

    // Attribution side tables (observation only, never serialized).
    obs::latency_attributor* attr_ = nullptr;
    std::vector<task_id> slice_user_;  // last occupant per slice
    cycle_t miss_penalty_cycles_ = 0;  // isolated fill cost of a read miss
};

}  // namespace camdn::cache

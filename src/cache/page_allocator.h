// Central allocator for the NPU-subspace cache pages.
//
// Algorithm 1 of the paper requests pages at layer boundaries and queries
// `idlePages()`; this allocator is that shared pool. Pages are identified
// by pcpn and belong to the NPU ways only (the transparent subspace is
// never handed out). Allocation is all-or-nothing per request — a model
// region must be fully resident before a layer may use it.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache_config.h"
#include "common/snapshot_io.h"
#include "common/types.h"

namespace camdn::cache {

class page_allocator {
public:
    explicit page_allocator(const cache_config& config);

    /// Pages currently unassigned (Algorithm 1's idlePages()).
    std::uint32_t idle_pages() const {
        return static_cast<std::uint32_t>(free_.size());
    }

    /// Total allocatable pages (NPU subspace).
    std::uint32_t total_pages() const { return total_; }

    /// Pages currently held by `task`.
    std::uint32_t allocated(task_id task) const;

    /// The pcpns currently held by `task`, in allocation order (empty when
    /// the task holds nothing).
    const std::vector<std::uint32_t>& pages_of(task_id task) const;

    /// Attempts to take `count` pages for `task`; returns their pcpns or
    /// nullopt when fewer than `count` pages are idle (nothing is taken).
    std::optional<std::vector<std::uint32_t>> try_allocate(task_id task,
                                                           std::uint32_t count);

    /// Returns the `count` most recently allocated pages of `task` to the
    /// pool and reports which pcpns were freed. count is clamped to the
    /// task's holdings.
    std::vector<std::uint32_t> release(task_id task, std::uint32_t count);

    /// Returns every page held by `task`.
    std::vector<std::uint32_t> release_all(task_id task);

    /// Sum of every task's holdings + idle == total (invariant checker).
    bool accounting_consistent() const;

    /// Checkpoint support. The exact free-list order is captured (LIFO
    /// handout order determines which pcpns future allocations receive, so
    /// a resumed run must replay it bit for bit); holdings serialize in
    /// ascending task order so snapshot bytes are deterministic.
    void save_state(snapshot_writer& w) const;
    void restore_state(snapshot_reader& r);

private:
    std::uint32_t total_ = 0;
    std::vector<std::uint32_t> free_;  // LIFO free list of pcpns
    std::unordered_map<task_id, std::vector<std::uint32_t>> held_;
};

}  // namespace camdn::cache

// Cache Page Table (CPT): hardware paging of the NPU cache subspace.
//
// Each model owns a private virtual cache address space (vcaddr). The CPT
// maps virtual cache page numbers (vcpn) to physical cache page numbers
// (pcpn); a pcpn identifies one way and a contiguous band of sets across
// all slices. Translation composes the pcaddr whose fields (way, set,
// slice) index the target line directly — consecutive vcaddr lines stripe
// across slices for bandwidth (paper §III-B3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache_config.h"
#include "common/snapshot_io.h"
#include "common/types.h"

namespace camdn::cache {

class cache_page_table {
public:
    explicit cache_page_table(const cache_config& config);

    /// Maps `vcpn` to physical page `pcpn`. Overwrites any prior mapping.
    void map(std::uint32_t vcpn, std::uint32_t pcpn);

    /// Invalidates the entry for `vcpn` (no-op when not mapped).
    void unmap(std::uint32_t vcpn);

    /// Invalidates every entry.
    void clear();

    bool is_mapped(std::uint32_t vcpn) const;
    std::optional<std::uint32_t> lookup(std::uint32_t vcpn) const;

    /// Translates a virtual cache byte address to its physical line
    /// location. The page containing `vcaddr` must be mapped.
    pcaddr translate(addr_t vcaddr) const;

    /// Number of valid entries.
    std::uint32_t mapped_count() const { return mapped_; }

    /// Capacity in entries (== total pages of the cache, paper: <=512).
    std::uint32_t capacity() const { return static_cast<std::uint32_t>(entries_.size()); }

    /// SRAM footprint of this table in bytes (3 bytes per entry: pcpn +
    /// valid bit, paper §III-B3) — used by the area model.
    std::uint64_t sram_bytes() const { return entries_.size() * 3; }

    /// Checkpoint support: serializes / restores every entry. restore_state
    /// throws snapshot_error when the saved capacity does not match this
    /// table's geometry.
    void save_state(snapshot_writer& w) const;
    void restore_state(snapshot_reader& r);

private:
    struct entry {
        std::uint32_t pcpn = 0;
        bool valid = false;
    };

    cache_config config_;
    std::vector<entry> entries_;
    std::uint32_t mapped_ = 0;

    // translate() runs once per NEC burst on the hot path; power-of-two
    // geometries (every stock config) precompute shift/mask forms of its
    // div/mod chain. Same quotients as the fallback, bit for bit.
    bool pow2_geometry_ = false;
    std::uint32_t page_shift_ = 0;
    std::uint64_t page_mask_ = 0;
    std::uint32_t slice_shift_ = 0;
    std::uint64_t slice_mask_ = 0;
    std::uint32_t ppw_shift_ = 0;   // pages_per_way
    std::uint32_t ppw_mask_ = 0;
    std::uint32_t sets_per_page_ = 0;
};

}  // namespace camdn::cache

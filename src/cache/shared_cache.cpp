#include "cache/shared_cache.h"

#include <algorithm>
#include <cassert>

namespace camdn::cache {

shared_cache::shared_cache(const cache_config& config, dram::dram_system& dram)
    : config_(config),
      dram_(dram),
      sets_(config.sets_per_slice()),
      transparent_ways_(config.ways),
      lines_(static_cast<std::size_t>(config.slices) * sets_ * config.ways),
      slice_free_(config.slices, 0),
      pages_(config) {}

void shared_cache::set_transparent_ways(std::uint32_t ways) {
    assert(ways >= 1 && ways <= config_.ways);
    transparent_ways_ = ways;
}

cycle_t shared_cache::occupy_slice(std::uint32_t slice, cycle_t arrival) {
    cycle_t start = std::max(arrival, slice_free_[slice]);
    slice_free_[slice] = start + 1;
    ++stats_.slice_busy_cycles;
    return start + 1;
}

cycle_t shared_cache::occupy_striped(std::uint32_t start_slice,
                                     std::uint64_t nlines, cycle_t arrival) {
    // Consecutive lines visit slices round-robin beginning at start_slice,
    // so slice s serves floor(n/slices) lines plus one if its offset from
    // start_slice is below n mod slices.
    const std::uint32_t slices = config_.slices;
    const std::uint64_t base = nlines / slices;
    const std::uint64_t rem = nlines % slices;
    cycle_t done = arrival;
    for (std::uint32_t s = 0; s < slices; ++s) {
        const std::uint32_t offset = (s + slices - start_slice % slices) % slices;
        const std::uint64_t n = base + (offset < rem ? 1 : 0);
        if (n == 0) continue;
        const cycle_t start = std::max(arrival, slice_free_[s]);
        slice_free_[s] = start + n;
        stats_.slice_busy_cycles += n;
        done = std::max(done, slice_free_[s]);
    }
    return done;
}

void shared_cache::bump_task(std::vector<std::uint64_t>& v, task_id task) {
    if (task < 0) return;
    if (static_cast<std::size_t>(task) >= v.size()) v.resize(task + 1, 0);
    ++v[task];
}

access_result shared_cache::transparent_access(addr_t paddr, bool is_write,
                                               cycle_t arrival, task_id task) {
    const std::uint64_t line_id = paddr / line_bytes;
    const std::uint32_t slice =
        static_cast<std::uint32_t>(line_id % config_.slices);
    const std::uint32_t set =
        static_cast<std::uint32_t>((line_id / config_.slices) % sets_);

    line_entry* chosen = nullptr;
    line_entry* invalid_way = nullptr;
    line_entry* lru_way = nullptr;
    for (std::uint32_t w = 0; w < transparent_ways_; ++w) {
        line_entry& e = lines_[entry_index(slice, set, w)];
        if (e.valid && e.tag == line_id) {
            chosen = &e;
            break;
        }
        if (!e.valid) {
            if (invalid_way == nullptr) invalid_way = &e;
        } else if (lru_way == nullptr || e.lru < lru_way->lru) {
            lru_way = &e;
        }
    }

    const cycle_t service = occupy_slice(slice, arrival);

    if (chosen != nullptr) {  // hit
        ++stats_.hits;
        bump_task(task_hits_, task);
        if (telemetry_) telemetry_->on_cache_access(task, true);
        chosen->lru = ++lru_tick_;
        if (is_write) chosen->dirty = true;
        return access_result{true, service + config_.hit_latency};
    }

    // Miss.
    ++stats_.misses;
    bump_task(task_misses_, task);
    if (telemetry_) telemetry_->on_cache_access(task, false);
    line_entry& victim = invalid_way != nullptr ? *invalid_way : *lru_way;
    if (victim.valid) {
        ++stats_.evictions;
        if (victim.owner != task) ++stats_.inter_task_evictions;
        if (victim.dirty) {
            ++stats_.writebacks;
            // Fire-and-forget writeback: occupies the DRAM bus but nobody
            // waits on it. Attributed to the data's owner.
            dram_.access(victim.tag * line_bytes, /*is_write=*/true, service,
                         victim.owner);
        }
    }
    victim.valid = true;
    victim.tag = line_id;
    victim.owner = task;
    victim.lru = ++lru_tick_;
    victim.dirty = is_write;

    if (is_write) {
        // NPU DMA writes full lines: write-validate, no fetch-on-write.
        return access_result{false, service + config_.hit_latency};
    }

    ++stats_.read_miss_fills;
    const cycle_t dram_done = dram_.access(paddr, /*is_write=*/false, service, task);
    return access_result{false,
                         dram_done + config_.fill_latency + config_.noc_latency};
}

cycle_t shared_cache::transparent_burst(addr_t paddr, std::uint64_t nlines,
                                        bool is_write, cycle_t arrival,
                                        task_id task) {
    cycle_t done = arrival;
    for (std::uint64_t i = 0; i < nlines; ++i) {
        done = std::max(
            done,
            transparent_access(paddr + i * line_bytes, is_write, arrival, task)
                .done);
    }
    return done;
}

std::uint64_t shared_cache::task_hits(task_id task) const {
    return (task >= 0 && static_cast<std::size_t>(task) < task_hits_.size())
               ? task_hits_[task]
               : 0;
}

std::uint64_t shared_cache::task_misses(task_id task) const {
    return (task >= 0 && static_cast<std::size_t>(task) < task_misses_.size())
               ? task_misses_[task]
               : 0;
}

cache_page_table& shared_cache::cpt(task_id task) {
    auto it = cpts_.find(task);
    if (it == cpts_.end()) {
        it = cpts_.emplace(task, std::make_unique<cache_page_table>(config_)).first;
    }
    return *it->second;
}

void shared_cache::destroy_cpt(task_id task) { cpts_.erase(task); }

cycle_t shared_cache::region_read(task_id task, addr_t vcaddr, cycle_t arrival) {
    ++stats_.region_reads;
    const pcaddr p = cpt(task).translate(vcaddr);
    return occupy_slice(p.slice, arrival) + config_.hit_latency;
}

cycle_t shared_cache::region_write(task_id task, addr_t vcaddr, cycle_t arrival) {
    ++stats_.region_writes;
    const pcaddr p = cpt(task).translate(vcaddr);
    return occupy_slice(p.slice, arrival) + config_.noc_latency;
}

cycle_t shared_cache::region_fill(task_id task, addr_t vcaddr, addr_t dram_addr,
                                  cycle_t arrival) {
    ++stats_.region_fills;
    const pcaddr p = cpt(task).translate(vcaddr);
    const cycle_t dram_done = dram_.access(dram_addr, false, arrival, task);
    const cycle_t slot = occupy_slice(p.slice, dram_done);
    return slot + config_.fill_latency;
}

cycle_t shared_cache::region_writeback(task_id task, addr_t vcaddr,
                                       addr_t dram_addr, cycle_t arrival) {
    ++stats_.region_writebacks;
    const pcaddr p = cpt(task).translate(vcaddr);
    const cycle_t slot = occupy_slice(p.slice, arrival);
    return dram_.access(dram_addr, true, slot, task);
}

cycle_t shared_cache::bypass_read(addr_t dram_addr, cycle_t arrival,
                                  task_id task) {
    ++stats_.bypass_reads;
    return dram_.access(dram_addr, false, arrival, task) + config_.noc_latency;
}

cycle_t shared_cache::bypass_write(addr_t dram_addr, cycle_t arrival,
                                   task_id task) {
    ++stats_.bypass_writes;
    return dram_.access(dram_addr, true, arrival + config_.noc_latency, task);
}

cycle_t shared_cache::multicast_read(task_id task, addr_t vcaddr,
                                     cycle_t arrival, std::uint32_t group_size) {
    ++stats_.multicast_reads;
    if (group_size > 1) stats_.multicast_combined += group_size - 1;
    const pcaddr p = cpt(task).translate(vcaddr);
    return occupy_slice(p.slice, arrival) + config_.hit_latency;
}

cycle_t shared_cache::multicast_bypass_read(addr_t dram_addr, cycle_t arrival,
                                            task_id task,
                                            std::uint32_t group_size) {
    ++stats_.bypass_reads;
    if (group_size > 1) stats_.multicast_combined += group_size - 1;
    return dram_.access(dram_addr, false, arrival, task) + config_.noc_latency;
}

cycle_t shared_cache::region_read_burst(task_id task, addr_t vcaddr,
                                        std::uint64_t nlines, cycle_t arrival,
                                        std::uint32_t group_size) {
    if (nlines == 0) return arrival;
    stats_.region_reads += nlines;
    if (group_size > 1) stats_.multicast_combined += (group_size - 1) * nlines;
    if (telemetry_) telemetry_->on_region_lines(task, nlines);
    const pcaddr first = cpt(task).translate(vcaddr);
    return occupy_striped(first.slice, nlines, arrival) + config_.hit_latency;
}

cycle_t shared_cache::region_write_burst(task_id task, addr_t vcaddr,
                                         std::uint64_t nlines, cycle_t arrival) {
    if (nlines == 0) return arrival;
    stats_.region_writes += nlines;
    if (telemetry_) telemetry_->on_region_lines(task, nlines);
    const pcaddr first = cpt(task).translate(vcaddr);
    return occupy_striped(first.slice, nlines, arrival) + config_.noc_latency;
}

cycle_t shared_cache::region_fill_burst(task_id task, addr_t vcaddr,
                                        addr_t dram_addr, std::uint64_t nlines,
                                        cycle_t arrival) {
    if (nlines == 0) return arrival;
    stats_.region_fills += nlines;
    if (telemetry_) telemetry_->on_fill_lines(task, nlines);
    const pcaddr first = cpt(task).translate(vcaddr);
    const cycle_t dram_done =
        dram_.access_burst(dram_addr, nlines, false, arrival, task);
    const cycle_t slices_done = occupy_striped(first.slice, nlines, arrival);
    return std::max(dram_done, slices_done) + config_.fill_latency;
}

cycle_t shared_cache::region_writeback_burst(task_id task, addr_t vcaddr,
                                             addr_t dram_addr,
                                             std::uint64_t nlines,
                                             cycle_t arrival) {
    if (nlines == 0) return arrival;
    stats_.region_writebacks += nlines;
    const pcaddr first = cpt(task).translate(vcaddr);
    const cycle_t slices_done = occupy_striped(first.slice, nlines, arrival);
    return dram_.access_burst(dram_addr, nlines, true, slices_done, task);
}

cycle_t shared_cache::bypass_read_burst(addr_t dram_addr, std::uint64_t nlines,
                                        cycle_t arrival, task_id task,
                                        std::uint32_t group_size) {
    if (nlines == 0) return arrival;
    stats_.bypass_reads += nlines;
    if (group_size > 1) stats_.multicast_combined += (group_size - 1) * nlines;
    return dram_.access_burst(dram_addr, nlines, false, arrival, task) +
           config_.noc_latency;
}

cycle_t shared_cache::bypass_write_burst(addr_t dram_addr, std::uint64_t nlines,
                                         cycle_t arrival, task_id task) {
    if (nlines == 0) return arrival;
    stats_.bypass_writes += nlines;
    return dram_.access_burst(dram_addr, nlines, true,
                              arrival + config_.noc_latency, task);
}

void shared_cache::reset_stats() {
    stats_ = {};
    task_hits_.clear();
    task_misses_.clear();
}

void shared_cache::invalidate_all() {
    for (auto& e : lines_) e = line_entry{};
    std::fill(slice_free_.begin(), slice_free_.end(), 0);
    lru_tick_ = 0;
}

}  // namespace camdn::cache

#include "cache/shared_cache.h"

#include <algorithm>
#include <cassert>

#include "obs/attribution.h"

namespace camdn::cache {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_of(std::uint64_t v) {
    std::uint32_t s = 0;
    while ((std::uint64_t{1} << s) < v) ++s;
    return s;
}
}  // namespace

shared_cache::shared_cache(const cache_config& config, dram::dram_system& dram)
    : config_(config),
      dram_(dram),
      sets_(config.sets_per_slice()),
      transparent_ways_(config.ways),
      lines_(static_cast<std::size_t>(config.slices) * sets_ * config.ways),
      slice_free_(config.slices, 0),
      pages_(config) {
    pow2_geometry_ = is_pow2(config_.slices) && is_pow2(sets_);
    if (pow2_geometry_) {
        slice_shift_ = log2_of(config_.slices);
        slice_mask_ = config_.slices - 1;
        set_mask_ = sets_ - 1;
    }
}

void shared_cache::set_transparent_ways(std::uint32_t ways) {
    assert(ways >= 1 && ways <= config_.ways);
    transparent_ways_ = ways;
}

cycle_t shared_cache::occupy_slice(std::uint32_t slice, cycle_t arrival,
                                   task_id task) {
    cycle_t start = std::max(arrival, slice_free_[slice]);
    if (attr_ != nullptr) {
        if (start > arrival)
            attr_->on_cache_wait(task, slice_user_[slice], start - arrival);
        slice_user_[slice] = task;
    }
    slice_free_[slice] = start + 1;
    ++stats_.slice_busy_cycles;
    return start + 1;
}

cycle_t shared_cache::occupy_striped(std::uint32_t start_slice,
                                     std::uint64_t nlines, cycle_t arrival,
                                     task_id task) {
    // Consecutive lines visit slices round-robin beginning at start_slice,
    // so slice s serves floor(n/slices) lines plus one if its offset from
    // start_slice is below n mod slices.
    const std::uint32_t slices = config_.slices;
    const std::uint64_t base = nlines / slices;
    const std::uint64_t rem = nlines % slices;
    const std::uint32_t start_mod = start_slice % slices;
    cycle_t done = arrival;
    for (std::uint32_t s = 0; s < slices; ++s) {
        // s + slices - start_mod is in [1, 2*slices), so one conditional
        // subtract replaces the modulo.
        std::uint32_t offset = s + slices - start_mod;
        if (offset >= slices) offset -= slices;
        const std::uint64_t n = base + (offset < rem ? 1 : 0);
        if (n == 0) continue;
        const cycle_t start = std::max(arrival, slice_free_[s]);
        if (attr_ != nullptr) {
            if (start > arrival)
                attr_->on_cache_wait(task, slice_user_[s], start - arrival);
            slice_user_[s] = task;
        }
        slice_free_[s] = start + n;
        stats_.slice_busy_cycles += n;
        done = std::max(done, slice_free_[s]);
    }
    return done;
}

void shared_cache::set_attribution(obs::latency_attributor* attr) {
    attr_ = attr;
    if (attr_ != nullptr) {
        slice_user_.assign(config_.slices, no_task);
        // Raw penalty of a transparent read miss over the hit it displaced:
        // the isolated DRAM line service plus fill/NoC hops. DRAM *waits*
        // inside the miss are charged by the DRAM hooks — this constant
        // deliberately excludes them to avoid double counting.
        miss_penalty_cycles_ = dram_.isolated_line_service_cycles() +
                               config_.fill_latency + config_.noc_latency;
    }
}

void shared_cache::bump_task(std::vector<std::uint64_t>& v, task_id task) {
    if (task < 0) return;
    if (static_cast<std::size_t>(task) >= v.size()) v.resize(task + 1, 0);
    ++v[task];
}

access_result shared_cache::transparent_access(addr_t paddr, bool is_write,
                                               cycle_t arrival, task_id task) {
    const std::uint64_t line_id = paddr / line_bytes;
    std::uint32_t slice, set;
    if (pow2_geometry_) {
        slice = static_cast<std::uint32_t>(line_id & slice_mask_);
        set = static_cast<std::uint32_t>((line_id >> slice_shift_) & set_mask_);
    } else {
        slice = static_cast<std::uint32_t>(line_id % config_.slices);
        set = static_cast<std::uint32_t>((line_id / config_.slices) % sets_);
    }

    line_entry* chosen = nullptr;
    line_entry* invalid_way = nullptr;
    line_entry* lru_way = nullptr;
    for (std::uint32_t w = 0; w < transparent_ways_; ++w) {
        line_entry& e = lines_[entry_index(slice, set, w)];
        if (e.valid && e.tag == line_id) {
            chosen = &e;
            break;
        }
        if (!e.valid) {
            if (invalid_way == nullptr) invalid_way = &e;
        } else if (lru_way == nullptr || e.lru < lru_way->lru) {
            lru_way = &e;
        }
    }

    const cycle_t service = occupy_slice(slice, arrival, task);

    if (chosen != nullptr) {  // hit
        ++stats_.hits;
        bump_task(task_hits_, task);
        if (telemetry_) telemetry_->on_cache_access(task, true);
        chosen->lru = ++lru_tick_;
        if (is_write) chosen->dirty = true;
        return access_result{true, service + config_.hit_latency};
    }

    // Miss.
    ++stats_.misses;
    bump_task(task_misses_, task);
    if (telemetry_) telemetry_->on_cache_access(task, false);
    line_entry& victim = invalid_way != nullptr ? *invalid_way : *lru_way;
    if (attr_ != nullptr && !is_write) {
        // Blame the fill on whoever's line the requester lost: with an
        // invalid way free the miss is cold (self-inflicted); otherwise the
        // victim's owner displaced the requester's working set.
        const task_id holder =
            victim.valid && victim.owner != task ? victim.owner : task;
        attr_->on_cache_wait(task, holder, miss_penalty_cycles_);
    }
    if (victim.valid) {
        ++stats_.evictions;
        if (victim.owner != task) ++stats_.inter_task_evictions;
        if (victim.dirty) {
            ++stats_.writebacks;
            // Fire-and-forget writeback: occupies the DRAM bus but nobody
            // waits on it. Attributed to the data's owner.
            dram_.access(victim.tag * line_bytes, /*is_write=*/true, service,
                         victim.owner);
        }
    }
    victim.valid = true;
    victim.tag = line_id;
    victim.owner = task;
    victim.lru = ++lru_tick_;
    victim.dirty = is_write;

    if (is_write) {
        // NPU DMA writes full lines: write-validate, no fetch-on-write.
        return access_result{false, service + config_.hit_latency};
    }

    ++stats_.read_miss_fills;
    const cycle_t dram_done = dram_.access(paddr, /*is_write=*/false, service, task);
    return access_result{false,
                         dram_done + config_.fill_latency + config_.noc_latency};
}

cycle_t shared_cache::transparent_burst(addr_t paddr, std::uint64_t nlines,
                                        bool is_write, cycle_t arrival,
                                        task_id task) {
    cycle_t done = arrival;
    for (std::uint64_t i = 0; i < nlines; ++i) {
        done = std::max(
            done,
            transparent_access(paddr + i * line_bytes, is_write, arrival, task)
                .done);
    }
    return done;
}

std::uint64_t shared_cache::task_hits(task_id task) const {
    return (task >= 0 && static_cast<std::size_t>(task) < task_hits_.size())
               ? task_hits_[task]
               : 0;
}

std::uint64_t shared_cache::task_misses(task_id task) const {
    return (task >= 0 && static_cast<std::size_t>(task) < task_misses_.size())
               ? task_misses_[task]
               : 0;
}

cache_page_table& shared_cache::cpt(task_id task) {
    assert(task >= 0 && "CPTs belong to real tasks");
    const auto idx = static_cast<std::size_t>(task);
    if (idx >= cpts_.size()) cpts_.resize(idx + 1);
    if (!cpts_[idx]) cpts_[idx] = std::make_unique<cache_page_table>(config_);
    return *cpts_[idx];
}

void shared_cache::destroy_cpt(task_id task) {
    if (task >= 0 && static_cast<std::size_t>(task) < cpts_.size())
        cpts_[task].reset();
}

cycle_t shared_cache::region_read(task_id task, addr_t vcaddr, cycle_t arrival) {
    ++stats_.region_reads;
    const pcaddr p = cpt(task).translate(vcaddr);
    return occupy_slice(p.slice, arrival, task) + config_.hit_latency;
}

cycle_t shared_cache::region_write(task_id task, addr_t vcaddr, cycle_t arrival) {
    ++stats_.region_writes;
    const pcaddr p = cpt(task).translate(vcaddr);
    return occupy_slice(p.slice, arrival, task) + config_.noc_latency;
}

cycle_t shared_cache::region_fill(task_id task, addr_t vcaddr, addr_t dram_addr,
                                  cycle_t arrival) {
    ++stats_.region_fills;
    const pcaddr p = cpt(task).translate(vcaddr);
    const cycle_t dram_done = dram_.access(dram_addr, false, arrival, task);
    const cycle_t slot = occupy_slice(p.slice, dram_done, task);
    return slot + config_.fill_latency;
}

cycle_t shared_cache::region_writeback(task_id task, addr_t vcaddr,
                                       addr_t dram_addr, cycle_t arrival) {
    ++stats_.region_writebacks;
    const pcaddr p = cpt(task).translate(vcaddr);
    const cycle_t slot = occupy_slice(p.slice, arrival, task);
    return dram_.access(dram_addr, true, slot, task);
}

cycle_t shared_cache::bypass_read(addr_t dram_addr, cycle_t arrival,
                                  task_id task) {
    ++stats_.bypass_reads;
    return dram_.access(dram_addr, false, arrival, task) + config_.noc_latency;
}

cycle_t shared_cache::bypass_write(addr_t dram_addr, cycle_t arrival,
                                   task_id task) {
    ++stats_.bypass_writes;
    return dram_.access(dram_addr, true, arrival + config_.noc_latency, task);
}

cycle_t shared_cache::multicast_read(task_id task, addr_t vcaddr,
                                     cycle_t arrival, std::uint32_t group_size) {
    ++stats_.multicast_reads;
    if (group_size > 1) stats_.multicast_combined += group_size - 1;
    const pcaddr p = cpt(task).translate(vcaddr);
    return occupy_slice(p.slice, arrival, task) + config_.hit_latency;
}

cycle_t shared_cache::multicast_bypass_read(addr_t dram_addr, cycle_t arrival,
                                            task_id task,
                                            std::uint32_t group_size) {
    ++stats_.bypass_reads;
    if (group_size > 1) stats_.multicast_combined += group_size - 1;
    return dram_.access(dram_addr, false, arrival, task) + config_.noc_latency;
}

cycle_t shared_cache::region_read_burst(task_id task, addr_t vcaddr,
                                        std::uint64_t nlines, cycle_t arrival,
                                        std::uint32_t group_size) {
    if (nlines == 0) return arrival;
    stats_.region_reads += nlines;
    if (group_size > 1) stats_.multicast_combined += (group_size - 1) * nlines;
    if (telemetry_) telemetry_->on_region_lines(task, nlines);
    const pcaddr first = cpt(task).translate(vcaddr);
    return occupy_striped(first.slice, nlines, arrival, task) +
           config_.hit_latency;
}

cycle_t shared_cache::region_write_burst(task_id task, addr_t vcaddr,
                                         std::uint64_t nlines, cycle_t arrival) {
    if (nlines == 0) return arrival;
    stats_.region_writes += nlines;
    if (telemetry_) telemetry_->on_region_lines(task, nlines);
    const pcaddr first = cpt(task).translate(vcaddr);
    return occupy_striped(first.slice, nlines, arrival, task) +
           config_.noc_latency;
}

cycle_t shared_cache::region_fill_burst(task_id task, addr_t vcaddr,
                                        addr_t dram_addr, std::uint64_t nlines,
                                        cycle_t arrival) {
    if (nlines == 0) return arrival;
    stats_.region_fills += nlines;
    if (telemetry_) telemetry_->on_fill_lines(task, nlines);
    const pcaddr first = cpt(task).translate(vcaddr);
    const cycle_t dram_done =
        dram_.access_burst(dram_addr, nlines, false, arrival, task);
    const cycle_t slices_done =
        occupy_striped(first.slice, nlines, arrival, task);
    return std::max(dram_done, slices_done) + config_.fill_latency;
}

cycle_t shared_cache::region_writeback_burst(task_id task, addr_t vcaddr,
                                             addr_t dram_addr,
                                             std::uint64_t nlines,
                                             cycle_t arrival) {
    if (nlines == 0) return arrival;
    stats_.region_writebacks += nlines;
    const pcaddr first = cpt(task).translate(vcaddr);
    const cycle_t slices_done =
        occupy_striped(first.slice, nlines, arrival, task);
    return dram_.access_burst(dram_addr, nlines, true, slices_done, task);
}

cycle_t shared_cache::bypass_read_burst(addr_t dram_addr, std::uint64_t nlines,
                                        cycle_t arrival, task_id task,
                                        std::uint32_t group_size) {
    if (nlines == 0) return arrival;
    stats_.bypass_reads += nlines;
    if (group_size > 1) stats_.multicast_combined += (group_size - 1) * nlines;
    return dram_.access_burst(dram_addr, nlines, false, arrival, task) +
           config_.noc_latency;
}

cycle_t shared_cache::bypass_write_burst(addr_t dram_addr, std::uint64_t nlines,
                                         cycle_t arrival, task_id task) {
    if (nlines == 0) return arrival;
    stats_.bypass_writes += nlines;
    return dram_.access_burst(dram_addr, nlines, true,
                              arrival + config_.noc_latency, task);
}

void shared_cache::reset_stats() {
    stats_ = {};
    task_hits_.clear();
    task_misses_.clear();
}

void shared_cache::invalidate_all() {
    for (auto& e : lines_) e = line_entry{};
    std::fill(slice_free_.begin(), slice_free_.end(), 0);
    lru_tick_ = 0;
}

namespace {

void save_stats(snapshot_writer& w, const cache_stats& s) {
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.read_miss_fills);
    w.u64(s.writebacks);
    w.u64(s.evictions);
    w.u64(s.inter_task_evictions);
    w.u64(s.region_reads);
    w.u64(s.region_writes);
    w.u64(s.region_fills);
    w.u64(s.region_writebacks);
    w.u64(s.bypass_reads);
    w.u64(s.bypass_writes);
    w.u64(s.multicast_reads);
    w.u64(s.multicast_combined);
    w.u64(s.slice_busy_cycles);
}

void restore_stats(snapshot_reader& r, cache_stats& s) {
    s.hits = r.u64();
    s.misses = r.u64();
    s.read_miss_fills = r.u64();
    s.writebacks = r.u64();
    s.evictions = r.u64();
    s.inter_task_evictions = r.u64();
    s.region_reads = r.u64();
    s.region_writes = r.u64();
    s.region_fills = r.u64();
    s.region_writebacks = r.u64();
    s.bypass_reads = r.u64();
    s.bypass_writes = r.u64();
    s.multicast_reads = r.u64();
    s.multicast_combined = r.u64();
    s.slice_busy_cycles = r.u64();
}

void save_counter_vec(snapshot_writer& w, const std::vector<std::uint64_t>& v) {
    w.u64(v.size());
    for (const std::uint64_t x : v) w.u64(x);
}

void restore_counter_vec(snapshot_reader& r, std::vector<std::uint64_t>& v) {
    const std::uint64_t n = r.count(8);
    v.assign(n, 0);
    for (auto& x : v) x = r.u64();
}

}  // namespace

void shared_cache::save_state(snapshot_writer& w) const {
    w.u32(static_cast<std::uint32_t>(lines_.size()));
    w.u32(transparent_ways_);
    w.u64(lru_tick_);
    for (const auto& e : lines_) {
        w.u64(e.tag);
        w.u64(e.lru);
        w.i32(e.owner);
        w.b(e.valid);
        w.b(e.dirty);
    }
    w.u64(slice_free_.size());
    for (const cycle_t c : slice_free_) w.u64(c);
    save_stats(w, stats_);
    save_counter_vec(w, task_hits_);
    save_counter_vec(w, task_misses_);
    pages_.save_state(w);

    // Live tables in ascending task order — the same bytes the old sorted
    // owner walk produced.
    std::uint64_t live = 0;
    for (const auto& table : cpts_)
        if (table) ++live;
    w.u64(live);
    for (std::size_t t = 0; t < cpts_.size(); ++t) {
        if (!cpts_[t]) continue;
        w.i32(static_cast<task_id>(t));
        cpts_[t]->save_state(w);
    }
}

void shared_cache::restore_state(snapshot_reader& r) {
    const std::uint32_t nlines = r.u32();
    if (nlines != lines_.size())
        throw snapshot_error("snapshot cache geometry mismatch: saved " +
                             std::to_string(nlines) + " lines, configured " +
                             std::to_string(lines_.size()));
    transparent_ways_ = r.u32();
    if (transparent_ways_ < 1 || transparent_ways_ > config_.ways)
        throw snapshot_error("snapshot transparent-way count out of range");
    lru_tick_ = r.u64();
    for (auto& e : lines_) {
        e.tag = r.u64();
        e.lru = r.u64();
        e.owner = r.i32();
        e.valid = r.b();
        e.dirty = r.b();
    }
    const std::uint64_t nslices = r.count(8);
    if (nslices != slice_free_.size())
        throw snapshot_error("snapshot cache slice-count mismatch");
    for (auto& c : slice_free_) c = r.u64();
    restore_stats(r, stats_);
    restore_counter_vec(r, task_hits_);
    restore_counter_vec(r, task_misses_);
    pages_.restore_state(r);

    cpts_.clear();
    const std::uint64_t ncpts = r.count(12);
    for (std::uint64_t i = 0; i < ncpts; ++i) {
        const task_id t = r.i32();
        if (t < 0) throw snapshot_error("snapshot CPT with negative task id");
        auto table = std::make_unique<cache_page_table>(config_);
        table->restore_state(r);
        if (static_cast<std::size_t>(t) >= cpts_.size()) cpts_.resize(t + 1);
        cpts_[t] = std::move(table);
    }
}

}  // namespace camdn::cache

// Geometry and timing of the sliced shared cache (Table II: 16 MiB, 16
// ways, 8 slices, 12 of 16 ways assigned to the NPU subspace, 32 KiB cache
// pages).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace camdn::cache {

struct cache_config {
    std::uint64_t total_bytes = mib(16);
    std::uint32_t ways = 16;
    /// Ways assigned to the NPU subspace by the way-mask register
    /// (paper §III-B1). The remaining low ways serve the transparent
    /// general-purpose subspace. 0 disables partitioning (baselines).
    std::uint32_t npu_ways = 12;
    std::uint32_t slices = 8;
    /// Size of one NPU-subspace cache page (paper §III-B3: 32 KiB).
    std::uint64_t page_bytes = kib(32);

    /// End-to-end hit latency for a cache read (tag + data + NoC), cycles.
    std::uint32_t hit_latency = 24;
    /// Extra latency to install a line after DRAM data arrives, cycles.
    std::uint32_t fill_latency = 6;
    /// One-way NoC hop latency NPU <-> cache slice, cycles.
    std::uint32_t noc_latency = 8;

    // ---- Derived geometry ----

    std::uint32_t sets_per_slice() const {
        return static_cast<std::uint32_t>(
            total_bytes / (static_cast<std::uint64_t>(ways) * slices * line_bytes));
    }
    std::uint64_t lines_total() const { return total_bytes / line_bytes; }
    std::uint64_t lines_per_page() const { return page_bytes / line_bytes; }

    /// Sets of one slice spanned by one page (consecutive lines of a page
    /// stripe across all slices first, then advance the set index).
    std::uint32_t sets_per_page() const {
        return static_cast<std::uint32_t>(lines_per_page() / slices);
    }
    /// Pages contained in one way across all slices.
    std::uint32_t pages_per_way() const { return sets_per_slice() / sets_per_page(); }

    std::uint32_t pages_total() const { return ways * pages_per_way(); }
    /// Pages inside the NPU subspace (the allocatable pool).
    std::uint32_t npu_pages() const { return npu_ways * pages_per_way(); }
    std::uint32_t cpu_ways() const { return ways - npu_ways; }

    std::uint64_t npu_subspace_bytes() const {
        return static_cast<std::uint64_t>(npu_pages()) * page_bytes;
    }
};

/// Physical cache location of one line: identifies slice, set and way
/// uniquely (paper Fig 5(b): pcaddr = {way, set, slice, offset}).
struct pcaddr {
    std::uint32_t way = 0;
    std::uint32_t set = 0;
    std::uint32_t slice = 0;
};

}  // namespace camdn::cache

#include "cache/page_allocator.h"

#include <numeric>

namespace camdn::cache {

page_allocator::page_allocator(const cache_config& config) {
    total_ = config.npu_pages();
    free_.reserve(total_);
    // NPU pages live in the high ways [cpu_ways, ways): pcpns
    // [cpu_ways * pages_per_way, pages_total). Push in reverse so the
    // lowest pcpn is handed out first (deterministic, easier to test).
    const std::uint32_t first = config.cpu_ways() * config.pages_per_way();
    const std::uint32_t last = config.pages_total();
    for (std::uint32_t pcpn = last; pcpn > first; --pcpn) free_.push_back(pcpn - 1);
}

std::uint32_t page_allocator::allocated(task_id task) const {
    auto it = held_.find(task);
    return it == held_.end() ? 0 : static_cast<std::uint32_t>(it->second.size());
}

const std::vector<std::uint32_t>& page_allocator::pages_of(task_id task) const {
    static const std::vector<std::uint32_t> empty;
    auto it = held_.find(task);
    return it == held_.end() ? empty : it->second;
}

std::optional<std::vector<std::uint32_t>> page_allocator::try_allocate(
    task_id task, std::uint32_t count) {
    if (count > free_.size()) return std::nullopt;
    std::vector<std::uint32_t> taken;
    taken.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        taken.push_back(free_.back());
        free_.pop_back();
    }
    auto& mine = held_[task];
    mine.insert(mine.end(), taken.begin(), taken.end());
    return taken;
}

std::vector<std::uint32_t> page_allocator::release(task_id task,
                                                   std::uint32_t count) {
    std::vector<std::uint32_t> freed;
    auto it = held_.find(task);
    if (it == held_.end()) return freed;
    auto& mine = it->second;
    if (count > mine.size()) count = static_cast<std::uint32_t>(mine.size());
    freed.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        freed.push_back(mine.back());
        mine.pop_back();
        free_.push_back(freed.back());
    }
    if (mine.empty()) held_.erase(it);
    return freed;
}

std::vector<std::uint32_t> page_allocator::release_all(task_id task) {
    return release(task, allocated(task));
}

bool page_allocator::accounting_consistent() const {
    std::size_t held = 0;
    for (const auto& [task, pages] : held_) held += pages.size();
    return held + free_.size() == total_;
}

}  // namespace camdn::cache

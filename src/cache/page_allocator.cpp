#include "cache/page_allocator.h"

#include <algorithm>
#include <numeric>

namespace camdn::cache {

page_allocator::page_allocator(const cache_config& config) {
    total_ = config.npu_pages();
    free_.reserve(total_);
    // NPU pages live in the high ways [cpu_ways, ways): pcpns
    // [cpu_ways * pages_per_way, pages_total). Push in reverse so the
    // lowest pcpn is handed out first (deterministic, easier to test).
    const std::uint32_t first = config.cpu_ways() * config.pages_per_way();
    const std::uint32_t last = config.pages_total();
    for (std::uint32_t pcpn = last; pcpn > first; --pcpn) free_.push_back(pcpn - 1);
}

std::uint32_t page_allocator::allocated(task_id task) const {
    auto it = held_.find(task);
    return it == held_.end() ? 0 : static_cast<std::uint32_t>(it->second.size());
}

const std::vector<std::uint32_t>& page_allocator::pages_of(task_id task) const {
    static const std::vector<std::uint32_t> empty;
    auto it = held_.find(task);
    return it == held_.end() ? empty : it->second;
}

std::optional<std::vector<std::uint32_t>> page_allocator::try_allocate(
    task_id task, std::uint32_t count) {
    if (count > free_.size()) return std::nullopt;
    std::vector<std::uint32_t> taken;
    taken.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        taken.push_back(free_.back());
        free_.pop_back();
    }
    auto& mine = held_[task];
    mine.insert(mine.end(), taken.begin(), taken.end());
    return taken;
}

std::vector<std::uint32_t> page_allocator::release(task_id task,
                                                   std::uint32_t count) {
    std::vector<std::uint32_t> freed;
    auto it = held_.find(task);
    if (it == held_.end()) return freed;
    auto& mine = it->second;
    if (count > mine.size()) count = static_cast<std::uint32_t>(mine.size());
    freed.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        freed.push_back(mine.back());
        mine.pop_back();
        free_.push_back(freed.back());
    }
    if (mine.empty()) held_.erase(it);
    return freed;
}

std::vector<std::uint32_t> page_allocator::release_all(task_id task) {
    return release(task, allocated(task));
}

bool page_allocator::accounting_consistent() const {
    std::size_t held = 0;
    for (const auto& [task, pages] : held_) held += pages.size();
    return held + free_.size() == total_;
}

void page_allocator::save_state(snapshot_writer& w) const {
    w.u32(total_);
    w.u64(free_.size());
    for (const std::uint32_t pcpn : free_) w.u32(pcpn);

    std::vector<task_id> holders;
    holders.reserve(held_.size());
    for (const auto& [task, pages] : held_) holders.push_back(task);
    std::sort(holders.begin(), holders.end());
    w.u64(holders.size());
    for (const task_id t : holders) {
        const auto& pages = held_.at(t);
        w.i32(t);
        w.u64(pages.size());
        for (const std::uint32_t pcpn : pages) w.u32(pcpn);
    }
}

void page_allocator::restore_state(snapshot_reader& r) {
    const std::uint32_t total = r.u32();
    if (total != total_)
        throw snapshot_error("snapshot page-pool size mismatch: saved " +
                             std::to_string(total) + ", configured " +
                             std::to_string(total_));
    // The valid pcpn population of this pool, collected before the
    // overwrite: the restored contents must be a permutation of it, so a
    // corrupt-but-well-formed snapshot (out-of-range or duplicated pcpn)
    // is rejected instead of silently corrupting cache addressing.
    std::vector<std::uint32_t> valid = free_;
    for (const auto& [task, pages] : held_)
        valid.insert(valid.end(), pages.begin(), pages.end());
    std::sort(valid.begin(), valid.end());

    free_.clear();
    const std::uint64_t nfree = r.count(4);
    free_.reserve(nfree);
    for (std::uint64_t i = 0; i < nfree; ++i) free_.push_back(r.u32());

    held_.clear();
    const std::uint64_t holders = r.count(12);
    for (std::uint64_t h = 0; h < holders; ++h) {
        const task_id t = r.i32();
        const std::uint64_t n = r.count(4);
        auto& pages = held_[t];
        pages.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) pages.push_back(r.u32());
    }

    std::vector<std::uint32_t> restored = free_;
    for (const auto& [task, pages] : held_)
        restored.insert(restored.end(), pages.begin(), pages.end());
    std::sort(restored.begin(), restored.end());
    if (restored != valid)
        throw snapshot_error(
            "snapshot page-pool contents are not a permutation of this "
            "pool's pages");
}

}  // namespace camdn::cache

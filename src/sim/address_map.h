// DRAM address assignment for a task's tensors.
//
// Each task owns a disjoint 1 TiB span of the (64-bit, virtual-physical)
// address space; weights and activations get generous per-layer strides so
// tensors never alias. The absolute values only influence DRAM bank/row
// decomposition and transparent-cache tags, which is exactly the contention
// behaviour the simulation needs. Activation buffers rotate so a layer's
// output address equals the next layer's input address and residual
// producers remain addressable.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace camdn::sim {

class address_map {
public:
    /// `model_salt` distinguishes the parameter regions of different
    /// models run by the same task slot — without it, model A's layer-i
    /// weights would alias model B's at the same address and manufacture
    /// spurious cache reuse across inferences. Activation buffers are
    /// per-slot scratch that real runtimes do reuse across models.
    explicit address_map(task_id id, std::uint64_t model_salt = 0)
        : base_(static_cast<addr_t>(id + 1) << 40),
          weight_base_(base_ + ((model_salt & 63) << 33)) {}

    /// Base address of layer `i`'s parameter tensor.
    addr_t weights(std::uint32_t i) const {
        return weight_base_ + static_cast<addr_t>(i) * weight_stride;
    }

    /// Base address of the activation tensor produced by layer `i`
    /// (consumed as layer i+1's input). Buffers rotate modulo 8 so chained
    /// and residual readers within any realistic span see stable storage.
    addr_t activation(std::uint32_t i) const {
        return base_ + act_region + static_cast<addr_t>(i % 8) * act_stride;
    }

    /// The model's external input tensor.
    addr_t model_input() const { return base_ + act_region + 8 * act_stride; }

private:
    static constexpr addr_t weight_stride = addr_t{1} << 26;  // 64 MiB
    static constexpr addr_t act_region = addr_t{1} << 39;
    static constexpr addr_t act_stride = addr_t{1} << 26;

    addr_t base_;
    addr_t weight_base_;
};

}  // namespace camdn::sim

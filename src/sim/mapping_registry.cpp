#include "sim/mapping_registry.h"

#include <map>
#include <mutex>
#include <sstream>

#include "mapping/layer_mapper.h"

namespace camdn::sim {

namespace {

std::string config_key(const model::model& m,
                       const mapping::mapper_config& cfg) {
    std::ostringstream key;
    key << m.name << '|' << cfg.npu.pe_rows << 'x' << cfg.npu.pe_cols << '|'
        << cfg.npu.scratchpad_bytes << '|' << cfg.page_bytes << '|'
        << cfg.lbm_block_budget << '|' << cfg.lbm_max_layers << '|'
        << cfg.est_dram_bytes_per_cycle;
    for (auto level : cfg.usage_levels) key << ',' << level;
    return key.str();
}

std::mutex registry_mutex;

std::map<std::string, mapping::model_mapping>& registry() {
    static std::map<std::string, mapping::model_mapping> instance;
    return instance;
}

}  // namespace

const mapping::model_mapping& mapping_for(const model::model& m,
                                          const mapping::mapper_config& cfg) {
    // Sweep threads share the registry. Mapping runs outside the lock so
    // concurrent first uses of *different* models proceed in parallel; a
    // race on the same key wastes one mapping and keeps the first entry
    // (map node references stay stable either way).
    auto& reg = registry();
    const std::string key = config_key(m, cfg);
    {
        std::lock_guard<std::mutex> lock(registry_mutex);
        auto it = reg.find(key);
        if (it != reg.end()) return it->second;
    }
    auto mapped = mapping::map_model(m, cfg);
    std::lock_guard<std::mutex> lock(registry_mutex);
    return reg.emplace(key, std::move(mapped)).first->second;
}

const mapping::model_mapping* mapping_snapshot::find(
    const model::model& m, const mapping::mapper_config& cfg) const {
    auto it = entries_.find(config_key(m, cfg));
    return it != entries_.end() ? it->second : nullptr;
}

mapping_snapshot snapshot_mappings() {
    mapping_snapshot snap;
    std::lock_guard<std::mutex> lock(registry_mutex);
    for (const auto& [key, mapped] : registry())
        snap.entries_.emplace(key, &mapped);
    return snap;
}

void clear_mapping_registry() {
    std::lock_guard<std::mutex> lock(registry_mutex);
    registry().clear();
}

}  // namespace camdn::sim

#include "sim/mapping_registry.h"

#include <deque>
#include <mutex>

#include "mapping/layer_mapper.h"

namespace camdn::sim {

namespace {

/// The fields that define a registry key on the config side — exactly the
/// set the historical string key encoded, so configs differing only in
/// fields the mapper ignores (core count, SIMD width, cache-bandwidth
/// estimate) keep sharing one entry.
bool same_key_fields(const mapping::mapper_config& a,
                     const mapping::mapper_config& b) {
    return a.npu.pe_rows == b.npu.pe_rows && a.npu.pe_cols == b.npu.pe_cols &&
           a.npu.scratchpad_bytes == b.npu.scratchpad_bytes &&
           a.page_bytes == b.page_bytes &&
           a.lbm_block_budget == b.lbm_block_budget &&
           a.lbm_max_layers == b.lbm_max_layers &&
           a.est_dram_bytes_per_cycle == b.est_dram_bytes_per_cycle &&
           a.usage_levels == b.usage_levels;
}

constexpr std::uint32_t miss = UINT32_MAX;

/// Interning tables + entry store. Everything behind registry_mutex.
struct registry_state {
    /// Accelerator: model object -> name id (models are long-lived
    /// statics; distinct objects sharing a name collapse to one id).
    std::unordered_map<const void*, std::uint32_t> model_ids;
    std::unordered_map<std::string, std::uint32_t> name_ids;
    std::vector<mapping::mapper_config> configs;
    /// (name id << 32 | config id) -> mapping. Values live in a deque so
    /// references stay stable for the process lifetime.
    std::unordered_map<std::uint64_t, mapping::model_mapping*> entries;
    std::deque<mapping::model_mapping> store;
};

std::mutex registry_mutex;

registry_state& registry() {
    static registry_state instance;
    return instance;
}

std::uint32_t intern_name(registry_state& reg, const model::model& m) {
    const auto hit = reg.model_ids.find(&m);
    if (hit != reg.model_ids.end()) return hit->second;
    const auto [it, fresh] = reg.name_ids.emplace(
        m.name, static_cast<std::uint32_t>(reg.name_ids.size()));
    reg.model_ids.emplace(&m, it->second);
    return it->second;
}

std::uint32_t intern_config(registry_state& reg,
                            const mapping::mapper_config& cfg) {
    for (std::uint32_t i = 0; i < reg.configs.size(); ++i)
        if (same_key_fields(reg.configs[i], cfg)) return i;
    reg.configs.push_back(cfg);
    return static_cast<std::uint32_t>(reg.configs.size() - 1);
}

std::uint64_t entry_key(std::uint32_t name_id, std::uint32_t config_id) {
    return (static_cast<std::uint64_t>(name_id) << 32) | config_id;
}

}  // namespace

const mapping::model_mapping& mapping_for(const model::model& m,
                                          const mapping::mapper_config& cfg) {
    // Sweep threads share the registry. Mapping runs outside the lock so
    // concurrent first uses of *different* models proceed in parallel; a
    // race on the same key wastes one mapping and keeps the first entry
    // (store references stay stable either way).
    auto& reg = registry();
    std::uint64_t key;
    {
        std::lock_guard<std::mutex> lock(registry_mutex);
        key = entry_key(intern_name(reg, m), intern_config(reg, cfg));
        const auto it = reg.entries.find(key);
        if (it != reg.entries.end()) return *it->second;
    }
    auto mapped = mapping::map_model(m, cfg);
    std::lock_guard<std::mutex> lock(registry_mutex);
    const auto it = reg.entries.find(key);
    if (it != reg.entries.end()) return *it->second;
    reg.store.push_back(std::move(mapped));
    reg.entries.emplace(key, &reg.store.back());
    return reg.store.back();
}

const mapping::model_mapping* mapping_snapshot::find(
    const model::model& m, const mapping::mapper_config& cfg) const {
    std::uint32_t name_id;
    const auto hit = model_ids_.find(&m);
    if (hit != model_ids_.end()) {
        name_id = hit->second;
    } else {
        const auto by_name = name_ids_.find(m.name);
        if (by_name == name_ids_.end()) return nullptr;
        name_id = by_name->second;
    }
    std::uint32_t config_id = miss;
    for (std::uint32_t i = 0; i < configs_.size(); ++i) {
        if (same_key_fields(configs_[i], cfg)) {
            config_id = i;
            break;
        }
    }
    if (config_id == miss) return nullptr;
    const auto it = entries_.find(entry_key(name_id, config_id));
    return it != entries_.end() ? it->second : nullptr;
}

mapping_snapshot snapshot_mappings() {
    mapping_snapshot snap;
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(registry_mutex);
    snap.model_ids_ = reg.model_ids;
    snap.name_ids_ = reg.name_ids;
    snap.configs_ = reg.configs;
    snap.entries_.reserve(reg.entries.size());
    for (const auto& [key, mapped] : reg.entries)
        snap.entries_.emplace(key, mapped);
    return snap;
}

void clear_mapping_registry() {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(registry_mutex);
    reg.model_ids.clear();
    reg.name_ids.clear();
    reg.configs.clear();
    reg.entries.clear();
    reg.store.clear();
}

}  // namespace camdn::sim

#include "sim/mapping_registry.h"

#include <map>
#include <sstream>

#include "mapping/layer_mapper.h"

namespace camdn::sim {

namespace {

std::string config_key(const model::model& m,
                       const mapping::mapper_config& cfg) {
    std::ostringstream key;
    key << m.name << '|' << cfg.npu.pe_rows << 'x' << cfg.npu.pe_cols << '|'
        << cfg.npu.scratchpad_bytes << '|' << cfg.page_bytes << '|'
        << cfg.lbm_block_budget << '|' << cfg.lbm_max_layers << '|'
        << cfg.est_dram_bytes_per_cycle;
    for (auto level : cfg.usage_levels) key << ',' << level;
    return key.str();
}

std::map<std::string, mapping::model_mapping>& registry() {
    static std::map<std::string, mapping::model_mapping> instance;
    return instance;
}

}  // namespace

const mapping::model_mapping& mapping_for(const model::model& m,
                                          const mapping::mapper_config& cfg) {
    auto& reg = registry();
    const std::string key = config_key(m, cfg);
    auto it = reg.find(key);
    if (it == reg.end()) it = reg.emplace(key, mapping::map_model(m, cfg)).first;
    return it->second;
}

void clear_mapping_registry() { registry().clear(); }

}  // namespace camdn::sim

#include "sim/sweep.h"

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>

#include "runtime/scheduler_snapshot.h"

namespace camdn::sim {

namespace {

/// Shared pool driver: runs `run_one(i)` for every index, inline when the
/// effective width is 1, else across a thread pool. The first exception
/// stops the sweep and rethrows on the caller's thread.
void pool_for_each(std::size_t count, unsigned threads,
                   const std::function<void(std::size_t)>& run_one) {
    if (count == 0) return;
    unsigned n = threads != 0 ? threads
                              : std::max(1u, std::thread::hardware_concurrency());
    n = std::min<unsigned>(n, static_cast<unsigned>(count));
    if (n <= 1) {
        for (std::size_t i = 0; i < count; ++i) run_one(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&]() {
        for (std::size_t i; !stop.load(std::memory_order_relaxed) &&
                            (i = next.fetch_add(1)) < count;) {
            try {
                run_one(i);
            } catch (...) {
                stop.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

std::vector<experiment_result> run_sweep(
    const std::vector<experiment_config>& cfgs, unsigned threads) {
    std::vector<experiment_result> results(cfgs.size());
    pool_for_each(cfgs.size(), threads,
                  [&](std::size_t i) { results[i] = run_experiment(cfgs[i]); });
    return results;
}

std::vector<experiment_result> run_sweep_segments(
    const std::vector<experiment_config>& cfgs,
    const std::vector<const runtime::scheduler_snapshot*>& resume_from,
    std::vector<runtime::scheduler_snapshot>* save_to,
    const std::vector<cycle_t>& hold_after, unsigned threads,
    const std::vector<cycle_t>& pause_at) {
    std::vector<experiment_result> results(cfgs.size());
    if (save_to != nullptr) save_to->assign(cfgs.size(), {});
    pool_for_each(cfgs.size(), threads, [&](std::size_t i) {
        const runtime::scheduler_snapshot* in =
            i < resume_from.size() ? resume_from[i] : nullptr;
        const cycle_t hold = i < hold_after.size() ? hold_after[i] : never;
        const cycle_t pause = i < pause_at.size() ? pause_at[i] : never;
        results[i] = run_experiment_segment(
            cfgs[i], in, save_to != nullptr ? &(*save_to)[i] : nullptr, hold,
            pause);
    });
    return results;
}

namespace {

std::string iso_key(const soc_config& soc,
                    const std::vector<const model::model*>& models) {
    std::ostringstream key;
    const auto& n = soc.npu;
    const auto& c = soc.cache;
    const auto& d = soc.dram;
    key << n.pe_rows << 'x' << n.pe_cols << '|' << n.scratchpad_bytes << '|'
        << n.cores << '|' << n.pipeline_fill << '|' << n.simd_lanes << '#'
        << c.total_bytes << '|' << c.ways << '|' << c.npu_ways << '|'
        << c.slices << '|' << c.page_bytes << '|' << c.hit_latency << '|'
        << c.fill_latency << '|' << c.noc_latency << '#' << d.channels << '|'
        << d.banks_per_channel << '|' << d.row_bytes << '|'
        << d.bytes_per_cycle_x10 << '|' << d.t_cl << '|' << d.t_rcd << '|'
        << d.t_rp << '|' << d.t_ccd << '|' << d.t_burst_gap << '|'
        << d.t_controller << '|' << d.regulation_epoch;
    for (const auto* m : models) key << '#' << m->name;
    return key.str();
}

std::mutex iso_mutex;

std::map<std::string, std::map<std::string, cycle_t>>& iso_cache() {
    static std::map<std::string, std::map<std::string, cycle_t>> instance;
    return instance;
}

}  // namespace

const std::map<std::string, cycle_t>& cached_isolated_latencies(
    const soc_config& soc, const std::vector<const model::model*>& models) {
    const std::string key = iso_key(soc, models);
    {
        std::lock_guard<std::mutex> lock(iso_mutex);
        auto it = iso_cache().find(key);
        if (it != iso_cache().end()) return it->second;
    }

    // Compute outside the lock (isolated_latencies already parallelizes
    // over the sweep pool). A racing thread may duplicate the work; the
    // loser's emplace is a no-op and both see the winner's entry.
    auto latencies = isolated_latencies(soc, models);

    std::lock_guard<std::mutex> lock(iso_mutex);
    return iso_cache().emplace(key, std::move(latencies)).first->second;
}

void clear_isolated_latency_cache() {
    std::lock_guard<std::mutex> lock(iso_mutex);
    iso_cache().clear();
}

}  // namespace camdn::sim

// Typed-event execution engine for tile-level layer runs.
//
// The engine walks a mapping candidate's (mi, ni) tile grid with a
// double-buffered three-phase pipeline per tile (LOAD -> COMPUTE -> STORE):
// loads of tile i+1 overlap compute of tile i, and the loader never runs
// more than one tile ahead of compute (two scratchpad buffers). All traffic
// flows through the DMA engine in chunks, so concurrently running cores
// contend realistically in the DRAM banks and cache slices.
//
// Unlike the closure-continuation executor it replaces, every in-flight
// layer is an explicit `layer_run` record — tile cursor, load/store
// occupancy, pipeline horizons — keyed by task slot and advanced by typed
// events (event_channel::layer tile gates and store issues, plus DMA
// completions routed through the engine's sink). A run is therefore
// serializable mid-layer: save_state() writes every cursor and
// restore_state() rebinds the runs to the restored tasks, with the pending
// typed events riding the event queue's typed section — the structure that
// lets the scheduler checkpoint at an arbitrary cycle and lets fleet
// rounds be time-sliced instead of drain-sliced.
//
// Path selection:
//   * baseline policies stream everything through the transparent cache;
//   * CaMDN policies fill pinned tensors into the model's region once and
//     re-read them from cache, bypass non-reusable streams around the
//     cache, keep LBM intermediates region-resident, and multicast the
//     parameter reads of multi-core tasks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/snapshot_io.h"
#include "common/types.h"
#include "mapping/mapping.h"
#include "npu/dma_engine.h"
#include "runtime/task.h"
#include "sim/address_map.h"
#include "sim/soc_config.h"

namespace camdn::obs {
class latency_attributor;
}

namespace camdn::sim {

class soc;

class layer_engine {
public:
    /// Registers the engine on the machine's typed layer channel and as
    /// the DMA completion sink. `machine` must outlive the engine.
    explicit layer_engine(soc& machine);

    /// Feature toggles used by subsequent start() calls (per-experiment
    /// configuration; the scheduler sets this once).
    void set_features(const camdn_features& f) { feat_ = f; }

    /// Completion hook: fires once every load, compute and store of a
    /// slot's layer has retired, with the completion cycle. Wired once by
    /// the scheduler (or per call by the execute_layer convenience).
    using done_fn = std::function<void(task_id, cycle_t)>;
    void set_on_done(done_fn fn) { on_done_ = std::move(fn); }

    /// Starts layer `t.current_layer` of `t` under `cand`. One run per
    /// slot: starting a slot whose previous layer has not completed throws
    /// std::logic_error.
    void start(runtime::task& t, const mapping::mapping_candidate& cand,
               const address_map& addrs);

    bool idle() const { return active_count_ == 0; }
    std::size_t active_runs() const { return active_count_; }
    bool slot_active(task_id slot) const {
        return slot >= 0 && static_cast<std::size_t>(slot) < runs_.size() &&
               runs_[slot].active;
    }

    /// Serializes every in-flight run (slot, candidate index, tile cursor,
    /// pipeline horizons, load/store occupancy). Throws std::logic_error
    /// when a run's candidate is not part of its task's MCT (ad-hoc runs
    /// started outside the scheduler cannot be checkpointed).
    void save_state(snapshot_writer& w) const;

    /// Rebuilds the run table against already-restored tasks: `tasks` and
    /// `addrs` are indexed by slot, and each restored run's candidate is
    /// resolved from its task's current MCT. Throws snapshot_error on a
    /// slot/candidate/cursor that does not fit. Requires an idle engine.
    void restore_state(snapshot_reader& r, std::vector<runtime::task>& tasks,
                       const std::vector<address_map>& addrs);

    /// Attaches the trace recorder (nullptr detaches): one duration event
    /// per retired layer, spanning issue to final store, on the slot's tid.
    void set_trace(obs::trace_recorder* trace) { trace_ = trace; }
    /// Attaches the host-time profiler (nullptr detaches): tile-gate and
    /// DMA-completion processing charge `layer`.
    void set_profiler(obs::profiler* prof) { prof_ = prof; }
    /// Attaches the latency attributor (nullptr detaches): every retired
    /// layer reports its wall span and pure-compute cycles, the per-layer
    /// split the six-component decomposition is built on.
    void set_attribution(obs::latency_attributor* attr) { attr_ = attr; }

private:
    // Typed layer events: a = slot; store_due carries the tile in b.
    static constexpr std::uint8_t kind_tile_gate = 0;
    static constexpr std::uint8_t kind_store_due = 1;
    // DMA token layout: a = slot, b = tile | store_bit.
    static constexpr std::uint64_t store_bit = std::uint64_t{1} << 63;

    /// One in-flight layer. The first block is the serialized cursor; the
    /// second is derived state bind() recomputes from the task, candidate
    /// and machine, so none of it rides the snapshot.
    struct layer_run {
        bool active = false;  ///< slot entry in use (vector slots recycle)

        // ---- serialized cursor ----
        std::int32_t cand_index = -2;  ///< lwm index; -1 = lbm; -2 = ad hoc
        std::uint64_t idx = 0;         ///< next tile to issue
        std::uint64_t load_tile = 0;   ///< tile currently loading
        std::uint32_t load_remaining = 0;  ///< outstanding load transfers
        cycle_t load_latest = 0;           ///< latest load completion so far
        std::uint64_t pending_stores = 0;
        bool all_issued = false;
        cycle_t final_end = 0;
        cycle_t issue_cycle = 0;
        cycle_t compute_end_prev = 0;
        cycle_t compute_end_prev2 = 0;

        // ---- derived (rebuilt by bind()) ----
        runtime::task* t = nullptr;
        const mapping::mapping_candidate* cand = nullptr;
        const model::layer* l = nullptr;
        address_map addrs{no_task};
        camdn_features feat{};
        bool use_region = false;
        std::uint32_t group = 1;  // cores running this task
        std::uint64_t tiles_m = 1, tiles_n = 1, total = 1;
        std::uint64_t compute_total = 0;
        // vcaddr layout inside the model's region.
        addr_t w_vc = 0, in_vc = 0;
        addr_t lbm_in_vc = 0, lbm_out_vc = 0, lbm_res_vc = 0;
        bool residual_from_region = false;

        void push_read(std::vector<npu::transfer_request>& out,
                       npu::transfer_request::kind kind, addr_t addr,
                       addr_t dram_addr, std::uint64_t nlines,
                       bool shareable) const;
        void push_split_read(std::vector<npu::transfer_request>& reqs,
                             std::uint64_t off, std::uint64_t bytes,
                             std::uint64_t pinned, addr_t vc_base,
                             addr_t dram_base, bool first_pass,
                             bool shareable) const;
        std::vector<npu::transfer_request> build_loads(std::uint64_t mi,
                                                       std::uint64_t ni) const;
        npu::transfer_request build_store(std::uint64_t tile) const;
        npu::transfer_request::kind stream_read_kind() const;
        npu::transfer_request::kind stream_write_kind() const;
    };

    /// Recomputes a run's derived state from its task and candidate.
    void bind(layer_run& run, runtime::task& t,
              const mapping::mapping_candidate& cand,
              const address_map& addrs) const;

    void on_event(const typed_event& ev);
    void on_transfer_done(const npu::dma_target& target, cycle_t done);
    void next_tile(layer_run& run);
    void loads_complete(layer_run& run, std::uint64_t tile, cycle_t load_done);
    void issue_store(layer_run& run, std::uint64_t tile);
    void maybe_finish(task_id slot);
    layer_run& run_of(task_id slot);

    soc& machine_;
    camdn_features feat_{};
    done_fn on_done_;
    /// Slot-indexed run table (slots are small dense ints; grown on
    /// demand). Entries recycle in place — `active` marks live runs — so
    /// the per-event lookup is one bounds check and an index, and
    /// save_state's ascending-slot walk matches the byte order of the
    /// std::map encoding this replaces.
    std::vector<layer_run> runs_;
    std::size_t active_count_ = 0;
    obs::trace_recorder* trace_ = nullptr;
    obs::profiler* prof_ = nullptr;
    obs::latency_attributor* attr_ = nullptr;
};

}  // namespace camdn::sim

// Aggregate SoC configuration (Table II defaults), the policy taxonomy of
// the evaluation, and the CaMDN feature toggles used by the ablation bench.
#pragma once

#include <algorithm>
#include <cstdint>

#include "cache/cache_config.h"
#include "dram/dram_config.h"
#include "mapping/cost_model.h"
#include "npu/npu_config.h"

namespace camdn::sim {

/// The five systems compared in the evaluation, plus the telemetry-driven
/// adaptive variant built on top of CaMDN(Full) (src/adapt).
enum class policy : std::uint8_t {
    shared_baseline,  ///< transparent shared cache, no resource scheduling
    moca,             ///< + dynamic memory-bandwidth partitioning
    aurora,           ///< + dynamic NPU & bandwidth co-allocation
    camdn_hw_only,    ///< NEC/CPT regions, equal static page split
    camdn_full,       ///< + cache-aware candidates + Algorithm 1 + LBM
    camdn_adaptive,   ///< + epoch feedback control from observed contention
};

const char* policy_name(policy p);

/// True for the CaMDN variants (NEC path, way partitioning active).
constexpr bool is_camdn(policy p) {
    return p == policy::camdn_hw_only || p == policy::camdn_full ||
           p == policy::camdn_adaptive;
}

/// True for the variants that renegotiate pages per layer (Algorithm 1).
constexpr bool is_camdn_dynamic(policy p) {
    return p == policy::camdn_full || p == policy::camdn_adaptive;
}

/// Feature toggles for the ablation study.
struct camdn_features {
    bool bypass = true;     ///< bypass semantics for non-reusable streams
    bool multicast = true;  ///< combine identical reads of multi-core tasks
    bool lbm = true;        ///< layer-block mapping
};

struct soc_config {
    npu::npu_config npu{};
    cache::cache_config cache{};
    dram::dram_config dram{};

    /// Derives the offline mapper configuration for this SoC. The usage
    /// ladder and LBM budget scale with the NPU subspace so larger caches
    /// yield larger (and more) candidates — the source of the paper's
    /// "larger enhancement with larger caches" trend.
    mapping::mapper_config mapper() const {
        mapping::mapper_config cfg;
        cfg.npu = npu;
        cfg.page_bytes = cache.page_bytes;
        cfg.est_dram_bytes_per_cycle =
            dram.peak_bytes_per_cycle() / npu.cores;
        const std::uint64_t subspace = cache.npu_subspace_bytes();
        cfg.usage_levels = {0};
        for (std::uint64_t level = kib(256); level <= subspace / 2; level *= 2)
            cfg.usage_levels.push_back(level);
        cfg.lbm_block_budget =
            std::clamp<std::uint64_t>(subspace / 2, mib(1), mib(16));
        return cfg;
    }
};

}  // namespace camdn::sim

#include "sim/soc.h"

namespace camdn::sim {

const char* policy_name(policy p) {
    switch (p) {
        case policy::shared_baseline: return "Shared-Baseline";
        case policy::moca: return "MoCA";
        case policy::aurora: return "AuRORA";
        case policy::camdn_hw_only: return "CaMDN(HW-only)";
        case policy::camdn_full: return "CaMDN(Full)";
        case policy::camdn_adaptive: return "CaMDN(Adaptive)";
    }
    return "?";
}

soc::soc(const soc_config& config, policy pol)
    : config_(config), policy_(pol) {
    dram_ = std::make_unique<dram::dram_system>(config_.dram);
    cache_ = std::make_unique<cache::shared_cache>(config_.cache, *dram_);
    dma_ = std::make_unique<npu::dma_engine>(eq_, *cache_);
    layers_ = std::make_unique<layer_engine>(*this);

    // Way-mask register: CaMDN partitions the transparent path down to the
    // CPU ways; baselines run the whole cache transparently.
    cache_->set_transparent_ways(is_camdn(pol) ? config_.cache.cpu_ways()
                                               : config_.cache.ways);

    cores_.reserve(config_.npu.cores);
    for (std::uint32_t i = 0; i < config_.npu.cores; ++i)
        cores_.emplace_back(static_cast<npu_id>(i), config_.npu);
}

}  // namespace camdn::sim

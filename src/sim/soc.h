// The simulated SoC: event queue, DRAM, sliced shared cache, NPU cores,
// the DMA engine and the typed-event layer engine, wired per soc_config
// and configured for a policy.
#pragma once

#include <memory>
#include <vector>

#include "cache/shared_cache.h"
#include "common/event_queue.h"
#include "dram/dram_system.h"
#include "npu/dma_engine.h"
#include "npu/npu_core.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "sim/layer_engine.h"
#include "sim/soc_config.h"

namespace camdn::sim {

class soc {
public:
    explicit soc(const soc_config& config, policy pol);

    event_queue& eq() { return eq_; }
    const event_queue& eq() const { return eq_; }
    dram::dram_system& dram() { return *dram_; }
    const dram::dram_system& dram() const { return *dram_; }
    cache::shared_cache& cache() { return *cache_; }
    const cache::shared_cache& cache() const { return *cache_; }
    npu::dma_engine& dma() { return *dma_; }
    const npu::dma_engine& dma() const { return *dma_; }
    layer_engine& layers() { return *layers_; }
    const layer_engine& layers() const { return *layers_; }

    std::vector<npu::npu_core>& cores() { return cores_; }
    const std::vector<npu::npu_core>& cores() const { return cores_; }
    const soc_config& config() const { return config_; }
    policy active_policy() const { return policy_; }

    /// Attaches the telemetry bus to every instrumented component (cache,
    /// DMA engine, layer executor). nullptr detaches.
    void set_telemetry(adapt::telemetry_bus* bus) {
        telemetry_ = bus;
        cache_->set_telemetry(bus);
        dma_->set_telemetry(bus);
    }
    adapt::telemetry_bus* telemetry() const { return telemetry_; }

    /// Fans the run observer's hooks out to the instrumented components:
    /// the trace recorder to the DMA and layer engines, the profiler to the
    /// DMA engine, layer engine and DRAM, the latency attributor to every
    /// wait-charging component (DRAM, cache, DMA, layer engine). Null
    /// pointers detach. Observation only — attaching an observer never
    /// changes simulated behavior.
    void set_observer(const obs::run_observer& o) {
        dma_->set_trace(o.trace);
        dma_->set_profiler(o.prof);
        layers_->set_trace(o.trace);
        layers_->set_profiler(o.prof);
        dram_->set_profiler(o.prof);
        dram_->set_attribution(o.attr);
        cache_->set_attribution(o.attr);
        dma_->set_attribution(o.attr);
        layers_->set_attribution(o.attr);
    }

private:
    soc_config config_;
    policy policy_;
    event_queue eq_;
    std::unique_ptr<dram::dram_system> dram_;
    std::unique_ptr<cache::shared_cache> cache_;
    std::unique_ptr<npu::dma_engine> dma_;
    std::unique_ptr<layer_engine> layers_;
    std::vector<npu::npu_core> cores_;
    adapt::telemetry_bus* telemetry_ = nullptr;
};

}  // namespace camdn::sim

// Tile-level execution of one layer under a chosen mapping candidate.
//
// The executor walks the candidate's (mi, ni) tile grid with a
// double-buffered three-phase pipeline per tile (LOAD -> COMPUTE -> STORE):
// loads of tile i+1 overlap compute of tile i, and the loader never runs
// more than one tile ahead of compute (two scratchpad buffers). All traffic
// flows through the DMA engine in chunks, so concurrently running cores
// contend realistically in the DRAM banks and cache slices.
//
// Path selection:
//   * baseline policies stream everything through the transparent cache;
//   * CaMDN policies fill pinned tensors into the model's region once and
//     re-read them from cache, bypass non-reusable streams around the
//     cache, keep LBM intermediates region-resident, and multicast the
//     parameter reads of multi-core tasks.
#pragma once

#include <functional>

#include "mapping/mapping.h"
#include "runtime/task.h"
#include "sim/address_map.h"
#include "sim/soc.h"

namespace camdn::sim {

/// Executes layer `t.current_layer` of `t` on `machine` using `cand`.
/// `on_done` fires once every load, compute and store of the layer has
/// retired, with the completion cycle.
void execute_layer(soc& machine, const camdn_features& features,
                   runtime::task& t, const mapping::mapping_candidate& cand,
                   const address_map& addrs,
                   std::function<void(cycle_t)> on_done);

}  // namespace camdn::sim

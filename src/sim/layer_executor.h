// One-shot convenience over the typed-event layer engine
// (sim/layer_engine.h), which owns the tile-level execution state machine.
#pragma once

#include <functional>

#include "mapping/mapping.h"
#include "runtime/task.h"
#include "sim/address_map.h"
#include "sim/soc.h"

namespace camdn::sim {

/// Executes layer `t.current_layer` of `t` on `machine` using `cand`.
/// `on_done` fires once every load, compute and store of the layer has
/// retired, with the completion cycle.
///
/// Convenience for unit tests and standalone probes: each call re-wires
/// the machine's layer engine (features + completion hook), so drive at
/// most one call's runs at a time per machine — long-lived callers like
/// the scheduler wire the engine once and call layer_engine::start.
void execute_layer(soc& machine, const camdn_features& features,
                   runtime::task& t, const mapping::mapping_candidate& cand,
                   const address_map& addrs,
                   std::function<void(cycle_t)> on_done);

}  // namespace camdn::sim

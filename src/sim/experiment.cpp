#include "sim/experiment.h"

#include <memory>

#include "model/model_zoo.h"
#include "runtime/scheduler.h"
#include "runtime/scheduler_snapshot.h"
#include "runtime/workload.h"
#include "sim/sweep.h"

namespace camdn::sim {

double experiment_result::avg_latency_ms() const {
    return mean_latency_ms("");
}

double experiment_result::mean_latency_ms(const std::string& abbr) const {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& rec : completions) {
        if (!abbr.empty() && rec.abbr != abbr) continue;
        sum += cycles_to_ms(rec.latency());
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double experiment_result::mem_mb_per_inference(const std::string& abbr) const {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& rec : completions) {
        if (!abbr.empty() && rec.abbr != abbr) continue;
        sum += static_cast<double>(rec.dram_bytes) / (1024.0 * 1024.0);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t experiment_result::completions_of(const std::string& abbr) const {
    std::uint64_t n = 0;
    for (const auto& rec : completions)
        if (abbr.empty() || rec.abbr == abbr) ++n;
    return n;
}

experiment_result run_experiment(const experiment_config& cfg) {
    return run_experiment_segment(cfg, nullptr, nullptr);
}

experiment_result run_experiment_segment(
    const experiment_config& cfg,
    const runtime::scheduler_snapshot* resume_from,
    runtime::scheduler_snapshot* save_to, cycle_t hold_dispatch_after,
    cycle_t pause_at) {
    experiment_config local = cfg;
    if (local.workload.empty()) {
        for (const auto& m : model::benchmark_models())
            local.workload.push_back(&m);
    }
    auto gen = runtime::make_workload_generator(local);
    auto s = resume_from != nullptr
                 ? std::make_unique<runtime::scheduler>(
                       local, *gen, *resume_from, runtime::resume_mode::warm)
                 : std::make_unique<runtime::scheduler>(local, *gen);
    if (pause_at != never)
        s->run_segment(pause_at);  // time-sliced: pause mid-flight
    else
        s->run_segment_hold_dispatch(hold_dispatch_after);
    // segment_result closes the boundary telemetry epoch before save(), so
    // the cut carries into the snapshot.
    experiment_result res = s->segment_result();
    if (save_to != nullptr) *save_to = s->save();
    return res;
}

std::map<std::string, cycle_t> isolated_latencies(
    const soc_config& soc, const std::vector<const model::model*>& models) {
    // One single-tenant run per model; each is independent, so the sweep
    // pool spreads them over cores without changing any result.
    std::vector<experiment_config> cfgs;
    cfgs.reserve(models.size());
    for (const auto* m : models) {
        experiment_config cfg;
        cfg.soc = soc;
        cfg.pol = policy::shared_baseline;
        cfg.workload = {m};
        cfg.co_located = 1;
        cfg.inferences_per_slot = 1;
        cfgs.push_back(std::move(cfg));
    }
    const auto results = run_sweep(cfgs);

    std::map<std::string, cycle_t> out;
    for (std::size_t i = 0; i < models.size(); ++i)
        out[models[i]->abbr] =
            results[i].completions.empty() ? 0
                                           : results[i].completions[0].latency();
    return out;
}

}  // namespace camdn::sim

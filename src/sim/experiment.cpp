#include "sim/experiment.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>

#include "common/rng.h"
#include "mapping/layer_mapper.h"
#include "model/model_zoo.h"
#include "runtime/bandwidth_allocator.h"
#include "runtime/cache_allocation.h"
#include "runtime/npu_allocator.h"
#include "runtime/task.h"
#include "sim/layer_executor.h"
#include "sim/mapping_registry.h"

namespace camdn::sim {

namespace {

class scheduler {
public:
    explicit scheduler(const experiment_config& cfg)
        : cfg_(cfg),
          machine_(cfg.soc, cfg.pol),
          bw_(machine_.dram()),
          npus_(cfg.soc.npu.cores) {}

    experiment_result run();

private:
    bool use_bw_alloc() const {
        return cfg_.pol == policy::moca || cfg_.pol == policy::aurora ||
               (cfg_.qos_mode && is_camdn(cfg_.pol));
    }
    bool use_npu_alloc() const {
        return cfg_.pol == policy::aurora ||
               (cfg_.qos_mode && is_camdn(cfg_.pol));
    }

    std::vector<const runtime::task*> running_tasks_const() const {
        std::vector<const runtime::task*> out;
        for (const auto& t : tasks_)
            if (t.running()) out.push_back(&t);
        return out;
    }
    std::vector<runtime::task*> running_tasks() {
        std::vector<runtime::task*> out;
        for (auto& t : tasks_)
            if (t.running()) out.push_back(&t);
        return out;
    }

    std::uint64_t est_total_cycles(const runtime::task& t) const {
        std::uint64_t sum = 0;
        for (auto e : t.mapping->layer_est) sum += e;
        return sum;
    }

    void enqueue_slot(task_id slot);
    void try_dispatch();
    void begin_inference(runtime::task& t);
    void begin_layer(runtime::task& t);
    void negotiate_pages(runtime::task& t, runtime::allocation_decision d);
    void grant_and_run(runtime::task& t, const runtime::allocation_decision& d);
    void run_layer(runtime::task& t, const mapping::mapping_candidate& cand);
    void end_layer(runtime::task& t, cycle_t end);
    void end_inference(runtime::task& t, cycle_t end);
    void remap_cpt(runtime::task& t);
    std::uint32_t predict_next_pages(const runtime::task& t);
    void schedule_bw_epoch();

    const experiment_config& cfg_;
    soc machine_;
    runtime::cache_allocation_algorithm alg_;
    runtime::bandwidth_allocator bw_;
    runtime::npu_allocator npus_;

    std::vector<runtime::task> tasks_;
    std::vector<address_map> addrs_;
    std::vector<std::vector<const model::model*>> plan_;
    std::vector<std::uint32_t> next_inference_;
    std::vector<cycle_t> slot_arrival_;

    std::vector<npu_id> free_cores_;
    std::deque<task_id> dispatch_queue_;

    experiment_result result_;
    std::uint32_t live_slots_ = 0;
    bool done_ = false;
};

void scheduler::schedule_bw_epoch() {
    if (done_ || !use_bw_alloc()) return;
    auto running = running_tasks();
    bw_.reallocate(running, machine_.eq().now());
    machine_.eq().schedule_after(cfg_.bw_epoch, [this]() { schedule_bw_epoch(); });
}

void scheduler::enqueue_slot(task_id slot) {
    slot_arrival_[slot] = machine_.eq().now();
    dispatch_queue_.push_back(slot);
    try_dispatch();
}

void scheduler::try_dispatch() {
    while (!dispatch_queue_.empty() && !free_cores_.empty()) {
        const task_id slot = dispatch_queue_.front();
        dispatch_queue_.pop_front();
        runtime::task& t = tasks_[slot];

        const model::model* mdl = plan_[slot][next_inference_[slot]];
        t.mdl = mdl;
        t.mapping = &mapping_for(*mdl, cfg_.soc.mapper());
        t.current_layer = 0;
        // Re-key the slot's parameter addresses to the dispatched model
        // (FNV-1a of the name keeps runs reproducible across processes).
        std::uint64_t salt = 1469598103934665603ull;
        for (char ch : mdl->name) salt = (salt ^ static_cast<unsigned char>(ch)) *
                                         1099511628211ull;
        addrs_[slot] = address_map(slot, salt);
        t.arrival = slot_arrival_[slot];
        t.deadline = cfg_.qos_mode
                         ? machine_.eq().now() +
                               static_cast<cycle_t>(cfg_.qos_scale *
                                                    ms_to_cycles(mdl->qos_ms))
                         : never;

        // Core-group sizing. QoS mode sizes groups by deadline slack
        // (AuRORA's policy, also adopted by CaMDN in the QoS experiment);
        // throughput mode spreads idle cores evenly across every policy so
        // low co-location points compare systems, not core counts.
        std::uint32_t want = 1;
        if (use_npu_alloc() && t.deadline != never) {
            const double est = static_cast<double>(est_total_cycles(t));
            const double window = static_cast<double>(
                t.deadline > machine_.eq().now()
                    ? t.deadline - machine_.eq().now()
                    : 1);
            want = static_cast<std::uint32_t>(
                std::clamp(est / window + 0.999, 1.0, 4.0));
        } else if (!cfg_.qos_mode && cfg_.spread_idle_cores &&
                   cfg_.co_located < cfg_.soc.npu.cores) {
            want = std::min<std::uint32_t>(
                4, cfg_.soc.npu.cores / cfg_.co_located);
        }
        want = std::min<std::uint32_t>(
            want, static_cast<std::uint32_t>(free_cores_.size()));
        want = std::max<std::uint32_t>(want, 1);

        t.cores.clear();
        for (std::uint32_t i = 0; i < want; ++i) {
            t.cores.push_back(free_cores_.back());
            free_cores_.pop_back();
        }
        for (npu_id c : t.cores)
            machine_.cores()[c].assign(t.id, machine_.eq().now());

        begin_inference(t);
    }
}

void scheduler::begin_inference(runtime::task& t) {
    t.started = machine_.eq().now();
    t.dram_bytes_mark = machine_.dram().task_bytes(t.id);
    t.lbm_enabled = false;
    t.t_next = machine_.eq().now();
    t.p_next = 0;

    if (cfg_.pol == policy::camdn_hw_only) {
        // Equal static split of the NPU subspace, granted once per
        // inference; no dynamic adjustment afterwards.
        const std::uint32_t share =
            machine_.cache().pages().total_pages() / cfg_.co_located;
        const std::uint32_t have = machine_.cache().pages().allocated(t.id);
        if (share > have)
            machine_.cache().pages().try_allocate(t.id, share - have);
        t.p_alloc = machine_.cache().pages().allocated(t.id);
        remap_cpt(t);
    }

    begin_layer(t);
}

void scheduler::begin_layer(runtime::task& t) {
    // Bandwidth-partitioning policies track layer changes: demands shift at
    // layer granularity, so shares are refreshed here as well as at epochs.
    if (use_bw_alloc()) {
        auto running = running_tasks();
        bw_.reallocate(running, machine_.eq().now());
    }

    const mapping::mct& table = t.current_mct();

    switch (cfg_.pol) {
        case policy::shared_baseline:
        case policy::moca:
        case policy::aurora:
            run_layer(t, table.minimal());
            return;

        case policy::camdn_hw_only: {
            // Architecture only: the static share bounds the LWM candidate;
            // LBM and prediction belong to the scheduling method (Full).
            const std::uint32_t share = t.p_alloc;
            const mapping::mapping_candidate* best = &table.lwm.front();
            for (const auto& cand : table.lwm)
                if (cand.pages_needed <= share &&
                    cand.pages_needed >= best->pages_needed)
                    best = &cand;
            run_layer(t, *best);
            return;
        }

        case policy::camdn_full: {
            auto running = running_tasks_const();
            auto decision = alg_.select(t, running, machine_.cache().pages(),
                                        machine_.eq().now(), cfg_.features.lbm);
            negotiate_pages(t, decision);
            return;
        }
    }
}

void scheduler::negotiate_pages(runtime::task& t,
                                runtime::allocation_decision d) {
    auto& pool = machine_.cache().pages();
    const std::uint32_t target = d.pages_needed;

    // Shrink first: excess pages return to the pool immediately.
    if (t.p_alloc > target) {
        pool.release(t.id, t.p_alloc - target);
        t.p_alloc = pool.allocated(t.id);
        remap_cpt(t);
    }
    if (t.p_alloc < target) {
        auto got = pool.try_allocate(t.id, target - t.p_alloc);
        if (!got) {
            const cycle_t now = machine_.eq().now();
            if (d.timeout != never && now >= d.timeout) {
                // Timeout: fall back to the next-smaller candidate.
                negotiate_pages(
                    t, alg_.downgrade(t, d.candidate->pages_needed, now));
                return;
            }
            const cycle_t retry =
                std::min(d.timeout, now + cfg_.page_retry_interval);
            machine_.eq().schedule(retry,
                                   [this, &t, d]() { negotiate_pages(t, d); });
            return;
        }
        t.p_alloc = pool.allocated(t.id);
        remap_cpt(t);
    }
    grant_and_run(t, d);
}

void scheduler::grant_and_run(runtime::task& t,
                              const runtime::allocation_decision& d) {
    if (d.candidate->is_lbm && !t.lbm_enabled) {
        t.lbm_enabled = true;
        t.lbm_block = t.mapping->block_of[t.current_layer];
    }
    // Publish the Algorithm 1 prediction state: the co-runners see when
    // this task will reallocate next and how many pages it expects to use.
    t.t_next = machine_.eq().now() + d.candidate->est_cycles;
    t.p_next = predict_next_pages(t);
    run_layer(t, *d.candidate);
}

std::uint32_t scheduler::predict_next_pages(const runtime::task& t) {
    const std::uint32_t next = t.current_layer + 1;
    if (next >= t.mdl->layers.size()) return 0;
    const mapping::mct& table = t.mapping->tables[next];
    if (t.lbm_enabled && t.mapping->block_of[next] == t.lbm_block && table.lbm)
        return table.lbm->pages_needed;
    // Predicted steady-state demand: the largest candidate within the
    // equal split — co-runners converge to their fair share, so pages held
    // beyond it are expected to come back to the pool.
    const std::uint32_t fair =
        machine_.cache().pages().total_pages() / cfg_.co_located;
    const mapping::mapping_candidate* pick = &table.lwm.front();
    for (const auto& cand : table.lwm)
        if (cand.pages_needed <= fair && cand.pages_needed >= pick->pages_needed)
            pick = &cand;
    return pick->pages_needed;
}

void scheduler::remap_cpt(runtime::task& t) {
    auto& cpt = machine_.cache().cpt(t.id);
    cpt.clear();
    const auto& pages = machine_.cache().pages().pages_of(t.id);
    for (std::uint32_t v = 0; v < pages.size(); ++v) cpt.map(v, pages[v]);
}

void scheduler::run_layer(runtime::task& t,
                          const mapping::mapping_candidate& cand) {
    execute_layer(machine_, cfg_.features, t, cand, addrs_[t.id],
                  [this, &t](cycle_t end) { end_layer(t, end); });
}

void scheduler::end_layer(runtime::task& t, cycle_t end) {
    t.t_next = end;  // reallocating right now

    if (is_camdn(cfg_.pol) && cfg_.pol == policy::camdn_full &&
        t.lbm_enabled && t.mapping->is_block_tail(t.current_layer)) {
        // The block's intermediates are dead; return the arena promptly.
        machine_.cache().pages().release_all(t.id);
        t.p_alloc = 0;
        t.lbm_enabled = false;
        remap_cpt(t);
    }

    t.current_layer += 1;
    if (t.current_layer < t.mdl->layers.size()) {
        begin_layer(t);
    } else {
        end_inference(t, end);
    }
}

void scheduler::end_inference(runtime::task& t, cycle_t end) {
    if (cfg_.pol == policy::camdn_full || cfg_.pol == policy::camdn_hw_only) {
        machine_.cache().pages().release_all(t.id);
        t.p_alloc = 0;
        t.lbm_enabled = false;
        machine_.cache().destroy_cpt(t.id);
    }
    machine_.dram().set_task_share(t.id, 0.0);

    inference_record rec;
    rec.slot = t.id;
    rec.abbr = t.mdl->abbr;
    rec.arrival = t.arrival;
    rec.start = t.started;
    rec.end = end;
    rec.cores = static_cast<std::uint32_t>(t.cores.size());
    rec.dram_bytes = machine_.dram().task_bytes(t.id) - t.dram_bytes_mark;
    result_.completions.push_back(std::move(rec));

    for (npu_id c : t.cores) {
        machine_.cores()[c].release(machine_.eq().now());
        free_cores_.push_back(c);
    }
    t.cores.clear();

    next_inference_[t.id] += 1;
    if (next_inference_[t.id] < cfg_.inferences_per_slot) {
        enqueue_slot(t.id);
    } else {
        assert(live_slots_ > 0);
        live_slots_ -= 1;
        if (live_slots_ == 0) done_ = true;
        try_dispatch();
    }
}

experiment_result scheduler::run() {
    const std::uint32_t slots = cfg_.co_located;
    tasks_.resize(slots);
    next_inference_.assign(slots, 0);
    slot_arrival_.assign(slots, 0);
    plan_.resize(slots);
    addrs_.reserve(slots);

    // Pre-generate the random model sequence per slot so every policy sees
    // the identical workload (paper: random dispatch, fair comparison).
    rng r(cfg_.seed);
    for (std::uint32_t s = 0; s < slots; ++s) {
        tasks_[s].id = static_cast<task_id>(s);
        addrs_.emplace_back(static_cast<task_id>(s));
        plan_[s].reserve(cfg_.inferences_per_slot);
        for (std::uint32_t j = 0; j < cfg_.inferences_per_slot; ++j) {
            plan_[s].push_back(
                cfg_.workload[r.next_below(cfg_.workload.size())]);
        }
    }

    for (std::uint32_t c = cfg_.soc.npu.cores; c > 0; --c)
        free_cores_.push_back(static_cast<npu_id>(c - 1));

    live_slots_ = slots;
    for (std::uint32_t s = 0; s < slots; ++s) enqueue_slot(s);
    schedule_bw_epoch();

    machine_.eq().run();
    assert(live_slots_ == 0 && "experiment ended with live slots");

    result_.makespan = machine_.eq().now();
    result_.cache_hit_rate = machine_.cache().stats().hit_rate();
    result_.cache_stats = machine_.cache().stats();
    result_.dram_stats = machine_.dram().stats();
    result_.dram_total_bytes = machine_.dram().stats().bytes();
    return result_;
}

}  // namespace

double experiment_result::avg_latency_ms() const {
    return mean_latency_ms("");
}

double experiment_result::mean_latency_ms(const std::string& abbr) const {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& rec : completions) {
        if (!abbr.empty() && rec.abbr != abbr) continue;
        sum += cycles_to_ms(rec.latency());
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double experiment_result::mem_mb_per_inference(const std::string& abbr) const {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& rec : completions) {
        if (!abbr.empty() && rec.abbr != abbr) continue;
        sum += static_cast<double>(rec.dram_bytes) / (1024.0 * 1024.0);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t experiment_result::completions_of(const std::string& abbr) const {
    std::uint64_t n = 0;
    for (const auto& rec : completions)
        if (abbr.empty() || rec.abbr == abbr) ++n;
    return n;
}

experiment_result run_experiment(const experiment_config& cfg) {
    experiment_config local = cfg;
    if (local.workload.empty()) {
        for (const auto& m : model::benchmark_models())
            local.workload.push_back(&m);
    }
    scheduler s(local);
    return s.run();
}

std::map<std::string, cycle_t> isolated_latencies(
    const soc_config& soc, const std::vector<const model::model*>& models) {
    std::map<std::string, cycle_t> out;
    for (const auto* m : models) {
        experiment_config cfg;
        cfg.soc = soc;
        cfg.pol = policy::shared_baseline;
        cfg.workload = {m};
        cfg.co_located = 1;
        cfg.inferences_per_slot = 1;
        const auto res = run_experiment(cfg);
        out[m->abbr] = res.completions.empty() ? 0 : res.completions[0].latency();
    }
    return out;
}

}  // namespace camdn::sim

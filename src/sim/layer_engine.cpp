#include "sim/layer_engine.h"

#include <algorithm>
#include <stdexcept>

#include "obs/attribution.h"
#include "sim/soc.h"

namespace camdn::sim {

namespace {

using npu::transfer_request;
using req_kind = npu::transfer_request::kind;

/// Bytes of element `i` of `total` when `bytes` is split as evenly as
/// possible (difference-of-prefixes, so the chunks sum exactly).
std::uint64_t chunk_bytes(std::uint64_t bytes, std::uint64_t i,
                          std::uint64_t total) {
    return bytes * (i + 1) / total - bytes * i / total;
}
std::uint64_t chunk_offset(std::uint64_t bytes, std::uint64_t i,
                           std::uint64_t total) {
    return bytes * i / total;
}

/// Pseudo-tile size for streaming operators (elementwise/pool/dwconv):
/// pipelining granularity, not a residency constraint.
constexpr std::uint64_t stream_tile_bytes = kib(256);

}  // namespace

layer_engine::layer_engine(soc& machine) : machine_(machine) {
    machine_.eq().set_handler(event_channel::layer,
                              [this](const typed_event& ev) { on_event(ev); });
    machine_.dma().set_sink(
        [this](const npu::dma_target& target, cycle_t done) {
            on_transfer_done(target, done);
        });
}

// ---- request construction -------------------------------------------------

/// Duplicated (per-core) or multicast read according to features.
void layer_engine::layer_run::push_read(std::vector<transfer_request>& out,
                                        req_kind kind, addr_t addr,
                                        addr_t dram_addr, std::uint64_t nlines,
                                        bool shareable) const {
    if (nlines == 0) return;
    transfer_request r;
    r.op = kind;
    r.task = t->id;
    r.addr = addr;
    r.dram_addr = dram_addr;
    r.nlines = nlines;
    if (group > 1 && shareable) {
        const bool can_multicast =
            use_region && feat.multicast &&
            (kind == req_kind::region_read || kind == req_kind::bypass_read);
        if (can_multicast) {
            r.group_size = group;
            out.push_back(r);
            return;
        }
        // No combining: every core issues its own copy.
        for (std::uint32_t g = 0; g < group; ++g) out.push_back(r);
        return;
    }
    out.push_back(r);
}

req_kind layer_engine::layer_run::stream_read_kind() const {
    if (!use_region) return req_kind::transparent_read;
    return feat.bypass ? req_kind::bypass_read : req_kind::transparent_read;
}
req_kind layer_engine::layer_run::stream_write_kind() const {
    if (!use_region) return req_kind::transparent_write;
    return feat.bypass ? req_kind::bypass_write : req_kind::transparent_write;
}

/// Emits the requests for a [off, off+bytes) slice of a tensor whose
/// first `pinned` bytes live in the region at `vc_base`. The pinned
/// prefix fills on its first pass and is re-read from the region after;
/// the streamed suffix uses the policy's stream path every pass.
void layer_engine::layer_run::push_split_read(
    std::vector<transfer_request>& reqs, std::uint64_t off, std::uint64_t bytes,
    std::uint64_t pinned, addr_t vc_base, addr_t dram_base, bool first_pass,
    bool shareable) const {
    if (bytes == 0) return;
    const bool pin_path = use_region && pinned > 0 && off < pinned;
    if (pin_path) {
        const std::uint64_t pin_bytes = std::min(bytes, pinned - off);
        push_read(reqs,
                  first_pass ? req_kind::region_fill : req_kind::region_read,
                  vc_base + off, dram_base + off, lines_for(pin_bytes),
                  !first_pass && shareable);
        off += pin_bytes;
        bytes -= pin_bytes;
        if (bytes == 0) return;
    }
    push_read(reqs, stream_read_kind(), dram_base + off, dram_base + off,
              lines_for(bytes), shareable);
}

std::vector<transfer_request> layer_engine::layer_run::build_loads(
    std::uint64_t mi, std::uint64_t ni) const {
    std::vector<transfer_request> reqs;
    const std::uint32_t li = t->current_layer;

    // Parameters (or the attention second operand). Re-fetched once per
    // mi pass — or loaded once when weight-stationary (weight_passes
    // == 1 with multiple mi tiles); identical across cores -> shareable.
    const bool w_stationary = cand->weight_passes == 1 && tiles_m > 1;
    if (l->weight_bytes > 0 && !(w_stationary && mi > 0)) {
        const std::uint64_t bytes = chunk_bytes(l->weight_bytes, ni, tiles_n);
        const std::uint64_t off = chunk_offset(l->weight_bytes, ni, tiles_n);
        push_split_read(reqs, off, bytes, cand->weights_pinned_bytes, w_vc,
                        addrs.weights(li), /*first_pass=*/mi == 0,
                        /*shareable=*/true);
    }

    // Input activations. Re-fetched once per ni pass — or kept resident
    // when input-stationary; cores work on disjoint m -> not shareable.
    const bool in_stationary = cand->input_passes == 1 && tiles_n > 1;
    if (l->input_bytes > 0 && !(in_stationary && ni > 0)) {
        const std::uint64_t bytes = chunk_bytes(l->input_bytes, mi, tiles_m);
        const std::uint64_t off = chunk_offset(l->input_bytes, mi, tiles_m);
        const addr_t dram =
            li == 0 ? addrs.model_input() : addrs.activation(li - 1);
        if (cand->input_from_region) {
            push_read(reqs, req_kind::region_read, lbm_in_vc + off, dram + off,
                      lines_for(bytes), false);
        } else {
            push_split_read(reqs, off, bytes, cand->input_pinned_bytes, in_vc,
                            dram, /*first_pass=*/ni == 0,
                            /*shareable=*/false);
        }
    }

    // Residual second operand (elementwise adds), chunked like input.
    if (l->residual_from >= 0 && l->output_bytes > 0) {
        const std::uint64_t bytes = chunk_bytes(l->output_bytes, mi, tiles_m);
        const std::uint64_t off = chunk_offset(l->output_bytes, mi, tiles_m);
        const addr_t dram =
            addrs.activation(static_cast<std::uint32_t>(l->residual_from)) +
            off;
        if (residual_from_region && cand->is_lbm) {
            push_read(reqs, req_kind::region_read, lbm_res_vc + off, dram,
                      lines_for(bytes), false);
        } else {
            push_read(reqs, stream_read_kind(), dram, dram, lines_for(bytes),
                      false);
        }
    }
    return reqs;
}

transfer_request layer_engine::layer_run::build_store(
    std::uint64_t tile) const {
    transfer_request r;
    r.task = t->id;
    const std::uint64_t bytes = chunk_bytes(l->output_bytes, tile, total);
    const std::uint64_t off = chunk_offset(l->output_bytes, tile, total);
    r.nlines = lines_for(bytes);
    const addr_t dram = addrs.activation(t->current_layer) + off;
    if (cand->output_to_region && use_region) {
        r.op = req_kind::region_write;
        r.addr = lbm_out_vc + off;
        r.dram_addr = dram;
    } else {
        r.op = stream_write_kind();
        r.addr = dram;
        r.dram_addr = dram;
    }
    return r;
}

// ---- run lifecycle --------------------------------------------------------

void layer_engine::bind(layer_run& run, runtime::task& t,
                        const mapping::mapping_candidate& cand,
                        const address_map& addrs) const {
    run.t = &t;
    run.cand = &cand;
    run.l = &t.mdl->layers[t.current_layer];
    run.addrs = addrs;
    run.feat = feat_;
    run.use_region = is_camdn(machine_.active_policy());
    run.group =
        std::max<std::uint32_t>(1, static_cast<std::uint32_t>(t.cores.size()));

    const model::layer& l = *run.l;
    const bool dense = l.kind == model::layer_kind::conv ||
                       l.kind == model::layer_kind::gemm;
    if (dense) {
        run.tiles_m = ceil_div(l.m, cand.tm);
        run.tiles_n = ceil_div(l.n, cand.tn);
    } else {
        const std::uint64_t span = std::max(l.input_bytes, l.output_bytes);
        run.tiles_m =
            std::max<std::uint64_t>(1, ceil_div(span, stream_tile_bytes));
        run.tiles_n = 1;
    }
    run.total = run.tiles_m * run.tiles_n;
    run.compute_total = cand.compute_cycles / run.group;

    // Region layout. LWM: pinned weights then pinned input. LBM: the
    // block arena laid out by layout_block.
    if (cand.is_lbm) {
        const auto& block = t.mapping->block_of_layer(t.current_layer);
        run.lbm_out_vc = block.offset_of(t.current_layer);
        if (cand.input_from_region)
            run.lbm_in_vc = block.offset_of(t.current_layer - 1);
        const std::int32_t res = l.residual_from;
        if (res >= 0 &&
            mapping::residual_in_block(*t.mdl, t.current_layer, block)) {
            run.residual_from_region = true;
            run.lbm_res_vc = block.offset_of(static_cast<std::uint32_t>(res));
        }
    } else {
        run.w_vc = 0;
        run.in_vc = round_up(cand.weights_pinned_bytes, line_bytes);
    }
}

void layer_engine::start(runtime::task& t,
                         const mapping::mapping_candidate& cand,
                         const address_map& addrs) {
    if (slot_active(t.id))
        throw std::logic_error(
            "layer_engine::start: slot already has a layer in flight");
    if (static_cast<std::size_t>(t.id) >= runs_.size())
        runs_.resize(t.id + 1);
    layer_run& run = runs_[t.id];
    run = layer_run{};
    run.active = true;
    ++active_count_;
    run.cand_index = mapping::candidate_index(t.current_mct(), &cand);
    bind(run, t, cand, addrs);
    run.issue_cycle = machine_.eq().now();
    run.compute_end_prev = machine_.eq().now();
    run.compute_end_prev2 = machine_.eq().now();
    next_tile(run);
}

layer_engine::layer_run& layer_engine::run_of(task_id slot) {
    if (!slot_active(slot))
        throw std::logic_error(
            "layer_engine: event for a slot with no layer in flight");
    return runs_[slot];
}

void layer_engine::on_event(const typed_event& ev) {
    obs::profile_scope scope(prof_, obs::subsystem::layer);
    const task_id slot = static_cast<task_id>(ev.a);
    switch (ev.kind) {
        case kind_tile_gate:
            next_tile(run_of(slot));
            return;
        case kind_store_due:
            issue_store(run_of(slot), ev.b);
            return;
        default:
            throw std::logic_error("layer_engine: unknown typed event kind");
    }
}

void layer_engine::on_transfer_done(const npu::dma_target& target,
                                    cycle_t done) {
    obs::profile_scope scope(prof_, obs::subsystem::layer);
    const task_id slot = static_cast<task_id>(target.a);
    layer_run& run = run_of(slot);
    if (target.b & store_bit) {
        run.final_end = std::max(run.final_end, done);
        if (run.pending_stores == 0)
            throw std::logic_error(
                "layer_engine: store completion with no pending store");
        --run.pending_stores;
        maybe_finish(slot);
        return;
    }
    run.load_latest = std::max(run.load_latest, done);
    if (run.load_remaining == 0)
        throw std::logic_error(
            "layer_engine: load completion with no pending load");
    if (--run.load_remaining == 0)
        loads_complete(run, run.load_tile, run.load_latest);
}

// ---- pipeline -------------------------------------------------------------

void layer_engine::next_tile(layer_run& run) {
    if (run.idx >= run.total) {
        run.all_issued = true;
        maybe_finish(run.t->id);
        return;
    }
    // Double buffering: tile idx may load only once tile idx-2 has
    // finished computing (its buffer is free).
    const cycle_t gate = run.compute_end_prev2;
    if (machine_.eq().now() < gate) {
        machine_.eq().schedule_event(
            gate,
            typed_event{static_cast<std::uint8_t>(event_channel::layer),
                        kind_tile_gate, static_cast<std::uint64_t>(run.t->id),
                        0});
        return;
    }

    const std::uint64_t tile = run.idx++;
    const std::uint64_t mi = tile / run.tiles_n;
    const std::uint64_t ni = tile % run.tiles_n;
    const auto reqs = run.build_loads(mi, ni);
    if (reqs.empty()) {
        loads_complete(run, tile, machine_.eq().now());
        return;
    }
    // A tile's tensor transfers run concurrently (independent DMA
    // queues); the tile is loaded when the last of them retires.
    run.load_tile = tile;
    run.load_remaining = static_cast<std::uint32_t>(reqs.size());
    run.load_latest = machine_.eq().now();
    const std::uint64_t slot = static_cast<std::uint64_t>(run.t->id);
    for (const auto& r : reqs)
        machine_.dma().submit_tracked(r, npu::dma_target{slot, tile});
}

void layer_engine::loads_complete(layer_run& run, std::uint64_t tile,
                                  cycle_t load_done) {
    const std::uint64_t tile_cycles =
        run.compute_total / run.total +
        (tile + 1 == run.total ? run.compute_total % run.total : 0);
    const cycle_t compute_start = std::max(load_done, run.compute_end_prev);
    const cycle_t compute_end = compute_start + tile_cycles;
    run.compute_end_prev2 = run.compute_end_prev;
    run.compute_end_prev = compute_end;
    run.final_end = std::max(run.final_end, compute_end);

    // Store fires when the tile's compute retires.
    ++run.pending_stores;
    machine_.eq().schedule_event(
        compute_end,
        typed_event{static_cast<std::uint8_t>(event_channel::layer),
                    kind_store_due, static_cast<std::uint64_t>(run.t->id),
                    tile});

    next_tile(run);
}

void layer_engine::issue_store(layer_run& run, std::uint64_t tile) {
    const transfer_request store = run.build_store(tile);
    machine_.dma().submit_tracked(
        store, npu::dma_target{static_cast<std::uint64_t>(run.t->id),
                               tile | store_bit});
}

void layer_engine::maybe_finish(task_id slot) {
    if (!slot_active(slot)) return;
    layer_run& run = runs_[slot];
    if (!run.all_issued || run.pending_stores > 0) return;
    const cycle_t end = std::max(run.final_end, machine_.eq().now());
    runtime::task* t = run.t;
    const std::uint64_t compute_total = run.compute_total;
    const cycle_t issue = run.issue_cycle;
    const bool is_lbm = run.cand->is_lbm;
    // Detach before the callback: the completion may start the next layer
    // on this slot.
    run.active = false;
    --active_count_;
    if (auto* bus = machine_.telemetry())
        bus->on_layer_retired(t->id, compute_total,
                              end > issue ? end - issue : 0, is_lbm);
    if (attr_ != nullptr)
        attr_->on_layer_retired(t->id, end > issue ? end - issue : 0,
                                compute_total);
    if (trace_ != nullptr)
        trace_->complete_arg(trace_->intern(t->mdl->abbr),
                             is_lbm ? "layer.lbm" : "layer",
                             static_cast<std::uint32_t>(t->id), issue, end,
                             t->current_layer);
    if (on_done_) on_done_(t->id, end);
}

// ---- checkpoint -----------------------------------------------------------

void layer_engine::save_state(snapshot_writer& w) const {
    w.u64(active_count_);
    for (std::size_t s = 0; s < runs_.size(); ++s) {
        const layer_run& run = runs_[s];
        if (!run.active) continue;
        const task_id slot = static_cast<task_id>(s);
        if (run.cand_index == -2)
            throw std::logic_error(
                "layer_engine::save_state: run's candidate is not in its "
                "task's MCT (ad-hoc runs cannot be checkpointed)");
        w.i32(slot);
        w.i32(run.cand_index);
        w.u64(run.idx);
        w.u64(run.load_tile);
        w.u32(run.load_remaining);
        w.u64(run.load_latest);
        w.u64(run.pending_stores);
        w.b(run.all_issued);
        w.u64(run.final_end);
        w.u64(run.issue_cycle);
        w.u64(run.compute_end_prev);
        w.u64(run.compute_end_prev2);
    }
}

void layer_engine::restore_state(snapshot_reader& r,
                                 std::vector<runtime::task>& tasks,
                                 const std::vector<address_map>& addrs) {
    if (active_count_ != 0)
        throw std::logic_error(
            "layer_engine::restore_state requires an idle engine");
    // Per-run record: slot + cand_index (i32 each), 8 u64 cursor fields,
    // load_remaining (u32), all_issued (u8) — must match save_state.
    const std::uint64_t n = r.count(4 + 4 + 8 * 8 + 4 + 1);
    for (std::uint64_t i = 0; i < n; ++i) {
        const task_id slot = r.i32();
        if (slot < 0 || static_cast<std::size_t>(slot) >= tasks.size())
            throw snapshot_error("snapshot layer run slot out of range");
        runtime::task& t = tasks[slot];
        if (t.mdl == nullptr || t.mapping == nullptr || !t.running())
            throw snapshot_error(
                "snapshot layer run references a slot that is not running");

        layer_run run;
        run.cand_index = r.i32();
        run.idx = r.u64();
        run.load_tile = r.u64();
        run.load_remaining = r.u32();
        run.load_latest = r.u64();
        run.pending_stores = r.u64();
        run.all_issued = r.b();
        run.final_end = r.u64();
        run.issue_cycle = r.u64();
        run.compute_end_prev = r.u64();
        run.compute_end_prev2 = r.u64();

        const mapping::mct& table = t.current_mct();
        const mapping::mapping_candidate* cand = nullptr;
        if (run.cand_index == -1) {
            if (!table.lbm)
                throw snapshot_error(
                    "snapshot layer run wants an LBM candidate the layer "
                    "does not have");
            cand = &*table.lbm;
        } else if (run.cand_index >= 0 &&
                   static_cast<std::size_t>(run.cand_index) <
                       table.lwm.size()) {
            cand = &table.lwm[run.cand_index];
        } else {
            throw snapshot_error("snapshot layer run candidate out of range");
        }
        bind(run, t, *cand, addrs[slot]);
        if (run.idx > run.total || run.pending_stores > run.total)
            throw snapshot_error("snapshot layer run cursor is inconsistent");
        if (slot_active(slot))
            throw snapshot_error("snapshot layer run slot appears twice");
        if (static_cast<std::size_t>(slot) >= runs_.size())
            runs_.resize(slot + 1);
        run.active = true;
        runs_[slot] = std::move(run);
        ++active_count_;
    }
}

}  // namespace camdn::sim

// Parallel sweep engine: runs independent experiment_configs across a
// std::thread pool. Every simulation is self-contained and deterministic,
// so a parallel sweep returns results bit-identical to running the same
// configs sequentially — figure reproductions scale with cores.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace camdn::sim {

/// Runs every config and returns results in input order. `threads` == 0
/// picks std::thread::hardware_concurrency(); 1 runs inline. Shared
/// process state (mapping registry, latency cache) is mutex-protected, so
/// concurrent sweeps are safe.
std::vector<experiment_result> run_sweep(
    const std::vector<experiment_config>& cfgs, unsigned threads = 0);

/// Resumable variant for segmented runs (fleet feedback rounds): entry i
/// warm-resumes from `resume_from[i]` when non-null (empty vector = all
/// cold), holds dispatch past `hold_after[i]` (empty vector = no hold; see
/// run_experiment_segment), pauses mid-flight at `pause_at[i]` (empty
/// vector = run to drain; time-sliced rounds) and, when `save_to` is
/// non-null, writes its end-of-segment snapshot to `(*save_to)[i]`
/// (resized to cfgs.size()). Results are bit-identical across pool
/// widths, like run_sweep.
std::vector<experiment_result> run_sweep_segments(
    const std::vector<experiment_config>& cfgs,
    const std::vector<const runtime::scheduler_snapshot*>& resume_from,
    std::vector<runtime::scheduler_snapshot>* save_to,
    const std::vector<cycle_t>& hold_after = {}, unsigned threads = 0,
    const std::vector<cycle_t>& pause_at = {});

/// isolated_latencies() memoized per (soc_config, model set): QoS sweeps
/// stop recomputing the single-tenant reference for every policy point.
/// The returned reference stays valid until clear_isolated_latency_cache()
/// is called (tests only) or the process exits. Thread-safe.
const std::map<std::string, cycle_t>& cached_isolated_latencies(
    const soc_config& soc, const std::vector<const model::model*>& models);

/// Drops all cached isolated latencies (test isolation).
void clear_isolated_latency_cache();

}  // namespace camdn::sim

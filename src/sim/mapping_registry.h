// Memoized offline mappings: the mapping phase runs once per (model,
// mapper-config) pair and is shared by every experiment in a process —
// mirroring the paper's offline/online split.
#pragma once

#include <string>

#include "mapping/cost_model.h"
#include "mapping/mapping.h"
#include "model/model.h"

namespace camdn::sim {

/// Returns the cached mapping for `m` under `cfg`, computing it on first
/// use. The returned reference stays valid for the process lifetime.
const mapping::model_mapping& mapping_for(const model::model& m,
                                          const mapping::mapper_config& cfg);

/// Drops all cached mappings (test isolation).
void clear_mapping_registry();

}  // namespace camdn::sim

// Memoized offline mappings: the mapping phase runs once per (model,
// mapper-config) pair and is shared by every experiment in a process —
// mirroring the paper's offline/online split.
//
// Keys are interned: model names and mapper configs each get a small
// integer id, and the registry resolves (name id, config id) through one
// integer-keyed hash lookup instead of formatting and comparing a
// composite string per call — the lookup sits on the scheduler's dispatch
// path and the cluster router's per-arrival scoring path.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mapping/cost_model.h"
#include "mapping/mapping.h"
#include "model/model.h"

namespace camdn::sim {

/// Returns the cached mapping for `m` under `cfg`, computing it on first
/// use. The returned reference stays valid for the process lifetime.
const mapping::model_mapping& mapping_for(const model::model& m,
                                          const mapping::mapper_config& cfg);

/// Immutable view of the registry, captured under the lock once. Lookups
/// afterwards are lock-free and allocation-free, so hot paths that consult
/// mappings at high frequency (the cluster router scoring every arrival)
/// never contend with sweep threads populating the registry. Entries added
/// after the snapshot are invisible — warm the keys you need via
/// mapping_for() first.
class mapping_snapshot {
public:
    /// The snapshotted mapping of `m` under `cfg`, or nullptr when the
    /// pair was not in the registry at capture time.
    const mapping::model_mapping* find(const model::model& m,
                                       const mapping::mapper_config& cfg) const;

    std::size_t size() const { return entries_.size(); }

private:
    friend mapping_snapshot snapshot_mappings();

    /// Copies of the interning tables at capture time (see the .cpp).
    std::unordered_map<const void*, std::uint32_t> model_ids_;
    std::unordered_map<std::string, std::uint32_t> name_ids_;
    std::vector<mapping::mapper_config> configs_;
    std::unordered_map<std::uint64_t, const mapping::model_mapping*> entries_;
};

/// Captures the current registry contents (one lock acquisition).
mapping_snapshot snapshot_mappings();

/// Drops all cached mappings (test isolation). Snapshots taken earlier
/// must not be used afterwards.
void clear_mapping_registry();

}  // namespace camdn::sim

#include "sim/layer_executor.h"

#include <memory>
#include <utility>

namespace camdn::sim {

void execute_layer(soc& machine, const camdn_features& features,
                   runtime::task& t, const mapping::mapping_candidate& cand,
                   const address_map& addrs,
                   std::function<void(cycle_t)> on_done) {
    auto& engine = machine.layers();
    engine.set_features(features);
    // The shared_ptr makes the hook copyable (layer_engine::done_fn is a
    // std::function); only the matching slot forwards the completion.
    auto cb = std::make_shared<std::function<void(cycle_t)>>(std::move(on_done));
    engine.set_on_done([cb, slot = t.id](task_id done_slot, cycle_t end) {
        if (done_slot == slot) (*cb)(end);
    });
    engine.start(t, cand, addrs);
}

}  // namespace camdn::sim

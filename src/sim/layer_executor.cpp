#include "sim/layer_executor.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "npu/dma_engine.h"

namespace camdn::sim {

namespace {

using npu::transfer_request;
using req_kind = npu::transfer_request::kind;

/// Bytes of element `i` of `total` when `bytes` is split as evenly as
/// possible (difference-of-prefixes, so the chunks sum exactly).
std::uint64_t chunk_bytes(std::uint64_t bytes, std::uint64_t i,
                          std::uint64_t total) {
    return bytes * (i + 1) / total - bytes * i / total;
}
std::uint64_t chunk_offset(std::uint64_t bytes, std::uint64_t i,
                           std::uint64_t total) {
    return bytes * i / total;
}

/// Pseudo-tile size for streaming operators (elementwise/pool/dwconv):
/// pipelining granularity, not a residency constraint.
constexpr std::uint64_t stream_tile_bytes = kib(256);

struct layer_run : std::enable_shared_from_this<layer_run> {
    soc& machine;
    camdn_features feat;
    runtime::task& t;
    mapping::mapping_candidate cand;
    const model::layer& l;
    address_map addrs;
    std::function<void(cycle_t)> on_done;

    bool use_region = false;
    std::uint32_t group = 1;  // cores running this task

    std::uint64_t tiles_m = 1, tiles_n = 1, total = 1, idx = 0;
    std::uint64_t compute_total = 0;
    cycle_t issue_cycle = 0;

    cycle_t compute_end_prev = 0;
    cycle_t compute_end_prev2 = 0;
    std::uint64_t pending_stores = 0;
    bool all_issued = false;
    cycle_t final_end = 0;
    bool done_fired = false;

    // vcaddr layout inside the model's region.
    addr_t w_vc = 0, in_vc = 0;
    addr_t lbm_in_vc = 0, lbm_out_vc = 0, lbm_res_vc = 0;
    bool residual_from_region = false;

    layer_run(soc& m, const camdn_features& f, runtime::task& task,
              const mapping::mapping_candidate& c, const address_map& a,
              std::function<void(cycle_t)> cb)
        : machine(m),
          feat(f),
          t(task),
          cand(c),
          l(task.mdl->layers[task.current_layer]),
          addrs(a),
          on_done(std::move(cb)) {}

    void start() {
        use_region = is_camdn(machine.active_policy());
        group = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(t.cores.size()));

        const bool dense = l.kind == model::layer_kind::conv ||
                           l.kind == model::layer_kind::gemm;
        if (dense) {
            tiles_m = ceil_div(l.m, cand.tm);
            tiles_n = ceil_div(l.n, cand.tn);
        } else {
            const std::uint64_t span =
                std::max(l.input_bytes, l.output_bytes);
            tiles_m = std::max<std::uint64_t>(
                1, ceil_div(span, stream_tile_bytes));
            tiles_n = 1;
        }
        total = tiles_m * tiles_n;
        compute_total = cand.compute_cycles / group;

        // Region layout. LWM: pinned weights then pinned input. LBM: the
        // block arena laid out by layout_block.
        if (cand.is_lbm) {
            const auto& block = t.mapping->block_of_layer(t.current_layer);
            lbm_out_vc = block.offset_of(t.current_layer);
            if (cand.input_from_region)
                lbm_in_vc = block.offset_of(t.current_layer - 1);
            const std::int32_t res = l.residual_from;
            if (res >= 0 &&
                mapping::residual_in_block(*t.mdl, t.current_layer, block)) {
                residual_from_region = true;
                lbm_res_vc = block.offset_of(static_cast<std::uint32_t>(res));
            }
        } else {
            w_vc = 0;
            in_vc = round_up(cand.weights_pinned_bytes, line_bytes);
        }

        issue_cycle = machine.eq().now();
        compute_end_prev = machine.eq().now();
        compute_end_prev2 = machine.eq().now();
        next_tile();
    }

    // ---- request construction -------------------------------------------

    /// Duplicated (per-core) or multicast read according to features.
    void push_read(std::vector<transfer_request>& out, req_kind kind,
                   addr_t addr, addr_t dram_addr, std::uint64_t nlines,
                   bool shareable) {
        if (nlines == 0) return;
        transfer_request r;
        r.op = kind;
        r.task = t.id;
        r.addr = addr;
        r.dram_addr = dram_addr;
        r.nlines = nlines;
        if (group > 1 && shareable) {
            const bool can_multicast =
                use_region && feat.multicast &&
                (kind == req_kind::region_read || kind == req_kind::bypass_read);
            if (can_multicast) {
                r.group_size = group;
                out.push_back(r);
                return;
            }
            // No combining: every core issues its own copy.
            for (std::uint32_t g = 0; g < group; ++g) out.push_back(r);
            return;
        }
        out.push_back(r);
    }

    req_kind stream_read_kind() const {
        if (!use_region) return req_kind::transparent_read;
        return feat.bypass ? req_kind::bypass_read : req_kind::transparent_read;
    }
    req_kind stream_write_kind() const {
        if (!use_region) return req_kind::transparent_write;
        return feat.bypass ? req_kind::bypass_write : req_kind::transparent_write;
    }

    /// Emits the requests for a [off, off+bytes) slice of a tensor whose
    /// first `pinned` bytes live in the region at `vc_base`. The pinned
    /// prefix fills on its first pass and is re-read from the region after;
    /// the streamed suffix uses the policy's stream path every pass.
    void push_split_read(std::vector<transfer_request>& reqs,
                         std::uint64_t off, std::uint64_t bytes,
                         std::uint64_t pinned, addr_t vc_base, addr_t dram_base,
                         bool first_pass, bool shareable) {
        if (bytes == 0) return;
        const bool pin_path = use_region && pinned > 0 && off < pinned;
        if (pin_path) {
            const std::uint64_t pin_bytes = std::min(bytes, pinned - off);
            push_read(reqs,
                      first_pass ? req_kind::region_fill : req_kind::region_read,
                      vc_base + off, dram_base + off, lines_for(pin_bytes),
                      !first_pass && shareable);
            off += pin_bytes;
            bytes -= pin_bytes;
            if (bytes == 0) return;
        }
        push_read(reqs, stream_read_kind(), dram_base + off, dram_base + off,
                  lines_for(bytes), shareable);
    }

    std::vector<transfer_request> build_loads(std::uint64_t mi,
                                              std::uint64_t ni) {
        std::vector<transfer_request> reqs;
        const std::uint32_t li = t.current_layer;

        // Parameters (or the attention second operand). Re-fetched once per
        // mi pass — or loaded once when weight-stationary (weight_passes
        // == 1 with multiple mi tiles); identical across cores -> shareable.
        const bool w_stationary = cand.weight_passes == 1 && tiles_m > 1;
        if (l.weight_bytes > 0 && !(w_stationary && mi > 0)) {
            const std::uint64_t bytes = chunk_bytes(l.weight_bytes, ni, tiles_n);
            const std::uint64_t off = chunk_offset(l.weight_bytes, ni, tiles_n);
            push_split_read(reqs, off, bytes, cand.weights_pinned_bytes, w_vc,
                            addrs.weights(li), /*first_pass=*/mi == 0,
                            /*shareable=*/true);
        }

        // Input activations. Re-fetched once per ni pass — or kept resident
        // when input-stationary; cores work on disjoint m -> not shareable.
        const bool in_stationary = cand.input_passes == 1 && tiles_n > 1;
        if (l.input_bytes > 0 && !(in_stationary && ni > 0)) {
            const std::uint64_t bytes = chunk_bytes(l.input_bytes, mi, tiles_m);
            const std::uint64_t off = chunk_offset(l.input_bytes, mi, tiles_m);
            const addr_t dram =
                li == 0 ? addrs.model_input() : addrs.activation(li - 1);
            if (cand.input_from_region) {
                push_read(reqs, req_kind::region_read, lbm_in_vc + off,
                          dram + off, lines_for(bytes), false);
            } else {
                push_split_read(reqs, off, bytes, cand.input_pinned_bytes,
                                in_vc, dram, /*first_pass=*/ni == 0,
                                /*shareable=*/false);
            }
        }

        // Residual second operand (elementwise adds), chunked like input.
        if (l.residual_from >= 0 && l.output_bytes > 0) {
            const std::uint64_t bytes = chunk_bytes(l.output_bytes, mi, tiles_m);
            const std::uint64_t off = chunk_offset(l.output_bytes, mi, tiles_m);
            const addr_t dram =
                addrs.activation(static_cast<std::uint32_t>(l.residual_from)) +
                off;
            if (residual_from_region && cand.is_lbm) {
                push_read(reqs, req_kind::region_read, lbm_res_vc + off, dram,
                          lines_for(bytes), false);
            } else {
                push_read(reqs, stream_read_kind(), dram, dram,
                          lines_for(bytes), false);
            }
        }
        return reqs;
    }

    transfer_request build_store(std::uint64_t tile) {
        transfer_request r;
        r.task = t.id;
        const std::uint64_t bytes = chunk_bytes(l.output_bytes, tile, total);
        const std::uint64_t off = chunk_offset(l.output_bytes, tile, total);
        r.nlines = lines_for(bytes);
        const addr_t dram = addrs.activation(t.current_layer) + off;
        if (cand.output_to_region && use_region) {
            r.op = req_kind::region_write;
            r.addr = lbm_out_vc + off;
            r.dram_addr = dram;
        } else {
            r.op = stream_write_kind();
            r.addr = dram;
            r.dram_addr = dram;
        }
        return r;
    }

    // ---- pipeline ---------------------------------------------------------

    void next_tile() {
        if (idx >= total) {
            all_issued = true;
            maybe_finish();
            return;
        }
        // Double buffering: tile idx may load only once tile idx-2 has
        // finished computing (its buffer is free).
        const cycle_t gate = compute_end_prev2;
        if (machine.eq().now() < gate) {
            auto self = shared_from_this();
            machine.eq().schedule(gate, [self]() { self->next_tile(); });
            return;
        }

        const std::uint64_t tile = idx++;
        const std::uint64_t mi = tile / tiles_n;
        const std::uint64_t ni = tile % tiles_n;
        const auto reqs = build_loads(mi, ni);
        if (reqs.empty()) {
            loads_complete(tile, machine.eq().now());
            return;
        }
        // A tile's tensor transfers run concurrently (independent DMA
        // queues); the tile is loaded when the last of them retires.
        auto remaining = std::make_shared<std::size_t>(reqs.size());
        auto latest = std::make_shared<cycle_t>(machine.eq().now());
        auto self = shared_from_this();
        for (const auto& r : reqs) {
            machine.dma().submit(r, [self, remaining, latest,
                                     tile](cycle_t done) {
                *latest = std::max(*latest, done);
                if (--*remaining == 0) self->loads_complete(tile, *latest);
            });
        }
    }

    void loads_complete(std::uint64_t tile, cycle_t load_done) {
        const std::uint64_t tile_cycles =
            compute_total / total + (tile + 1 == total ? compute_total % total : 0);
        const cycle_t compute_start = std::max(load_done, compute_end_prev);
        const cycle_t compute_end = compute_start + tile_cycles;
        compute_end_prev2 = compute_end_prev;
        compute_end_prev = compute_end;
        final_end = std::max(final_end, compute_end);

        // Store fires when the tile's compute retires.
        ++pending_stores;
        auto self = shared_from_this();
        const transfer_request store = build_store(tile);
        machine.eq().schedule(compute_end, [self, store]() {
            self->machine.dma().submit(store, [self](cycle_t done) {
                self->final_end = std::max(self->final_end, done);
                --self->pending_stores;
                self->maybe_finish();
            });
        });

        next_tile();
    }

    void maybe_finish() {
        if (done_fired || !all_issued || pending_stores > 0) return;
        done_fired = true;
        const cycle_t end = std::max(final_end, machine.eq().now());
        if (auto* bus = machine.telemetry())
            bus->on_layer_retired(t.id, compute_total,
                                  end > issue_cycle ? end - issue_cycle : 0,
                                  cand.is_lbm);
        on_done(end);
    }
};

}  // namespace

void execute_layer(soc& machine, const camdn_features& features,
                   runtime::task& t, const mapping::mapping_candidate& cand,
                   const address_map& addrs,
                   std::function<void(cycle_t)> on_done) {
    auto run = std::make_shared<layer_run>(machine, features, t, cand, addrs,
                                           std::move(on_done));
    run->start();
}

}  // namespace camdn::sim

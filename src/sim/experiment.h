// Multi-tenant experiment harness: the configuration/result types and the
// one-call driver around the runtime scheduler + workload generators.
//
// The default scenario is the paper's methodology (§IV-A4): N task slots
// each run a pre-generated random sequence of benchmark models; a slot
// re-dispatches to an NPU as soon as its previous inference finishes,
// keeping all cores busy (runtime::workload_kind::closed_loop). Open-loop
// Poisson traffic and explicit trace replay select alternative workload
// generators via `kind`. Policies plug in their resource allocators: MoCA
// re-partitions bandwidth every epoch, AuRORA sizes core groups by
// deadline slack, the CaMDN variants manage the cache via static shares or
// Algorithm 1. In QoS mode every inference carries a deadline of
// qos_scale * Table I target.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "adapt/controller.h"
#include "adapt/telemetry.h"
#include "cache/shared_cache.h"
#include "common/types.h"
#include "dram/dram_system.h"
#include "model/model.h"
#include "obs/observer.h"
#include "runtime/workload.h"
#include "sim/soc_config.h"

namespace camdn::runtime {
struct scheduler_snapshot;
}

namespace camdn::sim {

struct experiment_config {
    soc_config soc{};
    policy pol = policy::shared_baseline;
    camdn_features features{};

    /// Models sampled by the dispatcher (defaults to the whole zoo).
    std::vector<const model::model*> workload;

    std::uint32_t co_located = 8;          ///< concurrent task slots
    std::uint32_t inferences_per_slot = 1; ///< inferences per slot (closed loop)
    std::uint64_t seed = 42;

    /// Closed-loop think time: each slot waits this long after a completion
    /// before re-dispatching (interactive-user model). 0 re-dispatches
    /// immediately — bit-identical to the paper's methodology. Thinking
    /// slots are also what makes mid-run checkpoint boundaries reachable
    /// for closed-loop workloads (see runtime::scheduler::run_segment).
    double think_time_ms = 0.0;

    /// Arrival-side scenario (see runtime/workload.h).
    runtime::workload_kind kind = runtime::workload_kind::closed_loop;

    // ---- open_loop_poisson ----
    double arrival_rate_per_ms = 4.0;      ///< mean Poisson arrival rate
    std::uint32_t total_arrivals = 32;     ///< arrivals generated in total
    /// Admission-queue capacity for open_loop_poisson and trace_replay:
    /// arrivals beyond this many queued requests are dropped.
    /// runtime::unbounded_queue never drops; 0 drops every arrival.
    std::uint32_t admission_queue_limit = 64;

    // ---- trace_replay ----
    std::vector<runtime::trace_arrival> trace;

    // ---- open_loop_mmpp (bursty / diurnal traffic) ----
    /// Per-state multipliers on arrival_rate_per_ms of the Markov-modulated
    /// Poisson process; the chain walks the states in order (wrapping), so
    /// {0.25, 4.0} alternates a lull and a 16x burst.
    std::vector<double> mmpp_rate_scale{0.25, 4.0};
    /// Mean sojourn time per MMPP state (exponential), ms.
    double mmpp_sojourn_ms = 4.0;

    // ---- tenant_churn ----
    /// Every interval the active tenant set rotates to the next
    /// `churn_active_models` window of the workload catalog.
    double churn_interval_ms = 8.0;
    std::uint32_t churn_active_models = 2;

    // ---- telemetry + adaptive control (src/adapt) ----
    /// Record per-epoch telemetry snapshots (any policy). Implied by
    /// policy::camdn_adaptive, which needs them to steer.
    bool telemetry = false;
    /// Epoch length, controller gains and seed for camdn_adaptive; the
    /// epoch also paces telemetry-only recording.
    adapt::controller_config adapt_ctl{};

    bool qos_mode = false;
    double qos_scale = 1.0;  ///< QoS-H/M/L = 0.8 / 1.0 / 1.2

    /// Spread idle cores over tasks when slots < cores (multi-core
    /// execution with multicast weight reads). The motivation experiment
    /// (Fig 2) pins each task to one NPU, per the paper's methodology.
    bool spread_idle_cores = true;

    /// Poll interval while waiting on a page request (Algorithm 1).
    cycle_t page_retry_interval = 2'000;
    /// Bandwidth reallocation epoch for MoCA/AuRORA.
    cycle_t bw_epoch = 50'000;

    // ---- observability (src/obs) ----
    /// Nullable observer hooks (trace recorder, metrics registry, epoch
    /// JSONL sink, host profiler). Borrowed pointers — the caller owns them
    /// and outlives the run. Never fingerprinted: snapshots taken with and
    /// without observers are interchangeable, and a run with the default
    /// (all-null) observer is bit-identical to one without the obs layer.
    obs::run_observer obs{};
};

struct inference_record {
    task_id slot = no_task;
    std::string abbr;
    cycle_t arrival = 0;  ///< dispatch request (includes queueing)
    cycle_t start = 0;    ///< first layer issued
    cycle_t end = 0;
    std::uint64_t dram_bytes = 0;
    std::uint32_t cores = 1;

    cycle_t latency() const { return end - arrival; }
    /// Time spent waiting for admission + a free slot/core group.
    cycle_t queue_delay() const { return start - arrival; }
};

struct experiment_result {
    std::vector<inference_record> completions;
    cycle_t makespan = 0;
    double cache_hit_rate = 0.0;  ///< transparent path (baselines)
    std::uint64_t dram_total_bytes = 0;
    cache::cache_stats cache_stats{};
    dram::dram_stats dram_stats{};
    /// Arrivals refused at a full admission queue (open loop / trace).
    std::uint64_t rejected_arrivals = 0;
    /// Queue delays (ms) of completed inferences, tracked by the rate-driven
    /// generators (empty under closed loop, which never queues).
    percentile_tracker queue_delay_ms;
    /// Per-epoch telemetry snapshots (empty unless cfg.telemetry or the
    /// adaptive policy enabled the bus). Bit-identical across repeated runs
    /// and sweep-pool widths, like every other field.
    std::vector<adapt::epoch_snapshot> telemetry;
    /// Discrete events the run's event queue executed in this process
    /// (bench/sim_throughput's events/sec numerator). Deterministic for a
    /// fresh run; a resumed segment counts only its own events.
    std::uint64_t events_executed = 0;

    double avg_latency_ms() const;
    /// Mean latency of completions of one model ("" = all), ms.
    double mean_latency_ms(const std::string& abbr) const;
    /// Mean DRAM traffic per completed inference, MiB ("" = all models).
    double mem_mb_per_inference(const std::string& abbr = "") const;
    std::uint64_t completions_of(const std::string& abbr) const;
};

/// Runs one experiment to completion (deterministic under cfg.seed).
experiment_result run_experiment(const experiment_config& cfg);

/// Segment runner for checkpoint/resume flows (warm resume): builds the
/// workload from `cfg`, restores machine state from `resume_from` when
/// non-null (the clock, cache warmth, DRAM timing, controller state and
/// any in-flight inferences carry; results and telemetry history start
/// empty) and writes the end-of-segment snapshot to `*save_to` when
/// non-null. With `hold_dispatch_after` < `never`, dispatch stops once the
/// clock passes it: arrivals keep queueing (or dropping) at their true
/// times, running work finishes, and the queued backlog carries into the
/// snapshot (see runtime::scheduler::run_segment_hold_dispatch). With
/// `pause_at` < `never` the run instead pauses at the first inter-event
/// instant at or after it — mid-layer, transfers still in flight — which
/// is what time-sliced fleet rounds use; `pause_at` takes precedence over
/// the hold. With both pointers null and neither bound this is
/// run_experiment.
experiment_result run_experiment_segment(
    const experiment_config& cfg,
    const runtime::scheduler_snapshot* resume_from,
    runtime::scheduler_snapshot* save_to,
    cycle_t hold_dispatch_after = never, cycle_t pause_at = never);

/// Single-tenant latency of each model on one core under the shared
/// baseline (the normalized-progress reference for QoS metrics), keyed by
/// Table I abbreviation.
std::map<std::string, cycle_t> isolated_latencies(
    const soc_config& soc, const std::vector<const model::model*>& models);

}  // namespace camdn::sim

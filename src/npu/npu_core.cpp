// npu_core is header-only today; this translation unit anchors the library
// and provides a home for future out-of-line members.
#include "npu/npu_core.h"

#include "npu/dma_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/attribution.h"

namespace camdn::npu {

namespace {

const char* op_name(transfer_request::kind op) {
    using kind = transfer_request::kind;
    switch (op) {
        case kind::transparent_read: return "transparent_read";
        case kind::transparent_write: return "transparent_write";
        case kind::region_read: return "region_read";
        case kind::region_write: return "region_write";
        case kind::region_fill: return "region_fill";
        case kind::region_writeback: return "region_writeback";
        case kind::bypass_read: return "bypass_read";
        case kind::bypass_write: return "bypass_write";
    }
    return "?";
}

std::uint32_t trace_tid(task_id t) {
    return t < 0 ? obs::trace_tid_untracked : static_cast<std::uint32_t>(t);
}

}  // namespace

dma_engine::dma_engine(event_queue& eq, cache::shared_cache& cache,
                       std::uint64_t chunk_lines, std::uint32_t window)
    : eq_(eq),
      cache_(cache),
      chunk_lines_(chunk_lines == 0 ? 1 : chunk_lines),
      window_(window == 0 ? 1 : window) {
    flights_.reserve(16);
    // A dispatched chunk_done event is the tail call of its step(): pump
    // may coalesce the flight's next wakes inline (advancing the clock)
    // because nothing else runs in this dispatch afterwards.
    eq_.set_handler(event_channel::dma, [this](const typed_event& ev) {
        pump(ev.a, /*allow_inline=*/true);
    });
}

cycle_t dma_engine::transfer_now(const transfer_request& req, cycle_t arrival) {
    // Host-time attribution: the synchronous transfer body is cache work
    // (the DRAM portions re-attribute inside dram_system's bursts).
    obs::profile_scope scope(prof_, obs::subsystem::cache);
    using kind = transfer_request::kind;
    switch (req.op) {
        case kind::transparent_read:
            return cache_.transparent_burst(req.addr, req.nlines, false, arrival,
                                            req.task);
        case kind::transparent_write:
            return cache_.transparent_burst(req.addr, req.nlines, true, arrival,
                                            req.task);
        case kind::region_read:
            return cache_.region_read_burst(req.task, req.addr, req.nlines,
                                            arrival, req.group_size);
        case kind::region_write:
            return cache_.region_write_burst(req.task, req.addr, req.nlines,
                                             arrival);
        case kind::region_fill:
            return cache_.region_fill_burst(req.task, req.addr, req.dram_addr,
                                            req.nlines, arrival);
        case kind::region_writeback:
            return cache_.region_writeback_burst(req.task, req.addr,
                                                 req.dram_addr, req.nlines,
                                                 arrival);
        case kind::bypass_read:
            return cache_.bypass_read_burst(req.addr, req.nlines, arrival,
                                            req.task, req.group_size);
        case kind::bypass_write:
            return cache_.bypass_write_burst(req.addr, req.nlines, arrival,
                                             req.task);
    }
    return arrival;
}

std::size_t dma_engine::find_flight(std::uint64_t id) const {
    const auto it = std::lower_bound(
        flights_.begin(), flights_.end(), id,
        [](const flight& f, std::uint64_t want) { return f.id < want; });
    if (it == flights_.end() || it->id != id)
        throw std::logic_error("dma_engine: chunk_done for unknown flight");
    return static_cast<std::size_t>(it - flights_.begin());
}

void dma_engine::insert_flight(flight f) {
    // Fresh ids are monotonic, so the common case is an append; restore
    // may replay ids out of order and inserts at the sorted position.
    const auto it = std::lower_bound(
        flights_.begin(), flights_.end(), f.id,
        [](const flight& g, std::uint64_t want) { return g.id < want; });
    if (it != flights_.end() && it->id == f.id)
        throw snapshot_error("snapshot DMA flight id appears twice");
    flights_.insert(it, std::move(f));
}

void dma_engine::recycle_ring(std::vector<cycle_t>&& ring) {
    if (ring.capacity() == 0 || ring_pool_.size() >= 64) return;
    ring.clear();
    ring_pool_.push_back(std::move(ring));
}

std::uint64_t dma_engine::start_flight(const transfer_request& req, flight f) {
    if (telemetry_) telemetry_->on_dma_bytes(req.task, req.nlines * line_bytes);
    f.req = req;
    f.total_chunks = ceil_div(req.nlines, chunk_lines_);
    f.last_done = eq_.now();
    f.issue = eq_.now();
    if (!ring_pool_.empty()) {
        f.out = std::move(ring_pool_.back());
        ring_pool_.pop_back();
    }
    const std::uint64_t id = next_flight_++;
    f.id = id;
    flights_.push_back(std::move(f));  // monotonic id: append keeps order
    pump(id);
    return id;
}

void dma_engine::submit_tracked(const transfer_request& req,
                                const dma_target& target) {
    if (req.nlines == 0) {
        if (sink_) sink_(target, eq_.now());
        return;
    }
    flight f;
    f.target = target;
    start_flight(req, std::move(f));
}

void dma_engine::submit(const transfer_request& req,
                        std::function<void(cycle_t)> on_done) {
    if (req.nlines == 0) {
        on_done(eq_.now());
        return;
    }
    flight f;
    f.legacy_done = std::move(on_done);
    start_flight(req, std::move(f));
}

void dma_engine::pump(std::uint64_t id, bool allow_inline) {
    obs::profile_scope scope(prof_, obs::subsystem::dma);
    const std::size_t at = find_flight(id);
    for (;;) {
        flight& f = flights_[at];

        // Issue as long as the window has room and lines remain.
        while (f.issued_chunks < f.total_chunks && f.outstanding() < window_) {
            const std::uint64_t lines = std::min<std::uint64_t>(
                chunk_lines_, f.req.nlines - f.issued_lines);
            transfer_request chunk = f.req;
            chunk.addr = f.req.addr + f.issued_lines * line_bytes;
            chunk.dram_addr = f.req.dram_addr + f.issued_lines * line_bytes;
            chunk.nlines = lines;
            const cycle_t done = transfer_now(chunk, eq_.now());
            // The chunk's service window is known synchronously, so its
            // trace event is recordable at issue (sampled: the chunk lane
            // is the highest-volume category by an order of magnitude).
            if (trace_ != nullptr && trace_->chunk_events() &&
                trace_->sample_chunk())
                trace_->complete_arg("dma_chunk", "dma", trace_tid(f.req.task),
                                     eq_.now(), done, lines * line_bytes);
            f.issued_lines += lines;
            ++f.issued_chunks;
            f.out.push_back(done);
            f.last_done = std::max(f.last_done, done);
        }
        if (f.outstanding() == 0) {
            // Everything issued and retired. Detach the flight before the
            // completion runs: the sink may submit a follow-up transfer.
            const cycle_t done = f.last_done;
            const dma_target target = f.target;
            if (trace_ != nullptr && trace_->sample_flight())
                trace_->complete_arg(op_name(f.req.op), "dma",
                                     trace_tid(f.req.task), f.issue, done,
                                     f.req.nlines * line_bytes);
            auto legacy = std::move(f.legacy_done);
            recycle_ring(std::move(f.out));
            flights_.erase(flights_.begin() +
                           static_cast<std::ptrdiff_t>(at));
            if (legacy) {
                legacy(done);
            } else if (sink_) {
                sink_(target, done);
            }
            return;
        }
        // Wake when the oldest chunk retires; that frees a window slot.
        const cycle_t next = f.out[f.out_head];
        if (attr_ != nullptr && f.issued_chunks < f.total_chunks &&
            next > eq_.now())
            attr_->on_dma_window_wait(f.req.task, next - eq_.now());
        if (++f.out_head == f.out.size()) {
            f.out.clear();
            f.out_head = 0;
        }
        ++f.retired_chunks;
        // Coalescing: when the wake-up would be the queue's very next
        // dispatch anyway, keep pumping this flight inline instead of
        // round-tripping a chunk_done event through the heap. Only the
        // event-dispatched pump may do this — a pump called synchronously
        // from a submit must not advance the clock under its caller.
        if (allow_inline && eq_.try_inline(next, event_channel::dma))
            continue;
        eq_.schedule_event(
            next, typed_event{static_cast<std::uint8_t>(event_channel::dma),
                              0, id, 0});
        return;
    }
}

void dma_engine::save_state(snapshot_writer& w) const {
    w.u64(next_flight_);
    w.u64(flights_.size());
    for (const flight& f : flights_) {
        if (f.legacy_done)
            throw std::logic_error(
                "dma_engine::save_state: a legacy closure flight is live "
                "(test-only submit() path cannot be checkpointed)");
        w.u64(f.id);
        w.u8(static_cast<std::uint8_t>(f.req.op));
        w.i32(f.req.task);
        w.u64(f.req.addr);
        w.u64(f.req.dram_addr);
        w.u64(f.req.nlines);
        w.u32(f.req.group_size);
        w.u64(f.issued_lines);
        w.u64(f.total_chunks);
        w.u64(f.issued_chunks);
        w.u64(f.retired_chunks);
        w.u64(f.outstanding());
        for (std::size_t i = f.out_head; i < f.out.size(); ++i) w.u64(f.out[i]);
        w.u64(f.last_done);
        w.u64(f.target.a);
        w.u64(f.target.b);
    }
}

void dma_engine::restore_state(snapshot_reader& r) {
    if (!flights_.empty())
        throw std::logic_error(
            "dma_engine::restore_state requires an idle engine");
    next_flight_ = r.u64();
    const std::uint64_t n = r.count(8);
    flights_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        flight f;
        f.id = r.u64();
        if (f.id >= next_flight_)
            throw snapshot_error("snapshot DMA flight id beyond the counter");
        const std::uint8_t op = r.u8();
        if (op > static_cast<std::uint8_t>(transfer_request::kind::bypass_write))
            throw snapshot_error("snapshot DMA flight has unknown op");
        f.req.op = static_cast<transfer_request::kind>(op);
        f.req.task = r.i32();
        f.req.addr = r.u64();
        f.req.dram_addr = r.u64();
        f.req.nlines = r.u64();
        f.req.group_size = r.u32();
        f.issued_lines = r.u64();
        f.total_chunks = r.u64();
        f.issued_chunks = r.u64();
        f.retired_chunks = r.u64();
        const std::uint64_t outstanding = r.count(8);
        f.out.reserve(outstanding);
        for (std::uint64_t c = 0; c < outstanding; ++c)
            f.out.push_back(r.u64());
        f.last_done = r.u64();
        // Not serialized: a restored flight's trace span re-anchors at the
        // restore clock (the pre-pause portion belongs to the old process).
        f.issue = eq_.now();
        f.target.a = r.u64();
        f.target.b = r.u64();
        if (f.issued_chunks > f.total_chunks ||
            f.retired_chunks > f.issued_chunks ||
            f.issued_lines > f.req.nlines)
            throw snapshot_error("snapshot DMA flight cursor is inconsistent");
        insert_flight(std::move(f));
    }
}

}  // namespace camdn::npu

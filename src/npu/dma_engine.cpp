#include "npu/dma_engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace camdn::npu {

dma_engine::dma_engine(event_queue& eq, cache::shared_cache& cache,
                       std::uint64_t chunk_lines, std::uint32_t window)
    : eq_(eq),
      cache_(cache),
      chunk_lines_(chunk_lines == 0 ? 1 : chunk_lines),
      window_(window == 0 ? 1 : window) {
    eq_.set_handler(event_channel::dma, [this](const typed_event& ev) {
        pump(ev.a);
    });
}

cycle_t dma_engine::transfer_now(const transfer_request& req, cycle_t arrival) {
    using kind = transfer_request::kind;
    switch (req.op) {
        case kind::transparent_read:
            return cache_.transparent_burst(req.addr, req.nlines, false, arrival,
                                            req.task);
        case kind::transparent_write:
            return cache_.transparent_burst(req.addr, req.nlines, true, arrival,
                                            req.task);
        case kind::region_read:
            return cache_.region_read_burst(req.task, req.addr, req.nlines,
                                            arrival, req.group_size);
        case kind::region_write:
            return cache_.region_write_burst(req.task, req.addr, req.nlines,
                                             arrival);
        case kind::region_fill:
            return cache_.region_fill_burst(req.task, req.addr, req.dram_addr,
                                            req.nlines, arrival);
        case kind::region_writeback:
            return cache_.region_writeback_burst(req.task, req.addr,
                                                 req.dram_addr, req.nlines,
                                                 arrival);
        case kind::bypass_read:
            return cache_.bypass_read_burst(req.addr, req.nlines, arrival,
                                            req.task, req.group_size);
        case kind::bypass_write:
            return cache_.bypass_write_burst(req.addr, req.nlines, arrival,
                                             req.task);
    }
    return arrival;
}

std::uint64_t dma_engine::start_flight(const transfer_request& req, flight f) {
    if (telemetry_) telemetry_->on_dma_bytes(req.task, req.nlines * line_bytes);
    f.req = req;
    f.total_chunks = ceil_div(req.nlines, chunk_lines_);
    f.last_done = eq_.now();
    const std::uint64_t id = next_flight_++;
    flights_.emplace(id, std::move(f));
    pump(id);
    return id;
}

void dma_engine::submit_tracked(const transfer_request& req,
                                const dma_target& target) {
    if (req.nlines == 0) {
        if (sink_) sink_(target, eq_.now());
        return;
    }
    flight f;
    f.target = target;
    start_flight(req, std::move(f));
}

void dma_engine::submit(const transfer_request& req,
                        std::function<void(cycle_t)> on_done) {
    if (req.nlines == 0) {
        on_done(eq_.now());
        return;
    }
    flight f;
    f.legacy_done = std::move(on_done);
    start_flight(req, std::move(f));
}

void dma_engine::pump(std::uint64_t id) {
    auto it = flights_.find(id);
    if (it == flights_.end())
        throw std::logic_error("dma_engine: chunk_done for unknown flight");
    flight& f = it->second;

    // Issue as long as the window has room and lines remain.
    while (f.issued_chunks < f.total_chunks &&
           f.outstanding.size() < window_) {
        const std::uint64_t lines = std::min<std::uint64_t>(
            chunk_lines_, f.req.nlines - f.issued_lines);
        transfer_request chunk = f.req;
        chunk.addr = f.req.addr + f.issued_lines * line_bytes;
        chunk.dram_addr = f.req.dram_addr + f.issued_lines * line_bytes;
        chunk.nlines = lines;
        const cycle_t done = transfer_now(chunk, eq_.now());
        f.issued_lines += lines;
        ++f.issued_chunks;
        f.outstanding.push_back(done);
        f.last_done = std::max(f.last_done, done);
    }
    if (f.outstanding.empty()) {
        // Everything issued and retired. Detach the flight before the
        // completion runs: the sink may submit a follow-up transfer.
        const cycle_t done = f.last_done;
        const dma_target target = f.target;
        auto legacy = std::move(f.legacy_done);
        flights_.erase(it);
        if (legacy) {
            legacy(done);
        } else if (sink_) {
            sink_(target, done);
        }
        return;
    }
    // Wake when the oldest chunk retires; that frees a window slot.
    const cycle_t next = f.outstanding.front();
    f.outstanding.pop_front();
    ++f.retired_chunks;
    eq_.schedule_event(next, typed_event{
                                 static_cast<std::uint8_t>(event_channel::dma),
                                 0, id, 0});
}

void dma_engine::save_state(snapshot_writer& w) const {
    w.u64(next_flight_);
    w.u64(flights_.size());
    for (const auto& [id, f] : flights_) {
        if (f.legacy_done)
            throw std::logic_error(
                "dma_engine::save_state: a legacy closure flight is live "
                "(test-only submit() path cannot be checkpointed)");
        w.u64(id);
        w.u8(static_cast<std::uint8_t>(f.req.op));
        w.i32(f.req.task);
        w.u64(f.req.addr);
        w.u64(f.req.dram_addr);
        w.u64(f.req.nlines);
        w.u32(f.req.group_size);
        w.u64(f.issued_lines);
        w.u64(f.total_chunks);
        w.u64(f.issued_chunks);
        w.u64(f.retired_chunks);
        w.u64(f.outstanding.size());
        for (const cycle_t c : f.outstanding) w.u64(c);
        w.u64(f.last_done);
        w.u64(f.target.a);
        w.u64(f.target.b);
    }
}

void dma_engine::restore_state(snapshot_reader& r) {
    if (!flights_.empty())
        throw std::logic_error(
            "dma_engine::restore_state requires an idle engine");
    next_flight_ = r.u64();
    const std::uint64_t n = r.count(8);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t id = r.u64();
        if (id >= next_flight_)
            throw snapshot_error("snapshot DMA flight id beyond the counter");
        flight f;
        const std::uint8_t op = r.u8();
        if (op > static_cast<std::uint8_t>(transfer_request::kind::bypass_write))
            throw snapshot_error("snapshot DMA flight has unknown op");
        f.req.op = static_cast<transfer_request::kind>(op);
        f.req.task = r.i32();
        f.req.addr = r.u64();
        f.req.dram_addr = r.u64();
        f.req.nlines = r.u64();
        f.req.group_size = r.u32();
        f.issued_lines = r.u64();
        f.total_chunks = r.u64();
        f.issued_chunks = r.u64();
        f.retired_chunks = r.u64();
        const std::uint64_t outstanding = r.count(8);
        for (std::uint64_t c = 0; c < outstanding; ++c)
            f.outstanding.push_back(r.u64());
        f.last_done = r.u64();
        f.target.a = r.u64();
        f.target.b = r.u64();
        if (f.issued_chunks > f.total_chunks ||
            f.retired_chunks > f.issued_chunks ||
            f.issued_lines > f.req.nlines)
            throw snapshot_error("snapshot DMA flight cursor is inconsistent");
        if (!flights_.emplace(id, std::move(f)).second)
            throw snapshot_error("snapshot DMA flight id appears twice");
    }
}

}  // namespace camdn::npu

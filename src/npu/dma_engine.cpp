#include "npu/dma_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

namespace camdn::npu {

dma_engine::dma_engine(event_queue& eq, cache::shared_cache& cache,
                       std::uint64_t chunk_lines, std::uint32_t window)
    : eq_(eq),
      cache_(cache),
      chunk_lines_(chunk_lines == 0 ? 1 : chunk_lines),
      window_(window == 0 ? 1 : window) {}

cycle_t dma_engine::transfer_now(const transfer_request& req, cycle_t arrival) {
    using kind = transfer_request::kind;
    switch (req.op) {
        case kind::transparent_read:
            return cache_.transparent_burst(req.addr, req.nlines, false, arrival,
                                            req.task);
        case kind::transparent_write:
            return cache_.transparent_burst(req.addr, req.nlines, true, arrival,
                                            req.task);
        case kind::region_read:
            return cache_.region_read_burst(req.task, req.addr, req.nlines,
                                            arrival, req.group_size);
        case kind::region_write:
            return cache_.region_write_burst(req.task, req.addr, req.nlines,
                                             arrival);
        case kind::region_fill:
            return cache_.region_fill_burst(req.task, req.addr, req.dram_addr,
                                            req.nlines, arrival);
        case kind::region_writeback:
            return cache_.region_writeback_burst(req.task, req.addr,
                                                 req.dram_addr, req.nlines,
                                                 arrival);
        case kind::bypass_read:
            return cache_.bypass_read_burst(req.addr, req.nlines, arrival,
                                            req.task, req.group_size);
        case kind::bypass_write:
            return cache_.bypass_write_burst(req.addr, req.nlines, arrival,
                                             req.task);
    }
    return arrival;
}

/// In-flight bookkeeping of one submitted transfer.
struct dma_engine::flight : std::enable_shared_from_this<dma_engine::flight> {
    dma_engine& engine;
    transfer_request req;
    std::function<void(cycle_t)> on_done;

    std::uint64_t issued_lines = 0;   // lines handed to the memory system
    std::uint64_t retired_chunks = 0;
    std::uint64_t total_chunks = 0;
    std::uint64_t issued_chunks = 0;
    std::deque<cycle_t> outstanding;  // completion times of in-flight chunks
    cycle_t last_done = 0;

    flight(dma_engine& e, const transfer_request& r,
           std::function<void(cycle_t)> cb)
        : engine(e), req(r), on_done(std::move(cb)) {
        total_chunks = ceil_div(r.nlines, e.chunk_lines_);
        last_done = e.eq_.now();
    }

    void pump() {
        // Issue as long as the window has room and lines remain.
        while (issued_chunks < total_chunks &&
               outstanding.size() < engine.window_) {
            const std::uint64_t lines = std::min<std::uint64_t>(
                engine.chunk_lines_, req.nlines - issued_lines);
            transfer_request chunk = req;
            chunk.addr = req.addr + issued_lines * line_bytes;
            chunk.dram_addr = req.dram_addr + issued_lines * line_bytes;
            chunk.nlines = lines;
            const cycle_t done = engine.transfer_now(chunk, engine.eq_.now());
            issued_lines += lines;
            ++issued_chunks;
            outstanding.push_back(done);
            last_done = std::max(last_done, done);
        }
        if (outstanding.empty()) {
            // Everything issued and retired.
            on_done(last_done);
            return;
        }
        // Wake when the oldest chunk retires; that frees a window slot.
        const cycle_t next = outstanding.front();
        outstanding.pop_front();
        ++retired_chunks;
        auto self = shared_from_this();
        engine.eq_.schedule(next, [self]() { self->pump(); });
    }
};

void dma_engine::submit(const transfer_request& req,
                        std::function<void(cycle_t)> on_done) {
    if (req.nlines == 0) {
        on_done(eq_.now());
        return;
    }
    if (telemetry_) telemetry_->on_dma_bytes(req.task, req.nlines * line_bytes);
    auto f = std::make_shared<flight>(*this, req, std::move(on_done));
    f->pump();
}

}  // namespace camdn::npu

// Per-core bookkeeping: which task occupies the core, how long it has been
// busy, and its scratchpad. The tile-level execution state machine lives in
// sim/layer_executor; this class is the hardware-side resource.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "npu/npu_config.h"
#include "npu/scratchpad.h"

namespace camdn::npu {

class npu_core {
public:
    npu_core(npu_id id, const npu_config& cfg)
        : id_(id), spad_(cfg.scratchpad_bytes) {}

    npu_id id() const { return id_; }

    bool idle() const { return task_ == no_task; }
    task_id current_task() const { return task_; }

    void assign(task_id task, cycle_t now) {
        task_ = task;
        busy_since_ = now;
    }
    void release(cycle_t now) {
        busy_cycles_ += now - busy_since_;
        task_ = no_task;
        spad_.reset();
    }

    scratchpad& spad() { return spad_; }
    std::uint64_t busy_cycles() const { return busy_cycles_; }
    /// Cycle the current assignment started (mid-layer checkpointing).
    cycle_t busy_since() const { return busy_since_; }

    /// Checkpoint restore: re-seeds the cumulative busy counter. A
    /// mid-layer resume re-establishes the assignment itself via assign()
    /// with the saved busy_since cycle.
    void restore_busy_cycles(std::uint64_t cycles) { busy_cycles_ = cycles; }

private:
    npu_id id_;
    task_id task_ = no_task;
    cycle_t busy_since_ = 0;
    std::uint64_t busy_cycles_ = 0;
    scratchpad spad_;
};

}  // namespace camdn::npu

// Analytic compute-time model of the 32x32 systolic PE array.
//
// All DNN operators are canonicalized to GEMM-like tiles (see
// model/layer.h). Dense GEMM/conv tiles stream k through the array at one
// MAC per PE per cycle; depthwise convolution cannot use the reduction
// dimension of the array (each channel reduces only over its own R*S
// window), so its throughput is bounded by one output column group per
// pass — the classic reason depthwise layers are heavily memory-bound on
// systolic NPUs.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "npu/npu_config.h"

namespace camdn::npu {

/// Cycles to compute a dense GEMM tile of (m x n x k) MACs.
inline cycle_t gemm_tile_cycles(const npu_config& cfg, std::uint64_t m,
                                std::uint64_t n, std::uint64_t k) {
    if (m == 0 || n == 0 || k == 0) return 0;
    const std::uint64_t row_passes = ceil_div(m, cfg.pe_rows);
    const std::uint64_t col_passes = ceil_div(n, cfg.pe_cols);
    return row_passes * col_passes * (k + cfg.pipeline_fill);
}

/// Cycles for a depthwise tile covering `pixels` output pixels over
/// `channels` channels with an r*s window. Channels map across PE columns,
/// pixels across rows; the k dimension collapses to r*s.
inline cycle_t dwconv_tile_cycles(const npu_config& cfg, std::uint64_t pixels,
                                  std::uint64_t channels, std::uint64_t rs) {
    if (pixels == 0 || channels == 0 || rs == 0) return 0;
    const std::uint64_t row_passes = ceil_div(pixels, cfg.pe_rows);
    const std::uint64_t col_passes = ceil_div(channels, cfg.pe_cols);
    return row_passes * col_passes * (rs + cfg.pipeline_fill);
}

/// Cycles for an elementwise/reduction op over `elements` values on the
/// SIMD unit.
inline cycle_t simd_cycles(const npu_config& cfg, std::uint64_t elements) {
    return ceil_div(elements, cfg.simd_lanes);
}

}  // namespace camdn::npu

// Scratchpad capacity accounting with high-water tracking.
//
// The mapper guarantees statically that tiles fit; this class double-checks
// that guarantee at execution time (a violated reservation is a mapper bug,
// surfaced by tests rather than silently mis-simulated).
#pragma once

#include <cstdint>

namespace camdn::npu {

class scratchpad {
public:
    explicit scratchpad(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes) {}

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t used() const { return used_; }
    std::uint64_t high_water() const { return high_water_; }
    std::uint64_t free_bytes() const { return capacity_ - used_; }

    /// Reserves `bytes`; returns false (and reserves nothing) on overflow.
    bool reserve(std::uint64_t bytes) {
        if (used_ + bytes > capacity_) return false;
        used_ += bytes;
        if (used_ > high_water_) high_water_ = used_;
        return true;
    }

    /// Releases `bytes` (clamped to the amount currently reserved).
    void release(std::uint64_t bytes) {
        used_ = bytes > used_ ? 0 : used_ - bytes;
    }

    void reset() {
        used_ = 0;
        high_water_ = 0;
    }

private:
    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::uint64_t high_water_ = 0;
};

}  // namespace camdn::npu

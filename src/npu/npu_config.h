// NPU core parameters (Table II: 32x32 PE array, 256 KiB scratchpad per
// core, 16 cores, 1 GHz).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace camdn::npu {

struct npu_config {
    std::uint32_t pe_rows = 32;
    std::uint32_t pe_cols = 32;
    std::uint64_t scratchpad_bytes = kib(256);
    std::uint32_t cores = 16;

    /// Systolic-array pipeline fill/drain overhead per tile pass, cycles.
    std::uint32_t pipeline_fill = 32;

    /// Elements the vector/SIMD unit processes per cycle (elementwise ops,
    /// softmax, pooling).
    std::uint32_t simd_lanes = 64;

    std::uint32_t macs_per_cycle() const { return pe_rows * pe_cols; }

    /// Fraction of the scratchpad usable by one tile under double
    /// buffering (load of tile i+1 overlaps compute of tile i).
    std::uint64_t tile_budget_bytes() const { return scratchpad_bytes / 2; }
};

}  // namespace camdn::npu

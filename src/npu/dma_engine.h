// Chunked, windowed DMA engine.
//
// A tile's tensor traffic is described as a transfer_request and processed
// in fixed-size chunks of cache lines through the event queue, so that
// concurrently running NPU cores interleave their traffic in simulated time
// and observe each other's contention in the DRAM banks, channel buses and
// cache slices. A window of chunks stays in flight (a real DMA engine keeps
// multiple outstanding requests), so the memory pipe does not drain between
// chunks: chunk j issues once chunk j-W has completed.
//
// In-flight transfers are explicit `flight` records — plain structs keyed
// by flight id and advanced by typed `chunk_done` events (event_channel::
// dma) — so a simulation can checkpoint with chunks mid-air: save_state()
// serializes every live flight and restore_state() rebuilds them, with the
// pending chunk_done events riding the event queue's typed-event section.
// Completions route to a single registered sink carrying the submitter's
// opaque (a, b) token; the legacy closure submit() remains for unit tests
// but its flights cannot be checkpointed.
//
// Flights live in a flat vector ordered by id: ids are handed out
// monotonically, so appends keep the order and save_state() walks it
// front-to-back — byte-identical to the std::map encoding it replaces,
// with binary-search lookups and no node allocation per transfer. Each
// flight's outstanding-chunk ring recycles through a small buffer pool, so
// steady-state submission allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "adapt/telemetry.h"
#include "cache/shared_cache.h"
#include "common/event_queue.h"
#include "common/snapshot_io.h"
#include "common/types.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace camdn::obs {
class latency_attributor;
}

namespace camdn::npu {

/// One logical tensor transfer of a tile.
struct transfer_request {
    enum class kind : std::uint8_t {
        transparent_read,   ///< baseline path: DMA read through shared cache
        transparent_write,  ///< baseline path: DMA write through shared cache
        region_read,        ///< NEC: cache region -> NPU (multicast-aware)
        region_write,       ///< NEC: NPU -> cache region
        region_fill,        ///< NEC: DRAM -> cache region
        region_writeback,   ///< NEC: cache region -> DRAM
        bypass_read,        ///< NEC: DRAM -> NPU around the cache
        bypass_write,       ///< NEC: NPU -> DRAM around the cache
    };

    kind op = kind::transparent_read;
    task_id task = no_task;
    addr_t addr = 0;       ///< vcaddr for region ops, DRAM address otherwise
    addr_t dram_addr = 0;  ///< DRAM side of fill/writeback pairs
    std::uint64_t nlines = 0;
    std::uint32_t group_size = 1;  ///< multicast group width (reads)
};

/// Opaque completion token a tracked transfer carries back to the sink
/// (the layer engine packs its slot, tile and purpose in here).
struct dma_target {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

class dma_engine {
public:
    /// `chunk_lines` trades fidelity (finer interleaving) for event count;
    /// `window` chunks stay outstanding to keep the pipe full.
    dma_engine(event_queue& eq, cache::shared_cache& cache,
               std::uint64_t chunk_lines = 128, std::uint32_t window = 4);

    /// Receives the completion of every tracked transfer: the submitted
    /// token plus the completion cycle of the final chunk. Registered once
    /// at wiring time (static plumbing, never serialized).
    using sink_fn = std::function<void(const dma_target&, cycle_t)>;
    void set_sink(sink_fn sink) { sink_ = std::move(sink); }

    /// Starts a checkpointable transfer; the sink fires with `target` when
    /// the final chunk retires (synchronously when nlines == 0). Multiple
    /// transfers may be in flight.
    void submit_tracked(const transfer_request& req, const dma_target& target);

    /// Legacy closure variant (unit tests, one-shot probes): `on_done`
    /// fires with the completion cycle. A flight submitted this way cannot
    /// be checkpointed — save_state throws while one is live.
    void submit(const transfer_request& req,
                std::function<void(cycle_t)> on_done);

    /// Synchronous variant: performs the whole transfer at `arrival` in one
    /// shot and returns its completion (no chunking, used by unit tests and
    /// warm-up paths).
    cycle_t transfer_now(const transfer_request& req, cycle_t arrival);

    std::uint64_t chunk_lines() const { return chunk_lines_; }
    std::uint32_t window() const { return window_; }

    bool idle() const { return flights_.empty(); }
    std::size_t live_flights() const { return flights_.size(); }

    /// Serializes every live flight (cursor, window occupancy, completion
    /// token). Throws std::logic_error while a legacy closure flight is
    /// live. The pending chunk_done events are saved separately with the
    /// event queue's typed section.
    void save_state(snapshot_writer& w) const;
    /// Rebuilds the flight table; throws snapshot_error on malformed
    /// input. Requires an idle engine.
    void restore_state(snapshot_reader& r);

    /// Attaches the per-epoch telemetry bus (nullptr detaches). Submitted
    /// transfers are attributed to their task at issue time.
    void set_telemetry(adapt::telemetry_bus* bus) { telemetry_ = bus; }

    /// Attaches the trace recorder (nullptr detaches): one duration event
    /// per flight (issue to final chunk), plus per-chunk events when the
    /// recorder asks for them. Observation only — never schedules events.
    void set_trace(obs::trace_recorder* trace) { trace_ = trace; }
    /// Attaches the host-time profiler (nullptr detaches): the chunk pump
    /// charges `dma`, the synchronous transfer path charges `cache` (with
    /// DRAM bursts re-attributed inside dram_system).
    void set_profiler(obs::profiler* prof) { prof_ = prof; }
    /// Attaches the latency attributor (nullptr detaches): flights report
    /// the cycles their issue loop spent gated on a full chunk window (a
    /// diagnostic counter; the memory-side waits inside each chunk are
    /// charged by the cache/DRAM hooks).
    void set_attribution(obs::latency_attributor* attr) { attr_ = attr; }

private:
    /// In-flight bookkeeping of one submitted transfer: the request, the
    /// chunk cursor, the occupancy of the issue window and the completion
    /// target. Plain data except `legacy_done` (test-only closures).
    /// Outstanding chunk completions live in `out[out_head..]` — a vector
    /// consumed front-to-back whose buffer returns to the engine's ring
    /// pool when the flight retires.
    struct flight {
        std::uint64_t id = 0;
        transfer_request req;
        std::uint64_t issued_lines = 0;  // lines handed to the memory system
        std::uint64_t total_chunks = 0;
        std::uint64_t issued_chunks = 0;
        std::uint64_t retired_chunks = 0;
        std::vector<cycle_t> out;
        std::uint32_t out_head = 0;
        cycle_t last_done = 0;
        /// Submission cycle — trace-event bookkeeping only, NOT serialized
        /// (snapshot bytes are unchanged; a restored flight re-anchors at
        /// the restore clock).
        cycle_t issue = 0;
        dma_target target{};
        std::function<void(cycle_t)> legacy_done;  // non-null: test flight

        std::size_t outstanding() const { return out.size() - out_head; }
    };

    std::uint64_t start_flight(const transfer_request& req, flight f);
    /// Issues chunks while the window has room, then sleeps until the
    /// oldest outstanding chunk retires (typed chunk_done event) or
    /// completes the flight. `allow_inline` (event-dispatched pumps only)
    /// lets retirement wake-ups that would be the queue's next dispatch
    /// anyway coalesce inline via event_queue::try_inline — the clock and
    /// the dispatch counters advance exactly as the scheduled path would.
    void pump(std::uint64_t id, bool allow_inline = false);
    std::size_t find_flight(std::uint64_t id) const;
    void insert_flight(flight f);
    void recycle_ring(std::vector<cycle_t>&& ring);

    event_queue& eq_;
    cache::shared_cache& cache_;
    std::uint64_t chunk_lines_;
    std::uint32_t window_;
    sink_fn sink_;
    std::vector<flight> flights_;  // ascending id
    std::vector<std::vector<cycle_t>> ring_pool_;
    std::uint64_t next_flight_ = 0;
    adapt::telemetry_bus* telemetry_ = nullptr;
    obs::trace_recorder* trace_ = nullptr;
    obs::profiler* prof_ = nullptr;
    obs::latency_attributor* attr_ = nullptr;
};

}  // namespace camdn::npu

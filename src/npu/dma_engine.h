// Chunked, windowed DMA engine.
//
// A tile's tensor traffic is described as a transfer_request and processed
// in fixed-size chunks of cache lines through the event queue, so that
// concurrently running NPU cores interleave their traffic in simulated time
// and observe each other's contention in the DRAM banks, channel buses and
// cache slices. A window of chunks stays in flight (a real DMA engine keeps
// multiple outstanding requests), so the memory pipe does not drain between
// chunks: chunk j issues once chunk j-W has completed.
#pragma once

#include <cstdint>
#include <functional>

#include "adapt/telemetry.h"
#include "cache/shared_cache.h"
#include "common/event_queue.h"
#include "common/types.h"

namespace camdn::npu {

/// One logical tensor transfer of a tile.
struct transfer_request {
    enum class kind : std::uint8_t {
        transparent_read,   ///< baseline path: DMA read through shared cache
        transparent_write,  ///< baseline path: DMA write through shared cache
        region_read,        ///< NEC: cache region -> NPU (multicast-aware)
        region_write,       ///< NEC: NPU -> cache region
        region_fill,        ///< NEC: DRAM -> cache region
        region_writeback,   ///< NEC: cache region -> DRAM
        bypass_read,        ///< NEC: DRAM -> NPU around the cache
        bypass_write,       ///< NEC: NPU -> DRAM around the cache
    };

    kind op = kind::transparent_read;
    task_id task = no_task;
    addr_t addr = 0;       ///< vcaddr for region ops, DRAM address otherwise
    addr_t dram_addr = 0;  ///< DRAM side of fill/writeback pairs
    std::uint64_t nlines = 0;
    std::uint32_t group_size = 1;  ///< multicast group width (reads)
};

class dma_engine {
public:
    /// `chunk_lines` trades fidelity (finer interleaving) for event count;
    /// `window` chunks stay outstanding to keep the pipe full.
    dma_engine(event_queue& eq, cache::shared_cache& cache,
               std::uint64_t chunk_lines = 128, std::uint32_t window = 4);

    /// Starts a transfer; `on_done` fires with the completion cycle of the
    /// final chunk. Multiple transfers may be in flight.
    void submit(const transfer_request& req,
                std::function<void(cycle_t)> on_done);

    /// Synchronous variant: performs the whole transfer at `arrival` in one
    /// shot and returns its completion (no chunking, used by unit tests and
    /// warm-up paths).
    cycle_t transfer_now(const transfer_request& req, cycle_t arrival);

    std::uint64_t chunk_lines() const { return chunk_lines_; }
    std::uint32_t window() const { return window_; }

    /// Attaches the per-epoch telemetry bus (nullptr detaches). Submitted
    /// transfers are attributed to their task at issue time.
    void set_telemetry(adapt::telemetry_bus* bus) { telemetry_ = bus; }

private:
    struct flight;

    event_queue& eq_;
    cache::shared_cache& cache_;
    std::uint64_t chunk_lines_;
    std::uint32_t window_;
    adapt::telemetry_bus* telemetry_ = nullptr;
};

}  // namespace camdn::npu

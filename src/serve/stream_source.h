// Pull-based fleet arrival stream.
//
// The legacy cluster path materialized the whole arrival schedule up
// front (an O(total_arrivals) vector drawn before round 0), which capped
// long-horizon runs at bench length. stream_source generates the same
// stream lazily: rounds pull arrivals one at a time through a one-entry
// lookahead, so a million-request run holds O(1) stream state.
//
// Bit-identity contract: the RNG call sequence is exactly the legacy
// build_stream order — Poisson draws one exponential gap then one model
// pick per arrival; MMPP constructs the modulated clock first (its
// constructor draws the initial sojourn), then per arrival the clock's
// draws followed by the model pick. Any config therefore produces the
// identical arrival sequence to the eager builder, and existing goldens
// and snapshot bytes are unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "runtime/workload.h"
#include "serve/cluster.h"

namespace camdn::serve {

/// One arrival of the fleet-wide stream: absolute arrival cycle plus the
/// catalog index of the requested model.
struct stream_arrival {
    cycle_t at = 0;
    std::size_t model = 0;
};

class stream_source {
public:
    /// `cum` is the normalized cumulative traffic mix over cfg.models
    /// (see traffic_weights). For MMPP configs the modulated clock is
    /// constructed here, matching the legacy draw order.
    stream_source(const cluster_config& cfg, std::vector<double> cum);

    // The MMPP clock keeps a reference to the member RNG.
    stream_source(const stream_source&) = delete;
    stream_source& operator=(const stream_source&) = delete;

    /// Next arrival without consuming it; nullptr once the stream's
    /// total_arrivals budget is exhausted.
    const stream_arrival* peek();

    /// Consumes and returns the next arrival. Call only after a non-null
    /// peek() (throws std::logic_error on an exhausted stream).
    stream_arrival pop();

    /// Arrivals handed out via pop() so far.
    std::uint64_t consumed() const { return consumed_; }
    /// Total arrivals this stream will ever produce (cfg.total_arrivals).
    std::uint64_t total() const { return total_; }
    bool exhausted() { return peek() == nullptr; }

private:
    void advance();
    std::size_t pick_model();

    std::vector<double> cum_;
    rng r_;
    double base_;
    std::uint64_t total_;
    std::uint64_t generated_ = 0;  ///< arrivals drawn into the lookahead
    std::uint64_t consumed_ = 0;
    bool mmpp_ = false;
    std::unique_ptr<runtime::mmpp_clock> clock_;
    cycle_t t_ = 0;
    bool have_ = false;
    stream_arrival next_{};
};

}  // namespace camdn::serve

#include "serve/stream_source.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace camdn::serve {

stream_source::stream_source(const cluster_config& cfg,
                             std::vector<double> cum)
    : cum_(std::move(cum)),
      r_(cfg.seed),
      base_(std::max(cfg.arrival_rate_per_ms, 1e-9)),
      total_(cfg.total_arrivals),
      mmpp_(cfg.process == arrival_process::mmpp) {
    // Legacy order: the MMPP clock's constructor draws the first sojourn
    // before any arrival is generated.
    if (mmpp_)
        clock_ = std::make_unique<runtime::mmpp_clock>(
            base_, cfg.mmpp_rate_scale, cfg.mmpp_sojourn_ms, r_);
}

std::size_t stream_source::pick_model() {
    const double pick = r_.next_double();
    std::size_t m = 0;
    while (m + 1 < cum_.size() && pick >= cum_[m]) ++m;
    return m;
}

void stream_source::advance() {
    if (mmpp_) {
        t_ = std::max<cycle_t>(t_ + 1,
                               ms_to_cycles(clock_->next_arrival_ms()));
    } else {
        const double gap_ms = -std::log(1.0 - r_.next_double()) / base_;
        t_ += std::max<cycle_t>(1, ms_to_cycles(gap_ms));
    }
    next_ = {t_, pick_model()};
    have_ = true;
    ++generated_;
}

const stream_arrival* stream_source::peek() {
    if (!have_) {
        if (generated_ >= total_) return nullptr;
        advance();
    }
    return &next_;
}

stream_arrival stream_source::pop() {
    if (peek() == nullptr)
        throw std::logic_error("stream_source::pop: stream exhausted");
    have_ = false;
    ++consumed_;
    return next_;
}

}  // namespace camdn::serve

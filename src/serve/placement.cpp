#include "serve/placement.h"

#include <algorithm>
#include <numeric>

#include "model/reuse_analysis.h"
#include "sim/mapping_registry.h"

namespace camdn::serve {

namespace {

/// Peak cache-page demand of `m` on `soc`: the largest LWM candidate over
/// all layers of the memoized offline mapping.
std::uint32_t peak_pages(const model::model& m, const sim::soc_config& soc) {
    const auto& mm = sim::mapping_for(m, soc.mapper());
    std::uint32_t peak = 0;
    for (const auto& table : mm.tables) {
        // lwm is ascending in pages_needed; back() is the largest.
        peak = std::max(peak, table.lwm.back().pages_needed);
        if (table.lbm) peak = std::max(peak, table.lbm->pages_needed);
    }
    return std::max<std::uint32_t>(peak, 1);
}

}  // namespace

placement plan_placement(const cluster_config& cfg) {
    const std::size_t S = cfg.socs.size();
    const std::size_t M = cfg.models.size();

    placement out;
    out.resident.resize(S);
    out.hosts.resize(M);
    out.footprint_pages.assign(S, std::vector<std::uint32_t>(M, 0));
    out.reused_fraction.assign(S, std::vector<double>(M, 0.0));
    out.capacity_pages.resize(S);

    for (std::size_t s = 0; s < S; ++s) {
        const auto& soc = cfg.socs[s].soc;
        out.capacity_pages[s] = soc.cache.npu_pages();
        for (std::size_t m = 0; m < M; ++m) {
            out.footprint_pages[s][m] = peak_pages(*cfg.models[m], soc);
            out.reused_fraction[s][m] =
                1.0 - model::analyze_reuse(*cfg.models[m],
                                           soc.npu.scratchpad_bytes)
                          .single_use_fraction();
        }
    }
    if (S == 0 || M == 0) return out;

    const std::vector<double> share = traffic_weights(cfg);

    std::vector<std::uint32_t> free = out.capacity_pages;
    std::vector<std::vector<bool>> hosted(S, std::vector<bool>(M, false));

    auto place = [&](std::size_t s, std::size_t m) {
        hosted[s][m] = true;
        out.resident[s].push_back(static_cast<std::uint32_t>(m));
        out.hosts[m].push_back(static_cast<std::uint32_t>(s));
        free[s] -= std::min(free[s], out.footprint_pages[s][m]);
    };

    // Pass 1: one home per model. Heaviest pressure (traffic x mean page
    // demand) first, each on the roomiest SoC that fits — or, failing
    // that, the roomiest SoC outright (oversubscribed but still served).
    std::vector<std::size_t> order(M);
    std::iota(order.begin(), order.end(), 0);
    auto pressure = [&](std::size_t m) {
        std::uint64_t pages = 0;
        for (std::size_t s = 0; s < S; ++s) pages += out.footprint_pages[s][m];
        return share[m] * static_cast<double>(pages) / static_cast<double>(S);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return pressure(a) > pressure(b);
                     });
    for (std::size_t m : order) {
        std::size_t best = S;
        for (std::size_t s = 0; s < S; ++s) {
            if (free[s] < out.footprint_pages[s][m]) continue;
            if (best == S || free[s] > free[best]) best = s;
        }
        if (best == S) {
            out.oversubscribed = true;
            best = 0;
            for (std::size_t s = 1; s < S; ++s)
                if (free[s] > free[best]) best = s;
        }
        place(best, m);
    }

    // Pass 2: replicate the hottest models (traffic per replica) onto the
    // roomiest SoCs that still fit them, until nothing fits or the
    // replication limit is reached.
    for (;;) {
        std::size_t pick_m = M, pick_s = S;
        double pick_heat = -1.0;
        for (std::size_t m = 0; m < M; ++m) {
            if (cfg.replication_limit != 0 &&
                out.hosts[m].size() >= cfg.replication_limit)
                continue;
            const double heat =
                share[m] / static_cast<double>(out.hosts[m].size());
            if (heat <= pick_heat) continue;
            std::size_t best = S;
            for (std::size_t s = 0; s < S; ++s) {
                if (hosted[s][m] || free[s] < out.footprint_pages[s][m])
                    continue;
                if (best == S || free[s] > free[best]) best = s;
            }
            if (best == S) continue;
            pick_m = m;
            pick_s = best;
            pick_heat = heat;
        }
        if (pick_m == M) break;
        place(pick_s, pick_m);
    }

    for (auto& h : out.hosts) std::sort(h.begin(), h.end());
    return out;
}

}  // namespace camdn::serve

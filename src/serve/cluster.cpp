#include "serve/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "model/model_zoo.h"
#include "obs/attribution.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/qos.h"
#include "runtime/scheduler_snapshot.h"
#include "serve/placement.h"
#include "serve/router.h"
#include "sim/sweep.h"

namespace camdn::serve {

const char* route_policy_name(route_policy p) {
    switch (p) {
        case route_policy::round_robin: return "round_robin";
        case route_policy::least_outstanding: return "least_outstanding";
        case route_policy::cache_affinity: return "cache_affinity";
    }
    return "?";
}

cluster_config uniform_cluster(std::uint32_t n,
                               const soc_instance_config& inst) {
    cluster_config cfg;
    cfg.socs.assign(n, inst);
    return cfg;
}

std::vector<double> traffic_weights(const cluster_config& cfg) {
    std::vector<double> w(cfg.models.size(), 1.0);
    double total = static_cast<double>(cfg.models.size());
    for (std::size_t m = 0; m < w.size() && m < cfg.traffic_share.size();
         ++m) {
        total -= w[m];
        w[m] = std::max(cfg.traffic_share[m], 0.0);
        total += w[m];
    }
    if (!w.empty() && total <= 0.0)
        throw std::invalid_argument("traffic_weights: all-zero traffic mix");
    return w;
}

namespace {

/// Per-SoC RNG stream: splitmix64 of the cluster seed and the SoC index,
/// so no two SoC simulations share a seed (and adding a SoC never
/// perturbs the streams of the others).
std::uint64_t soc_seed(std::uint64_t cluster_seed, std::size_t s) {
    std::uint64_t z = cluster_seed + 0x9e3779b97f4a7c15ULL * (s + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

struct stream_arrival {
    cycle_t at = 0;
    std::size_t model = 0;
};

/// Draws the whole fleet arrival stream up front — a pure function of the
/// cluster seed, so routing rounds can slice it without re-drawing. The
/// Poisson path preserves the legacy RNG call sequence exactly (one gap
/// draw + one model draw per arrival): single-shot runs stay bit-identical
/// to pre-feedback builds.
std::vector<stream_arrival> build_stream(const cluster_config& cfg,
                                         const std::vector<double>& cum) {
    std::vector<stream_arrival> out;
    out.reserve(cfg.total_arrivals);
    rng r(cfg.seed);
    const std::size_t M = cum.size();
    const double base = std::max(cfg.arrival_rate_per_ms, 1e-9);

    auto pick_model = [&]() {
        const double pick = r.next_double();
        std::size_t m = 0;
        while (m + 1 < M && pick >= cum[m]) ++m;
        return m;
    };

    if (cfg.process == arrival_process::poisson) {
        cycle_t t = 0;
        for (std::uint32_t i = 0; i < cfg.total_arrivals; ++i) {
            const double gap_ms = -std::log(1.0 - r.next_double()) / base;
            t += std::max<cycle_t>(1, ms_to_cycles(gap_ms));
            out.push_back({t, pick_model()});
        }
        return out;
    }

    // MMPP: same modulated clock as runtime's open_loop_mmpp generator,
    // with the model drawn from the weighted catalog mix after each gap.
    runtime::mmpp_clock clock(base, cfg.mmpp_rate_scale, cfg.mmpp_sojourn_ms,
                              r);
    cycle_t t = 0;
    for (std::uint32_t i = 0; i < cfg.total_arrivals; ++i) {
        t = std::max<cycle_t>(t + 1, ms_to_cycles(clock.next_arrival_ms()));
        out.push_back({t, pick_model()});
    }
    return out;
}

}  // namespace

cluster_result run_cluster(const cluster_config& cfg_in) {
    if (cfg_in.socs.empty())
        throw std::invalid_argument("run_cluster: empty fleet");

    cluster_config cfg = cfg_in;
    if (cfg.models.empty())
        for (const auto& m : model::benchmark_models()) cfg.models.push_back(&m);

    const std::size_t S = cfg.socs.size();
    const std::size_t M = cfg.models.size();

    // Normalized cumulative traffic mix (uniform when unspecified).
    const std::vector<double> weights = traffic_weights(cfg);
    std::vector<double> cum(M, 0.0);
    {
        double total = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
            total += weights[m];
            cum[m] = total;
        }
        for (auto& c : cum) c /= total;
    }

    // Phase 1: placement (also warms the mapping registry for the router).
    // Placements and the re-planning config are heap/long-lived: the
    // router holds references into both across feedback rounds.
    cluster_config replan_cfg = cfg;
    std::vector<std::unique_ptr<placement>> placements;
    placements.push_back(std::make_unique<placement>(plan_placement(cfg)));
    auto router = std::make_unique<request_router>(cfg, *placements.back());

    const std::uint32_t rounds = std::max<std::uint32_t>(cfg.feedback_rounds, 1);
    const bool fb_on = rounds > 1;
    adapt::fleet_feedback fb(cfg.feedback, S);
    if (fb_on) router->set_load_weights(&fb.weights());

    cluster_result out;
    out.resident_models = placements.back()->resident;

    // Quantile backend selection must precede the first sample; tenant
    // entries are pre-created so the on-demand map lookups below never
    // construct an exact-mode tracker in a streaming-mode run.
    if (cfg.streaming_quantiles) {
        out.fleet_latency_ms.set_streaming(true);
        out.fleet_queue_delay_ms.set_streaming(true);
    }
    for (const auto* m : cfg.models) {
        auto& tenant = out.tenants[m->abbr];
        if (cfg.streaming_quantiles) {
            tenant.latency_ms.set_streaming(true);
            tenant.queue_delay_ms.set_streaming(true);
        }
    }

    // Observability outputs. The JSONL file streams during the run (rows
    // land at every round barrier); the trace file is written once at the
    // end (valid JSON needs the closing bracket).
    const bool trace_on = !cfg.trace_path.empty();
    const bool jsonl_on = !cfg.metrics_jsonl_path.empty();
    std::unique_ptr<obs::trace_recorder> master_trace;
    if (trace_on)
        master_trace = std::make_unique<obs::trace_recorder>(
            static_cast<std::uint32_t>(S));
    std::ofstream jsonl_out;
    if (jsonl_on) {
        jsonl_out.open(cfg.metrics_jsonl_path);
        if (!jsonl_out)
            throw std::runtime_error(
                "run_cluster: cannot open metrics JSONL path " +
                cfg.metrics_jsonl_path);
    }
    obs::metrics_registry fleet_metrics;
    // Attribution rides along whenever any exporter wants it; the fleet
    // master folds per-(round, SoC) attributors at each barrier.
    const bool attr_on = cfg.attribution || trace_on || jsonl_on;
    std::unique_ptr<obs::latency_attributor> fleet_attr;
    if (attr_on) {
        fleet_attr = std::make_unique<obs::latency_attributor>();
        fleet_attr->set_keep_records(false);
    }
    cycle_t prev_round_end = 0;

    // Phase 2+3, per round: route the round's slice of the shared stream,
    // simulate each SoC's trace on the sweep pool, then (feedback only)
    // fold the round's telemetry rollups into router weights and possibly
    // re-plan placement against the observed traffic mix (on a sustained
    // SLA violation streak, or proactively on KL mix drift).
    const auto stream = build_stream(cfg, cum);
    std::vector<std::uint64_t> routed_per_model(M, 0);
    std::vector<std::uint64_t> round_routed(M, 0);
    std::vector<runtime::scheduler_snapshot> carried;
    // Mix the current placement was planned against (for the drift
    // trigger); re-plans rebase it onto the observed mix.
    std::vector<double> planned_mix = weights;

    // Time-sliced rounds cover fixed windows of stream time and pause
    // every SoC mid-flight at the boundary; drain-sliced rounds split the
    // stream by count and run each slice to completion.
    const bool time_sliced = fb_on && cfg.round_cycles > 0;
    std::size_t stream_pos = 0;

    for (std::uint32_t round = 0; round < rounds; ++round) {
        std::size_t lo, hi;
        if (time_sliced) {
            lo = stream_pos;
            if (round + 1 < rounds) {
                const cycle_t window_end = cfg.round_cycles * (round + 1);
                hi = lo;
                while (hi < stream.size() && stream[hi].at < window_end) ++hi;
            } else {
                hi = stream.size();  // final round takes the tail
            }
            stream_pos = hi;
        } else {
            lo = stream.size() * round / rounds;
            hi = stream.size() * (round + 1) / rounds;
        }

        std::fill(round_routed.begin(), round_routed.end(), 0u);
        std::vector<std::vector<runtime::trace_arrival>> traces(S);
        for (std::size_t i = lo; i < hi; ++i) {
            out.arrivals += 1;
            const std::int32_t s = router->route(
                stream[i].at, static_cast<std::uint32_t>(stream[i].model));
            if (s < 0) {
                out.dropped_unroutable += 1;
                continue;
            }
            traces[s].push_back({stream[i].at, cfg.models[stream[i].model]});
            routed_per_model[stream[i].model] += 1;
            round_routed[stream[i].model] += 1;
        }

        // Per-(round, SoC) observability buffers: each SoC's thread writes
        // only its own recorder/sink, and the barrier below folds them in
        // fleet order — deterministic across sweep-pool widths.
        std::vector<std::unique_ptr<obs::trace_recorder>> round_traces(
            trace_on ? S : 0);
        std::vector<obs::jsonl_sink> round_epochs(jsonl_on ? S : 0);
        std::vector<std::unique_ptr<obs::latency_attributor>> round_attrs(
            attr_on ? S : 0);

        std::vector<sim::experiment_config> ecs(S);
        for (std::size_t s = 0; s < S; ++s) {
            auto& ec = ecs[s];
            ec.soc = cfg.socs[s].soc;
            ec.pol = cfg.socs[s].pol;
            ec.kind = runtime::workload_kind::trace_replay;
            ec.trace = std::move(traces[s]);
            ec.co_located = std::max<std::uint32_t>(cfg.socs[s].slots, 1);
            ec.admission_queue_limit = cfg.socs[s].admission_queue_limit;
            ec.workload = cfg.models;
            ec.seed = soc_seed(cfg.seed, s);
            ec.telemetry = cfg.telemetry || fb_on;
            ec.obs.soc_index = static_cast<std::uint32_t>(s);
            ec.obs.epoch_sample_every = cfg.epoch_sample_every;
            if (trace_on) {
                round_traces[s] = std::make_unique<obs::trace_recorder>(
                    static_cast<std::uint32_t>(s));
                ec.obs.trace = round_traces[s].get();
            }
            if (jsonl_on) ec.obs.epochs = &round_epochs[s];
            if (attr_on) {
                round_attrs[s] = std::make_unique<obs::latency_attributor>();
                round_attrs[s]->set_keep_records(false);
                ec.obs.attr = round_attrs[s].get();
            }
        }
        // Warm-carry rounds resume every SoC from its previous round's
        // snapshot: cache warmth, DRAM timing, per-slot counters and the
        // clock all survive the boundary, so round r+1 starts on the state
        // round r actually left behind. Drain-sliced rounds still run each
        // slice to completion before the fleet barrier; time-sliced rounds
        // pause every SoC at the round's wall-clock boundary with layers
        // mid-flight (the typed-event engine serializes the in-air state),
        // so long layers no longer stretch round boundaries — the carried
        // snapshot resumes them mid-tile in the next round.
        // Single-shot runs and carry-disabled fleets stay on the cold path.
        const bool carry = fb_on && (cfg.carry_soc_state || time_sliced);
        std::vector<sim::experiment_result> round_res;
        if (carry) {
            std::vector<const runtime::scheduler_snapshot*> in(S, nullptr);
            if (round > 0)
                for (std::size_t s = 0; s < S; ++s) in[s] = &carried[s];
            const bool more_rounds = round + 1 < rounds;
            std::vector<cycle_t> pause;
            if (time_sliced && more_rounds)
                pause.assign(S, cfg.round_cycles * (round + 1));
            std::vector<runtime::scheduler_snapshot> out;
            round_res = sim::run_sweep_segments(
                ecs, in, more_rounds ? &out : nullptr, {}, cfg.threads,
                pause);
            if (more_rounds) carried = std::move(out);
        } else {
            round_res = sim::run_sweep(ecs, cfg.threads);
        }

        // Round barrier: fold this round's observability output in fleet
        // order, then flush the JSONL stream so telemetry leaves the
        // process while later rounds still run.
        cycle_t round_end = prev_round_end;
        std::uint64_t round_completed = 0, round_events = 0, round_drops = 0;
        for (const auto& res : round_res) {
            round_end = std::max(round_end, res.makespan);
            round_completed += res.completions.size();
            round_events += res.events_executed;
            round_drops += res.rejected_arrivals;
        }
        if (trace_on) {
            for (const auto& rec : round_traces) master_trace->absorb(*rec);
            std::ostringstream name;
            name << "round " << round;
            master_trace->complete(master_trace->intern(name.str()), "fleet",
                                   0, prev_round_end, round_end);
        }
        if (attr_on) {
            for (const auto& a : round_attrs) fleet_attr->absorb(*a);
            if (trace_on) {
                // Fleet-lane counter tracks: cumulative attribution sampled
                // at every round barrier.
                const obs::attribution_components tot = fleet_attr->totals();
                master_trace->counter("attr.queue_wait", 0, round_end,
                                      tot.queue_wait);
                master_trace->counter("attr.page_wait", 0, round_end,
                                      tot.page_wait);
                master_trace->counter("attr.dma_stall", 0, round_end,
                                      tot.dma_stall);
                master_trace->counter("attr.dram_contention", 0, round_end,
                                      tot.dram_contention);
                master_trace->counter("attr.cache_penalty", 0, round_end,
                                      tot.cache_penalty);
                master_trace->counter("attr.compute", 0, round_end,
                                      tot.compute);
            }
        }
        if (jsonl_on) {
            for (auto& sink : round_epochs) sink.drain_to(jsonl_out);
            // Cumulative fleet attribution at the barrier, on the fleet
            // lane (soc == S), keyed by round.
            jsonl_out << fleet_attr->jsonl_row(static_cast<std::uint32_t>(S),
                                               round)
                      << '\n';
            char buf[224];
            std::snprintf(
                buf, sizeof buf,
                "{\"type\":\"fleet_round\",\"round\":%u,\"completions\":%llu,"
                "\"events\":%llu,\"dropped\":%llu,\"end_ms\":%.6f}",
                round,
                static_cast<unsigned long long>(round_completed),
                static_cast<unsigned long long>(round_events),
                static_cast<unsigned long long>(round_drops),
                cycles_to_ms(round_end));
            jsonl_out << buf << '\n';
            jsonl_out.flush();
            fleet_metrics.add("fleet.rounds");
            fleet_metrics.add("fleet.completions", round_completed);
            fleet_metrics.add("fleet.events_executed", round_events);
            fleet_metrics.add("fleet.dropped_queue", round_drops);
            fleet_metrics.histogram("fleet.round_end_ms")
                .add(cycles_to_ms(round_end));
        }
        prev_round_end = round_end;

        if (fb_on && round + 1 < rounds) {
            std::vector<adapt::soc_rollup> rollups;
            rollups.reserve(S);
            for (const auto& res : round_res)
                rollups.push_back(adapt::rollup_from(res, cfg.qos_scale));
            fb.observe(rollups);

            // Re-plan against the observed cumulative mix (+1 smoothing
            // keeps every model placeable and the weights positive).
            auto replan = [&]() {
                std::uint64_t total_routed = 0;
                for (const auto n : routed_per_model) total_routed += n;
                if (total_routed == 0) return false;
                replan_cfg.traffic_share.assign(M, 1.0);
                for (std::size_t m = 0; m < M; ++m)
                    replan_cfg.traffic_share[m] +=
                        static_cast<double>(routed_per_model[m]);
                placements.push_back(
                    std::make_unique<placement>(plan_placement(replan_cfg)));
                router = std::make_unique<request_router>(replan_cfg,
                                                          *placements.back());
                router->set_load_weights(&fb.weights());
                out.replacements += 1;
                out.resident_models = placements.back()->resident;
                planned_mix = traffic_weights(replan_cfg);
                return true;
            };

            if (fb.replacement_due()) {
                replan();
            } else if (fb.drift_replan_due(planned_mix, round_routed)) {
                // Proactive: the mix drifted from the plan even though no
                // SoC has a violation streak yet.
                if (replan()) out.drift_replacements += 1;
            }
        }

        for (auto& res : round_res) out.per_soc.push_back(std::move(res));
    }

    // Aggregate fleet metrics in round-major fleet order (deterministic
    // sample order).
    for (std::size_t m = 0; m < M; ++m)
        out.tenants[cfg.models[m]->abbr].routed += routed_per_model[m];
    for (const auto& res : out.per_soc) {
        out.makespan = std::max(out.makespan, res.makespan);
        out.dropped_queue += res.rejected_arrivals;
        out.events_executed += res.events_executed;
        out.completed += res.completions.size();
        out.fleet_queue_delay_ms.merge(res.queue_delay_ms);
        for (const auto& rec : res.completions) {
            const double lat_ms = cycles_to_ms(rec.latency());
            out.fleet_latency_ms.add(lat_ms);
            if (runtime::meets_qos_target(rec.abbr, rec.latency(),
                                          cfg.qos_scale))
                out.deadline_met += 1;
            auto& tenant = out.tenants[rec.abbr];
            tenant.completed += 1;
            tenant.latency_ms.add(lat_ms);
            tenant.queue_delay_ms.add(cycles_to_ms(rec.queue_delay()));
        }
    }
    for (auto& [abbr, tenant] : out.tenants)
        tenant.dropped = tenant.routed - tenant.completed;
    if (fb_on) out.route_weights = fb.weights();

    if (attr_on) {
        // Roll the fleet attribution into the result and the metrics
        // registry (tenant names are model abbreviations, matching
        // out.tenants' keys).
        const auto& names = fleet_attr->tenant_names();
        const auto& tens = fleet_attr->tenants();
        for (std::size_t i = 0; i < names.size(); ++i) {
            auto& tm = out.tenants[names[i]];
            tm.attribution_completed = tens[i].completed;
            tm.attribution_latency_cycles = tens[i].latency_cycles;
            tm.attribution = tens[i].comp;
            for (std::size_t j = 0; j < names.size(); ++j) {
                const std::uint64_t v = fleet_attr->interference(
                    static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>(j));
                if (v != 0) out.interference[names[i]][names[j]] = v;
            }
        }
        fleet_attr->export_metrics(fleet_metrics);
    }

    if (jsonl_on) {
        std::ostringstream payload;
        fleet_metrics.write_json(payload);
        jsonl_out << "{\"type\":\"metrics\",\"payload\":" << payload.str()
                  << "}\n";
        jsonl_out.flush();
    }
    if (trace_on) {
        std::ofstream tf(cfg.trace_path);
        if (!tf)
            throw std::runtime_error("run_cluster: cannot open trace path " +
                                     cfg.trace_path);
        obs::write_chrome_trace(
            tf, master_trace->events(),
            {{static_cast<std::uint32_t>(S), "fleet"}});
    }
    return out;
}

}  // namespace camdn::serve

#include "serve/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "model/model_zoo.h"
#include "obs/attribution.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/qos.h"
#include "runtime/scheduler_snapshot.h"
#include "serve/placement.h"
#include "serve/router.h"
#include "serve/stream_source.h"
#include "sim/sweep.h"

namespace camdn::serve {

const char* route_policy_name(route_policy p) {
    switch (p) {
        case route_policy::round_robin: return "round_robin";
        case route_policy::least_outstanding: return "least_outstanding";
        case route_policy::cache_affinity: return "cache_affinity";
    }
    return "?";
}

const char* scale_event_kind_name(scale_event_kind k) {
    switch (k) {
        case scale_event_kind::add: return "add";
        case scale_event_kind::drain: return "drain";
        case scale_event_kind::retire: return "retire";
    }
    return "?";
}

cluster_config uniform_cluster(std::uint32_t n,
                               const soc_instance_config& inst) {
    cluster_config cfg;
    cfg.socs.assign(n, inst);
    return cfg;
}

std::vector<double> traffic_weights(const cluster_config& cfg) {
    std::vector<double> w(cfg.models.size(), 1.0);
    double total = static_cast<double>(cfg.models.size());
    for (std::size_t m = 0; m < w.size() && m < cfg.traffic_share.size();
         ++m) {
        total -= w[m];
        w[m] = std::max(cfg.traffic_share[m], 0.0);
        total += w[m];
    }
    if (!w.empty() && total <= 0.0)
        throw std::invalid_argument("traffic_weights: all-zero traffic mix");
    return w;
}

namespace {

/// Per-SoC RNG stream: splitmix64 of the cluster seed and the SoC's
/// stable id, so no two SoC simulations share a seed (and adding a SoC —
/// statically or via the autoscaler — never perturbs the streams of the
/// others).
std::uint64_t soc_seed(std::uint64_t cluster_seed, std::size_t s) {
    std::uint64_t z = cluster_seed + 0x9e3779b97f4a7c15ULL * (s + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// One live SoC of the elastic fleet. `id` is the stable identity used
/// for RNG seeding and observability lanes; the vector index is only the
/// current round's simulation slot. `snap` carries the warm scheduler
/// state across round boundaries (and is where a drain lifts the queued
/// work from).
struct fleet_slot {
    soc_instance_config inst;
    std::uint32_t id = 0;
    bool draining = false;
    bool has_snap = false;
    runtime::scheduler_snapshot snap;
};

}  // namespace

cluster_result run_cluster(const cluster_config& cfg_in) {
    if (cfg_in.socs.empty())
        throw std::invalid_argument("run_cluster: empty fleet");

    cluster_config cfg = cfg_in;
    if (cfg.models.empty())
        for (const auto& m : model::benchmark_models()) cfg.models.push_back(&m);
    // Bounded history releases per-round results at each barrier; exact
    // trackers would still retain every latency sample, so the streaming
    // backend comes with it.
    if (cfg.bounded_history) cfg.streaming_quantiles = true;

    const std::size_t S0 = cfg.socs.size();
    const std::size_t M = cfg.models.size();

    const std::uint32_t rounds = std::max<std::uint32_t>(cfg.feedback_rounds, 1);
    const bool fb_on = rounds > 1;
    // Time-sliced rounds cover fixed windows of stream time and pause
    // every SoC mid-flight at the boundary; drain-sliced rounds split the
    // stream by count and run each slice to completion.
    const bool time_sliced = fb_on && cfg.round_cycles > 0;
    const bool scaling = cfg.autoscale.enabled;
    if (scaling && !time_sliced)
        throw std::invalid_argument(
            "run_cluster: autoscaling requires time-sliced feedback rounds "
            "(feedback_rounds > 1 and round_cycles > 0)");
    const std::uint32_t min_socs =
        std::max<std::uint32_t>(cfg.autoscale.min_socs, 1);
    const std::uint32_t max_socs =
        std::max<std::uint32_t>(cfg.autoscale.max_socs, min_socs);

    // Normalized cumulative traffic mix (uniform when unspecified).
    const std::vector<double> weights = traffic_weights(cfg);
    std::vector<double> cum(M, 0.0);
    {
        double total = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
            total += weights[m];
            cum[m] = total;
        }
        for (auto& c : cum) c /= total;
    }

    // The live fleet. Fixed-fleet runs keep exactly the configured slots;
    // the autoscaler appends clones of the first instance (stable ids
    // keep growing) and erases retired ones.
    std::vector<fleet_slot> fleet;
    fleet.reserve(S0);
    for (std::size_t s = 0; s < S0; ++s)
        fleet.push_back({cfg.socs[s], static_cast<std::uint32_t>(s), false,
                         false, {}});
    std::uint32_t next_id = static_cast<std::uint32_t>(S0);

    // Phase 1: placement (also warms the mapping registry for the
    // router). Placements and the routing config are heap/long-lived: the
    // router holds references into both across feedback rounds. route_cfg
    // mirrors cfg with socs = the current routable instances and
    // traffic_share = the observed mix after a re-plan.
    cluster_config route_cfg = cfg;
    std::vector<std::unique_ptr<placement>> placements;
    placements.push_back(std::make_unique<placement>(plan_placement(route_cfg)));
    auto router = std::make_unique<request_router>(route_cfg,
                                                   *placements.back());
    // Router-local index -> fleet index (identity until a SoC drains).
    std::vector<std::size_t> route_map(S0);
    for (std::size_t s = 0; s < S0; ++s) route_map[s] = s;

    auto fb = std::make_unique<adapt::fleet_feedback>(cfg.feedback, S0);
    if (fb_on) router->set_load_weights(&fb->weights());

    cluster_result out;
    out.resident_models = placements.back()->resident;

    // Quantile backend selection must precede the first sample; tenant
    // entries are pre-created so the on-demand map lookups below never
    // construct an exact-mode tracker in a streaming-mode run.
    if (cfg.streaming_quantiles) {
        out.fleet_latency_ms.set_streaming(true);
        out.fleet_queue_delay_ms.set_streaming(true);
    }
    for (const auto* m : cfg.models) {
        auto& tenant = out.tenants[m->abbr];
        if (cfg.streaming_quantiles) {
            tenant.latency_ms.set_streaming(true);
            tenant.queue_delay_ms.set_streaming(true);
        }
    }

    // Observability outputs. The JSONL file streams during the run (rows
    // land at every round barrier); the trace file is written once at the
    // end (valid JSON needs the closing bracket).
    const bool trace_on = !cfg.trace_path.empty();
    const bool jsonl_on = !cfg.metrics_jsonl_path.empty();
    // The fleet lane pid: the historical S works for fixed fleets, but
    // autoscaled ids grow past S0, so those runs park the lane on a
    // sentinel well clear of any SoC id.
    const std::uint32_t fleet_lane =
        scaling ? 0xFFFEu : static_cast<std::uint32_t>(S0);
    std::unique_ptr<obs::trace_recorder> master_trace;
    if (trace_on)
        master_trace = std::make_unique<obs::trace_recorder>(
            fleet_lane, cfg.trace_max_events == 0 ? 1 : cfg.trace_max_events);
    std::ofstream jsonl_out;
    if (jsonl_on) {
        jsonl_out.open(cfg.metrics_jsonl_path);
        if (!jsonl_out)
            throw std::runtime_error(
                "run_cluster: cannot open metrics JSONL path " +
                cfg.metrics_jsonl_path);
    }
    obs::metrics_registry fleet_metrics;
    // Attribution rides along whenever any exporter wants it; the fleet
    // master folds per-(round, SoC) attributors at each barrier.
    const bool attr_on = cfg.attribution || trace_on || jsonl_on;
    std::unique_ptr<obs::latency_attributor> fleet_attr;
    if (attr_on) {
        fleet_attr = std::make_unique<obs::latency_attributor>();
        fleet_attr->set_keep_records(false);
    }
    cycle_t prev_round_end = 0;

    // Phase 2+3, per round: pull the round's slice of the shared stream
    // from the lazy source, route it, simulate each live SoC's trace on
    // the sweep pool, then (feedback only) fold the round's telemetry
    // rollups into router weights, possibly re-plan placement against the
    // observed traffic mix, and let the autoscaler react to backlog/SLA.
    stream_source stream(cfg, cum);
    std::vector<std::uint64_t> routed_per_model(M, 0);
    std::vector<std::uint64_t> round_routed(M, 0);
    // Mix the current placement was planned against (for the drift
    // trigger); re-plans rebase it onto the observed mix.
    std::vector<double> planned_mix = weights;

    // Queued requests lifted out of draining SoCs, re-routed at the next
    // round start at their original arrival stamps (the resuming SoC's
    // admission clamps past stamps to its own clock). Each was counted in
    // out.arrivals / routed_per_model when first routed, so re-routing
    // must not re-count it.
    std::vector<stream_arrival> migrate_backlog;
    std::map<std::string, std::size_t> model_index;
    for (std::size_t m = 0; m < M; ++m) model_index[cfg.models[m]->name] = m;

    std::uint32_t cooldown = 0;
    std::size_t ring_pos = 0;  // bounded-history completion-ring cursor

    // Rebuilds placement + router (+ load-weight hookup) over the current
    // routable set. Fleet changes and re-plans both funnel through here.
    auto rebuild_router = [&]() {
        route_map.clear();
        route_cfg.socs.clear();
        for (std::size_t k = 0; k < fleet.size(); ++k) {
            if (fleet[k].draining) continue;
            route_map.push_back(k);
            route_cfg.socs.push_back(fleet[k].inst);
        }
        placements.push_back(
            std::make_unique<placement>(plan_placement(route_cfg)));
        router = std::make_unique<request_router>(route_cfg,
                                                  *placements.back());
        if (fb_on) router->set_load_weights(&fb->weights());
        out.resident_models = placements.back()->resident;
    };

    for (std::uint32_t round = 0; round < rounds; ++round) {
        const std::size_t A = fleet.size();  // live SoCs this round
        std::fill(round_routed.begin(), round_routed.end(), 0u);
        std::vector<std::vector<runtime::trace_arrival>> traces(A);

        // Migrated backlog first (in drain order), then the round's fresh
        // arrivals — the per-SoC trace generator stable-sorts by stamp,
        // so the interleave is deterministic.
        for (const auto& a : migrate_backlog) {
            const std::int32_t ri = router->route(
                a.at, static_cast<std::uint32_t>(a.model));
            if (ri < 0) {
                // The new placement cannot host the model; the request is
                // lost. Re-balance the tenant ledger it was routed under.
                out.dropped_unroutable += 1;
                if (routed_per_model[a.model] > 0)
                    routed_per_model[a.model] -= 1;
                continue;
            }
            traces[route_map[ri]].push_back({a.at, cfg.models[a.model]});
        }
        migrate_backlog.clear();

        auto route_one = [&](const stream_arrival& a) {
            out.arrivals += 1;
            const std::int32_t ri = router->route(
                a.at, static_cast<std::uint32_t>(a.model));
            if (ri < 0) {
                out.dropped_unroutable += 1;
                return;
            }
            traces[route_map[ri]].push_back({a.at, cfg.models[a.model]});
            routed_per_model[a.model] += 1;
            round_routed[a.model] += 1;
        };
        if (time_sliced && round + 1 < rounds) {
            const cycle_t window_end = sat_mul(cfg.round_cycles, round + 1);
            while (const auto* a = stream.peek()) {
                if (a->at >= window_end) break;
                route_one(stream.pop());
            }
        } else if (time_sliced) {
            while (!stream.exhausted()) route_one(stream.pop());
        } else {
            const std::uint64_t hi = stream.total() * (round + 1) / rounds;
            while (stream.consumed() < hi) route_one(stream.pop());
        }

        // Per-(round, SoC) observability buffers: each SoC's thread writes
        // only its own recorder/sink, and the barrier below folds them in
        // fleet order — deterministic across sweep-pool widths.
        std::vector<std::unique_ptr<obs::trace_recorder>> round_traces(
            trace_on ? A : 0);
        std::vector<obs::jsonl_sink> round_epochs(jsonl_on ? A : 0);
        std::vector<std::unique_ptr<obs::latency_attributor>> round_attrs(
            attr_on ? A : 0);

        std::vector<sim::experiment_config> ecs(A);
        std::vector<std::uint32_t> round_ids(A);  // survives fleet edits
        for (std::size_t k = 0; k < A; ++k) {
            auto& ec = ecs[k];
            const auto& slot = fleet[k];
            round_ids[k] = slot.id;
            ec.soc = slot.inst.soc;
            ec.pol = slot.inst.pol;
            ec.kind = runtime::workload_kind::trace_replay;
            ec.trace = std::move(traces[k]);
            ec.co_located = std::max<std::uint32_t>(slot.inst.slots, 1);
            ec.admission_queue_limit = slot.inst.admission_queue_limit;
            ec.workload = cfg.models;
            ec.seed = soc_seed(cfg.seed, slot.id);
            ec.telemetry = cfg.telemetry || fb_on;
            ec.obs.soc_index = slot.id;
            ec.obs.epoch_sample_every = cfg.epoch_sample_every;
            if (trace_on) {
                round_traces[k] =
                    std::make_unique<obs::trace_recorder>(slot.id);
                round_traces[k]->set_chunk_events(cfg.trace_chunk_events);
                round_traces[k]->set_chunk_sample_every(
                    cfg.trace_chunk_sample_every);
                round_traces[k]->set_flight_sample_every(
                    cfg.trace_flight_sample_every);
                ec.obs.trace = round_traces[k].get();
            }
            if (jsonl_on) ec.obs.epochs = &round_epochs[k];
            if (attr_on) {
                round_attrs[k] = std::make_unique<obs::latency_attributor>();
                round_attrs[k]->set_keep_records(false);
                ec.obs.attr = round_attrs[k].get();
            }
        }
        // Warm-carry rounds resume every SoC from its previous round's
        // snapshot: cache warmth, DRAM timing, per-slot counters and the
        // clock all survive the boundary, so round r+1 starts on the state
        // round r actually left behind. Drain-sliced rounds still run each
        // slice to completion before the fleet barrier; time-sliced rounds
        // pause every SoC at the round's wall-clock boundary with layers
        // mid-flight (the typed-event engine serializes the in-air state),
        // so long layers no longer stretch round boundaries — the carried
        // snapshot resumes them mid-tile in the next round. Cold slots
        // (round 0, or a SoC the autoscaler just added) start fresh.
        // Single-shot runs and carry-disabled fleets stay on the cold path.
        const bool carry = fb_on && (cfg.carry_soc_state || time_sliced);
        const bool more_rounds = round + 1 < rounds;
        std::vector<sim::experiment_result> round_res;
        if (carry) {
            std::vector<const runtime::scheduler_snapshot*> in(A, nullptr);
            for (std::size_t k = 0; k < A; ++k)
                if (fleet[k].has_snap) in[k] = &fleet[k].snap;
            std::vector<cycle_t> pause;
            if (time_sliced && more_rounds)
                pause.assign(A, sat_mul(cfg.round_cycles, round + 1));
            std::vector<runtime::scheduler_snapshot> snaps;
            round_res = sim::run_sweep_segments(
                ecs, in, more_rounds ? &snaps : nullptr, {}, cfg.threads,
                pause);
            if (more_rounds)
                for (std::size_t k = 0; k < A; ++k) {
                    fleet[k].snap = std::move(snaps[k]);
                    fleet[k].has_snap = true;
                }
        } else {
            round_res = sim::run_sweep(ecs, cfg.threads);
        }

        // Round barrier: fold this round's observability output in fleet
        // order, then flush the JSONL stream so telemetry leaves the
        // process while later rounds still run.
        cycle_t round_end = prev_round_end;
        std::uint64_t round_completed = 0, round_events = 0, round_drops = 0;
        for (const auto& res : round_res) {
            round_end = std::max(round_end, res.makespan);
            round_completed += res.completions.size();
            round_events += res.events_executed;
            round_drops += res.rejected_arrivals;
        }
        if (trace_on) {
            for (const auto& rec : round_traces) master_trace->absorb(*rec);
            std::ostringstream name;
            name << "round " << round;
            master_trace->complete(master_trace->intern(name.str()), "fleet",
                                   0, prev_round_end, round_end);
        }
        if (attr_on) {
            for (const auto& a : round_attrs) fleet_attr->absorb(*a);
            if (trace_on) {
                // Fleet-lane counter tracks: cumulative attribution sampled
                // at every round barrier.
                const obs::attribution_components tot = fleet_attr->totals();
                master_trace->counter("attr.queue_wait", 0, round_end,
                                      tot.queue_wait);
                master_trace->counter("attr.page_wait", 0, round_end,
                                      tot.page_wait);
                master_trace->counter("attr.dma_stall", 0, round_end,
                                      tot.dma_stall);
                master_trace->counter("attr.dram_contention", 0, round_end,
                                      tot.dram_contention);
                master_trace->counter("attr.cache_penalty", 0, round_end,
                                      tot.cache_penalty);
                master_trace->counter("attr.compute", 0, round_end,
                                      tot.compute);
            }
        }
        if (jsonl_on) {
            for (auto& sink : round_epochs) sink.drain_to(jsonl_out);
            // Cumulative fleet attribution at the barrier, on the fleet
            // lane, keyed by round.
            jsonl_out << fleet_attr->jsonl_row(fleet_lane, round) << '\n';
            char buf[256];
            std::snprintf(
                buf, sizeof buf,
                "{\"type\":\"fleet_round\",\"round\":%u,\"completions\":%llu,"
                "\"events\":%llu,\"dropped\":%llu,\"active_socs\":%u,"
                "\"end_ms\":%.6f}",
                round,
                static_cast<unsigned long long>(round_completed),
                static_cast<unsigned long long>(round_events),
                static_cast<unsigned long long>(round_drops),
                static_cast<std::uint32_t>(route_map.size()),
                cycles_to_ms(round_end));
            jsonl_out << buf << '\n';
            jsonl_out.flush();
            fleet_metrics.add("fleet.rounds");
            fleet_metrics.add("fleet.completions", round_completed);
            fleet_metrics.add("fleet.events_executed", round_events);
            fleet_metrics.add("fleet.dropped_queue", round_drops);
            fleet_metrics.histogram("fleet.round_end_ms")
                .add(cycles_to_ms(round_end));
        }
        prev_round_end = round_end;

        // Fold the round's results into the fleet aggregates now — the
        // same round-major fleet-order call sequence the end-of-run fold
        // historically produced, so every accumulator sees an identical
        // sample order — and count the round's deadline hits for the
        // autoscaler's SLA signal.
        std::uint64_t round_met = 0;
        for (auto& res : round_res) {
            out.makespan = std::max(out.makespan, res.makespan);
            out.dropped_queue += res.rejected_arrivals;
            out.events_executed += res.events_executed;
            out.completed += res.completions.size();
            out.fleet_queue_delay_ms.merge(res.queue_delay_ms);
            for (const auto& rec : res.completions) {
                const double lat_ms = cycles_to_ms(rec.latency());
                out.fleet_latency_ms.add(lat_ms);
                if (runtime::meets_qos_target(rec.abbr, rec.latency(),
                                              cfg.qos_scale)) {
                    out.deadline_met += 1;
                    round_met += 1;
                }
                auto& tenant = out.tenants[rec.abbr];
                tenant.completed += 1;
                tenant.latency_ms.add(lat_ms);
                tenant.queue_delay_ms.add(cycles_to_ms(rec.queue_delay()));
            }
        }

        if (fb_on && more_rounds) {
            std::vector<adapt::soc_rollup> rollups;
            rollups.reserve(route_map.size());
            for (const auto k : route_map)
                rollups.push_back(
                    adapt::rollup_from(round_res[k], cfg.qos_scale));
            fb->observe(rollups);

            // Re-plan against the observed cumulative mix (+1 smoothing
            // keeps every model placeable and the weights positive).
            auto replan = [&]() {
                std::uint64_t total_routed = 0;
                for (const auto n : routed_per_model) total_routed += n;
                if (total_routed == 0) return false;
                route_cfg.traffic_share.assign(M, 1.0);
                for (std::size_t m = 0; m < M; ++m)
                    route_cfg.traffic_share[m] +=
                        static_cast<double>(routed_per_model[m]);
                rebuild_router();
                out.replacements += 1;
                planned_mix = traffic_weights(route_cfg);
                return true;
            };

            if (fb->replacement_due()) {
                replan();
            } else if (fb->drift_replan_due(planned_mix, round_routed)) {
                // Proactive: the mix drifted from the plan even though no
                // SoC has a violation streak yet.
                if (replan()) out.drift_replacements += 1;
            }
        }

        // Autoscaling decision at the barrier. Signals: mean queued
        // backlog per routable SoC (snapshot admission-queue depth) and
        // the round's completion SLA. Retirements always run; add/drain
        // decisions are cooldown-gated, one per barrier.
        if (scaling && more_rounds) {
            double backlog = 0.0;
            std::uint32_t routable = 0;
            for (const auto& fs : fleet) {
                if (fs.draining) continue;
                ++routable;
                if (fs.has_snap)
                    backlog +=
                        static_cast<double>(fs.snap.admission_queue.size());
            }
            backlog /= std::max<std::uint32_t>(routable, 1);
            const std::uint64_t round_offered = round_completed + round_drops;
            const double sla =
                round_offered ? static_cast<double>(round_met) /
                                    static_cast<double>(round_offered)
                              : 1.0;

            bool fleet_changed = false;
            auto record_event = [&](scale_event ev) {
                ev.round = round;
                ev.backlog = backlog;
                ev.sla = sla;
                std::uint32_t active = 0;
                for (const auto& fs : fleet)
                    if (!fs.draining) ++active;
                ev.active_after = active;
                out.scale_events.push_back(ev);
                if (jsonl_on) {
                    char buf[256];
                    std::snprintf(
                        buf, sizeof buf,
                        "{\"type\":\"scale_event\",\"round\":%u,"
                        "\"kind\":\"%s\",\"soc\":%u,\"active\":%u,"
                        "\"migrated\":%llu,\"backlog\":%.3f,\"sla\":%.4f}",
                        ev.round, scale_event_kind_name(ev.kind), ev.soc_id,
                        ev.active_after,
                        static_cast<unsigned long long>(ev.migrated),
                        ev.backlog, ev.sla);
                    jsonl_out << buf << '\n';
                    jsonl_out.flush();
                    fleet_metrics.add(
                        std::string("fleet.scale_") +
                        scale_event_kind_name(ev.kind) + "s");
                    if (ev.migrated)
                        fleet_metrics.add("fleet.migrated_requests",
                                          ev.migrated);
                    fleet_metrics.gauge_set("fleet.active_socs", active);
                }
                if (trace_on) {
                    switch (ev.kind) {
                        case scale_event_kind::add:
                            master_trace->instant("scale_add", "fleet", 0,
                                                  round_end);
                            break;
                        case scale_event_kind::drain:
                            master_trace->instant("scale_drain", "fleet", 0,
                                                  round_end);
                            break;
                        case scale_event_kind::retire:
                            master_trace->instant("scale_retire", "fleet", 0,
                                                  round_end);
                            break;
                    }
                }
            };

            // Retire draining SoCs whose snapshots show no remaining work
            // (running set and admission queue both empty).
            for (std::size_t k = 0; k < fleet.size();) {
                auto& fs = fleet[k];
                if (fs.draining && fs.has_snap && fs.snap.running.empty() &&
                    fs.snap.admission_queue.empty()) {
                    const std::uint32_t id = fs.id;
                    fleet.erase(fleet.begin() +
                                static_cast<std::ptrdiff_t>(k));
                    fleet_changed = true;
                    scale_event ev;
                    ev.kind = scale_event_kind::retire;
                    ev.soc_id = id;
                    record_event(ev);
                } else {
                    ++k;
                }
            }

            if (cooldown > 0) {
                --cooldown;
            } else if ((backlog > cfg.autoscale.backlog_high ||
                        sla < cfg.autoscale.sla_low) &&
                       routable < max_socs) {
                // Scale up: a cold clone of the fleet's first configured
                // instance under the next stable id.
                fleet.push_back(
                    {cfg.socs.front(), next_id++, false, false, {}});
                fleet_changed = true;
                cooldown = cfg.autoscale.cooldown_rounds;
                scale_event ev;
                ev.kind = scale_event_kind::add;
                ev.soc_id = fleet.back().id;
                record_event(ev);
            } else if (backlog < cfg.autoscale.backlog_low &&
                       sla >= cfg.autoscale.sla_low && routable > min_socs) {
                // Drain the least-backlogged routable SoC (ties prefer the
                // youngest, so autoscaled additions leave first), lifting
                // its queued work out of the snapshot for re-routing.
                std::size_t pick = fleet.size();
                std::uint64_t best = 0;
                for (std::size_t k = 0; k < fleet.size(); ++k) {
                    if (fleet[k].draining) continue;
                    const std::uint64_t q =
                        fleet[k].has_snap
                            ? fleet[k].snap.admission_queue.size()
                            : 0;
                    if (pick == fleet.size() || q < best ||
                        (q == best && fleet[k].id > fleet[pick].id)) {
                        pick = k;
                        best = q;
                    }
                }
                if (pick < fleet.size()) {
                    auto& fs = fleet[pick];
                    fs.draining = true;
                    std::uint64_t migrated = 0;
                    for (const auto& q : fs.snap.admission_queue) {
                        const auto it = model_index.find(q.model);
                        if (it == model_index.end()) continue;
                        migrate_backlog.push_back({q.arrival, it->second});
                        ++migrated;
                    }
                    fs.snap.admission_queue.clear();
                    out.migrated_requests += migrated;
                    fleet_changed = true;
                    cooldown = cfg.autoscale.cooldown_rounds;
                    scale_event ev;
                    ev.kind = scale_event_kind::drain;
                    ev.soc_id = fs.id;
                    ev.migrated = migrated;
                    record_event(ev);
                }
            }

            if (fleet_changed) {
                // Resize feedback to the new routable set (weights and
                // violation streaks restart; the router is rebuilt against
                // the fresh weights, so stale per-SoC state never leaks
                // across a fleet-shape change).
                std::uint32_t routable_now = 0;
                for (const auto& fs : fleet)
                    if (!fs.draining) ++routable_now;
                fb = std::make_unique<adapt::fleet_feedback>(cfg.feedback,
                                                             routable_now);
                rebuild_router();
            }
        }

        // Retain or release the round's results. Bounded-history runs keep
        // compact rollups plus a completion ring; everything else keeps
        // the historical round-major per_soc layout.
        if (cfg.bounded_history) {
            for (std::size_t k = 0; k < round_res.size(); ++k) {
                const auto& res = round_res[k];
                out.round_summaries.push_back(
                    {round, round_ids[k], res.completions.size(),
                     res.rejected_arrivals, res.events_executed,
                     res.makespan});
                if (cfg.history_records > 0) {
                    for (const auto& rec : res.completions) {
                        if (out.recent_completions.size() <
                            cfg.history_records) {
                            out.recent_completions.push_back(rec);
                        } else {
                            out.recent_completions[ring_pos] = rec;
                            ring_pos = (ring_pos + 1) % cfg.history_records;
                        }
                    }
                }
            }
        } else {
            for (auto& res : round_res) out.per_soc.push_back(std::move(res));
        }
    }

    // Remaining fleet-level aggregation (per-round folds above handled the
    // order-sensitive accumulators).
    for (std::size_t m = 0; m < M; ++m)
        out.tenants[cfg.models[m]->abbr].routed += routed_per_model[m];
    for (auto& [abbr, tenant] : out.tenants)
        tenant.dropped = tenant.routed - tenant.completed;
    if (fb_on) out.route_weights = fb->weights();

    if (attr_on) {
        // Roll the fleet attribution into the result and the metrics
        // registry (tenant names are model abbreviations, matching
        // out.tenants' keys).
        const auto& names = fleet_attr->tenant_names();
        const auto& tens = fleet_attr->tenants();
        for (std::size_t i = 0; i < names.size(); ++i) {
            auto& tm = out.tenants[names[i]];
            tm.attribution_completed = tens[i].completed;
            tm.attribution_latency_cycles = tens[i].latency_cycles;
            tm.attribution = tens[i].comp;
            for (std::size_t j = 0; j < names.size(); ++j) {
                const std::uint64_t v = fleet_attr->interference(
                    static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>(j));
                if (v != 0) out.interference[names[i]][names[j]] = v;
            }
        }
        fleet_attr->export_metrics(fleet_metrics);
    }

    if (jsonl_on) {
        std::ostringstream payload;
        fleet_metrics.write_json(payload);
        jsonl_out << "{\"type\":\"metrics\",\"payload\":" << payload.str()
                  << "}\n";
        jsonl_out.flush();
    }
    if (trace_on) {
        std::ofstream tf(cfg.trace_path);
        if (!tf)
            throw std::runtime_error("run_cluster: cannot open trace path " +
                                     cfg.trace_path);
        obs::write_chrome_trace(tf, master_trace->events(),
                                {{fleet_lane, "fleet"}});
    }
    return out;
}

}  // namespace camdn::serve

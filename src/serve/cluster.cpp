#include "serve/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "model/model_zoo.h"
#include "serve/placement.h"
#include "serve/router.h"
#include "sim/sweep.h"

namespace camdn::serve {

const char* route_policy_name(route_policy p) {
    switch (p) {
        case route_policy::round_robin: return "round_robin";
        case route_policy::least_outstanding: return "least_outstanding";
        case route_policy::cache_affinity: return "cache_affinity";
    }
    return "?";
}

cluster_config uniform_cluster(std::uint32_t n,
                               const soc_instance_config& inst) {
    cluster_config cfg;
    cfg.socs.assign(n, inst);
    return cfg;
}

std::vector<double> traffic_weights(const cluster_config& cfg) {
    std::vector<double> w(cfg.models.size(), 1.0);
    double total = static_cast<double>(cfg.models.size());
    for (std::size_t m = 0; m < w.size() && m < cfg.traffic_share.size();
         ++m) {
        total -= w[m];
        w[m] = std::max(cfg.traffic_share[m], 0.0);
        total += w[m];
    }
    if (!w.empty() && total <= 0.0)
        throw std::invalid_argument("traffic_weights: all-zero traffic mix");
    return w;
}

namespace {

/// Per-SoC RNG stream: splitmix64 of the cluster seed and the SoC index,
/// so no two SoC simulations share a seed (and adding a SoC never
/// perturbs the streams of the others).
std::uint64_t soc_seed(std::uint64_t cluster_seed, std::size_t s) {
    std::uint64_t z = cluster_seed + 0x9e3779b97f4a7c15ULL * (s + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

cluster_result run_cluster(const cluster_config& cfg_in) {
    if (cfg_in.socs.empty())
        throw std::invalid_argument("run_cluster: empty fleet");

    cluster_config cfg = cfg_in;
    if (cfg.models.empty())
        for (const auto& m : model::benchmark_models()) cfg.models.push_back(&m);

    const std::size_t S = cfg.socs.size();
    const std::size_t M = cfg.models.size();

    // Normalized cumulative traffic mix (uniform when unspecified).
    const std::vector<double> weights = traffic_weights(cfg);
    std::vector<double> cum(M, 0.0);
    {
        double total = 0.0;
        for (std::size_t m = 0; m < M; ++m) {
            total += weights[m];
            cum[m] = total;
        }
        for (auto& c : cum) c /= total;
    }

    // Phase 1: placement (also warms the mapping registry for the router).
    const placement place = plan_placement(cfg);

    // Phase 2: walk the global Poisson stream once, routing each arrival.
    request_router router(cfg, place);
    cluster_result out;
    out.resident_models = place.resident;

    std::vector<std::vector<runtime::trace_arrival>> traces(S);
    std::vector<std::uint64_t> routed_per_model(M, 0);
    rng r(cfg.seed);
    const double rate = std::max(cfg.arrival_rate_per_ms, 1e-9);
    cycle_t t = 0;
    for (std::uint32_t i = 0; i < cfg.total_arrivals; ++i) {
        const double gap_ms = -std::log(1.0 - r.next_double()) / rate;
        t += std::max<cycle_t>(1, ms_to_cycles(gap_ms));
        const double pick = r.next_double();
        std::size_t m = 0;
        while (m + 1 < M && pick >= cum[m]) ++m;

        out.arrivals += 1;
        const std::int32_t s = router.route(t, static_cast<std::uint32_t>(m));
        if (s < 0) {
            out.dropped_unroutable += 1;
            continue;
        }
        traces[s].push_back({t, cfg.models[m]});
        routed_per_model[m] += 1;
    }

    // Phase 3: one trace_replay simulation per SoC on the sweep pool.
    std::vector<sim::experiment_config> ecs(S);
    for (std::size_t s = 0; s < S; ++s) {
        auto& ec = ecs[s];
        ec.soc = cfg.socs[s].soc;
        ec.pol = cfg.socs[s].pol;
        ec.kind = runtime::workload_kind::trace_replay;
        ec.trace = std::move(traces[s]);
        ec.co_located = std::max<std::uint32_t>(cfg.socs[s].slots, 1);
        ec.admission_queue_limit = cfg.socs[s].admission_queue_limit;
        ec.workload = cfg.models;
        ec.seed = soc_seed(cfg.seed, s);
    }
    out.per_soc = sim::run_sweep(ecs, cfg.threads);

    // Aggregate fleet metrics in fleet order (deterministic sample order).
    for (std::size_t m = 0; m < M; ++m)
        out.tenants[cfg.models[m]->abbr].routed += routed_per_model[m];
    for (const auto& res : out.per_soc) {
        out.makespan = std::max(out.makespan, res.makespan);
        out.dropped_queue += res.rejected_arrivals;
        out.completed += res.completions.size();
        out.fleet_queue_delay_ms.merge(res.queue_delay_ms);
        for (const auto& rec : res.completions) {
            const double lat_ms = cycles_to_ms(rec.latency());
            out.fleet_latency_ms.add(lat_ms);
            auto& tenant = out.tenants[rec.abbr];
            tenant.completed += 1;
            tenant.latency_ms.add(lat_ms);
            tenant.queue_delay_ms.add(cycles_to_ms(rec.queue_delay()));
        }
    }
    for (auto& [abbr, tenant] : out.tenants)
        tenant.dropped = tenant.routed - tenant.completed;
    return out;
}

}  // namespace camdn::serve

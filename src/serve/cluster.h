// Multi-SoC serving cluster: a fleet of heterogeneous CaMDN SoCs serving
// one shared request stream.
//
// A cluster run has three deterministic phases:
//   1. placement — decide which models are resident (and replicated) on
//      which SoCs, constrained by each SoC's NPU cache subspace
//      (serve/placement.h);
//   2. routing — pull the global arrival stream lazily (serve/
//      stream_source.h generates it round by round in O(1) memory) and
//      assign every request to a hosting SoC under the selected policy
//      (serve/router.h), producing one admission trace per SoC;
//   3. simulation — run each SoC's trace through the existing
//      runtime::scheduler via trace_replay (bounded admission queue) on
//      the sim/sweep thread pool, then aggregate fleet metrics.
// Every phase is a pure function of cluster_config (per-SoC RNG streams
// are derived from the cluster seed), so results are bit-identical across
// repeated runs and across sweep-pool widths.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "adapt/fleet_feedback.h"
#include "common/stats.h"
#include "common/types.h"
#include "model/model.h"
#include "obs/attribution.h"
#include "sim/experiment.h"

namespace camdn::serve {

/// Shape of the fleet-wide arrival stream.
enum class arrival_process : std::uint8_t {
    poisson,  ///< constant-rate Poisson (legacy)
    /// Markov-modulated Poisson: the rate walks cluster_config's
    /// mmpp_rate_scale states with exponential sojourns — bursty/diurnal
    /// fleet traffic.
    mmpp,
};

/// How the router picks among the SoCs hosting a request's model.
enum class route_policy : std::uint8_t {
    round_robin,        ///< cycle through the replica set, load-blind
    least_outstanding,  ///< smallest estimated backlog
    /// Prefer SoCs where the model's shared-cache pages are already warm
    /// (tracked via the offline mapping's page demand and reuse analysis),
    /// falling back to least_outstanding when warm hosts are overloaded.
    cache_affinity,
};

const char* route_policy_name(route_policy p);

/// Elastic fleet autoscaling, decided between time-sliced feedback
/// rounds: add a SoC when the observed queued backlog or the round's
/// completion SLA degrades, drain one when capacity sits idle. Draining
/// migrates the SoC's admitted-but-undispatched requests to the rest of
/// the fleet (lifted out of its warm snapshot, re-routed at their
/// original arrival stamps) and the SoC retires once its in-flight work
/// finishes. Requires feedback_rounds > 1 and round_cycles > 0
/// (run_cluster throws otherwise); new SoCs clone the first configured
/// instance and start cold.
struct autoscale_config {
    bool enabled = false;
    std::uint32_t min_socs = 1;  ///< never drain below this many routable
    std::uint32_t max_socs = 8;  ///< never add beyond this many routable
    /// Scale up when the mean queued backlog per routable SoC (snapshot
    /// admission-queue depth at the round barrier) exceeds this…
    double backlog_high = 8.0;
    /// …or when the round's completion SLA (deadline-met over completions
    /// plus drops) falls below this.
    double sla_low = 0.85;
    /// Drain the least-backlogged SoC when the mean backlog falls below
    /// this and the SLA is healthy.
    double backlog_low = 0.5;
    /// Barriers to skip after a scale decision before the next one (lets
    /// the fleet settle; retirements are exempt).
    std::uint32_t cooldown_rounds = 1;
};

/// What happened at one autoscaling decision point.
enum class scale_event_kind : std::uint8_t {
    add,     ///< a cold SoC joined the routable fleet
    drain,   ///< a SoC stopped taking traffic; queued work migrated
    retire,  ///< a draining SoC finished its in-flight work and left
};

const char* scale_event_kind_name(scale_event_kind k);

struct scale_event {
    scale_event_kind kind = scale_event_kind::add;
    std::uint32_t round = 0;         ///< barrier after this round
    std::uint32_t soc_id = 0;        ///< stable fleet id (obs trace pid)
    std::uint32_t active_after = 0;  ///< routable SoCs after the event
    std::uint64_t migrated = 0;      ///< queued requests migrated (drain)
    double backlog = 0.0;  ///< mean queued backlog per routable SoC
    double sla = 0.0;      ///< round completion SLA at the decision
};

/// One SoC of the fleet. Fleets may be heterogeneous: every instance
/// carries its own SoC geometry, per-SoC policy and admission bound.
struct soc_instance_config {
    sim::soc_config soc{};
    sim::policy pol = sim::policy::camdn_full;
    std::uint32_t slots = 4;  ///< concurrent task slots on this SoC
    /// Per-SoC admission-queue capacity (open_loop bounded-queue
    /// semantics: runtime::unbounded_queue never drops, 0 drops all).
    std::uint32_t admission_queue_limit = 64;
};

struct cluster_config {
    std::vector<soc_instance_config> socs;

    /// Served model catalog (defaults to the whole Table I zoo).
    std::vector<const model::model*> models;
    /// Relative request mix per catalog entry; normalized internally, so
    /// {3, 1} means 75% / 25%. Models beyond the end of the list default
    /// to weight 1 (empty = uniform); negatives clamp to 0.
    std::vector<double> traffic_share;

    double arrival_rate_per_ms = 8.0;   ///< fleet-wide mean Poisson rate
    std::uint32_t total_arrivals = 256;
    std::uint64_t seed = 42;

    /// Arrival stream shape; mmpp modulates arrival_rate_per_ms by the
    /// mmpp_rate_scale states with mmpp_sojourn_ms mean dwell.
    arrival_process process = arrival_process::poisson;
    std::vector<double> mmpp_rate_scale{0.25, 4.0};
    double mmpp_sojourn_ms = 4.0;

    route_policy router = route_policy::cache_affinity;

    // ---- fleet feedback (src/adapt/fleet_feedback.h) ----
    /// 1 = single-shot legacy run. R > 1 splits the stream into R rounds:
    /// after each round, per-SoC telemetry rollups update the router's
    /// load weights (traffic drains away from SoCs under page-wait
    /// pressure) and sustained SLA violation triggers re-placement against
    /// the observed traffic mix.
    std::uint32_t feedback_rounds = 1;
    /// With feedback rounds: carry each SoC's scheduler snapshot across the
    /// round boundary (runtime::resume_mode::warm), so round r+1 starts on
    /// round r's cache warmth, DRAM timing, clock and queue backlog instead
    /// of restarting every SoC from cold state. false reproduces the
    /// PR 3 cold-restart behavior (drain-sliced rounds only; time-sliced
    /// rounds always carry).
    bool carry_soc_state = true;
    /// Round slicing. 0 = drain-sliced (legacy): the stream splits into R
    /// equal-count slices and every SoC runs its slice to drain before the
    /// fleet barrier, so long layers stretch round boundaries arbitrarily.
    /// > 0 = time-sliced: round r covers stream time
    /// [r*round_cycles, (r+1)*round_cycles), every SoC pauses mid-flight at
    /// the boundary (typed-event engine: DMA chunks and tiles still in
    /// the air ride the snapshot), and the final round runs to drain.
    /// Ignored without feedback rounds.
    cycle_t round_cycles = 0;
    adapt::fleet_feedback_config feedback{};
    /// SLA definition for rollups and cluster_result::sla_rate: a
    /// completion meets SLA within qos_scale * its model's Table-I target.
    double qos_scale = 1.0;
    /// Record per-SoC telemetry epochs (implied by feedback_rounds > 1).
    bool telemetry = false;

    /// Max replicas per model (0 = bounded only by cache capacity).
    std::uint32_t replication_limit = 0;
    /// cache_affinity falls back to the least-loaded host once the best
    /// warm host's backlog exceeds the fleet minimum by more than this
    /// many mean service times (keeps stickiness from starving the fleet).
    double affinity_imbalance = 2.0;

    /// Sweep-pool width for the per-SoC simulations (0 = hardware
    /// concurrency, 1 = inline). Never changes results.
    unsigned threads = 0;

    // ---- long-horizon serving ----
    /// Elastic autoscaling between time-sliced rounds (off by default —
    /// fixed fleets stay bit-identical to historical runs).
    autoscale_config autoscale{};
    /// Bound per-SoC history: per-round simulation results fold into the
    /// fleet aggregates at each round barrier and are then released
    /// instead of accumulating in cluster_result::per_soc, so memory
    /// stays O(fleet) rather than O(total_arrivals) on million-request
    /// runs. Implies streaming_quantiles (the exact trackers would
    /// otherwise retain every sample). cluster_result::round_summaries
    /// keeps one compact rollup per (round, SoC) and recent_completions
    /// keeps the last history_records completion records.
    bool bounded_history = false;
    /// With bounded_history: completion records retained in the
    /// recent_completions ring (0 keeps none).
    std::uint32_t history_records = 0;

    // ---- observability (src/obs) ----
    /// Streaming P² backend for the fleet/per-tenant latency percentiles
    /// (O(1) memory instead of every sample). Default exact, so historical
    /// results and goldens are bit-identical; bench/fleet_scaling reports
    /// both to quantify the estimator error.
    bool streaming_quantiles = false;
    /// Chrome trace-event JSON output path ("" = off). Per-SoC recorders
    /// are folded deterministically at each round barrier and the file is
    /// written once at the end of the run (valid JSON needs the closing
    /// bracket). Load in Perfetto / chrome://tracing.
    std::string trace_path;
    /// Telemetry JSONL output path ("" = off). Per-epoch rows (buffered
    /// per SoC, merged round-major at each barrier) and one fleet_round
    /// row per round stream to the file *during* the run; a final
    /// "metrics" row dumps the fleet metrics registry.
    std::string metrics_jsonl_path;
    /// Emit every Nth epoch JSONL row (0 behaves as 1).
    std::uint32_t epoch_sample_every = 1;
    /// Record per-DMA-chunk trace events (the highest-volume lane; off
    /// keeps fleet traces at flight granularity).
    bool trace_chunk_events = false;
    /// Record every Nth chunk event when trace_chunk_events is on (0
    /// behaves as 1). Count-based and deterministic — the chunk issue
    /// order is a simulation fact, so sampled traces are byte-identical
    /// across runs and sweep-pool widths.
    std::uint32_t trace_chunk_sample_every = 1;
    /// Record every Nth DMA-flight completion event (0 behaves as 1) —
    /// the highest-volume lane after chunks. Count-based on the flight
    /// retire order, so sampled traces stay byte-identical across runs
    /// and sweep-pool widths.
    std::uint32_t trace_flight_sample_every = 1;
    /// Event cap of the folded master trace (0 behaves as 1). Bounds both
    /// memory and the end-of-run export/file cost — events beyond the cap
    /// are counted (trace_recorder::dropped), never silently lost. The
    /// default matches trace_recorder's.
    std::size_t trace_max_events = std::size_t{1} << 20;
    /// Per-request latency attribution and the cross-tenant interference
    /// matrix (obs/attribution.h): per-(round, SoC) attributors fold into
    /// a fleet master at each barrier, filling tenant_metrics::attribution
    /// and cluster_result::interference. Implied by trace_path or
    /// metrics_jsonl_path (both exporters consume it). Observation only —
    /// results are bit-identical either way.
    bool attribution = false;
};

/// Convenience: a homogeneous fleet of `n` identical instances.
cluster_config uniform_cluster(std::uint32_t n,
                               const soc_instance_config& inst = {});

/// Per-catalog-model traffic weight under cfg.traffic_share's defaulting
/// rules — the one normalization both the placement planner and the
/// stream generator use. Throws std::invalid_argument when every weight
/// is zero.
std::vector<double> traffic_weights(const cluster_config& cfg);

/// Fleet-level view of one tenant (one catalog model).
struct tenant_metrics {
    std::uint64_t routed = 0;     ///< arrivals assigned to some SoC
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;    ///< refused at a full per-SoC queue
    quantile_accumulator latency_ms;
    quantile_accumulator queue_delay_ms;

    /// Latency-attribution rollup across the tenant's attributed
    /// completions (zeros unless attribution ran — see
    /// cluster_config::attribution). attribution.sum() equals
    /// attribution_latency_cycles bit-exactly.
    std::uint64_t attribution_completed = 0;
    std::uint64_t attribution_latency_cycles = 0;
    obs::attribution_components attribution;
};

struct cluster_result {
    /// Per-SoC simulation results, in fleet order. With feedback_rounds
    /// R > 1 this holds R x fleet entries in round-major order
    /// (per_soc[r * socs + s]). Empty in bounded_history mode (see
    /// round_summaries / recent_completions instead).
    std::vector<sim::experiment_result> per_soc;

    /// Compact per-(round, SoC) rollup retained in bounded_history mode —
    /// the O(rounds x fleet) stand-in for per_soc.
    struct round_summary {
        std::uint32_t round = 0;
        std::uint32_t soc_id = 0;
        std::uint64_t completions = 0;
        std::uint64_t rejected = 0;
        std::uint64_t events = 0;
        cycle_t makespan = 0;
    };
    std::vector<round_summary> round_summaries;
    /// Ring of the last cluster_config::history_records completion
    /// records (bounded_history mode only; ring order, not chronological
    /// once wrapped).
    std::vector<sim::inference_record> recent_completions;
    /// Placement echo: model indices resident on each SoC.
    std::vector<std::vector<std::uint32_t>> resident_models;

    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    /// Sum of per-SoC executed event counts (raw-speed denominator for
    /// bench/sim_throughput's fleet scenario).
    std::uint64_t events_executed = 0;
    std::uint64_t dropped_queue = 0;        ///< per-SoC admission drops
    std::uint64_t dropped_unroutable = 0;   ///< no SoC hosts the model
    cycle_t makespan = 0;                   ///< max per-SoC makespan

    /// Fleet-wide latency/queue-delay summaries. Exact by default;
    /// cluster_config::streaming_quantiles switches them (and the
    /// per-tenant trackers) to the O(1)-memory P² backend.
    quantile_accumulator fleet_latency_ms;
    quantile_accumulator fleet_queue_delay_ms;
    /// Per-tenant metrics keyed by model abbreviation.
    std::map<std::string, tenant_metrics> tenants;
    /// Cross-tenant interference: interference[i][j] = cycles tenant i
    /// lost while tenant j held the contended resource (non-zero entries
    /// only; empty unless attribution ran).
    std::map<std::string, std::map<std::string, std::uint64_t>> interference;

    /// Completions within qos_scale * Table-I target.
    std::uint64_t deadline_met = 0;
    /// Final router load weights (empty without feedback).
    std::vector<double> route_weights;
    /// Re-placements triggered (SLA violation streaks + mix drift).
    std::uint32_t replacements = 0;
    /// Subset of `replacements` fired proactively by KL traffic-mix drift
    /// (fleet_feedback_config::mix_kl_threshold).
    std::uint32_t drift_replacements = 0;

    /// Autoscaling history in decision order (empty with autoscaling
    /// off). soc_ids are stable across the run: initial SoCs are
    /// 0..socs-1 and every added SoC gets the next id, so obs lanes and
    /// per-SoC RNG streams never alias after adds/drains.
    std::vector<scale_event> scale_events;
    /// Queued requests lifted out of draining SoCs and re-routed (each
    /// was counted in `arrivals` once, at its original routing).
    std::uint64_t migrated_requests = 0;

    /// Fleet SLA: deadline_met over all arrivals — drops and unroutable
    /// requests count as violations.
    double sla_rate() const {
        return arrivals ? static_cast<double>(deadline_met) /
                              static_cast<double>(arrivals)
                        : 0.0;
    }

    double drop_rate() const {
        return arrivals ? static_cast<double>(dropped_queue +
                                              dropped_unroutable) /
                              static_cast<double>(arrivals)
                        : 0.0;
    }
    /// Completed inferences per second of fleet makespan.
    double throughput_per_s() const {
        return makespan ? static_cast<double>(completed) /
                              (cycles_to_ms(makespan) * 1e-3)
                        : 0.0;
    }
};

/// Runs one cluster simulation to completion (deterministic under
/// cfg.seed). Throws std::invalid_argument on an empty fleet.
cluster_result run_cluster(const cluster_config& cfg);

}  // namespace camdn::serve

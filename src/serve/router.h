// Request router: assigns each arrival of the shared stream to one of the
// SoCs hosting its model, under a pluggable policy.
//
// Routing runs once, sequentially, over the time-ordered arrival stream
// before any SoC simulation starts, and keeps an analytical view of fleet
// state: per-SoC server occupancy (estimated from the memoized isolated
// latencies) and per-SoC cache warmth (an LRU of model working sets sized
// by the offline mapping's page demand, precomputed by the placement
// planner — the mapping-registry mutex is never taken on this path;
// consumers needing raw mapping detail after placement can capture a
// lock-free sim::snapshot_mappings()).
#pragma once

#include <cstdint>
#include <vector>

#include "serve/placement.h"

namespace camdn::serve {

class request_router {
public:
    /// `cfg` and `place` must outlive the router.
    request_router(const cluster_config& cfg, const placement& place);

    /// Routes one arrival at time `at` for catalog model `model_idx`,
    /// updating the router's load/warmth state. Returns the chosen SoC
    /// index, or -1 when no SoC hosts the model.
    std::int32_t route(cycle_t at, std::uint32_t model_idx);

    /// Estimated service time of `model_idx` on SoC `s` (memoized
    /// single-tenant isolated latency), cycles.
    cycle_t est_service(std::uint32_t s, std::uint32_t model_idx) const;

    /// True when `model_idx`'s pages are currently warm on SoC `s`.
    bool warm(std::uint32_t s, std::uint32_t model_idx) const;

    /// Per-SoC backlog multipliers from the fleet feedback loop (>1 makes
    /// a SoC look more loaded, steering traffic away). `w` must outlive
    /// the router; nullptr (default) weighs every SoC equally.
    void set_load_weights(const std::vector<double>* w) { load_weights_ = w; }

private:
    struct soc_state {
        /// Estimated busy-until time per task slot (analytical queue).
        std::vector<cycle_t> server_free;
        /// Models with warm cache pages, most recently served first.
        std::vector<std::uint32_t> warm_lru;
        std::uint32_t warm_pages = 0;
    };

    /// Estimated queued-plus-running work on SoC `s` at time `at`, cycles.
    cycle_t backlog(std::uint32_t s, cycle_t at) const;
    std::uint32_t pick_round_robin(const std::vector<std::uint32_t>& hosts);
    std::uint32_t pick_least_outstanding(
        const std::vector<std::uint32_t>& hosts, cycle_t at) const;
    std::uint32_t pick_cache_affinity(const std::vector<std::uint32_t>& hosts,
                                      cycle_t at, std::uint32_t model_idx) const;
    void commit(std::uint32_t s, cycle_t at, std::uint32_t model_idx);

    const cluster_config& cfg_;
    const placement& place_;
    const std::vector<double>* load_weights_ = nullptr;
    std::vector<soc_state> socs_;
    /// iso_[s][m]: isolated latency of catalog model m on SoC s.
    std::vector<std::vector<cycle_t>> iso_;
    cycle_t mean_service_ = 1;
    std::uint64_t rr_next_ = 0;
};

}  // namespace camdn::serve

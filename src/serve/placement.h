// Placement planner: decides which models are resident (and replicated)
// on which SoCs of the fleet, constrained by each SoC's NPU cache
// subspace.
//
// The page demand of a model on a given SoC comes from its offline
// mapping (the largest LWM candidate over all layers — the working set
// Algorithm 1 negotiates toward); the reuse fraction from reuse analysis
// weights how much a warm replica is actually worth to the router.
// Planning is greedy and deterministic: every model gets one home first
// (highest traffic x footprint pressure placed on the roomiest SoC), then
// the hottest models are replicated while capacity allows.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/cluster.h"

namespace camdn::serve {

struct placement {
    /// resident[s] — catalog indices resident on SoC s, in planning order.
    std::vector<std::vector<std::uint32_t>> resident;
    /// hosts[m] — SoC indices hosting catalog model m, ascending.
    std::vector<std::vector<std::uint32_t>> hosts;
    /// footprint_pages[s][m] — peak cache-page demand of model m on SoC s.
    std::vector<std::vector<std::uint32_t>> footprint_pages;
    /// reused_fraction[s][m] — fraction of model m's bytes with reuse on
    /// SoC s (1 - single_use_fraction from reuse analysis).
    std::vector<std::vector<double>> reused_fraction;
    /// capacity_pages[s] — allocatable NPU-subspace pages of SoC s.
    std::vector<std::uint32_t> capacity_pages;
    /// True when some model's home exceeded its SoC's free capacity (it is
    /// still placed — serving beats rejecting — but warmth will churn).
    bool oversubscribed = false;
};

/// Plans placement for `cfg` (deterministic; also warms the process
/// mapping registry for every (model, SoC) pair so routers can take a
/// lock-free sim::snapshot_mappings() afterwards).
placement plan_placement(const cluster_config& cfg);

}  // namespace camdn::serve

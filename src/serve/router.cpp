#include "serve/router.h"

#include <algorithm>

#include "sim/sweep.h"

namespace camdn::serve {

request_router::request_router(const cluster_config& cfg,
                               const placement& place)
    : cfg_(cfg), place_(place) {
    const std::size_t S = cfg.socs.size();
    const std::size_t M = cfg.models.size();

    socs_.resize(S);
    iso_.assign(S, std::vector<cycle_t>(M, 1));
    std::uint64_t sum = 0, n = 0;
    for (std::size_t s = 0; s < S; ++s) {
        socs_[s].server_free.assign(cfg.socs[s].slots, 0);
        const auto& iso =
            sim::cached_isolated_latencies(cfg.socs[s].soc, cfg.models);
        for (std::size_t m = 0; m < M; ++m) {
            iso_[s][m] = std::max<cycle_t>(iso.at(cfg.models[m]->abbr), 1);
            sum += iso_[s][m];
            n += 1;
        }
    }
    mean_service_ = n ? std::max<cycle_t>(sum / n, 1) : 1;
}

cycle_t request_router::est_service(std::uint32_t s,
                                    std::uint32_t model_idx) const {
    return iso_[s][model_idx];
}

bool request_router::warm(std::uint32_t s, std::uint32_t model_idx) const {
    const auto& lru = socs_[s].warm_lru;
    return std::find(lru.begin(), lru.end(), model_idx) != lru.end();
}

cycle_t request_router::backlog(std::uint32_t s, cycle_t at) const {
    cycle_t work = 0;
    for (cycle_t free : socs_[s].server_free)
        if (free > at) work += free - at;
    // Fleet feedback inflates the apparent backlog of pressured SoCs.
    if (load_weights_ != nullptr && s < load_weights_->size())
        work = static_cast<cycle_t>(static_cast<double>(work) *
                                    (*load_weights_)[s]);
    return work;
}

std::uint32_t request_router::pick_round_robin(
    const std::vector<std::uint32_t>& hosts) {
    return hosts[rr_next_++ % hosts.size()];
}

std::uint32_t request_router::pick_least_outstanding(
    const std::vector<std::uint32_t>& hosts, cycle_t at) const {
    std::uint32_t best = hosts.front();
    cycle_t best_work = backlog(best, at);
    for (std::size_t i = 1; i < hosts.size(); ++i) {
        const cycle_t work = backlog(hosts[i], at);
        if (work < best_work) {
            best = hosts[i];
            best_work = work;
        }
    }
    return best;
}

std::uint32_t request_router::pick_cache_affinity(
    const std::vector<std::uint32_t>& hosts, cycle_t at,
    std::uint32_t model_idx) const {
    const std::uint32_t balanced = pick_least_outstanding(hosts, at);

    // Warmth is only worth chasing for models whose bytes actually see
    // reuse; pure streaming models (high single-use fraction) keep nothing
    // in the cache worth returning to.
    std::uint32_t best_warm = hosts.size();
    cycle_t best_warm_work = 0;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        const std::uint32_t s = hosts[i];
        if (!warm(s, model_idx)) continue;
        if (place_.reused_fraction[s][model_idx] < 0.05) continue;
        const cycle_t work = backlog(s, at);
        if (best_warm == hosts.size() || work < best_warm_work) {
            best_warm = s;
            best_warm_work = work;
        }
    }
    if (best_warm == hosts.size()) return balanced;

    // Stickiness is bounded: once the warm host's backlog exceeds the
    // fleet minimum by more than affinity_imbalance mean service times,
    // load wins over warmth.
    const cycle_t slack = static_cast<cycle_t>(
        std::max(cfg_.affinity_imbalance, 0.0) *
        static_cast<double>(mean_service_));
    if (best_warm_work > backlog(balanced, at) + slack) return balanced;
    return best_warm;
}

void request_router::commit(std::uint32_t s, cycle_t at,
                            std::uint32_t model_idx) {
    // Occupy the earliest-free analytical server slot.
    auto& free = socs_[s].server_free;
    auto slot = std::min_element(free.begin(), free.end());
    *slot = std::max(at, *slot) + iso_[s][model_idx];

    // Touch the warm set: the model's working set (the offline mapping's
    // peak page demand, precomputed by the placement planner) displaces
    // the least recently served residents once the SoC's page pool is
    // over-committed.
    const std::uint32_t pages = place_.footprint_pages[s][model_idx];

    auto& lru = socs_[s].warm_lru;
    auto it = std::find(lru.begin(), lru.end(), model_idx);
    if (it != lru.end()) {
        lru.erase(it);
    } else {
        socs_[s].warm_pages += pages;
    }
    lru.insert(lru.begin(), model_idx);
    while (socs_[s].warm_pages > place_.capacity_pages[s] && lru.size() > 1) {
        const std::uint32_t victim = lru.back();
        lru.pop_back();
        socs_[s].warm_pages -=
            std::min(socs_[s].warm_pages, place_.footprint_pages[s][victim]);
    }
}

std::int32_t request_router::route(cycle_t at, std::uint32_t model_idx) {
    const auto& hosts = place_.hosts[model_idx];
    if (hosts.empty()) return -1;

    std::uint32_t s = hosts.front();
    if (hosts.size() > 1) {
        switch (cfg_.router) {
            case route_policy::round_robin:
                s = pick_round_robin(hosts);
                break;
            case route_policy::least_outstanding:
                s = pick_least_outstanding(hosts, at);
                break;
            case route_policy::cache_affinity:
                s = pick_cache_affinity(hosts, at, model_idx);
                break;
        }
    }
    commit(s, at, model_idx);
    return static_cast<std::int32_t>(s);
}

}  // namespace camdn::serve

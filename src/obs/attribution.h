// Per-request critical-path attribution and cross-tenant interference
// accounting.
//
// A latency_attributor decomposes every completed inference's end-to-end
// latency into six exclusive simulated-cycle components that sum
// *bit-exactly* to (end - arrival):
//
//   queue_wait       admission queue + free-slot wait (arrival -> started)
//   page_wait        Algorithm-1 page-negotiation retry wait
//   compute          pure MAC-array cycles (sum of per-tile compute)
//   dram_contention  DRAM bank/bus/regulation delay beyond isolated service
//   cache_penalty    shared-cache slice contention + transparent-miss fills
//   dma_stall        residual transfer time the double buffer failed to
//                    hide (the DMA gate between load_done and compute)
//
// The decomposition is a timeline partition: [started, end] tiles exactly
// into layer spans plus negotiation waits (the typed-event engine fires
// every layer's completion sink at the final transfer/compute instant), and
// each layer span splits into compute plus stall. The stall is then
// attributed by a deterministic waterfall: raw DRAM waits first (capped by
// the stall), raw cache waits next (capped by the remainder), and whatever
// is left is the DMA double-buffer gate. The caps matter: raw waits are
// measured per memory access and can overlap inside one double-buffered
// span, so they bound — never exceed — the observed stall.
//
// Interference matrix: M[i][j] = cycles tenant i lost while tenant j held
// the contended resource (cache pages during negotiation, DRAM bank/bus
// slots, cache slices and victim lines). Row i sums bit-exactly to tenant
// i's page_wait + dram_contention + cache_penalty + dma_stall: exact raw
// charges (page waits) are apportioned over the current page holders, and
// capped components are scaled from the per-holder raws by a
// difference-of-prefixes integer rule (sum-preserving, deterministic,
// order-stable). The dma_stall residual lands on the diagonal — it is the
// tenant's own transfer volume, not another tenant's fault.
//
// Same zero-overhead-off contract as the rest of obs/: the attributor is a
// nullable borrowed pointer on obs::run_observer, every hook in the
// machine is a single null check, nothing it touches enters fingerprints
// or snapshot bytes, and an attached run's results are bit-identical to a
// bare run. Attribution state is intentionally *not* serialized: an
// inference carried across a snapshot boundary re-anchors and is simply
// not attributed (its completion record is unaffected).
//
// Depends only on common/ so every layer (dram, cache, npu, sim, runtime,
// serve) can include it without an upward dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace camdn::obs {

class metrics_registry;

/// The six exclusive latency components, simulated cycles.
struct attribution_components {
    std::uint64_t queue_wait = 0;
    std::uint64_t page_wait = 0;
    std::uint64_t dma_stall = 0;
    std::uint64_t dram_contention = 0;
    std::uint64_t cache_penalty = 0;
    std::uint64_t compute = 0;

    std::uint64_t sum() const {
        return queue_wait + page_wait + dma_stall + dram_contention +
               cache_penalty + compute;
    }
    /// The four components that can be charged to resource holders (the
    /// interference-matrix row total excludes queue_wait and compute).
    std::uint64_t stall_sum() const {
        return page_wait + dma_stall + dram_contention + cache_penalty;
    }
    void accumulate(const attribution_components& o) {
        queue_wait += o.queue_wait;
        page_wait += o.page_wait;
        dma_stall += o.dma_stall;
        dram_contention += o.dram_contention;
        cache_penalty += o.cache_penalty;
        compute += o.compute;
    }
};

/// Component names in struct order — shared by every exporter (metrics
/// keys, JSONL rows, trace counter tracks, camdn_report columns).
inline constexpr const char* attribution_component_names[6] = {
    "queue_wait", "page_wait", "dma_stall",
    "dram_contention", "cache_penalty", "compute"};

inline std::uint64_t attribution_component(const attribution_components& c,
                                           std::size_t i) {
    switch (i) {
        case 0: return c.queue_wait;
        case 1: return c.page_wait;
        case 2: return c.dma_stall;
        case 3: return c.dram_contention;
        case 4: return c.cache_penalty;
        default: return c.compute;
    }
}

/// Of the four blameable stall components, the name of the largest
/// ("none" when the request never stalled).
const char* top_stall_component(const attribution_components& c);

/// One fully attributed inference. comp.sum() == end - arrival, enforced
/// by tests/test_attribution.cpp across every covered scenario.
struct inference_attribution {
    task_id slot = no_task;
    std::uint32_t tenant = 0;  ///< index into tenant_names()
    cycle_t arrival = 0;
    cycle_t end = 0;
    attribution_components comp;
};

/// Per-tenant rollup across completed inferences.
struct tenant_attribution {
    std::uint64_t completed = 0;
    /// Sum of (end - arrival) over attributed inferences; equals
    /// comp.sum() bit-exactly.
    std::uint64_t latency_cycles = 0;
    attribution_components comp;
};

class latency_attributor {
public:
    // ---- wiring (scheduler / engine / DMA / DRAM / cache hooks) ----

    /// Interns a tenant (model abbreviation) and returns its index.
    std::uint32_t intern_tenant(const std::string& abbr);

    /// A slot was dispatched an inference of `abbr`. Resets the slot's
    /// accumulators; charges before the matching on_inference_start are
    /// dropped.
    void on_dispatch(task_id slot, const std::string& abbr);
    /// The dispatched inference left the queue and issued its first layer.
    void on_inference_start(task_id slot, cycle_t arrival, cycle_t started);
    /// One Algorithm-1 negotiation wait interval of `cycles`.
    /// `held_pages[s]` is the page count slot s currently holds; the wait
    /// is apportioned over the other slots' holdings (all to self when no
    /// other slot holds pages).
    void on_page_wait(task_id victim, std::uint64_t cycles,
                      const std::uint32_t* held_pages, std::size_t nslots);
    /// A layer retired on `slot`: wall span and pure-compute cycles.
    void on_layer_retired(task_id slot, std::uint64_t span,
                          std::uint64_t compute);
    /// Raw DRAM wait (bank busy, bus busy or regulation throttle) of
    /// `cycles` suffered by `victim` behind `holder` (no_task / self =
    /// self-inflicted).
    void on_dram_wait(task_id victim, task_id holder, std::uint64_t cycles);
    /// Raw shared-cache wait (slice occupancy or transparent-miss fill)
    /// suffered by `victim` behind `holder`.
    void on_cache_wait(task_id victim, task_id holder, std::uint64_t cycles);
    /// Diagnostic only (not one of the six components): cycles a DMA
    /// flight spent gated on its in-flight window.
    void on_dma_window_wait(task_id slot, std::uint64_t cycles);
    /// The inference on `slot` completed at `end`: finalize the waterfall
    /// split, fold into tenant totals and the interference matrix.
    void on_inference_end(task_id slot, cycle_t end);

    // ---- results ----

    /// Keep per-inference records (default on; fleets folding many SoCs
    /// may turn it off to bound memory).
    void set_keep_records(bool on) { keep_records_ = on; }

    const std::vector<inference_attribution>& records() const {
        return records_;
    }
    const std::vector<std::string>& tenant_names() const { return names_; }
    const std::vector<tenant_attribution>& tenants() const { return tenants_; }
    /// Interference cycles tenant i lost to tenant j (0 when untracked).
    std::uint64_t interference(std::uint32_t i, std::uint32_t j) const;
    /// Row sum of the interference matrix for tenant i — bit-equal to
    /// tenants()[i].comp.stall_sum().
    std::uint64_t interference_row_sum(std::uint32_t i) const;
    /// Fleet-wide totals across all tenants.
    attribution_components totals() const;
    std::uint64_t dma_window_wait_cycles() const { return dma_window_wait_; }

    /// Merges another attributor (tenants matched by name). Fleet runs
    /// fold per-(round, SoC) attributors into a master at round barriers,
    /// in fleet order — deterministic across sweep-pool widths.
    void absorb(const latency_attributor& src);

    /// Writes `attr.<tenant>.<component>` counters, per-tenant
    /// `attr.<tenant>.{completed,latency_cycles}` and the non-zero matrix
    /// entries `attr.interference.<victim>.<holder>` into `m` (set
    /// semantics: totals, idempotent).
    void export_metrics(metrics_registry& m) const;

    /// One JSONL row (`{"type":"attribution",...}`) with cumulative
    /// component totals — emitted by the scheduler at epoch cuts and by
    /// fleet runs at round barriers.
    std::string jsonl_row(std::uint32_t soc, std::uint64_t epoch) const;

private:
    struct slot_state {
        bool active = false;
        std::uint32_t tenant = 0;
        cycle_t arrival = 0;
        cycle_t started = 0;
        std::uint64_t page_wait = 0;
        std::uint64_t span = 0;
        std::uint64_t compute = 0;
        std::uint64_t dram_raw = 0;
        std::uint64_t cache_raw = 0;
        // Per-holder-tenant raw charges; each sums to the matching total.
        std::vector<std::uint64_t> page_by;
        std::vector<std::uint64_t> dram_by;
        std::vector<std::uint64_t> cache_by;
    };

    slot_state* state_of(task_id slot);
    std::uint32_t holder_tenant(const slot_state& victim, task_id holder);
    void charge(std::vector<std::uint64_t>& by, std::uint32_t tenant,
                std::uint64_t cycles);
    std::uint64_t& matrix_at(std::uint32_t i, std::uint32_t j);

    bool keep_records_ = true;
    std::vector<slot_state> slots_;
    std::vector<std::string> names_;
    std::map<std::string, std::uint32_t> by_name_;
    std::vector<tenant_attribution> tenants_;
    /// Row-major tenant-pair matrix, grown on demand.
    std::vector<std::vector<std::uint64_t>> matrix_;
    std::vector<inference_attribution> records_;
    std::uint64_t dma_window_wait_ = 0;
};

}  // namespace camdn::obs

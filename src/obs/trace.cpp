#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace camdn::obs {

trace_recorder::trace_recorder(std::uint32_t pid, std::size_t max_events)
    : pid_(pid), max_events_(max_events == 0 ? 1 : max_events) {
    events_.reserve(256);
}

const char* trace_recorder::intern(const std::string& name) {
    const auto it = interned_.find(name);
    if (it != interned_.end()) return it->second;
    strings_.push_back(name);
    const char* p = strings_.back().c_str();
    interned_.emplace(name, p);
    return p;
}

void trace_recorder::absorb(const trace_recorder& src) {
    // The source's name/cat pointers are interned (stable and few), so a
    // pointer-keyed memo turns the per-event string re-intern into a
    // short linear scan — the fleet folds millions of events per run.
    std::vector<std::pair<const char*, const char*>> memo;
    const auto reintern = [&](const char* s) {
        for (const auto& [from, to] : memo)
            if (from == s) return to;
        const char* to = intern(s);
        memo.emplace_back(s, to);
        return to;
    };
    for (const trace_event& e : src.events_) {
        if (events_.size() >= max_events_) {
            ++dropped_;
            continue;
        }
        trace_event copy = e;
        copy.name = reintern(e.name);
        copy.cat = reintern(e.cat);
        events_.push_back(copy);
    }
    dropped_ += src.dropped_;
}

std::vector<trace_event> sorted_for_export(std::vector<trace_event> events) {
    // Stable (pid, tid, ts) order via a packed-key index sort: sorting
    // small keys beats moving 48-byte events through a comparison sort,
    // and breaking ties on the recording index makes a plain sort stable.
    struct key_idx {
        std::uint64_t hi;  // pid:32 | tid:32
        std::uint64_t lo;  // ts
        std::uint32_t idx;
        bool operator<(const key_idx& o) const {
            if (hi != o.hi) return hi < o.hi;
            if (lo != o.lo) return lo < o.lo;
            return idx < o.idx;
        }
    };
    std::vector<key_idx> keys(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        keys[i].hi = (static_cast<std::uint64_t>(events[i].pid) << 32) |
                     events[i].tid;
        keys[i].lo = events[i].ts;
        keys[i].idx = static_cast<std::uint32_t>(i);
    }
    std::sort(keys.begin(), keys.end());
    std::vector<trace_event> sorted(events.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        sorted[i] = events[keys[i].idx];
    return sorted;
}

namespace {

void put_json_string(std::ostream& out, const char* s) {
    out << '"';
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            out << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof esc, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out << esc;
        } else
            out << c;
    }
    out << '"';
}

/// Buffered row writer for the event loop — the export's hot path. Each
/// row is assembled with direct decimal formatting into one string that
/// flushes to the stream in ~1 MiB chunks; a million-event trace costs a
/// handful of stream writes instead of a dozen operator<< calls per event.
/// Byte-identical to the ostream path it replaces.
class row_buffer {
public:
    explicit row_buffer(std::ostream& out) : out_(out) { buf_.reserve(cap_); }
    ~row_buffer() { flush(); }

    void lit(const char* s) { buf_.append(s); }
    void ch(char c) { buf_.push_back(c); }
    void u64(std::uint64_t v) {
        char tmp[20];
        int n = 0;
        do {
            tmp[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n != 0) buf_.push_back(tmp[--n]);
    }
    /// Cycles of the 1 GHz simulation clock -> microseconds with fixed
    /// three decimal places (cycle precision), deterministic everywhere.
    void us(cycle_t cycles) {
        u64(cycles / 1000);
        const std::uint64_t frac = cycles % 1000;
        buf_.push_back('.');
        buf_.push_back(static_cast<char>('0' + frac / 100));
        buf_.push_back(static_cast<char>('0' + frac / 10 % 10));
        buf_.push_back(static_cast<char>('0' + frac % 10));
    }
    /// Interned names are overwhelmingly plain identifiers; escape only
    /// when a scan finds a character that needs it.
    void str(const char* s) {
        buf_.push_back('"');
        const char* p = s;
        for (; *p; ++p) {
            const unsigned char c = static_cast<unsigned char>(*p);
            if (c == '"' || c == '\\' || c < 0x20) break;
        }
        if (*p == '\0') {
            buf_.append(s, static_cast<std::size_t>(p - s));
        } else {
            for (; *s; ++s) {
                const char c = *s;
                if (c == '"' || c == '\\') {
                    buf_.push_back('\\');
                    buf_.push_back(c);
                } else if (static_cast<unsigned char>(c) < 0x20) {
                    char esc[8];
                    std::snprintf(
                        esc, sizeof esc, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
                    buf_.append(esc);
                } else {
                    buf_.push_back(c);
                }
            }
        }
        buf_.push_back('"');
    }
    void maybe_flush() {
        if (buf_.size() >= cap_ - 512) flush();
    }

private:
    void flush() {
        if (!buf_.empty()) {
            out_.write(buf_.data(),
                       static_cast<std::streamsize>(buf_.size()));
            buf_.clear();
        }
    }

    static constexpr std::size_t cap_ = std::size_t{1} << 20;
    std::ostream& out_;
    std::string buf_;
};

}  // namespace

void write_chrome_trace(
    std::ostream& out, const std::vector<trace_event>& events,
    const std::vector<std::pair<std::uint32_t, std::string>>& process_names) {
    const std::vector<trace_event> sorted = sorted_for_export(events);

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first) out << ",\n";
        first = false;
    };

    // Metadata: name every process and thread that appears.
    std::map<std::uint32_t, std::string> pname;
    for (const auto& [pid, name] : process_names) pname[pid] = name;
    // `sorted` groups events by pid then tid, so new pids/tids only show
    // up at group boundaries — no per-event map lookups.
    std::map<std::uint32_t, std::vector<std::uint32_t>> threads;
    std::vector<std::uint32_t>* tids = nullptr;
    std::uint32_t last_pid = 0;
    for (const trace_event& e : sorted) {
        if (tids == nullptr || e.pid != last_pid) {
            tids = &threads[e.pid];
            last_pid = e.pid;
            if (!pname.count(e.pid))
                pname[e.pid] = "soc" + std::to_string(e.pid);
        }
        if (tids->empty() || tids->back() != e.tid) tids->push_back(e.tid);
    }
    for (const auto& [pid, name] : pname) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":" << pid
            << ",\"name\":\"process_name\",\"args\":{\"name\":";
        put_json_string(out, name.c_str());
        out << "}}";
    }
    for (const auto& [pid, tids] : threads) {
        for (const std::uint32_t tid : tids) {
            sep();
            const std::string tname = tid == trace_tid_untracked
                                          ? "untracked"
                                          : "slot " + std::to_string(tid);
            out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"name\":\"thread_name\",\"args\":{\"name\":";
            put_json_string(out, tname.c_str());
            out << "}}";
        }
    }

    row_buffer rb(out);
    for (const trace_event& e : sorted) {
        if (!first) rb.lit(",\n");
        first = false;
        rb.lit("{\"ph\":\"");
        rb.ch(e.phase);
        rb.lit("\",\"name\":");
        rb.str(e.name);
        rb.lit(",\"cat\":");
        rb.str(e.cat);
        rb.lit(",\"pid\":");
        rb.u64(e.pid);
        rb.lit(",\"tid\":");
        rb.u64(e.tid);
        rb.lit(",\"ts\":");
        rb.us(e.ts);
        if (e.phase == 'X') {
            rb.lit(",\"dur\":");
            rb.us(e.dur);
        }
        if (e.has_arg) {
            rb.lit(",\"args\":{\"v\":");
            rb.u64(e.arg);
            rb.ch('}');
        }
        rb.ch('}');
        rb.maybe_flush();
    }
    rb.lit("]}\n");
}

}  // namespace camdn::obs

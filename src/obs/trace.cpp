#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace camdn::obs {

trace_recorder::trace_recorder(std::uint32_t pid, std::size_t max_events)
    : pid_(pid), max_events_(max_events == 0 ? 1 : max_events) {
    events_.reserve(256);
}

const char* trace_recorder::intern(const std::string& name) {
    const auto it = interned_.find(name);
    if (it != interned_.end()) return it->second;
    strings_.push_back(name);
    const char* p = strings_.back().c_str();
    interned_.emplace(name, p);
    return p;
}

void trace_recorder::absorb(const trace_recorder& src) {
    for (const trace_event& e : src.events_) {
        trace_event copy = e;
        copy.name = intern(e.name);
        copy.cat = intern(e.cat);
        push(copy);
    }
    dropped_ += src.dropped_;
}

std::vector<trace_event> sorted_for_export(std::vector<trace_event> events) {
    std::stable_sort(events.begin(), events.end(),
                     [](const trace_event& a, const trace_event& b) {
                         if (a.pid != b.pid) return a.pid < b.pid;
                         if (a.tid != b.tid) return a.tid < b.tid;
                         return a.ts < b.ts;
                     });
    return events;
}

namespace {

/// Cycles of the 1 GHz simulation clock -> microseconds with fixed three
/// decimal places (cycle precision), deterministic across platforms.
void put_us(std::ostream& out, cycle_t cycles) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(cycles / 1000),
                  static_cast<unsigned long long>(cycles % 1000));
    out << buf;
}

void put_json_string(std::ostream& out, const char* s) {
    out << '"';
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            out << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof esc, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out << esc;
        } else
            out << c;
    }
    out << '"';
}

}  // namespace

void write_chrome_trace(
    std::ostream& out, const std::vector<trace_event>& events,
    const std::vector<std::pair<std::uint32_t, std::string>>& process_names) {
    const std::vector<trace_event> sorted = sorted_for_export(events);

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first) out << ",\n";
        first = false;
    };

    // Metadata: name every process and thread that appears.
    std::map<std::uint32_t, std::string> pname;
    for (const auto& [pid, name] : process_names) pname[pid] = name;
    std::map<std::uint32_t, std::vector<std::uint32_t>> threads;
    for (const trace_event& e : sorted) {
        auto& t = threads[e.pid];
        if (std::find(t.begin(), t.end(), e.tid) == t.end()) t.push_back(e.tid);
        if (!pname.count(e.pid))
            pname[e.pid] = "soc" + std::to_string(e.pid);
    }
    for (const auto& [pid, name] : pname) {
        sep();
        out << "{\"ph\":\"M\",\"pid\":" << pid
            << ",\"name\":\"process_name\",\"args\":{\"name\":";
        put_json_string(out, name.c_str());
        out << "}}";
    }
    for (const auto& [pid, tids] : threads) {
        for (const std::uint32_t tid : tids) {
            sep();
            const std::string tname = tid == trace_tid_untracked
                                          ? "untracked"
                                          : "slot " + std::to_string(tid);
            out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"name\":\"thread_name\",\"args\":{\"name\":";
            put_json_string(out, tname.c_str());
            out << "}}";
        }
    }

    for (const trace_event& e : sorted) {
        sep();
        out << "{\"ph\":\"" << e.phase << "\",\"name\":";
        put_json_string(out, e.name);
        out << ",\"cat\":";
        put_json_string(out, e.cat);
        out << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":";
        put_us(out, e.ts);
        if (e.phase == 'X') {
            out << ",\"dur\":";
            put_us(out, e.dur);
        }
        if (e.has_arg) out << ",\"args\":{\"v\":" << e.arg << "}";
        out << "}";
    }
    out << "]}\n";
}

}  // namespace camdn::obs

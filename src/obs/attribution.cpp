#include "obs/attribution.h"

#include <cstdio>

#include "obs/metrics.h"

namespace camdn::obs {

const char* top_stall_component(const attribution_components& c) {
    const char* name = "none";
    std::uint64_t best = 0;
    // Struct order breaks ties deterministically (page_wait first).
    const std::uint64_t vals[4] = {c.page_wait, c.dma_stall,
                                   c.dram_contention, c.cache_penalty};
    const char* names[4] = {"page_wait", "dma_stall", "dram_contention",
                            "cache_penalty"};
    for (int i = 0; i < 4; ++i)
        if (vals[i] > best) {
            best = vals[i];
            name = names[i];
        }
    return name;
}

std::uint32_t latency_attributor::intern_tenant(const std::string& abbr) {
    const auto it = by_name_.find(abbr);
    if (it != by_name_.end()) return it->second;
    const auto idx = static_cast<std::uint32_t>(names_.size());
    names_.push_back(abbr);
    by_name_.emplace(abbr, idx);
    tenants_.emplace_back();
    return idx;
}

latency_attributor::slot_state* latency_attributor::state_of(task_id slot) {
    if (slot < 0) return nullptr;
    const auto s = static_cast<std::size_t>(slot);
    if (s >= slots_.size()) return nullptr;
    return &slots_[s];
}

std::uint32_t latency_attributor::holder_tenant(const slot_state& victim,
                                                task_id holder) {
    const slot_state* h = state_of(holder);
    return (h != nullptr && h->active) ? h->tenant : victim.tenant;
}

void latency_attributor::charge(std::vector<std::uint64_t>& by,
                                std::uint32_t tenant, std::uint64_t cycles) {
    if (by.size() <= tenant) by.resize(names_.size(), 0);
    by[tenant] += cycles;
}

std::uint64_t& latency_attributor::matrix_at(std::uint32_t i,
                                             std::uint32_t j) {
    if (matrix_.size() < names_.size()) matrix_.resize(names_.size());
    auto& row = matrix_[i];
    if (row.size() < names_.size()) row.resize(names_.size(), 0);
    return row[j];
}

void latency_attributor::on_dispatch(task_id slot, const std::string& abbr) {
    if (slot < 0) return;
    const auto s = static_cast<std::size_t>(slot);
    if (s >= slots_.size()) slots_.resize(s + 1);
    slot_state& st = slots_[s];
    st = slot_state{};  // drops vectors back to empty — resized on charge
    st.tenant = intern_tenant(abbr);
}

void latency_attributor::on_inference_start(task_id slot, cycle_t arrival,
                                            cycle_t started) {
    slot_state* st = state_of(slot);
    if (st == nullptr) return;
    st->active = true;
    st->arrival = arrival;
    st->started = started;
}

void latency_attributor::on_page_wait(task_id victim, std::uint64_t cycles,
                                      const std::uint32_t* held_pages,
                                      std::size_t nslots) {
    slot_state* st = state_of(victim);
    if (st == nullptr || !st->active || cycles == 0) return;
    st->page_wait += cycles;

    // Apportion the wait over the *other* slots' current page holdings by
    // the difference-of-prefixes rule: holder k gets
    //   cycles*prefix(k)/total - cycles*prefix(k-1)/total,
    // which sums to `cycles` exactly and is deterministic in slot order.
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < nslots; ++s)
        if (static_cast<task_id>(s) != victim) total += held_pages[s];
    if (total == 0) {
        charge(st->page_by, st->tenant, cycles);
        return;
    }
    std::uint64_t prefix = 0, prev_cut = 0;
    for (std::size_t s = 0; s < nslots; ++s) {
        if (static_cast<task_id>(s) == victim || held_pages[s] == 0) continue;
        prefix += held_pages[s];
        const std::uint64_t cut = cycles * prefix / total;
        const std::uint64_t share = cut - prev_cut;
        prev_cut = cut;
        if (share == 0) continue;
        charge(st->page_by, holder_tenant(*st, static_cast<task_id>(s)),
               share);
    }
}

void latency_attributor::on_layer_retired(task_id slot, std::uint64_t span,
                                          std::uint64_t compute) {
    slot_state* st = state_of(slot);
    if (st == nullptr || !st->active) return;
    st->span += span;
    st->compute += compute < span ? compute : span;
}

void latency_attributor::on_dram_wait(task_id victim, task_id holder,
                                      std::uint64_t cycles) {
    slot_state* st = state_of(victim);
    if (st == nullptr || !st->active || cycles == 0) return;
    st->dram_raw += cycles;
    charge(st->dram_by, holder_tenant(*st, holder), cycles);
}

void latency_attributor::on_cache_wait(task_id victim, task_id holder,
                                       std::uint64_t cycles) {
    slot_state* st = state_of(victim);
    if (st == nullptr || !st->active || cycles == 0) return;
    st->cache_raw += cycles;
    charge(st->cache_by, holder_tenant(*st, holder), cycles);
}

void latency_attributor::on_dma_window_wait(task_id slot,
                                            std::uint64_t cycles) {
    if (state_of(slot) != nullptr) dma_window_wait_ += cycles;
}

namespace {

/// Scales per-holder raw charges (summing to `raw_total`) down to the
/// capped component total by the same sum-preserving prefix rule used for
/// page waits. No-op when raw_total == 0.
void scale_into_row(const std::vector<std::uint64_t>& by,
                    std::uint64_t raw_total, std::uint64_t capped,
                    std::vector<std::uint64_t>& row) {
    if (raw_total == 0 || capped == 0) return;
    std::uint64_t prefix = 0, prev_cut = 0;
    for (std::size_t j = 0; j < by.size(); ++j) {
        if (by[j] == 0) continue;
        prefix += by[j];
        const std::uint64_t cut = capped * prefix / raw_total;
        row[j] += cut - prev_cut;
        prev_cut = cut;
    }
}

}  // namespace

void latency_attributor::on_inference_end(task_id slot, cycle_t end) {
    slot_state* st = state_of(slot);
    if (st == nullptr || !st->active) return;

    attribution_components comp;
    comp.queue_wait = st->started - st->arrival;
    comp.page_wait = st->page_wait;
    comp.compute = st->compute;
    const std::uint64_t stall = st->span - st->compute;
    // Waterfall: raw DRAM waits first, raw cache waits on the remainder,
    // residual = the DMA double-buffer gate. The caps keep components
    // exclusive even though raw waits overlap inside double-buffered spans.
    comp.dram_contention = st->dram_raw < stall ? st->dram_raw : stall;
    const std::uint64_t after_dram = stall - comp.dram_contention;
    comp.cache_penalty =
        st->cache_raw < after_dram ? st->cache_raw : after_dram;
    comp.dma_stall = after_dram - comp.cache_penalty;

    const std::uint32_t i = st->tenant;
    // Interference row: exact page-wait charges, scaled DRAM/cache charges,
    // residual dma_stall on the diagonal. Row sum == comp.stall_sum().
    if (matrix_.size() < names_.size()) matrix_.resize(names_.size());
    auto& row_store = matrix_[i];
    if (row_store.size() < names_.size()) row_store.resize(names_.size(), 0);
    for (std::size_t j = 0; j < st->page_by.size(); ++j)
        row_store[j] += st->page_by[j];
    scale_into_row(st->dram_by, st->dram_raw, comp.dram_contention,
                   row_store);
    scale_into_row(st->cache_by, st->cache_raw, comp.cache_penalty,
                   row_store);
    row_store[i] += comp.dma_stall;

    tenant_attribution& t = tenants_[i];
    t.completed += 1;
    t.latency_cycles += end - st->arrival;
    t.comp.accumulate(comp);

    if (keep_records_)
        records_.push_back({slot, i, st->arrival, end, comp});

    *st = slot_state{};
}

std::uint64_t latency_attributor::interference(std::uint32_t i,
                                               std::uint32_t j) const {
    if (i >= matrix_.size()) return 0;
    const auto& row = matrix_[i];
    return j < row.size() ? row[j] : 0;
}

std::uint64_t latency_attributor::interference_row_sum(
    std::uint32_t i) const {
    if (i >= matrix_.size()) return 0;
    std::uint64_t sum = 0;
    for (const auto v : matrix_[i]) sum += v;
    return sum;
}

attribution_components latency_attributor::totals() const {
    attribution_components total;
    for (const auto& t : tenants_) total.accumulate(t.comp);
    return total;
}

void latency_attributor::absorb(const latency_attributor& src) {
    std::vector<std::uint32_t> remap(src.names_.size());
    for (std::size_t i = 0; i < src.names_.size(); ++i)
        remap[i] = intern_tenant(src.names_[i]);
    for (std::size_t i = 0; i < src.tenants_.size(); ++i) {
        tenant_attribution& t = tenants_[remap[i]];
        t.completed += src.tenants_[i].completed;
        t.latency_cycles += src.tenants_[i].latency_cycles;
        t.comp.accumulate(src.tenants_[i].comp);
    }
    for (std::size_t i = 0; i < src.matrix_.size(); ++i)
        for (std::size_t j = 0; j < src.matrix_[i].size(); ++j)
            if (src.matrix_[i][j] != 0)
                matrix_at(remap[i], remap[j]) += src.matrix_[i][j];
    if (keep_records_)
        for (inference_attribution rec : src.records_) {
            rec.tenant = remap[rec.tenant];
            records_.push_back(rec);
        }
    dma_window_wait_ += src.dma_window_wait_;
}

void latency_attributor::export_metrics(metrics_registry& m) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
        const std::string prefix = "attr." + names_[i] + ".";
        m.set(prefix + "completed", tenants_[i].completed);
        m.set(prefix + "latency_cycles", tenants_[i].latency_cycles);
        for (std::size_t c = 0; c < 6; ++c)
            m.set(prefix + attribution_component_names[c] + "_cycles",
                  attribution_component(tenants_[i].comp, c));
    }
    for (std::size_t i = 0; i < matrix_.size(); ++i)
        for (std::size_t j = 0; j < matrix_[i].size(); ++j)
            if (matrix_[i][j] != 0)
                m.set("attr.interference." + names_[i] + "." + names_[j],
                      matrix_[i][j]);
    const attribution_components total = totals();
    for (std::size_t c = 0; c < 6; ++c)
        m.set(std::string("attr.total.") + attribution_component_names[c] +
                  "_cycles",
              attribution_component(total, c));
    m.set("attr.total.dma_window_wait_cycles", dma_window_wait_);
}

std::string latency_attributor::jsonl_row(std::uint32_t soc,
                                          std::uint64_t epoch) const {
    const attribution_components t = totals();
    std::uint64_t completed = 0;
    for (const auto& ten : tenants_) completed += ten.completed;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "{\"type\":\"attribution\",\"soc\":%u,\"epoch\":%llu,"
        "\"completed\":%llu,\"queue_wait\":%llu,\"page_wait\":%llu,"
        "\"dma_stall\":%llu,\"dram_contention\":%llu,"
        "\"cache_penalty\":%llu,\"compute\":%llu}",
        soc, static_cast<unsigned long long>(epoch),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(t.queue_wait),
        static_cast<unsigned long long>(t.page_wait),
        static_cast<unsigned long long>(t.dma_stall),
        static_cast<unsigned long long>(t.dram_contention),
        static_cast<unsigned long long>(t.cache_penalty),
        static_cast<unsigned long long>(t.compute));
    return buf;
}

}  // namespace camdn::obs

#include "obs/jsonl.h"

#include <cstdio>
#include <ostream>

namespace camdn::obs {

void jsonl_sink::row(const std::string& json) {
    ++rows_;
    if (out_ != nullptr) {
        *out_ << json << '\n';
        out_->flush();
    } else {
        buffered_.push_back(json);
    }
}

void jsonl_sink::drain_to(jsonl_sink& dst) {
    for (auto& r : buffered_) dst.row(std::move(r));
    rows_ -= buffered_.size();
    buffered_.clear();
}

void jsonl_sink::drain_to(std::ostream& out) {
    for (const auto& r : buffered_) out << r << '\n';
    rows_ -= buffered_.size();
    buffered_.clear();
}

std::string epoch_row_json(std::uint32_t soc, const adapt::epoch_snapshot& e) {
    std::uint64_t completions = 0, layers = 0, dma_bytes = 0, hits = 0,
                  misses = 0, wait = 0, timeouts = 0;
    for (const auto& t : e.tasks) {
        completions += t.completions;
        layers += t.layers_retired;
        dma_bytes += t.dma_bytes;
        hits += t.cache_hits;
        misses += t.cache_misses;
        wait += t.page_wait_cycles;
        timeouts += t.page_timeouts;
    }
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "{\"type\":\"epoch\",\"soc\":%u,\"epoch\":%llu,\"start_ms\":%.6f,"
        "\"end_ms\":%.6f,\"active_slots\":%u,\"completions\":%llu,"
        "\"layers\":%llu,\"dma_bytes\":%llu,\"cache_hits\":%llu,"
        "\"cache_misses\":%llu,\"page_wait_cycles\":%llu,"
        "\"page_timeouts\":%llu,\"dram_bytes\":%llu,"
        "\"bw_utilization\":%.6f,\"idle_pages\":%u}",
        soc, static_cast<unsigned long long>(e.index), cycles_to_ms(e.start),
        cycles_to_ms(e.end), e.active_slots,
        static_cast<unsigned long long>(completions),
        static_cast<unsigned long long>(layers),
        static_cast<unsigned long long>(dma_bytes),
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        static_cast<unsigned long long>(wait),
        static_cast<unsigned long long>(timeouts),
        static_cast<unsigned long long>(e.dram_bytes), e.bw_utilization,
        e.idle_pages);
    return buf;
}

}  // namespace camdn::obs

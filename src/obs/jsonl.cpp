#include "obs/jsonl.h"

#include <cstdio>
#include <ostream>

namespace camdn::obs {

void jsonl_sink::row(const std::string& json) {
    ++rows_;
    if (out_ != nullptr) {
        *out_ << json << '\n';
        out_->flush();
    } else {
        buffered_.push_back(json);
    }
}

void jsonl_sink::epoch_row(std::uint32_t soc, const adapt::epoch_snapshot& e) {
    ++rows_;
    if (out_ != nullptr) {
        *out_ << epoch_row_json(soc, e) << '\n';
        out_->flush();
        return;
    }
    // Defer the formatting: reserve the row's slot now (an empty string —
    // no allocation) so interleaved row() strings keep their order, and
    // fill it in at materialize() time.
    deferred_.emplace_back(buffered_.size(), make_epoch_record(soc, e));
    buffered_.emplace_back();
}

void jsonl_sink::materialize() {
    for (const auto& [at, rec] : deferred_) buffered_[at] = epoch_row_json(rec);
    deferred_.clear();
}

void jsonl_sink::drain_to(jsonl_sink& dst) {
    materialize();
    for (auto& r : buffered_) dst.row(std::move(r));
    rows_ -= buffered_.size();
    buffered_.clear();
}

void jsonl_sink::drain_to(std::ostream& out) {
    materialize();
    for (const auto& r : buffered_) out << r << '\n';
    rows_ -= buffered_.size();
    buffered_.clear();
}

epoch_record make_epoch_record(std::uint32_t soc,
                               const adapt::epoch_snapshot& e) {
    epoch_record r;
    r.soc = soc;
    r.index = e.index;
    r.start = e.start;
    r.end = e.end;
    r.active_slots = e.active_slots;
    for (const auto& t : e.tasks) {
        r.completions += t.completions;
        r.layers += t.layers_retired;
        r.dma_bytes += t.dma_bytes;
        r.cache_hits += t.cache_hits;
        r.cache_misses += t.cache_misses;
        r.page_wait_cycles += t.page_wait_cycles;
        r.page_timeouts += t.page_timeouts;
    }
    r.dram_bytes = e.dram_bytes;
    r.bw_utilization = e.bw_utilization;
    r.idle_pages = e.idle_pages;
    return r;
}

std::string epoch_row_json(const epoch_record& r) {
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "{\"type\":\"epoch\",\"soc\":%u,\"epoch\":%llu,\"start_ms\":%.6f,"
        "\"end_ms\":%.6f,\"active_slots\":%u,\"completions\":%llu,"
        "\"layers\":%llu,\"dma_bytes\":%llu,\"cache_hits\":%llu,"
        "\"cache_misses\":%llu,\"page_wait_cycles\":%llu,"
        "\"page_timeouts\":%llu,\"dram_bytes\":%llu,"
        "\"bw_utilization\":%.6f,\"idle_pages\":%u}",
        r.soc, static_cast<unsigned long long>(r.index), cycles_to_ms(r.start),
        cycles_to_ms(r.end), r.active_slots,
        static_cast<unsigned long long>(r.completions),
        static_cast<unsigned long long>(r.layers),
        static_cast<unsigned long long>(r.dma_bytes),
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses),
        static_cast<unsigned long long>(r.page_wait_cycles),
        static_cast<unsigned long long>(r.page_timeouts),
        static_cast<unsigned long long>(r.dram_bytes), r.bw_utilization,
        r.idle_pages);
    return buf;
}

std::string epoch_row_json(std::uint32_t soc, const adapt::epoch_snapshot& e) {
    return epoch_row_json(make_epoch_record(soc, e));
}

}  // namespace camdn::obs

#include "obs/profile.h"

#include <cstdio>
#include <ostream>

namespace camdn::obs {

const char* subsystem_name(subsystem s) {
    switch (s) {
        case subsystem::sched: return "sched";
        case subsystem::dma: return "dma";
        case subsystem::cache: return "cache";
        case subsystem::dram: return "dram";
        case subsystem::layer: return "layer";
        case subsystem::other: return "other";
    }
    return "?";
}

void profiler::write_json(std::ostream& out) const {
    out << "{";
    for (std::size_t i = 0; i < n_subsystems; ++i) {
        if (i) out << ",";
        char buf[64];
        std::snprintf(buf, sizeof buf, "\"%s\":%.6f",
                      subsystem_name(static_cast<subsystem>(i)),
                      static_cast<double>(ns_[i]) * 1e-9);
        out << buf;
    }
    out << "}";
}

}  // namespace camdn::obs

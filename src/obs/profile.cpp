#include "obs/profile.h"

#include <chrono>
#include <cstdio>
#include <ostream>

namespace camdn::obs {

double profile_clock::seconds_per_tick() {
#ifdef CAMDN_PROFILE_TSC
    // Calibrate the TSC against steady_clock once: spin ~2 ms and take the
    // ratio. Thread-safe via the magic-static; the spin runs once per
    // process, long enough that scheduler noise stays below ~0.1%.
    static const double s = [] {
        using sc = std::chrono::steady_clock;
        const sc::time_point t0 = sc::now();
        const std::uint64_t c0 = __rdtsc();
        sc::time_point t1;
        do {
            t1 = sc::now();
        } while (std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                     .count() < 2000);
        const std::uint64_t c1 = __rdtsc();
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        return c1 > c0 ? ns * 1e-9 / static_cast<double>(c1 - c0) : 1e-9;
    }();
    return s;
#else
    return 1e-9;  // ticks are steady_clock nanoseconds
#endif
}

const char* subsystem_name(subsystem s) {
    switch (s) {
        case subsystem::sched: return "sched";
        case subsystem::dma: return "dma";
        case subsystem::cache: return "cache";
        case subsystem::dram: return "dram";
        case subsystem::layer: return "layer";
        case subsystem::other: return "other";
    }
    return "?";
}

void profiler::write_json(std::ostream& out) const {
    out << "{";
    for (std::size_t i = 0; i < n_subsystems; ++i) {
        if (i) out << ",";
        char buf[64];
        std::snprintf(buf, sizeof buf, "\"%s\":%.6f",
                      subsystem_name(static_cast<subsystem>(i)),
                      seconds(static_cast<subsystem>(i)));
        out << buf;
    }
    out << "}";
}

}  // namespace camdn::obs

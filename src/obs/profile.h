// Host wall-time profiling scopes, attributed per subsystem.
//
// Answers "where does the simulator's own CPU time go" — the data the
// raw-speed program (bench/sim_throughput) needs to pick its next
// optimization target without an external profiler. Attribution is
// exclusive and stack-shaped: profile_scope(p, subsystem::dma) charges
// elapsed host time to `dma` until the scope ends or a nested scope
// switches to another subsystem (a DRAM burst inside a DMA chunk charges
// `dram`, not both). Scopes sit at burst/chunk/event granularity, not per
// line, so the overhead when profiling is on stays modest; when off every
// hook is a single null check.
//
// Timestamps come from the TSC on x86 (one `rdtsc` per scope boundary,
// several times cheaper than a steady_clock read) and fall back to
// steady_clock elsewhere; tick counts convert to seconds once at report
// time using a ratio calibrated against steady_clock at first use.
//
// Wall-clock readings are inherently nondeterministic, so profiler output
// must never flow into deterministic artifacts (traces, JSONL telemetry,
// snapshots) — it is reported separately (sim_throughput's obs_on phase,
// ad-hoc dumps).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define CAMDN_PROFILE_TSC 1
#endif

namespace camdn::obs {

/// The simulator subsystems host time is attributed to.
enum class subsystem : std::uint8_t {
    sched = 0,  ///< runtime::scheduler dispatch / negotiation / epochs
    dma = 1,    ///< npu::dma_engine chunk pump
    cache = 2,  ///< cache::shared_cache bursts (via dma transfer paths)
    dram = 3,   ///< dram::dram_system burst timing
    layer = 4,  ///< sim::layer_engine tile pipeline
    other = 5,  ///< everything outside an explicit scope
};
inline constexpr std::size_t n_subsystems = 6;

const char* subsystem_name(subsystem s);

/// Raw timestamp source: TSC ticks on x86 (invariant-TSC assumed, as on
/// every post-2008 part), steady_clock nanoseconds elsewhere.
/// seconds_per_tick() calibrates the tick period against steady_clock once
/// per process (first call; ~2 ms spin) and returns the cached ratio.
struct profile_clock {
    static std::uint64_t now() {
#ifdef CAMDN_PROFILE_TSC
        return __rdtsc();
#else
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
#endif
    }
    static double seconds_per_tick();
};

class profiler {
public:
    profiler() : mark_(profile_clock::now()) { ticks_.fill(0); }

    /// Charges the clock only at every Nth scope transition (1 = exact,
    /// the default). The subsystem bookkeeping stays exact either way —
    /// sampling just widens the interval each TSC read attributes to the
    /// subsystem that was active when it ends, trading per-transition
    /// cost (two TSC reads per scope) for statistical attribution. The
    /// raw-speed bench uses this on its obs_on runs: scopes sit on
    /// per-burst/per-chunk paths that fire tens of millions of times, and
    /// approximate shares are all the "what do I optimize next" question
    /// needs.
    void set_sample_every(std::uint32_t n) { sample_every_ = n == 0 ? 1 : n; }
    std::uint32_t sample_every() const { return sample_every_; }

    /// Switches attribution to `s`, charging the elapsed interval to the
    /// previously active subsystem. Returns the previous subsystem so a
    /// scope can restore it (stack discipline).
    subsystem enter(subsystem s) {
        const subsystem prev = current_;
        maybe_charge();
        current_ = s;
        return prev;
    }
    void leave(subsystem prev) {
        maybe_charge();
        current_ = prev;
    }

    double seconds(subsystem s) const {
        return static_cast<double>(ticks_[static_cast<std::size_t>(s)]) *
               profile_clock::seconds_per_tick();
    }
    double total_seconds() const {
        double t = 0.0;
        for (const auto n : ticks_) t += static_cast<double>(n);
        return t * profile_clock::seconds_per_tick();
    }

    /// {"sched":seconds,...} — every subsystem, fixed order.
    void write_json(std::ostream& out) const;

private:
    void maybe_charge() {
        if (++pending_ < sample_every_) return;
        pending_ = 0;
        charge();
    }
    void charge() {
        const std::uint64_t now = profile_clock::now();
        ticks_[static_cast<std::size_t>(current_)] +=
            static_cast<std::int64_t>(now - mark_);
        mark_ = now;
    }

    std::array<std::int64_t, n_subsystems> ticks_{};
    subsystem current_ = subsystem::other;
    std::uint32_t sample_every_ = 1;
    std::uint32_t pending_ = 0;
    std::uint64_t mark_;
};

/// RAII attribution scope; a null profiler makes it a no-op.
class profile_scope {
public:
    profile_scope(profiler* p, subsystem s) : p_(p) {
        if (p_ != nullptr) prev_ = p_->enter(s);
    }
    ~profile_scope() {
        if (p_ != nullptr) p_->leave(prev_);
    }
    profile_scope(const profile_scope&) = delete;
    profile_scope& operator=(const profile_scope&) = delete;

private:
    profiler* p_;
    subsystem prev_ = subsystem::other;
};

}  // namespace camdn::obs

// Host wall-time profiling scopes, attributed per subsystem.
//
// Answers "where does the simulator's own CPU time go" — the data the
// raw-speed program (bench/sim_throughput) needs to pick its next
// optimization target without an external profiler. Attribution is
// exclusive and stack-shaped: profile_scope(p, subsystem::dma) charges
// elapsed host time to `dma` until the scope ends or a nested scope
// switches to another subsystem (a DRAM burst inside a DMA chunk charges
// `dram`, not both). Scopes sit at burst/chunk/event granularity, not per
// line, so the overhead when profiling is on stays modest; when off every
// hook is a single null check.
//
// Wall-clock readings are inherently nondeterministic, so profiler output
// must never flow into deterministic artifacts (traces, JSONL telemetry,
// snapshots) — it is reported separately (sim_throughput's obs_on phase,
// ad-hoc dumps).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace camdn::obs {

/// The simulator subsystems host time is attributed to.
enum class subsystem : std::uint8_t {
    sched = 0,  ///< runtime::scheduler dispatch / negotiation / epochs
    dma = 1,    ///< npu::dma_engine chunk pump
    cache = 2,  ///< cache::shared_cache bursts (via dma transfer paths)
    dram = 3,   ///< dram::dram_system burst timing
    layer = 4,  ///< sim::layer_engine tile pipeline
    other = 5,  ///< everything outside an explicit scope
};
inline constexpr std::size_t n_subsystems = 6;

const char* subsystem_name(subsystem s);

class profiler {
public:
    profiler() : mark_(clock::now()) { ns_.fill(0); }

    /// Switches attribution to `s`, charging the elapsed interval to the
    /// previously active subsystem. Returns the previous subsystem so a
    /// scope can restore it (stack discipline).
    subsystem enter(subsystem s) {
        const subsystem prev = current_;
        charge();
        current_ = s;
        return prev;
    }
    void leave(subsystem prev) {
        charge();
        current_ = prev;
    }

    double seconds(subsystem s) const {
        return static_cast<double>(ns_[static_cast<std::size_t>(s)]) * 1e-9;
    }
    double total_seconds() const {
        double t = 0.0;
        for (const auto n : ns_) t += static_cast<double>(n) * 1e-9;
        return t;
    }

    /// {"sched":seconds,...} — every subsystem, fixed order.
    void write_json(std::ostream& out) const;

private:
    using clock = std::chrono::steady_clock;
    void charge() {
        const clock::time_point now = clock::now();
        ns_[static_cast<std::size_t>(current_)] +=
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark_)
                .count();
        mark_ = now;
    }

    std::array<std::int64_t, n_subsystems> ns_{};
    subsystem current_ = subsystem::other;
    clock::time_point mark_;
};

/// RAII attribution scope; a null profiler makes it a no-op.
class profile_scope {
public:
    profile_scope(profiler* p, subsystem s) : p_(p) {
        if (p_ != nullptr) prev_ = p_->enter(s);
    }
    ~profile_scope() {
        if (p_ != nullptr) p_->leave(prev_);
    }
    profile_scope(const profile_scope&) = delete;
    profile_scope& operator=(const profile_scope&) = delete;

private:
    profiler* p_;
    subsystem prev_ = subsystem::other;
};

}  // namespace camdn::obs

#include "obs/metrics.h"

#include <cstdio>
#include <ostream>

namespace camdn::obs {

namespace {

/// 12 significant digits with %g's trailing-zero trimming — compact,
/// precise enough for metric reporting and deterministic across runs.
void put_num(std::ostream& out, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out << buf;
}

}  // namespace

void metrics_registry::write_json(std::ostream& out) const {
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : counters_) {
        if (!first) out << ",";
        first = false;
        out << "\"" << name << "\":" << v;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : gauges_) {
        if (!first) out << ",";
        first = false;
        out << "\"" << name << "\":";
        put_num(out, v);
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : hists_) {
        if (!first) out << ",";
        first = false;
        out << "\"" << name << "\":{\"count\":" << h.count() << ",\"mean\":";
        put_num(out, h.mean());
        out << ",\"p50\":";
        put_num(out, h.p50());
        out << ",\"p95\":";
        put_num(out, h.p95());
        out << ",\"p99\":";
        put_num(out, h.p99());
        out << ",\"min\":";
        put_num(out, h.min());
        out << ",\"max\":";
        put_num(out, h.max());
        out << "}";
    }
    out << "}}";
}

}  // namespace camdn::obs

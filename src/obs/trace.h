// Chrome trace-event recorder.
//
// The observability layer's timeline view: simulated components record
// duration events (layer executions, DMA flights and chunks, page-wait
// retries, whole inferences) and instants (negotiation timeouts) against
// the simulation clock, and write_chrome_trace() exports them as Chrome
// trace-event format JSON — loadable in chrome://tracing and Perfetto.
// pid maps to the SoC index (fleet runs use one pid per SoC plus a "fleet"
// pid for round barriers) and tid to the task slot, so a multi-tenant run
// renders as one swim-lane per tenant per SoC.
//
// Recording is observation-only: no component behaviour depends on the
// recorder, no event is scheduled for it, and every hook is a null check —
// a run with tracing attached is bit-identical to a bare run. Events carry
// interned name pointers (string literals or recorder-owned copies), so a
// record is two stores and a push_back. Determinism: the event sequence is
// a pure function of the simulation, and write_chrome_trace sorts stably
// by (pid, tid, ts), so the exported bytes are identical across repeated
// runs and sweep-pool widths.
//
// Depends only on common/ so every layer (npu, cache, sim, runtime, serve)
// can include it without an upward dependency.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace camdn::obs {

/// One recorded event. `name`/`cat` point at string literals or at strings
/// interned in (and owned by) the recorder that produced the event.
struct trace_event {
    const char* name = "";
    const char* cat = "";
    cycle_t ts = 0;   ///< start, simulation cycles
    cycle_t dur = 0;  ///< span, simulation cycles (complete events)
    std::uint64_t arg = 0;  ///< optional payload (bytes, layer index, ...)
    std::uint32_t pid = 0;  ///< SoC index (or the fleet lane)
    std::uint32_t tid = 0;  ///< task slot
    char phase = 'X';       ///< 'X' complete, 'i' instant
    bool has_arg = false;
};

/// Thread id used for events not attributable to a task slot (warm-up
/// probes, no_task traffic).
inline constexpr std::uint32_t trace_tid_untracked = 0xFFFFu;

class trace_recorder {
public:
    /// `pid` tags every event this recorder produces (the SoC index in
    /// fleet runs). `max_events` caps memory; events beyond it are counted
    /// in dropped() rather than silently lost.
    explicit trace_recorder(std::uint32_t pid = 0,
                            std::size_t max_events = 1u << 20);

    std::uint32_t pid() const { return pid_; }

    /// Per-DMA-chunk duration events are the highest-volume category; off
    /// by default keeps flight-level granularity cheap.
    void set_chunk_events(bool on) { chunk_events_ = on; }
    bool chunk_events() const { return chunk_events_; }

    /// Samples the chunk lane: record every Nth chunk event (count-based,
    /// deterministic — the chunk issue order is a simulation fact). 1
    /// records every chunk.
    void set_chunk_sample_every(std::uint32_t n) {
        chunk_sample_every_ = n == 0 ? 1 : n;
    }
    std::uint32_t chunk_sample_every() const { return chunk_sample_every_; }
    /// Advances the chunk sampling counter; true when this chunk's event
    /// should be recorded. Called once per issued chunk by the DMA engine
    /// while chunk_events() is on.
    bool sample_chunk() {
        if (++chunk_counter_ < chunk_sample_every_) return false;
        chunk_counter_ = 0;
        return true;
    }
    /// Samples the flight lane (one completion event per DMA flight — the
    /// highest-volume category after chunks): record every Nth. Same
    /// count-based determinism as the chunk lane. 1 (the default) records
    /// every flight.
    void set_flight_sample_every(std::uint32_t n) {
        flight_sample_every_ = n == 0 ? 1 : n;
    }
    std::uint32_t flight_sample_every() const { return flight_sample_every_; }
    /// Advances the flight sampling counter; true when this flight's
    /// completion event should be recorded. Called once per retired
    /// flight by the DMA engine while a recorder is attached.
    bool sample_flight() {
        if (++flight_counter_ < flight_sample_every_) return false;
        flight_counter_ = 0;
        return true;
    }

    /// Records a complete ('X') event spanning [start, end] cycles.
    void complete(const char* name, const char* cat, std::uint32_t tid,
                  cycle_t start, cycle_t end) {
        push(trace_event{name, cat, start, end > start ? end - start : 0, 0,
                         pid_, tid, 'X', false});
    }
    void complete_arg(const char* name, const char* cat, std::uint32_t tid,
                      cycle_t start, cycle_t end, std::uint64_t arg) {
        push(trace_event{name, cat, start, end > start ? end - start : 0, arg,
                         pid_, tid, 'X', true});
    }
    /// Records an instant ('i') event at `at` cycles.
    void instant(const char* name, const char* cat, std::uint32_t tid,
                 cycle_t at) {
        push(trace_event{name, cat, at, 0, 0, pid_, tid, 'i', false});
    }
    /// Records a counter ('C') sample: the cumulative value of `name` at
    /// `at` cycles. Chrome/Perfetto render these as per-pid counter tracks
    /// (the attribution layer emits one track per latency component).
    void counter(const char* name, std::uint32_t tid, cycle_t at,
                 std::uint64_t value) {
        push(trace_event{name, "counter", at, 0, value, pid_, tid, 'C', true});
    }

    /// Interns a dynamic name (model abbreviation) and returns a pointer
    /// that stays valid for the recorder's lifetime.
    const char* intern(const std::string& name);

    const std::vector<trace_event>& events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    std::uint64_t dropped() const { return dropped_; }

    /// Copies every event of `src` into this recorder (re-interning the
    /// name/cat strings so the result outlives `src`). Fleet runs use this
    /// to fold per-round per-SoC recorders into one deterministic master.
    void absorb(const trace_recorder& src);

private:
    void push(const trace_event& e) {
        if (events_.size() >= max_events_) {
            ++dropped_;
            return;
        }
        events_.push_back(e);
    }

    std::uint32_t pid_;
    std::size_t max_events_;
    bool chunk_events_ = false;
    std::uint32_t chunk_sample_every_ = 1;
    std::uint32_t chunk_counter_ = 0;
    std::uint32_t flight_sample_every_ = 1;
    std::uint32_t flight_counter_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<trace_event> events_;
    std::deque<std::string> strings_;  ///< stable storage for interned names
    std::map<std::string, const char*> interned_;
};

/// Returns the events sorted for export: stable on (pid, tid, ts), so
/// per-thread timestamps are non-decreasing and equal-ts events keep their
/// recording order. Pure function — the export order tests use it too.
std::vector<trace_event> sorted_for_export(std::vector<trace_event> events);

/// Writes `{"traceEvents": [...]}` Chrome trace JSON: process/thread name
/// metadata first (process names from `process_names`, defaulting to
/// "soc<pid>"; threads named "slot <tid>"), then the sorted events with
/// ts/dur converted to microseconds of the 1 GHz simulation clock.
/// Deterministic: same events, same bytes.
void write_chrome_trace(
    std::ostream& out, const std::vector<trace_event>& events,
    const std::vector<std::pair<std::uint32_t, std::string>>& process_names =
        {});

}  // namespace camdn::obs

// Streaming metrics registry: named counters, gauges and histograms.
//
// Counters are monotonic uint64 totals (completions, epochs cut, queue
// dispatches), gauges are last-written doubles (idle pages at the last
// epoch cut), and histograms are P² streaming quantile bundles
// (common/stats.h p2_quantiles) — O(1) memory per metric regardless of
// sample count, which is what lets a million-request run keep latency
// percentiles without retaining every sample.
//
// The registry is fed from scheduler epoch cuts and completion events (all
// simulation facts), so its contents are deterministic; names are stored
// in ordered maps so write_json() emits identical bytes for identical
// runs. Host wall-time never enters the registry — that belongs to the
// profiler (obs/profile.h), whose output is nondeterministic by nature.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "common/stats.h"

namespace camdn::obs {

class metrics_registry {
public:
    /// Adds `delta` to counter `name` (created at zero on first touch).
    void add(const std::string& name, std::uint64_t delta = 1) {
        counters_[name] += delta;
    }
    /// Assigns counter `name` (idempotent end-of-run totals: executed
    /// events, dispatch counts — safe to re-export per segment).
    void set(const std::string& name, std::uint64_t value) {
        counters_[name] = value;
    }
    std::uint64_t counter(const std::string& name) const {
        const auto it = counters_.find(name);
        return it != counters_.end() ? it->second : 0;
    }

    void gauge_set(const std::string& name, double value) {
        gauges_[name] = value;
    }
    double gauge(const std::string& name) const {
        const auto it = gauges_.find(name);
        return it != gauges_.end() ? it->second : 0.0;
    }

    /// Stable handles for hot-path producers: the returned pointers stay
    /// valid for the registry's lifetime (std::map nodes never move), so a
    /// caller that bumps the same metric every epoch resolves the name
    /// once and then writes through the pointer — no string construction
    /// or map lookup per update. Created at zero on first touch.
    std::uint64_t* counter_slot(const std::string& name) {
        return &counters_[name];
    }
    double* gauge_slot(const std::string& name) { return &gauges_[name]; }

    /// The named histogram, created empty on first touch. The reference is
    /// stable for the registry's lifetime (usable as a hot-path handle).
    p2_quantiles& histogram(const std::string& name) { return hists_[name]; }
    const p2_quantiles* find_histogram(const std::string& name) const {
        const auto it = hists_.find(name);
        return it != hists_.end() ? &it->second : nullptr;
    }

    bool empty() const {
        return counters_.empty() && gauges_.empty() && hists_.empty();
    }
    const std::map<std::string, std::uint64_t>& counters() const {
        return counters_;
    }

    /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
    /// {"name":{"count":..,"mean":..,"p50":..,"p95":..,"p99":..,"min":..,
    /// "max":..}}}. Name-ordered, fixed formatting — deterministic bytes.
    void write_json(std::ostream& out) const;

private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, p2_quantiles> hists_;
};

}  // namespace camdn::obs

// The run observer: the bundle of nullable observability hooks a run
// carries (sim::experiment_config::obs).
//
// All pointers default to null — the zero-overhead-off property: with no
// observer attached every hook in the machine is a single null check, and
// a run's results, goldens and snapshot bytes are bit-identical to a build
// without the observability layer. The pointers are borrowed (the caller
// owns the recorder/registry/sink/profiler and outlives the run), mirroring
// the telemetry_bus* pattern. None of these fields enter the scheduler's
// machine/run fingerprints, so snapshots taken with and without observers
// attached are interchangeable.
#pragma once

#include <cstdint>

namespace camdn::obs {

class trace_recorder;
class metrics_registry;
class jsonl_sink;
class profiler;
class latency_attributor;

struct run_observer {
    trace_recorder* trace = nullptr;     ///< Chrome-trace event recorder
    metrics_registry* metrics = nullptr; ///< counters/gauges/P² histograms
    jsonl_sink* epochs = nullptr;        ///< per-epoch telemetry rows
    profiler* prof = nullptr;            ///< host wall-time attribution
    /// Per-request latency attribution + interference matrix
    /// (obs/attribution.h).
    latency_attributor* attr = nullptr;

    /// Emit every Nth epoch row (sampling interval; 0 behaves as 1).
    std::uint32_t epoch_sample_every = 1;
    /// SoC index: the trace pid and the "soc" field of JSONL rows.
    std::uint32_t soc_index = 0;

    bool enabled() const {
        return trace != nullptr || metrics != nullptr || epochs != nullptr ||
               prof != nullptr || attr != nullptr;
    }
    /// True when the scheduler must run the telemetry bus to feed this
    /// observer (epoch rows, epoch-paced metrics, and the attribution
    /// counter tracks sampled into the trace all consume cuts).
    bool wants_epochs() const {
        return epochs != nullptr || metrics != nullptr ||
               (attr != nullptr && trace != nullptr);
    }
};

}  // namespace camdn::obs

// Streaming JSONL sinks for per-epoch and per-round telemetry.
//
// A sink accepts one JSON object per row. In streaming mode (constructed
// on an ostream) rows hit the stream as they are produced — the scheduler
// emits an epoch row at every telemetry cut, so telemetry leaves the
// process *during* the run instead of as an end-of-run rollup. In buffered
// mode (default) rows accumulate in memory; fleet runs give every SoC of a
// round its own buffered sink and drain them in round-major fleet order at
// the round barrier, so the merged stream is deterministic across
// sweep-pool widths even though the SoC simulations ran concurrently.
//
// Row schema (all fields simulation facts, bit-identical across runs):
//   {"type":"epoch","soc":S,"epoch":I,"start_ms":..,"end_ms":..,
//    "active_slots":..,"completions":..,"layers":..,"dma_bytes":..,
//    "cache_hits":..,"cache_misses":..,"page_wait_cycles":..,
//    "page_timeouts":..,"dram_bytes":..,"bw_utilization":..,
//    "idle_pages":..}
//   {"type":"fleet_round","round":R,...}   (serve/cluster.cpp)
//   {"type":"metrics",...}                 (final registry dump)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "adapt/telemetry.h"

namespace camdn::obs {

class jsonl_sink {
public:
    /// Buffered sink: rows accumulate until drained.
    jsonl_sink() = default;
    /// Streaming sink: rows are written (with trailing newline) and
    /// flushed immediately. `out` is borrowed, not owned.
    explicit jsonl_sink(std::ostream* out) : out_(out) {}

    /// Appends one row (a complete JSON object, no trailing newline).
    void row(const std::string& json);

    std::uint64_t rows() const { return rows_; }
    const std::vector<std::string>& buffered() const { return buffered_; }

    /// Moves every buffered row into `dst` in order (deterministic fleet
    /// merge), leaving this sink empty. Row counts transfer.
    void drain_to(jsonl_sink& dst);
    /// Writes every buffered row to `out` and clears the buffer.
    void drain_to(std::ostream& out);

private:
    std::ostream* out_ = nullptr;
    std::uint64_t rows_ = 0;
    std::vector<std::string> buffered_;
};

/// Formats one telemetry epoch snapshot as an "epoch" JSONL row
/// (per-slot counters aggregated to epoch totals). Deterministic bytes.
std::string epoch_row_json(std::uint32_t soc, const adapt::epoch_snapshot& e);

}  // namespace camdn::obs

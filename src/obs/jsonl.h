// Streaming JSONL sinks for per-epoch and per-round telemetry.
//
// A sink accepts one JSON object per row. In streaming mode (constructed
// on an ostream) rows hit the stream as they are produced — the scheduler
// emits an epoch row at every telemetry cut, so telemetry leaves the
// process *during* the run instead of as an end-of-run rollup. In buffered
// mode (default) rows accumulate in memory; fleet runs give every SoC of a
// round its own buffered sink and drain them in round-major fleet order at
// the round barrier, so the merged stream is deterministic across
// sweep-pool widths even though the SoC simulations ran concurrently.
//
// Row schema (all fields simulation facts, bit-identical across runs):
//   {"type":"epoch","soc":S,"epoch":I,"start_ms":..,"end_ms":..,
//    "active_slots":..,"completions":..,"layers":..,"dma_bytes":..,
//    "cache_hits":..,"cache_misses":..,"page_wait_cycles":..,
//    "page_timeouts":..,"dram_bytes":..,"bw_utilization":..,
//    "idle_pages":..}
//   {"type":"fleet_round","round":R,...}   (serve/cluster.cpp)
//   {"type":"metrics",...}                 (final registry dump)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "adapt/telemetry.h"

namespace camdn::obs {

/// One epoch row captured as plain data: the per-slot counters already
/// aggregated, no strings. A buffered sink records these into a slab and
/// formats them only when drained, so the simulation hot path never pays
/// for snprintf or string allocation per epoch cut.
struct epoch_record {
    std::uint32_t soc = 0;
    std::uint64_t index = 0;
    cycle_t start = 0;
    cycle_t end = 0;
    std::uint32_t active_slots = 0;
    std::uint64_t completions = 0;
    std::uint64_t layers = 0;
    std::uint64_t dma_bytes = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t page_wait_cycles = 0;
    std::uint64_t page_timeouts = 0;
    std::uint64_t dram_bytes = 0;
    double bw_utilization = 0.0;
    std::uint32_t idle_pages = 0;
};

/// Aggregates a telemetry snapshot's per-slot counters into the POD row.
epoch_record make_epoch_record(std::uint32_t soc,
                               const adapt::epoch_snapshot& e);

class jsonl_sink {
public:
    /// Buffered sink: rows accumulate until drained.
    jsonl_sink() = default;
    /// Streaming sink: rows are written (with trailing newline) and
    /// flushed immediately. `out` is borrowed, not owned.
    explicit jsonl_sink(std::ostream* out) : out_(out) {}

    /// Appends one row (a complete JSON object, no trailing newline).
    void row(const std::string& json);

    /// Appends one epoch row. Streaming sinks format and write it now;
    /// buffered sinks record the POD epoch_record and defer the JSON
    /// formatting to drain time (the row keeps its position relative to
    /// interleaved row() strings). Byte-identical output either way.
    void epoch_row(std::uint32_t soc, const adapt::epoch_snapshot& e);

    std::uint64_t rows() const { return rows_; }
    /// The buffered rows. Formats any deferred epoch rows in place first
    /// (hence non-const; drains do the same).
    const std::vector<std::string>& buffered() {
        materialize();
        return buffered_;
    }

    /// Moves every buffered row into `dst` in order (deterministic fleet
    /// merge), leaving this sink empty. Row counts transfer.
    void drain_to(jsonl_sink& dst);
    /// Writes every buffered row to `out` and clears the buffer.
    void drain_to(std::ostream& out);

private:
    /// Formats deferred epoch records into their reserved buffer slots.
    void materialize();

    std::ostream* out_ = nullptr;
    std::uint64_t rows_ = 0;
    std::vector<std::string> buffered_;
    /// Deferred epoch rows: (index of the placeholder in buffered_, data).
    std::vector<std::pair<std::size_t, epoch_record>> deferred_;
};

/// Formats one telemetry epoch snapshot as an "epoch" JSONL row
/// (per-slot counters aggregated to epoch totals). Deterministic bytes.
std::string epoch_row_json(std::uint32_t soc, const adapt::epoch_snapshot& e);
/// Formats an already-aggregated epoch record (same bytes).
std::string epoch_row_json(const epoch_record& r);

}  // namespace camdn::obs

#include "area/area_model.h"

#include <cmath>

namespace camdn::area {

namespace {

// 45 nm NAND2-equivalent gate area (um^2/gate), mid-range standard cell
// library utilization included.
constexpr double gate_um2 = 1.6;

// Logic sizes in NAND2 equivalents.
constexpr std::uint64_t gates_per_pe = 800;        // int8 MAC + pipeline regs
constexpr std::uint64_t gates_nec = 41'000;        // NEC request FSM + mux
constexpr std::uint64_t gates_npu_misc = 142'000;  // decoder, DMA, control
constexpr std::uint64_t gates_slice_misc = 209'000;

}  // namespace

double sram_area_um2(std::uint64_t bits) {
    // Size-dependent density: small macros are periphery-dominated.
    double um2_per_bit = 0.0;
    if (bits <= 64ull * 1024) {
        um2_per_bit = 6.0;
    } else if (bits <= 4ull * 1024 * 1024) {
        um2_per_bit = 3.0;
    } else {
        um2_per_bit = 1.3;
    }
    return static_cast<double>(bits) * um2_per_bit;
}

double logic_area_um2(std::uint64_t gates) {
    return static_cast<double>(gates) * gate_um2;
}

double area_breakdown::npu_total() const {
    double sum = 0.0;
    for (const auto& i : npu) sum += i.um2;
    return sum;
}

double area_breakdown::slice_total() const {
    double sum = 0.0;
    for (const auto& i : slice) sum += i.um2;
    return sum;
}

double area_breakdown::of(const std::vector<area_item>& items,
                          const std::string& name) const {
    for (const auto& i : items)
        if (i.name == name) return i.um2;
    return 0.0;
}

area_breakdown estimate_area(const npu::npu_config& npu,
                             const cache::cache_config& cache) {
    area_breakdown out;

    // ---- NPU core ----
    out.npu.push_back({"Scratchpad", sram_area_um2(npu.scratchpad_bytes * 8)});
    out.npu.push_back(
        {"PE Array",
         logic_area_um2(static_cast<std::uint64_t>(npu.macs_per_cycle()) *
                        gates_per_pe)});
    // CPT: <= pages_total entries of 3 bytes (pcpn + valid), paper §III-B3.
    out.npu.push_back(
        {"CPT", sram_area_um2(static_cast<std::uint64_t>(cache.pages_total()) *
                              3 * 8)});
    out.npu.push_back({"others", logic_area_um2(gates_npu_misc)});

    // ---- Cache slice ----
    const std::uint64_t slice_bytes = cache.total_bytes / cache.slices;
    out.slice.push_back({"Data Array", sram_area_um2(slice_bytes * 8)});
    // Tag entry: ~26 bits of tag + valid/dirty + LRU state per line.
    const std::uint64_t lines_per_slice =
        static_cast<std::uint64_t>(cache.sets_per_slice()) * cache.ways;
    out.slice.push_back({"Tag Array", sram_area_um2(lines_per_slice * 29)});
    out.slice.push_back({"NEC", logic_area_um2(gates_nec)});
    out.slice.push_back({"others", logic_area_um2(gates_slice_misc)});

    return out;
}

}  // namespace camdn::area

// Analytic 45 nm area model (stands in for the paper's Design Compiler +
// OpenRAM flow; see DESIGN.md substitution table).
//
// SRAM macros use a size-dependent bit density — small macros pay
// proportionally more periphery — and logic blocks use a NAND2-equivalent
// gate density. The constants are calibrated against published 45 nm
// OpenRAM macros and the Gemmini area reports, which is what Table III's
// relative breakdown rests on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.h"
#include "npu/npu_config.h"

namespace camdn::area {

struct area_item {
    std::string name;
    double um2 = 0.0;
};

struct area_breakdown {
    std::vector<area_item> npu;    ///< scratchpad, PE array, CPT, others
    std::vector<area_item> slice;  ///< data array, tag array, NEC, others
    double npu_total() const;
    double slice_total() const;
    double of(const std::vector<area_item>& items, const std::string& name) const;
};

/// SRAM macro area in um^2 for `bits` of storage.
double sram_area_um2(std::uint64_t bits);

/// Random-logic area in um^2 for `gates` NAND2-equivalents.
double logic_area_um2(std::uint64_t gates);

/// Full Table III breakdown for one NPU core and one cache slice.
area_breakdown estimate_area(const npu::npu_config& npu,
                             const cache::cache_config& cache);

}  // namespace camdn::area

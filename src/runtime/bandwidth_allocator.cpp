#include "runtime/bandwidth_allocator.h"

#include <algorithm>
#include <cmath>

namespace camdn::runtime {

namespace {

/// Estimated remaining cycles of the current inference (profiled layer
/// estimates from the mapping file).
std::uint64_t est_remaining_cycles(const task& t) {
    std::uint64_t rem = 0;
    for (std::size_t i = t.current_layer; i < t.mapping->layer_est.size(); ++i)
        rem += t.mapping->layer_est[i];
    return rem;
}

/// Bandwidth demand of the task's current layer, bytes per cycle, using
/// its minimal (cache-oblivious) candidate — MoCA has no cache knowledge.
double layer_demand(const task& t) {
    const auto& cand = t.current_mct().minimal();
    if (cand.est_cycles == 0) return 0.0;
    return static_cast<double>(cand.dram_bytes()) /
           static_cast<double>(cand.est_cycles);
}

}  // namespace

void bandwidth_allocator::reallocate(const std::vector<task*>& running,
                                     cycle_t now) {
    std::vector<double> weight(running.size(), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < running.size(); ++i) {
        task* t = running[i];
        if (t == nullptr || !t->running()) continue;
        double w = std::max(layer_demand(*t), 1e-6);
        if (t->deadline != never) {
            // Urgency: ratio of required pace to available pace, clamped.
            const double remaining_work =
                static_cast<double>(est_remaining_cycles(*t));
            const double remaining_time =
                t->deadline > now ? static_cast<double>(t->deadline - now) : 1.0;
            const double urgency =
                std::clamp(remaining_work / remaining_time, 0.25, 4.0);
            w *= urgency;
        }
        weight[i] = w;
        total += w;
    }
    if (total <= 0.0) return;
    for (std::size_t i = 0; i < running.size(); ++i) {
        task* t = running[i];
        if (t == nullptr || !t->running()) continue;
        dram_.set_task_share(
            t->id, std::min(1.0, headroom_ * weight[i] / total));
    }
}

void bandwidth_allocator::clear() { dram_.clear_task_shares(); }

}  // namespace camdn::runtime

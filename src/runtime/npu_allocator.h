// AuRORA-style dynamic NPU (core-count) allocation (baseline, §II-B3).
//
// AuRORA virtualizes the accelerator pool: each task receives between one
// and `max_cores_per_task` cores, sized by its deadline slack, re-evaluated
// at task arrival/completion boundaries. Idle cores are spread round-robin
// over the neediest tasks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "runtime/task.h"

namespace camdn::runtime {

class npu_allocator {
public:
    explicit npu_allocator(std::uint32_t total_cores,
                           std::uint32_t max_cores_per_task = 4)
        : total_cores_(total_cores), max_per_task_(max_cores_per_task) {}

    /// Returns the core count for each running task (index-aligned with
    /// `running`; zero entries for null/idle slots). The sum never exceeds
    /// the number of cores and every running task gets at least one.
    std::vector<std::uint32_t> allocate(const std::vector<task*>& running,
                                        cycle_t now) const;

    std::uint32_t total_cores() const { return total_cores_; }

private:
    std::uint32_t total_cores_;
    std::uint32_t max_per_task_;
};

}  // namespace camdn::runtime

// Pluggable workload generation for the multi-tenant runtime.
//
// The scheduler executes inferences; a workload_generator decides *what
// arrives when*. closed_loop reproduces the paper's methodology (§IV-A4:
// N task slots that re-dispatch on completion, bit-identical to the
// original driver under the same seed); open_loop_poisson models
// rate-driven serving with a bounded admission queue; trace_replay
// replays an explicit (time, model) arrival list.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/snapshot_io.h"
#include "common/stats.h"
#include "common/types.h"
#include "model/model.h"

namespace camdn::sim {
struct experiment_config;
}

namespace camdn::runtime {

/// Which generator run_experiment builds from an experiment_config.
enum class workload_kind : std::uint8_t {
    closed_loop,        ///< N slots x fixed inference count, re-dispatch on completion
    open_loop_poisson,  ///< rate-driven arrivals, bounded admission queue
    trace_replay,       ///< explicit (time, model) arrival list
    /// Markov-modulated Poisson arrivals: the rate jumps between the
    /// cfg.mmpp_rate_scale states (bursty / diurnal traffic).
    open_loop_mmpp,
    /// Poisson arrivals whose active tenant set rotates every
    /// cfg.churn_interval_ms (models joining and leaving the SoC).
    tenant_churn,
    /// Closed-loop + churn hybrid: N re-dispatching slots (with
    /// cfg.think_time_ms) whose model choice follows the rotating
    /// cfg.churn_active_models window at each dispatch instant — a slot's
    /// tenant swaps mid-run, exercising the CPT teardown path under
    /// adaptation.
    closed_loop_churn,
};

/// Admission-queue capacity meaning "never drop". A capacity of 0 is a
/// real zero-length queue: every arrival is refused at admission.
inline constexpr std::uint32_t unbounded_queue =
    std::numeric_limits<std::uint32_t>::max();

/// One arrival of a trace_replay workload.
struct trace_arrival {
    cycle_t at = 0;
    const model::model* mdl = nullptr;
};

/// Markov-modulated Poisson arrival clock: the rate walks the
/// `rate_scale` states in order (wrapping) with exponential sojourns of
/// mean `sojourn_ms`; within a state, gaps are exponential at
/// base_rate * state_scale. A gap that crosses the sojourn boundary
/// restarts its exponential clock in the next state (memorylessness makes
/// this exact, no thinning). All draws come from the caller's rng, so the
/// per-SoC mmpp generator and the fleet stream builder share one
/// implementation and stay deterministic under their seeds.
class mmpp_clock {
public:
    /// Draws the first sojourn from `r`; `r` must outlive the clock.
    mmpp_clock(double base_rate_per_ms, std::vector<double> rate_scale,
               double sojourn_ms, rng& r);

    /// Advances to the next arrival and returns its absolute time in
    /// exact (unrounded) ms.
    double next_arrival_ms();

private:
    std::vector<double> scale_;
    double base_;
    double sojourn_;
    rng& r_;
    std::size_t state_ = 0;
    double state_end_ms_;
    double t_ms_ = 0.0;
};

/// The scheduler surface a generator drives. Implemented by
/// runtime::scheduler; generators never touch the SoC directly.
class workload_control {
public:
    virtual ~workload_control() = default;

    /// Current simulation time.
    virtual cycle_t now() const = 0;

    /// Schedules `fn` at absolute simulation time `when` (generators use
    /// this for future arrivals; past times clamp to now()). Returns the
    /// event's id — its same-cycle tie-break sequence — which generators
    /// record for pending work so a checkpoint can re-arm it exactly.
    virtual std::uint64_t at(cycle_t when, std::function<void()> fn) = 0;

    /// Exact-resume re-arm: schedules `fn` at `when` under the event id it
    /// held when the checkpoint was taken, so same-cycle event ordering
    /// replays bit for bit. Only valid while resuming from a snapshot.
    virtual void at_restored(cycle_t when, std::uint64_t id,
                             std::function<void()> fn) = 0;

    /// Submits one inference of `mdl`, stamped with arrival = now().
    /// `slot` pins the request to one task slot (closed-loop semantics);
    /// no_task lets the dispatcher run it on any free slot.
    virtual void submit(const model::model* mdl, task_id slot = no_task) = 0;

    /// Admitted requests not yet dispatched to cores (admission queue).
    virtual std::size_t pending() const = 0;
};

/// What a generator learns about a finished inference.
struct completion_info {
    task_id slot = no_task;
    const model::model* mdl = nullptr;
    cycle_t arrival = 0;
    cycle_t start = 0;
    cycle_t end = 0;
};

/// Arrival-side behaviour of one experiment. Implementations must be
/// deterministic: the same construction parameters yield the same arrival
/// pattern regardless of how the simulation interleaves.
class workload_generator {
public:
    virtual ~workload_generator() = default;

    /// Called once at simulation start: submit initial work and schedule
    /// every future arrival through `ctl`.
    virtual void start(workload_control& ctl) = 0;

    /// Called after each inference completes (its cores are already back
    /// in the free pool, so a submission here can dispatch immediately).
    virtual void on_complete(workload_control& ctl,
                             const completion_info& c) = 0;

    /// True once no further arrivals will ever be submitted.
    virtual bool exhausted() const = 0;

    /// Arrivals refused at a full admission queue (open loop / trace).
    virtual std::uint64_t rejected() const { return 0; }

    /// Queue delays (start - arrival, ms) of completed inferences, for
    /// generators where queueing is meaningful (open loop / trace).
    /// nullptr when the generator does not track them (closed loop
    /// re-dispatches on completion and never queues).
    virtual const percentile_tracker* queue_delays_ms() const {
        return nullptr;
    }

    // ---- checkpoint support (scheduler::save / exact resume) ----
    //
    // save_state serializes the arrival cursor: everything needed so that a
    // generator freshly constructed from the same config, after
    // restore_state, owes the simulation exactly the not-yet-fired work.
    // resume() is called instead of start() on an exact resume and must
    // re-arm that pending work via at_restored() under the saved event ids.
    // The defaults support generators whose start() is idempotent from any
    // point (none of the built-ins; all of them override).

    virtual void save_state(snapshot_writer&) const {}
    virtual void restore_state(snapshot_reader&) {}
    virtual void resume(workload_control& ctl) { start(ctl); }

    /// True when this generator implements the checkpoint hooks. The
    /// scheduler refuses an exact resume of a generator that cannot restore
    /// its cursor (it would replay arrivals from scratch).
    virtual bool checkpointable() const { return false; }
};

/// Builds the generator selected by cfg.kind from an experiment config.
std::unique_ptr<workload_generator> make_workload_generator(
    const sim::experiment_config& cfg);

}  // namespace camdn::runtime

#include "runtime/workload.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sim/experiment.h"

namespace camdn::runtime {

mmpp_clock::mmpp_clock(double base_rate_per_ms, std::vector<double> rate_scale,
                       double sojourn_ms, rng& r)
    : scale_(rate_scale.empty() ? std::vector<double>{1.0}
                                : std::move(rate_scale)),
      base_(std::max(base_rate_per_ms, 1e-9)),
      sojourn_(std::max(sojourn_ms, 1e-6)),
      r_(r),
      state_end_ms_(-std::log(1.0 - r.next_double()) * sojourn_) {}

double mmpp_clock::next_arrival_ms() {
    double rate = base_ * std::max(scale_[state_], 1e-9);
    double gap_ms = -std::log(1.0 - r_.next_double()) / rate;
    while (t_ms_ + gap_ms > state_end_ms_) {
        t_ms_ = state_end_ms_;
        state_ = (state_ + 1) % scale_.size();
        state_end_ms_ += -std::log(1.0 - r_.next_double()) * sojourn_;
        rate = base_ * std::max(scale_[state_], 1e-9);
        gap_ms = -std::log(1.0 - r_.next_double()) / rate;
    }
    t_ms_ += gap_ms;
    return t_ms_;
}

namespace {

// The paper's scenario: co_located slots, each with a pre-generated random
// model sequence, re-dispatching as soon as the previous inference ends.
// An optional think time models interactive users: the re-dispatch is
// delayed by `think_cycles` after each completion (think_cycles == 0
// preserves the immediate-re-dispatch path bit for bit). Thinking slots
// make mid-run checkpoint boundaries reachable — instants where every slot
// is between inferences.
class closed_loop_generator final : public workload_generator {
public:
    closed_loop_generator(const std::vector<const model::model*>& models,
                          std::uint32_t slots,
                          std::uint32_t inferences_per_slot, std::uint64_t seed,
                          cycle_t think_cycles = 0)
        : inferences_per_slot_(inferences_per_slot),
          think_cycles_(think_cycles),
          plan_(slots),
          next_(slots, 0),
          pending_(slots) {
        // Pre-generate the random model sequence per slot so every policy
        // sees the identical workload (paper: random dispatch, fair
        // comparison). The rng call sequence matches the original driver,
        // keeping runs bit-identical under the same seed.
        rng r(seed);
        for (auto& p : plan_) {
            p.reserve(inferences_per_slot);
            for (std::uint32_t j = 0; j < inferences_per_slot; ++j)
                p.push_back(models[r.next_below(models.size())]);
        }
    }

    void start(workload_control& ctl) override {
        ctl_ = &ctl;
        if (inferences_per_slot_ == 0) return;
        live_slots_ = static_cast<std::uint32_t>(plan_.size());
        for (std::size_t s = 0; s < plan_.size(); ++s)
            ctl.submit(plan_[s][0], static_cast<task_id>(s));
    }

    void on_complete(workload_control& ctl, const completion_info& c) override {
        next_[c.slot] += 1;
        if (next_[c.slot] >= inferences_per_slot_) {
            live_slots_ -= 1;
            return;
        }
        if (think_cycles_ == 0) {
            ctl.submit(plan_[c.slot][next_[c.slot]], c.slot);
            return;
        }
        auto& p = pending_[c.slot];
        p.armed = true;
        p.when = c.end + think_cycles_;
        p.seq = ctl.at(p.when, [this, slot = c.slot] { fire(slot); });
    }

    bool exhausted() const override { return live_slots_ == 0; }

    // ---- checkpoint support ----

    bool checkpointable() const override { return true; }

    void save_state(snapshot_writer& w) const override {
        w.u32(live_slots_);
        w.u64(next_.size());
        for (const std::uint32_t n : next_) w.u32(n);
        w.u64(pending_.size());
        for (const auto& p : pending_) {
            w.b(p.armed);
            w.u64(p.when);
            w.u64(p.seq);
        }
    }

    void restore_state(snapshot_reader& r) override {
        live_slots_ = r.u32();
        if (r.count(4) != next_.size())
            throw snapshot_error("snapshot closed-loop slot-count mismatch");
        for (auto& n : next_) n = r.u32();
        if (r.count(17) != pending_.size())
            throw snapshot_error("snapshot closed-loop slot-count mismatch");
        for (auto& p : pending_) {
            p.armed = r.b();
            p.when = r.u64();
            p.seq = r.u64();
        }
    }

    void resume(workload_control& ctl) override {
        ctl_ = &ctl;
        for (std::size_t s = 0; s < pending_.size(); ++s)
            if (pending_[s].armed)
                ctl.at_restored(pending_[s].when, pending_[s].seq,
                                [this, slot = static_cast<task_id>(s)] {
                                    fire(slot);
                                });
    }

private:
    void fire(task_id slot) {
        pending_[slot].armed = false;
        ctl_->submit(plan_[slot][next_[slot]], slot);
    }

    /// A scheduled think-time re-dispatch (so a checkpoint can re-arm it).
    struct pending_submit {
        bool armed = false;
        cycle_t when = 0;
        std::uint64_t seq = 0;
    };

    std::uint32_t inferences_per_slot_;
    cycle_t think_cycles_;
    std::vector<std::vector<const model::model*>> plan_;
    std::vector<std::uint32_t> next_;
    std::vector<pending_submit> pending_;
    workload_control* ctl_ = nullptr;
    std::uint32_t live_slots_ = 0;
};

// Closed-loop + churn hybrid: the paper's N-slot closed loop (think time
// included) whose model choice rotates with the churn window. The
// within-window pick of slot s's j-th inference is pre-drawn from the
// seed; only the window base depends on the dispatch cycle, so the same
// simulated schedule always serves the same models while a slot's tenant
// still swaps mid-run — each swap tears down the previous model's CPT and
// region state under whatever adaptation is active.
class closed_loop_churn_generator final : public workload_generator {
public:
    closed_loop_churn_generator(const std::vector<const model::model*>& models,
                                std::uint32_t slots,
                                std::uint32_t inferences_per_slot,
                                std::uint64_t seed, cycle_t think_cycles,
                                cycle_t interval_cycles, std::uint32_t active)
        : models_(models),
          inferences_per_slot_(inferences_per_slot),
          think_cycles_(think_cycles),
          interval_cycles_(std::max<cycle_t>(interval_cycles, 1)),
          window_(std::min<std::size_t>(models.size(),
                                        std::max<std::uint32_t>(active, 1))),
          picks_(slots),
          next_(slots, 0),
          pending_(slots) {
        rng r(seed);
        for (auto& p : picks_) {
            p.reserve(inferences_per_slot);
            for (std::uint32_t j = 0; j < inferences_per_slot; ++j)
                p.push_back(static_cast<std::uint32_t>(r.next_below(window_)));
        }
    }

    void start(workload_control& ctl) override {
        ctl_ = &ctl;
        if (inferences_per_slot_ == 0) return;
        live_slots_ = static_cast<std::uint32_t>(picks_.size());
        for (std::size_t s = 0; s < picks_.size(); ++s)
            ctl.submit(model_at(s, 0, ctl.now()), static_cast<task_id>(s));
    }

    void on_complete(workload_control& ctl, const completion_info& c) override {
        next_[c.slot] += 1;
        if (next_[c.slot] >= inferences_per_slot_) {
            live_slots_ -= 1;
            return;
        }
        if (think_cycles_ == 0) {
            ctl.submit(model_at(c.slot, next_[c.slot], ctl.now()), c.slot);
            return;
        }
        auto& p = pending_[c.slot];
        p.armed = true;
        p.when = c.end + think_cycles_;
        p.seq = ctl.at(p.when, [this, slot = c.slot] { fire(slot); });
    }

    bool exhausted() const override { return live_slots_ == 0; }

    // ---- checkpoint support (same cursor shape as closed_loop) ----

    bool checkpointable() const override { return true; }

    void save_state(snapshot_writer& w) const override {
        w.u32(live_slots_);
        w.u64(next_.size());
        for (const std::uint32_t n : next_) w.u32(n);
        w.u64(pending_.size());
        for (const auto& p : pending_) {
            w.b(p.armed);
            w.u64(p.when);
            w.u64(p.seq);
        }
    }

    void restore_state(snapshot_reader& r) override {
        live_slots_ = r.u32();
        if (r.count(4) != next_.size())
            throw snapshot_error(
                "snapshot closed-loop-churn slot-count mismatch");
        for (auto& n : next_) n = r.u32();
        if (r.count(17) != pending_.size())
            throw snapshot_error(
                "snapshot closed-loop-churn slot-count mismatch");
        for (auto& p : pending_) {
            p.armed = r.b();
            p.when = r.u64();
            p.seq = r.u64();
        }
    }

    void resume(workload_control& ctl) override {
        ctl_ = &ctl;
        for (std::size_t s = 0; s < pending_.size(); ++s)
            if (pending_[s].armed)
                ctl.at_restored(pending_[s].when, pending_[s].seq,
                                [this, slot = static_cast<task_id>(s)] {
                                    fire(slot);
                                });
    }

private:
    /// The model slot `s` serves for its inference `j` when dispatched at
    /// `now`: the churn phase selects the catalog window, the pre-drawn
    /// pick selects within it.
    const model::model* model_at(std::size_t s, std::uint32_t j,
                                 cycle_t now) const {
        const std::size_t phase =
            static_cast<std::size_t>(now / interval_cycles_);
        const std::size_t base = (phase * window_) % models_.size();
        return models_[(base + picks_[s][j]) % models_.size()];
    }

    void fire(task_id slot) {
        pending_[slot].armed = false;
        ctl_->submit(model_at(slot, next_[slot], ctl_->now()), slot);
    }

    /// A scheduled think-time re-dispatch (so a checkpoint can re-arm it).
    struct pending_submit {
        bool armed = false;
        cycle_t when = 0;
        std::uint64_t seq = 0;
    };

    std::vector<const model::model*> models_;
    std::uint32_t inferences_per_slot_;
    cycle_t think_cycles_;
    cycle_t interval_cycles_;
    std::size_t window_;
    std::vector<std::vector<std::uint32_t>> picks_;
    std::vector<std::uint32_t> next_;
    std::vector<pending_submit> pending_;
    workload_control* ctl_ = nullptr;
    std::uint32_t live_slots_ = 0;
};

// Shared arrival-list machinery of the rate-driven generators: fires a
// pre-built (time, model) list against a bounded admission queue and
// tracks queue-delay percentiles of whatever completes.
class arrival_list_generator : public workload_generator {
public:
    explicit arrival_list_generator(std::uint32_t queue_limit)
        : queue_limit_(queue_limit) {}

    void start(workload_control& ctl) override {
        ctl_ = &ctl;
        for (std::size_t i = 0; i < arrivals_.size(); ++i) {
            const std::uint64_t seq =
                ctl.at(arrivals_[i].at, [this, i] { arrive(i); });
            if (i == 0) base_seq_ = seq;
        }
    }

    void on_complete(workload_control&, const completion_info& c) override {
        queue_delays_.add(cycles_to_ms(c.start - c.arrival));
    }

    bool exhausted() const override { return fired_ == arrivals_.size(); }

    std::uint64_t rejected() const override { return rejected_; }

    const percentile_tracker* queue_delays_ms() const override {
        return &queue_delays_;
    }

    // ---- checkpoint support ----
    //
    // The arrival list itself is a pure function of the construction
    // parameters (the derived class rebuilds it from the config), so the
    // cursor is just the fired-arrival count plus the measurement state.
    // Arrival event ids are consecutive from base_seq_ — start() schedules
    // the whole list back to back before any other event exists.

    bool checkpointable() const override { return true; }

    void save_state(snapshot_writer& w) const override {
        w.u64(fired_);
        w.u64(rejected_);
        w.u64(base_seq_);
        const auto& samples = queue_delays_.sorted_samples();
        w.u64(samples.size());
        for (const double s : samples) w.d(s);
    }

    void restore_state(snapshot_reader& r) override {
        fired_ = static_cast<std::size_t>(r.u64());
        if (fired_ > arrivals_.size())
            throw snapshot_error(
                "snapshot arrival cursor beyond the arrival list");
        rejected_ = r.u64();
        base_seq_ = r.u64();
        const std::uint64_t n = r.count(8);
        std::vector<double> samples(n);
        for (auto& s : samples) s = r.d();
        queue_delays_.assign(std::move(samples));
    }

    void resume(workload_control& ctl) override {
        ctl_ = &ctl;
        // Arrivals fire in time order (the list is ascending), so the
        // fired count is a prefix: re-arm exactly the suffix.
        for (std::size_t i = fired_; i < arrivals_.size(); ++i)
            ctl.at_restored(arrivals_[i].at, base_seq_ + i,
                            [this, i] { arrive(i); });
    }

protected:
    std::vector<trace_arrival> arrivals_;

private:
    void arrive(std::size_t i) {
        fired_ += 1;
        if (ctl_->pending() >= queue_limit_) {
            rejected_ += 1;
            return;
        }
        ctl_->submit(arrivals_[i].mdl);
    }

    std::uint32_t queue_limit_;
    workload_control* ctl_ = nullptr;
    std::size_t fired_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t base_seq_ = 0;
    percentile_tracker queue_delays_;
};

// Open-loop serving: Poisson arrivals at a fixed mean rate, dropped when
// the admission queue is full. Arrival times and model choices are drawn
// up front, so the pattern is a pure function of the seed.
class open_loop_generator final : public arrival_list_generator {
public:
    open_loop_generator(const std::vector<const model::model*>& models,
                        double rate_per_ms, std::uint32_t total,
                        std::uint32_t queue_limit, std::uint64_t seed)
        : arrival_list_generator(queue_limit) {
        rng r(seed);
        const double rate = std::max(rate_per_ms, 1e-9);
        cycle_t t = 0;
        arrivals_.reserve(total);
        for (std::uint32_t i = 0; i < total; ++i) {
            const double gap_ms = -std::log(1.0 - r.next_double()) / rate;
            t += std::max<cycle_t>(1, ms_to_cycles(gap_ms));
            arrivals_.push_back({t, models[r.next_below(models.size())]});
        }
    }
};

// Bursty / diurnal serving: a Markov-modulated Poisson process (see
// mmpp_clock). The whole pattern (state path and arrivals) is drawn up
// front from the seed.
class mmpp_generator final : public arrival_list_generator {
public:
    mmpp_generator(const std::vector<const model::model*>& models,
                   double base_rate_per_ms, std::vector<double> rate_scale,
                   double sojourn_ms, std::uint32_t total,
                   std::uint32_t queue_limit, std::uint64_t seed)
        : arrival_list_generator(queue_limit) {
        rng r(seed);
        mmpp_clock clock(base_rate_per_ms, std::move(rate_scale), sojourn_ms,
                         r);
        cycle_t t = 0;
        arrivals_.reserve(total);
        for (std::uint32_t i = 0; i < total; ++i) {
            t = std::max<cycle_t>(t + 1, ms_to_cycles(clock.next_arrival_ms()));
            arrivals_.push_back({t, models[r.next_below(models.size())]});
        }
    }
};

// Tenant churn: Poisson arrivals whose model population rotates. Phase p
// serves the catalog window starting at p * active (wrapping), so tenants
// continually join and leave — the drifting-mix scenario the adaptive
// controller has to follow.
class churn_generator final : public arrival_list_generator {
public:
    churn_generator(const std::vector<const model::model*>& models,
                    double rate_per_ms, double interval_ms,
                    std::uint32_t active, std::uint32_t total,
                    std::uint32_t queue_limit, std::uint64_t seed)
        : arrival_list_generator(queue_limit) {
        rng r(seed);
        const double rate = std::max(rate_per_ms, 1e-9);
        const double interval = std::max(interval_ms, 1e-6);
        const std::size_t window = std::min<std::size_t>(
            models.size(), std::max<std::uint32_t>(active, 1));
        double t_ms = 0.0;
        cycle_t t = 0;
        arrivals_.reserve(total);
        for (std::uint32_t i = 0; i < total; ++i) {
            t_ms += -std::log(1.0 - r.next_double()) / rate;
            t = std::max<cycle_t>(t + 1, ms_to_cycles(t_ms));
            const std::size_t phase =
                static_cast<std::size_t>(t_ms / interval);
            const std::size_t base = (phase * window) % models.size();
            const std::size_t pick =
                (base + r.next_below(window)) % models.size();
            arrivals_.push_back({t, models[pick]});
        }
    }
};

// Replays an explicit arrival list (e.g. captured from a production log,
// or the per-SoC share a cluster router produced) against the same bounded
// admission queue as the open-loop path.
class trace_generator final : public arrival_list_generator {
public:
    trace_generator(std::vector<trace_arrival> trace, std::uint32_t queue_limit)
        : arrival_list_generator(queue_limit) {
        arrivals_ = std::move(trace);
        arrivals_.erase(std::remove_if(arrivals_.begin(), arrivals_.end(),
                                       [](const trace_arrival& a) {
                                           return a.mdl == nullptr;
                                       }),
                        arrivals_.end());
        std::stable_sort(arrivals_.begin(), arrivals_.end(),
                         [](const trace_arrival& a, const trace_arrival& b) {
                             return a.at < b.at;
                         });
    }
};

}  // namespace

std::unique_ptr<workload_generator> make_workload_generator(
    const sim::experiment_config& cfg) {
    switch (cfg.kind) {
        case workload_kind::closed_loop:
            return std::make_unique<closed_loop_generator>(
                cfg.workload, cfg.co_located, cfg.inferences_per_slot,
                cfg.seed,
                cfg.think_time_ms > 0.0 ? ms_to_cycles(cfg.think_time_ms)
                                        : 0);
        case workload_kind::open_loop_poisson:
            return std::make_unique<open_loop_generator>(
                cfg.workload, cfg.arrival_rate_per_ms, cfg.total_arrivals,
                cfg.admission_queue_limit, cfg.seed);
        case workload_kind::trace_replay:
            return std::make_unique<trace_generator>(cfg.trace,
                                                     cfg.admission_queue_limit);
        case workload_kind::open_loop_mmpp:
            return std::make_unique<mmpp_generator>(
                cfg.workload, cfg.arrival_rate_per_ms, cfg.mmpp_rate_scale,
                cfg.mmpp_sojourn_ms, cfg.total_arrivals,
                cfg.admission_queue_limit, cfg.seed);
        case workload_kind::tenant_churn:
            return std::make_unique<churn_generator>(
                cfg.workload, cfg.arrival_rate_per_ms, cfg.churn_interval_ms,
                cfg.churn_active_models, cfg.total_arrivals,
                cfg.admission_queue_limit, cfg.seed);
        case workload_kind::closed_loop_churn:
            return std::make_unique<closed_loop_churn_generator>(
                cfg.workload, cfg.co_located, cfg.inferences_per_slot,
                cfg.seed,
                cfg.think_time_ms > 0.0 ? ms_to_cycles(cfg.think_time_ms) : 0,
                ms_to_cycles(cfg.churn_interval_ms), cfg.churn_active_models);
    }
    return nullptr;  // unreachable
}

}  // namespace camdn::runtime

#include "runtime/npu_allocator.h"

#include <algorithm>
#include <numeric>

namespace camdn::runtime {

namespace {

std::uint64_t est_remaining_cycles(const task& t) {
    std::uint64_t rem = 0;
    for (std::size_t i = t.current_layer; i < t.mapping->layer_est.size(); ++i)
        rem += t.mapping->layer_est[i];
    return rem;
}

}  // namespace

std::vector<std::uint32_t> npu_allocator::allocate(
    const std::vector<task*>& running, cycle_t now) const {
    std::vector<std::uint32_t> counts(running.size(), 0);

    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < running.size(); ++i) {
        if (running[i] != nullptr) active.push_back(i);
    }
    if (active.empty()) return counts;

    // Everybody gets one core; if the pool is oversubscribed the caller
    // queues surplus tasks instead (counts beyond the pool stay zero, the
    // neediest-first order decides who runs).
    std::uint32_t used = 0;
    // Slack = remaining time / remaining work; smaller is needier.
    std::vector<double> slack(running.size(), 1.0);
    for (std::size_t i : active) {
        const task& t = *running[i];
        const double work =
            std::max<double>(1.0, static_cast<double>(est_remaining_cycles(t)));
        const double time =
            t.deadline == never
                ? work
                : static_cast<double>(t.deadline > now ? t.deadline - now : 1);
        slack[i] = time / work;
    }
    std::sort(active.begin(), active.end(), [&](std::size_t a, std::size_t b) {
        return slack[a] < slack[b];
    });

    for (std::size_t i : active) {
        if (used >= total_cores_) break;
        counts[i] = 1;
        ++used;
    }

    // Spread the remaining cores over the neediest tasks, bounded by the
    // per-task fission limit.
    bool progress = true;
    while (used < total_cores_ && progress) {
        progress = false;
        for (std::size_t i : active) {
            if (used >= total_cores_) break;
            if (counts[i] == 0 || counts[i] >= max_per_task_) continue;
            // Tasks with no deadline pressure keep a single core unless
            // cores outnumber tasks (throughput mode).
            if (slack[i] >= 1.0 &&
                active.size() * 2 > static_cast<std::size_t>(total_cores_))
                continue;
            ++counts[i];
            ++used;
            progress = true;
        }
    }
    return counts;
}

}  // namespace camdn::runtime

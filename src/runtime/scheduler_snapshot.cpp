#include "runtime/scheduler_snapshot.h"

namespace camdn::runtime {

std::vector<std::uint8_t> scheduler_snapshot::encode() const {
    snapshot_writer w;
    w.u32(magic);
    w.u32(version);
    w.u64(machine_fingerprint);
    w.u64(run_fingerprint);
    w.u32(slots);

    w.u64(now);
    w.u64(event_seq);
    w.u64(epoch_deadline);
    w.b(bw_timer_armed);
    w.u64(bw_timer_when);
    w.u64(bw_timer_seq);

    w.u64(dram_bytes_mark);
    w.u64(dram_throttled_mark);
    w.d(ahead_ratio);
    w.u64(slot_completed.size());
    for (const std::uint32_t c : slot_completed) w.u32(c);
    w.u64(page_share.size());
    for (const std::uint32_t p : page_share) w.u32(p);
    w.u64(free_cores.size());
    for (const npu_id c : free_cores) w.i32(c);
    w.u64(core_busy_cycles.size());
    for (const std::uint64_t c : core_busy_cycles) w.u64(c);

    w.u64(admission_queue.size());
    for (const auto& q : admission_queue) {
        w.str(q.model);
        w.u64(q.arrival);
        w.i32(q.slot);
    }

    w.u64(running.size());
    for (const auto& rs : running) {
        w.i32(rs.slot);
        w.str(rs.model);
        w.u32(rs.current_layer);
        w.u64(rs.cores.size());
        for (const npu_id c : rs.cores) w.i32(c);
        w.u64(rs.core_busy_since.size());
        for (const cycle_t c : rs.core_busy_since) w.u64(c);
        w.u64(rs.arrival);
        w.u64(rs.started);
        w.u64(rs.deadline);
        w.u64(rs.t_next);
        w.u32(rs.p_next);
        w.b(rs.lbm_enabled);
        w.u32(rs.lbm_block);
        w.u64(rs.dram_bytes_mark);
        w.b(rs.neg_armed);
        w.i32(rs.neg_cand);
        w.u32(rs.neg_pages);
        w.u64(rs.neg_timeout);
    }

    w.blob(machine);
    w.blob(engine);
    w.blob(typed_events);
    w.blob(telemetry);
    w.blob(controller);
    w.blob(workload);
    w.blob(results);
    return w.take();
}

scheduler_snapshot scheduler_snapshot::decode(const std::uint8_t* data,
                                              std::size_t size) {
    snapshot_reader r(data, size);
    if (r.u32() != magic)
        throw snapshot_error("not a scheduler snapshot (bad magic)");
    const std::uint32_t v = r.u32();
    if (v == 1)
        throw snapshot_error(
            "snapshot version 1 is the legacy quiescent-boundary format "
            "(pre-typed-event engine) and cannot be resumed; re-create the "
            "snapshot with this build");
    if (v != version)
        throw snapshot_error("snapshot version mismatch: have " +
                             std::to_string(v) + ", expected " +
                             std::to_string(version));

    scheduler_snapshot s;
    s.machine_fingerprint = r.u64();
    s.run_fingerprint = r.u64();
    s.slots = r.u32();

    s.now = r.u64();
    s.event_seq = r.u64();
    s.epoch_deadline = r.u64();
    s.bw_timer_armed = r.b();
    s.bw_timer_when = r.u64();
    s.bw_timer_seq = r.u64();

    s.dram_bytes_mark = r.u64();
    s.dram_throttled_mark = r.u64();
    s.ahead_ratio = r.d();
    const std::uint64_t nslot = r.count(4);
    s.slot_completed.resize(nslot);
    for (auto& c : s.slot_completed) c = r.u32();
    const std::uint64_t nshare = r.count(4);
    s.page_share.resize(nshare);
    for (auto& p : s.page_share) p = r.u32();
    const std::uint64_t ncores = r.count(4);
    s.free_cores.resize(ncores);
    for (auto& c : s.free_cores) c = r.i32();
    const std::uint64_t nbusy = r.count(8);
    s.core_busy_cycles.resize(nbusy);
    for (auto& c : s.core_busy_cycles) c = r.u64();

    const std::uint64_t nqueue = r.count(8 + 8 + 4);
    s.admission_queue.resize(nqueue);
    for (auto& q : s.admission_queue) {
        q.model = r.str();
        q.arrival = r.u64();
        q.slot = r.i32();
    }

    const std::uint64_t nrunning = r.count(4 + 8 + 4 + 8 * 2 + 8 * 6 + 4 * 3 +
                                           1 * 2 + 8 * 2 + 4);
    s.running.resize(nrunning);
    for (auto& rs : s.running) {
        rs.slot = r.i32();
        rs.model = r.str();
        rs.current_layer = r.u32();
        const std::uint64_t nc = r.count(4);
        rs.cores.resize(nc);
        for (auto& c : rs.cores) c = r.i32();
        const std::uint64_t nb = r.count(8);
        rs.core_busy_since.resize(nb);
        for (auto& c : rs.core_busy_since) c = r.u64();
        rs.arrival = r.u64();
        rs.started = r.u64();
        rs.deadline = r.u64();
        rs.t_next = r.u64();
        rs.p_next = r.u32();
        rs.lbm_enabled = r.b();
        rs.lbm_block = r.u32();
        rs.dram_bytes_mark = r.u64();
        rs.neg_armed = r.b();
        rs.neg_cand = r.i32();
        rs.neg_pages = r.u32();
        rs.neg_timeout = r.u64();
    }

    s.machine = r.blob();
    s.engine = r.blob();
    s.typed_events = r.blob();
    s.telemetry = r.blob();
    s.controller = r.blob();
    s.workload = r.blob();
    s.results = r.blob();
    if (!r.done())
        throw snapshot_error("snapshot has " + std::to_string(r.remaining()) +
                             " trailing bytes");
    return s;
}

}  // namespace camdn::runtime

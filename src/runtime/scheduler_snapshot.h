// Serializable warm state of a paused (or finished) runtime::scheduler.
//
// Since the typed-event refactor a snapshot can be taken at an *arbitrary*
// cycle — mid-layer, with DMA chunks in flight and stores pending — not
// only at quiescent instants. Everything the simulation's future depends
// on is captured:
//   * the clock, the event-queue tie-break counter and the pending
//     bandwidth-epoch timer (time + sequence, so same-cycle ordering
//     replays bit for bit);
//   * the full machine state — transparent cache lines with LRU order,
//     slice/DRAM timing horizons, the shared page pool (exact free-list
//     order) and live CPTs, per-core busy counters, regulator windows;
//   * scheduler bookkeeping — per-slot inference counts, the NPU free-core
//     stack (release order matters for future dispatch), the admission
//     queue, telemetry epoch marks, the adaptive controller's loop state;
//   * the in-flight execution state — one `running_slot` per busy task
//     (model, layer cursor, core group, QoS deadline, Algorithm-1
//     globals, pending page negotiation), the layer engine's tile
//     cursors and the DMA engine's flight records (the `engine` section),
//     and the pending typed events of the queue (the `typed_events`
//     section) under their saved sequence numbers;
//   * opaque cursor sections for the workload generator and the
//     completions recorded so far (exact resume only).
//
// encode()/decode() round-trip through a versioned little-endian byte
// format; decode throws camdn::snapshot_error on truncation, bad magic or
// version mismatch (version-1 snapshots from the pre-typed-event engine
// are rejected with an explicit legacy message), and scheduler resume
// additionally validates the fingerprints against the resuming
// configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot_io.h"
#include "common/types.h"

namespace camdn::runtime {

struct scheduler_snapshot {
    static constexpr std::uint32_t magic = 0x43534e50;  // "PNSC" on disk
    /// Version 2: typed-event engine — adds the running-slot, engine and
    /// typed-event sections and drops the quiescent-boundary requirement.
    static constexpr std::uint32_t version = 2;

    // ---- identity / compatibility ----
    /// Hash of everything the machine state depends on (SoC geometry,
    /// policy, slot count, feature toggles). Any resume requires a match.
    std::uint64_t machine_fingerprint = 0;
    /// Hash of the arrival side (workload kind, seed, rates/counts, QoS
    /// mode). Exact resume — continuing the same run — requires a match;
    /// warm resume (a new trace segment on the warm machine) does not.
    std::uint64_t run_fingerprint = 0;
    std::uint32_t slots = 0;

    // ---- clock and pending re-armable events ----
    cycle_t now = 0;
    /// Event-queue tie-break counter at the boundary.
    std::uint64_t event_seq = 0;
    /// Next telemetry epoch cut (absolute; `never` when telemetry is off).
    cycle_t epoch_deadline = never;
    bool bw_timer_armed = false;
    cycle_t bw_timer_when = 0;
    std::uint64_t bw_timer_seq = 0;

    // ---- scheduler bookkeeping ----
    std::uint64_t dram_bytes_mark = 0;
    std::uint64_t dram_throttled_mark = 0;
    double ahead_ratio = 0.2;
    /// Per-slot completed-inference counters.
    std::vector<std::uint32_t> slot_completed;
    /// Controller-published per-slot page shares (adaptive policy only).
    std::vector<std::uint32_t> page_share;
    /// Free-core stack in pop order (history-dependent: cores return in
    /// release order, and future dispatches pop from the back).
    std::vector<npu_id> free_cores;
    /// Per-core cumulative busy cycles.
    std::vector<std::uint64_t> core_busy_cycles;

    /// Admitted-but-undispatched requests, with true arrival stamps.
    struct queued_request {
        std::string model;  ///< model name, resolved against the catalog
        cycle_t arrival = 0;
        task_id slot = no_task;
    };
    std::vector<queued_request> admission_queue;

    /// One busy slot's mid-inference state. Empty at quiescent saves
    /// (drained runs, hold-dispatch pauses); populated by mid-layer
    /// pauses. The layer-engine tile cursor and DMA flights of these
    /// slots live in the `engine` section.
    struct running_slot {
        task_id slot = no_task;
        std::string model;  ///< resolved against the catalog on resume
        std::uint32_t current_layer = 0;
        /// Core group plus each core's assignment cycle (busy accounting).
        std::vector<npu_id> cores;
        std::vector<cycle_t> core_busy_since;
        cycle_t arrival = 0;
        cycle_t started = 0;
        cycle_t deadline = never;
        // Algorithm-1 globals (Tnext/Pnext; Palloc rebuilds from the pool).
        cycle_t t_next = 0;
        std::uint32_t p_next = 0;
        bool lbm_enabled = false;
        std::uint32_t lbm_block = 0;
        std::uint64_t dram_bytes_mark = 0;
        /// Pending Algorithm-1 page negotiation: when armed, a sched-channel
        /// page_retry event is queued and these rebuild its decision
        /// (candidate index in the layer's MCT, requested pages, absolute
        /// timeout).
        bool neg_armed = false;
        std::int32_t neg_cand = 0;
        std::uint32_t neg_pages = 0;
        cycle_t neg_timeout = never;
    };
    std::vector<running_slot> running;

    // ---- opaque subsystem sections ----
    std::vector<std::uint8_t> machine;    ///< cache + pool + CPTs + DRAM + cores
    std::vector<std::uint8_t> engine;     ///< layer-run cursors + DMA flights
    std::vector<std::uint8_t> typed_events;  ///< pending typed queue entries
    std::vector<std::uint8_t> telemetry;  ///< bus counters + epoch history
    std::vector<std::uint8_t> controller; ///< feedback-controller loop state
    std::vector<std::uint8_t> workload;   ///< generator cursor (exact resume)
    std::vector<std::uint8_t> results;    ///< completions so far (exact resume)

    std::vector<std::uint8_t> encode() const;
    /// Throws snapshot_error on bad magic, version mismatch, truncation or
    /// trailing garbage.
    static scheduler_snapshot decode(const std::uint8_t* data,
                                     std::size_t size);
    static scheduler_snapshot decode(const std::vector<std::uint8_t>& bytes) {
        return decode(bytes.data(), bytes.size());
    }
};

}  // namespace camdn::runtime

// QoS metrics (paper §IV-A4, definitions following the AuRORA paper):
//   * SLA satisfaction rate — fraction of inferences meeting the deadline;
//   * STP (system throughput) — sum of co-located tasks' normalized
//     progress, where NP = isolated latency / multi-tenant latency;
//   * Fairness — equality of progress: min NP / max NP across tasks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace camdn::runtime {

struct qos_record {
    task_id task = no_task;
    std::string model_abbr;
    cycle_t latency = 0;
    cycle_t deadline_rel = never;  ///< relative deadline (QoS level * target)
    cycle_t isolated = 0;          ///< isolated single-tenant latency
};

struct qos_metrics {
    double sla_rate = 0.0;
    double stp = 0.0;
    double fairness = 0.0;
};

/// Aggregates records of one experiment. `co_located` scales mean
/// normalized progress to system throughput.
qos_metrics compute_qos(const std::vector<qos_record>& records,
                        std::uint32_t co_located);

/// True when a completion of model `abbr` with `latency` meets
/// scale * its Table-I latency target — the one SLA definition shared by
/// the serve-layer aggregation, the fleet rollups and the benches.
bool meets_qos_target(const std::string& abbr, cycle_t latency, double scale);

}  // namespace camdn::runtime

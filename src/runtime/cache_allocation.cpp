#include "runtime/cache_allocation.h"

#include <algorithm>

namespace camdn::runtime {

std::int64_t cache_allocation_algorithm::predict_available_pages(
    const std::vector<const task*>& running, const task& current,
    const cache::page_allocator& pool, cycle_t t_ahead) const {
    std::int64_t ahead = static_cast<std::int64_t>(pool.idle_pages());
    for (const task* t : running) {
        if (t == nullptr || t->id == current.id) continue;
        if (t->t_next < t_ahead) {
            ahead += static_cast<std::int64_t>(t->p_alloc) -
                     static_cast<std::int64_t>(t->p_next);
        }
    }
    // Fairness floor: over any longer horizon a task can always obtain the
    // equal split (co-runners' requests beyond their split time out), so
    // never predict less than that — it keeps transient contention from
    // collapsing the selection to the zero-page candidate. Under adaptive
    // control the floor is the controller's observed per-slot share (the
    // pool divided by slots that are actually competing).
    std::int64_t fair_share;
    if (fair_pages_ != nullptr && current.id >= 0 &&
        static_cast<std::size_t>(current.id) < fair_pages_->size()) {
        fair_share =
            static_cast<std::int64_t>((*fair_pages_)[current.id]);
    } else {
        fair_share = static_cast<std::int64_t>(
            pool.total_pages() /
            std::max<std::size_t>(std::size_t{1}, running.size()));
    }
    return std::max(ahead, fair_share);
}

allocation_decision cache_allocation_algorithm::select(
    const task& current, const std::vector<const task*>& running,
    const cache::page_allocator& pool, cycle_t now, bool allow_lbm) const {
    const mapping::mct& table = current.current_mct();
    const mapping::model_mapping& mm = *current.mapping;
    const std::uint32_t layer = current.current_layer;

    // Lines 7-9: LBM already enabled for this block — stay on it, wait
    // without timeout (the pages are already held).
    if (allow_lbm && current.lbm_enabled && table.lbm &&
        mm.block_of[layer] == current.lbm_block) {
        return {&*table.lbm, table.lbm->pages_needed, never};
    }

    // Lines 10-15: at a block head, enable LBM if the prediction says the
    // block's pages will be available soon enough.
    if (allow_lbm && table.lbm && mm.is_block_head(layer)) {
        const cycle_t t_ahead =
            now + static_cast<cycle_t>(
                      ahead_ratio_ *
                      static_cast<double>(mm.block_est[mm.block_of[layer]]));
        const std::int64_t p_ahead =
            predict_available_pages(running, current, pool, t_ahead);
        if (static_cast<std::int64_t>(table.lbm->pages_needed) < p_ahead) {
            return {&*table.lbm, table.lbm->pages_needed, t_ahead};
        }
    }

    // Lines 16-22: pick the LWM candidate with the most pages that still
    // fits the predicted availability.
    const cycle_t t_ahead =
        now + static_cast<cycle_t>(ahead_ratio_ *
                                   static_cast<double>(mm.layer_est[layer]));
    const std::int64_t p_ahead =
        predict_available_pages(running, current, pool, t_ahead);

    const mapping::mapping_candidate* chosen = &table.lwm.front();
    for (const auto& cand : table.lwm) {
        if (chosen->pages_needed < cand.pages_needed &&
            static_cast<std::int64_t>(cand.pages_needed) <= p_ahead) {
            chosen = &cand;
        }
    }
    return {chosen, chosen->pages_needed, t_ahead};
}

allocation_decision cache_allocation_algorithm::downgrade(
    const task& current, std::uint32_t cap_pages, cycle_t now) const {
    const mapping::mct& table = current.current_mct();
    const mapping::mapping_candidate* chosen = &table.lwm.front();
    for (const auto& cand : table.lwm) {
        if (cand.pages_needed < cap_pages &&
            cand.pages_needed > chosen->pages_needed) {
            chosen = &cand;
        }
    }
    const cycle_t t_ahead =
        now + static_cast<cycle_t>(
                  ahead_ratio_ *
                  static_cast<double>(
                      current.mapping->layer_est[current.current_layer]));
    return {chosen, chosen->pages_needed, t_ahead};
}

}  // namespace camdn::runtime

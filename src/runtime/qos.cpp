#include "runtime/qos.h"

#include <algorithm>

namespace camdn::runtime {

qos_metrics compute_qos(const std::vector<qos_record>& records,
                        std::uint32_t co_located) {
    qos_metrics m;
    if (records.empty()) return m;

    std::uint64_t met = 0;
    // Normalized progress per model (mean over its completions).
    std::map<std::string, std::pair<double, std::uint64_t>> np_by_model;
    for (const auto& r : records) {
        if (r.deadline_rel == never || r.latency <= r.deadline_rel) ++met;
        const double np =
            r.latency > 0
                ? static_cast<double>(r.isolated) / static_cast<double>(r.latency)
                : 0.0;
        auto& acc = np_by_model[r.model_abbr];
        acc.first += np;
        acc.second += 1;
    }
    m.sla_rate = static_cast<double>(met) / records.size();

    double np_sum = 0.0;
    double np_min = 1e300;
    double np_max = 0.0;
    for (const auto& [abbr, acc] : np_by_model) {
        const double np = acc.first / static_cast<double>(acc.second);
        np_sum += np;
        np_min = std::min(np_min, np);
        np_max = std::max(np_max, np);
    }
    const double np_mean = np_sum / static_cast<double>(np_by_model.size());
    m.stp = np_mean * co_located;
    m.fairness = np_max > 0.0 ? np_min / np_max : 0.0;
    return m;
}

}  // namespace camdn::runtime

#include "runtime/qos.h"

#include <algorithm>

#include "model/model_zoo.h"

namespace camdn::runtime {

bool meets_qos_target(const std::string& abbr, cycle_t latency, double scale) {
    const cycle_t target = static_cast<cycle_t>(
        scale * ms_to_cycles(model::model_by_abbr(abbr).qos_ms));
    return latency <= target;
}

qos_metrics compute_qos(const std::vector<qos_record>& records,
                        std::uint32_t co_located) {
    // Degenerate inputs return zeroed metrics rather than NaN/Inf: an
    // empty record set, zero isolated latencies (an unprofiled reference),
    // zero measured latencies, and an all-zero max NP (the fairness
    // denominator) are all products of legitimately empty or partial
    // experiments, and callers fold these metrics straight into tables.
    qos_metrics m;
    if (records.empty()) return m;

    std::uint64_t met = 0;
    // Normalized progress per model (mean over its completions).
    std::map<std::string, std::pair<double, std::uint64_t>> np_by_model;
    for (const auto& r : records) {
        if (r.deadline_rel == never || r.latency <= r.deadline_rel) ++met;
        // Zero latency or zero isolated reference contribute zero progress
        // (0/x and x/0 alike — both mean "no usable measurement").
        const double np =
            r.latency > 0 && r.isolated > 0
                ? static_cast<double>(r.isolated) / static_cast<double>(r.latency)
                : 0.0;
        auto& acc = np_by_model[r.model_abbr];
        acc.first += np;
        acc.second += 1;
    }
    m.sla_rate = static_cast<double>(met) / static_cast<double>(records.size());

    double np_sum = 0.0;
    double np_min = 1e300;
    double np_max = 0.0;
    for (const auto& [abbr, acc] : np_by_model) {
        const double np = acc.first / static_cast<double>(acc.second);
        np_sum += np;
        np_min = std::min(np_min, np);
        np_max = std::max(np_max, np);
    }
    const double np_mean = np_sum / static_cast<double>(np_by_model.size());
    m.stp = np_mean * co_located;
    m.fairness = np_max > 0.0 ? np_min / np_max : 0.0;
    return m;
}

}  // namespace camdn::runtime

// The online multi-tenant scheduler, extracted from the experiment driver
// into a public runtime subsystem.
//
// Owns the simulated SoC and the per-slot task state. A workload_generator
// submits inferences (closed-loop slots, open-loop arrivals or a trace);
// the scheduler queues them for admission, assigns free task slots and NPU
// core groups, and runs each layer through the active policy's resource
// path: MoCA re-partitions bandwidth every epoch, AuRORA sizes core groups
// by deadline slack, the CaMDN variants manage the cache via static shares
// or the per-layer Algorithm-1 page negotiation with LBM.
//
// Runs are resumable at an *arbitrary* cycle: run_segment() pauses at the
// first inter-event instant at or after the requested boundary — mid-layer,
// with DMA chunks in flight and page negotiations pending — and save()
// serializes the full warm state as a scheduler_snapshot. Every pending
// event at a pause is either typed (layer tile gates and stores, DMA chunk
// completions, page-negotiation retries — serialized with the queue) or
// re-armable from an owned cursor (generator arrivals, the bandwidth-epoch
// timer), so a scheduler constructed from the snapshot continues the run
// bit-identically (resume_mode::exact) or starts a new workload segment on
// the warm machine with the in-flight inferences carried across
// (resume_mode::warm; how the serve layer time-slices fleet feedback
// rounds).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "adapt/controller.h"
#include "adapt/telemetry.h"
#include "common/stats.h"
#include "runtime/bandwidth_allocator.h"
#include "runtime/cache_allocation.h"
#include "runtime/scheduler_snapshot.h"
#include "runtime/task.h"
#include "runtime/workload.h"
#include "sim/address_map.h"
#include "sim/experiment.h"
#include "sim/soc.h"

namespace camdn::runtime {

/// How a scheduler constructed from a snapshot interprets it.
enum class resume_mode : std::uint8_t {
    /// Continue the same run bit-identically: the generator cursor, pending
    /// event ids, telemetry history and completions so far are restored, so
    /// the finished result matches an unsplit run exactly. Requires the
    /// identical experiment_config (validated by fingerprint) and a
    /// checkpointable generator.
    exact,
    /// Start a new workload on the warm machine: clock, cache contents,
    /// DRAM timing, controller state and per-slot counters carry over;
    /// results and telemetry history start empty. The SoC geometry, policy
    /// and slot count must match; the arrival side may differ (e.g. the
    /// next feedback round's trace slice).
    warm,
};

class scheduler final : public workload_control {
public:
    /// `cfg` and `gen` must outlive the scheduler.
    scheduler(const sim::experiment_config& cfg, workload_generator& gen);

    /// Resumes from `snap` (see resume_mode). Throws snapshot_error when
    /// the snapshot does not fit `cfg`, or when an exact resume is
    /// requested without a restorable generator cursor.
    scheduler(const sim::experiment_config& cfg, workload_generator& gen,
              const scheduler_snapshot& snap, resume_mode mode);

    /// Runs the generator's workload to completion (deterministic under
    /// cfg.seed).
    sim::experiment_result run();

    /// Runs until the first pause point at or after `boundary`: any
    /// inter-event instant (the next live event strictly in the future),
    /// including mid-layer with transfers in flight — no quiescence wait.
    /// Returns true when paused (save() is now valid); false when the
    /// workload completed first (the result is finalized, as after run()).
    /// May be called repeatedly to advance through multiple boundaries.
    bool run_segment(cycle_t boundary);

    /// Segment-with-backlog variant for bounded workloads (fleet feedback
    /// rounds): once the clock passes `hold_after`, admission keeps
    /// accepting arrivals at their true times (dropping on a full queue,
    /// exactly as live) but no new inference dispatches; running work
    /// finishes and the scheduler pauses with the queued backlog intact.
    /// save() then carries the admission queue, and a warm resume
    /// dispatches it first — no thundering-herd clamp of late arrivals.
    /// Returns true when paused with held work, false when the workload
    /// drained completely first (finalized, as after run()).
    bool run_segment_hold_dispatch(cycle_t hold_after);

    /// Serializes the warm state, including any in-flight inferences.
    /// Valid while paused or after completion; throws std::logic_error
    /// otherwise.
    scheduler_snapshot save() const;

    /// The finalized result (valid once run()/run_segment() completed).
    const sim::experiment_result& result() const { return result_; }
    bool finished() const { return finalized_; }

    /// The segment's result so far — the same fields as a finalized
    /// result with makespan = the pause instant. Cuts the trailing open
    /// telemetry epoch, so call it before save() when both are wanted
    /// (the cut then carries into the snapshot and the next segment's
    /// epochs start at the boundary). Throws std::logic_error unless
    /// paused or finished.
    sim::experiment_result segment_result();

    // ---- workload_control ----
    cycle_t now() const override { return machine_.eq().now(); }
    std::uint64_t at(cycle_t when, std::function<void()> fn) override;
    void at_restored(cycle_t when, std::uint64_t id,
                     std::function<void()> fn) override;
    void submit(const model::model* mdl, task_id slot = no_task) override;
    std::size_t pending() const override { return dispatch_queue_.size(); }

private:
    /// One admitted inference request. slot == no_task means "any free
    /// slot" (open-loop arrivals); closed-loop requests pin their slot.
    struct work_item {
        const model::model* mdl = nullptr;
        cycle_t arrival = 0;
        task_id slot = no_task;
    };

    bool use_bw_alloc() const {
        // camdn_adaptive regulates bandwidth through its feedback
        // controller, not the per-layer MoCA allocator.
        return cfg_.pol == sim::policy::moca ||
               cfg_.pol == sim::policy::aurora ||
               (cfg_.qos_mode && sim::is_camdn(cfg_.pol) &&
                cfg_.pol != sim::policy::camdn_adaptive);
    }
    bool use_npu_alloc() const {
        return cfg_.pol == sim::policy::aurora ||
               (cfg_.qos_mode && sim::is_camdn(cfg_.pol));
    }
    bool adaptive() const { return cfg_.pol == sim::policy::camdn_adaptive; }

    std::vector<const task*> running_tasks_const() const;
    std::vector<task*> running_tasks();
    std::uint64_t est_total_cycles(const task& t) const;

    task_id pick_free_slot() const;
    void try_dispatch();
    void begin_inference(task& t);
    void begin_layer(task& t);
    void negotiate_pages(task& t, allocation_decision d);
    void grant_and_run(task& t, const allocation_decision& d);
    void run_layer(task& t, const mapping::mapping_candidate& cand);
    /// Typed page_retry event handler: rebuilds the slot's armed
    /// allocation decision and re-enters negotiate_pages.
    void on_page_retry(task_id slot);
    void end_layer(task& t, cycle_t end);
    void end_inference(task& t, cycle_t end);
    void remap_cpt(task& t);
    std::uint32_t predict_next_pages(const task& t);
    void schedule_bw_epoch();
    /// Lazy epoch boundary: cuts a telemetry epoch once simulation time
    /// passes the next boundary. Called from layer activity rather than a
    /// scheduled event so telemetry never adds events to the queue (an
    /// observing run stays bit-identical to a bare one, makespan
    /// included).
    void maybe_cut_epoch();
    void cut_epoch();
    /// Feeds a freshly cut epoch to the run observer (JSONL row, metrics).
    /// Observation only — never touches simulated state.
    void observe_epoch(const adapt::epoch_snapshot& snap);
    void apply_action(const adapt::control_action& a);
    void update_done();

    /// First-run / first-resume setup: starts (or resumes) the generator
    /// and arms the bandwidth-epoch timer.
    void start_if_needed();
    /// Fills result_ from the current simulation state (idempotent).
    void fill_result();
    /// Fills result_ and marks the run finished.
    void finalize();
    /// True at an instant eligible for save(): the next live event is
    /// strictly in the future (work may be mid-flight — the typed-event
    /// engine serializes it).
    bool at_pause_point();
    void restore(const scheduler_snapshot& snap, resume_mode mode);
    std::uint64_t machine_fingerprint() const;
    std::uint64_t run_fingerprint() const;

    const sim::experiment_config& cfg_;
    workload_generator& gen_;
    sim::soc machine_;
    cache_allocation_algorithm alg_;
    bandwidth_allocator bw_;

    std::vector<task> tasks_;
    std::vector<sim::address_map> addrs_;
    std::vector<bool> slot_busy_;

    /// Armed Algorithm-1 page-negotiation retry per slot: the payload the
    /// queued sched-channel page_retry event needs to rebuild its
    /// allocation_decision (serializable, unlike the old retry closure).
    struct pending_negotiation {
        bool armed = false;
        std::int32_t cand = -2;  ///< candidate_index in the layer's MCT
        std::uint32_t pages = 0;
        cycle_t timeout = never;
    };
    std::vector<pending_negotiation> neg_;

    std::vector<npu_id> free_cores_;
    std::deque<work_item> dispatch_queue_;
    /// Scratch buffer for the attribution page-wait hook (per-slot page
    /// holdings at the wait instant); reused to avoid per-wait allocation.
    std::vector<std::uint32_t> held_pages_;

    // ---- telemetry + adaptive control (src/adapt) ----
    bool telemetry_on_ = false;
    adapt::telemetry_bus bus_;
    std::unique_ptr<adapt::feedback_controller> ctl_;
    /// Controller-published per-slot page shares (camdn_adaptive); alg_
    /// reads them through set_fair_pages, so updates apply in place.
    std::vector<std::uint32_t> page_share_;
    std::uint64_t dram_bytes_mark_ = 0;
    std::uint64_t dram_throttled_mark_ = 0;
    cycle_t epoch_deadline_ = never;

    /// Resolved metric handles for the per-epoch / per-completion hot
    /// paths: name lookups happen once when the registry is first seen
    /// (slots are reference-stable for the registry's lifetime), after
    /// which every update is a pointer bump instead of a string-keyed map
    /// walk. `bound` keys the cache so a config swap rebinds.
    struct metric_slots {
        obs::metrics_registry* bound = nullptr;
        std::uint64_t* epochs_cut = nullptr;
        std::uint64_t* dram_bytes = nullptr;
        std::uint64_t* dram_throttled = nullptr;
        std::uint64_t* page_wait_cycles = nullptr;
        std::uint64_t* page_timeouts = nullptr;
        std::uint64_t* layers_retired = nullptr;
        std::uint64_t* cache_hits = nullptr;
        std::uint64_t* cache_misses = nullptr;
        std::uint64_t* dma_bytes = nullptr;
        std::uint64_t* completions = nullptr;
        std::uint64_t* deadline_misses = nullptr;
        p2_quantiles* bw_utilization = nullptr;
        p2_quantiles* latency_ms = nullptr;
        p2_quantiles* queue_delay_ms = nullptr;
        double* idle_pages = nullptr;
        double* active_slots = nullptr;
    };
    metric_slots mslots_;
    /// Rebinds mslots_ to `m` (no-op when already bound to it).
    void bind_metric_slots(obs::metrics_registry& m);

    // ---- segmented execution / checkpointing ----
    event_queue::timer bw_timer_;
    bool started_ = false;
    bool paused_ = false;
    bool finalized_ = false;
    /// Dispatch hold (run_segment_hold_dispatch): from this cycle on,
    /// admitted requests stay queued instead of dispatching.
    cycle_t dispatch_hold_after_ = never;
    /// Exact resume defers generator re-arm and seq restore to
    /// start_if_needed; these stash the snapshot's pending-timer state.
    bool resume_exact_ = false;
    bool resume_bw_armed_ = false;
    cycle_t resume_bw_when_ = 0;
    std::uint64_t resume_bw_seq_ = 0;
    std::uint64_t resume_event_seq_ = 0;

    sim::experiment_result result_;
    std::uint32_t in_flight_ = 0;
    bool done_ = false;
};

}  // namespace camdn::runtime

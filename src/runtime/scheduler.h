// The online multi-tenant scheduler, extracted from the experiment driver
// into a public runtime subsystem.
//
// Owns the simulated SoC and the per-slot task state. A workload_generator
// submits inferences (closed-loop slots, open-loop arrivals or a trace);
// the scheduler queues them for admission, assigns free task slots and NPU
// core groups, and runs each layer through the active policy's resource
// path: MoCA re-partitions bandwidth every epoch, AuRORA sizes core groups
// by deadline slack, the CaMDN variants manage the cache via static shares
// or the per-layer Algorithm-1 page negotiation with LBM.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "adapt/controller.h"
#include "adapt/telemetry.h"
#include "runtime/bandwidth_allocator.h"
#include "runtime/cache_allocation.h"
#include "runtime/task.h"
#include "runtime/workload.h"
#include "sim/address_map.h"
#include "sim/experiment.h"
#include "sim/soc.h"

namespace camdn::runtime {

class scheduler final : public workload_control {
public:
    /// `cfg` and `gen` must outlive the scheduler.
    scheduler(const sim::experiment_config& cfg, workload_generator& gen);

    /// Runs the generator's workload to completion (deterministic under
    /// cfg.seed). Call at most once.
    sim::experiment_result run();

    // ---- workload_control ----
    cycle_t now() const override { return machine_.eq().now(); }
    void at(cycle_t when, std::function<void()> fn) override;
    void submit(const model::model* mdl, task_id slot = no_task) override;
    std::size_t pending() const override { return dispatch_queue_.size(); }

private:
    /// One admitted inference request. slot == no_task means "any free
    /// slot" (open-loop arrivals); closed-loop requests pin their slot.
    struct work_item {
        const model::model* mdl = nullptr;
        cycle_t arrival = 0;
        task_id slot = no_task;
    };

    bool use_bw_alloc() const {
        // camdn_adaptive regulates bandwidth through its feedback
        // controller, not the per-layer MoCA allocator.
        return cfg_.pol == sim::policy::moca ||
               cfg_.pol == sim::policy::aurora ||
               (cfg_.qos_mode && sim::is_camdn(cfg_.pol) &&
                cfg_.pol != sim::policy::camdn_adaptive);
    }
    bool use_npu_alloc() const {
        return cfg_.pol == sim::policy::aurora ||
               (cfg_.qos_mode && sim::is_camdn(cfg_.pol));
    }
    bool adaptive() const { return cfg_.pol == sim::policy::camdn_adaptive; }

    std::vector<const task*> running_tasks_const() const;
    std::vector<task*> running_tasks();
    std::uint64_t est_total_cycles(const task& t) const;

    task_id pick_free_slot() const;
    void try_dispatch();
    void begin_inference(task& t);
    void begin_layer(task& t);
    void negotiate_pages(task& t, allocation_decision d);
    void grant_and_run(task& t, const allocation_decision& d);
    void run_layer(task& t, const mapping::mapping_candidate& cand);
    void end_layer(task& t, cycle_t end);
    void end_inference(task& t, cycle_t end);
    void remap_cpt(task& t);
    std::uint32_t predict_next_pages(const task& t);
    void schedule_bw_epoch();
    /// Lazy epoch boundary: cuts a telemetry epoch once simulation time
    /// passes the next boundary. Called from layer activity rather than a
    /// scheduled event so telemetry never adds events to the queue (an
    /// observing run stays bit-identical to a bare one, makespan
    /// included).
    void maybe_cut_epoch();
    void cut_epoch();
    void apply_action(const adapt::control_action& a);
    void update_done();

    const sim::experiment_config& cfg_;
    workload_generator& gen_;
    sim::soc machine_;
    cache_allocation_algorithm alg_;
    bandwidth_allocator bw_;

    std::vector<task> tasks_;
    std::vector<sim::address_map> addrs_;
    std::vector<bool> slot_busy_;

    std::vector<npu_id> free_cores_;
    std::deque<work_item> dispatch_queue_;

    // ---- telemetry + adaptive control (src/adapt) ----
    bool telemetry_on_ = false;
    adapt::telemetry_bus bus_;
    std::unique_ptr<adapt::feedback_controller> ctl_;
    /// Controller-published per-slot page shares (camdn_adaptive); alg_
    /// reads them through set_fair_pages, so updates apply in place.
    std::vector<std::uint32_t> page_share_;
    std::uint64_t dram_bytes_mark_ = 0;
    std::uint64_t dram_throttled_mark_ = 0;
    cycle_t epoch_deadline_ = never;

    sim::experiment_result result_;
    std::uint32_t in_flight_ = 0;
    bool done_ = false;
};

}  // namespace camdn::runtime

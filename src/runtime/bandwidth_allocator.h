// MoCA-style memory-bandwidth partitioning (baseline, paper §II-B1).
//
// MoCA assigns each co-located task a DRAM bandwidth share sized to its
// memory-access requirement and its deadline urgency, re-evaluated every
// epoch. The shares drive the per-task regulators inside dram_system.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "dram/dram_system.h"
#include "runtime/task.h"

namespace camdn::runtime {

class bandwidth_allocator {
public:
    /// Shares are demand-proportional with `headroom` slack above the
    /// exact partition: regulation bounds sustained overuse without
    /// serializing bursty phases (MoCA adapts its partition every epoch
    /// rather than enforcing a hard static split).
    explicit bandwidth_allocator(dram::dram_system& dram,
                                 double headroom = 2.0)
        : dram_(dram), headroom_(headroom) {}

    /// Recomputes shares for `running` tasks at time `now`. Demand is the
    /// current layer's DRAM bytes per estimated cycle; urgency scales the
    /// demand of tasks that are behind their deadline pace.
    void reallocate(const std::vector<task*>& running, cycle_t now);

    /// Removes regulation for every task (used when a policy disables
    /// bandwidth partitioning).
    void clear();

private:
    dram::dram_system& dram_;
    double headroom_;
};

}  // namespace camdn::runtime

// Runtime state of one co-located DNN task (tenant).
//
// Carries the Algorithm 1 global bookkeeping (Tnext / Pnext / Palloc,
// updated at the end of each layer) alongside scheduling and measurement
// state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mapping/mapping.h"
#include "model/model.h"

namespace camdn::runtime {

struct task {
    task_id id = no_task;
    const model::model* mdl = nullptr;
    const mapping::model_mapping* mapping = nullptr;

    std::uint32_t current_layer = 0;

    /// Cores executing this task (>=1 while running). Multi-core tasks
    /// split the m dimension and multicast their parameter reads.
    std::vector<npu_id> cores;

    // Timing of the current inference.
    cycle_t arrival = 0;
    cycle_t started = 0;
    cycle_t deadline = never;  ///< absolute; `never` when no QoS target

    // ---- Algorithm 1 globals (paper: Tnext, Pnext, Palloc) ----
    cycle_t t_next = 0;        ///< predicted next reallocation time
    std::uint32_t p_next = 0;  ///< predicted pages needed at next reallocation
    std::uint32_t p_alloc = 0; ///< pages currently held

    // ---- LBM state ----
    bool lbm_enabled = false;
    std::uint32_t lbm_block = 0;

    // Measurement.
    std::uint32_t completed_inferences = 0;
    std::uint64_t dram_bytes_mark = 0;  ///< dram byte counter at inference start

    bool running() const { return !cores.empty(); }

    const mapping::mct& current_mct() const {
        return mapping->tables[current_layer];
    }
    bool at_last_layer() const {
        return current_layer + 1 >= mdl->layers.size();
    }
};

}  // namespace camdn::runtime

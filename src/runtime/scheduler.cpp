#include "runtime/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <type_traits>

#include "obs/attribution.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "sim/mapping_registry.h"

namespace camdn::runtime {

namespace {

/// FNV-1a accumulator for the snapshot compatibility fingerprints.
struct fingerprint {
    std::uint64_t h = 1469598103934665603ull;

    template <typename T,
              typename std::enable_if<std::is_integral<T>::value, int>::type = 0>
    void add(T v) {
        const std::uint64_t u = static_cast<std::uint64_t>(v);
        for (int i = 0; i < 8; ++i) {
            h ^= (u >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    void add(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        add(bits);
    }
    void add(const std::string& s) {
        add(static_cast<std::uint64_t>(s.size()));
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
    }
};

/// Address-map salt of a model name (FNV-1a). Dispatch and mid-layer
/// restore must derive the identical salt or a resumed run's parameter
/// addresses silently diverge — keep this the single definition.
std::uint64_t model_salt(const std::string& name) {
    std::uint64_t salt = 1469598103934665603ull;
    for (const char ch : name)
        salt = (salt ^ static_cast<unsigned char>(ch)) * 1099511628211ull;
    return salt;
}

}  // namespace

scheduler::scheduler(const sim::experiment_config& cfg, workload_generator& gen)
    : cfg_(cfg),
      gen_(gen),
      machine_(cfg.soc, cfg.pol),
      bw_(machine_.dram()) {
    // The observer's epoch consumers ride the telemetry bus; turning it on
    // for them is observation only (epoch cuts are lazy — see
    // maybe_cut_epoch), so results stay bit-identical to a bare run.
    telemetry_on_ = cfg_.telemetry || adaptive() || cfg_.obs.wants_epochs();
    if (telemetry_on_) {
        bus_.reset(cfg_.co_located);
        machine_.set_telemetry(&bus_);
    }
    if (cfg_.obs.enabled()) machine_.set_observer(cfg_.obs);
    if (adaptive()) {
        page_share_.assign(cfg_.co_located,
                           machine_.cache().pages().total_pages() /
                               std::max<std::uint32_t>(cfg_.co_located, 1));
        alg_.set_fair_pages(&page_share_);
        ctl_ = std::make_unique<adapt::feedback_controller>(
            cfg_.adapt_ctl, cfg_.co_located,
            machine_.cache().pages().total_pages(), alg_.ahead_ratio());
    }

    const std::uint32_t slots = cfg_.co_located;
    tasks_.resize(slots);
    slot_busy_.assign(slots, false);
    neg_.assign(slots, {});
    addrs_.reserve(slots);
    for (std::uint32_t s = 0; s < slots; ++s) {
        tasks_[s].id = static_cast<task_id>(s);
        addrs_.emplace_back(static_cast<task_id>(s));
    }
    for (std::uint32_t c = cfg_.soc.npu.cores; c > 0; --c)
        free_cores_.push_back(static_cast<npu_id>(c - 1));

    // Typed-event wiring: layer completions route back per slot, and
    // page-negotiation retries arrive on the scheduler's channel.
    machine_.layers().set_features(cfg_.features);
    machine_.layers().set_on_done(
        [this](task_id slot, cycle_t end) { end_layer(tasks_[slot], end); });
    machine_.eq().set_handler(event_channel::sched,
                              [this](const typed_event& ev) {
                                  on_page_retry(static_cast<task_id>(ev.a));
                              });
}

scheduler::scheduler(const sim::experiment_config& cfg, workload_generator& gen,
                     const scheduler_snapshot& snap, resume_mode mode)
    : scheduler(cfg, gen) {
    restore(snap, mode);
}

std::uint64_t scheduler::machine_fingerprint() const {
    fingerprint f;
    f.add(static_cast<std::uint64_t>(cfg_.pol));
    f.add(cfg_.co_located);
    f.add((cfg_.features.bypass ? 1u : 0u) | (cfg_.features.multicast ? 2u : 0u) |
          (cfg_.features.lbm ? 4u : 0u));
    const auto& c = cfg_.soc.cache;
    f.add(c.total_bytes);
    f.add(c.ways);
    f.add(c.npu_ways);
    f.add(c.slices);
    f.add(c.page_bytes);
    f.add(c.hit_latency);
    f.add(c.fill_latency);
    f.add(c.noc_latency);
    const auto& d = cfg_.soc.dram;
    f.add(d.channels);
    f.add(d.banks_per_channel);
    f.add(d.row_bytes);
    f.add(d.bytes_per_cycle_x10);
    f.add(d.t_cl);
    f.add(d.t_rcd);
    f.add(d.t_rp);
    f.add(d.t_ccd);
    f.add(d.t_burst_gap);
    f.add(d.t_controller);
    f.add(d.regulation_epoch);
    const auto& n = cfg_.soc.npu;
    f.add(n.pe_rows);
    f.add(n.pe_cols);
    f.add(n.scratchpad_bytes);
    f.add(n.cores);
    f.add(n.pipeline_fill);
    f.add(n.simd_lanes);
    f.add(cfg_.qos_mode ? 1u : 0u);
    f.add(cfg_.qos_scale);
    f.add(cfg_.spread_idle_cores ? 1u : 0u);
    f.add(cfg_.page_retry_interval);
    f.add(cfg_.bw_epoch);
    f.add(cfg_.adapt_ctl.epoch);
    return f.h;
}

std::uint64_t scheduler::run_fingerprint() const {
    fingerprint f;
    f.add(static_cast<std::uint64_t>(cfg_.kind));
    f.add(cfg_.seed);
    f.add(cfg_.inferences_per_slot);
    f.add(cfg_.think_time_ms);
    f.add(cfg_.arrival_rate_per_ms);
    f.add(cfg_.total_arrivals);
    f.add(cfg_.admission_queue_limit);
    f.add(static_cast<std::uint64_t>(cfg_.mmpp_rate_scale.size()));
    for (const double s : cfg_.mmpp_rate_scale) f.add(s);
    f.add(cfg_.mmpp_sojourn_ms);
    f.add(cfg_.churn_interval_ms);
    f.add(cfg_.churn_active_models);
    f.add(cfg_.telemetry ? 1u : 0u);
    f.add(static_cast<std::uint64_t>(cfg_.workload.size()));
    for (const auto* m : cfg_.workload) f.add(m->name);
    f.add(static_cast<std::uint64_t>(cfg_.trace.size()));
    for (const auto& a : cfg_.trace) {
        f.add(a.at);
        if (a.mdl) f.add(a.mdl->name);
    }
    return f.h;
}

void scheduler::restore(const scheduler_snapshot& snap, resume_mode mode) {
    if (snap.machine_fingerprint != machine_fingerprint())
        throw snapshot_error(
            "snapshot machine fingerprint does not match the resuming "
            "configuration (SoC geometry, policy or slot count differ)");
    if (mode == resume_mode::exact) {
        if (snap.run_fingerprint != run_fingerprint())
            throw snapshot_error(
                "exact resume requires the identical workload configuration "
                "(run fingerprint mismatch)");
        if (!gen_.checkpointable() || snap.workload.empty())
            throw snapshot_error(
                "exact resume requires a generator with a saved cursor");
    }
    if (snap.slots != cfg_.co_located ||
        snap.slot_completed.size() != tasks_.size())
        throw snapshot_error("snapshot slot count mismatch");

    machine_.eq().restore_now(snap.now);

    {
        snapshot_reader r(snap.machine);
        machine_.cache().restore_state(r);
        machine_.dram().restore_state(r);
        if (!r.done())
            throw snapshot_error("snapshot machine section has trailing bytes");
    }

    if (snap.core_busy_cycles.size() != machine_.cores().size() ||
        snap.free_cores.size() + [&] {
            std::size_t n = 0;
            for (const auto& rs : snap.running) n += rs.cores.size();
            return n;
        }() != machine_.cores().size())
        throw snapshot_error("snapshot core count mismatch");
    for (std::size_t c = 0; c < machine_.cores().size(); ++c)
        machine_.cores()[c].restore_busy_cycles(snap.core_busy_cycles[c]);
    std::vector<bool> seen(machine_.cores().size(), false);
    for (const npu_id c : snap.free_cores) {
        if (c < 0 || static_cast<std::size_t>(c) >= machine_.cores().size())
            throw snapshot_error("snapshot free-core id out of range");
        if (seen[static_cast<std::size_t>(c)])
            throw snapshot_error("snapshot free-core stack lists core " +
                                 std::to_string(c) + " twice");
        seen[static_cast<std::size_t>(c)] = true;
    }
    free_cores_ = snap.free_cores;

    for (std::size_t s = 0; s < tasks_.size(); ++s)
        tasks_[s].completed_inferences = snap.slot_completed[s];

    // In-flight inferences (mid-layer pauses). Models resolve by name
    // against the catalog and the trace; the mapping registry rebuilds the
    // MCTs deterministically, so candidate indices stay valid.
    auto find_model = [this](const std::string& name) -> const model::model* {
        for (const auto* m : cfg_.workload)
            if (m != nullptr && m->name == name) return m;
        for (const auto& a : cfg_.trace)
            if (a.mdl != nullptr && a.mdl->name == name) return a.mdl;
        return nullptr;
    };
    for (const auto& rs : snap.running) {
        if (rs.slot < 0 || static_cast<std::size_t>(rs.slot) >= tasks_.size())
            throw snapshot_error("snapshot running slot out of range");
        if (slot_busy_[rs.slot])
            throw snapshot_error("snapshot running slot appears twice");
        task& t = tasks_[rs.slot];
        t.mdl = find_model(rs.model);
        if (t.mdl == nullptr)
            throw snapshot_error("snapshot running model '" + rs.model +
                                 "' is not in the workload catalog");
        t.mapping = &sim::mapping_for(*t.mdl, cfg_.soc.mapper());
        if (rs.current_layer >= t.mdl->layers.size())
            throw snapshot_error("snapshot running layer out of range");
        t.current_layer = rs.current_layer;
        if (rs.cores.empty() || rs.cores.size() != rs.core_busy_since.size())
            throw snapshot_error(
                "snapshot running slot has a malformed core group");
        t.cores.clear();
        for (std::size_t i = 0; i < rs.cores.size(); ++i) {
            const npu_id c = rs.cores[i];
            if (c < 0 || static_cast<std::size_t>(c) >= machine_.cores().size())
                throw snapshot_error("snapshot running core id out of range");
            if (seen[static_cast<std::size_t>(c)])
                throw snapshot_error("snapshot core " + std::to_string(c) +
                                     " is both free and assigned (or "
                                     "assigned twice)");
            seen[static_cast<std::size_t>(c)] = true;
            machine_.cores()[c].assign(t.id, rs.core_busy_since[i]);
            t.cores.push_back(c);
        }
        t.arrival = rs.arrival;
        t.started = rs.started;
        t.deadline = rs.deadline;
        t.t_next = rs.t_next;
        t.p_next = rs.p_next;
        t.lbm_enabled = rs.lbm_enabled;
        t.lbm_block = rs.lbm_block;
        t.dram_bytes_mark = rs.dram_bytes_mark;
        t.p_alloc = machine_.cache().pages().allocated(t.id);
        // Re-key the slot's parameter addresses exactly as dispatch did.
        addrs_[rs.slot] = sim::address_map(rs.slot, model_salt(t.mdl->name));
        slot_busy_[rs.slot] = true;
        in_flight_ += 1;
        auto& neg = neg_[rs.slot];
        neg.armed = rs.neg_armed;
        neg.cand = rs.neg_cand;
        neg.pages = rs.neg_pages;
        neg.timeout = rs.neg_timeout;
        if (neg.armed &&
            mapping::candidate_at(t.current_mct(), neg.cand) == nullptr)
            throw snapshot_error(
                "snapshot pending negotiation candidate out of range");
    }

    if (!snap.engine.empty()) {
        snapshot_reader r(snap.engine);
        machine_.layers().restore_state(r, tasks_, addrs_);
        machine_.dma().restore_state(r);
        if (!r.done())
            throw snapshot_error("snapshot engine section has trailing bytes");
    }
    if (!snap.typed_events.empty()) {
        snapshot_reader r(snap.typed_events);
        machine_.eq().restore_typed(r);
        if (!r.done())
            throw snapshot_error(
                "snapshot typed-event section has trailing bytes");
    }

    dram_bytes_mark_ = snap.dram_bytes_mark;
    dram_throttled_mark_ = snap.dram_throttled_mark;
    alg_.set_ahead_ratio(snap.ahead_ratio);
    // A telemetry-off scheduler must keep the deadline at `never` even if
    // the snapshot came from an observing run (maybe_cut_epoch would
    // otherwise cut into a slot-less bus).
    epoch_deadline_ = telemetry_on_ ? snap.epoch_deadline : never;
    if (telemetry_on_ && cfg_.adapt_ctl.epoch != 0 && epoch_deadline_ == never)
        epoch_deadline_ = snap.now + cfg_.adapt_ctl.epoch;

    if (telemetry_on_ && !snap.telemetry.empty()) {
        snapshot_reader r(snap.telemetry);
        bus_.restore_state(r, /*keep_history=*/mode == resume_mode::exact);
        if (!r.done())
            throw snapshot_error(
                "snapshot telemetry section has trailing bytes");
    }
    if (ctl_) {
        if (snap.controller.empty())
            throw snapshot_error(
                "adaptive resume requires controller state in the snapshot");
        snapshot_reader r(snap.controller);
        ctl_->restore_state(r);
        if (!r.done())
            throw snapshot_error(
                "snapshot controller section has trailing bytes");
        if (snap.page_share.size() != page_share_.size())
            throw snapshot_error("snapshot page-share size mismatch");
        std::copy(snap.page_share.begin(), snap.page_share.end(),
                  page_share_.begin());
    }

    for (const auto& q : snap.admission_queue) {
        const model::model* mdl = find_model(q.model);
        if (mdl == nullptr)
            throw snapshot_error("snapshot queued model '" + q.model +
                                 "' is not in the workload catalog");
        if (q.slot != no_task &&
            (q.slot < 0 || static_cast<std::size_t>(q.slot) >= tasks_.size()))
            throw snapshot_error("snapshot queued slot out of range");
        dispatch_queue_.push_back({mdl, q.arrival, q.slot});
        in_flight_ += 1;
    }

    if (mode == resume_mode::exact) {
        {
            snapshot_reader r(snap.workload);
            gen_.restore_state(r);
            if (!r.done())
                throw snapshot_error(
                    "snapshot workload section has trailing bytes");
        }
        if (!snap.results.empty()) {
            snapshot_reader r(snap.results);
            const std::uint64_t n = r.count(4 + 8 * 4 + 4 + 8);
            result_.completions.reserve(n);
            for (std::uint64_t i = 0; i < n; ++i) {
                sim::inference_record rec;
                rec.slot = r.i32();
                rec.abbr = r.str();
                rec.arrival = r.u64();
                rec.start = r.u64();
                rec.end = r.u64();
                rec.dram_bytes = r.u64();
                rec.cores = r.u32();
                result_.completions.push_back(std::move(rec));
            }
            if (!r.done())
                throw snapshot_error(
                    "snapshot results section has trailing bytes");
        }
        resume_exact_ = true;
        resume_bw_armed_ = snap.bw_timer_armed;
        resume_bw_when_ = snap.bw_timer_when;
        resume_bw_seq_ = snap.bw_timer_seq;
        resume_event_seq_ = snap.event_seq;
    } else {
        // Warm resume: the restored typed events keep their saved
        // sequences, so the tie-break counter must move past them before
        // the new workload schedules anything (restored-before-new at
        // equal cycles; relative order among new events is unaffected).
        machine_.eq().restore_next_seq(snap.event_seq);
    }
}

scheduler_snapshot scheduler::save() const {
    if (!paused_ && !finalized_)
        throw std::logic_error(
            "scheduler::save: only valid while paused or after completion");
    std::size_t busy = 0;
    for (const bool b : slot_busy_)
        if (b) ++busy;
    assert(in_flight_ == dispatch_queue_.size() + busy &&
           "pause point accounting: queued + running must equal in-flight");

    scheduler_snapshot s;
    s.machine_fingerprint = machine_fingerprint();
    s.run_fingerprint = run_fingerprint();
    s.slots = cfg_.co_located;
    s.now = machine_.eq().now();
    s.event_seq = machine_.eq().next_seq();
    s.epoch_deadline = epoch_deadline_;
    s.bw_timer_armed = bw_timer_.armed();
    s.bw_timer_when = bw_timer_.when();
    s.bw_timer_seq = bw_timer_.seq();
    s.dram_bytes_mark = dram_bytes_mark_;
    s.dram_throttled_mark = dram_throttled_mark_;
    s.ahead_ratio = alg_.ahead_ratio();

    s.slot_completed.reserve(tasks_.size());
    for (const auto& t : tasks_) s.slot_completed.push_back(t.completed_inferences);
    s.page_share = page_share_;
    s.free_cores = free_cores_;
    s.core_busy_cycles.reserve(machine_.cores().size());
    for (const auto& c : machine_.cores())
        s.core_busy_cycles.push_back(c.busy_cycles());

    s.admission_queue.reserve(dispatch_queue_.size());
    for (const auto& q : dispatch_queue_)
        s.admission_queue.push_back({q.mdl->name, q.arrival, q.slot});

    for (std::size_t sl = 0; sl < tasks_.size(); ++sl) {
        if (!slot_busy_[sl]) continue;
        const task& t = tasks_[sl];
        scheduler_snapshot::running_slot rs;
        rs.slot = t.id;
        rs.model = t.mdl->name;
        rs.current_layer = t.current_layer;
        rs.cores = t.cores;
        rs.core_busy_since.reserve(t.cores.size());
        for (const npu_id c : t.cores)
            rs.core_busy_since.push_back(machine_.cores()[c].busy_since());
        rs.arrival = t.arrival;
        rs.started = t.started;
        rs.deadline = t.deadline;
        rs.t_next = t.t_next;
        rs.p_next = t.p_next;
        rs.lbm_enabled = t.lbm_enabled;
        rs.lbm_block = t.lbm_block;
        rs.dram_bytes_mark = t.dram_bytes_mark;
        rs.neg_armed = neg_[sl].armed;
        rs.neg_cand = neg_[sl].cand;
        rs.neg_pages = neg_[sl].pages;
        rs.neg_timeout = neg_[sl].timeout;
        s.running.push_back(std::move(rs));
    }

    {
        snapshot_writer w;
        machine_.cache().save_state(w);
        machine_.dram().save_state(w);
        s.machine = w.take();
    }
    {
        snapshot_writer w;
        machine_.layers().save_state(w);
        machine_.dma().save_state(w);
        s.engine = w.take();
    }
    {
        snapshot_writer w;
        machine_.eq().save_typed(w);
        s.typed_events = w.take();
    }
    if (telemetry_on_) {
        snapshot_writer w;
        bus_.save_state(w);
        s.telemetry = w.take();
    }
    if (ctl_) {
        snapshot_writer w;
        ctl_->save_state(w);
        s.controller = w.take();
    }
    if (gen_.checkpointable()) {
        snapshot_writer w;
        gen_.save_state(w);
        s.workload = w.take();
    }
    {
        snapshot_writer w;
        w.u64(result_.completions.size());
        for (const auto& rec : result_.completions) {
            w.i32(rec.slot);
            w.str(rec.abbr);
            w.u64(rec.arrival);
            w.u64(rec.start);
            w.u64(rec.end);
            w.u64(rec.dram_bytes);
            w.u32(rec.cores);
        }
        s.results = w.take();
    }
    return s;
}

std::vector<const task*> scheduler::running_tasks_const() const {
    std::vector<const task*> out;
    for (const auto& t : tasks_)
        if (t.running()) out.push_back(&t);
    return out;
}

std::vector<task*> scheduler::running_tasks() {
    std::vector<task*> out;
    for (auto& t : tasks_)
        if (t.running()) out.push_back(&t);
    return out;
}

std::uint64_t scheduler::est_total_cycles(const task& t) const {
    std::uint64_t sum = 0;
    for (auto e : t.mapping->layer_est) sum += e;
    return sum;
}

std::uint64_t scheduler::at(cycle_t when, std::function<void()> fn) {
    // Generator-scheduled events (arrivals) can change exhausted(); the
    // wrapper re-evaluates completion so a drained open-loop run
    // terminates its bandwidth-epoch chain.
    return machine_.eq().schedule(when, [this, fn = std::move(fn)]() {
        fn();
        update_done();
    });
}

void scheduler::at_restored(cycle_t when, std::uint64_t id,
                            std::function<void()> fn) {
    machine_.eq().schedule_restored(when, id,
                                    [this, fn = std::move(fn)]() {
                                        fn();
                                        update_done();
                                    });
}

void scheduler::submit(const model::model* mdl, task_id slot) {
    dispatch_queue_.push_back({mdl, machine_.eq().now(), slot});
    in_flight_ += 1;
    try_dispatch();
}

void scheduler::update_done() {
    if (in_flight_ == 0 && dispatch_queue_.empty() && gen_.exhausted()) {
        done_ = true;
        // A drained run must not let the already-armed bandwidth epoch tick
        // on: cancelling it stops the chain and keeps the pending no-op
        // event from inflating the makespan (the cancelled entry is skipped
        // without advancing the clock).
        bw_timer_.cancel();
    }
}

void scheduler::schedule_bw_epoch() {
    if (done_ || !use_bw_alloc()) return;
    auto running = running_tasks();
    bw_.reallocate(running, machine_.eq().now());
    bw_timer_ = machine_.eq().schedule_cancellable(
        machine_.eq().now() + cfg_.bw_epoch, [this]() { schedule_bw_epoch(); });
}

void scheduler::cut_epoch() {
    adapt::telemetry_bus::cut_sample s;
    const auto& d = machine_.dram().stats();
    s.dram_bytes = d.bytes() - dram_bytes_mark_;
    s.dram_throttled = d.throttled - dram_throttled_mark_;
    dram_bytes_mark_ = d.bytes();
    dram_throttled_mark_ = d.throttled;
    s.peak_bytes_per_cycle = machine_.dram().config().peak_bytes_per_cycle();
    s.idle_pages = machine_.cache().pages().idle_pages();
    const auto& snap = bus_.cut(machine_.eq().now(), s);
    observe_epoch(snap);
    if (ctl_) apply_action(ctl_->on_epoch(snap));
}

void scheduler::bind_metric_slots(obs::metrics_registry& m) {
    if (mslots_.bound == &m) return;
    mslots_.bound = &m;
    mslots_.epochs_cut = m.counter_slot("sim.epochs_cut");
    mslots_.dram_bytes = m.counter_slot("sim.dram_bytes");
    mslots_.dram_throttled = m.counter_slot("sim.dram_throttled");
    mslots_.page_wait_cycles = m.counter_slot("sim.page_wait_cycles");
    mslots_.page_timeouts = m.counter_slot("sim.page_timeouts");
    mslots_.layers_retired = m.counter_slot("sim.layers_retired");
    mslots_.cache_hits = m.counter_slot("sim.cache_hits");
    mslots_.cache_misses = m.counter_slot("sim.cache_misses");
    mslots_.dma_bytes = m.counter_slot("sim.dma_bytes");
    mslots_.completions = m.counter_slot("sched.completions");
    mslots_.deadline_misses = m.counter_slot("sched.deadline_misses");
    mslots_.bw_utilization = &m.histogram("sim.epoch_bw_utilization");
    mslots_.latency_ms = &m.histogram("sched.latency_ms");
    mslots_.queue_delay_ms = &m.histogram("sched.queue_delay_ms");
    mslots_.idle_pages = m.gauge_slot("sim.idle_pages");
    mslots_.active_slots = m.gauge_slot("sim.active_slots");
}

void scheduler::observe_epoch(const adapt::epoch_snapshot& snap) {
    const obs::run_observer& o = cfg_.obs;
    if (!o.wants_epochs()) return;
    const std::uint32_t every =
        o.epoch_sample_every == 0 ? 1 : o.epoch_sample_every;
    if (o.epochs != nullptr && snap.index % every == 0)
        o.epochs->epoch_row(o.soc_index, snap);
    if (o.metrics != nullptr) {
        bind_metric_slots(*o.metrics);
        *mslots_.epochs_cut += 1;
        *mslots_.dram_bytes += snap.dram_bytes;
        *mslots_.dram_throttled += snap.dram_throttled;
        *mslots_.page_wait_cycles += snap.total_page_wait();
        *mslots_.page_timeouts += snap.total_timeouts();
        for (const auto& t : snap.tasks) {
            *mslots_.layers_retired += t.layers_retired;
            *mslots_.cache_hits += t.cache_hits;
            *mslots_.cache_misses += t.cache_misses;
            *mslots_.dma_bytes += t.dma_bytes;
        }
        mslots_.bw_utilization->add(snap.bw_utilization);
        *mslots_.idle_pages = snap.idle_pages;
        *mslots_.active_slots = snap.active_slots;
    }
    if (o.attr != nullptr) {
        if (o.epochs != nullptr && snap.index % every == 0)
            o.epochs->row(o.attr->jsonl_row(o.soc_index, snap.index));
        if (o.trace != nullptr) {
            // One counter track per latency component: cumulative cycles
            // sampled at each epoch cut.
            const cycle_t at = machine_.eq().now();
            const obs::attribution_components tot = o.attr->totals();
            o.trace->counter("attr.queue_wait", 0, at, tot.queue_wait);
            o.trace->counter("attr.page_wait", 0, at, tot.page_wait);
            o.trace->counter("attr.dma_stall", 0, at, tot.dma_stall);
            o.trace->counter("attr.dram_contention", 0, at,
                             tot.dram_contention);
            o.trace->counter("attr.cache_penalty", 0, at, tot.cache_penalty);
            o.trace->counter("attr.compute", 0, at, tot.compute);
        }
    }
}

void scheduler::maybe_cut_epoch() {
    if (machine_.eq().now() < epoch_deadline_) return;
    cut_epoch();
    epoch_deadline_ = machine_.eq().now() + cfg_.adapt_ctl.epoch;
}

void scheduler::apply_action(const adapt::control_action& a) {
    alg_.set_ahead_ratio(a.ahead_ratio);
    for (std::size_t s = 0; s < page_share_.size() && s < a.page_share.size();
         ++s)
        page_share_[s] = a.page_share[s];
    // Bandwidth caps apply to currently running slots only; idle slots are
    // left unregulated so a fresh dispatch never inherits a stale cap.
    for (std::size_t s = 0; s < a.bw_share.size() && s < tasks_.size(); ++s)
        machine_.dram().set_task_share(static_cast<task_id>(s),
                                       tasks_[s].running() ? a.bw_share[s]
                                                           : 0.0);
}

task_id scheduler::pick_free_slot() const {
    for (std::size_t s = 0; s < slot_busy_.size(); ++s)
        if (!slot_busy_[s]) return static_cast<task_id>(s);
    return no_task;
}

void scheduler::try_dispatch() {
    obs::profile_scope scope(cfg_.obs.prof, obs::subsystem::sched);
    if (machine_.eq().now() >= dispatch_hold_after_) return;
    while (!dispatch_queue_.empty() && !free_cores_.empty()) {
        // First dispatchable item in FIFO order: a request pinned to a
        // still-busy slot must not head-of-line block later requests whose
        // slot (or any free slot) is available.
        std::size_t idx = 0;
        task_id slot = no_task;
        for (; idx < dispatch_queue_.size(); ++idx) {
            const work_item& cand = dispatch_queue_[idx];
            slot = cand.slot != no_task ? (slot_busy_[cand.slot] ? no_task
                                                                 : cand.slot)
                                        : pick_free_slot();
            if (slot != no_task) break;
        }
        if (slot == no_task) return;  // nothing dispatchable right now

        const model::model* mdl = dispatch_queue_[idx].mdl;
        const cycle_t arrival = dispatch_queue_[idx].arrival;
        dispatch_queue_.erase(dispatch_queue_.begin() + idx);
        slot_busy_[slot] = true;

        task& t = tasks_[slot];
        t.mdl = mdl;
        t.mapping = &sim::mapping_for(*mdl, cfg_.soc.mapper());
        t.current_layer = 0;
        // Re-key the slot's parameter addresses to the dispatched model
        // (FNV-1a of the name keeps runs reproducible across processes).
        addrs_[slot] = sim::address_map(slot, model_salt(mdl->name));
        if (auto* at = cfg_.obs.attr) at->on_dispatch(slot, mdl->abbr);
        t.arrival = arrival;
        // The deadline anchors at arrival — the same reference the SLA
        // metrics use — so queue delay consumes slack. Closed-loop slots
        // dispatch the moment they submit, where this equals the old
        // driver's now()-anchored deadline bit for bit; open-loop requests
        // that waited for admission arrive at dispatch already urgent.
        t.deadline = cfg_.qos_mode
                         ? arrival +
                               static_cast<cycle_t>(cfg_.qos_scale *
                                                    ms_to_cycles(mdl->qos_ms))
                         : never;

        // Core-group sizing. QoS mode sizes groups by deadline slack
        // (AuRORA's policy, also adopted by CaMDN in the QoS experiment);
        // throughput mode spreads idle cores evenly across every policy so
        // low co-location points compare systems, not core counts.
        std::uint32_t want = 1;
        if (use_npu_alloc() && t.deadline != never) {
            const double est = static_cast<double>(est_total_cycles(t));
            const double window = static_cast<double>(
                t.deadline > machine_.eq().now()
                    ? t.deadline - machine_.eq().now()
                    : 1);
            want = static_cast<std::uint32_t>(
                std::clamp(est / window + 0.999, 1.0, 4.0));
        } else if (!cfg_.qos_mode && cfg_.spread_idle_cores &&
                   cfg_.co_located < cfg_.soc.npu.cores) {
            want = std::min<std::uint32_t>(
                4, cfg_.soc.npu.cores / cfg_.co_located);
        }
        want = std::min<std::uint32_t>(
            want, static_cast<std::uint32_t>(free_cores_.size()));
        want = std::max<std::uint32_t>(want, 1);

        t.cores.clear();
        for (std::uint32_t i = 0; i < want; ++i) {
            t.cores.push_back(free_cores_.back());
            free_cores_.pop_back();
        }
        for (npu_id c : t.cores)
            machine_.cores()[c].assign(t.id, machine_.eq().now());

        begin_inference(t);
    }
}

void scheduler::begin_inference(task& t) {
    t.started = machine_.eq().now();
    if (auto* at = cfg_.obs.attr)
        at->on_inference_start(t.id, t.arrival, t.started);
    neg_[t.id] = {};
    t.dram_bytes_mark = machine_.dram().task_bytes(t.id);
    t.lbm_enabled = false;
    t.t_next = machine_.eq().now();
    t.p_next = 0;

    if (cfg_.pol == sim::policy::camdn_hw_only) {
        // Equal static split of the NPU subspace, granted once per
        // inference; no dynamic adjustment afterwards.
        const std::uint32_t share =
            machine_.cache().pages().total_pages() / cfg_.co_located;
        const std::uint32_t have = machine_.cache().pages().allocated(t.id);
        if (share > have)
            machine_.cache().pages().try_allocate(t.id, share - have);
        t.p_alloc = machine_.cache().pages().allocated(t.id);
        remap_cpt(t);
    }

    begin_layer(t);
}

void scheduler::begin_layer(task& t) {
    maybe_cut_epoch();

    // Bandwidth-partitioning policies track layer changes: demands shift at
    // layer granularity, so shares are refreshed here as well as at epochs.
    if (use_bw_alloc()) {
        auto running = running_tasks();
        bw_.reallocate(running, machine_.eq().now());
    }

    const mapping::mct& table = t.current_mct();

    switch (cfg_.pol) {
        case sim::policy::shared_baseline:
        case sim::policy::moca:
        case sim::policy::aurora:
            run_layer(t, table.minimal());
            return;

        case sim::policy::camdn_hw_only: {
            // Architecture only: the static share bounds the LWM candidate;
            // LBM and prediction belong to the scheduling method (Full).
            const std::uint32_t share = t.p_alloc;
            const mapping::mapping_candidate* best = &table.lwm.front();
            for (const auto& cand : table.lwm)
                if (cand.pages_needed <= share &&
                    cand.pages_needed >= best->pages_needed)
                    best = &cand;
            run_layer(t, *best);
            return;
        }

        case sim::policy::camdn_full:
        case sim::policy::camdn_adaptive: {
            auto running = running_tasks_const();
            auto decision = alg_.select(t, running, machine_.cache().pages(),
                                        machine_.eq().now(), cfg_.features.lbm);
            negotiate_pages(t, decision);
            return;
        }
    }
}

void scheduler::negotiate_pages(task& t, allocation_decision d) {
    auto& pool = machine_.cache().pages();
    const std::uint32_t target = d.pages_needed;

    // Shrink first: excess pages return to the pool immediately.
    if (t.p_alloc > target) {
        pool.release(t.id, t.p_alloc - target);
        t.p_alloc = pool.allocated(t.id);
        remap_cpt(t);
    }
    if (t.p_alloc < target) {
        auto got = pool.try_allocate(t.id, target - t.p_alloc);
        if (!got) {
            const cycle_t now = machine_.eq().now();
            if (d.timeout != never && now >= d.timeout) {
                // Timeout: fall back to the next-smaller candidate.
                if (telemetry_on_)
                    bus_.on_page_timeout(t.id, d.candidate->is_lbm);
                if (auto* tr = cfg_.obs.trace)
                    tr->instant("page_timeout", "sched",
                                static_cast<std::uint32_t>(t.id), now);
                negotiate_pages(
                    t, alg_.downgrade(t, d.candidate->pages_needed, now));
                return;
            }
            const cycle_t retry =
                std::min(d.timeout, now + cfg_.page_retry_interval);
            if (telemetry_on_) bus_.on_page_wait(t.id, retry - now);
            if (auto* tr = cfg_.obs.trace)
                tr->complete("page_wait", "sched",
                             static_cast<std::uint32_t>(t.id), now, retry);
            if (auto* at = cfg_.obs.attr) {
                // Who holds the pages this wait is gated on: the co-located
                // slots' current allocations apportion the blame.
                held_pages_.resize(cfg_.co_located);
                for (std::uint32_t s = 0; s < cfg_.co_located; ++s)
                    held_pages_[s] = machine_.cache().pages().allocated(
                        static_cast<task_id>(s));
                at->on_page_wait(t.id, retry - now, held_pages_.data(),
                                 held_pages_.size());
            }
            // The retry is a typed event: the decision's payload lands in
            // the slot's pending_negotiation record so a mid-wait
            // checkpoint can rebuild it.
            auto& neg = neg_[t.id];
            neg.armed = true;
            neg.cand = mapping::candidate_index(t.current_mct(), d.candidate);
            neg.pages = d.pages_needed;
            neg.timeout = d.timeout;
            machine_.eq().schedule_event(
                retry,
                typed_event{static_cast<std::uint8_t>(event_channel::sched), 0,
                            static_cast<std::uint64_t>(t.id), 0});
            return;
        }
        t.p_alloc = pool.allocated(t.id);
        remap_cpt(t);
    }
    grant_and_run(t, d);
}

void scheduler::grant_and_run(task& t, const allocation_decision& d) {
    if (d.candidate->is_lbm && !t.lbm_enabled) {
        t.lbm_enabled = true;
        t.lbm_block = t.mapping->block_of[t.current_layer];
    }
    // Publish the Algorithm 1 prediction state: the co-runners see when
    // this task will reallocate next and how many pages it expects to use.
    t.t_next = machine_.eq().now() + d.candidate->est_cycles;
    t.p_next = predict_next_pages(t);
    run_layer(t, *d.candidate);
}

std::uint32_t scheduler::predict_next_pages(const task& t) {
    const std::uint32_t next = t.current_layer + 1;
    if (next >= t.mdl->layers.size()) return 0;
    const mapping::mct& table = t.mapping->tables[next];
    if (t.lbm_enabled && t.mapping->block_of[next] == t.lbm_block && table.lbm)
        return table.lbm->pages_needed;
    // Predicted steady-state demand: the largest candidate within the
    // equal split — co-runners converge to their fair share, so pages held
    // beyond it are expected to come back to the pool. Under adaptive
    // control the split tracks the observed competitor count instead of
    // the configured slot count.
    const std::uint32_t fair =
        adaptive() && t.id >= 0 &&
                static_cast<std::size_t>(t.id) < page_share_.size()
            ? page_share_[t.id]
            : machine_.cache().pages().total_pages() / cfg_.co_located;
    const mapping::mapping_candidate* pick = &table.lwm.front();
    for (const auto& cand : table.lwm)
        if (cand.pages_needed <= fair && cand.pages_needed >= pick->pages_needed)
            pick = &cand;
    return pick->pages_needed;
}

void scheduler::remap_cpt(task& t) {
    auto& cpt = machine_.cache().cpt(t.id);
    cpt.clear();
    const auto& pages = machine_.cache().pages().pages_of(t.id);
    for (std::uint32_t v = 0; v < pages.size(); ++v) cpt.map(v, pages[v]);
}

void scheduler::on_page_retry(task_id slot) {
    obs::profile_scope scope(cfg_.obs.prof, obs::subsystem::sched);
    auto& neg = neg_[slot];
    if (!neg.armed) return;  // superseded (defensive; retries arm 1:1)
    neg.armed = false;
    task& t = tasks_[slot];
    allocation_decision d;
    d.candidate = mapping::candidate_at(t.current_mct(), neg.cand);
    d.pages_needed = neg.pages;
    d.timeout = neg.timeout;
    assert(d.candidate != nullptr && "armed negotiation must resolve");
    negotiate_pages(t, d);
}

void scheduler::run_layer(task& t, const mapping::mapping_candidate& cand) {
    machine_.layers().start(t, cand, addrs_[t.id]);
}

void scheduler::end_layer(task& t, cycle_t end) {
    obs::profile_scope scope(cfg_.obs.prof, obs::subsystem::sched);
    maybe_cut_epoch();
    t.t_next = end;  // reallocating right now

    if (sim::is_camdn_dynamic(cfg_.pol) && t.lbm_enabled &&
        t.mapping->is_block_tail(t.current_layer)) {
        // The block's intermediates are dead; return the arena promptly.
        machine_.cache().pages().release_all(t.id);
        t.p_alloc = 0;
        t.lbm_enabled = false;
        remap_cpt(t);
    }

    t.current_layer += 1;
    if (t.current_layer < t.mdl->layers.size()) {
        begin_layer(t);
    } else {
        end_inference(t, end);
    }
}

void scheduler::end_inference(task& t, cycle_t end) {
    if (telemetry_on_) bus_.on_completion(t.id, end, t.deadline);
    if (auto* tr = cfg_.obs.trace)
        tr->complete_arg(tr->intern(t.mdl->abbr), "inference",
                         static_cast<std::uint32_t>(t.id), t.started, end,
                         static_cast<std::uint64_t>(t.cores.size()));
    if (auto* m = cfg_.obs.metrics) {
        bind_metric_slots(*m);
        *mslots_.completions += 1;
        mslots_.latency_ms->add(cycles_to_ms(end - t.arrival));
        mslots_.queue_delay_ms->add(cycles_to_ms(t.started - t.arrival));
        if (t.deadline != never && end > t.deadline)
            *mslots_.deadline_misses += 1;
    }
    if (auto* at = cfg_.obs.attr) at->on_inference_end(t.id, end);
    if (sim::is_camdn(cfg_.pol)) {
        machine_.cache().pages().release_all(t.id);
        t.p_alloc = 0;
        t.lbm_enabled = false;
        machine_.cache().destroy_cpt(t.id);
    }
    machine_.dram().set_task_share(t.id, 0.0);

    sim::inference_record rec;
    rec.slot = t.id;
    rec.abbr = t.mdl->abbr;
    rec.arrival = t.arrival;
    rec.start = t.started;
    rec.end = end;
    rec.cores = static_cast<std::uint32_t>(t.cores.size());
    rec.dram_bytes = machine_.dram().task_bytes(t.id) - t.dram_bytes_mark;
    result_.completions.push_back(std::move(rec));

    for (npu_id c : t.cores) {
        machine_.cores()[c].release(machine_.eq().now());
        free_cores_.push_back(c);
    }
    t.cores.clear();
    t.completed_inferences += 1;
    slot_busy_[t.id] = false;
    assert(in_flight_ > 0);
    in_flight_ -= 1;

    completion_info info;
    info.slot = t.id;
    info.mdl = t.mdl;
    info.arrival = t.arrival;
    info.start = t.started;
    info.end = end;
    gen_.on_complete(*this, info);
    update_done();
    try_dispatch();
}

void scheduler::start_if_needed() {
    if (started_) return;
    started_ = true;

    if (resume_exact_) {
        // Re-arm the pending work under its saved event ids so same-cycle
        // ordering replays bit for bit, then restore the tie-break counter
        // for everything scheduled after the boundary.
        gen_.resume(*this);
        if (resume_bw_armed_)
            bw_timer_ = machine_.eq().restore_cancellable(
                resume_bw_when_, resume_bw_seq_,
                [this]() { schedule_bw_epoch(); });
        machine_.eq().restore_next_seq(resume_event_seq_);
        update_done();
        // A held snapshot (run_segment_hold_dispatch) cancelled the
        // bandwidth-epoch chain before saving; there is no continuous
        // reference to phase-match, so re-arm it fresh like a warm resume.
        if (!done_ && !bw_timer_.armed()) schedule_bw_epoch();
        try_dispatch();
        return;
    }

    if (telemetry_on_ && cfg_.adapt_ctl.epoch != 0 && epoch_deadline_ == never)
        epoch_deadline_ = cfg_.adapt_ctl.epoch;

    gen_.start(*this);
    update_done();
    schedule_bw_epoch();
    try_dispatch();
}

bool scheduler::at_pause_point() {
    if (done_) return false;
    // All same-cycle activity must have drained: the next live event has to
    // be strictly in the future. In-flight work is fine — its typed events
    // serialize with the queue, and every pending closure at such an
    // instant (arrivals, the bandwidth-epoch timer, think-time
    // re-dispatches) is reconstructible from an owned cursor.
    return machine_.eq().next_time() > machine_.eq().now();
}

bool scheduler::run_segment(cycle_t boundary) {
    if (finalized_) return false;
    start_if_needed();
    paused_ = false;
    if (dispatch_hold_after_ != never) {
        // Continuing past a held pause lifts the hold: the carried backlog
        // dispatches now.
        dispatch_hold_after_ = never;
        try_dispatch();
    }

    auto& eq = machine_.eq();
    // Chunk-event coalescing may not run past the pause boundary: a
    // coalesced continuation at or beyond it would skip the pause check
    // this loop performs between step()s. Below the boundary no pause can
    // trigger, so the horizon is exactly the boundary (exclusive).
    eq.set_inline_horizon(boundary);
    while (true) {
        if (!done_ && eq.now() >= boundary && at_pause_point()) {
            paused_ = true;
            eq.set_inline_horizon(0);
            return true;
        }
        if (!eq.step()) break;
    }
    eq.set_inline_horizon(0);
    finalize();
    return false;
}

bool scheduler::run_segment_hold_dispatch(cycle_t hold_after) {
    if (finalized_) return false;
    start_if_needed();
    paused_ = false;
    dispatch_hold_after_ = hold_after;
    try_dispatch();  // a backlog held by an earlier segment may now be due

    auto& eq = machine_.eq();
    // The held pause requires no running inference, and a DMA chunk chain
    // only exists under a running layer — a coalesced continuation can
    // never skip this loop's pause check, so the horizon is unbounded.
    eq.set_inline_horizon(never);
    while (true) {
        // Held boundary: every arrival has fired (into the queue or onto
        // the floor), no inference is running, and nothing further is due
        // this cycle. The only pending event can be the bandwidth-epoch
        // timer, which is cancelled — a warm resume re-arms it.
        const bool no_running = in_flight_ == dispatch_queue_.size();
        if (!done_ && no_running && gen_.exhausted()) {
            bw_timer_.cancel();
            if (eq.next_time() > eq.now()) {
                paused_ = true;
                eq.set_inline_horizon(0);
                return true;
            }
        }
        if (!eq.step()) break;
    }
    eq.set_inline_horizon(0);
    dispatch_hold_after_ = never;
    finalize();
    return false;
}

void scheduler::fill_result() {
    result_.makespan = machine_.eq().now();
    result_.cache_hit_rate = machine_.cache().stats().hit_rate();
    result_.cache_stats = machine_.cache().stats();
    result_.dram_stats = machine_.dram().stats();
    result_.dram_total_bytes = machine_.dram().stats().bytes();
    result_.events_executed = machine_.eq().executed_events();
    result_.rejected_arrivals = gen_.rejected();
    if (const percentile_tracker* delays = gen_.queue_delays_ms())
        result_.queue_delay_ms = *delays;
    if (telemetry_on_) {
        // Close the trailing partial epoch so every counted event lands in
        // exactly one exported snapshot.
        if (bus_.open_epoch_active()) cut_epoch();
        result_.telemetry = bus_.history();
    }
    if (auto* m = cfg_.obs.metrics) {
        // set(), not add(): fill_result runs once per segment_result call
        // and these are run totals, not deltas.
        const auto& eq = machine_.eq();
        m->set("eq.events_executed", eq.executed_events());
        m->set("eq.dispatch.dma", eq.typed_dispatched(event_channel::dma));
        m->set("eq.dispatch.layer", eq.typed_dispatched(event_channel::layer));
        m->set("eq.dispatch.sched", eq.typed_dispatched(event_channel::sched));
        m->set("eq.dispatch.closure", eq.closures_dispatched());
    }
    if (cfg_.obs.attr != nullptr && cfg_.obs.metrics != nullptr)
        cfg_.obs.attr->export_metrics(*cfg_.obs.metrics);
}

void scheduler::finalize() {
    if (finalized_) return;
    assert(in_flight_ == 0 && "experiment ended with live inferences");
    assert(gen_.exhausted() && "experiment ended with pending arrivals");
    fill_result();
    finalized_ = true;
}

sim::experiment_result scheduler::segment_result() {
    if (!paused_ && !finalized_)
        throw std::logic_error(
            "scheduler::segment_result: only valid while paused or after "
            "completion");
    if (!finalized_) {
        fill_result();
        // The boundary cut closed an epoch; start the next segment's first
        // epoch at the boundary rather than the stale deadline.
        if (telemetry_on_ && cfg_.adapt_ctl.epoch != 0)
            epoch_deadline_ = machine_.eq().now() + cfg_.adapt_ctl.epoch;
    }
    return result_;
}

sim::experiment_result scheduler::run() {
    run_segment(never);
    return result_;
}

}  // namespace camdn::runtime

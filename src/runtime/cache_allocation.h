// Dynamic cache allocation — Algorithm 1 of the paper, verbatim.
//
// At the start of each layer the algorithm predicts near-future available
// pages from the co-runners' profiled reallocation times, gates LBM on that
// prediction, and otherwise selects the largest LWM candidate that fits.
// On a timeout the caller downgrades to the next-smaller candidate via
// `downgrade()`.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/page_allocator.h"
#include "common/types.h"
#include "mapping/mapping.h"
#include "runtime/task.h"

namespace camdn::runtime {

struct allocation_decision {
    const mapping::mapping_candidate* candidate = nullptr;
    std::uint32_t pages_needed = 0;
    /// Absolute timeout for waiting on the page request; `never` when LBM
    /// is already enabled for the current block (paper line 9).
    cycle_t timeout = never;
};

class cache_allocation_algorithm {
public:
    /// `ahead_ratio` is the paper's 0.2 look-ahead factor on the profiled
    /// layer/block latency estimate.
    explicit cache_allocation_algorithm(double ahead_ratio = 0.2)
        : ahead_ratio_(ahead_ratio) {}

    /// predAvailPages (paper lines 1-6): idle pages plus pages expected to
    /// be released by other tasks that will reallocate before `t_ahead`.
    std::int64_t predict_available_pages(const std::vector<const task*>& running,
                                         const task& current,
                                         const cache::page_allocator& pool,
                                         cycle_t t_ahead) const;

    /// Full selection (paper lines 7-22). `allow_lbm` = false restricts the
    /// choice to LWM candidates (ablation switch).
    allocation_decision select(const task& current,
                               const std::vector<const task*>& running,
                               const cache::page_allocator& pool, cycle_t now,
                               bool allow_lbm = true) const;

    /// Timeout path: the largest candidate requiring strictly fewer pages
    /// than `cap_pages` (falls back to the minimal, zero-page candidate).
    allocation_decision downgrade(const task& current, std::uint32_t cap_pages,
                                  cycle_t now) const;

    double ahead_ratio() const { return ahead_ratio_; }

    /// Adaptive-control inputs (policy::camdn_adaptive): the feedback
    /// controller retunes the look-ahead each epoch and replaces the
    /// equal-split fairness floor with observed per-slot shares. `shares`
    /// must outlive the algorithm; nullptr restores the static floor.
    void set_ahead_ratio(double r) { ahead_ratio_ = r; }
    void set_fair_pages(const std::vector<std::uint32_t>* shares) {
        fair_pages_ = shares;
    }

private:
    double ahead_ratio_;
    const std::vector<std::uint32_t>* fair_pages_ = nullptr;
};

}  // namespace camdn::runtime

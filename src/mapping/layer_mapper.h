// Heuristic-solver-hybrid layer mapper (paper §III-C1).
//
// Heuristic rules first shrink the search space:
//   * tile sizes are multiples of the PE array dims (compute utilization)
//     drawn from a power-of-two ladder (cache-line utilization);
//   * tk is maximized for the chosen (tm, tn) — the reduction dimension
//     never adds traffic, so bigger is never worse;
//   * loop permutations collapse to the dataflow implied by the tiling.
// The remaining disjoint subspaces — one per tensor-pinning choice — are
// solved exactly by enumeration with minimal DRAM access as the objective
// (standing in for the paper's integer-programming solver; after pruning
// the subspaces are small enough for the exhaustive solve to be exact).
#pragma once

#include <cstdint>

#include "mapping/cost_model.h"
#include "mapping/mapping.h"
#include "model/model.h"

namespace camdn::mapping {

/// Generates the MCT of one layer: one LWM candidate per usage level
/// (dominance-deduplicated) and an LBM candidate when the enclosing block
/// has two or more layers.
mct map_layer(const model::model& m, std::uint32_t layer_index,
              const model::layer_block& block, const mapper_config& cfg);

/// Maps a whole model: segments it into layer blocks and produces the
/// per-layer MCTs plus latency estimates (the "model mapping file").
model_mapping map_model(const model::model& m, const mapper_config& cfg);

}  // namespace camdn::mapping

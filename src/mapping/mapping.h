// Mapping candidates and Mapping Candidate Tables (MCTs, paper §III-C).
//
// A mapping candidate fixes, for one layer:
//   * the tiling (tm, tn, tk) of the canonical GEMM loops onto the
//     scratchpad (k is always the innermost tile loop; partial sums stay
//     in the scratchpad accumulators, so tk never adds traffic);
//   * the placement of each tensor: pinned into the model's cache region,
//     streamed through bypass (CaMDN), or streamed through the transparent
//     cache (baselines execute the same candidate through that path);
//   * derived metrics the scheduler needs (pages, traffic, cycle estimate).
//
// An MCT stores one layer-wise candidate (LWM) per cache-usage level plus
// at most one layer-block candidate (LBM) that keeps intermediates of the
// enclosing block entirely in cache.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "model/layer_blocks.h"
#include "model/model.h"

namespace camdn::mapping {

/// Dataflow class implied by the tiling (for reporting; the traffic model
/// depends only on the tile sizes).
enum class dataflow : std::uint8_t {
    output_stationary,
    weight_stationary,
    input_stationary,
};

struct mapping_candidate {
    /// Cache-usage level this candidate was generated for (bytes). The
    /// candidate's true footprint is pages_needed * page_bytes <= level.
    std::uint64_t usage_level = 0;
    bool is_lbm = false;

    // Tiling of the canonical GEMM dims.
    std::uint64_t tm = 1;
    std::uint64_t tn = 1;
    std::uint64_t tk = 1;
    dataflow flow = dataflow::output_stationary;

    // Tensor placements. Pinning may be partial: the first
    // *_pinned_bytes of the tensor live in the model's cache region and
    // the remainder streams — this is what lets a candidate exist at every
    // usage level even when whole tensors exceed it.
    std::uint64_t weights_pinned_bytes = 0;
    std::uint64_t input_pinned_bytes = 0;
    bool input_from_region = false;  ///< LBM chain: producer left it in cache
    bool output_to_region = false;   ///< LBM: output stays in cache

    bool weights_cached() const { return weights_pinned_bytes > 0; }
    bool input_cached() const { return input_pinned_bytes > 0; }

    // Refetch factors implied by the tiling.
    std::uint64_t weight_passes = 1;
    std::uint64_t input_passes = 1;

    // Derived requirements and estimates.
    std::uint32_t pages_needed = 0;
    std::uint64_t dram_read_bytes = 0;
    std::uint64_t dram_write_bytes = 0;
    std::uint64_t cache_read_bytes = 0;   ///< region reads (incl. re-reads)
    std::uint64_t cache_write_bytes = 0;  ///< region fills + LBM writes
    std::uint64_t compute_cycles = 0;
    /// Profiling-style isolated latency estimate (Algorithm 1's Test).
    std::uint64_t est_cycles = 0;

    std::uint64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
};

/// Mapping Candidate Table of one layer.
struct mct {
    /// LWM candidates in ascending pages_needed order (deduplicated).
    std::vector<mapping_candidate> lwm;
    std::optional<mapping_candidate> lbm;

    /// Smallest candidate — always exists and needs zero pages.
    const mapping_candidate& minimal() const { return lwm.front(); }
};

/// Serializable identity of `cand` inside `table`: its LWM index, -1 for
/// the LBM candidate, -2 when not part of the table. Checkpoints store
/// this index instead of the pointer.
inline std::int32_t candidate_index(const mct& table,
                                    const mapping_candidate* cand) {
    if (table.lbm && cand == &*table.lbm) return -1;
    for (std::size_t i = 0; i < table.lwm.size(); ++i)
        if (cand == &table.lwm[i]) return static_cast<std::int32_t>(i);
    return -2;
}

/// Inverse of candidate_index; nullptr when the index does not resolve.
inline const mapping_candidate* candidate_at(const mct& table,
                                             std::int32_t index) {
    if (index == -1) return table.lbm ? &*table.lbm : nullptr;
    if (index >= 0 && static_cast<std::size_t>(index) < table.lwm.size())
        return &table.lwm[index];
    return nullptr;
}

/// Offline mapping output for one model (the "model mapping file").
struct model_mapping {
    std::string model_name;
    std::vector<mct> tables;                      // one per layer
    std::vector<model::layer_block> blocks;       // LBM segmentation
    std::vector<std::uint32_t> block_of;          // layer -> block index

    /// Per-layer latency estimate (median candidate), cycles.
    std::vector<std::uint64_t> layer_est;
    /// Per-block latency estimate under LBM, cycles.
    std::vector<std::uint64_t> block_est;

    const model::layer_block& block_of_layer(std::uint32_t layer) const {
        return blocks[block_of[layer]];
    }
    bool is_block_head(std::uint32_t layer) const {
        return blocks[block_of[layer]].first == layer;
    }
    bool is_block_tail(std::uint32_t layer) const {
        return blocks[block_of[layer]].last == layer;
    }
};

}  // namespace camdn::mapping

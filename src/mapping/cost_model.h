// Analytic cost model: given a layer, a tiling and tensor placements,
// derive traffic, compute cycles, pages and a latency estimate.
//
// Traffic accounting (int8 tensors, int32 accumulators in scratchpad):
//   * weights   read weight_passes = ceil(m/tm) times; a pinned tensor is
//     fetched from DRAM once and re-read from the cache region;
//   * inputs    read input_passes = ceil(n/tn) times, same pinning rule;
//     an LBM chain input comes from the region with zero DRAM traffic;
//   * outputs   written once — to DRAM via bypass, or into the region
//     under LBM;
//   * residual  second activation input read once (from the region when
//     its producer is inside the same LBM block).
// k-tiling is free of traffic: partial sums never leave the scratchpad.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "mapping/mapping.h"
#include "model/layer.h"
#include "npu/npu_config.h"

namespace camdn::mapping {

struct mapper_config {
    npu::npu_config npu{};
    std::uint64_t page_bytes = kib(32);

    /// Cache-usage levels for which LWM candidates are generated
    /// (paper Fig 6: 0 KiB, 256 KiB, 512 KiB, ...).
    std::vector<std::uint64_t> usage_levels = {
        0, kib(256), kib(512), mib(1), mib(2), mib(4), mib(8)};

    /// LBM segmentation: block budget and maximum block length.
    std::uint64_t lbm_block_budget = mib(8);
    std::uint32_t lbm_max_layers = 6;

    /// Bandwidth assumption for the latency estimate (fair share of the
    /// Table II 102.4 B/cycle across 16 cores).
    double est_dram_bytes_per_cycle = 6.4;
    /// Region read bandwidth seen by one core (NoC port width).
    double est_cache_bytes_per_cycle = 64.0;

    std::uint64_t tile_budget() const { return npu.tile_budget_bytes(); }
};

/// True when the residual source of `l` (if any) lies inside the same
/// layer block as `l`.
bool residual_in_block(const model::model& m, std::uint32_t layer_index,
                       const model::layer_block& block);

/// Fills every derived field of `cand` (traffic, pages, cycles, flow)
/// from the tiling/placement fields already set. `in_block_residual`
/// states whether the residual input is LBM-resident.
void finalize_candidate(const model::layer& l, const mapper_config& cfg,
                        mapping_candidate& cand, bool in_block_residual,
                        std::uint64_t lbm_block_pages);

/// Compute cycles of the whole layer under the given tiling.
std::uint64_t layer_compute_cycles(const model::layer& l,
                                   const mapper_config& cfg, std::uint64_t tm,
                                   std::uint64_t tn, std::uint64_t tk);

/// Scratchpad bytes of one (tm, tn, tk) tile: int8 input rows + int8
/// weight columns + int32 accumulators.
std::uint64_t tile_footprint_bytes(std::uint64_t tm, std::uint64_t tn,
                                   std::uint64_t tk);

}  // namespace camdn::mapping

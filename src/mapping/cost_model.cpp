#include "mapping/cost_model.h"

#include <algorithm>
#include <cmath>

#include "npu/compute_model.h"

namespace camdn::mapping {

namespace {
constexpr std::uint64_t acc_bytes = 4;
}

std::uint64_t tile_footprint_bytes(std::uint64_t tm, std::uint64_t tn,
                                   std::uint64_t tk) {
    return tm * tk + tk * tn + tm * tn * acc_bytes;
}

bool residual_in_block(const model::model& m, std::uint32_t layer_index,
                       const model::layer_block& block) {
    const std::int32_t src = m.layers[layer_index].residual_from;
    if (src < 0) return false;
    return static_cast<std::uint32_t>(src) >= block.first &&
           static_cast<std::uint32_t>(src) < layer_index;
}

std::uint64_t layer_compute_cycles(const model::layer& l,
                                   const mapper_config& cfg, std::uint64_t tm,
                                   std::uint64_t tn, std::uint64_t tk) {
    using model::layer_kind;
    switch (l.kind) {
        case layer_kind::elementwise:
        case layer_kind::pool:
            return npu::simd_cycles(cfg.npu, l.m);
        case layer_kind::dwconv: {
            // Channels across columns, pixels across rows, window as the
            // streamed dimension; tiling adds fill overhead per tile.
            const std::uint64_t tiles =
                ceil_div(l.m, tm) * ceil_div(l.n, tn);
            (void)tiles;
            return npu::dwconv_tile_cycles(cfg.npu, l.m, l.n, l.k);
        }
        case layer_kind::conv:
        case layer_kind::gemm: {
            // Pipeline fill is paid once per k-tile per (row, col) pass.
            const std::uint64_t k_tiles = ceil_div(l.k, tk);
            const std::uint64_t row_passes = ceil_div(l.m, cfg.npu.pe_rows);
            const std::uint64_t col_passes = ceil_div(l.n, cfg.npu.pe_cols);
            return row_passes * col_passes *
                   (l.k + cfg.npu.pipeline_fill * k_tiles);
        }
    }
    return 0;
}

void finalize_candidate(const model::layer& l, const mapper_config& cfg,
                        mapping_candidate& cand, bool in_block_residual,
                        std::uint64_t lbm_block_pages) {
    using model::layer_kind;

    const bool simple =
        l.kind == layer_kind::elementwise || l.kind == layer_kind::pool;
    const bool dw = l.kind == layer_kind::dwconv;

    if (simple || dw) {
        cand.weight_passes = 1;
        cand.input_passes = 1;
    } else {
        cand.weight_passes = ceil_div(l.m, cand.tm);
        cand.input_passes = ceil_div(l.n, cand.tn);
        // Stationary tiles: when a tensor's tile covers the whole tensor
        // (single tile along its loop, full reduction depth), a
        // double-buffered NPU keeps it resident in the scratchpad instead
        // of re-fetching it every pass.
        if (ceil_div(l.n, cand.tn) == 1 && cand.tk == l.k)
            cand.weight_passes = 1;  // weight-stationary
        if (ceil_div(l.m, cand.tm) == 1 && cand.tk == l.k)
            cand.input_passes = 1;  // input-stationary
    }

    // Dataflow label.
    if (cand.weight_passes == 1 && cand.input_passes > 1)
        cand.flow = dataflow::weight_stationary;
    else if (cand.input_passes == 1 && cand.weight_passes > 1)
        cand.flow = dataflow::input_stationary;
    else
        cand.flow = dataflow::output_stationary;

    cand.dram_read_bytes = 0;
    cand.dram_write_bytes = 0;
    cand.cache_read_bytes = 0;
    cand.cache_write_bytes = 0;

    cand.weights_pinned_bytes = std::min(cand.weights_pinned_bytes, l.weight_bytes);
    cand.input_pinned_bytes = std::min(cand.input_pinned_bytes, l.input_bytes);

    // Weights: the pinned prefix is filled once and re-read from cache;
    // the remainder streams on every pass.
    if (l.weight_bytes > 0) {
        const std::uint64_t pinned = cand.weights_pinned_bytes;
        const std::uint64_t streamed = l.weight_bytes - pinned;
        cand.dram_read_bytes += pinned + streamed * cand.weight_passes;
        cand.cache_write_bytes += pinned;
        cand.cache_read_bytes += pinned * cand.weight_passes;
    }

    // Input activations, same partial-pinning rule; an LBM chain input is
    // wholly region-resident with zero DRAM traffic.
    if (l.input_bytes > 0) {
        if (cand.input_from_region) {
            cand.cache_read_bytes += l.input_bytes * cand.input_passes;
        } else {
            const std::uint64_t pinned = cand.input_pinned_bytes;
            const std::uint64_t streamed = l.input_bytes - pinned;
            cand.dram_read_bytes += pinned + streamed * cand.input_passes;
            cand.cache_write_bytes += pinned;
            cand.cache_read_bytes += pinned * cand.input_passes;
        }
    }

    // Residual second input (read once). Only LBM actually keeps the
    // producer's tensor region-resident; LWM candidates re-read it from
    // DRAM even when the producer shares the block.
    if (l.residual_from >= 0) {
        if (cand.is_lbm && in_block_residual) {
            cand.cache_read_bytes += l.output_bytes;
        } else {
            cand.dram_read_bytes += l.output_bytes;
        }
    }

    // Output.
    if (cand.output_to_region) {
        cand.cache_write_bytes += l.output_bytes;
    } else {
        cand.dram_write_bytes += l.output_bytes;
    }

    // Pages: LBM candidates reserve the whole block's peak; LWM candidates
    // reserve their pinned bytes.
    if (cand.is_lbm) {
        cand.pages_needed = static_cast<std::uint32_t>(lbm_block_pages);
    } else {
        const std::uint64_t pinned =
            cand.weights_pinned_bytes + cand.input_pinned_bytes;
        cand.pages_needed =
            static_cast<std::uint32_t>(ceil_div(pinned, cfg.page_bytes));
    }

    cand.compute_cycles = layer_compute_cycles(l, cfg, cand.tm, cand.tn, cand.tk);

    const double dram_cycles =
        static_cast<double>(cand.dram_bytes()) / cfg.est_dram_bytes_per_cycle;
    const double cache_cycles =
        static_cast<double>(cand.cache_read_bytes + cand.cache_write_bytes) /
        cfg.est_cache_bytes_per_cycle;
    cand.est_cycles = static_cast<std::uint64_t>(
        std::max({static_cast<double>(cand.compute_cycles), dram_cycles,
                  cache_cycles}));
}

}  // namespace camdn::mapping

#include "mapping/mct_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace camdn::mapping {

namespace {

void write_candidate(std::ostream& os, const mapping_candidate& c) {
    os << (c.is_lbm ? "LBM" : "LWM") << ' ' << c.usage_level << ' ' << c.tm
       << ' ' << c.tn << ' ' << c.tk << ' ' << static_cast<int>(c.flow) << ' '
       << c.weights_pinned_bytes << ' ' << c.input_pinned_bytes << ' '
       << c.input_from_region << ' ' << c.output_to_region << ' '
       << c.weight_passes << ' ' << c.input_passes << ' ' << c.pages_needed
       << ' ' << c.dram_read_bytes << ' ' << c.dram_write_bytes << ' '
       << c.cache_read_bytes << ' ' << c.cache_write_bytes << ' '
       << c.compute_cycles << ' ' << c.est_cycles << '\n';
}

mapping_candidate read_candidate(std::istringstream& line, int line_no) {
    mapping_candidate c;
    std::string tag;
    int flow = 0;
    line >> tag >> c.usage_level >> c.tm >> c.tn >> c.tk >> flow >>
        c.weights_pinned_bytes >> c.input_pinned_bytes >> c.input_from_region >>
        c.output_to_region >> c.weight_passes >> c.input_passes >>
        c.pages_needed >> c.dram_read_bytes >> c.dram_write_bytes >>
        c.cache_read_bytes >> c.cache_write_bytes >> c.compute_cycles >>
        c.est_cycles;
    if (!line || (tag != "LWM" && tag != "LBM")) {
        throw std::runtime_error("mct_io: malformed candidate at line " +
                                 std::to_string(line_no));
    }
    c.is_lbm = tag == "LBM";
    c.flow = static_cast<dataflow>(flow);
    return c;
}

}  // namespace

void write_mapping(std::ostream& os, const model_mapping& m) {
    os << "camdn-mapping-v1\n";
    os << "model " << m.model_name << '\n';
    os << "blocks " << m.blocks.size() << '\n';
    for (const auto& b : m.blocks) {
        os << "block " << b.first << ' ' << b.last << ' ' << b.peak_bytes;
        for (auto off : b.out_offset) os << ' ' << off;
        os << '\n';
    }
    os << "layers " << m.tables.size() << '\n';
    for (std::size_t i = 0; i < m.tables.size(); ++i) {
        const mct& t = m.tables[i];
        os << "layer " << i << ' ' << m.layer_est[i] << ' ' << t.lwm.size()
           << ' ' << (t.lbm ? 1 : 0) << '\n';
        for (const auto& c : t.lwm) write_candidate(os, c);
        if (t.lbm) write_candidate(os, *t.lbm);
    }
    os << "block_est " << m.block_est.size();
    for (auto v : m.block_est) os << ' ' << v;
    os << "\nend\n";
}

model_mapping read_mapping(std::istream& is) {
    model_mapping m;
    std::string line;
    int line_no = 0;
    auto next_line = [&]() -> std::istringstream {
        if (!std::getline(is, line))
            throw std::runtime_error("mct_io: unexpected end of file at line " +
                                     std::to_string(line_no));
        ++line_no;
        return std::istringstream(line);
    };
    auto expect = [&](std::istringstream& ss, const std::string& keyword) {
        std::string word;
        ss >> word;
        if (word != keyword)
            throw std::runtime_error("mct_io: expected '" + keyword +
                                     "' at line " + std::to_string(line_no));
    };

    {
        auto ss = next_line();
        std::string magic;
        ss >> magic;
        if (magic != "camdn-mapping-v1")
            throw std::runtime_error("mct_io: bad magic header");
    }
    {
        auto ss = next_line();
        expect(ss, "model");
        ss >> m.model_name;
    }
    std::size_t block_count = 0;
    {
        auto ss = next_line();
        expect(ss, "blocks");
        ss >> block_count;
    }
    for (std::size_t b = 0; b < block_count; ++b) {
        auto ss = next_line();
        expect(ss, "block");
        model::layer_block blk;
        ss >> blk.first >> blk.last >> blk.peak_bytes;
        if (!ss)
            throw std::runtime_error("mct_io: malformed block at line " +
                                     std::to_string(line_no));
        blk.out_offset.resize(blk.last - blk.first + 1, 0);
        for (auto& off : blk.out_offset) ss >> off;
        if (!ss)
            throw std::runtime_error("mct_io: malformed block layout at line " +
                                     std::to_string(line_no));
        m.blocks.push_back(blk);
    }
    std::size_t layer_count = 0;
    {
        auto ss = next_line();
        expect(ss, "layers");
        ss >> layer_count;
    }
    m.block_of.resize(layer_count, 0);
    for (std::uint32_t b = 0; b < m.blocks.size(); ++b)
        for (std::uint32_t i = m.blocks[b].first; i <= m.blocks[b].last; ++i)
            if (i < layer_count) m.block_of[i] = b;

    for (std::size_t i = 0; i < layer_count; ++i) {
        auto ss = next_line();
        expect(ss, "layer");
        std::size_t index = 0;
        std::uint64_t est = 0;
        std::size_t lwm_count = 0;
        int has_lbm = 0;
        ss >> index >> est >> lwm_count >> has_lbm;
        if (!ss || index != i)
            throw std::runtime_error("mct_io: malformed layer header at line " +
                                     std::to_string(line_no));
        mct table;
        for (std::size_t c = 0; c < lwm_count; ++c) {
            auto cs = next_line();
            table.lwm.push_back(read_candidate(cs, line_no));
        }
        if (has_lbm) {
            auto cs = next_line();
            table.lbm = read_candidate(cs, line_no);
        }
        m.tables.push_back(std::move(table));
        m.layer_est.push_back(est);
    }
    {
        auto ss = next_line();
        expect(ss, "block_est");
        std::size_t count = 0;
        ss >> count;
        m.block_est.resize(count, 0);
        for (std::size_t b = 0; b < count; ++b) ss >> m.block_est[b];
        if (!ss)
            throw std::runtime_error("mct_io: malformed block_est at line " +
                                     std::to_string(line_no));
    }
    return m;
}

std::string mapping_to_string(const model_mapping& mapping) {
    std::ostringstream os;
    write_mapping(os, mapping);
    return os.str();
}

model_mapping mapping_from_string(const std::string& text) {
    std::istringstream is(text);
    return read_mapping(is);
}

}  // namespace camdn::mapping

// Compact text serialization of model mapping files (paper §III-C3: MCTs
// store candidates in a compact format instead of unrolled NPU
// instructions). The format is line-based and round-trips exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "mapping/mapping.h"

namespace camdn::mapping {

/// Writes `mapping` as a "camdn-mapping-v1" document.
void write_mapping(std::ostream& os, const model_mapping& mapping);

/// Parses a document produced by write_mapping. Throws std::runtime_error
/// with a line-numbered message on malformed input.
model_mapping read_mapping(std::istream& is);

/// Convenience string round-trip helpers.
std::string mapping_to_string(const model_mapping& mapping);
model_mapping mapping_from_string(const std::string& text);

}  // namespace camdn::mapping

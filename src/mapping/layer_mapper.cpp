#include "mapping/layer_mapper.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>

namespace camdn::mapping {

namespace {

constexpr std::uint64_t acc_bytes = 4;

/// Power-of-two multiples of `unit` clamped to `dim`, always containing a
/// value >= dim (so "whole dimension in one tile" is reachable).
std::vector<std::uint64_t> tile_ladder(std::uint64_t dim, std::uint64_t unit) {
    std::vector<std::uint64_t> ladder;
    if (dim <= unit) {
        ladder.push_back(dim);
        return ladder;
    }
    for (std::uint64_t t = unit; t < dim; t *= 2) ladder.push_back(t);
    ladder.push_back(dim);
    return ladder;
}

/// Largest tk (multiple of 64, clamped to k) whose tile fits the budget;
/// 0 when even tk = 1 does not fit.
std::uint64_t max_tk(std::uint64_t tm, std::uint64_t tn, std::uint64_t k,
                     std::uint64_t budget) {
    const std::uint64_t acc = tm * tn * acc_bytes;
    if (acc >= budget) return 0;
    std::uint64_t tk = (budget - acc) / (tm + tn);
    if (tk == 0) return 0;
    if (tk >= k) return k;
    if (tk >= 64) tk = tk / 64 * 64;
    return tk;
}

/// True when `a` is a strictly better candidate than `b` under the
/// mapper's objective (min DRAM, then fewer pages, then lower estimate).
bool better(const mapping_candidate& a, const mapping_candidate& b) {
    if (a.dram_bytes() != b.dram_bytes()) return a.dram_bytes() < b.dram_bytes();
    if (a.pages_needed != b.pages_needed) return a.pages_needed < b.pages_needed;
    return a.est_cycles < b.est_cycles;
}

struct pin_choice {
    std::uint64_t weight_bytes = 0;  // pinned prefix of the parameters
    std::uint64_t input_bytes = 0;   // pinned prefix of the input
};

/// Solves one subspace: fixed placements, enumerate tilings, minimize DRAM.
std::optional<mapping_candidate> solve_subspace(
    const model::layer& l, const mapper_config& cfg, std::uint64_t usage_level,
    const pin_choice& pins, bool input_from_region, bool output_to_region,
    bool is_lbm, bool in_block_residual, std::uint64_t lbm_block_pages) {
    using model::layer_kind;

    std::optional<mapping_candidate> best;
    auto consider = [&](std::uint64_t tm, std::uint64_t tn, std::uint64_t tk) {
        mapping_candidate cand;
        cand.usage_level = usage_level;
        cand.is_lbm = is_lbm;
        cand.tm = tm;
        cand.tn = tn;
        cand.tk = tk;
        cand.weights_pinned_bytes = pins.weight_bytes;
        cand.input_pinned_bytes = pins.input_bytes;
        cand.input_from_region = input_from_region;
        cand.output_to_region = output_to_region;
        finalize_candidate(l, cfg, cand, in_block_residual, lbm_block_pages);
        if (!is_lbm && cand.pages_needed * cfg.page_bytes > usage_level &&
            cand.pages_needed > 0) {
            return;  // pinned tensors exceed this usage level
        }
        if (!best || better(cand, *best)) best = cand;
    };

    if (l.kind == layer_kind::elementwise || l.kind == layer_kind::pool ||
        l.kind == layer_kind::dwconv) {
        // Streaming operators: a single canonical tiling.
        consider(l.m, l.n, l.k);
        return best;
    }

    const std::uint64_t budget = cfg.tile_budget();
    for (std::uint64_t tm : tile_ladder(l.m, cfg.npu.pe_rows)) {
        for (std::uint64_t tn : tile_ladder(l.n, cfg.npu.pe_cols)) {
            const std::uint64_t tk = max_tk(tm, tn, l.k, budget);
            if (tk == 0) continue;
            consider(tm, tn, tk);
        }
    }
    return best;
}

}  // namespace

mct map_layer(const model::model& m, std::uint32_t layer_index,
              const model::layer_block& block, const mapper_config& cfg) {
    const model::layer& l = m.layers[layer_index];
    const bool in_block_res = residual_in_block(m, layer_index, block);

    mct table;

    for (std::uint64_t level : cfg.usage_levels) {
        // Disjoint pinning subspaces within this usage level: split the
        // budget between the two pinnable tensors at a few ratios, spilling
        // any slack from a fully covered tensor to the other (partial
        // pinning keeps a useful candidate at every level).
        std::vector<pin_choice> choices;
        choices.push_back({0, 0});
        for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            const auto w_budget = static_cast<std::uint64_t>(frac * level);
            std::uint64_t pw = std::min(l.weight_bytes, w_budget);
            std::uint64_t pi = std::min(l.input_bytes, level - pw);
            pw = std::min(l.weight_bytes, level - pi);  // spill back
            if (pw == 0 && pi == 0) continue;
            bool dup = false;
            for (const auto& c : choices)
                dup |= c.weight_bytes == pw && c.input_bytes == pi;
            if (!dup) choices.push_back({pw, pi});
        }

        std::optional<mapping_candidate> best;
        for (const auto& pins : choices) {
            auto cand = solve_subspace(l, cfg, level, pins,
                                       /*input_from_region=*/false,
                                       /*output_to_region=*/false,
                                       /*is_lbm=*/false, in_block_res,
                                       /*lbm_block_pages=*/0);
            if (cand && (!best || better(*cand, *best))) best = cand;
        }
        if (best) table.lwm.push_back(*best);
    }

    // Sort by pages and keep only candidates that strictly improve DRAM
    // traffic over every smaller candidate (dominance filter).
    std::sort(table.lwm.begin(), table.lwm.end(),
              [](const mapping_candidate& a, const mapping_candidate& b) {
                  if (a.pages_needed != b.pages_needed)
                      return a.pages_needed < b.pages_needed;
                  return a.dram_bytes() < b.dram_bytes();
              });
    std::vector<mapping_candidate> kept;
    for (const auto& cand : table.lwm) {
        if (kept.empty() || cand.dram_bytes() < kept.back().dram_bytes())
            kept.push_back(cand);
    }
    table.lwm = std::move(kept);
    assert(!table.lwm.empty());
    assert(table.lwm.front().pages_needed == 0);

    // LBM candidate: only meaningful for blocks of two or more layers.
    if (block.size() >= 2) {
        const std::uint64_t block_pages =
            ceil_div(block.peak_bytes, cfg.page_bytes);
        auto cand = solve_subspace(
            l, cfg, block_pages * cfg.page_bytes, pin_choice{},
            /*input_from_region=*/layer_index != block.first,
            /*output_to_region=*/layer_index != block.last,
            /*is_lbm=*/true, in_block_res, block_pages);
        if (cand) table.lbm = *cand;
    }

    return table;
}

model_mapping map_model(const model::model& m, const mapper_config& cfg) {
    model_mapping out;
    out.model_name = m.name;
    out.blocks =
        model::segment_layer_blocks(m, cfg.lbm_block_budget, cfg.lbm_max_layers);

    out.block_of.resize(m.layers.size());
    for (std::uint32_t b = 0; b < out.blocks.size(); ++b) {
        for (std::uint32_t i = out.blocks[b].first; i <= out.blocks[b].last; ++i)
            out.block_of[i] = b;
    }

    // map_layer is a pure function of the layer's shape and its position in
    // the block; models with repeated structure (transformer blocks) solve
    // each distinct signature once and copy the table for the repeats. The
    // signature must cover everything map_layer/finalize_candidate read:
    // the layer's value fields plus the block-relative placement flags and
    // the block's region extent.
    using layer_sig =
        std::tuple<std::uint8_t, std::uint64_t, std::uint64_t, std::uint64_t,
                   std::uint64_t, std::uint64_t, std::uint64_t, bool, bool,
                   bool, bool, bool, bool, std::uint64_t>;
    std::map<layer_sig, std::uint32_t> solved;  // signature -> layer index

    out.tables.reserve(m.layers.size());
    out.layer_est.reserve(m.layers.size());
    for (std::uint32_t i = 0; i < m.layers.size(); ++i) {
        const model::layer_block& block = out.blocks[out.block_of[i]];
        const model::layer& l = m.layers[i];
        const layer_sig sig{static_cast<std::uint8_t>(l.kind),
                            l.m,
                            l.n,
                            l.k,
                            l.input_bytes,
                            l.weight_bytes,
                            l.output_bytes,
                            l.weight_is_intermediate,
                            l.residual_from >= 0,
                            residual_in_block(m, i, block),
                            i == block.first,
                            i == block.last,
                            block.size() >= 2,
                            block.size() >= 2 ? block.peak_bytes : 0};
        const auto [it, fresh] = solved.emplace(sig, i);
        out.tables.push_back(fresh ? map_layer(m, i, block, cfg)
                                   : out.tables[it->second]);
        const auto& lwm = out.tables.back().lwm;
        out.layer_est.push_back(lwm[lwm.size() / 2].est_cycles);
    }

    out.block_est.resize(out.blocks.size(), 0);
    for (std::uint32_t b = 0; b < out.blocks.size(); ++b) {
        for (std::uint32_t i = out.blocks[b].first; i <= out.blocks[b].last; ++i) {
            const auto& t = out.tables[i];
            out.block_est[b] += t.lbm ? t.lbm->est_cycles : out.layer_est[i];
        }
    }
    return out;
}

}  // namespace camdn::mapping

#include "dram/dram_system.h"

#include <algorithm>

#include "obs/attribution.h"

namespace camdn::dram {

namespace {
constexpr std::uint64_t deci = 10;  // deci-cycles per cycle

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_of(std::uint64_t v) {
    std::uint32_t s = 0;
    while ((std::uint64_t{1} << s) < v) ++s;
    return s;
}
}  // namespace

dram_system::dram_system(const dram_config& config)
    : config_(config),
      banks_(static_cast<std::size_t>(config.channels) * config.banks_per_channel),
      bus_free_(config.channels, 0) {
    precompute_decode();
}

void dram_system::precompute_decode() {
    const std::uint64_t lines_per_row = config_.row_bytes / line_bytes;
    pow2_geometry_ = is_pow2(config_.channels) &&
                     is_pow2(config_.banks_per_channel) &&
                     config_.row_bytes % line_bytes == 0 &&
                     is_pow2(lines_per_row);
    if (pow2_geometry_) {
        channel_shift_ = log2_of(config_.channels);
        channel_mask_ = config_.channels - 1;
        bank_shift_ = log2_of(config_.banks_per_channel);
        bank_mask_ = config_.banks_per_channel - 1;
        row_shift_ = log2_of(lines_per_row);
    }
    data_slot_deci_ = config_.burst_deci_cycles() + config_.t_burst_gap * deci;
    controller_deci_ = config_.t_controller * deci;
}

dram_system::decoded dram_system::decode(addr_t line_addr) const {
    const std::uint64_t line_id = line_addr / line_bytes;
    if (pow2_geometry_) {
        const std::uint32_t channel =
            static_cast<std::uint32_t>(line_id & channel_mask_);
        const std::uint64_t in_channel = line_id >> channel_shift_;
        const std::uint32_t bank =
            static_cast<std::uint32_t>(in_channel & bank_mask_);
        const std::uint64_t in_bank = in_channel >> bank_shift_;
        return decoded{channel, bank,
                       static_cast<std::int64_t>(in_bank >> row_shift_)};
    }
    const std::uint32_t channel =
        static_cast<std::uint32_t>(line_id % config_.channels);
    const std::uint64_t in_channel = line_id / config_.channels;
    const std::uint32_t bank =
        static_cast<std::uint32_t>(in_channel % config_.banks_per_channel);
    const std::uint64_t in_bank = in_channel / config_.banks_per_channel;
    const std::uint64_t lines_per_row = config_.row_bytes / line_bytes;
    return decoded{channel, bank, static_cast<std::int64_t>(in_bank / lines_per_row)};
}

cycle_t dram_system::regulate(task_id task, cycle_t arrival) {
    if (task < 0 || static_cast<std::size_t>(task) >= regulators_.size())
        return arrival;
    regulator_state& reg = regulators_[task];
    if (reg.share <= 0.0) return arrival;

    const cycle_t epoch = config_.regulation_epoch;
    // Advance the regulator's window to the epoch containing `arrival`.
    if (arrival >= reg.epoch_start + epoch) {
        reg.epoch_start = arrival / epoch * epoch;
        reg.bytes_used = 0;
    }
    const double budget =
        reg.share * config_.peak_bytes_per_cycle() * static_cast<double>(epoch);
    if (static_cast<double>(reg.bytes_used) + line_bytes <= budget) {
        reg.bytes_used += line_bytes;
        return arrival;
    }
    // Budget exhausted: delay to the next epoch boundary (repeatedly if the
    // budget is smaller than one line, which we clamp against).
    ++stats_.throttled;
    reg.epoch_start += epoch;
    reg.bytes_used = line_bytes;
    return reg.epoch_start;
}

cycle_t dram_system::access_timed(addr_t line_addr, cycle_t arrival,
                                  task_id task) {
    const cycle_t reg_arrival = regulate(task, arrival);
    if (attr_ != nullptr && reg_arrival > arrival)
        attr_->on_dram_wait(task, task, reg_arrival - arrival);
    arrival = reg_arrival;

    const decoded d = decode(line_addr);
    const std::size_t bank_idx =
        static_cast<std::size_t>(d.channel) * config_.banks_per_channel +
        d.bank;
    bank_state& bank = banks_[bank_idx];
    std::uint64_t& bus_free = bus_free_[d.channel];

    const std::uint64_t arrival_deci = arrival * deci;
    const std::uint64_t start = std::max(arrival_deci, bank.ready_deci);
    if (attr_ != nullptr && start > arrival_deci)
        attr_->on_dram_wait(task, bank_user_[bank_idx],
                            (start - arrival_deci + deci - 1) / deci);

    // Latency of this access (visible to the requester) and occupancy of
    // the bank (what the *next* access to this bank waits for). Row hits
    // pipeline column commands at tCCD, so a same-row stream is bus-bound;
    // row switches occupy the bank for precharge+activate.
    std::uint64_t cmd_cycles = config_.t_cl;
    std::uint64_t busy_cycles = config_.t_ccd;
    if (bank.open_row == d.row) {
        ++stats_.row_hits;
    } else if (bank.open_row < 0) {
        ++stats_.row_empties;
        cmd_cycles += config_.t_rcd;
        busy_cycles += config_.t_rcd;
    } else {
        ++stats_.row_misses;
        cmd_cycles += config_.t_rp + config_.t_rcd;
        busy_cycles += config_.t_rp + config_.t_rcd;
    }
    bank.open_row = d.row;

    const std::uint64_t cmd_done = start + cmd_cycles * deci;
    const std::uint64_t data_start = std::max(cmd_done, bus_free);
    if (attr_ != nullptr) {
        if (data_start > cmd_done)
            attr_->on_dram_wait(task, bus_user_[d.channel],
                                (data_start - cmd_done + deci - 1) / deci);
        bank_user_[bank_idx] = task;
        bus_user_[d.channel] = task;
    }
    const std::uint64_t data_end = data_start + data_slot_deci_;
    bus_free = data_end;
    stats_.bus_busy_deci += data_end - data_start;
    // Row remains open (open-page policy); the next same-row CAS may issue
    // tCCD later even while this burst is still on the bus.
    bank.ready_deci = start + busy_cycles * deci;

    const std::uint64_t done_deci = data_end + controller_deci_;
    return (done_deci + deci - 1) / deci;
}

cycle_t dram_system::access(addr_t line_addr, bool is_write, cycle_t arrival,
                            task_id task) {
    const cycle_t done = access_timed(line_addr, arrival, task);
    if (is_write) ++stats_.writes; else ++stats_.reads;
    if (task >= 0) {
        if (static_cast<std::size_t>(task) >= per_task_bytes_.size())
            per_task_bytes_.resize(task + 1, 0);
        per_task_bytes_[task] += line_bytes;
    }
    return done;
}

cycle_t dram_system::access_burst(addr_t line_addr, std::uint64_t nlines,
                                  bool is_write, cycle_t arrival, task_id task,
                                  cycle_t* first_done) {
    obs::profile_scope scope(prof_, obs::subsystem::dram);
    cycle_t done = arrival;
    for (std::uint64_t i = 0; i < nlines; ++i) {
        const cycle_t line_done =
            access_timed(line_addr + i * line_bytes, arrival, task);
        if (i == 0 && first_done != nullptr) *first_done = line_done;
        done = std::max(done, line_done);
    }
    // Same totals the per-line bumps would have produced, paid once.
    if (is_write) stats_.writes += nlines; else stats_.reads += nlines;
    if (task >= 0 && nlines > 0) {
        if (static_cast<std::size_t>(task) >= per_task_bytes_.size())
            per_task_bytes_.resize(task + 1, 0);
        per_task_bytes_[task] += nlines * line_bytes;
    }
    return done;
}

void dram_system::set_task_share(task_id task, double fraction) {
    if (task < 0) return;
    if (static_cast<std::size_t>(task) >= regulators_.size())
        regulators_.resize(task + 1);
    regulators_[task].share = std::clamp(fraction, 0.0, 1.0);
}

void dram_system::clear_task_shares() { regulators_.clear(); }

void dram_system::set_attribution(obs::latency_attributor* attr) {
    attr_ = attr;
    if (attr_ != nullptr) {
        bank_user_.assign(banks_.size(), no_task);
        bus_user_.assign(bus_free_.size(), no_task);
    }
}

std::uint64_t dram_system::task_bytes(task_id task) const {
    if (task < 0 || static_cast<std::size_t>(task) >= per_task_bytes_.size())
        return 0;
    return per_task_bytes_[task];
}

void dram_system::reset_timing() {
    for (auto& b : banks_) b = bank_state{};
    std::fill(bus_free_.begin(), bus_free_.end(), 0);
}

void dram_system::save_state(snapshot_writer& w) const {
    w.u64(banks_.size());
    for (const auto& b : banks_) {
        w.i64(b.open_row);
        w.u64(b.ready_deci);
    }
    w.u64(bus_free_.size());
    for (const std::uint64_t f : bus_free_) w.u64(f);
    w.u64(regulators_.size());
    for (const auto& reg : regulators_) {
        w.d(reg.share);
        w.u64(reg.epoch_start);
        w.u64(reg.bytes_used);
    }
    w.u64(per_task_bytes_.size());
    for (const std::uint64_t bytes : per_task_bytes_) w.u64(bytes);
    w.u64(stats_.reads);
    w.u64(stats_.writes);
    w.u64(stats_.row_hits);
    w.u64(stats_.row_misses);
    w.u64(stats_.row_empties);
    w.u64(stats_.throttled);
    w.u64(stats_.bus_busy_deci);
}

void dram_system::restore_state(snapshot_reader& r) {
    const std::uint64_t nbanks = r.count(16);
    if (nbanks != banks_.size())
        throw snapshot_error("snapshot DRAM bank-count mismatch: saved " +
                             std::to_string(nbanks) + ", configured " +
                             std::to_string(banks_.size()));
    for (auto& b : banks_) {
        b.open_row = r.i64();
        b.ready_deci = r.u64();
    }
    const std::uint64_t nchan = r.count(8);
    if (nchan != bus_free_.size())
        throw snapshot_error("snapshot DRAM channel-count mismatch");
    for (auto& f : bus_free_) f = r.u64();
    const std::uint64_t nreg = r.count(24);
    regulators_.assign(nreg, regulator_state{});
    for (auto& reg : regulators_) {
        reg.share = r.d();
        reg.epoch_start = r.u64();
        reg.bytes_used = r.u64();
    }
    const std::uint64_t ntask = r.count(8);
    per_task_bytes_.assign(ntask, 0);
    for (auto& bytes : per_task_bytes_) bytes = r.u64();
    stats_.reads = r.u64();
    stats_.writes = r.u64();
    stats_.row_hits = r.u64();
    stats_.row_misses = r.u64();
    stats_.row_empties = r.u64();
    stats_.throttled = r.u64();
    stats_.bus_busy_deci = r.u64();
}

}  // namespace camdn::dram

#include "dram/dram_system.h"

#include <algorithm>

#include "obs/attribution.h"

namespace camdn::dram {

namespace {
constexpr std::uint64_t deci = 10;  // deci-cycles per cycle

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2_of(std::uint64_t v) {
    std::uint32_t s = 0;
    while ((std::uint64_t{1} << s) < v) ++s;
    return s;
}
}  // namespace

dram_system::dram_system(const dram_config& config)
    : config_(config),
      banks_(static_cast<std::size_t>(config.channels) * config.banks_per_channel),
      bus_free_(config.channels, 0) {
    precompute_decode();
}

void dram_system::precompute_decode() {
    lines_per_row_ = config_.row_bytes / line_bytes;
    pow2_geometry_ = is_pow2(config_.channels) &&
                     is_pow2(config_.banks_per_channel) &&
                     config_.row_bytes % line_bytes == 0 &&
                     is_pow2(lines_per_row_);
    if (pow2_geometry_) {
        channel_shift_ = log2_of(config_.channels);
        channel_mask_ = config_.channels - 1;
        bank_shift_ = log2_of(config_.banks_per_channel);
        bank_mask_ = config_.banks_per_channel - 1;
        row_shift_ = log2_of(lines_per_row_);
    }
    data_slot_deci_ = config_.burst_deci_cycles() + config_.t_burst_gap * deci;
    controller_deci_ = config_.t_controller * deci;
}

dram_system::decoded dram_system::decode(addr_t line_addr) const {
    const std::uint64_t line_id = line_addr / line_bytes;
    if (pow2_geometry_) {
        const std::uint32_t channel =
            static_cast<std::uint32_t>(line_id & channel_mask_);
        const std::uint64_t in_channel = line_id >> channel_shift_;
        const std::uint32_t bank =
            static_cast<std::uint32_t>(in_channel & bank_mask_);
        const std::uint64_t in_bank = in_channel >> bank_shift_;
        return decoded{channel, bank,
                       static_cast<std::int64_t>(in_bank >> row_shift_)};
    }
    const std::uint32_t channel =
        static_cast<std::uint32_t>(line_id % config_.channels);
    const std::uint64_t in_channel = line_id / config_.channels;
    const std::uint32_t bank =
        static_cast<std::uint32_t>(in_channel % config_.banks_per_channel);
    const std::uint64_t in_bank = in_channel / config_.banks_per_channel;
    return decoded{channel, bank,
                   static_cast<std::int64_t>(in_bank / lines_per_row_)};
}

cycle_t dram_system::regulate(task_id task, cycle_t arrival) {
    if (task < 0 || static_cast<std::size_t>(task) >= regulators_.size())
        return arrival;
    regulator_state& reg = regulators_[task];
    if (reg.share <= 0.0) return arrival;

    const cycle_t epoch = config_.regulation_epoch;
    // Advance the regulator's window to the epoch containing `arrival`.
    if (arrival >= reg.epoch_start + epoch) {
        reg.epoch_start = arrival / epoch * epoch;
        reg.bytes_used = 0;
    }
    const double budget =
        reg.share * config_.peak_bytes_per_cycle() * static_cast<double>(epoch);
    if (static_cast<double>(reg.bytes_used) + line_bytes <= budget) {
        reg.bytes_used += line_bytes;
        return arrival;
    }
    // Budget exhausted: delay to the next epoch boundary (repeatedly if the
    // budget is smaller than one line, which we clamp against).
    ++stats_.throttled;
    reg.epoch_start += epoch;
    reg.bytes_used = line_bytes;
    return reg.epoch_start;
}

cycle_t dram_system::access_timed(addr_t line_addr, cycle_t arrival,
                                  task_id task) {
    const cycle_t reg_arrival = regulate(task, arrival);
    if (attr_ != nullptr && reg_arrival > arrival)
        attr_->on_dram_wait(task, task, reg_arrival - arrival);
    arrival = reg_arrival;

    const decoded d = decode(line_addr);
    const std::size_t bank_idx =
        static_cast<std::size_t>(d.channel) * config_.banks_per_channel +
        d.bank;
    bank_state& bank = banks_[bank_idx];
    std::uint64_t& bus_free = bus_free_[d.channel];

    const std::uint64_t arrival_deci = arrival * deci;
    const std::uint64_t start = std::max(arrival_deci, bank.ready_deci);
    if (attr_ != nullptr && start > arrival_deci)
        attr_->on_dram_wait(task, bank_user_[bank_idx],
                            (start - arrival_deci + deci - 1) / deci);

    // Latency of this access (visible to the requester) and occupancy of
    // the bank (what the *next* access to this bank waits for). Row hits
    // pipeline column commands at tCCD, so a same-row stream is bus-bound;
    // row switches occupy the bank for precharge+activate.
    std::uint64_t cmd_cycles = config_.t_cl;
    std::uint64_t busy_cycles = config_.t_ccd;
    if (bank.open_row == d.row) {
        ++stats_.row_hits;
    } else if (bank.open_row < 0) {
        ++stats_.row_empties;
        cmd_cycles += config_.t_rcd;
        busy_cycles += config_.t_rcd;
    } else {
        ++stats_.row_misses;
        cmd_cycles += config_.t_rp + config_.t_rcd;
        busy_cycles += config_.t_rp + config_.t_rcd;
    }
    bank.open_row = d.row;

    const std::uint64_t cmd_done = start + cmd_cycles * deci;
    const std::uint64_t data_start = std::max(cmd_done, bus_free);
    if (attr_ != nullptr) {
        if (data_start > cmd_done)
            attr_->on_dram_wait(task, bus_user_[d.channel],
                                (data_start - cmd_done + deci - 1) / deci);
        bank_user_[bank_idx] = task;
        bus_user_[d.channel] = task;
    }
    const std::uint64_t data_end = data_start + data_slot_deci_;
    bus_free = data_end;
    stats_.bus_busy_deci += data_end - data_start;
    // Row remains open (open-page policy); the next same-row CAS may issue
    // tCCD later even while this burst is still on the bus.
    bank.ready_deci = start + busy_cycles * deci;

    const std::uint64_t done_deci = data_end + controller_deci_;
    return (done_deci + deci - 1) / deci;
}

cycle_t dram_system::access(addr_t line_addr, bool is_write, cycle_t arrival,
                            task_id task) {
    const cycle_t done = access_timed(line_addr, arrival, task);
    if (is_write) ++stats_.writes; else ++stats_.reads;
    if (task >= 0) {
        if (static_cast<std::size_t>(task) >= per_task_bytes_.size())
            per_task_bytes_.resize(task + 1, 0);
        per_task_bytes_[task] += line_bytes;
    }
    return done;
}

bool dram_system::regulate_bulk(task_id task, cycle_t arrival,
                                std::uint64_t nlines) {
    if (task < 0 || static_cast<std::size_t>(task) >= regulators_.size())
        return true;
    regulator_state& reg = regulators_[task];
    if (reg.share <= 0.0) return true;
    const cycle_t epoch = config_.regulation_epoch;
    cycle_t epoch_start = reg.epoch_start;
    std::uint64_t bytes_used = reg.bytes_used;
    // Every line of the burst carries the same arrival, so only the first
    // scalar call could advance the window — replay that decision once.
    if (arrival >= epoch_start + epoch) {
        epoch_start = arrival / epoch * epoch;
        bytes_used = 0;
    }
    const double budget =
        reg.share * config_.peak_bytes_per_cycle() * static_cast<double>(epoch);
    // Line j passes iff bytes_used + (j+1)*line_bytes <= budget; the counts
    // are integers below 2^53, so the double comparisons are exact and the
    // last line's check implies every earlier one.
    if (static_cast<double>(bytes_used + nlines * line_bytes) > budget)
        return false;
    reg.epoch_start = epoch_start;
    reg.bytes_used = bytes_used + nlines * line_bytes;
    return true;
}

cycle_t dram_system::burst_closed_form(addr_t line_addr, std::uint64_t nlines,
                                       cycle_t arrival, cycle_t* first_done) {
    // Consecutive lines stripe channels -> banks -> rows, so each channel's
    // subsequence (own data bus, own banks) times independently. Within a
    // channel, in-channel line index u walks one row block until a pow2
    // boundary; inside such a segment every bank's visit chain is linear:
    //   start(v) = R1 + (v-1)*D  for v >= 1, with
    //   R1 = max(arrival, ready) + busy(first visit),  D = tCCD deci.
    // The only cross-bank coupling is the channel bus prefix-max
    //   data_start(j) = max(cmd_done(j), data_start(j-1) + S),
    // whose closed form is data_start(j) = j*S + max(P, max_{k<=j} G(k))
    // with G(k) = cmd_done(k) - k*S and P the incoming bus horizon. G is
    // linear in the visit index per bank, so its segment max needs only
    // each bank's first visit and the two endpoints of its chain.
    const std::uint64_t line_id0 = line_addr / line_bytes;
    const std::uint64_t arrival_deci = arrival * deci;
    const std::uint64_t S = data_slot_deci_;
    const std::uint64_t D = config_.t_ccd * deci;
    const std::uint64_t tcl = config_.t_cl * deci;
    const std::uint64_t nbanks = config_.banks_per_channel;
    const std::uint64_t nchannels = config_.channels;
    const std::uint32_t row_block_shift = bank_shift_ + row_shift_;
    const std::uint64_t row_block = std::uint64_t{1} << row_block_shift;

    cycle_t done = arrival;
    const std::uint64_t touched = std::min<std::uint64_t>(nchannels, nlines);
    for (std::uint64_t i0 = 0; i0 < touched; ++i0) {
        const std::uint64_t first_id = line_id0 + i0;
        const std::uint32_t c =
            static_cast<std::uint32_t>(first_id & channel_mask_);
        std::uint64_t remaining = (nlines - i0 + nchannels - 1) / nchannels;
        std::uint64_t u = first_id >> channel_shift_;
        std::uint64_t bus = bus_free_[c];
        bank_state* cbanks = &banks_[static_cast<std::size_t>(c) * nbanks];
        bool first_segment = true;
        while (remaining > 0) {
            const std::uint64_t len =
                std::min(remaining, row_block - (u & (row_block - 1)));
            const std::int64_t row =
                static_cast<std::int64_t>(u >> row_block_shift);
            const std::uint64_t visited = std::min(nbanks, len);
            std::int64_t gmax = static_cast<std::int64_t>(bus);
            for (std::uint64_t t = 0; t < visited; ++t) {
                bank_state& bank = cbanks[(u + t) & bank_mask_];
                const std::uint64_t start0 =
                    std::max(arrival_deci, bank.ready_deci);
                std::uint64_t extra;
                if (bank.open_row == row) {
                    ++stats_.row_hits;
                    extra = 0;
                } else if (bank.open_row < 0) {
                    ++stats_.row_empties;
                    extra = config_.t_rcd * deci;
                } else {
                    ++stats_.row_misses;
                    extra = (config_.t_rp + config_.t_rcd) * deci;
                }
                bank.open_row = row;
                const std::uint64_t cmd0 = start0 + tcl + extra;
                const std::uint64_t r1 = start0 + D + extra;
                const std::uint64_t visits = (len - t + nbanks - 1) / nbanks;
                bank.ready_deci = r1 + (visits - 1) * D;
                // Visits past the first are same-row CAS hits, exactly as
                // the per-line walk would classify them.
                stats_.row_hits += visits - 1;
                std::int64_t g = static_cast<std::int64_t>(cmd0) -
                                 static_cast<std::int64_t>(t * S);
                if (g > gmax) gmax = g;
                if (visits >= 2) {
                    const std::int64_t g1 =
                        static_cast<std::int64_t>(r1 + tcl) -
                        static_cast<std::int64_t>((t + nbanks) * S);
                    const std::int64_t gl =
                        static_cast<std::int64_t>(r1 + (visits - 2) * D +
                                                  tcl) -
                        static_cast<std::int64_t>(
                            (t + (visits - 1) * nbanks) * S);
                    if (g1 > gmax) gmax = g1;
                    if (gl > gmax) gmax = gl;
                }
                if (i0 == 0 && first_segment && t == 0 &&
                    first_done != nullptr)
                    *first_done = (std::max(bus, cmd0) + S + controller_deci_ +
                                   deci - 1) /
                                  deci;
            }
            // Last line's data_end = (len-1)*S + max(P, max G) + S; the bus
            // occupies S deci-cycles per line regardless of waits.
            bus = static_cast<std::uint64_t>(gmax) + len * S;
            stats_.bus_busy_deci += len * S;
            u += len;
            remaining -= len;
            first_segment = false;
        }
        bus_free_[c] = bus;
        // data_start is strictly increasing along a channel, so the
        // channel's slowest line is its last; done = ceil of its data_end
        // plus the controller hop.
        const cycle_t chan_done = (bus + controller_deci_ + deci - 1) / deci;
        if (chan_done > done) done = chan_done;
    }
    return done;
}

namespace {
/// Exact sum of ceil((w1 + i*b) / deci) for i = 1..n. When the step is a
/// whole number of cycles the ceil distributes; otherwise the tail is
/// short (visits per segment are bounded by lines_per_row) and a direct
/// loop stays exact for any geometry.
std::uint64_t ceil_ap_sum(std::uint64_t w1, std::uint64_t b, std::uint64_t n) {
    if (n == 0) return 0;
    if (b % deci == 0)
        return n * ((w1 + deci - 1) / deci) + (b / deci) * (n * (n + 1) / 2);
    std::uint64_t s = 0;
    for (std::uint64_t i = 1; i <= n; ++i) s += (w1 + i * b + deci - 1) / deci;
    return s;
}
}  // namespace

cycle_t dram_system::burst_lines_attr(addr_t line_addr, std::uint64_t nlines,
                                      cycle_t arrival, task_id task,
                                      cycle_t* first_done) {
    const std::uint64_t S = data_slot_deci_;
    const std::uint64_t D = config_.t_ccd * deci;
    const std::uint64_t nbanks = config_.banks_per_channel;
    // The closed form needs the bus prefix-max candidates confined to the
    // first two visit rounds, i.e. each bank's G chain non-increasing from
    // its second visit on: D <= nbanks*S. Command-bound geometries (a
    // bank's CAS cadence outruns the whole channel bus) take the exact
    // per-line walk instead.
    if (D > nbanks * S)
        return burst_attr_perline(line_addr, nlines, arrival, task,
                                  first_done);

    const std::uint64_t line_id0 = line_addr / line_bytes;
    const std::uint64_t arrival_deci = arrival * deci;
    const std::uint64_t tcl = config_.t_cl * deci;
    const std::uint64_t nchannels = config_.channels;
    const std::uint32_t row_block_shift = bank_shift_ + row_shift_;
    const std::uint64_t row_block = std::uint64_t{1} << row_block_shift;
    const std::uint64_t B = nbanks * S - D;  // per-round bus-wait growth
    if (attr_g1_.size() < nbanks) {
        attr_g1_.resize(nbanks);
        attr_visits_.resize(nbanks);
    }

    cycle_t done = arrival;
    const std::uint64_t touched = std::min<std::uint64_t>(nchannels, nlines);
    for (std::uint64_t i0 = 0; i0 < touched; ++i0) {
        const std::uint64_t first_id = line_id0 + i0;
        const std::uint32_t c =
            static_cast<std::uint32_t>(first_id & channel_mask_);
        std::uint64_t remaining = (nlines - i0 + nchannels - 1) / nchannels;
        std::uint64_t u = first_id >> channel_shift_;
        std::uint64_t bus = bus_free_[c];
        bank_state* cbanks = &banks_[static_cast<std::size_t>(c) * nbanks];
        task_id* cbank_users =
            &bank_user_[static_cast<std::size_t>(c) * nbanks];
        // Within the burst, every wait after a resource's first use is a
        // self-charge; those fold into one hook call per channel (the
        // attributor accumulates commutative sums, so aggregation is
        // bit-identical). Foreign-holder waits — possible only at each
        // resource's first touch — aggregate by holder the same way:
        // adjacent bursts sweep the same banks, so one prior user
        // typically holds every touched resource and a whole channel's
        // foreign waits collapse into one call.
        std::uint64_t self_wait = 0;
        task_id fh = no_task;
        std::uint64_t fw = 0;
        const auto foreign = [&](task_id h, std::uint64_t w) {
            if (h == fh) {
                fw += w;
                return;
            }
            if (fw > 0) attr_->on_dram_wait(task, fh, fw);
            fh = h;
            fw = w;
        };
        bool first_segment = true;
        while (remaining > 0) {
            const std::uint64_t len =
                std::min(remaining, row_block - (u & (row_block - 1)));
            const std::int64_t row =
                static_cast<std::int64_t>(u >> row_block_shift);
            const std::uint64_t visited = std::min(nbanks, len);
            std::int64_t runmax = static_cast<std::int64_t>(bus);
            // Round 0: each visited bank's first line, in bus (j) order.
            for (std::uint64_t t = 0; t < visited; ++t) {
                const std::uint64_t b = (u + t) & bank_mask_;
                bank_state& bank = cbanks[b];
                const std::uint64_t start0 =
                    std::max(arrival_deci, bank.ready_deci);
                if (start0 > arrival_deci) {
                    const std::uint64_t w =
                        (start0 - arrival_deci + deci - 1) / deci;
                    if (cbank_users[b] == task) self_wait += w;
                    else foreign(cbank_users[b], w);
                }
                cbank_users[b] = task;
                std::uint64_t extra;
                if (bank.open_row == row) {
                    ++stats_.row_hits;
                    extra = 0;
                } else if (bank.open_row < 0) {
                    ++stats_.row_empties;
                    extra = config_.t_rcd * deci;
                } else {
                    ++stats_.row_misses;
                    extra = (config_.t_rp + config_.t_rcd) * deci;
                }
                bank.open_row = row;
                const std::uint64_t cmd0 = start0 + tcl + extra;
                const std::uint64_t r1 = start0 + D + extra;
                const std::uint64_t visits = (len - t + nbanks - 1) / nbanks;
                bank.ready_deci = r1 + (visits - 1) * D;
                stats_.row_hits += visits - 1;
                // Bank-chain waits for visits v >= 1: start(v) - arrival =
                // (r1 - arrival) + (v-1)*D, an arithmetic progression whose
                // step is a whole number of cycles, so the per-line ceils
                // sum in closed form. All self-charges (the bank's holder
                // is `task` from its first visit on).
                if (visits >= 2) {
                    const std::uint64_t k =
                        (r1 - arrival_deci + deci - 1) / deci;
                    self_wait += (visits - 1) * k +
                                 config_.t_ccd * ((visits - 1) * (visits - 2) /
                                                  2);
                }
                // Bus wait of line j = t: M(j) - G(j), M the running max.
                const std::int64_t g0 = static_cast<std::int64_t>(cmd0) -
                                        static_cast<std::int64_t>(t * S);
                if (runmax > g0) {
                    const std::uint64_t w =
                        (static_cast<std::uint64_t>(runmax - g0) + deci - 1) /
                        deci;
                    if (first_segment && t == 0 && bus_user_[c] != task)
                        foreign(bus_user_[c], w);
                    else
                        self_wait += w;
                } else {
                    runmax = g0;
                }
                if (first_segment && t == 0) {
                    bus_user_[c] = task;
                    if (i0 == 0 && first_done != nullptr)
                        *first_done =
                            (std::max(bus, cmd0) + S + controller_deci_ +
                             deci - 1) /
                            deci;
                }
                attr_g1_[t] = visits >= 2
                                  ? static_cast<std::int64_t>(r1 + tcl) -
                                        static_cast<std::int64_t>(
                                            (t + nbanks) * S)
                                  : 0;
                attr_visits_[t] = visits;
            }
            // Round 1: the second visits, in bus order — the last lines
            // where the prefix-max can still grow (G is non-increasing
            // from the second visit on when D <= nbanks*S).
            if (len > nbanks) {
                const std::uint64_t second = std::min(nbanks, len - nbanks);
                for (std::uint64_t t = 0; t < second; ++t) {
                    const std::int64_t g1 = attr_g1_[t];
                    if (runmax > g1)
                        self_wait +=
                            (static_cast<std::uint64_t>(runmax - g1) + deci -
                             1) /
                            deci;
                    else
                        runmax = g1;
                }
                // Rounds >= 2: M has plateaued at runmax, and each bank's
                // remaining waits grow by B = nbanks*S - D per round.
                for (std::uint64_t t = 0; t < second; ++t) {
                    if (attr_visits_[t] < 3) continue;
                    const std::uint64_t w1 =
                        static_cast<std::uint64_t>(runmax - attr_g1_[t]);
                    self_wait += ceil_ap_sum(w1, B, attr_visits_[t] - 2);
                }
            }
            bus = static_cast<std::uint64_t>(runmax) + len * S;
            stats_.bus_busy_deci += len * S;
            u += len;
            remaining -= len;
            first_segment = false;
        }
        if (fw > 0) attr_->on_dram_wait(task, fh, fw);
        if (self_wait > 0) attr_->on_dram_wait(task, task, self_wait);
        bus_free_[c] = bus;
        const cycle_t chan_done = (bus + controller_deci_ + deci - 1) / deci;
        if (chan_done > done) done = chan_done;
    }
    return done;
}

cycle_t dram_system::burst_tiny(addr_t line_addr, std::uint64_t nlines,
                                cycle_t arrival, task_id task,
                                cycle_t* first_done) {
    // nlines <= channels: consecutive line ids stripe distinct channels,
    // so each line has its own bank and bus — no intra-burst coupling.
    // Same arithmetic as access_timed with regulation already committed
    // by regulate_bulk; with one line per resource every attribution hook
    // fires individually, exactly as the per-line walk would.
    const std::uint64_t line_id0 = line_addr / line_bytes;
    const std::uint64_t arrival_deci = arrival * deci;
    const std::uint64_t nbanks = config_.banks_per_channel;
    const std::uint32_t row_block_shift = bank_shift_ + row_shift_;

    cycle_t done = arrival;
    // Waits fold into at most two hook calls per burst — one for the
    // self-inflicted sum (holder == task) and one per distinct foreign
    // holder (usually a single prior user holds every touched resource).
    // The attributor accumulates commutative per-(victim, holder) sums,
    // so aggregating equal-key calls is bit-identical.
    std::uint64_t self_wait = 0;
    task_id fh = no_task;
    std::uint64_t fw = 0;
    const auto foreign = [&](task_id h, std::uint64_t w) {
        if (h == fh) {
            fw += w;
            return;
        }
        if (fw > 0) attr_->on_dram_wait(task, fh, fw);
        fh = h;
        fw = w;
    };
    for (std::uint64_t i = 0; i < nlines; ++i) {
        const std::uint64_t id = line_id0 + i;
        const std::uint32_t c = static_cast<std::uint32_t>(id & channel_mask_);
        const std::uint64_t u = id >> channel_shift_;
        const std::uint64_t b = u & bank_mask_;
        const std::int64_t row = static_cast<std::int64_t>(u >> row_block_shift);
        const std::size_t bank_idx = static_cast<std::size_t>(c) * nbanks + b;
        bank_state& bank = banks_[bank_idx];

        const std::uint64_t start = std::max(arrival_deci, bank.ready_deci);
        if (attr_ != nullptr && start > arrival_deci) {
            const std::uint64_t w = (start - arrival_deci + deci - 1) / deci;
            if (bank_user_[bank_idx] == task) self_wait += w;
            else foreign(bank_user_[bank_idx], w);
        }
        std::uint64_t cmd_cycles = config_.t_cl;
        std::uint64_t busy_cycles = config_.t_ccd;
        if (bank.open_row == row) {
            ++stats_.row_hits;
        } else if (bank.open_row < 0) {
            ++stats_.row_empties;
            cmd_cycles += config_.t_rcd;
            busy_cycles += config_.t_rcd;
        } else {
            ++stats_.row_misses;
            cmd_cycles += config_.t_rp + config_.t_rcd;
            busy_cycles += config_.t_rp + config_.t_rcd;
        }
        bank.open_row = row;

        const std::uint64_t cmd_done = start + cmd_cycles * deci;
        const std::uint64_t data_start = std::max(cmd_done, bus_free_[c]);
        if (attr_ != nullptr) {
            if (data_start > cmd_done) {
                const std::uint64_t w =
                    (data_start - cmd_done + deci - 1) / deci;
                if (bus_user_[c] == task) self_wait += w;
                else foreign(bus_user_[c], w);
            }
            bank_user_[bank_idx] = task;
            bus_user_[c] = task;
        }
        const std::uint64_t data_end = data_start + data_slot_deci_;
        bus_free_[c] = data_end;
        stats_.bus_busy_deci += data_slot_deci_;
        bank.ready_deci = start + busy_cycles * deci;

        const cycle_t line_done =
            (data_end + controller_deci_ + deci - 1) / deci;
        if (i == 0 && first_done != nullptr) *first_done = line_done;
        if (line_done > done) done = line_done;
    }
    if (fw > 0) attr_->on_dram_wait(task, fh, fw);
    if (self_wait > 0) attr_->on_dram_wait(task, task, self_wait);
    return done;
}

cycle_t dram_system::burst_attr_perline(addr_t line_addr, std::uint64_t nlines,
                                        cycle_t arrival, task_id task,
                                        cycle_t* first_done) {
    // Same arithmetic as access_timed, per line, with the decode chain
    // hoisted to incremental per-channel form. Hook arguments and
    // holder-table updates are bit-identical: each hook's values depend
    // only on its own channel's state, and the attributor accumulates
    // commutative per-resource sums, so walking channel-major instead of
    // line-major changes nothing observable.
    const std::uint64_t line_id0 = line_addr / line_bytes;
    const std::uint64_t arrival_deci = arrival * deci;
    const std::uint64_t S = data_slot_deci_;
    const std::uint64_t nbanks = config_.banks_per_channel;
    const std::uint64_t nchannels = config_.channels;
    const std::uint32_t row_block_shift = bank_shift_ + row_shift_;

    cycle_t done = arrival;
    const std::uint64_t touched = std::min<std::uint64_t>(nchannels, nlines);
    for (std::uint64_t i0 = 0; i0 < touched; ++i0) {
        const std::uint64_t first_id = line_id0 + i0;
        const std::uint32_t c =
            static_cast<std::uint32_t>(first_id & channel_mask_);
        const std::uint64_t m = (nlines - i0 + nchannels - 1) / nchannels;
        std::uint64_t u = first_id >> channel_shift_;
        std::uint64_t bus = bus_free_[c];
        bank_state* cbanks = &banks_[static_cast<std::size_t>(c) * nbanks];
        task_id* cbank_users = &bank_user_[static_cast<std::size_t>(c) * nbanks];
        // After a resource's first use in the burst its holder is `task`
        // itself, so almost every per-line wait is a self-charge. Those
        // fold into one hook call per channel (the attributor accumulates
        // commutative sums keyed by (victim, holder tenant) — aggregating
        // equal-key calls is bit-identical); foreign-holder waits, which
        // only the first visit of each resource can produce, aggregate by
        // holder the same way.
        std::uint64_t self_wait = 0;
        task_id fh = no_task;
        std::uint64_t fw = 0;
        const auto foreign = [&](task_id h, std::uint64_t w) {
            if (h == fh) {
                fw += w;
                return;
            }
            if (fw > 0) attr_->on_dram_wait(task, fh, fw);
            fh = h;
            fw = w;
        };
        for (std::uint64_t j = 0; j < m; ++j, ++u) {
            const std::uint64_t b = u & bank_mask_;
            const std::int64_t row =
                static_cast<std::int64_t>(u >> row_block_shift);
            bank_state& bank = cbanks[b];
            const std::uint64_t start = std::max(arrival_deci, bank.ready_deci);
            if (start > arrival_deci) {
                const std::uint64_t w =
                    (start - arrival_deci + deci - 1) / deci;
                if (cbank_users[b] == task) self_wait += w;
                else foreign(cbank_users[b], w);
            }
            std::uint64_t cmd_cycles = config_.t_cl;
            std::uint64_t busy_cycles = config_.t_ccd;
            if (bank.open_row == row) {
                ++stats_.row_hits;
            } else if (bank.open_row < 0) {
                ++stats_.row_empties;
                cmd_cycles += config_.t_rcd;
                busy_cycles += config_.t_rcd;
            } else {
                ++stats_.row_misses;
                cmd_cycles += config_.t_rp + config_.t_rcd;
                busy_cycles += config_.t_rp + config_.t_rcd;
            }
            bank.open_row = row;
            const std::uint64_t cmd_done = start + cmd_cycles * deci;
            const std::uint64_t data_start = std::max(cmd_done, bus);
            if (data_start > cmd_done) {
                const std::uint64_t w =
                    (data_start - cmd_done + deci - 1) / deci;
                if (bus_user_[c] == task) self_wait += w;
                else foreign(bus_user_[c], w);
            }
            cbank_users[b] = task;
            bus_user_[c] = task;
            bus = data_start + S;
            stats_.bus_busy_deci += S;
            bank.ready_deci = start + busy_cycles * deci;
            if (i0 == 0 && j == 0 && first_done != nullptr)
                *first_done = (bus + controller_deci_ + deci - 1) / deci;
        }
        if (fw > 0) attr_->on_dram_wait(task, fh, fw);
        if (self_wait > 0) attr_->on_dram_wait(task, task, self_wait);
        bus_free_[c] = bus;
        const cycle_t chan_done = (bus + controller_deci_ + deci - 1) / deci;
        if (chan_done > done) done = chan_done;
    }
    return done;
}

cycle_t dram_system::access_burst(addr_t line_addr, std::uint64_t nlines,
                                  bool is_write, cycle_t arrival, task_id task,
                                  cycle_t* first_done) {
    obs::profile_scope scope(prof_, obs::subsystem::dram);
    // Same totals the per-line bumps would have produced, paid once.
    if (is_write) stats_.writes += nlines; else stats_.reads += nlines;
    if (task >= 0 && nlines > 0) {
        if (static_cast<std::size_t>(task) >= per_task_bytes_.size())
            per_task_bytes_.resize(task + 1, 0);
        per_task_bytes_[task] += nlines * line_bytes;
    }
    if (nlines == 0) return arrival;
    if (pow2_geometry_ && regulate_bulk(task, arrival, nlines)) {
        // Single-visit bursts (at most one line per channel) are the most
        // common call by far — small fills, writebacks and tile tails —
        // and need none of the segment machinery: every line is
        // independent.
        if (nlines <= config_.channels)
            return burst_tiny(line_addr, nlines, arrival, task, first_done);
        return attr_ != nullptr
                   ? burst_lines_attr(line_addr, nlines, arrival, task,
                                      first_done)
                   : burst_closed_form(line_addr, nlines, arrival, first_done);
    }
    // Non-pow2 geometry, or the burst crosses a regulation budget edge:
    // the exact per-line walk (regulate per line, throttle accounting,
    // attribution of the delays) is authoritative here.
    cycle_t done = arrival;
    for (std::uint64_t i = 0; i < nlines; ++i) {
        const cycle_t line_done =
            access_timed(line_addr + i * line_bytes, arrival, task);
        if (i == 0 && first_done != nullptr) *first_done = line_done;
        done = std::max(done, line_done);
    }
    return done;
}

void dram_system::set_task_share(task_id task, double fraction) {
    if (task < 0) return;
    if (static_cast<std::size_t>(task) >= regulators_.size())
        regulators_.resize(task + 1);
    regulators_[task].share = std::clamp(fraction, 0.0, 1.0);
}

void dram_system::clear_task_shares() { regulators_.clear(); }

void dram_system::set_attribution(obs::latency_attributor* attr) {
    attr_ = attr;
    if (attr_ != nullptr) {
        bank_user_.assign(banks_.size(), no_task);
        bus_user_.assign(bus_free_.size(), no_task);
    }
}

std::uint64_t dram_system::task_bytes(task_id task) const {
    if (task < 0 || static_cast<std::size_t>(task) >= per_task_bytes_.size())
        return 0;
    return per_task_bytes_[task];
}

void dram_system::reset_timing() {
    for (auto& b : banks_) b = bank_state{};
    std::fill(bus_free_.begin(), bus_free_.end(), 0);
}

void dram_system::save_state(snapshot_writer& w) const {
    w.u64(banks_.size());
    for (const auto& b : banks_) {
        w.i64(b.open_row);
        w.u64(b.ready_deci);
    }
    w.u64(bus_free_.size());
    for (const std::uint64_t f : bus_free_) w.u64(f);
    w.u64(regulators_.size());
    for (const auto& reg : regulators_) {
        w.d(reg.share);
        w.u64(reg.epoch_start);
        w.u64(reg.bytes_used);
    }
    w.u64(per_task_bytes_.size());
    for (const std::uint64_t bytes : per_task_bytes_) w.u64(bytes);
    w.u64(stats_.reads);
    w.u64(stats_.writes);
    w.u64(stats_.row_hits);
    w.u64(stats_.row_misses);
    w.u64(stats_.row_empties);
    w.u64(stats_.throttled);
    w.u64(stats_.bus_busy_deci);
}

void dram_system::restore_state(snapshot_reader& r) {
    const std::uint64_t nbanks = r.count(16);
    if (nbanks != banks_.size())
        throw snapshot_error("snapshot DRAM bank-count mismatch: saved " +
                             std::to_string(nbanks) + ", configured " +
                             std::to_string(banks_.size()));
    for (auto& b : banks_) {
        b.open_row = r.i64();
        b.ready_deci = r.u64();
    }
    const std::uint64_t nchan = r.count(8);
    if (nchan != bus_free_.size())
        throw snapshot_error("snapshot DRAM channel-count mismatch");
    for (auto& f : bus_free_) f = r.u64();
    const std::uint64_t nreg = r.count(24);
    regulators_.assign(nreg, regulator_state{});
    for (auto& reg : regulators_) {
        reg.share = r.d();
        reg.epoch_start = r.u64();
        reg.bytes_used = r.u64();
    }
    const std::uint64_t ntask = r.count(8);
    per_task_bytes_.assign(ntask, 0);
    for (auto& bytes : per_task_bytes_) bytes = r.u64();
    stats_.reads = r.u64();
    stats_.writes = r.u64();
    stats_.row_hits = r.u64();
    stats_.row_misses = r.u64();
    stats_.row_empties = r.u64();
    stats_.throttled = r.u64();
    stats_.bus_busy_deci = r.u64();
}

}  // namespace camdn::dram

// Per-request cycle-level DRAM timing model in the spirit of DRAMsim3.
//
// Instead of ticking every cycle, each request's completion time is computed
// from the current state of its bank (open row, ready time) and its
// channel's data bus (busy-until). This reproduces the first-order effects
// that matter for the paper's experiments — row-hit vs row-miss latency,
// bank conflicts, per-channel bus serialization, and the global bandwidth
// ceiling — while remaining fast enough for full parameter sweeps.
//
// The model additionally implements the per-task bandwidth regulation hook
// that the MoCA baseline (and AuRORA's bandwidth component) relies on:
// a task with share `f` may move at most `f * peak` bytes per epoch; excess
// requests are pushed to the next epoch boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "common/snapshot_io.h"
#include "common/types.h"
#include "dram/dram_config.h"
#include "obs/profile.h"

namespace camdn::obs {
class latency_attributor;
}

namespace camdn::dram {

struct dram_stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;   // row conflict: precharge + activate
    std::uint64_t row_empties = 0;  // bank idle: activate only
    std::uint64_t throttled = 0;    // requests delayed by regulation
    std::uint64_t bus_busy_deci = 0;  // total data-bus occupancy, deci-cycles

    std::uint64_t accesses() const { return reads + writes; }
    std::uint64_t bytes() const { return accesses() * line_bytes; }
    double row_hit_rate() const {
        const auto total = accesses();
        return total ? static_cast<double>(row_hits) / total : 0.0;
    }
};

class dram_system {
public:
    explicit dram_system(const dram_config& config = {});

    /// Times one 64 B line transfer arriving at `arrival`. Returns the
    /// completion cycle. `task` attributes traffic for stats/regulation
    /// (no_task = unattributed, never throttled).
    cycle_t access(addr_t line_addr, bool is_write, cycle_t arrival,
                   task_id task = no_task);

    /// Times `nlines` consecutive lines starting at `line_addr`.
    /// Returns completion of the last line; if `first_done` is non-null it
    /// receives the completion of the first line (pipelining visibility for
    /// the DMA model).
    cycle_t access_burst(addr_t line_addr, std::uint64_t nlines, bool is_write,
                         cycle_t arrival, task_id task = no_task,
                         cycle_t* first_done = nullptr);

    /// Sets a task's bandwidth share in [0,1]; 0 disables regulation for it.
    void set_task_share(task_id task, double fraction);
    void clear_task_shares();

    const dram_stats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; per_task_bytes_.clear(); }

    /// Resets bank/bus timing state (between experiment repetitions).
    void reset_timing();

    /// Bytes moved on behalf of `task` since the last reset.
    std::uint64_t task_bytes(task_id task) const;

    const dram_config& config() const { return config_; }

    /// Checkpoint support: serializes / restores bank timing (open rows,
    /// ready horizons), channel bus horizons, regulator windows, per-task
    /// byte counters and cumulative stats. Horizons are absolute
    /// deci-cycles — the resumed run continues the same clock.
    /// restore_state throws snapshot_error on a geometry mismatch.
    void save_state(snapshot_writer& w) const;
    void restore_state(snapshot_reader& r);

    /// Average achieved bandwidth (bytes/cycle) over [0, horizon].
    double achieved_bandwidth(cycle_t horizon) const {
        return horizon ? static_cast<double>(stats_.bytes()) / horizon : 0.0;
    }

    /// Attaches the host-time profiler (nullptr detaches). Bursts charge
    /// `dram`; per-line access() calls stay attributed to their caller's
    /// scope (the transparent path issues millions of them — a scope per
    /// line would dominate the very cost being measured).
    void set_profiler(obs::profiler* prof) { prof_ = prof; }

    /// Attaches the latency attributor (nullptr detaches): per-access bank
    /// / bus / regulation waits are charged to the requesting task against
    /// the resource's previous user. Observation only — the holder side
    /// tables live outside the timing state and are never serialized, so
    /// attached runs stay bit-identical in results and snapshot bytes.
    void set_attribution(obs::latency_attributor* attr);

    /// Contention-free service cycles of one line (row-hit CAS + data slot
    /// + controller) — the cache's transparent-miss penalty constant.
    cycle_t isolated_line_service_cycles() const {
        return (config_.t_cl * 10 + data_slot_deci_ + controller_deci_ + 9) /
               10;
    }

private:
    struct bank_state {
        std::int64_t open_row = -1;   // -1: no open row (precharged)
        std::uint64_t ready_deci = 0; // earliest next command, deci-cycles
    };
    struct regulator_state {
        double share = 0.0;           // 0 = unregulated
        cycle_t epoch_start = 0;
        std::uint64_t bytes_used = 0;
    };

    struct decoded {
        std::uint32_t channel;
        std::uint32_t bank;
        std::int64_t row;
    };
    decoded decode(addr_t line_addr) const;

    /// decode() runs once per line on the simulator's hottest path, so a
    /// power-of-two geometry (every stock config) precomputes shift/mask
    /// forms of its div/mod chain; non-pow2 geometries keep the exact
    /// divide path. Same quotients either way — timing is bit-identical.
    void precompute_decode();

    /// Applies per-task regulation: returns the (possibly delayed) arrival.
    cycle_t regulate(task_id task, cycle_t arrival);

    /// Burst-wide regulation: when the whole burst fits in the task's
    /// current epoch budget (or the task is unregulated), commits the
    /// byte usage in one update — bit-equivalent to nlines scalar
    /// regulate() calls, none of which would have throttled — and returns
    /// true. Returns false *without mutating* when any line would throttle;
    /// the caller falls back to the per-line path, which re-runs the exact
    /// scalar sequence (window advances, throttle counts, attribution).
    bool regulate_bulk(task_id task, cycle_t arrival, std::uint64_t nlines);

    /// Batched burst timing for pow2 geometry with no attributor attached.
    /// Splits each channel's line subsequence into row-chain segments and
    /// computes per-segment timing in closed form: per visited bank, the
    /// ready/CAS chain is linear in the visit index, so the channel's
    /// bus-serialization prefix-max needs only the endpoints of each bank's
    /// chain — O(banks) per segment instead of O(lines). Bit-identical
    /// results and state updates to the per-line loop.
    cycle_t burst_closed_form(addr_t line_addr, std::uint64_t nlines,
                              cycle_t arrival, cycle_t* first_done);

    /// Batched burst timing with the attributor attached. Same segment
    /// decomposition as burst_closed_form, plus closed-form wait sums for
    /// the hooks: within a burst every resource's holder is `task` itself
    /// after its first use, so per-line waits fold into per-channel
    /// self-charge sums (the attributor accumulates commutative sums keyed
    /// by (victim, holder tenant) — aggregating equal-key calls is
    /// bit-identical). Bank-chain waits are arithmetic progressions with
    /// step tCCD (exact, since the chain step D = tCCD*deci is a whole
    /// number of cycles); bus waits come from the same prefix-max G
    /// structure, walking the first two visit rounds explicitly and
    /// summing the linear tail per bank. Requires D <= nbanks*S (the
    /// prefix-max candidates then live in the first two rounds); the rare
    /// command-bound geometry falls back to burst_attr_perline.
    cycle_t burst_lines_attr(addr_t line_addr, std::uint64_t nlines,
                             cycle_t arrival, task_id task,
                             cycle_t* first_done);

    /// Bursts no longer than the channel count stripe one line onto each
    /// channel, so every line is independent of the rest of the burst —
    /// a lean per-line pass (access_timed minus regulation, which
    /// regulate_bulk already committed) beats the segment machinery.
    /// These dominate the call count: small fills, writebacks, tile
    /// tails. Handles both the plain and attributed cases (with one line
    /// per resource there is nothing to aggregate — hooks fire directly).
    cycle_t burst_tiny(addr_t line_addr, std::uint64_t nlines,
                       cycle_t arrival, task_id task, cycle_t* first_done);

    /// Per-line walk with the attributor attached (decode hoisted to
    /// incremental per-channel form, self-waits aggregated per channel):
    /// the authoritative fallback for geometries burst_lines_attr's
    /// closed form does not cover, and the reference the equivalence
    /// tests compare against.
    cycle_t burst_attr_perline(addr_t line_addr, std::uint64_t nlines,
                               cycle_t arrival, task_id task,
                               cycle_t* first_done);

    /// Timing core of access(): regulation, decode, bank/bus bookkeeping.
    /// Read/write and per-task byte counters are left to the caller, which
    /// lets access_burst() bump them once per burst instead of per line
    /// (is_write never affects timing).
    cycle_t access_timed(addr_t line_addr, cycle_t arrival, task_id task);

    dram_config config_;
    std::vector<bank_state> banks_;        // channel * banks + bank
    std::vector<std::uint64_t> bus_free_;  // per channel, deci-cycles
    /// burst_lines_attr per-segment scratch (one slot per bank of the
    /// channel being processed): each bank's second-visit G value and its
    /// visit count. Members so steady-state bursts allocate nothing.
    std::vector<std::int64_t> attr_g1_;
    std::vector<std::uint64_t> attr_visits_;
    std::vector<regulator_state> regulators_;     // indexed by task id
    std::vector<std::uint64_t> per_task_bytes_;   // indexed by task id
    dram_stats stats_;
    obs::profiler* prof_ = nullptr;

    // Attribution side tables (observation only, never serialized): the
    // task that last occupied each bank / channel bus, for blame charging.
    obs::latency_attributor* attr_ = nullptr;
    std::vector<task_id> bank_user_;  // channel * banks + bank
    std::vector<task_id> bus_user_;   // per channel

    // Constants derived from config_ at construction (hot-path hoists).
    bool pow2_geometry_ = false;
    std::uint64_t lines_per_row_ = 0;  // row_bytes / line_bytes, cached once
    std::uint32_t channel_shift_ = 0;
    std::uint64_t channel_mask_ = 0;
    std::uint32_t bank_shift_ = 0;
    std::uint64_t bank_mask_ = 0;
    std::uint32_t row_shift_ = 0;
    std::uint64_t data_slot_deci_ = 0;  // burst occupancy + burst gap
    std::uint64_t controller_deci_ = 0;
};

}  // namespace camdn::dram

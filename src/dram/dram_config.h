// Configuration of the cycle-level DRAM model (Table II: 102.4 GB/s over
// four channels at a 1 GHz SoC clock).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace camdn::dram {

struct dram_config {
    /// Independent channels; consecutive cache lines interleave across them.
    std::uint32_t channels = 4;

    /// Banks per channel; lines interleave across banks within a channel.
    std::uint32_t banks_per_channel = 16;

    /// Row-buffer size per bank in bytes.
    std::uint64_t row_bytes = 2048;

    /// Peak per-channel data-bus bandwidth in bytes per SoC cycle, stored
    /// in tenths (deci-bytes) so 25.6 B/cycle (=25.6 GB/s at 1 GHz) is
    /// representable exactly: 256 deci-bytes/cycle. A 64 B line therefore
    /// occupies the bus for 2.5 cycles (25 deci-cycles).
    std::uint32_t bytes_per_cycle_x10 = 256;

    // Core timing parameters in cycles of the 1 GHz clock (i.e. ns).
    std::uint32_t t_cl = 14;    ///< column access (CAS) latency
    std::uint32_t t_rcd = 14;   ///< activate -> column command
    std::uint32_t t_rp = 14;    ///< precharge
    std::uint32_t t_ccd = 4;    ///< column-to-column (CAS pipelining) gap
    std::uint32_t t_burst_gap = 0;  ///< extra gap between bursts (rank switch)

    /// Fixed controller + PHY overhead added to every access, cycles.
    std::uint32_t t_controller = 20;

    /// Length of a bandwidth-regulation epoch in cycles (MoCA-style
    /// per-task throttling operates at this granularity).
    cycle_t regulation_epoch = 10'000;  // 10 us

    /// Total peak bandwidth in bytes/cycle (== GB/s at 1 GHz).
    double peak_bytes_per_cycle() const {
        return channels * (bytes_per_cycle_x10 / 10.0);
    }

    /// Data-bus occupancy of one 64 B line, in deci-cycles.
    std::uint64_t burst_deci_cycles() const {
        // 64 bytes * 10 deci / (deci-bytes-per-cycle) = deci-cycles.
        return (line_bytes * 100) / bytes_per_cycle_x10;
    }
};

}  // namespace camdn::dram

// Layer-block segmentation for layer-block mapping (LBM, paper §III-C2).
//
// LBM keeps inter-layer intermediate tensors entirely inside the model's
// cache region, so a block's feasibility is bounded by the bytes of
// simultaneously live intermediates. Segmentation also computes a concrete
// region layout — a byte offset for every intermediate produced inside the
// block — via first-fit allocation over liveness intervals; the layout
// extent is what the online allocator actually reserves. To prevent one
// model from occupying too much cache for too long, blocks are capped in
// length as well.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "model/model.h"

namespace camdn::model {

struct layer_block {
    std::uint32_t first = 0;  ///< index of first layer in the block
    std::uint32_t last = 0;   ///< index of last layer (inclusive)

    /// Region layout extent in bytes (what LBM must reserve).
    std::uint64_t peak_bytes = 0;

    /// Byte offset of layer (first + i)'s output inside the block region.
    std::vector<std::uint64_t> out_offset;

    std::uint32_t size() const { return last - first + 1; }
    std::uint64_t offset_of(std::uint32_t layer) const {
        return out_offset.at(layer - first);
    }
};

/// First-fit region layout for layers [first, last] run as one block.
/// Returns the block with peak_bytes and out_offset filled in. Each
/// output's lifetime spans from its producer to its last consumer inside
/// the block (chained successor and residual readers).
layer_block layout_block(const model& m, std::uint32_t first,
                         std::uint32_t last);

/// Greedy segmentation: extend the current block while the layout extent
/// stays within `budget_bytes` and the block has fewer than `max_layers`
/// layers. Every layer lands in exactly one block; blocks of size 1 mean
/// LBM is unavailable for that layer.
std::vector<layer_block> segment_layer_blocks(const model& m,
                                              std::uint64_t budget_bytes,
                                              std::uint32_t max_layers = 6);

}  // namespace camdn::model

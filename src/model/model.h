// A DNN model: an ordered chain of layers (layer i consumes layer i-1's
// output) plus identity/QoS metadata, and the builder used by the zoo.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "model/layer.h"

namespace camdn::model {

struct model {
    std::string name;
    std::string abbr;  ///< Table I abbreviation, e.g. "RS."
    model_domain domain = model_domain::vision;
    /// Table I model type label (Conv / DwConv / Trans / LSTM).
    std::string type;
    /// Table I latency target in milliseconds.
    double qos_ms = 0.0;

    std::vector<layer> layers;

    std::uint64_t total_macs() const;
    std::uint64_t total_weight_bytes() const;
    /// Bytes of inter-layer activation tensors (outputs of non-final layers).
    std::uint64_t total_intermediate_bytes() const;
    /// Largest single inter-layer tensor.
    std::uint64_t max_intermediate_bytes() const;
};

/// Incremental model construction that tracks the running activation shape
/// of convolutional backbones so layer byte sizes stay consistent.
class model_builder {
public:
    model_builder(std::string name, std::string abbr, model_domain domain,
                  std::string type, double qos_ms, std::uint32_t in_c,
                  std::uint32_t in_h, std::uint32_t in_w);

    /// Current activation tensor shape.
    std::uint32_t c() const { return c_; }
    std::uint32_t h() const { return h_; }
    std::uint32_t w() const { return w_; }
    std::uint32_t last_index() const {
        return static_cast<std::uint32_t>(m_.layers.size()) - 1;
    }

    /// 2-D convolution; pad defaults to "same" (k/2). Updates the shape.
    model_builder& conv(const std::string& name, std::uint32_t out_c,
                        std::uint32_t kernel, std::uint32_t stride,
                        std::int32_t pad = -1);

    /// Depthwise 3x3/5x5 convolution over the current channels.
    model_builder& dwconv(const std::string& name, std::uint32_t kernel,
                          std::uint32_t stride, std::int32_t pad = -1);

    /// 1-D convolution along the width (audio feature extractors). No
    /// padding, matching wav2vec 2.0's extractor.
    model_builder& conv1d(const std::string& name, std::uint32_t out_c,
                          std::uint32_t kernel, std::uint32_t stride);

    /// Pooling (max/avg): reduces spatial dims, keeps channels.
    model_builder& pool(const std::string& name, std::uint32_t kernel,
                        std::uint32_t stride);

    /// Global average pool to 1x1.
    model_builder& global_pool(const std::string& name);

    /// Dense GEMM with explicit dims and byte sizes derived from them.
    /// Resets the tracked shape to (n, 1, m) — callers chaining convs after
    /// gemms set shape explicitly via reshape().
    model_builder& gemm(const std::string& name, std::uint64_t m,
                        std::uint64_t n, std::uint64_t k,
                        bool weight_is_intermediate = false);

    /// Elementwise op over the current activation (relu/add/norm/softmax).
    model_builder& elementwise(const std::string& name,
                               std::int32_t residual_from = -1);

    /// Elementwise op over an explicit element count.
    model_builder& elementwise_n(const std::string& name, std::uint64_t elements,
                                 std::int32_t residual_from = -1);

    /// Reduction/scatter with explicit input and output element counts
    /// (pillar max-pool, canvas scatter, upsampling).
    model_builder& reduce_n(const std::string& name, std::uint64_t in_elements,
                            std::uint64_t out_elements);

    /// Mutable access to the most recently added layer, for byte-size
    /// overrides where the canonical GEMM formula misstates a tensor
    /// (multi-head attention operand sizes).
    layer& last_layer() { return m_.layers.back(); }

    /// Overrides the tracked activation shape (after scatter/reshape ops).
    model_builder& reshape(std::uint32_t c, std::uint32_t h, std::uint32_t w);

    model build() &&;

private:
    std::uint64_t activation_bytes() const {
        return static_cast<std::uint64_t>(c_) * h_ * w_;
    }

    model m_;
    std::uint32_t c_, h_, w_;
};

}  // namespace camdn::model

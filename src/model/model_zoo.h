// The eight benchmark models of Table I, built with realistic batch-1
// shapes (int8 activations/weights). See DESIGN.md for the documented
// simplifications (fused activations/batch-norm, chained residual IR,
// batched GNMT timesteps, collapsed PointPillars FPN).
#pragma once

#include <string>
#include <vector>

#include "model/model.h"

namespace camdn::model {

model make_resnet50();
model make_mobilenet_v2();
model make_efficientnet_b0();
model make_vit_base_16();
model make_bert_base();
model make_gnmt();
model make_wav2vec2_base();
model make_pointpillars();

/// All of Table I, in the paper's order (RS. MB. EF. VT. BE. GN. WV. PP.).
const std::vector<model>& benchmark_models();

/// Lookup by Table I abbreviation ("RS.", "MB.", ...). Throws
/// std::out_of_range for unknown abbreviations.
const model& model_by_abbr(const std::string& abbr);

}  // namespace camdn::model

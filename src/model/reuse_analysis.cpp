#include "model/reuse_analysis.h"

#include <algorithm>

namespace camdn::model {

namespace {

/// Accumulator bytes per output element held in the scratchpad while the
/// reduction dimension streams through (int32 partial sums).
constexpr std::uint64_t acc_bytes = 4;

/// Total shared-cache-visible traffic of one layer under baseline tiling.
std::uint64_t layer_traffic_bytes(const layer& l,
                                  std::uint64_t tile_budget_bytes) {
    const auto [wp, ip] = baseline_refetch_factors(l, tile_budget_bytes);
    std::uint64_t traffic = l.input_bytes * ip + l.weight_bytes * wp +
                            l.output_bytes;
    if (l.residual_from >= 0) traffic += l.output_bytes;
    return traffic;
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> baseline_refetch_factors(
    const layer& l, std::uint64_t tile_budget_bytes) {
    if (l.kind == layer_kind::elementwise || l.kind == layer_kind::pool)
        return {1, 1};

    if (l.kind == layer_kind::dwconv) {
        // No cross-channel reduction: channel tiles are independent, the
        // input is streamed exactly once and the (tiny) weights stay
        // resident in the scratchpad.
        return {1, 1};
    }

    // Dense conv/GEMM: tile (tm, tn) with the reduction dimension k tiled
    // freely inside the scratchpad (partial sums stay in the accumulators,
    // so tk never adds traffic). Weights are re-fetched once per m-tile
    // pass, inputs once per n-tile pass; a tile that covers a whole tensor
    // at full reduction depth keeps it resident (stationary dataflow).
    // This mirrors mapping/cost_model's traffic rules for the CU=0 level.
    auto ladder = [](std::uint64_t dim) {
        std::vector<std::uint64_t> out;
        for (std::uint64_t t = 32; t < dim; t *= 2) out.push_back(t);
        out.push_back(dim);
        return out;
    };
    std::uint64_t best_traffic = UINT64_MAX;
    std::uint64_t best_wp = 1;
    std::uint64_t best_ip = 1;
    for (std::uint64_t tn : ladder(l.n)) {
        for (std::uint64_t tm : ladder(l.m)) {
            const std::uint64_t acc = tm * tn * acc_bytes;
            if (acc >= tile_budget_bytes) continue;
            std::uint64_t tk = (tile_budget_bytes - acc) / (tm + tn);
            if (tk == 0) continue;
            tk = std::min(tk, l.k);
            std::uint64_t wp = ceil_div(l.m, tm);
            std::uint64_t ip = ceil_div(l.n, tn);
            if (ceil_div(l.n, tn) == 1 && tk == l.k) wp = 1;
            if (ceil_div(l.m, tm) == 1 && tk == l.k) ip = 1;
            const std::uint64_t traffic =
                l.weight_bytes * wp + l.input_bytes * ip;
            if (traffic < best_traffic) {
                best_traffic = traffic;
                best_wp = wp;
                best_ip = ip;
            }
        }
    }
    return {best_wp, best_ip};
}

reuse_report analyze_reuse(const model& m, std::uint64_t scratchpad_bytes) {
    const std::uint64_t tile_budget = scratchpad_bytes / 2;
    reuse_report report;

    const std::size_t count = m.layers.size();
    for (std::size_t i = 0; i < count; ++i) {
        const layer& l = m.layers[i];
        const auto [wp, ip] = baseline_refetch_factors(l, tile_budget);

        // Parameters: accessed wp times within the layer (attention's
        // activation operands are accounted as intermediates below, with
        // one extra access for their production).
        if (l.weight_bytes > 0) {
            const double accesses =
                static_cast<double>(wp) + (l.weight_is_intermediate ? 1.0 : 0.0);
            report.count_hist.add(accesses, static_cast<double>(l.weight_bytes));
        }

        // The model's external input tensor (layer 0 only).
        if (i == 0 && l.input_bytes > 0) {
            report.count_hist.add(static_cast<double>(ip),
                                  static_cast<double>(l.input_bytes));
        }

        // This layer's output: written once; read by the chained consumer
        // (ip passes of the consumer) and by any residual consumers.
        if (l.output_bytes == 0) continue;
        double accesses = 1.0;  // the write
        if (i + 1 < count) {
            const auto [cwp, cip] =
                baseline_refetch_factors(m.layers[i + 1], tile_budget);
            (void)cwp;
            accesses += static_cast<double>(cip);
        }
        std::uint64_t residual_span_traffic = 0;
        for (std::size_t j = i + 1; j < count; ++j) {
            if (m.layers[j].residual_from == static_cast<std::int32_t>(i)) {
                accesses += 1.0;
                for (std::size_t t = i + 1; t < j; ++t)
                    residual_span_traffic += layer_traffic_bytes(m.layers[t], tile_budget);
            }
        }
        report.count_hist.add(accesses, static_cast<double>(l.output_bytes));

        // Reuse distance of this intermediate: traffic between its
        // production (tail of layer i) and its consumption (head of layer
        // i+1) is approximately half of each layer's total traffic; a
        // residual consumer further away sees the whole span.
        if (i + 1 < count) {
            const std::uint64_t here = layer_traffic_bytes(l, tile_budget);
            const std::uint64_t next = layer_traffic_bytes(m.layers[i + 1], tile_budget);
            double distance = 0.5 * static_cast<double>(here + next);
            distance += static_cast<double>(residual_span_traffic);
            report.distance_hist.add(distance,
                                     static_cast<double>(l.output_bytes));
        }
    }
    return report;
}

}  // namespace camdn::model

// Reuse-count and reuse-distance analysis of the shared-cache access
// stream (reproduces Fig 3 of the paper).
//
// A reuse count is the expected number of accesses to a piece of data on
// the shared cache; a reuse distance is the volume of other traffic between
// two consecutive accesses to the same data. Both are computed analytically
// from the layer chain under a cache-oblivious, scratchpad-tiled baseline
// mapping — the same workload view the motivation experiment uses.
#pragma once

#include <cstdint>
#include <utility>

#include "common/stats.h"
#include "common/types.h"
#include "model/model.h"

namespace camdn::model {

struct reuse_report {
    /// Byte-weighted reuse counts over all tensors; bucket bounds
    /// {1, 4, 8} give the paper's classes 1, [2,4], [5,8], [9,inf).
    bucket_histogram count_hist{{1.0, 4.0, 8.0}};

    /// Byte-weighted reuse distances of intermediate tensors; bounds
    /// {1 MiB, 2 MiB, 4 MiB} give (0,1], (1,2], (2,4], (4,inf) MiB.
    bucket_histogram distance_hist{
        {static_cast<double>(mib(1)), static_cast<double>(mib(2)),
         static_cast<double>(mib(4))}};

    /// Fraction of bytes accessed exactly once (the paper's headline:
    /// 68.0% of data has no future reuse on average).
    double single_use_fraction() const { return count_hist.fraction(0); }

    /// Fraction of intermediate bytes with reuse distance > 1 MiB.
    double long_distance_fraction() const {
        return distance_hist.fraction(1) + distance_hist.fraction(2) +
               distance_hist.fraction(3);
    }
};

/// Baseline tiling refetch factors for one layer given a per-tile
/// scratchpad budget: {weight passes, input passes}. A pass count of p
/// means every line of that tensor is touched p times on the shared cache.
std::pair<std::uint64_t, std::uint64_t> baseline_refetch_factors(
    const layer& l, std::uint64_t tile_budget_bytes);

/// Analyzes `m` under a scratchpad of `scratchpad_bytes` (half is usable
/// per tile under double buffering, matching npu_config).
reuse_report analyze_reuse(const model& m,
                           std::uint64_t scratchpad_bytes = kib(256));

}  // namespace camdn::model

#include "model/layer_blocks.h"

#include <algorithm>

namespace camdn::model {

namespace {

/// Last layer index inside [first, last] that consumes layer i's output.
std::uint32_t last_use_in_block(const model& m, std::uint32_t i,
                                std::uint32_t last) {
    std::uint32_t use = std::min(i + 1, last);  // chained consumer
    for (std::uint32_t j = i + 1; j <= last; ++j) {
        if (m.layers[j].residual_from == static_cast<std::int32_t>(i))
            use = std::max(use, j);
    }
    return use;
}

struct placed {
    std::uint64_t offset;
    std::uint64_t bytes;
    std::uint32_t born;   // producer layer
    std::uint32_t dies;   // last consumer layer
};

}  // namespace

layer_block layout_block(const model& m, std::uint32_t first,
                         std::uint32_t last) {
    layer_block block;
    block.first = first;
    block.last = last;
    block.out_offset.resize(last - first + 1, 0);

    std::vector<placed> live;
    std::uint64_t extent = 0;
    for (std::uint32_t i = first; i <= last; ++i) {
        const std::uint64_t bytes =
            round_up(std::max<std::uint64_t>(m.layers[i].output_bytes, 1),
                     line_bytes);
        const std::uint32_t dies = last_use_in_block(m, i, last);

        // First-fit: lowest offset where [offset, offset+bytes) does not
        // overlap any tensor whose lifetime intersects [i, dies].
        std::vector<const placed*> conflicts;
        for (const auto& p : live) {
            if (p.dies >= i && p.born <= dies) conflicts.push_back(&p);
        }
        std::sort(conflicts.begin(), conflicts.end(),
                  [](const placed* a, const placed* b) {
                      return a->offset < b->offset;
                  });
        std::uint64_t offset = 0;
        for (const auto* p : conflicts) {
            if (offset + bytes <= p->offset) break;
            offset = std::max(offset, p->offset + p->bytes);
        }

        block.out_offset[i - first] = offset;
        live.push_back(placed{offset, bytes, i, dies});
        extent = std::max(extent, offset + bytes);
    }
    block.peak_bytes = extent;
    return block;
}

std::vector<layer_block> segment_layer_blocks(const model& m,
                                              std::uint64_t budget_bytes,
                                              std::uint32_t max_layers) {
    std::vector<layer_block> blocks;
    const std::uint32_t count = static_cast<std::uint32_t>(m.layers.size());
    std::uint32_t first = 0;
    while (first < count) {
        layer_block current = layout_block(m, first, first);
        while (current.last + 1 < count && current.size() + 1 <= max_layers) {
            layer_block extended = layout_block(m, first, current.last + 1);
            if (extended.peak_bytes > budget_bytes) break;
            current = std::move(extended);
        }
        // A single layer whose output alone exceeds the budget still forms
        // a (LBM-less) block.
        first = current.last + 1;
        blocks.push_back(std::move(current));
    }
    return blocks;
}

}  // namespace camdn::model

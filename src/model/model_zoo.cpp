#include "model/model_zoo.h"

#include <stdexcept>
#include <utility>

namespace camdn::model {

namespace {

/// ResNet bottleneck: 1x1 reduce, 3x3 (carries the stride), 1x1 expand,
/// residual add. Batch-norm and ReLU are fused into the convs; the
/// stage-entry 1x1 downsample convolution is folded into the residual edge
/// (see DESIGN.md).
void bottleneck(model_builder& b, const std::string& prefix, std::uint32_t mid,
                std::uint32_t out, std::uint32_t stride) {
    const std::int32_t block_in = static_cast<std::int32_t>(b.last_index());
    b.conv(prefix + ".conv1", mid, 1, 1);
    b.conv(prefix + ".conv2", mid, 3, stride);
    b.conv(prefix + ".conv3", out, 1, 1);
    b.elementwise(prefix + ".add", block_in);
}

/// MobileNet-v2 inverted residual: 1x1 expand (ratio t), 3x3 depthwise,
/// 1x1 linear projection, residual when shapes allow.
void inverted_residual(model_builder& b, const std::string& prefix,
                       std::uint32_t t, std::uint32_t out,
                       std::uint32_t stride) {
    const std::int32_t block_in = static_cast<std::int32_t>(b.last_index());
    const std::uint32_t in_c = b.c();
    if (t != 1) b.conv(prefix + ".expand", in_c * t, 1, 1);
    b.dwconv(prefix + ".dw", 3, stride);
    b.conv(prefix + ".project", out, 1, 1);
    if (stride == 1 && in_c == out) b.elementwise(prefix + ".add", block_in);
}

/// EfficientNet MBConv: expand, depthwise kxk, squeeze-excite (two tiny
/// GEMMs + channel scale), linear projection, residual when shapes allow.
void mbconv(model_builder& b, const std::string& prefix, std::uint32_t t,
            std::uint32_t out, std::uint32_t kernel, std::uint32_t stride) {
    const std::int32_t block_in = static_cast<std::int32_t>(b.last_index());
    const std::uint32_t in_c = b.c();
    const std::uint32_t expanded = in_c * t;
    if (t != 1) b.conv(prefix + ".expand", expanded, 1, 1);
    b.dwconv(prefix + ".dw", kernel, stride);

    // Squeeze-and-excite side branch on the expanded tensor.
    const std::uint32_t c = b.c();
    const std::uint32_t h = b.h();
    const std::uint32_t w = b.w();
    const std::uint32_t se = in_c / 4 == 0 ? 1 : in_c / 4;
    b.gemm(prefix + ".se_fc1", 1, se, c);
    b.gemm(prefix + ".se_fc2", 1, c, se);
    b.reshape(c, h, w);
    b.elementwise(prefix + ".se_scale");

    b.conv(prefix + ".project", out, 1, 1);
    if (stride == 1 && in_c == out) b.elementwise(prefix + ".add", block_in);
}

/// Transformer encoder block (ViT / BERT / wav2vec 2.0).
///
/// Attention score and context GEMMs are canonicalized so MAC counts and
/// score-matrix sizes are exact; the Q/K/V operand byte sizes are then
/// overridden to the true seq*d footprints (the m*k / n*k formulas cannot
/// express the per-head batching).
void transformer_block(model_builder& b, const std::string& prefix,
                       std::uint64_t seq, std::uint64_t d, std::uint64_t heads,
                       std::uint64_t mlp) {
    const std::int32_t block_in = static_cast<std::int32_t>(b.last_index());
    b.gemm(prefix + ".qkv", seq, 3 * d, d);

    b.gemm(prefix + ".scores", seq, seq * heads, d / heads,
           /*weight_is_intermediate=*/true);
    b.last_layer().input_bytes = seq * d;   // Q
    b.last_layer().weight_bytes = seq * d;  // K

    b.elementwise_n(prefix + ".softmax", heads * seq * seq);

    b.gemm(prefix + ".context", seq * heads, d / heads, seq,
           /*weight_is_intermediate=*/true);
    b.last_layer().weight_bytes = seq * d;  // V

    b.gemm(prefix + ".proj", seq, d, d);
    const std::int32_t after_attn = static_cast<std::int32_t>(b.last_index());
    b.elementwise_n(prefix + ".add1", seq * d, block_in);

    b.gemm(prefix + ".mlp1", seq, mlp, d);
    b.gemm(prefix + ".mlp2", seq, d, mlp);
    b.elementwise_n(prefix + ".add2", seq * d, after_attn);
}

}  // namespace

model make_resnet50() {
    model_builder b("ResNet50", "RS.", model_domain::vision, "Conv", 6.7, 3, 224,
                    224);
    b.conv("conv1", 64, 7, 2);
    b.pool("maxpool", 3, 2);
    const std::uint32_t mids[4] = {64, 128, 256, 512};
    const std::uint32_t outs[4] = {256, 512, 1024, 2048};
    const std::uint32_t repeats[4] = {3, 4, 6, 3};
    for (int stage = 0; stage < 4; ++stage) {
        for (std::uint32_t i = 0; i < repeats[stage]; ++i) {
            const std::uint32_t stride = (stage > 0 && i == 0) ? 2 : 1;
            bottleneck(b,
                       "layer" + std::to_string(stage + 1) + "." +
                           std::to_string(i),
                       mids[stage], outs[stage], stride);
        }
    }
    b.global_pool("avgpool");
    b.gemm("fc", 1, 1000, 2048);
    return std::move(b).build();
}

model make_mobilenet_v2() {
    model_builder b("MobileNet-v2", "MB.", model_domain::vision, "DwConv", 2.8,
                    3, 224, 224);
    b.conv("conv1", 32, 3, 2);
    inverted_residual(b, "block0", 1, 16, 1);
    struct stage_cfg {
        std::uint32_t t, c, n, s;
    };
    const stage_cfg stages[] = {{6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
                                {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1}};
    int id = 1;
    for (const auto& st : stages) {
        for (std::uint32_t i = 0; i < st.n; ++i) {
            inverted_residual(b, "block" + std::to_string(id++), st.t, st.c,
                              i == 0 ? st.s : 1);
        }
    }
    b.conv("conv_last", 1280, 1, 1);
    b.global_pool("avgpool");
    b.gemm("fc", 1, 1000, 1280);
    return std::move(b).build();
}

model make_efficientnet_b0() {
    model_builder b("EfficientNet-b0", "EF.", model_domain::vision, "DwConv",
                    2.8, 3, 224, 224);
    b.conv("stem", 32, 3, 2);
    struct stage_cfg {
        std::uint32_t t, c, n, k, s;
    };
    const stage_cfg stages[] = {{1, 16, 1, 3, 1}, {6, 24, 2, 3, 2},
                                {6, 40, 2, 5, 2}, {6, 80, 3, 3, 2},
                                {6, 112, 3, 5, 1}, {6, 192, 4, 5, 2},
                                {6, 320, 1, 3, 1}};
    int id = 0;
    for (const auto& st : stages) {
        for (std::uint32_t i = 0; i < st.n; ++i) {
            mbconv(b, "mbconv" + std::to_string(id++), st.t, st.c, st.k,
                   i == 0 ? st.s : 1);
        }
    }
    b.conv("head", 1280, 1, 1);
    b.global_pool("avgpool");
    b.gemm("fc", 1, 1000, 1280);
    return std::move(b).build();
}

model make_vit_base_16() {
    model_builder b("ViT-base-16", "VT.", model_domain::vision, "Trans", 40.0, 3,
                    224, 224);
    b.conv("patch_embed", 768, 16, 16, /*pad=*/0);  // 14x14 patches
    const std::uint64_t seq = 197;                  // 196 patches + CLS
    b.elementwise_n("pos_embed", seq * 768);
    for (int i = 0; i < 12; ++i)
        transformer_block(b, "enc" + std::to_string(i), seq, 768, 12, 3072);
    b.gemm("head", 1, 1000, 768);
    return std::move(b).build();
}

model make_bert_base() {
    model_builder b("BERT-base", "BE.", model_domain::nlp, "Trans", 40.0, 1, 1,
                    128);
    const std::uint64_t seq = 128;
    // Embedding gather: reads seq rows of the word/position tables.
    b.elementwise_n("embeddings", seq * 768);
    for (int i = 0; i < 12; ++i)
        transformer_block(b, "enc" + std::to_string(i), seq, 768, 12, 3072);
    b.gemm("pooler", 1, 768, 768);
    b.gemm("classifier", 1, 2, 768);
    return std::move(b).build();
}

model make_gnmt() {
    // 8-layer LSTM seq2seq (4 encoder + 4 decoder), hidden 1024, 32 tokens.
    // Timesteps are batched into one GEMM per layer (m = seq), matching a
    // throughput-oriented NPU deployment; the x/h inputs concatenate to
    // k = 2048 and the four gates fuse to n = 4096 (see DESIGN.md).
    model_builder b("GNMT", "GN.", model_domain::nlp, "LSTM", 6.7, 1, 1, 32);
    const std::uint64_t seq = 32;
    const std::uint64_t hidden = 1024;
    b.elementwise_n("embedding", seq * hidden);
    for (int i = 0; i < 4; ++i) {
        b.gemm("enc_lstm" + std::to_string(i), seq, 4 * hidden, 2 * hidden);
        b.elementwise_n("enc_gates" + std::to_string(i), seq * 4 * hidden);
    }
    for (int i = 0; i < 4; ++i) {
        b.gemm("dec_lstm" + std::to_string(i), seq, 4 * hidden, 2 * hidden);
        b.elementwise_n("dec_gates" + std::to_string(i), seq * 4 * hidden);
        if (i == 0) {
            // Attention over encoder states.
            b.gemm("attn_scores", seq, seq, hidden, /*weight_is_intermediate=*/true);
            b.elementwise_n("attn_softmax", seq * seq);
            b.gemm("attn_context", seq, hidden, seq, /*weight_is_intermediate=*/true);
        }
    }
    b.gemm("vocab_proj", seq, 32000, hidden);
    return std::move(b).build();
}

model make_wav2vec2_base() {
    // One second of 16 kHz audio -> 49 frames -> 12 transformer layers.
    model_builder b("Wav2Vec2-base", "WV.", model_domain::audio, "Trans", 16.7,
                    1, 1, 16000);
    const std::uint32_t kernels[7] = {10, 3, 3, 3, 3, 2, 2};
    const std::uint32_t strides[7] = {5, 2, 2, 2, 2, 2, 2};
    for (int i = 0; i < 7; ++i)
        b.conv1d("feat" + std::to_string(i), 512, kernels[i], strides[i]);
    const std::uint64_t seq = b.w();  // 49 frames
    b.gemm("feature_proj", seq, 768, 512);
    for (int i = 0; i < 12; ++i)
        transformer_block(b, "enc" + std::to_string(i), seq, 768, 12, 3072);
    b.gemm("ctc_head", seq, 32, 768);
    return std::move(b).build();
}

model make_pointpillars() {
    // KITTI-scale configuration: 12k pillars x 32 points x 9 features,
    // 432x496 canvas, three 2D backbone blocks. The FPN upsample/concat is
    // collapsed into a sequential head (see DESIGN.md).
    model_builder b("PointPillars", "PP.", model_domain::point_cloud, "Conv",
                    100.0, 1, 1, 1);
    const std::uint64_t points = 12000ull * 32;
    b.gemm("pfn_linear", points, 64, 9);
    // The per-pillar max-pool is fused into the PFN on NPU deployments:
    // only the reduced 12000x64 pillar features ever leave the core.
    b.last_layer().output_bytes = 12000ull * 64;
    b.reduce_n("scatter", 12000ull * 64, 64ull * 248 * 216 * 4);
    b.reshape(64, 496, 432);

    b.conv("block1.0", 64, 3, 2);
    for (int i = 1; i < 4; ++i)
        b.conv("block1." + std::to_string(i), 64, 3, 1);
    b.conv("block2.0", 128, 3, 2);
    for (int i = 1; i < 6; ++i)
        b.conv("block2." + std::to_string(i), 128, 3, 1);
    b.conv("block3.0", 256, 3, 2);
    for (int i = 1; i < 6; ++i)
        b.conv("block3." + std::to_string(i), 256, 3, 1);

    b.conv("up_lateral", 128, 1, 1);
    b.reduce_n("upsample", b.c() * std::uint64_t{62} * 54,
               128ull * 124 * 108);
    b.reshape(128, 124, 108);
    b.conv("head_conv", 128, 3, 1);
    b.conv("head_out", 42, 1, 1);
    return std::move(b).build();
}

const std::vector<model>& benchmark_models() {
    static const std::vector<model> models = [] {
        std::vector<model> v;
        v.push_back(make_resnet50());
        v.push_back(make_mobilenet_v2());
        v.push_back(make_efficientnet_b0());
        v.push_back(make_vit_base_16());
        v.push_back(make_bert_base());
        v.push_back(make_gnmt());
        v.push_back(make_wav2vec2_base());
        v.push_back(make_pointpillars());
        return v;
    }();
    return models;
}

const model& model_by_abbr(const std::string& abbr) {
    for (const auto& m : benchmark_models())
        if (m.abbr == abbr) return m;
    throw std::out_of_range("unknown model abbreviation: " + abbr);
}

}  // namespace camdn::model

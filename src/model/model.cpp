#include "model/model.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace camdn::model {

std::uint64_t model::total_macs() const {
    std::uint64_t total = 0;
    for (const auto& l : layers) total += l.macs();
    return total;
}

std::uint64_t model::total_weight_bytes() const {
    std::uint64_t total = 0;
    for (const auto& l : layers)
        if (!l.weight_is_intermediate) total += l.weight_bytes;
    return total;
}

std::uint64_t model::total_intermediate_bytes() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i + 1 < layers.size(); ++i)
        total += layers[i].output_bytes;
    return total;
}

std::uint64_t model::max_intermediate_bytes() const {
    std::uint64_t best = 0;
    for (std::size_t i = 0; i + 1 < layers.size(); ++i)
        best = std::max(best, layers[i].output_bytes);
    return best;
}

model_builder::model_builder(std::string name, std::string abbr,
                             model_domain domain, std::string type,
                             double qos_ms, std::uint32_t in_c,
                             std::uint32_t in_h, std::uint32_t in_w)
    : c_(in_c), h_(in_h), w_(in_w) {
    m_.name = std::move(name);
    m_.abbr = std::move(abbr);
    m_.domain = domain;
    m_.type = std::move(type);
    m_.qos_ms = qos_ms;
}

namespace {
std::uint32_t out_dim(std::uint32_t in, std::uint32_t kernel,
                      std::uint32_t stride, std::int32_t pad) {
    const std::uint32_t p = pad >= 0 ? static_cast<std::uint32_t>(pad) : kernel / 2;
    assert(in + 2 * p >= kernel);
    return (in + 2 * p - kernel) / stride + 1;
}
}  // namespace

model_builder& model_builder::conv(const std::string& name, std::uint32_t out_c,
                                   std::uint32_t kernel, std::uint32_t stride,
                                   std::int32_t pad) {
    const std::uint32_t oh = out_dim(h_, kernel, stride, pad);
    const std::uint32_t ow = out_dim(w_, kernel, stride, pad);

    layer l;
    l.name = name;
    l.kind = layer_kind::conv;
    l.m = static_cast<std::uint64_t>(oh) * ow;
    l.n = out_c;
    l.k = static_cast<std::uint64_t>(c_) * kernel * kernel;
    l.input_bytes = activation_bytes();
    l.weight_bytes = static_cast<std::uint64_t>(out_c) * c_ * kernel * kernel;
    l.output_bytes = static_cast<std::uint64_t>(out_c) * oh * ow;
    m_.layers.push_back(l);

    c_ = out_c;
    h_ = oh;
    w_ = ow;
    return *this;
}

model_builder& model_builder::dwconv(const std::string& name,
                                     std::uint32_t kernel, std::uint32_t stride,
                                     std::int32_t pad) {
    const std::uint32_t oh = out_dim(h_, kernel, stride, pad);
    const std::uint32_t ow = out_dim(w_, kernel, stride, pad);

    layer l;
    l.name = name;
    l.kind = layer_kind::dwconv;
    l.m = static_cast<std::uint64_t>(oh) * ow;
    l.n = c_;
    l.k = static_cast<std::uint64_t>(kernel) * kernel;
    l.input_bytes = activation_bytes();
    l.weight_bytes = static_cast<std::uint64_t>(c_) * kernel * kernel;
    l.output_bytes = static_cast<std::uint64_t>(c_) * oh * ow;
    m_.layers.push_back(l);

    h_ = oh;
    w_ = ow;
    return *this;
}

model_builder& model_builder::conv1d(const std::string& name,
                                     std::uint32_t out_c, std::uint32_t kernel,
                                     std::uint32_t stride) {
    assert(h_ == 1 && w_ >= kernel);
    const std::uint32_t ow = (w_ - kernel) / stride + 1;

    layer l;
    l.name = name;
    l.kind = layer_kind::conv;
    l.m = ow;
    l.n = out_c;
    l.k = static_cast<std::uint64_t>(c_) * kernel;
    l.input_bytes = activation_bytes();
    l.weight_bytes = static_cast<std::uint64_t>(out_c) * c_ * kernel;
    l.output_bytes = static_cast<std::uint64_t>(out_c) * ow;
    m_.layers.push_back(l);

    c_ = out_c;
    w_ = ow;
    return *this;
}

model_builder& model_builder::reduce_n(const std::string& name,
                                       std::uint64_t in_elements,
                                       std::uint64_t out_elements) {
    layer l;
    l.name = name;
    l.kind = layer_kind::pool;
    l.m = in_elements;
    l.input_bytes = in_elements;
    l.output_bytes = out_elements;
    m_.layers.push_back(l);
    return *this;
}

model_builder& model_builder::pool(const std::string& name, std::uint32_t kernel,
                                   std::uint32_t stride) {
    const std::uint32_t oh = out_dim(h_, kernel, stride, -1);
    const std::uint32_t ow = out_dim(w_, kernel, stride, -1);

    layer l;
    l.name = name;
    l.kind = layer_kind::pool;
    l.m = static_cast<std::uint64_t>(c_) * oh * ow;
    l.input_bytes = activation_bytes();
    l.output_bytes = static_cast<std::uint64_t>(c_) * oh * ow;
    m_.layers.push_back(l);

    h_ = oh;
    w_ = ow;
    return *this;
}

model_builder& model_builder::global_pool(const std::string& name) {
    layer l;
    l.name = name;
    l.kind = layer_kind::pool;
    l.m = c_;
    l.input_bytes = activation_bytes();
    l.output_bytes = c_;
    m_.layers.push_back(l);

    h_ = 1;
    w_ = 1;
    return *this;
}

model_builder& model_builder::gemm(const std::string& name, std::uint64_t m,
                                   std::uint64_t n, std::uint64_t k,
                                   bool weight_is_intermediate) {
    layer l;
    l.name = name;
    l.kind = layer_kind::gemm;
    l.m = m;
    l.n = n;
    l.k = k;
    l.input_bytes = m * k;
    l.weight_bytes = n * k;
    l.output_bytes = m * n;
    l.weight_is_intermediate = weight_is_intermediate;
    m_.layers.push_back(l);

    c_ = static_cast<std::uint32_t>(n);
    h_ = 1;
    w_ = static_cast<std::uint32_t>(m);
    return *this;
}

model_builder& model_builder::elementwise(const std::string& name,
                                          std::int32_t residual_from) {
    return elementwise_n(name, activation_bytes(), residual_from);
}

model_builder& model_builder::elementwise_n(const std::string& name,
                                            std::uint64_t elements,
                                            std::int32_t residual_from) {
    layer l;
    l.name = name;
    l.kind = layer_kind::elementwise;
    l.m = elements;
    l.input_bytes = elements;
    l.output_bytes = elements;
    l.residual_from = residual_from;
    m_.layers.push_back(l);
    return *this;
}

model_builder& model_builder::reshape(std::uint32_t c, std::uint32_t h,
                                      std::uint32_t w) {
    c_ = c;
    h_ = h;
    w_ = w;
    return *this;
}

model model_builder::build() && { return std::move(m_); }

}  // namespace camdn::model

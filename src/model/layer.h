// Layer intermediate representation.
//
// Every operator is canonicalized to GEMM-like dimensions (m, n, k):
//   conv    m = oh*ow, n = out_c, k = in_c*kh*kw
//   dwconv  m = oh*ow, n = channels, k = kh*kw (no cross-channel reduction)
//   gemm    m, n, k verbatim (attention scores/context are gemms whose
//           second operand is itself an activation, flagged below)
//   elementwise / pool  m = elements, n = k = 1 (SIMD unit)
//
// Alongside the canonical dims each layer carries the *actual* tensor
// byte sizes (int8 activations/weights), which the traffic model uses —
// conv input halos overlap, so input_bytes < m*k.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace camdn::model {

enum class layer_kind : std::uint8_t {
    conv,
    dwconv,
    gemm,
    elementwise,
    pool,
};

enum class model_domain : std::uint8_t {
    vision,
    nlp,
    audio,
    point_cloud,
};

struct layer {
    std::string name;
    layer_kind kind = layer_kind::gemm;

    // Canonical GEMM dims; MACs = m*n*k for dense kinds, m*n*k for dwconv
    // with k = kh*kw per channel.
    std::uint64_t m = 1;
    std::uint64_t n = 1;
    std::uint64_t k = 1;

    std::uint64_t input_bytes = 0;   ///< primary activation input
    std::uint64_t weight_bytes = 0;  ///< parameters (or 2nd activation, see flag)
    std::uint64_t output_bytes = 0;  ///< activation output

    /// True for attention gemms whose "weight" operand is an activation
    /// produced earlier (K or V) — it is intermediate data, not parameters.
    bool weight_is_intermediate = false;

    /// Index of the layer whose output is added element-wise into this
    /// layer's output (residual connections); -1 when none.
    std::int32_t residual_from = -1;

    std::uint64_t macs() const {
        if (kind == layer_kind::elementwise || kind == layer_kind::pool)
            return m;  // one op per element on the SIMD unit
        return m * n * k;
    }

    /// Total bytes this layer moves if nothing is ever reused on-chip.
    std::uint64_t min_traffic_bytes() const {
        return input_bytes + weight_bytes + output_bytes +
               (residual_from >= 0 ? output_bytes : 0);
    }
};

}  // namespace camdn::model

// Core scalar types and unit helpers shared by every CaMDN module.
//
// The whole simulator runs on a single 1 GHz clock domain (Table II of the
// paper), so one cycle equals one nanosecond and time arithmetic stays in
// integer cycles throughout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace camdn {

/// Global simulation time in cycles of the 1 GHz SoC clock (1 cycle = 1 ns).
using cycle_t = std::uint64_t;

/// Byte address. Used for DRAM physical addresses and for the per-model
/// virtual cache address space (vcaddr) of the NPU subspace.
using addr_t = std::uint64_t;

/// Identifier of a co-located DNN task (tenant). Negative means "none".
using task_id = std::int32_t;

/// Identifier of an NPU core. Negative means "none".
using npu_id = std::int32_t;

inline constexpr task_id no_task = -1;
inline constexpr npu_id no_npu = -1;

inline constexpr cycle_t never = std::numeric_limits<cycle_t>::max();

/// Bytes per KiB/MiB, spelled as functions so call sites read as units.
constexpr std::uint64_t kib(std::uint64_t n) { return n << 10; }
constexpr std::uint64_t mib(std::uint64_t n) { return n << 20; }

/// Cache line size used across the memory hierarchy (bytes).
inline constexpr std::uint64_t line_bytes = 64;

/// Rounds `n` up to the next multiple of `align` (align must be non-zero).
constexpr std::uint64_t round_up(std::uint64_t n, std::uint64_t align) {
    return (n + align - 1) / align * align;
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
    return (a + b - 1) / b;
}

/// Number of cache lines needed to hold `bytes` bytes.
constexpr std::uint64_t lines_for(std::uint64_t bytes) {
    return ceil_div(bytes, line_bytes);
}

/// Saturating clock arithmetic. Hours-of-stream-time configs multiply
/// round lengths by round counts; a wrapped product silently truncates a
/// time-sliced window to near zero, so long-horizon bounds clamp to
/// `never` instead of wrapping.
constexpr cycle_t sat_add(cycle_t a, cycle_t b) {
    return a > never - b ? never : a + b;
}
constexpr cycle_t sat_mul(cycle_t a, cycle_t b) {
    return (b != 0 && a > never / b) ? never : a * b;
}

/// Converts cycles of the 1 GHz clock to milliseconds.
constexpr double cycles_to_ms(cycle_t c) { return static_cast<double>(c) * 1e-6; }

/// Converts milliseconds to cycles of the 1 GHz clock.
constexpr cycle_t ms_to_cycles(double ms) {
    return static_cast<cycle_t>(ms * 1e6);
}

/// Converts microseconds to cycles of the 1 GHz clock.
constexpr cycle_t us_to_cycles(double us) {
    return static_cast<cycle_t>(us * 1e3);
}

}  // namespace camdn

// Column-aligned plain-text tables, shared by every bench binary so the
// regenerated paper tables/figures print in one consistent format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace camdn {

class table_printer {
public:
    explicit table_printer(std::vector<std::string> headers);

    table_printer& add_row(std::vector<std::string> cells);

    /// Prints the table with a header rule. Missing cells print empty;
    /// surplus cells are kept (the column simply widens).
    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace camdn

#include "common/event_queue.h"

#include <cassert>
#include <utility>

namespace camdn {

std::uint64_t event_queue::schedule(cycle_t when, callback fn) {
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    heap_.push(entry{when, seq, std::move(fn), nullptr});
    return seq;
}

event_queue::timer event_queue::schedule_cancellable(cycle_t when,
                                                     callback fn) {
    if (when < now_) when = now_;
    auto tok = std::make_shared<timer::state>();
    tok->when = when;
    tok->seq = next_seq_++;
    heap_.push(entry{when, tok->seq, std::move(fn), tok});
    return timer(std::move(tok));
}

void event_queue::schedule_restored(cycle_t when, std::uint64_t seq,
                                    callback fn) {
    if (when < now_) when = now_;
    heap_.push(entry{when, seq, std::move(fn), nullptr});
}

event_queue::timer event_queue::restore_cancellable(cycle_t when,
                                                    std::uint64_t seq,
                                                    callback fn) {
    if (when < now_) when = now_;
    auto tok = std::make_shared<timer::state>();
    tok->when = when;
    tok->seq = seq;
    heap_.push(entry{when, seq, std::move(fn), tok});
    return timer(std::move(tok));
}

void event_queue::restore_next_seq(std::uint64_t seq) {
    assert(seq >= next_seq_ && "tie-break counter must not rewind");
    next_seq_ = seq;
}

void event_queue::restore_now(cycle_t now) {
    assert(heap_.empty() && "clock restore requires an empty queue");
    now_ = now;
}

void event_queue::discard_cancelled_head() {
    while (!heap_.empty() && heap_.top().tok && heap_.top().tok->cancelled)
        heap_.pop();
}

cycle_t event_queue::next_time() {
    discard_cancelled_head();
    return heap_.empty() ? never : heap_.top().when;
}

bool event_queue::step() {
    discard_cancelled_head();
    if (heap_.empty()) return false;
    // priority_queue::top() is const; the callback must be moved out before
    // pop, so copy the handle via const_cast-free extraction.
    entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    if (e.tok) e.tok->fired = true;
    e.fn();
    return true;
}

std::size_t event_queue::run(std::size_t max_events) {
    std::size_t executed = 0;
    while (executed < max_events && step()) ++executed;
    return executed;
}

void event_queue::run_until(cycle_t until) {
    while (next_time() <= until && !heap_.empty()) step();
    if (now_ < until) now_ = until;
}

}  // namespace camdn

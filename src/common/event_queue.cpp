#include "common/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace camdn {

void event_queue::push(entry e) {
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), later{});
}

event_queue::entry event_queue::pop() {
    std::pop_heap(heap_.begin(), heap_.end(), later{});
    entry e = std::move(heap_.back());
    heap_.pop_back();
    return e;
}

std::uint64_t event_queue::schedule(cycle_t when, callback fn) {
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    push(entry{when, seq, std::move(fn), nullptr});
    return seq;
}

event_queue::timer event_queue::schedule_cancellable(cycle_t when,
                                                     callback fn) {
    if (when < now_) when = now_;
    auto tok = std::make_shared<timer::state>();
    tok->when = when;
    tok->seq = next_seq_++;
    push(entry{when, tok->seq, std::move(fn), tok});
    return timer(std::move(tok));
}

void event_queue::set_handler(event_channel ch, typed_handler fn) {
    handlers_[static_cast<std::size_t>(ch)] = std::move(fn);
}

std::uint64_t event_queue::schedule_event(cycle_t when,
                                          const typed_event& ev) {
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    entry e{when, seq, nullptr, nullptr};
    e.is_typed = true;
    e.ev = ev;
    push(std::move(e));
    return seq;
}

void event_queue::restore_event(cycle_t when, std::uint64_t seq,
                                const typed_event& ev) {
    if (when < now_) when = now_;
    entry e{when, seq, nullptr, nullptr};
    e.is_typed = true;
    e.ev = ev;
    push(std::move(e));
}

void event_queue::save_typed(snapshot_writer& w) const {
    std::vector<const entry*> typed;
    for (const auto& e : heap_)
        if (e.is_typed) typed.push_back(&e);
    std::sort(typed.begin(), typed.end(), [](const entry* a, const entry* b) {
        if (a->when != b->when) return a->when < b->when;
        return a->seq < b->seq;
    });
    w.u64(typed.size());
    for (const entry* e : typed) {
        w.u64(e->when);
        w.u64(e->seq);
        w.u8(e->ev.channel);
        w.u8(e->ev.kind);
        w.u64(e->ev.a);
        w.u64(e->ev.b);
    }
}

void event_queue::restore_typed(snapshot_reader& r) {
    const std::uint64_t n = r.count(8 + 8 + 1 + 1 + 8 + 8);
    for (std::uint64_t i = 0; i < n; ++i) {
        const cycle_t when = r.u64();
        const std::uint64_t seq = r.u64();
        typed_event ev;
        ev.channel = r.u8();
        ev.kind = r.u8();
        if (ev.channel >= n_event_channels)
            throw snapshot_error("snapshot typed event on unknown channel " +
                                 std::to_string(ev.channel));
        ev.a = r.u64();
        ev.b = r.u64();
        restore_event(when, seq, ev);
    }
}

std::size_t event_queue::pending_typed() const {
    std::size_t n = 0;
    for (const auto& e : heap_)
        if (e.is_typed) ++n;
    return n;
}

std::size_t event_queue::pending_closures() const {
    std::size_t n = 0;
    for (const auto& e : heap_)
        if (!e.is_typed && !(e.tok && e.tok->cancelled)) ++n;
    return n;
}

void event_queue::schedule_restored(cycle_t when, std::uint64_t seq,
                                    callback fn) {
    if (when < now_) when = now_;
    push(entry{when, seq, std::move(fn), nullptr});
}

event_queue::timer event_queue::restore_cancellable(cycle_t when,
                                                    std::uint64_t seq,
                                                    callback fn) {
    if (when < now_) when = now_;
    auto tok = std::make_shared<timer::state>();
    tok->when = when;
    tok->seq = seq;
    push(entry{when, seq, std::move(fn), tok});
    return timer(std::move(tok));
}

void event_queue::restore_next_seq(std::uint64_t seq) {
    assert(seq >= next_seq_ && "tie-break counter must not rewind");
    next_seq_ = seq;
}

void event_queue::restore_now(cycle_t now) {
    assert(heap_.empty() && "clock restore requires an empty queue");
    now_ = now;
}

void event_queue::discard_cancelled_head() {
    while (!heap_.empty() && heap_.front().tok && heap_.front().tok->cancelled)
        pop();
}

cycle_t event_queue::next_time() {
    discard_cancelled_head();
    return heap_.empty() ? never : heap_.front().when;
}

bool event_queue::step() {
    discard_cancelled_head();
    if (heap_.empty()) return false;
    entry e = pop();
    now_ = e.when;
    if (e.tok) e.tok->fired = true;
    if (e.is_typed) {
        const auto& h = handlers_[e.ev.channel];
        if (!h)
            throw std::logic_error(
                "typed event dispatched to unregistered channel " +
                std::to_string(e.ev.channel));
        h(e.ev);
    } else {
        e.fn();
    }
    return true;
}

std::size_t event_queue::run(std::size_t max_events) {
    std::size_t executed = 0;
    while (executed < max_events && step()) ++executed;
    return executed;
}

void event_queue::run_until(cycle_t until) {
    while (next_time() <= until && !heap_.empty()) step();
    if (now_ < until) now_ = until;
}

}  // namespace camdn

#include "common/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace camdn {

event_queue::event_queue()
    : live_closures_(std::make_shared<std::int64_t>(0)) {
    heap_.reserve(256);
    pool_.reserve(64);
}

std::uint32_t event_queue::alloc_slot(callback fn,
                                      std::shared_ptr<timer::state> tok) {
    std::uint32_t slot;
    if (free_head_ != no_slot) {
        slot = free_head_;
        free_head_ = pool_[slot].next_free;
        pool_[slot].fn = std::move(fn);
        pool_[slot].tok = std::move(tok);
    } else {
        slot = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(closure_slot{std::move(fn), std::move(tok), no_slot});
    }
    return slot;
}

void event_queue::release_slot(std::uint32_t slot) {
    pool_[slot].fn = nullptr;
    pool_[slot].tok = nullptr;
    pool_[slot].next_free = free_head_;
    free_head_ = slot;
}

void event_queue::push(const entry& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), later{});
}

event_queue::entry event_queue::pop() {
    std::pop_heap(heap_.begin(), heap_.end(), later{});
    const entry e = heap_.back();
    heap_.pop_back();
    return e;
}

std::uint64_t event_queue::schedule(cycle_t when, callback fn) {
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    push(entry{when, seq, 0, 0, alloc_slot(std::move(fn), nullptr), 0, 0,
               false});
    ++*live_closures_;
    return seq;
}

event_queue::timer event_queue::schedule_cancellable(cycle_t when,
                                                     callback fn) {
    if (when < now_) when = now_;
    auto tok = std::make_shared<timer::state>();
    tok->when = when;
    tok->seq = next_seq_++;
    tok->live = live_closures_;
    const std::uint64_t seq = tok->seq;
    push(entry{when, seq, 0, 0, alloc_slot(std::move(fn), tok), 0, 0, false});
    ++*live_closures_;
    return timer(std::move(tok));
}

void event_queue::set_handler(event_channel ch, typed_handler fn) {
    handlers_[static_cast<std::size_t>(ch)] = std::move(fn);
}

std::uint64_t event_queue::schedule_event(cycle_t when,
                                          const typed_event& ev) {
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    push(entry{when, seq, ev.a, ev.b, no_slot, ev.channel, ev.kind, true});
    ++typed_count_;
    return seq;
}

void event_queue::restore_event(cycle_t when, std::uint64_t seq,
                                const typed_event& ev) {
    if (when < now_) when = now_;
    push(entry{when, seq, ev.a, ev.b, no_slot, ev.channel, ev.kind, true});
    ++typed_count_;
}

void event_queue::save_typed(snapshot_writer& w) const {
    std::vector<const entry*> typed;
    typed.reserve(typed_count_);
    for (const auto& e : heap_)
        if (e.is_typed) typed.push_back(&e);
    std::sort(typed.begin(), typed.end(), [](const entry* a, const entry* b) {
        if (a->when != b->when) return a->when < b->when;
        return a->seq < b->seq;
    });
    w.u64(typed.size());
    for (const entry* e : typed) {
        w.u64(e->when);
        w.u64(e->seq);
        w.u8(e->channel);
        w.u8(e->kind);
        w.u64(e->a);
        w.u64(e->b);
    }
}

void event_queue::restore_typed(snapshot_reader& r) {
    const std::uint64_t n = r.count(8 + 8 + 1 + 1 + 8 + 8);
    for (std::uint64_t i = 0; i < n; ++i) {
        const cycle_t when = r.u64();
        const std::uint64_t seq = r.u64();
        typed_event ev;
        ev.channel = r.u8();
        ev.kind = r.u8();
        if (ev.channel >= n_event_channels)
            throw snapshot_error("snapshot typed event on unknown channel " +
                                 std::to_string(ev.channel));
        ev.a = r.u64();
        ev.b = r.u64();
        restore_event(when, seq, ev);
    }
}

void event_queue::schedule_restored(cycle_t when, std::uint64_t seq,
                                    callback fn) {
    if (when < now_) when = now_;
    push(entry{when, seq, 0, 0, alloc_slot(std::move(fn), nullptr), 0, 0,
               false});
    ++*live_closures_;
}

event_queue::timer event_queue::restore_cancellable(cycle_t when,
                                                    std::uint64_t seq,
                                                    callback fn) {
    if (when < now_) when = now_;
    auto tok = std::make_shared<timer::state>();
    tok->when = when;
    tok->seq = seq;
    tok->live = live_closures_;
    push(entry{when, seq, 0, 0, alloc_slot(std::move(fn), tok), 0, 0, false});
    ++*live_closures_;
    return timer(std::move(tok));
}

void event_queue::restore_next_seq(std::uint64_t seq) {
    assert(seq >= next_seq_ && "tie-break counter must not rewind");
    next_seq_ = seq;
}

void event_queue::restore_now(cycle_t now) {
    assert(heap_.empty() && "clock restore requires an empty queue");
    now_ = now;
}

void event_queue::discard_cancelled_head() {
    while (!heap_.empty() && head_cancelled()) release_slot(pop().slot);
}

cycle_t event_queue::next_time() {
    discard_cancelled_head();
    return heap_.empty() ? never : heap_.front().when;
}

bool event_queue::try_inline(cycle_t when, event_channel ch) {
    if (when >= inline_horizon_ || when < now_) return false;
    if (next_time() <= when) return false;
    // The event would be the very next dispatch: the heap round-trip is
    // pure overhead, but the counters must read as if it happened.
    now_ = when;
    ++executed_;
    ++typed_dispatched_[static_cast<std::size_t>(ch)];
    return true;
}

bool event_queue::step() {
    discard_cancelled_head();
    if (heap_.empty()) return false;
    const entry e = pop();
    now_ = e.when;
    ++executed_;
    if (e.is_typed) {
        --typed_count_;
        ++typed_dispatched_[e.channel];
        const auto& h = handlers_[e.channel];
        if (!h)
            throw std::logic_error(
                "typed event dispatched to unregistered channel " +
                std::to_string(e.channel));
        h(typed_event{e.channel, e.kind, e.a, e.b});
    } else {
        // Move the closure out and recycle its slot before running: the
        // callback may schedule new events, which may claim the slot.
        callback fn = std::move(pool_[e.slot].fn);
        auto tok = std::move(pool_[e.slot].tok);
        release_slot(e.slot);
        ++closures_dispatched_;
        --*live_closures_;
        if (tok) tok->fired = true;
        fn();
    }
    return true;
}

std::size_t event_queue::run(std::size_t max_events) {
    // An unbounded drain may coalesce freely; a budgeted run counts
    // individual step() dispatches, which inlining would undercount.
    const cycle_t saved = inline_horizon_;
    if (max_events == SIZE_MAX) inline_horizon_ = never;
    std::size_t executed = 0;
    while (executed < max_events && step()) ++executed;
    inline_horizon_ = saved;
    return executed;
}

void event_queue::run_until(cycle_t until) {
    // Events at exactly `until` run, so the exclusive horizon sits one
    // past it (saturating: run_until(never) may coalesce everything).
    const cycle_t saved = inline_horizon_;
    inline_horizon_ = until == never ? never : until + 1;
    while (next_time() <= until && !heap_.empty()) step();
    inline_horizon_ = saved;
    if (now_ < until) now_ = until;
}

}  // namespace camdn

#include "common/event_queue.h"

#include <utility>

namespace camdn {

void event_queue::schedule(cycle_t when, callback fn) {
    if (when < now_) when = now_;
    heap_.push(entry{when, next_seq_++, std::move(fn)});
}

bool event_queue::step() {
    if (heap_.empty()) return false;
    // priority_queue::top() is const; the callback must be moved out before
    // pop, so copy the handle via const_cast-free extraction.
    entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    e.fn();
    return true;
}

std::size_t event_queue::run(std::size_t max_events) {
    std::size_t executed = 0;
    while (executed < max_events && step()) ++executed;
    return executed;
}

void event_queue::run_until(cycle_t until) {
    while (!heap_.empty() && heap_.top().when <= until) step();
    if (now_ < until) now_ = until;
}

}  // namespace camdn

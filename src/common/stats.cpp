#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace camdn {

void running_stat::add(double value, double weight) {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    weight_ += weight;
    sum_ += value * weight;
}

bucket_histogram::bucket_histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), weights_(bounds_.size() + 1, 0.0) {}

void bucket_histogram::add(double value, double weight) {
    // NaN compares false against every bound, which would silently land
    // the sample in bucket 0 and skew every fraction. Count it aside.
    if (std::isnan(value)) {
        nan_weight_ += weight;
        return;
    }
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    weights_[i] += weight;
    total_ += weight;
}

double bucket_histogram::fraction(std::size_t i) const {
    if (total_ <= 0.0) return 0.0;
    return weights_.at(i) / total_;
}

void percentile_tracker::add(double value) {
    // A stored NaN sorts unpredictably (every comparison is false), which
    // breaks the sorted invariant merges rely on and poisons nearest-rank
    // lookups downstream. Reject it but keep the count for diagnostics.
    if (std::isnan(value)) {
        ++nan_count_;
        return;
    }
    samples_.push_back(value);
    sorted_ = samples_.size() <= 1;
}

void percentile_tracker::ensure_sorted() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
}

double percentile_tracker::quantile(double q) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    // Nearest rank: the smallest sample with at least q of the mass at or
    // below it. q = 0 maps to the minimum, q = 1 to the maximum.
    const double n = static_cast<double>(samples_.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::min(std::max<std::size_t>(rank, 1), samples_.size());
    return samples_[rank - 1];
}

double percentile_tracker::mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
}

void percentile_tracker::assign(std::vector<double> samples) {
    samples_ = std::move(samples);
    sorted_ = false;
    nan_count_ = 0;  // diagnostic only; never serialized in checkpoints
}

void percentile_tracker::merge(const percentile_tracker& other) {
    nan_count_ += other.nan_count_;
    if (other.samples_.empty()) return;
    if (samples_.empty()) {
        samples_ = other.samples_;
        sorted_ = other.sorted_;
        return;
    }
    // Two-way merge of the sorted sides: O(n + m log m) instead of
    // re-sorting the concatenation, and the result is sorted already.
    ensure_sorted();
    other.ensure_sorted();
    const std::size_t mid = samples_.size();
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    std::inplace_merge(samples_.begin(),
                       samples_.begin() + static_cast<std::ptrdiff_t>(mid),
                       samples_.end());
    sorted_ = true;
}

p2_estimator::p2_estimator(double q) : q_(q) {
    dwant_[0] = 0.0;
    dwant_[1] = q / 2.0;
    dwant_[2] = q;
    dwant_[3] = (1.0 + q) / 2.0;
    dwant_[4] = 1.0;
    want_[0] = 1.0;
    want_[1] = 1.0 + 2.0 * q;
    want_[2] = 1.0 + 4.0 * q;
    want_[3] = 3.0 + 2.0 * q;
    want_[4] = 5.0;
}

double p2_estimator::parabolic(int i, double d) const {
    // Jain & Chlamtac's piecewise-parabolic height adjustment.
    return h_[i] +
           d / (pos_[i + 1] - pos_[i - 1]) *
               ((pos_[i] - pos_[i - 1] + d) * (h_[i + 1] - h_[i]) /
                    (pos_[i + 1] - pos_[i]) +
                (pos_[i + 1] - pos_[i] - d) * (h_[i] - h_[i - 1]) /
                    (pos_[i] - pos_[i - 1]));
}

double p2_estimator::linear(int i, double d) const {
    const int j = i + static_cast<int>(d);
    return h_[i] + d * (h_[j] - h_[i]) / (pos_[j] - pos_[i]);
}

void p2_estimator::add(double value) {
    if (count_ < 5) {
        // Warm-up: insert into the sorted marker heights.
        std::size_t i = count_;
        while (i > 0 && h_[i - 1] > value) {
            h_[i] = h_[i - 1];
            --i;
        }
        h_[i] = value;
        ++count_;
        return;
    }

    // Find the cell and clamp the extremes.
    int k;
    if (value < h_[0]) {
        h_[0] = value;
        k = 0;
    } else if (value < h_[1]) {
        k = 0;
    } else if (value < h_[2]) {
        k = 1;
    } else if (value < h_[3]) {
        k = 2;
    } else if (value <= h_[4]) {
        k = 3;
    } else {
        h_[4] = value;
        k = 3;
    }

    for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
    for (int i = 0; i < 5; ++i) want_[i] += dwant_[i];
    ++count_;

    // Nudge the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
        const double d = want_[i] - pos_[i];
        if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
            (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
            const double step = d >= 0.0 ? 1.0 : -1.0;
            const double cand = parabolic(i, step);
            // Parabolic prediction must stay strictly between the
            // neighbours; fall back to linear interpolation otherwise.
            h_[i] = (h_[i - 1] < cand && cand < h_[i + 1])
                        ? cand
                        : linear(i, step);
            pos_[i] += step;
        }
    }
}

double p2_estimator::value() const {
    if (count_ == 0) return 0.0;
    if (count_ <= 5) {
        // Exact nearest-rank over the sorted warm-up buffer, matching
        // percentile_tracker on tiny streams. The boundary is inclusive:
        // at exactly five samples h_ is still the sorted sample array (the
        // first marker adjustment only happens on the sixth add), so the
        // exact path stays valid — returning the raw median h_[2] here
        // would mis-report every q != 0.5 on five-sample streams.
        const double n = static_cast<double>(count_);
        auto rank = static_cast<std::size_t>(std::ceil(q_ * n));
        rank = std::min(std::max<std::size_t>(rank, 1),
                        static_cast<std::size_t>(count_));
        return h_[rank - 1];
    }
    return h_[2];
}

void quantile_accumulator::set_streaming(bool on) {
    if (on == streaming_) return;
    if (count() != 0)
        throw std::logic_error(
            "quantile_accumulator::set_streaming: backend switch requires "
            "an empty accumulator");
    streaming_ = on;
}

void quantile_accumulator::merge(const percentile_tracker& other) {
    if (streaming_) {
        for (const double s : other.sorted_samples()) p2_.add(s);
    } else {
        exact_.merge(other);
    }
}

const percentile_tracker& quantile_accumulator::exact() const {
    if (streaming_)
        throw std::logic_error(
            "quantile_accumulator::exact: streaming mode retains no "
            "samples");
    return exact_;
}

std::string fmt_fixed(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

}  // namespace camdn

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace camdn {

void running_stat::add(double value, double weight) {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    weight_ += weight;
    sum_ += value * weight;
}

bucket_histogram::bucket_histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), weights_(bounds_.size() + 1, 0.0) {}

void bucket_histogram::add(double value, double weight) {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    weights_[i] += weight;
    total_ += weight;
}

double bucket_histogram::fraction(std::size_t i) const {
    if (total_ <= 0.0) return 0.0;
    return weights_.at(i) / total_;
}

void percentile_tracker::add(double value) {
    samples_.push_back(value);
    sorted_ = samples_.size() <= 1;
}

void percentile_tracker::ensure_sorted() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
}

double percentile_tracker::quantile(double q) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    // Nearest rank: the smallest sample with at least q of the mass at or
    // below it. q = 0 maps to the minimum, q = 1 to the maximum.
    const double n = static_cast<double>(samples_.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::min(std::max<std::size_t>(rank, 1), samples_.size());
    return samples_[rank - 1];
}

double percentile_tracker::mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
}

void percentile_tracker::assign(std::vector<double> samples) {
    samples_ = std::move(samples);
    sorted_ = false;
}

void percentile_tracker::merge(const percentile_tracker& other) {
    if (other.samples_.empty()) return;
    if (samples_.empty()) {
        samples_ = other.samples_;
        sorted_ = other.sorted_;
        return;
    }
    // Two-way merge of the sorted sides: O(n + m log m) instead of
    // re-sorting the concatenation, and the result is sorted already.
    ensure_sorted();
    other.ensure_sorted();
    const std::size_t mid = samples_.size();
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    std::inplace_merge(samples_.begin(),
                       samples_.begin() + static_cast<std::ptrdiff_t>(mid),
                       samples_.end());
    sorted_ = true;
}

std::string fmt_fixed(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

}  // namespace camdn

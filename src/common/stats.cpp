#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace camdn {

void running_stat::add(double value, double weight) {
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    weight_ += weight;
    sum_ += value * weight;
}

bucket_histogram::bucket_histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), weights_(bounds_.size() + 1, 0.0) {}

void bucket_histogram::add(double value, double weight) {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    weights_[i] += weight;
    total_ += weight;
}

double bucket_histogram::fraction(std::size_t i) const {
    if (total_ <= 0.0) return 0.0;
    return weights_.at(i) / total_;
}

std::string fmt_fixed(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

}  // namespace camdn

#include "common/table_printer.h"

#include <algorithm>
#include <ostream>

namespace camdn {

table_printer::table_printer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

table_printer& table_printer::add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
}

void table_printer::print(std::ostream& os) const {
    std::size_t columns = headers_.size();
    for (const auto& row : rows_) columns = std::max(columns, row.size());

    std::vector<std::size_t> width(columns, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(headers_);
    for (const auto& row : rows_) widen(row);

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < columns; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            os << cell << std::string(width[c] - cell.size(), ' ');
            if (c + 1 < columns) os << "  ";
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < columns; ++c) rule += width[c] + (c + 1 < columns ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

}  // namespace camdn

// Byte-stream primitives for checkpoint/restore.
//
// Every resumable subsystem (cache, DRAM, telemetry bus, workload cursors,
// the scheduler itself) serializes its state through these two classes so
// snapshot encoding rules live in exactly one place: little-endian
// fixed-width integers, bit-exact doubles (raw IEEE-754 payload), and
// length-prefixed strings/blobs. The reader throws `snapshot_error` on any
// structural problem (truncation, impossible lengths) so malformed or
// version-skewed snapshots are rejected with a clear message instead of
// resuming a corrupt simulation.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace camdn {

/// Raised on malformed snapshot input: truncation, bad magic, version
/// mismatch, geometry mismatch against the resuming configuration.
class snapshot_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Appends snapshot fields to a growing byte buffer.
class snapshot_writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void b(bool v) { u8(v ? 1 : 0); }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /// Raw IEEE-754 payload: round-trips bit-exactly, NaNs included.
    void d(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(const std::string& s) {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /// Length-prefixed opaque blob (nested subsystem sections).
    void blob(const std::vector<std::uint8_t>& bytes) {
        u64(bytes.size());
        buf_.insert(buf_.end(), bytes.begin(), bytes.end());
    }

    const std::vector<std::uint8_t>& bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Consumes snapshot fields from a byte buffer; throws snapshot_error on
/// truncation. `done()` lets callers reject trailing garbage.
class snapshot_reader {
public:
    snapshot_reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size) {}
    explicit snapshot_reader(const std::vector<std::uint8_t>& bytes)
        : snapshot_reader(bytes.data(), bytes.size()) {}

    std::uint8_t u8() {
        need(1);
        return data_[pos_++];
    }
    bool b() { return u8() != 0; }

    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double d() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str() {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    std::vector<std::uint8_t> blob() {
        const std::uint64_t n = u64();
        need(n);
        std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
        pos_ += static_cast<std::size_t>(n);
        return out;
    }

    /// Element count for a following sequence, sanity-bounded so a corrupt
    /// length fails fast instead of driving a multi-gigabyte loop.
    std::uint64_t count(std::uint64_t min_elem_bytes = 1) {
        const std::uint64_t n = u64();
        if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes)
            throw snapshot_error(
                "snapshot truncated: sequence of " + std::to_string(n) +
                " elements does not fit in the remaining " +
                std::to_string(remaining()) + " bytes");
        return n;
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

private:
    void need(std::uint64_t n) const {
        if (n > remaining())
            throw snapshot_error("snapshot truncated at byte " +
                                 std::to_string(pos_) + ": need " +
                                 std::to_string(n) + " more, have " +
                                 std::to_string(remaining()));
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

}  // namespace camdn

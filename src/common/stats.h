// Lightweight statistics primitives used by the simulator and the
// experiment harness: running means and explicit-boundary histograms
// (the paper's reuse-count / reuse-distance buckets, Fig 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace camdn {

/// Running count/sum/min/max of a stream of samples.
class running_stat {
public:
    void add(double value, double weight = 1.0);

    std::uint64_t count() const { return count_; }
    double total_weight() const { return weight_; }
    double sum() const { return sum_; }
    double mean() const { return weight_ > 0 ? sum_ / weight_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

private:
    std::uint64_t count_ = 0;
    double weight_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Histogram over half-open buckets defined by ascending upper bounds:
/// bucket i holds values in (bound[i-1], bound[i]]; one implicit overflow
/// bucket holds everything above the last bound. Weighted samples supported
/// (Fig 3 weighs each datum by its byte size).
class bucket_histogram {
public:
    explicit bucket_histogram(std::vector<double> upper_bounds);

    void add(double value, double weight = 1.0);

    std::size_t bucket_count() const { return weights_.size(); }
    double bucket_weight(std::size_t i) const { return weights_.at(i); }
    double total_weight() const { return total_; }
    /// Fraction of total weight in bucket i; 0 if the histogram is empty.
    double fraction(std::size_t i) const;

    const std::vector<double>& upper_bounds() const { return bounds_; }

private:
    std::vector<double> bounds_;
    std::vector<double> weights_;  // bounds_.size() + 1 entries
    double total_ = 0.0;
};

/// Exact quantiles over a sample stream: every sample is stored and the
/// buffer is sorted lazily on the first query after an insert. Nearest-rank
/// quantiles are deterministic — the same samples in any insertion order
/// yield bit-identical results — which the cluster-serving tests rely on.
class percentile_tracker {
public:
    void add(double value);

    /// Pre-sizes the sample buffer (amortizes reallocation when the caller
    /// knows roughly how many samples are coming, e.g. fleet aggregation).
    void reserve(std::size_t n) { samples_.reserve(n); }

    std::uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /// Nearest-rank quantile for q in [0, 1]; 0 on an empty tracker.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }
    double mean() const;

    /// Merges every sample of `other` into this tracker. Implemented as a
    /// sorted two-way merge (both sides sort lazily first), so the result
    /// is immediately query-ready and stays exact — the same multiset of
    /// samples, bit-identical quantiles.
    void merge(const percentile_tracker& other);

    /// Samples in ascending order (sorts lazily, like the quantile
    /// queries). Checkpoint serialization walks this, so snapshot bytes are
    /// independent of insertion order.
    const std::vector<double>& sorted_samples() const {
        ensure_sorted();
        return samples_;
    }

    /// Replaces the contents (checkpoint restore).
    void assign(std::vector<double> samples);

private:
    void ensure_sorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/// Formats `value` with `digits` places after the decimal point.
std::string fmt_fixed(double value, int digits);

}  // namespace camdn

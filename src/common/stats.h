// Lightweight statistics primitives used by the simulator and the
// experiment harness: running means and explicit-boundary histograms
// (the paper's reuse-count / reuse-distance buckets, Fig 3).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace camdn {

/// Running count/sum/min/max of a stream of samples.
class running_stat {
public:
    void add(double value, double weight = 1.0);

    std::uint64_t count() const { return count_; }
    double total_weight() const { return weight_; }
    double sum() const { return sum_; }
    double mean() const { return weight_ > 0 ? sum_ / weight_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

private:
    std::uint64_t count_ = 0;
    double weight_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Histogram over half-open buckets defined by ascending upper bounds:
/// bucket i holds values in (bound[i-1], bound[i]]; one implicit overflow
/// bucket holds everything above the last bound. Weighted samples supported
/// (Fig 3 weighs each datum by its byte size).
class bucket_histogram {
public:
    explicit bucket_histogram(std::vector<double> upper_bounds);

    void add(double value, double weight = 1.0);

    std::size_t bucket_count() const { return weights_.size(); }
    double bucket_weight(std::size_t i) const { return weights_.at(i); }
    double total_weight() const { return total_; }
    /// Fraction of total weight in bucket i; 0 if the histogram is empty.
    double fraction(std::size_t i) const;

    const std::vector<double>& upper_bounds() const { return bounds_; }

    /// Weight of rejected NaN samples (excluded from every bucket and from
    /// total_weight, so fractions stay well-defined).
    double nan_weight() const { return nan_weight_; }

private:
    std::vector<double> bounds_;
    std::vector<double> weights_;  // bounds_.size() + 1 entries
    double total_ = 0.0;
    double nan_weight_ = 0.0;
};

/// Exact quantiles over a sample stream: every sample is stored and the
/// buffer is sorted lazily on the first query after an insert. Nearest-rank
/// quantiles are deterministic — the same samples in any insertion order
/// yield bit-identical results — which the cluster-serving tests rely on.
class percentile_tracker {
public:
    void add(double value);

    /// Pre-sizes the sample buffer (amortizes reallocation when the caller
    /// knows roughly how many samples are coming, e.g. fleet aggregation).
    void reserve(std::size_t n) { samples_.reserve(n); }

    std::uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /// Nearest-rank quantile for q in [0, 1]; 0 on an empty tracker.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    double min() const { return quantile(0.0); }
    double max() const { return quantile(1.0); }
    double mean() const;

    /// Merges every sample of `other` into this tracker. Implemented as a
    /// sorted two-way merge (both sides sort lazily first), so the result
    /// is immediately query-ready and stays exact — the same multiset of
    /// samples, bit-identical quantiles.
    void merge(const percentile_tracker& other);

    /// Samples in ascending order (sorts lazily, like the quantile
    /// queries). Checkpoint serialization walks this, so snapshot bytes are
    /// independent of insertion order.
    const std::vector<double>& sorted_samples() const {
        ensure_sorted();
        return samples_;
    }

    /// Replaces the contents (checkpoint restore).
    void assign(std::vector<double> samples);

    /// NaN samples rejected by add() (merged trackers sum their counts).
    std::uint64_t nan_count() const { return nan_count_; }

private:
    void ensure_sorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    std::uint64_t nan_count_ = 0;
};

/// Streaming quantile estimation via the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers track the target quantile with O(1) memory,
/// adjusting their heights by parabolic interpolation as samples arrive.
/// Exact for the first five samples; afterwards an estimate whose error is
/// small for smooth distributions (the accompanying tests document the
/// observed bounds on uniform / lognormal / adversarial streams). Fully
/// deterministic: the same sample sequence yields bit-identical estimates.
class p2_estimator {
public:
    /// `q` in (0, 1): the quantile to track (0.5 = median).
    explicit p2_estimator(double q = 0.5);

    void add(double value);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double target() const { return q_; }

    /// Current estimate of the target quantile. Exact (nearest-rank over
    /// the seen samples) while fewer than five samples have arrived; 0 on
    /// an empty estimator.
    double value() const;

private:
    double parabolic(int i, double d) const;
    double linear(int i, double d) const;

    double q_;
    std::uint64_t count_ = 0;
    double h_[5] = {0, 0, 0, 0, 0};    ///< marker heights
    double pos_[5] = {1, 2, 3, 4, 5};  ///< marker positions (1-based ranks)
    double want_[5] = {1, 2, 3, 4, 5};  ///< desired positions
    double dwant_[5] = {0, 0, 0, 0, 0};  ///< desired-position increments
};

/// Bundle of P² estimators for the reporting quantiles (p50/p95/p99) plus
/// a running_stat for count/mean/min/max — the O(1)-memory drop-in for
/// percentile_tracker summaries in long-horizon runs, and the histogram
/// backend of the observability metrics registry (obs/metrics.h).
class p2_quantiles {
public:
    p2_quantiles() : q50_(0.50), q95_(0.95), q99_(0.99) {}

    void add(double value) {
        // One NaN would stick in the running min/max and wedge the P²
        // marker invariants permanently; reject it like the exact tracker.
        if (std::isnan(value)) {
            ++nan_count_;
            return;
        }
        q50_.add(value);
        q95_.add(value);
        q99_.add(value);
        stat_.add(value);
    }

    std::uint64_t count() const { return stat_.count(); }
    bool empty() const { return stat_.count() == 0; }
    double p50() const { return q50_.value(); }
    double p95() const { return q95_.value(); }
    double p99() const { return q99_.value(); }
    double mean() const { return stat_.mean(); }
    double min() const { return stat_.min(); }
    double max() const { return stat_.max(); }
    std::uint64_t nan_count() const { return nan_count_; }

private:
    p2_estimator q50_, q95_, q99_;
    running_stat stat_;
    std::uint64_t nan_count_ = 0;
};

/// Quantile summary with a switchable backend: exact (percentile_tracker,
/// the default — bit-identical to the historical fleet metrics) or
/// streaming (p2_quantiles, O(1) memory for million-request runs). The
/// query surface mirrors percentile_tracker so existing consumers compile
/// unchanged; serve::cluster_config::streaming_quantiles selects the mode.
class quantile_accumulator {
public:
    /// Switches backends. Only valid while empty (there is no way to
    /// replay already-folded samples into the other backend).
    void set_streaming(bool on);
    bool streaming() const { return streaming_; }

    void add(double value) {
        if (streaming_)
            p2_.add(value);
        else
            exact_.add(value);
    }

    /// Folds every sample of an exact tracker in (ascending order, so the
    /// streaming estimate is deterministic regardless of how the tracker
    /// was built).
    void merge(const percentile_tracker& other);

    std::uint64_t count() const {
        return streaming_ ? p2_.count() : exact_.count();
    }
    bool empty() const { return count() == 0; }
    double p50() const { return streaming_ ? p2_.p50() : exact_.p50(); }
    double p95() const { return streaming_ ? p2_.p95() : exact_.p95(); }
    double p99() const { return streaming_ ? p2_.p99() : exact_.p99(); }
    double mean() const { return streaming_ ? p2_.mean() : exact_.mean(); }
    double min() const { return streaming_ ? p2_.min() : exact_.min(); }
    double max() const { return streaming_ ? p2_.max() : exact_.max(); }
    std::uint64_t nan_count() const {
        return streaming_ ? p2_.nan_count() : exact_.nan_count();
    }

    /// Exact-mode backend access (throws std::logic_error in streaming
    /// mode — there are no retained samples).
    const percentile_tracker& exact() const;

private:
    bool streaming_ = false;
    percentile_tracker exact_;
    p2_quantiles p2_;
};

/// Formats `value` with `digits` places after the decimal point.
std::string fmt_fixed(double value, int digits);

}  // namespace camdn

// Discrete-event simulation engine.
//
// Every timed component of the SoC model (NPU state machines, DMA chunk
// completions, Algorithm 1 timeouts, task arrivals) schedules work on one
// global queue. Events at equal timestamps run in scheduling order so a
// fixed seed yields a bit-identical simulation.
//
// Events come in two forms:
//   * closures — arbitrary std::function callbacks. Opaque: a pending
//     closure cannot be serialized, so checkpoints may only contain
//     closure events whose owner can re-arm them from its own cursor
//     (workload-generator arrivals, the bandwidth-epoch timer);
//   * typed events — a (channel, kind, payload) record dispatched to the
//     component registered on the channel. Typed events carry no captured
//     state, so the pending set round-trips through save_typed() /
//     restore_typed() byte for byte — this is what lets the simulator
//     checkpoint at an arbitrary cycle with DMA chunks and layer tiles
//     still in flight (the structure ONNXim-style cycle-level NPU models
//     use for their event records).
//
// The heap itself is the simulator's hottest data structure: tens of
// millions of sift operations per run. Entries are therefore POD — the
// typed-event fast lane carries its whole payload inline, and closures
// park their std::function / timer token in a side pool (free-listed,
// reused) so heap moves never touch an allocator or an atomic refcount.
//
// Three facilities support the resumable scheduler (runtime/scheduler.h):
//   * cancellable timers — periodic chains like the MoCA bandwidth epoch
//     arm through schedule_cancellable(); a cancelled entry is skipped
//     without running and, crucially, without advancing now(), so a drained
//     run's makespan is no longer inflated by a pending no-op epoch tick;
//   * explicit-sequence restore — schedule_restored() re-arms an event
//     under the sequence number it held when a checkpoint was taken, and
//     restore_now()/restore_next_seq() re-establish the clock and the
//     tie-break counter, so a resumed run replays same-cycle event order
//     bit for bit;
//   * typed-event serialization — save_typed() walks the pending typed
//     entries (sorted by time and sequence, so snapshots are byte-stable)
//     and restore_typed() re-arms them under their saved sequences.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/snapshot_io.h"
#include "common/types.h"

namespace camdn {

/// Components that receive typed events. One handler per channel,
/// registered at wiring time (the handler is static plumbing, not
/// serialized state).
enum class event_channel : std::uint8_t {
    dma = 0,    ///< npu::dma_engine chunk completions
    layer = 1,  ///< sim::layer_engine tile gates and store issues
    sched = 2,  ///< runtime::scheduler page-negotiation retries
};
inline constexpr std::size_t n_event_channels = 3;

/// One serializable event record: which component (channel), which of its
/// transitions (kind, component-defined) and two payload words whose
/// meaning the component owns (flight ids, slot ids, tile indices).
struct typed_event {
    std::uint8_t channel = 0;
    std::uint8_t kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

class event_queue {
public:
    using callback = std::function<void()>;
    using typed_handler = std::function<void(const typed_event&)>;

    /// Handle to a cancellable event. Default-constructed handles are
    /// detached (armed() == false, cancel() is a no-op), so holders need no
    /// null checks. Copies share the underlying state.
    class timer {
    public:
        timer() = default;

        /// True while the event is pending (not yet fired, not cancelled).
        bool armed() const { return s_ && !s_->cancelled && !s_->fired; }
        cycle_t when() const { return s_ ? s_->when : 0; }
        std::uint64_t seq() const { return s_ ? s_->seq : 0; }

        /// Prevents the pending event from running. The queue entry is
        /// discarded when reached without advancing now().
        void cancel() {
            if (s_ && !s_->cancelled) {
                s_->cancelled = true;
                // A still-pending closure leaves the live count the moment
                // it is cancelled, not when the dead entry surfaces.
                if (!s_->fired && s_->live) --*s_->live;
            }
        }

    private:
        friend class event_queue;
        struct state {
            cycle_t when = 0;
            std::uint64_t seq = 0;
            bool cancelled = false;
            bool fired = false;
            /// Owning queue's live-closure counter (shared so a timer held
            /// past the queue's lifetime stays safe to cancel).
            std::shared_ptr<std::int64_t> live;
        };
        explicit timer(std::shared_ptr<state> s) : s_(std::move(s)) {}
        std::shared_ptr<state> s_;
    };

    event_queue();

    /// Current simulation time. Advances only inside step()/run*.
    cycle_t now() const { return now_; }

    /// Schedules `fn` to run at absolute time `when` (>= now()).
    /// Scheduling in the past is clamped to now() rather than rejected, so
    /// zero-latency completions stay legal. Returns the event's sequence
    /// number (the same-cycle tie-breaker; checkpoint bookkeeping).
    std::uint64_t schedule(cycle_t when, callback fn);

    /// Schedules `fn` to run `delay` cycles from now.
    std::uint64_t schedule_after(cycle_t delay, callback fn) {
        return schedule(now_ + delay, std::move(fn));
    }

    /// Schedules a cancellable event and returns its handle.
    timer schedule_cancellable(cycle_t when, callback fn);

    // ---- typed events ----

    /// Registers (or replaces) the handler of `ch`. Typed events reaching
    /// an unregistered channel throw std::logic_error at dispatch.
    void set_handler(event_channel ch, typed_handler fn);

    /// Schedules a typed event; same clamping and sequence rules as
    /// schedule().
    std::uint64_t schedule_event(cycle_t when, const typed_event& ev);

    /// Re-arms a typed event under an explicit saved sequence number.
    void restore_event(cycle_t when, std::uint64_t seq, const typed_event& ev);

    /// Serializes every pending typed event (when, seq, record), sorted by
    /// (when, seq) so equal states produce equal bytes.
    void save_typed(snapshot_writer& w) const;

    /// Re-arms a saved pending set. The caller restores now()/next_seq()
    /// separately; restored sequences must stay below the restored
    /// next_seq().
    void restore_typed(snapshot_reader& r);

    /// Pending typed events (O(1): tracked incrementally).
    std::size_t pending_typed() const { return typed_count_; }
    /// Live (uncancelled) closure events still pending — at a checkpoint
    /// every one of these must be owned by a component that re-arms it.
    /// O(1): cancel() maintains the count instead of scanning the heap.
    std::size_t pending_closures() const {
        return static_cast<std::size_t>(*live_closures_);
    }

    // ---- checkpoint/restore support ----

    /// Re-arms an event under an explicit sequence number saved at
    /// checkpoint time (does not consume next_seq()). The caller must keep
    /// restored sequences unique and below the restored next_seq().
    void schedule_restored(cycle_t when, std::uint64_t seq, callback fn);

    /// Cancellable variant of schedule_restored (re-armed periodic chains).
    timer restore_cancellable(cycle_t when, std::uint64_t seq, callback fn);

    /// Tie-break counter the next schedule() call will use.
    std::uint64_t next_seq() const { return next_seq_; }

    /// Restores the tie-break counter after a resume; must not go
    /// backwards past sequences already scheduled.
    void restore_next_seq(std::uint64_t seq);

    /// Sets the clock of an empty queue (resume from a snapshot).
    void restore_now(cycle_t now);

    /// Earliest pending live event time; `never` when nothing is pending.
    /// Discards cancelled entries encountered at the head.
    cycle_t next_time();

    // ---- inline continuations (chunk-event coalescing) ----

    /// Asks to process, inline, work that would otherwise be scheduled as
    /// a typed event on `ch` at `when`. Grants the request — advancing
    /// now() to `when` and crediting the executed/dispatch counters as if
    /// the event had been scheduled, popped and dispatched — only when the
    /// outcome is provably identical to the scheduled path: `when` must be
    /// at or after now(), strictly before every pending event (a pending
    /// event at the same cycle holds a smaller sequence number and would
    /// run first), and strictly below the inline horizon. Returns whether
    /// the caller now owns the continuation; on false the caller schedules
    /// the event as usual. Only legal from within a dispatched handler
    /// (the run loops' pause checks see the advanced clock next).
    bool try_inline(cycle_t when, event_channel ch);

    /// Sets the first cycle at which inline continuations are refused
    /// (exclusive horizon). The run loops own this: run_segment-style
    /// drivers must refuse continuations at or past their pause boundary
    /// so pause points land exactly where the scheduled path would pause.
    /// 0 (the default) disables inlining — unit tests driving step() by
    /// hand keep strict one-event-per-step semantics.
    void set_inline_horizon(cycle_t horizon) { inline_horizon_ = horizon; }
    cycle_t inline_horizon() const { return inline_horizon_; }

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /// Events executed by step()/run*() over the queue's lifetime
    /// (cancelled entries discarded without running are not counted).
    /// Monotonic; not serialized — a resumed queue restarts at zero, so
    /// throughput harnesses measure the work of *this* process.
    std::uint64_t executed_events() const { return executed_; }

    /// Dispatch breakdown of executed_events(): typed events per channel
    /// and closure callbacks. Always counted (one array increment per
    /// event); the observability layer exports them as metrics counters.
    std::uint64_t typed_dispatched(event_channel ch) const {
        return typed_dispatched_[static_cast<std::size_t>(ch)];
    }
    std::uint64_t closures_dispatched() const { return closures_dispatched_; }

    /// Runs the earliest live event. Returns false when no live event
    /// remains. Cancelled entries are discarded without advancing now().
    bool step();

    /// Runs events until the queue drains or `max_events` have run.
    /// Returns the number of events executed.
    std::size_t run(std::size_t max_events = SIZE_MAX);

    /// Runs all events with time <= `until` (the queue may retain later
    /// events). now() ends at max(now, until).
    void run_until(cycle_t until);

private:
    static constexpr std::uint32_t no_slot = UINT32_MAX;

    /// Heap node: trivially copyable, 40 bytes. Typed events ride fully
    /// inline; closures reference a side-pool slot holding the
    /// std::function and the optional timer token.
    struct entry {
        cycle_t when;
        std::uint64_t seq;  // tie-breaker: FIFO among same-cycle events
        std::uint64_t a;    // typed payload (unused for closures)
        std::uint64_t b;
        std::uint32_t slot;  // closure-pool index; no_slot for typed
        std::uint8_t channel;
        std::uint8_t kind;
        bool is_typed;
    };
    struct later {
        bool operator()(const entry& a, const entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /// Side-pool slot for one pending closure. Slots recycle through a
    /// free list, so a steady-state run stops allocating entirely.
    struct closure_slot {
        callback fn;
        std::shared_ptr<timer::state> tok;
        std::uint32_t next_free = no_slot;
    };

    std::uint32_t alloc_slot(callback fn, std::shared_ptr<timer::state> tok);
    void release_slot(std::uint32_t slot);

    void push(const entry& e);
    entry pop();

    /// Pops cancelled entries off the head (they neither run nor advance
    /// the clock).
    void discard_cancelled_head();
    bool head_cancelled() const {
        const entry& e = heap_.front();
        if (e.is_typed) return false;
        const auto& tok = pool_[e.slot].tok;
        return tok && tok->cancelled;
    }

    /// Min-heap on (when, seq) — a plain vector managed with the std heap
    /// algorithms so checkpointing can walk the pending entries.
    std::vector<entry> heap_;
    std::vector<closure_slot> pool_;
    std::uint32_t free_head_ = no_slot;
    std::array<typed_handler, n_event_channels> handlers_{};
    cycle_t now_ = 0;
    cycle_t inline_horizon_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
    std::array<std::uint64_t, n_event_channels> typed_dispatched_{};
    std::uint64_t closures_dispatched_ = 0;
    std::size_t typed_count_ = 0;
    /// Live pending closures; shared with timer tokens so cancel() can
    /// decrement without holding a queue pointer.
    std::shared_ptr<std::int64_t> live_closures_;
};

}  // namespace camdn

// Discrete-event simulation engine.
//
// Every timed component of the SoC model (NPU state machines, DMA chunk
// completions, Algorithm 1 timeouts, task arrivals) schedules closures on
// one global queue. Events at equal timestamps run in scheduling order so a
// fixed seed yields a bit-identical simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace camdn {

class event_queue {
public:
    using callback = std::function<void()>;

    /// Current simulation time. Advances only inside step()/run*.
    cycle_t now() const { return now_; }

    /// Schedules `fn` to run at absolute time `when` (>= now()).
    /// Scheduling in the past is clamped to now() rather than rejected, so
    /// zero-latency completions stay legal.
    void schedule(cycle_t when, callback fn);

    /// Schedules `fn` to run `delay` cycles from now.
    void schedule_after(cycle_t delay, callback fn) {
        schedule(now_ + delay, std::move(fn));
    }

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /// Runs the earliest event. Returns false when the queue is empty.
    bool step();

    /// Runs events until the queue drains or `max_events` have run.
    /// Returns the number of events executed.
    std::size_t run(std::size_t max_events = SIZE_MAX);

    /// Runs all events with time <= `until` (the queue may retain later
    /// events). now() ends at max(now, until).
    void run_until(cycle_t until);

private:
    struct entry {
        cycle_t when;
        std::uint64_t seq;  // tie-breaker: FIFO among same-cycle events
        callback fn;
    };
    struct later {
        bool operator()(const entry& a, const entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<entry, std::vector<entry>, later> heap_;
    cycle_t now_ = 0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace camdn

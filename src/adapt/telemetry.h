// Telemetry bus: low-overhead per-epoch runtime counters.
//
// The simulated components (shared cache, DMA engine, layer executor,
// scheduler) carry a nullable `telemetry_bus*`; every hook is a null check
// plus an integer increment, so instrumentation costs nothing when
// telemetry is off and stays cheap when it is on. The scheduler cuts the
// accumulated counters into an `epoch_snapshot` every adaptive epoch; the
// snapshot stream is what the feedback controller (adapt/controller.h) and
// the fleet rollups (adapt/fleet_feedback.h) consume, and it is exported on
// `sim::experiment_result::telemetry` for offline analysis.
//
// This header depends only on common/ so that the hardware layers below
// sim/ can include it without an upward dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "common/snapshot_io.h"
#include "common/types.h"

namespace camdn::adapt {

/// Counters of one task slot accumulated since the last epoch cut.
/// All counts are event-ordered simulation facts, so snapshot streams are
/// bit-identical across repeated runs and sweep-pool widths.
struct task_counters {
    // Cache behaviour (transparent + NEC region paths).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t region_lines = 0;  ///< NEC region reads+writes (lines)
    std::uint64_t fill_lines = 0;    ///< NEC fills from DRAM (lines)

    // DMA traffic issued on behalf of the slot.
    std::uint64_t dma_bytes = 0;

    // Layer execution.
    std::uint64_t layers_retired = 0;
    std::uint64_t compute_cycles = 0;  ///< pure-compute portion of layers
    std::uint64_t layer_cycles = 0;    ///< issue-to-retire span of layers
    std::uint64_t lbm_layers = 0;      ///< layers run on an LBM candidate

    // Algorithm-1 page negotiation.
    std::uint64_t page_wait_cycles = 0;  ///< stalled waiting on page grants
    std::uint64_t page_timeouts = 0;     ///< negotiations that hit timeout
    std::uint64_t lbm_downgrades = 0;    ///< LBM decisions lost to timeout

    // Completions and QoS slack.
    std::uint64_t completions = 0;
    std::uint64_t deadline_completions = 0;  ///< completions carrying a deadline
    std::uint64_t deadline_misses = 0;
    /// Sum of signed slack (deadline - end) over completions with a
    /// deadline, cycles. Negative when the slot is running late.
    std::int64_t slack_cycles = 0;

    /// True when the slot did anything at all this epoch.
    bool active() const {
        return layers_retired || dma_bytes || page_wait_cycles || completions;
    }
};

/// One cut of the telemetry bus: per-slot counters plus SoC-level facts
/// sampled by the scheduler at the cut.
struct epoch_snapshot {
    std::uint64_t index = 0;
    cycle_t start = 0;
    cycle_t end = 0;

    std::vector<task_counters> tasks;  ///< indexed by task slot

    // SoC-level, sampled at the cut.
    std::uint64_t dram_bytes = 0;      ///< DRAM bytes moved this epoch
    std::uint64_t dram_throttled = 0;  ///< regulated requests this epoch
    double bw_utilization = 0.0;       ///< dram_bytes / (peak * epoch span)
    std::uint32_t idle_pages = 0;      ///< free NPU-subspace pages at cut
    std::uint32_t active_slots = 0;    ///< slots with activity this epoch

    cycle_t span() const { return end > start ? end - start : 0; }

    std::uint64_t total_page_wait() const {
        std::uint64_t sum = 0;
        for (const auto& t : tasks) sum += t.page_wait_cycles;
        return sum;
    }
    std::uint64_t total_timeouts() const {
        std::uint64_t sum = 0;
        for (const auto& t : tasks) sum += t.page_timeouts;
        return sum;
    }
    /// Page-wait cycles per active slot per epoch cycle — the contention
    /// pressure signal the controller and the fleet router act on.
    double page_wait_frac() const {
        const cycle_t s = span();
        if (!s || !active_slots) return 0.0;
        return static_cast<double>(total_page_wait()) /
               (static_cast<double>(s) * active_slots);
    }
};

/// The accumulator the instrumented components write into. Hooks are
/// no-ops for out-of-range slots (no_task, isolated warm-up probes).
class telemetry_bus {
public:
    explicit telemetry_bus(std::uint32_t slots = 0) { reset(slots); }

    void reset(std::uint32_t slots) {
        cur_.assign(slots, task_counters{});
        history_.clear();
        epoch_start_ = 0;
    }

    std::uint32_t slots() const { return static_cast<std::uint32_t>(cur_.size()); }

    // ---- hooks (hot paths: null-checked by the caller) ----

    void on_cache_access(task_id t, bool hit) {
        if (auto* c = slot(t)) (hit ? c->cache_hits : c->cache_misses) += 1;
    }
    void on_region_lines(task_id t, std::uint64_t lines) {
        if (auto* c = slot(t)) c->region_lines += lines;
    }
    void on_fill_lines(task_id t, std::uint64_t lines) {
        if (auto* c = slot(t)) c->fill_lines += lines;
    }
    void on_dma_bytes(task_id t, std::uint64_t bytes) {
        if (auto* c = slot(t)) c->dma_bytes += bytes;
    }
    void on_layer_retired(task_id t, std::uint64_t compute, std::uint64_t span,
                          bool lbm) {
        if (auto* c = slot(t)) {
            c->layers_retired += 1;
            c->compute_cycles += compute;
            c->layer_cycles += span;
            if (lbm) c->lbm_layers += 1;
        }
    }
    void on_page_wait(task_id t, cycle_t cycles) {
        if (auto* c = slot(t)) c->page_wait_cycles += cycles;
    }
    void on_page_timeout(task_id t, bool was_lbm) {
        if (auto* c = slot(t)) {
            c->page_timeouts += 1;
            if (was_lbm) c->lbm_downgrades += 1;
        }
    }
    void on_completion(task_id t, cycle_t end, cycle_t deadline) {
        auto* c = slot(t);
        if (!c) return;
        c->completions += 1;
        if (deadline != never) {
            c->deadline_completions += 1;
            c->slack_cycles += static_cast<std::int64_t>(deadline) -
                               static_cast<std::int64_t>(end);
            if (end > deadline) c->deadline_misses += 1;
        }
    }

    // ---- epoch cutting (scheduler only) ----

    /// SoC-level facts the scheduler samples at the cut.
    struct cut_sample {
        std::uint64_t dram_bytes = 0;      ///< epoch delta
        std::uint64_t dram_throttled = 0;  ///< epoch delta
        double peak_bytes_per_cycle = 0.0;
        std::uint32_t idle_pages = 0;
    };

    /// Closes the current epoch at `now`, appends it to history and starts
    /// a fresh one. Returns the closed snapshot.
    const epoch_snapshot& cut(cycle_t now, const cut_sample& s);

    /// True when the open epoch has recorded anything (a final partial cut
    /// is worth keeping).
    bool open_epoch_active() const;

    const std::vector<epoch_snapshot>& history() const { return history_; }

    // ---- checkpoint support ----

    /// Serializes the open-epoch counters, the epoch start time and the cut
    /// history. `keep_history` on restore selects between an exact
    /// continuation (history carries, epoch indices keep counting) and a
    /// warm segment restart (fresh history, only the open epoch carries so
    /// boundaries stay aligned to the global epoch grid).
    void save_state(snapshot_writer& w) const;
    void restore_state(snapshot_reader& r, bool keep_history);

private:
    task_counters* slot(task_id t) {
        return t >= 0 && static_cast<std::size_t>(t) < cur_.size()
                   ? &cur_[static_cast<std::size_t>(t)]
                   : nullptr;
    }

    std::vector<task_counters> cur_;
    std::vector<epoch_snapshot> history_;
    cycle_t epoch_start_ = 0;
};

}  // namespace camdn::adapt

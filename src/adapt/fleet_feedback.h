// Fleet-level feedback: per-SoC telemetry rollups and the routing-weight /
// re-placement controller the serve layer closes its loop with.
//
// A cluster run with feedback enabled proceeds in rounds. After each round
// every SoC's simulation result (completions, drops, telemetry epochs) is
// collapsed into a `soc_rollup`; the `fleet_feedback` controller turns the
// rollups into per-SoC load weights — the router multiplies a SoC's
// estimated backlog by its weight, steering traffic away from SoCs under
// cache page-wait pressure — and flags sustained QoS violation so the
// cluster can re-plan placement against the traffic mix it actually
// observed. Decisions are pure functions of the rollup stream, keeping
// cluster runs bit-identical across repetitions and pool widths.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.h"

namespace camdn::adapt {

/// One SoC's round, collapsed to the signals the fleet controller uses.
struct soc_rollup {
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;        ///< refused at the admission queue
    std::uint64_t deadline_met = 0;   ///< completions within the SLA target
    double sla_rate = 1.0;            ///< met / (completed + dropped)
    double page_wait_frac = 0.0;      ///< mean telemetry epoch pressure
    double bw_utilization = 0.0;      ///< mean DRAM utilization over epochs
    double p99_ms = 0.0;

    /// Routing pressure: page-wait dominated, with drops and SLA misses
    /// folded in (all dimensionless, wait scaled to comparable magnitude).
    double pressure() const {
        const std::uint64_t offered = completed + dropped;
        const double drop_frac =
            offered ? static_cast<double>(dropped) / offered : 0.0;
        return 10.0 * page_wait_frac + drop_frac + (1.0 - sla_rate);
    }
};

/// Collapses one SoC round result. The SLA target per completion is
/// qos_scale * its model's Table-I latency target; dropped arrivals count
/// as violations.
soc_rollup rollup_from(const sim::experiment_result& res, double qos_scale);

struct fleet_feedback_config {
    /// Multiplicative weight step per unit of pressure above/below the
    /// fleet mean, per round.
    double pressure_gain = 1.0;
    double weight_min = 0.25;
    double weight_max = 4.0;
    /// A round with sla_rate below this counts toward the violation streak.
    double sla_target = 0.9;
    /// Consecutive violating rounds on any SoC before re-placement fires.
    std::uint32_t replace_patience = 2;
    /// Proactive re-placement on traffic-mix drift: when > 0, a round
    /// whose observed per-tenant routed mix diverges from the planned mix
    /// by more than this many nats (KL, add-one smoothed) triggers a
    /// re-plan without waiting for an SLA violation streak. 0 disables.
    double mix_kl_threshold = 0.0;
};

class fleet_feedback {
public:
    fleet_feedback(const fleet_feedback_config& cfg, std::size_t socs);

    /// Consumes one round of rollups (fleet order) and updates weights and
    /// violation streaks.
    void observe(const std::vector<soc_rollup>& round);

    /// Per-SoC backlog multipliers for the router (>1 = avoid).
    const std::vector<double>& weights() const { return weights_; }

    /// True when some SoC has violated its SLA target for
    /// `replace_patience` consecutive rounds. Consuming the signal resets
    /// every streak (the re-placement gets a fresh observation window).
    bool replacement_due();

    /// KL divergence (nats) of the observed per-tenant routed counts from
    /// the planned traffic weights. Both sides are normalized with add-one
    /// style smoothing, so zero counts and zero weights are safe and the
    /// result is always finite and non-negative.
    static double mix_divergence(const std::vector<double>& planned,
                                 const std::vector<std::uint64_t>& observed);

    /// Proactive drift trigger: true when mix_kl_threshold > 0 and the
    /// round's observed mix diverged past it. Pure (no streak state).
    bool drift_replan_due(const std::vector<double>& planned,
                          const std::vector<std::uint64_t>& observed) const;

    std::uint32_t rounds_seen() const { return rounds_; }

private:
    fleet_feedback_config cfg_;
    std::vector<double> weights_;
    std::vector<std::uint32_t> streak_;
    std::uint32_t rounds_ = 0;
};

}  // namespace camdn::adapt

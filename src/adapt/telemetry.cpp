#include "adapt/telemetry.h"

namespace camdn::adapt {

const epoch_snapshot& telemetry_bus::cut(cycle_t now, const cut_sample& s) {
    epoch_snapshot snap;
    snap.index = history_.size();
    snap.start = epoch_start_;
    snap.end = now;
    snap.tasks = cur_;
    snap.dram_bytes = s.dram_bytes;
    snap.dram_throttled = s.dram_throttled;
    snap.idle_pages = s.idle_pages;
    for (const auto& c : snap.tasks)
        if (c.active()) snap.active_slots += 1;
    if (snap.span() && s.peak_bytes_per_cycle > 0.0)
        snap.bw_utilization =
            static_cast<double>(s.dram_bytes) /
            (s.peak_bytes_per_cycle * static_cast<double>(snap.span()));
    history_.push_back(std::move(snap));
    cur_.assign(cur_.size(), task_counters{});
    epoch_start_ = now;
    return history_.back();
}

bool telemetry_bus::open_epoch_active() const {
    for (const auto& c : cur_)
        if (c.active() || c.cache_hits || c.cache_misses) return true;
    return false;
}

}  // namespace camdn::adapt

#include "adapt/telemetry.h"

namespace camdn::adapt {

const epoch_snapshot& telemetry_bus::cut(cycle_t now, const cut_sample& s) {
    epoch_snapshot snap;
    snap.index = history_.size();
    snap.start = epoch_start_;
    snap.end = now;
    snap.tasks = cur_;
    snap.dram_bytes = s.dram_bytes;
    snap.dram_throttled = s.dram_throttled;
    snap.idle_pages = s.idle_pages;
    for (const auto& c : snap.tasks)
        if (c.active()) snap.active_slots += 1;
    if (snap.span() && s.peak_bytes_per_cycle > 0.0)
        snap.bw_utilization =
            static_cast<double>(s.dram_bytes) /
            (s.peak_bytes_per_cycle * static_cast<double>(snap.span()));
    history_.push_back(std::move(snap));
    cur_.assign(cur_.size(), task_counters{});
    epoch_start_ = now;
    return history_.back();
}

bool telemetry_bus::open_epoch_active() const {
    for (const auto& c : cur_)
        if (c.active() || c.cache_hits || c.cache_misses) return true;
    return false;
}

namespace {

void save_counters(snapshot_writer& w, const task_counters& c) {
    w.u64(c.cache_hits);
    w.u64(c.cache_misses);
    w.u64(c.region_lines);
    w.u64(c.fill_lines);
    w.u64(c.dma_bytes);
    w.u64(c.layers_retired);
    w.u64(c.compute_cycles);
    w.u64(c.layer_cycles);
    w.u64(c.lbm_layers);
    w.u64(c.page_wait_cycles);
    w.u64(c.page_timeouts);
    w.u64(c.lbm_downgrades);
    w.u64(c.completions);
    w.u64(c.deadline_completions);
    w.u64(c.deadline_misses);
    w.i64(c.slack_cycles);
}

void restore_counters(snapshot_reader& r, task_counters& c) {
    c.cache_hits = r.u64();
    c.cache_misses = r.u64();
    c.region_lines = r.u64();
    c.fill_lines = r.u64();
    c.dma_bytes = r.u64();
    c.layers_retired = r.u64();
    c.compute_cycles = r.u64();
    c.layer_cycles = r.u64();
    c.lbm_layers = r.u64();
    c.page_wait_cycles = r.u64();
    c.page_timeouts = r.u64();
    c.lbm_downgrades = r.u64();
    c.completions = r.u64();
    c.deadline_completions = r.u64();
    c.deadline_misses = r.u64();
    c.slack_cycles = r.i64();
}

}  // namespace

void telemetry_bus::save_state(snapshot_writer& w) const {
    w.u64(epoch_start_);
    w.u64(cur_.size());
    for (const auto& c : cur_) save_counters(w, c);
    w.u64(history_.size());
    for (const auto& e : history_) {
        w.u64(e.index);
        w.u64(e.start);
        w.u64(e.end);
        w.u64(e.tasks.size());
        for (const auto& c : e.tasks) save_counters(w, c);
        w.u64(e.dram_bytes);
        w.u64(e.dram_throttled);
        w.d(e.bw_utilization);
        w.u32(e.idle_pages);
        w.u32(e.active_slots);
    }
}

void telemetry_bus::restore_state(snapshot_reader& r, bool keep_history) {
    epoch_start_ = r.u64();
    const std::uint64_t slots = r.count(16 * 8);
    if (slots != cur_.size())
        throw snapshot_error("snapshot telemetry slot-count mismatch: saved " +
                             std::to_string(slots) + ", configured " +
                             std::to_string(cur_.size()));
    for (auto& c : cur_) restore_counters(r, c);
    history_.clear();
    const std::uint64_t epochs = r.count(8);
    for (std::uint64_t i = 0; i < epochs; ++i) {
        epoch_snapshot e;
        e.index = r.u64();
        e.start = r.u64();
        e.end = r.u64();
        const std::uint64_t n = r.count(16 * 8);
        e.tasks.resize(n);
        for (auto& c : e.tasks) restore_counters(r, c);
        e.dram_bytes = r.u64();
        e.dram_throttled = r.u64();
        e.bw_utilization = r.d();
        e.idle_pages = r.u32();
        e.active_slots = r.u32();
        if (keep_history) history_.push_back(std::move(e));
    }
}

}  // namespace camdn::adapt

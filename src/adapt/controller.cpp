#include "adapt/controller.h"

#include <algorithm>
#include <cmath>

namespace camdn::adapt {

feedback_controller::feedback_controller(const controller_config& cfg,
                                         std::uint32_t slots,
                                         std::uint32_t total_pages,
                                         double initial_ahead)
    : cfg_(cfg),
      slots_(std::max<std::uint32_t>(slots, 1)),
      total_pages_(total_pages),
      active_ema_(static_cast<double>(slots_)),
      ahead_baseline_(initial_ahead) {
    action_.ahead_ratio = initial_ahead;
    action_.page_share.assign(slots_, total_pages_ / slots_);
    action_.bw_share.assign(slots_, 0.0);
}

const control_action& feedback_controller::on_epoch(const epoch_snapshot& snap) {
    if (cfg_.manage_shares) update_shares(snap);
    if (cfg_.manage_ahead) update_ahead(snap);
    if (cfg_.manage_bandwidth) update_bandwidth(snap);
    return action_;
}

void feedback_controller::update_shares(const epoch_snapshot& snap) {
    // Track how many slots are genuinely competing for the cache. Idle
    // slots strand pages under the static equal split; the adaptive split
    // divides the pool by the smoothed active count instead, so survivors
    // of a lull run on larger candidates and a returning burst shrinks the
    // split back within an epoch or two.
    const double observed =
        static_cast<double>(std::max<std::uint32_t>(snap.active_slots, 1));
    active_ema_ += cfg_.active_smoothing * (observed - active_ema_);
    // Round up: a fractional competitor still constrains the split. Never
    // below 1 or above the slot count.
    const std::uint32_t effective = std::min<std::uint32_t>(
        slots_, std::max<std::uint32_t>(
                    1, static_cast<std::uint32_t>(std::ceil(active_ema_ - 1e-9))));
    const std::uint32_t share = total_pages_ / effective;
    // The share is a prediction horizon input, not a hard grant, so every
    // slot gets the same figure: whichever slots turn out active next epoch
    // plan against the same split.
    std::fill(action_.page_share.begin(), action_.page_share.end(), share);
}

void feedback_controller::update_ahead(const epoch_snapshot& snap) {
    // Multiplicative increase / decrease on the Algorithm-1 look-ahead,
    // floored at the profile-time baseline. A quiet epoch (hardly any
    // waiting, zero timeouts) grows the horizon, admitting LBM blocks and
    // larger candidates earlier while the cache is uncontended; timeouts
    // or sustained waiting collapse it back toward the baseline, where
    // decisions coincide with static CaMDN. Anything in between holds.
    // Growth additionally requires spare capacity (idle slots). A fully
    // loaded SoC with momentarily quiet negotiation is still the regime
    // the baseline was tuned for, and stretching the horizon there trades
    // timeouts for nothing — page-pool idleness at the cut instant is too
    // transient a signal (tasks release between layers) to count.
    const bool spare = snap.active_slots < slots_;
    const double wait = snap.page_wait_frac();
    double a = action_.ahead_ratio;
    if (snap.total_timeouts() > 0 || wait > cfg_.wait_hi) {
        a *= cfg_.ahead_down;
    } else if (wait < cfg_.wait_lo && snap.active_slots > 0 && spare) {
        a *= cfg_.ahead_up;
    }
    action_.ahead_ratio =
        std::clamp(a, ahead_baseline_, std::max(ahead_baseline_, cfg_.ahead_max));
}

void feedback_controller::save_state(snapshot_writer& w) const {
    w.d(active_ema_);
    w.d(action_.ahead_ratio);
    w.u64(action_.page_share.size());
    for (const std::uint32_t p : action_.page_share) w.u32(p);
    w.u64(action_.bw_share.size());
    for (const double s : action_.bw_share) w.d(s);
}

void feedback_controller::restore_state(snapshot_reader& r) {
    active_ema_ = r.d();
    action_.ahead_ratio = r.d();
    const std::uint64_t npages = r.count(4);
    if (npages != action_.page_share.size())
        throw snapshot_error("snapshot controller slot-count mismatch");
    for (auto& p : action_.page_share) p = r.u32();
    const std::uint64_t nbw = r.count(8);
    if (nbw != action_.bw_share.size())
        throw snapshot_error("snapshot controller slot-count mismatch");
    for (auto& s : action_.bw_share) s = r.d();
}

void feedback_controller::update_bandwidth(const epoch_snapshot& snap) {
    // MoCA-style epoch caps, driven by observed slack instead of layer
    // profiles: when one slot moved an outsized share of the epoch's DMA
    // bytes while another slot is behind its deadline, cap the hog at its
    // population share for the next epoch. Everyone else runs
    // unregulated. Without deadline observations (throughput mode) the
    // loop stays inert — a cap can only trade tail latency for fairness,
    // and with nobody's slack to restore that trade has no payer.
    std::fill(action_.bw_share.begin(), action_.bw_share.end(), 0.0);
    const std::uint32_t active = snap.active_slots;
    if (active < 2) return;

    std::uint64_t total_bytes = 0;
    bool someone_late = false;
    for (const auto& c : snap.tasks) {
        total_bytes += c.dma_bytes;
        if (!c.active()) continue;
        if (c.deadline_misses > 0 ||
            (c.deadline_completions > 0 && c.slack_cycles < 0))
            someone_late = true;
    }
    if (!someone_late || total_bytes == 0) return;

    const double fair = 1.0 / static_cast<double>(active);
    for (std::size_t s = 0; s < snap.tasks.size(); ++s) {
        const auto& c = snap.tasks[s];
        if (!c.active()) continue;
        const double frac = static_cast<double>(c.dma_bytes) /
                            static_cast<double>(total_bytes);
        const bool behind = c.deadline_misses > 0 ||
                            (c.deadline_completions > 0 && c.slack_cycles < 0);
        if (!behind && frac > cfg_.hog_factor * fair)
            action_.bw_share[s] = std::max(cfg_.bw_floor, fair);
    }
}

}  // namespace camdn::adapt

// Epoch-driven feedback controller for `policy::camdn_adaptive`.
//
// CaMDN's Algorithm 1 acts on offline estimates: the fairness floor and the
// predicted steady-state demand assume all `co_located` slots are busy, and
// the 0.2 `ahead_ratio` look-ahead is a fixed profile-time constant. Under
// bursty or drifting traffic both assumptions break — idle slots strand
// cache pages, and a fixed look-ahead either forfeits LBM in lulls or
// over-commits and times out under contention. Following MoCA's
// memory-centric adaptive execution, this controller closes the loop: every
// epoch it consumes the telemetry snapshot and re-derives
//   * per-slot cache page shares (the Algorithm-1 fairness floor and
//     steady-state prediction) from the observed active-slot count,
//   * the `ahead_ratio` via multiplicative increase/decrease keyed to
//     observed page-wait pressure and negotiation timeouts,
//   * MoCA-style per-slot DRAM bandwidth caps from observed traffic skew
//     and QoS slack.
// The decision path is a pure function of the snapshot stream and the
// seeded config, so adaptive sweeps stay bit-identical across runs and
// thread-pool widths.
#pragma once

#include <cstdint>
#include <vector>

#include "adapt/telemetry.h"
#include "common/snapshot_io.h"
#include "common/types.h"

namespace camdn::adapt {

struct controller_config {
    /// Telemetry/decision epoch (cycles of the 1 GHz clock).
    cycle_t epoch = 100'000;

    // ---- page-share loop ----
    bool manage_shares = true;
    /// Smoothing of the observed active-slot count, in [0,1]; higher reacts
    /// faster to bursts, lower rides through blips.
    double active_smoothing = 0.5;

    // ---- ahead_ratio loop (multiplicative increase / decrease) ----
    // The look-ahead only ever grows above the profile-time baseline (the
    // paper's 0.2, tuned for saturated co-location) and falls back to it
    // under contention: in a fully loaded SoC the adaptive policy thereby
    // converges to static CaMDN instead of under- or over-shooting it.
    bool manage_ahead = true;
    double ahead_max = 0.35;
    double ahead_up = 1.2;    ///< applied when contention is low
    double ahead_down = 0.5;  ///< applied on timeouts / heavy waiting
    /// Page-wait fraction (per active slot) above which the look-ahead
    /// backs off, and below which it may grow. Between the two: hold.
    double wait_hi = 0.01;
    double wait_lo = 0.001;

    // ---- bandwidth loop ----
    bool manage_bandwidth = true;
    /// A slot is a bandwidth hog when its share of epoch DMA bytes exceeds
    /// hog_factor / active_slots while some other slot is behind.
    double hog_factor = 1.5;
    /// Caps never drop below this DRAM share.
    double bw_floor = 0.125;

    /// Reserved for stochastic controller extensions (e.g. dithered
    /// exploration). Every current loop is a pure function of the snapshot
    /// stream, so two controllers with equal config and input agree
    /// bit-for-bit regardless of seed.
    std::uint64_t seed = 0;
};

/// What the scheduler applies after each epoch decision.
struct control_action {
    double ahead_ratio = 0.2;
    /// Per-slot fairness floor / steady-state prediction, pages.
    std::vector<std::uint32_t> page_share;
    /// Per-slot DRAM share in [0,1]; 0 = unregulated.
    std::vector<double> bw_share;
};

class feedback_controller {
public:
    feedback_controller(const controller_config& cfg, std::uint32_t slots,
                        std::uint32_t total_pages, double initial_ahead);

    /// Consumes one epoch snapshot and returns the action to apply for the
    /// next epoch. Deterministic.
    const control_action& on_epoch(const epoch_snapshot& snap);

    const control_action& action() const { return action_; }
    double smoothed_active() const { return active_ema_; }
    const controller_config& config() const { return cfg_; }

    /// Checkpoint support: serializes / restores the loop state (smoothed
    /// active count and the last published action) so a resumed run
    /// continues the control trajectory bit for bit.
    void save_state(snapshot_writer& w) const;
    void restore_state(snapshot_reader& r);

private:
    void update_shares(const epoch_snapshot& snap);
    void update_ahead(const epoch_snapshot& snap);
    void update_bandwidth(const epoch_snapshot& snap);

    controller_config cfg_;
    std::uint32_t slots_;
    std::uint32_t total_pages_;
    double active_ema_;
    double ahead_baseline_;
    control_action action_;
};

}  // namespace camdn::adapt

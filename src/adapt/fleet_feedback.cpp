#include "adapt/fleet_feedback.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "runtime/qos.h"

namespace camdn::adapt {

soc_rollup rollup_from(const sim::experiment_result& res, double qos_scale) {
    soc_rollup r;
    r.completed = res.completions.size();
    r.dropped = res.rejected_arrivals;

    percentile_tracker lat;
    for (const auto& rec : res.completions) {
        lat.add(cycles_to_ms(rec.latency()));
        if (runtime::meets_qos_target(rec.abbr, rec.latency(), qos_scale))
            r.deadline_met += 1;
    }
    r.p99_ms = lat.p99();
    const std::uint64_t offered = r.completed + r.dropped;
    r.sla_rate = offered ? static_cast<double>(r.deadline_met) /
                               static_cast<double>(offered)
                         : 1.0;

    if (!res.telemetry.empty()) {
        double wait = 0.0, util = 0.0;
        for (const auto& e : res.telemetry) {
            wait += e.page_wait_frac();
            util += e.bw_utilization;
        }
        r.page_wait_frac = wait / static_cast<double>(res.telemetry.size());
        r.bw_utilization = util / static_cast<double>(res.telemetry.size());
    }
    return r;
}

fleet_feedback::fleet_feedback(const fleet_feedback_config& cfg,
                               std::size_t socs)
    : cfg_(cfg), weights_(socs, 1.0), streak_(socs, 0) {}

void fleet_feedback::observe(const std::vector<soc_rollup>& round) {
    rounds_ += 1;
    const std::size_t n = std::min(round.size(), weights_.size());
    if (n == 0) return;

    double mean = 0.0;
    for (std::size_t s = 0; s < n; ++s) mean += round[s].pressure();
    mean /= static_cast<double>(n);

    for (std::size_t s = 0; s < n; ++s) {
        // Pressure above the fleet mean inflates the SoC's apparent
        // backlog (router avoids it); below-mean pressure deflates it.
        const double delta = round[s].pressure() - mean;
        weights_[s] = std::clamp(
            weights_[s] * (1.0 + cfg_.pressure_gain * delta),
            cfg_.weight_min, cfg_.weight_max);
        if (round[s].sla_rate < cfg_.sla_target)
            streak_[s] += 1;
        else
            streak_[s] = 0;
    }
}

bool fleet_feedback::replacement_due() {
    bool due = false;
    for (const std::uint32_t s : streak_)
        if (s >= cfg_.replace_patience) due = true;
    if (due) std::fill(streak_.begin(), streak_.end(), 0u);
    return due;
}

double fleet_feedback::mix_divergence(
    const std::vector<double>& planned,
    const std::vector<std::uint64_t>& observed) {
    const std::size_t m = std::min(planned.size(), observed.size());
    if (m == 0) return 0.0;
    double total_w = 0.0;
    double total_n = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        total_w += std::max(planned[i], 0.0);
        total_n += static_cast<double>(observed[i]);
    }
    if (total_w <= 0.0 || total_n <= 0.0) return 0.0;

    // Add-one smoothing on the counts; a proportional floor on the
    // weights — both sides stay proper distributions, so the divergence
    // is finite and >= 0 even with unserved tenants or zero weights.
    const double floor = total_w / static_cast<double>(m) * 1e-3;
    double kl = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        const double p = (static_cast<double>(observed[i]) + 1.0) /
                         (total_n + static_cast<double>(m));
        const double q = (std::max(planned[i], 0.0) + floor) /
                         (total_w + static_cast<double>(m) * floor);
        kl += p * std::log(p / q);
    }
    return std::max(kl, 0.0);
}

bool fleet_feedback::drift_replan_due(
    const std::vector<double>& planned,
    const std::vector<std::uint64_t>& observed) const {
    return cfg_.mix_kl_threshold > 0.0 &&
           mix_divergence(planned, observed) > cfg_.mix_kl_threshold;
}

}  // namespace camdn::adapt

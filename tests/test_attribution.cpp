// Tests of the latency-attribution layer (obs/attribution.h):
//   * exactness — the six components sum bit-exactly to end-to-end
//     latency for every attributed inference, across closed-loop,
//     Poisson, MMPP and fleet scenarios;
//   * interference matrix — every tenant's row sums bit-exactly to the
//     tenant's blameable stall (page_wait + dma_stall + dram_contention +
//     cache_penalty), and the per-tenant latency identity survives the
//     fleet fold (absorb across rounds and SoCs);
//   * zero-overhead-off — an attribution-attached run is bit-identical
//     (results AND snapshot bytes) to a bare run;
//   * exporters — metrics keys and the JSONL row carry the totals.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "model/model_zoo.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "runtime/scheduler.h"
#include "runtime/workload.h"
#include "serve/cluster.h"
#include "sim/experiment.h"

namespace camdn {
namespace {

sim::experiment_config base_cfg(sim::policy pol) {
    sim::experiment_config cfg;
    cfg.pol = pol;
    cfg.workload = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.co_located = 4;
    cfg.kind = runtime::workload_kind::closed_loop;
    cfg.inferences_per_slot = 3;
    cfg.seed = 17;
    return cfg;
}

/// Runs `cfg` with an attributor attached and checks the per-inference
/// decomposition identity plus the interference row-sum identity.
void check_exact_decomposition(sim::experiment_config cfg) {
    obs::latency_attributor attr;
    cfg.obs.attr = &attr;
    const auto res = sim::run_experiment(cfg);

    ASSERT_GT(res.completions.size(), 0u);
    // Every completion was attributed (no snapshot boundaries here).
    ASSERT_EQ(attr.records().size(), res.completions.size());

    for (const auto& rec : attr.records()) {
        EXPECT_EQ(rec.comp.sum(), rec.end - rec.arrival)
            << "slot " << rec.slot << " tenant "
            << attr.tenant_names()[rec.tenant] << ": components must tile "
            << "the end-to-end latency exactly";
        EXPECT_GT(rec.comp.compute, 0u);
    }

    const auto& tenants = attr.tenants();
    std::uint64_t total_completed = 0;
    for (std::uint32_t i = 0; i < tenants.size(); ++i) {
        const auto& t = tenants[i];
        total_completed += t.completed;
        EXPECT_EQ(t.comp.sum(), t.latency_cycles)
            << "tenant " << attr.tenant_names()[i];
        EXPECT_EQ(attr.interference_row_sum(i), t.comp.stall_sum())
            << "tenant " << attr.tenant_names()[i]
            << ": interference row must account for every blameable cycle";
    }
    EXPECT_EQ(total_completed, res.completions.size());
}

TEST(attribution, closed_loop_components_sum_exactly) {
    check_exact_decomposition(base_cfg(sim::policy::camdn_full));
}

TEST(attribution, closed_loop_baseline_policy_sums_exactly) {
    // No page negotiation on this path: page_wait must be zero and the
    // rest still tiles exactly.
    auto cfg = base_cfg(sim::policy::shared_baseline);
    obs::latency_attributor attr;
    cfg.obs.attr = &attr;
    sim::run_experiment(cfg);
    for (const auto& rec : attr.records()) {
        EXPECT_EQ(rec.comp.page_wait, 0u);
        EXPECT_EQ(rec.comp.sum(), rec.end - rec.arrival);
    }
}

TEST(attribution, open_loop_poisson_components_sum_exactly) {
    auto cfg = base_cfg(sim::policy::camdn_full);
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.arrival_rate_per_ms = 1.2;
    cfg.total_arrivals = 16;
    cfg.admission_queue_limit = 8;
    check_exact_decomposition(cfg);
}

TEST(attribution, open_loop_mmpp_components_sum_exactly) {
    auto cfg = base_cfg(sim::policy::camdn_adaptive);
    cfg.kind = runtime::workload_kind::open_loop_mmpp;
    cfg.arrival_rate_per_ms = 1.0;
    cfg.total_arrivals = 16;
    cfg.admission_queue_limit = 8;
    check_exact_decomposition(cfg);
}

TEST(attribution, queued_arrivals_charge_queue_wait) {
    // A burst far above service rate must show admission-queue wait.
    auto cfg = base_cfg(sim::policy::camdn_full);
    cfg.co_located = 2;
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.arrival_rate_per_ms = 50.0;
    cfg.total_arrivals = 12;
    cfg.admission_queue_limit = 12;
    obs::latency_attributor attr;
    cfg.obs.attr = &attr;
    sim::run_experiment(cfg);
    std::uint64_t queue_wait = 0;
    for (const auto& rec : attr.records()) {
        queue_wait += rec.comp.queue_wait;
        EXPECT_EQ(rec.comp.sum(), rec.end - rec.arrival);
    }
    EXPECT_GT(queue_wait, 0u);
}

TEST(attribution, contended_run_blames_other_tenants) {
    // Four co-located tenants on one shared cache: the interference matrix
    // must carry off-diagonal blame somewhere.
    auto cfg = base_cfg(sim::policy::camdn_full);
    obs::latency_attributor attr;
    cfg.obs.attr = &attr;
    sim::run_experiment(cfg);

    std::uint64_t off_diagonal = 0;
    const std::uint32_t n = static_cast<std::uint32_t>(attr.tenants().size());
    for (std::uint32_t i = 0; i < n; ++i)
        for (std::uint32_t j = 0; j < n; ++j)
            if (i != j) off_diagonal += attr.interference(i, j);
    EXPECT_GT(off_diagonal, 0u);

    // The totals roll up the same cycles the records carry.
    obs::attribution_components from_records;
    for (const auto& rec : attr.records()) from_records.accumulate(rec.comp);
    EXPECT_EQ(attr.totals().sum(), from_records.sum());
}

TEST(attribution, batched_dram_paths_keep_the_exact_decomposition) {
    // The DRAM model's batched burst paths aggregate their attribution
    // hooks by holder (one on_dram_wait per (victim, holder) run instead
    // of one per line). The identities must be indifferent to that
    // folding: a contended multi-tenant run whose traffic is dominated by
    // multi-line bursts still tiles every latency exactly and still sums
    // every interference row to the tenant's blameable stall.
    auto cfg = base_cfg(sim::policy::camdn_full);
    cfg.co_located = 6;
    cfg.inferences_per_slot = 4;
    obs::latency_attributor attr;
    cfg.obs.attr = &attr;
    sim::run_experiment(cfg);

    ASSERT_GT(attr.records().size(), 0u);
    for (const auto& rec : attr.records())
        EXPECT_EQ(rec.comp.sum(), rec.end - rec.arrival);
    for (std::uint32_t i = 0; i < attr.tenants().size(); ++i)
        EXPECT_EQ(attr.interference_row_sum(i),
                  attr.tenants()[i].comp.stall_sum());
    // The run must actually have exercised the aggregated hooks: enough
    // co-located tenants on one DRAM guarantees bank/bus blame.
    EXPECT_GT(attr.totals().dram_contention, 0u);
}

TEST(attribution, regulated_bursts_keep_the_exact_decomposition) {
    // MoCA-style bandwidth partitioning drives the regulation edge of the
    // batched dispatch: bursts that fit the epoch budget commit in bulk,
    // bursts that straddle it take the exact per-line walk with throttle
    // attribution. Both must preserve the identities.
    auto cfg = base_cfg(sim::policy::moca);
    check_exact_decomposition(cfg);
}

TEST(attribution, top_stall_component_names_the_largest) {
    obs::attribution_components c;
    EXPECT_STREQ(obs::top_stall_component(c), "none");
    c.dram_contention = 10;
    c.cache_penalty = 3;
    EXPECT_STREQ(obs::top_stall_component(c), "dram_contention");
    c.page_wait = 11;
    EXPECT_STREQ(obs::top_stall_component(c), "page_wait");
}

TEST(attribution, absorb_merges_by_tenant_name) {
    obs::latency_attributor a, b;
    a.on_dispatch(0, "RS.");
    a.on_inference_start(0, 0, 10);
    a.on_layer_retired(0, 100, 100);
    a.on_inference_end(0, 110);

    b.on_dispatch(0, "MB.");
    b.on_inference_start(0, 5, 5);
    b.on_layer_retired(0, 50, 40);
    b.on_dram_wait(0, no_task, 10);
    b.on_inference_end(0, 55);
    b.on_dispatch(1, "RS.");
    b.on_inference_start(1, 0, 0);
    b.on_layer_retired(1, 20, 20);
    b.on_inference_end(1, 20);

    a.absorb(b);
    ASSERT_EQ(a.tenant_names().size(), 2u);
    const auto& tens = a.tenants();
    // "RS." folded across both attributors.
    EXPECT_EQ(tens[0].completed, 2u);
    EXPECT_EQ(tens[0].latency_cycles, 110u + 20u);
    EXPECT_EQ(tens[1].completed, 1u);
    EXPECT_EQ(tens[1].comp.dram_contention, 10u);
    EXPECT_EQ(a.records().size(), 3u);
    for (std::uint32_t i = 0; i < 2; ++i)
        EXPECT_EQ(a.interference_row_sum(i), tens[i].comp.stall_sum());
}

TEST(attribution, fleet_tenant_rollup_keeps_the_latency_identity) {
    serve::soc_instance_config inst;
    inst.slots = 2;
    inst.admission_queue_limit = 8;
    serve::cluster_config cfg = serve::uniform_cluster(2, inst);
    cfg.models = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.arrival_rate_per_ms = 2.0;
    cfg.total_arrivals = 24;
    cfg.feedback_rounds = 2;
    cfg.attribution = true;
    const auto res = serve::run_cluster(cfg);

    std::uint64_t attributed = 0;
    for (const auto& [abbr, t] : res.tenants) {
        attributed += t.attribution_completed;
        EXPECT_EQ(t.attribution.sum(), t.attribution_latency_cycles)
            << "tenant " << abbr;
        // The interference row accounts for exactly the blameable stall.
        std::uint64_t row = 0;
        const auto it = res.interference.find(abbr);
        if (it != res.interference.end())
            for (const auto& [holder, cycles] : it->second) row += cycles;
        EXPECT_EQ(row, t.attribution.stall_sum()) << "tenant " << abbr;
    }
    // Warm-carry boundaries may leave a handful of inferences spanning a
    // round cut unattributed; everything that completed inside a round is.
    EXPECT_GT(attributed, 0u);
    EXPECT_LE(attributed, res.completed);

    // And attribution never perturbs the simulation.
    auto bare_cfg = cfg;
    bare_cfg.attribution = false;
    const auto bare = serve::run_cluster(bare_cfg);
    EXPECT_EQ(bare.completed, res.completed);
    EXPECT_EQ(bare.makespan, res.makespan);
    EXPECT_EQ(bare.events_executed, res.events_executed);
}

// ---- zero-overhead-off -------------------------------------------------

sim::experiment_config observed_cfg() {
    auto cfg = base_cfg(sim::policy::camdn_adaptive);
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.arrival_rate_per_ms = 0.8;
    cfg.total_arrivals = 8;
    cfg.admission_queue_limit = 8;
    return cfg;
}

TEST(attribution, attached_run_results_are_bit_identical) {
    const auto bare = sim::run_experiment(observed_cfg());

    obs::latency_attributor attr;
    auto cfg = observed_cfg();
    cfg.obs.attr = &attr;
    const auto attributed = sim::run_experiment(cfg);

    EXPECT_EQ(bare.makespan, attributed.makespan);
    EXPECT_EQ(bare.events_executed, attributed.events_executed);
    EXPECT_EQ(bare.dram_total_bytes, attributed.dram_total_bytes);
    ASSERT_EQ(bare.completions.size(), attributed.completions.size());
    for (std::size_t i = 0; i < bare.completions.size(); ++i) {
        EXPECT_EQ(bare.completions[i].end, attributed.completions[i].end);
        EXPECT_EQ(bare.completions[i].dram_bytes,
                  attributed.completions[i].dram_bytes);
    }
    EXPECT_EQ(attr.records().size(), bare.completions.size());
}

TEST(attribution, snapshot_bytes_are_bit_identical_with_attr_attached) {
    const auto cfg = observed_cfg();
    const cycle_t boundary = ms_to_cycles(2.0);

    auto gen_bare = runtime::make_workload_generator(cfg);
    runtime::scheduler bare(cfg, *gen_bare);
    ASSERT_TRUE(bare.run_segment(boundary));

    obs::latency_attributor attr;
    auto acfg = cfg;
    acfg.obs.attr = &attr;
    auto gen_attr = runtime::make_workload_generator(acfg);
    runtime::scheduler attributed(acfg, *gen_attr);
    ASSERT_TRUE(attributed.run_segment(boundary));

    EXPECT_EQ(bare.save().encode(), attributed.save().encode());
}

// ---- exporters ---------------------------------------------------------

TEST(attribution, metrics_export_carries_totals_and_matrix) {
    auto cfg = base_cfg(sim::policy::camdn_full);
    obs::latency_attributor attr;
    obs::metrics_registry metrics;
    cfg.obs.attr = &attr;
    cfg.obs.metrics = &metrics;
    const auto res = sim::run_experiment(cfg);

    EXPECT_EQ(metrics.counter("attr.total.compute_cycles"),
              attr.totals().compute);
    std::uint64_t completed = 0, latency = 0;
    for (const auto& name : attr.tenant_names()) {
        completed += metrics.counter("attr." + name + ".completed");
        latency += metrics.counter("attr." + name + ".latency_cycles");
    }
    EXPECT_EQ(completed, res.completions.size());
    EXPECT_EQ(latency, attr.totals().sum());

    const std::string row = attr.jsonl_row(3, 7);
    EXPECT_NE(row.find("\"type\":\"attribution\""), std::string::npos);
    EXPECT_NE(row.find("\"soc\":3"), std::string::npos);
    EXPECT_NE(row.find("\"compute\":"), std::string::npos);
}

}  // namespace
}  // namespace camdn

// Chunk-event coalescing invariance: an event-dispatched pump may absorb
// its flight's next wake inline (event_queue::try_inline) instead of
// round-tripping a chunk_done through the heap. The contract is that the
// scheduled path and the coalesced path are indistinguishable — same
// completion cycles, same executed-event and per-channel dispatch
// counters, same DRAM state — and that a snapshot taken with coalesced
// flights mid-air restores and resumes to the identical outcome.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "cache/shared_cache.h"
#include "common/event_queue.h"
#include "common/snapshot_io.h"
#include "dram/dram_system.h"
#include "npu/dma_engine.h"

namespace camdn::npu {
namespace {

struct rig {
    event_queue eq;
    dram::dram_system dram{dram::dram_config{}};
    cache::cache_config cfg{};
    cache::shared_cache cache{cfg, dram};
    dma_engine dma{eq, cache, /*chunk_lines=*/64, /*window=*/4};
    std::map<std::uint64_t, cycle_t> completions;  // target.a -> done

    rig() {
        dma.set_sink([this](const dma_target& t, cycle_t done) {
            completions[t.a] = done;
        });
    }

    void submit_mix() {
        // Several concurrent multi-chunk flights: window-gated wakes
        // interleave across flights, so some are coalescible (the wake is
        // the queue's next dispatch) and some are not.
        for (std::uint64_t f = 0; f < 4; ++f) {
            transfer_request req;
            req.op = transfer_request::kind::bypass_read;
            req.task = static_cast<task_id>(f);
            req.addr = f * mib(8);
            req.nlines = 700 + 511 * f;
            dma.submit_tracked(req, dma_target{f, 0});
        }
    }
};

TEST(dma_coalesce, inline_and_scheduled_paths_are_indistinguishable) {
    // run() with no event bound enables the inline horizon; a manual
    // step() loop keeps it at 0, forcing every wake through the heap.
    rig inlined;
    inlined.submit_mix();
    inlined.eq.run();

    rig scheduled;
    scheduled.submit_mix();
    while (scheduled.eq.step()) {
    }

    EXPECT_EQ(inlined.completions, scheduled.completions);
    EXPECT_EQ(inlined.eq.now(), scheduled.eq.now());
    // try_inline credits the executed/dispatch counters as if the event
    // had been scheduled, popped and dispatched — the counts must match
    // the all-heap run exactly, not merely the timings.
    EXPECT_EQ(inlined.eq.executed_events(), scheduled.eq.executed_events());
    EXPECT_EQ(inlined.eq.typed_dispatched(event_channel::dma),
              scheduled.eq.typed_dispatched(event_channel::dma));
    EXPECT_EQ(inlined.dram.stats().reads, scheduled.dram.stats().reads);
    EXPECT_EQ(inlined.dram.stats().bus_busy_deci,
              scheduled.dram.stats().bus_busy_deci);

    snapshot_writer wa, wb;
    inlined.dram.save_state(wa);
    scheduled.dram.save_state(wb);
    EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(dma_coalesce, mid_flight_snapshot_resumes_to_identical_outcome) {
    // Reference: the same submissions run to completion uninterrupted.
    rig ref;
    ref.submit_mix();
    ref.eq.run();

    // Paused run: drain part of the way (coalescing active), snapshot the
    // timing state and the in-flight DMA table, then resume in a fresh
    // process image.
    rig paused;
    paused.submit_mix();
    paused.eq.run(/*max_events=*/5);
    ASSERT_GT(paused.dma.live_flights(), 0u);

    snapshot_writer w;
    paused.dma.save_state(w);
    snapshot_writer wq;
    paused.eq.save_typed(wq);
    snapshot_writer wd;
    paused.dram.save_state(wd);

    rig resumed;
    resumed.eq.restore_now(paused.eq.now());
    {
        snapshot_reader r(wq.bytes());
        resumed.eq.restore_typed(r);
    }
    resumed.eq.restore_next_seq(paused.eq.next_seq());
    {
        snapshot_reader r(wd.bytes());
        resumed.dram.restore_state(r);
    }
    {
        snapshot_reader r(w.bytes());
        resumed.dma.restore_state(r);
    }
    // Byte roundtrip: re-serializing the restored mid-air flight table
    // reproduces the snapshot exactly.
    snapshot_writer w2;
    resumed.dma.save_state(w2);
    EXPECT_EQ(w.bytes(), w2.bytes());

    resumed.eq.run();

    // Completions before the pause came from the paused rig; everything
    // after from the resumed one. Together they must equal the
    // uninterrupted run, flight for flight, cycle for cycle.
    std::map<std::uint64_t, cycle_t> stitched = paused.completions;
    for (const auto& [id, done] : resumed.completions) stitched[id] = done;
    EXPECT_EQ(stitched, ref.completions);
    EXPECT_EQ(resumed.eq.now(), ref.eq.now());
}

}  // namespace
}  // namespace camdn::npu

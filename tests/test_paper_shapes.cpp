// Miniature versions of the paper's experiments asserting the acceptance
// criteria of DESIGN.md §4 — the qualitative shapes that the full benches
// regenerate at scale.
#include <gtest/gtest.h>

#include "model/model_zoo.h"
#include "model/reuse_analysis.h"
#include "runtime/qos.h"
#include "sim/experiment.h"

namespace camdn::sim {
namespace {

std::vector<const model::model*> mixed_workload() {
    return {&model::model_by_abbr("RS."), &model::model_by_abbr("MB."),
            &model::model_by_abbr("EF."), &model::model_by_abbr("GN.")};
}

experiment_config base_cfg(policy pol, std::uint32_t co_located) {
    experiment_config cfg;
    cfg.pol = pol;
    cfg.workload = mixed_workload();
    cfg.co_located = co_located;
    cfg.inferences_per_slot = 1;
    cfg.seed = 5;
    return cfg;
}

// ---- Fig 2 (motivation): contention degrades the transparent cache ----

TEST(fig2_shape, hit_rate_falls_with_colocation) {
    const auto solo = run_experiment(base_cfg(policy::shared_baseline, 1));
    const auto many = run_experiment(base_cfg(policy::shared_baseline, 8));
    EXPECT_LT(many.cache_hit_rate, solo.cache_hit_rate);
}

TEST(fig2_shape, memory_access_per_model_rises_with_colocation) {
    const auto solo = run_experiment(base_cfg(policy::shared_baseline, 1));
    const auto many = run_experiment(base_cfg(policy::shared_baseline, 8));
    EXPECT_GT(many.mem_mb_per_inference(), solo.mem_mb_per_inference() * 1.02);
}

TEST(fig2_shape, latency_rises_with_colocation) {
    const auto solo = run_experiment(base_cfg(policy::shared_baseline, 1));
    const auto many = run_experiment(base_cfg(policy::shared_baseline, 8));
    EXPECT_GT(many.avg_latency_ms(), solo.avg_latency_ms() * 1.3);
}

TEST(fig2_shape, bigger_cache_softens_contention) {
    auto small = base_cfg(policy::shared_baseline, 8);
    small.soc.cache.total_bytes = mib(4);
    auto large = base_cfg(policy::shared_baseline, 8);
    large.soc.cache.total_bytes = mib(64);
    const auto rs = run_experiment(small);
    const auto rl = run_experiment(large);
    EXPECT_GT(rl.cache_hit_rate, rs.cache_hit_rate);
    EXPECT_LE(rl.mem_mb_per_inference(), rs.mem_mb_per_inference());
}

// ---- Fig 3 (motivation): reuse structure of DNN data ----

TEST(fig3_shape, most_data_is_single_use_on_average) {
    double sum = 0.0;
    for (const auto& m : model::benchmark_models())
        sum += model::analyze_reuse(m).single_use_fraction();
    EXPECT_GT(sum / 8.0, 0.45);  // paper: 68% on average
}

TEST(fig3_shape, most_intermediates_have_long_reuse_distance) {
    double sum = 0.0;
    for (const auto& m : model::benchmark_models())
        sum += model::analyze_reuse(m).long_distance_fraction();
    EXPECT_GT(sum / 8.0, 0.45);  // paper: 61.8% beyond 1 MiB
}

// ---- Fig 7 (speedup): CaMDN(Full) > CaMDN(HW-only) ~ AuRORA ----

TEST(fig7_shape, camdn_full_beats_aurora_on_average) {
    const auto aurora = run_experiment(base_cfg(policy::aurora, 8));
    const auto full = run_experiment(base_cfg(policy::camdn_full, 8));
    EXPECT_LT(full.avg_latency_ms(), aurora.avg_latency_ms());
}

TEST(fig7_shape, camdn_full_beats_hw_only_on_average) {
    const auto hw = run_experiment(base_cfg(policy::camdn_hw_only, 8));
    const auto full = run_experiment(base_cfg(policy::camdn_full, 8));
    EXPECT_LE(full.avg_latency_ms(), hw.avg_latency_ms() * 1.05);
}

TEST(fig7_shape, intermediate_heavy_models_gain_most_memory_reduction) {
    auto cfg_a = base_cfg(policy::aurora, 8);
    auto cfg_f = base_cfg(policy::camdn_full, 8);
    // Restrict the draw to the two compared models so both appear.
    cfg_a.workload = cfg_f.workload = {&model::model_by_abbr("MB."),
                                       &model::model_by_abbr("VT.")};
    cfg_a.inferences_per_slot = cfg_f.inferences_per_slot = 2;
    const auto aurora = run_experiment(cfg_a);
    const auto full = run_experiment(cfg_f);
    const double mb_reduction =
        1.0 - full.mem_mb_per_inference("MB.") / aurora.mem_mb_per_inference("MB.");
    const double vt_reduction =
        1.0 - full.mem_mb_per_inference("VT.") / aurora.mem_mb_per_inference("VT.");
    EXPECT_GT(mb_reduction, vt_reduction);
    EXPECT_GT(mb_reduction, 0.2);
}

// ---- Fig 8 (scaling): reductions persist across scales ----

TEST(fig8_shape, camdn_reduces_latency_at_multiple_scales) {
    for (std::uint32_t n : {4u, 8u}) {
        const auto aurora = run_experiment(base_cfg(policy::aurora, n));
        const auto full = run_experiment(base_cfg(policy::camdn_full, n));
        EXPECT_LT(full.avg_latency_ms(), aurora.avg_latency_ms())
            << n << " co-located";
    }
}

TEST(fig8_shape, camdn_benefit_grows_with_cache_size) {
    auto small_a = base_cfg(policy::aurora, 8);
    auto small_f = base_cfg(policy::camdn_full, 8);
    small_a.soc.cache.total_bytes = small_f.soc.cache.total_bytes = mib(4);
    auto large_a = base_cfg(policy::aurora, 8);
    auto large_f = base_cfg(policy::camdn_full, 8);
    large_a.soc.cache.total_bytes = large_f.soc.cache.total_bytes = mib(32);

    const double small_gain = run_experiment(small_a).avg_latency_ms() /
                              run_experiment(small_f).avg_latency_ms();
    const double large_gain = run_experiment(large_a).avg_latency_ms() /
                              run_experiment(large_f).avg_latency_ms();
    // The benefit persists across the sweep (EXPERIMENTS.md records where
    // this reproduction's trend deviates in magnitude from the paper's).
    EXPECT_GT(small_gain, 1.15);
    EXPECT_GT(large_gain, 1.15);
}

// ---- Fig 9 (QoS): CaMDN improves SLA at equal allocators ----

TEST(fig9_shape, camdn_improves_sla_and_stp) {
    soc_config soc;
    const auto iso = isolated_latencies(soc, mixed_workload());

    auto run_qos = [&](policy pol) {
        auto cfg = base_cfg(pol, 8);
        cfg.qos_mode = true;
        cfg.qos_scale = 1.0;
        cfg.inferences_per_slot = 2;
        const auto res = run_experiment(cfg);
        std::vector<runtime::qos_record> records;
        for (const auto& rec : res.completions) {
            runtime::qos_record q;
            q.model_abbr = rec.abbr;
            q.latency = rec.latency();
            q.deadline_rel =
                ms_to_cycles(model::model_by_abbr(rec.abbr).qos_ms);
            q.isolated = iso.at(rec.abbr);
            records.push_back(q);
        }
        return runtime::compute_qos(records, cfg.co_located);
    };

    const auto aurora = run_qos(policy::aurora);
    const auto camdn = run_qos(policy::camdn_full);
    EXPECT_GE(camdn.sla_rate, aurora.sla_rate);
    EXPECT_GT(camdn.stp, aurora.stp * 0.95);
}

}  // namespace
}  // namespace camdn::sim

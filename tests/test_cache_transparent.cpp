// Unit tests for the transparent (set-associative LRU) path of the sliced
// shared cache, including way masking and contention bookkeeping.
#include <gtest/gtest.h>

#include "cache/shared_cache.h"
#include "dram/dram_system.h"

namespace camdn::cache {
namespace {

struct rig {
    dram::dram_system dram{dram::dram_config{}};
    cache_config cfg{};
    shared_cache cache{cfg, dram};
};

/// Address of the n-th line mapping to (slice 0, set 0).
addr_t set0_line(const cache_config& cfg, std::uint32_t n) {
    return static_cast<addr_t>(n) *
           (static_cast<addr_t>(cfg.slices) * cfg.sets_per_slice()) * line_bytes;
}

TEST(transparent, miss_then_hit) {
    rig r;
    const auto miss = r.cache.transparent_access(0, false, 0, 0);
    EXPECT_FALSE(miss.hit);
    const auto hit = r.cache.transparent_access(0, false, miss.done, 0);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(r.cache.stats().hits, 1u);
    EXPECT_EQ(r.cache.stats().misses, 1u);
}

TEST(transparent, hit_latency_below_miss_latency) {
    rig r;
    const auto miss = r.cache.transparent_access(0, false, 0, 0);
    const auto hit = r.cache.transparent_access(0, false, miss.done, 0);
    EXPECT_LT(hit.done - miss.done, miss.done);
}

TEST(transparent, lru_evicts_oldest_way) {
    rig r;
    const std::uint32_t ways = r.cfg.ways;
    // Fill one set completely, then touch line 0 again to refresh it.
    for (std::uint32_t i = 0; i < ways; ++i)
        r.cache.transparent_access(set0_line(r.cfg, i), false, 0, 0);
    r.cache.transparent_access(set0_line(r.cfg, 0), false, 0, 0);
    // Insert one more: the victim must be line 1 (LRU), not line 0.
    r.cache.transparent_access(set0_line(r.cfg, ways), false, 0, 0);
    EXPECT_TRUE(r.cache.transparent_access(set0_line(r.cfg, 0), false, 0, 0).hit);
    EXPECT_FALSE(r.cache.transparent_access(set0_line(r.cfg, 1), false, 0, 0).hit);
}

TEST(transparent, way_mask_restricts_associativity) {
    rig r;
    r.cache.set_transparent_ways(4);
    for (std::uint32_t i = 0; i < 4; ++i)
        r.cache.transparent_access(set0_line(r.cfg, i), false, 0, 0);
    // A fifth distinct line must evict within the 4 allowed ways.
    r.cache.transparent_access(set0_line(r.cfg, 4), false, 0, 0);
    EXPECT_EQ(r.cache.stats().evictions, 1u);
    // The first line (LRU among the four) is gone.
    EXPECT_FALSE(r.cache.transparent_access(set0_line(r.cfg, 0), false, 0, 0).hit);
}

TEST(transparent, write_miss_does_not_fetch_from_dram) {
    rig r;
    r.cache.transparent_access(0, true, 0, 0);
    EXPECT_EQ(r.dram.stats().reads, 0u);  // write-validate, full-line DMA
    EXPECT_EQ(r.cache.stats().misses, 1u);
}

TEST(transparent, dirty_eviction_writes_back) {
    rig r;
    const std::uint32_t ways = r.cfg.ways;
    r.cache.transparent_access(set0_line(r.cfg, 0), true, 0, 0);  // dirty
    for (std::uint32_t i = 1; i <= ways; ++i)
        r.cache.transparent_access(set0_line(r.cfg, i), false, 0, 0);
    EXPECT_EQ(r.cache.stats().writebacks, 1u);
    EXPECT_EQ(r.dram.stats().writes, 1u);
}

TEST(transparent, clean_eviction_is_silent) {
    rig r;
    const std::uint32_t ways = r.cfg.ways;
    for (std::uint32_t i = 0; i <= ways; ++i)
        r.cache.transparent_access(set0_line(r.cfg, i), false, 0, 0);
    EXPECT_EQ(r.cache.stats().evictions, 1u);
    EXPECT_EQ(r.cache.stats().writebacks, 0u);
    EXPECT_EQ(r.dram.stats().writes, 0u);
}

TEST(transparent, inter_task_eviction_counted) {
    rig r;
    const std::uint32_t ways = r.cfg.ways;
    for (std::uint32_t i = 0; i < ways; ++i)
        r.cache.transparent_access(set0_line(r.cfg, i), false, 0, /*task=*/1);
    r.cache.transparent_access(set0_line(r.cfg, ways), false, 0, /*task=*/2);
    EXPECT_EQ(r.cache.stats().inter_task_evictions, 1u);
}

TEST(transparent, per_task_hit_miss_counters) {
    rig r;
    r.cache.transparent_access(0, false, 0, 3);
    r.cache.transparent_access(0, false, 0, 3);
    r.cache.transparent_access(line_bytes, false, 0, 5);
    EXPECT_EQ(r.cache.task_hits(3), 1u);
    EXPECT_EQ(r.cache.task_misses(3), 1u);
    EXPECT_EQ(r.cache.task_misses(5), 1u);
    EXPECT_EQ(r.cache.task_hits(5), 0u);
    EXPECT_EQ(r.cache.task_hits(99), 0u);
}

TEST(transparent, burst_completion_covers_all_lines) {
    rig r;
    const cycle_t done = r.cache.transparent_burst(0, 256, false, 0, 0);
    EXPECT_EQ(r.cache.stats().misses, 256u);
    EXPECT_GT(done, 0u);
    // Re-reading the same burst is all hits and faster.
    const cycle_t again = r.cache.transparent_burst(0, 256, false, done, 0);
    EXPECT_EQ(r.cache.stats().hits, 256u);
    EXPECT_LT(again - done, done);
}

TEST(transparent, invalidate_all_drops_contents) {
    rig r;
    r.cache.transparent_burst(0, 64, false, 0, 0);
    r.cache.invalidate_all();
    const auto res = r.cache.transparent_access(0, false, 0, 0);
    EXPECT_FALSE(res.hit);
}

TEST(transparent, reset_stats_clears_counters) {
    rig r;
    r.cache.transparent_burst(0, 16, false, 0, 2);
    r.cache.reset_stats();
    EXPECT_EQ(r.cache.stats().misses, 0u);
    EXPECT_EQ(r.cache.task_misses(2), 0u);
}

TEST(transparent, hit_rate_definition) {
    rig r;
    r.cache.transparent_access(0, false, 0, 0);
    r.cache.transparent_access(0, false, 0, 0);
    r.cache.transparent_access(0, false, 0, 0);
    EXPECT_NEAR(r.cache.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(transparent, slices_serve_in_parallel) {
    rig r;
    // 8 lines striped over 8 slices at the same arrival finish much sooner
    // than 8 lines hammering one slice.
    rig r2;
    cycle_t striped = 0;
    for (std::uint32_t i = 0; i < 8; ++i)
        striped = std::max(
            striped, r.cache.transparent_access(i * line_bytes, true, 0, 0).done);
    cycle_t same_slice = 0;
    for (std::uint32_t i = 0; i < 8; ++i)
        same_slice = std::max(
            same_slice,
            r2.cache.transparent_access(set0_line(r2.cfg, i), true, 0, 0).done);
    EXPECT_LT(striped, same_slice);
}

// Capacity sweep: larger caches keep a working set resident longer.
class capacity_sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(capacity_sweep, working_set_within_capacity_hits) {
    dram::dram_system dram{dram::dram_config{}};
    cache_config cfg;
    cfg.total_bytes = GetParam();
    shared_cache cache(cfg, dram);
    const std::uint64_t lines = cfg.total_bytes / line_bytes / 2;  // half cap
    cache.transparent_burst(0, lines, false, 0, 0);
    cache.reset_stats();
    cache.transparent_burst(0, lines, false, 0, 0);
    EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(sizes, capacity_sweep,
                         ::testing::Values(mib(4), mib(8), mib(16), mib(32)));

}  // namespace
}  // namespace camdn::cache

// Tests of the serving-cluster subsystem: placement planning against cache
// capacity, routing policies, fleet metric aggregation, determinism of the
// whole cluster simulation (across repeated runs and sweep-pool widths),
// and the headline behavior — cache-affinity routing beating round robin
// on fleet tail latency in a multi-model colocation scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "model/model_zoo.h"
#include "runtime/workload.h"
#include "serve/cluster.h"
#include "serve/placement.h"
#include "serve/router.h"
#include "serve/stream_source.h"
#include "sim/mapping_registry.h"

namespace camdn::serve {
namespace {

/// 4 homogeneous CaMDN(Full) SoCs serving RS. + MB. at a load where
/// queueing matters (the acceptance scenario of this subsystem).
cluster_config colocation_cfg() {
    soc_instance_config inst;
    inst.pol = sim::policy::camdn_full;
    inst.slots = 2;
    inst.admission_queue_limit = runtime::unbounded_queue;
    auto cfg = uniform_cluster(4, inst);
    cfg.models = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.arrival_rate_per_ms = 6.0;
    cfg.total_arrivals = 96;
    cfg.seed = 7;
    return cfg;
}

void expect_identical(const cluster_result& a, const cluster_result& b) {
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped_queue, b.dropped_queue);
    EXPECT_EQ(a.dropped_unroutable, b.dropped_unroutable);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.resident_models, b.resident_models);
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p50(), b.fleet_latency_ms.p50());
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p99(), b.fleet_latency_ms.p99());
    ASSERT_EQ(a.per_soc.size(), b.per_soc.size());
    for (std::size_t s = 0; s < a.per_soc.size(); ++s) {
        const auto& ra = a.per_soc[s];
        const auto& rb = b.per_soc[s];
        EXPECT_EQ(ra.makespan, rb.makespan);
        EXPECT_EQ(ra.dram_total_bytes, rb.dram_total_bytes);
        EXPECT_EQ(ra.rejected_arrivals, rb.rejected_arrivals);
        ASSERT_EQ(ra.completions.size(), rb.completions.size());
        for (std::size_t i = 0; i < ra.completions.size(); ++i) {
            EXPECT_EQ(ra.completions[i].abbr, rb.completions[i].abbr);
            EXPECT_EQ(ra.completions[i].arrival, rb.completions[i].arrival);
            EXPECT_EQ(ra.completions[i].start, rb.completions[i].start);
            EXPECT_EQ(ra.completions[i].end, rb.completions[i].end);
            EXPECT_EQ(ra.completions[i].dram_bytes, rb.completions[i].dram_bytes);
        }
    }
}

// ---- placement ----

TEST(placement, every_model_is_hosted_somewhere) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    ASSERT_EQ(place.hosts.size(), cfg.models.size());
    for (const auto& hosts : place.hosts) EXPECT_FALSE(hosts.empty());
}

TEST(placement, respects_cache_capacity_when_feasible) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    EXPECT_FALSE(place.oversubscribed);
    for (std::size_t s = 0; s < cfg.socs.size(); ++s) {
        std::uint64_t used = 0;
        for (auto m : place.resident[s]) used += place.footprint_pages[s][m];
        EXPECT_LE(used, place.capacity_pages[s]) << "SoC " << s;
    }
}

TEST(placement, honors_replication_limit) {
    auto cfg = colocation_cfg();
    cfg.replication_limit = 2;
    const auto place = plan_placement(cfg);
    for (const auto& hosts : place.hosts) {
        EXPECT_GE(hosts.size(), 1u);
        EXPECT_LE(hosts.size(), 2u);
    }
}

TEST(placement, replicates_up_to_capacity_without_a_limit) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    // Two small models on four 16MB SoCs: everything fits everywhere.
    for (const auto& hosts : place.hosts) EXPECT_EQ(hosts.size(), 4u);
}

TEST(placement, smaller_cache_means_fewer_pages) {
    auto cfg = colocation_cfg();
    cfg.socs[2].soc.cache.total_bytes = mib(8);
    const auto place = plan_placement(cfg);
    EXPECT_LT(place.capacity_pages[2], place.capacity_pages[0]);
}

TEST(placement, footprints_and_reuse_are_populated) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    for (std::size_t s = 0; s < cfg.socs.size(); ++s)
        for (std::size_t m = 0; m < cfg.models.size(); ++m) {
            EXPECT_GE(place.footprint_pages[s][m], 1u);
            EXPECT_GE(place.reused_fraction[s][m], 0.0);
            EXPECT_LE(place.reused_fraction[s][m], 1.0);
        }
}

// ---- router ----

TEST(router, round_robin_cycles_through_the_replica_set) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::round_robin;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    std::vector<std::uint64_t> hits(cfg.socs.size(), 0);
    for (int i = 0; i < 8; ++i) {
        const auto s = router.route(static_cast<cycle_t>(i) * 1000, 0);
        ASSERT_GE(s, 0);
        hits[static_cast<std::size_t>(s)] += 1;
    }
    for (auto h : hits) EXPECT_EQ(h, 2u);  // 8 arrivals over 4 hosts
}

TEST(router, least_outstanding_avoids_the_busy_soc) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::least_outstanding;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    // Saturate SoC picked first, then expect the next picks to spread.
    const auto first = router.route(0, 0);
    const auto second = router.route(0, 0);
    const auto third = router.route(0, 0);
    EXPECT_NE(first, second);
    EXPECT_NE(second, third);
    EXPECT_NE(first, third);
}

TEST(router, cache_affinity_sticks_to_the_warm_host_under_light_load) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::cache_affinity;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    const auto first = router.route(0, 0);
    ASSERT_GE(first, 0);
    // Far apart in time (no backlog): the model stays on its warm host.
    const auto second = router.route(ms_to_cycles(50.0), 0);
    const auto third = router.route(ms_to_cycles(100.0), 0);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, third);
    EXPECT_TRUE(router.warm(static_cast<std::uint32_t>(first), 0));
}

TEST(router, cache_affinity_separates_models_across_socs) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::cache_affinity;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    const auto home0 = router.route(0, 0);
    const auto home1 = router.route(1, 1);
    EXPECT_NE(home0, home1);  // second model steers clear of the busy host
}

TEST(router, mapping_snapshot_covers_every_placed_pair) {
    auto cfg = colocation_cfg();
    plan_placement(cfg);  // warms the registry
    const auto snap = sim::snapshot_mappings();
    for (const auto& inst : cfg.socs)
        for (const auto* m : cfg.models)
            EXPECT_NE(snap.find(*m, inst.soc.mapper()), nullptr);
}

// ---- cluster simulation ----

TEST(cluster, conserves_every_arrival) {
    auto cfg = colocation_cfg();
    cfg.socs[0].admission_queue_limit = 1;  // force some queue drops
    cfg.socs[1].admission_queue_limit = 1;
    const auto res = run_cluster(cfg);
    EXPECT_EQ(res.arrivals, cfg.total_arrivals);
    EXPECT_EQ(res.arrivals, res.completed + res.dropped_queue +
                                res.dropped_unroutable);
    std::uint64_t tenant_routed = 0, tenant_completed = 0;
    for (const auto& [abbr, tenant] : res.tenants) {
        tenant_routed += tenant.routed;
        tenant_completed += tenant.completed;
        EXPECT_EQ(tenant.dropped, tenant.routed - tenant.completed);
    }
    EXPECT_EQ(tenant_routed, res.arrivals - res.dropped_unroutable);
    EXPECT_EQ(tenant_completed, res.completed);
}

TEST(cluster, fleet_percentiles_cover_every_completion) {
    const auto res = run_cluster(colocation_cfg());
    EXPECT_EQ(res.fleet_latency_ms.count(), res.completed);
    EXPECT_GT(res.fleet_latency_ms.p99(), 0.0);
    EXPECT_GE(res.fleet_latency_ms.p99(), res.fleet_latency_ms.p50());
    EXPECT_GT(res.throughput_per_s(), 0.0);
}

TEST(cluster, zero_capacity_admission_queues_drop_everything) {
    auto cfg = colocation_cfg();
    for (auto& inst : cfg.socs) inst.admission_queue_limit = 0;
    const auto res = run_cluster(cfg);
    EXPECT_EQ(res.completed, 0u);
    EXPECT_EQ(res.dropped_queue, cfg.total_arrivals);
    EXPECT_DOUBLE_EQ(res.drop_rate(), 1.0);
}

TEST(cluster, empty_fleet_throws) {
    EXPECT_THROW(run_cluster(cluster_config{}), std::invalid_argument);
}

TEST(cluster, heterogeneous_fleet_serves_with_skewed_mix) {
    auto cfg = colocation_cfg();
    cfg.socs[2].soc.cache.total_bytes = mib(8);
    cfg.socs[3].soc.cache.total_bytes = mib(8);
    cfg.traffic_share = {3.0, 1.0};
    cfg.total_arrivals = 48;
    const auto res = run_cluster(cfg);
    EXPECT_EQ(res.completed, 48u);
    // The skew must show up in per-tenant routing (~75% / ~25%).
    EXPECT_GT(res.tenants.at("RS.").routed, res.tenants.at("MB.").routed);
}

TEST(cluster, partial_traffic_share_defaults_missing_models_to_one) {
    auto cfg = colocation_cfg();
    cfg.traffic_share = {2.0};  // MB. unspecified -> weight 1 (2:1 mix)
    const auto w = traffic_weights(cfg);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w[0], 2.0);
    EXPECT_DOUBLE_EQ(w[1], 1.0);
    cfg.total_arrivals = 48;
    const auto res = run_cluster(cfg);
    EXPECT_GT(res.tenants.at("MB.").routed, 0u);  // not starved
    EXPECT_GT(res.tenants.at("RS.").routed, res.tenants.at("MB.").routed);
}

TEST(cluster, all_zero_traffic_mix_throws) {
    auto cfg = colocation_cfg();
    cfg.traffic_share = {0.0, 0.0};
    EXPECT_THROW(run_cluster(cfg), std::invalid_argument);
    EXPECT_THROW(plan_placement(cfg), std::invalid_argument);
}

TEST(cluster, bit_identical_across_repeated_runs) {
    const auto cfg = colocation_cfg();
    expect_identical(run_cluster(cfg), run_cluster(cfg));
}

TEST(cluster, bit_identical_across_sweep_pool_widths) {
    auto cfg = colocation_cfg();
    cfg.threads = 1;
    const auto sequential = run_cluster(cfg);
    cfg.threads = 4;
    const auto parallel = run_cluster(cfg);
    expect_identical(sequential, parallel);
}

TEST(cluster, seed_changes_the_stream) {
    auto cfg = colocation_cfg();
    const auto a = run_cluster(cfg);
    cfg.seed = 1234;
    const auto b = run_cluster(cfg);
    EXPECT_NE(a.makespan, b.makespan);
}

// ---- the headline: affinity routing beats round robin on tail latency ----

TEST(cluster, cache_affinity_beats_round_robin_on_fleet_p99) {
    // >= 2 models colocated on >= 4 SoCs at a fixed seed, loaded enough
    // that routing quality shows up as queueing. Round robin is load- and
    // cache-blind; affinity keeps each model on a stable warm subset.
    auto cfg = colocation_cfg();
    cfg.router = route_policy::round_robin;
    const auto rr = run_cluster(cfg);
    cfg.router = route_policy::cache_affinity;
    const auto aff = run_cluster(cfg);

    ASSERT_EQ(rr.completed, cfg.total_arrivals);
    ASSERT_EQ(aff.completed, cfg.total_arrivals);
    EXPECT_LT(aff.fleet_latency_ms.p99(), rr.fleet_latency_ms.p99());
    EXPECT_LT(aff.fleet_latency_ms.p95(), rr.fleet_latency_ms.p95());
}

// ---- stream_source ----

/// Normalized cumulative mix, the way run_cluster builds it.
std::vector<double> cum_mix(const cluster_config& cfg) {
    const auto w = traffic_weights(cfg);
    std::vector<double> cum(w.size(), 0.0);
    double total = 0.0;
    for (std::size_t m = 0; m < w.size(); ++m) {
        total += w[m];
        cum[m] = total;
    }
    for (auto& c : cum) c /= total;
    return cum;
}

TEST(stream_source, matches_legacy_poisson_rng_sequence) {
    auto cfg = colocation_cfg();
    cfg.total_arrivals = 300;
    const auto cum = cum_mix(cfg);

    // The retired eager builder, hand-rolled: one exponential gap draw
    // plus one model draw per arrival, from rng(cfg.seed).
    rng r(cfg.seed);
    const double base = std::max(cfg.arrival_rate_per_ms, 1e-9);
    stream_source src(cfg, cum);
    cycle_t t = 0;
    for (std::uint32_t i = 0; i < cfg.total_arrivals; ++i) {
        const double gap_ms = -std::log(1.0 - r.next_double()) / base;
        t += std::max<cycle_t>(1, ms_to_cycles(gap_ms));
        const double pick = r.next_double();
        std::size_t m = 0;
        while (m + 1 < cum.size() && pick >= cum[m]) ++m;

        const auto a = src.pop();
        ASSERT_EQ(a.at, t) << "arrival " << i;
        ASSERT_EQ(a.model, m) << "arrival " << i;
    }
    EXPECT_TRUE(src.exhausted());
}

TEST(stream_source, matches_legacy_mmpp_rng_sequence) {
    auto cfg = colocation_cfg();
    cfg.total_arrivals = 300;
    cfg.process = arrival_process::mmpp;
    const auto cum = cum_mix(cfg);

    rng r(cfg.seed);
    const double base = std::max(cfg.arrival_rate_per_ms, 1e-9);
    stream_source src(cfg, cum);
    runtime::mmpp_clock clock(base, cfg.mmpp_rate_scale, cfg.mmpp_sojourn_ms,
                              r);
    cycle_t t = 0;
    for (std::uint32_t i = 0; i < cfg.total_arrivals; ++i) {
        t = std::max<cycle_t>(t + 1, ms_to_cycles(clock.next_arrival_ms()));
        const double pick = r.next_double();
        std::size_t m = 0;
        while (m + 1 < cum.size() && pick >= cum[m]) ++m;

        const auto a = src.pop();
        ASSERT_EQ(a.at, t) << "arrival " << i;
        ASSERT_EQ(a.model, m) << "arrival " << i;
    }
    EXPECT_TRUE(src.exhausted());
}

TEST(stream_source, pull_interface_peeks_counts_and_exhausts) {
    auto cfg = colocation_cfg();
    cfg.total_arrivals = 5;
    stream_source src(cfg, cum_mix(cfg));

    EXPECT_EQ(src.total(), 5u);
    EXPECT_EQ(src.consumed(), 0u);
    const auto* first = src.peek();
    ASSERT_NE(first, nullptr);
    const cycle_t at0 = first->at;
    EXPECT_EQ(src.consumed(), 0u);  // peek never consumes
    EXPECT_EQ(src.pop().at, at0);
    EXPECT_EQ(src.consumed(), 1u);

    while (!src.exhausted()) src.pop();
    EXPECT_EQ(src.consumed(), 5u);
    EXPECT_EQ(src.peek(), nullptr);
    EXPECT_THROW(src.pop(), std::logic_error);
}

// ---- time-sliced window overflow ----

TEST(cluster, time_sliced_window_survives_near_overflow_round_cycles) {
    // Hours-of-stream-time configs used to compute the window bound as
    // round_cycles * (round + 1) in plain uint64, which wraps: a
    // round_cycles near 2^63 collapsed later windows (and the pause
    // stamps) to tiny values. Saturating arithmetic clamps them to
    // `never` instead, so the run degenerates gracefully into "all
    // arrivals in round 0" and still conserves every request.
    auto cfg = colocation_cfg();
    cfg.feedback_rounds = 3;
    cfg.round_cycles = never / 2 + 1;  // 2 * round_cycles would wrap
    const auto res = run_cluster(cfg);

    EXPECT_EQ(res.arrivals, cfg.total_arrivals);
    EXPECT_EQ(res.arrivals,
              res.completed + res.dropped_queue + res.dropped_unroutable);
    EXPECT_GT(res.completed, 0u);
}

// ---- elastic autoscaling ----

TEST(cluster, autoscaling_requires_time_sliced_rounds) {
    auto cfg = colocation_cfg();
    cfg.autoscale.enabled = true;
    EXPECT_THROW(run_cluster(cfg), std::invalid_argument);
    cfg.feedback_rounds = 4;  // drain-sliced is still not enough
    EXPECT_THROW(run_cluster(cfg), std::invalid_argument);
}

TEST(cluster, autoscaler_adds_socs_under_sla_pressure) {
    // One overloaded SoC with a tight admission bound: the round SLA
    // collapses (mass drops), so every barrier up to max_socs adds a SoC.
    auto cfg = colocation_cfg();
    cfg.socs.resize(1);
    cfg.socs[0].admission_queue_limit = 4;
    cfg.arrival_rate_per_ms = 40.0;
    cfg.total_arrivals = 200;
    cfg.feedback_rounds = 4;
    cfg.round_cycles = ms_to_cycles(1.5);
    cfg.autoscale.enabled = true;
    cfg.autoscale.max_socs = 3;
    cfg.autoscale.cooldown_rounds = 0;
    const auto res = run_cluster(cfg);

    std::uint32_t adds = 0, peak_active = 1;
    for (const auto& ev : res.scale_events) {
        if (ev.kind == scale_event_kind::add) {
            ++adds;
            EXPECT_LT(ev.sla, cfg.autoscale.sla_low);
        }
        peak_active = std::max(peak_active, ev.active_after);
    }
    EXPECT_GT(adds, 0u);
    EXPECT_GT(peak_active, 1u);
    EXPECT_LE(peak_active, cfg.autoscale.max_socs);
    // Added SoCs get fresh stable ids past the initial fleet.
    EXPECT_EQ(res.scale_events.front().kind, scale_event_kind::add);
    EXPECT_EQ(res.scale_events.front().soc_id, 1u);
    // Conservation holds across fleet-shape changes.
    EXPECT_EQ(res.arrivals, cfg.total_arrivals);
    EXPECT_EQ(res.arrivals,
              res.completed + res.dropped_queue + res.dropped_unroutable);
}

TEST(cluster, autoscaler_drains_migrates_queued_work_and_retires) {
    // Unbounded queues keep real backlog at the first barrier; a huge
    // backlog_low forces a drain there, so the drained SoC's queued
    // requests must migrate to the survivor and still complete. sla_low=0
    // keeps the scale-up path quiet (adds also need backlog_high).
    auto cfg = colocation_cfg();
    cfg.socs.resize(2);
    // A single slow tenant loads both replicas evenly, so whichever SoC
    // the drain picks still holds queued work at the barrier.
    cfg.models = {&model::model_by_abbr("RS.")};
    cfg.arrival_rate_per_ms = 12.0;
    cfg.total_arrivals = 48;
    cfg.feedback_rounds = 5;
    cfg.round_cycles = ms_to_cycles(1.0);
    cfg.autoscale.enabled = true;
    cfg.autoscale.min_socs = 1;
    cfg.autoscale.max_socs = 2;
    cfg.autoscale.backlog_high = 1e18;
    cfg.autoscale.backlog_low = 1e18;  // always "idle": drain immediately
    cfg.autoscale.sla_low = 0.0;
    cfg.autoscale.cooldown_rounds = 0;
    const auto res = run_cluster(cfg);

    const scale_event* drain = nullptr;
    bool retired = false;
    for (const auto& ev : res.scale_events) {
        if (ev.kind == scale_event_kind::drain && !drain) drain = &ev;
        if (ev.kind == scale_event_kind::retire) retired = true;
        EXPECT_GE(ev.active_after, cfg.autoscale.min_socs);
    }
    ASSERT_NE(drain, nullptr);
    EXPECT_GT(drain->migrated, 0u);
    EXPECT_EQ(res.migrated_requests, drain->migrated);
    EXPECT_TRUE(retired);

    // The migrated work is accounted, not lost: every arrival either
    // completed or was dropped, and with unbounded queues nothing drops.
    EXPECT_EQ(res.arrivals, cfg.total_arrivals);
    EXPECT_EQ(res.dropped_queue, 0u);
    EXPECT_EQ(res.dropped_unroutable, 0u);
    EXPECT_EQ(res.completed, cfg.total_arrivals);
}

TEST(cluster, fixed_fleet_results_unchanged_by_autoscale_plumbing) {
    // The elastic fleet machinery must be invisible when disabled: a
    // time-sliced feedback run with autoscaling off produces no scale
    // events and the historical round-major per_soc layout.
    auto cfg = colocation_cfg();
    cfg.feedback_rounds = 3;
    cfg.round_cycles = ms_to_cycles(2.0);
    const auto res = run_cluster(cfg);
    EXPECT_TRUE(res.scale_events.empty());
    EXPECT_EQ(res.migrated_requests, 0u);
    EXPECT_EQ(res.per_soc.size(), cfg.socs.size() * cfg.feedback_rounds);
}

// ---- bounded history ----

TEST(cluster, bounded_history_matches_streaming_aggregates) {
    // Bounded history only changes what is *retained*: the fold at each
    // round barrier replays the exact end-of-run sample order, so every
    // aggregate matches a streaming-quantile run that kept everything.
    auto cfg = colocation_cfg();
    cfg.feedback_rounds = 3;
    cfg.round_cycles = ms_to_cycles(2.0);
    cfg.streaming_quantiles = true;
    const auto full = run_cluster(cfg);

    cfg.bounded_history = true;
    cfg.history_records = 16;
    const auto bounded = run_cluster(cfg);

    EXPECT_EQ(bounded.arrivals, full.arrivals);
    EXPECT_EQ(bounded.completed, full.completed);
    EXPECT_EQ(bounded.dropped_queue, full.dropped_queue);
    EXPECT_EQ(bounded.events_executed, full.events_executed);
    EXPECT_EQ(bounded.makespan, full.makespan);
    EXPECT_EQ(bounded.deadline_met, full.deadline_met);
    EXPECT_DOUBLE_EQ(bounded.fleet_latency_ms.p50(),
                     full.fleet_latency_ms.p50());
    EXPECT_DOUBLE_EQ(bounded.fleet_latency_ms.p99(),
                     full.fleet_latency_ms.p99());
    EXPECT_DOUBLE_EQ(bounded.fleet_queue_delay_ms.p95(),
                     full.fleet_queue_delay_ms.p95());

    // The memory contract: no per-SoC results, compact rollups instead,
    // and the completion ring is bounded by history_records.
    EXPECT_TRUE(bounded.per_soc.empty());
    EXPECT_EQ(bounded.round_summaries.size(),
              cfg.socs.size() * cfg.feedback_rounds);
    std::uint64_t rolled = 0;
    for (const auto& rs : bounded.round_summaries) rolled += rs.completions;
    EXPECT_EQ(rolled, bounded.completed);
    EXPECT_LE(bounded.recent_completions.size(), cfg.history_records);

    // bounded_history implies the streaming backend even if the caller
    // forgot to ask for it.
    cluster_config lazy = colocation_cfg();
    lazy.bounded_history = true;
    const auto implied = run_cluster(lazy);
    EXPECT_TRUE(implied.fleet_latency_ms.streaming());
}

}  // namespace
}  // namespace camdn::serve

// Tests of the serving-cluster subsystem: placement planning against cache
// capacity, routing policies, fleet metric aggregation, determinism of the
// whole cluster simulation (across repeated runs and sweep-pool widths),
// and the headline behavior — cache-affinity routing beating round robin
// on fleet tail latency in a multi-model colocation scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "model/model_zoo.h"
#include "serve/cluster.h"
#include "serve/placement.h"
#include "serve/router.h"
#include "sim/mapping_registry.h"

namespace camdn::serve {
namespace {

/// 4 homogeneous CaMDN(Full) SoCs serving RS. + MB. at a load where
/// queueing matters (the acceptance scenario of this subsystem).
cluster_config colocation_cfg() {
    soc_instance_config inst;
    inst.pol = sim::policy::camdn_full;
    inst.slots = 2;
    inst.admission_queue_limit = runtime::unbounded_queue;
    auto cfg = uniform_cluster(4, inst);
    cfg.models = {&model::model_by_abbr("RS."), &model::model_by_abbr("MB.")};
    cfg.arrival_rate_per_ms = 6.0;
    cfg.total_arrivals = 96;
    cfg.seed = 7;
    return cfg;
}

void expect_identical(const cluster_result& a, const cluster_result& b) {
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped_queue, b.dropped_queue);
    EXPECT_EQ(a.dropped_unroutable, b.dropped_unroutable);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.resident_models, b.resident_models);
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p50(), b.fleet_latency_ms.p50());
    EXPECT_DOUBLE_EQ(a.fleet_latency_ms.p99(), b.fleet_latency_ms.p99());
    ASSERT_EQ(a.per_soc.size(), b.per_soc.size());
    for (std::size_t s = 0; s < a.per_soc.size(); ++s) {
        const auto& ra = a.per_soc[s];
        const auto& rb = b.per_soc[s];
        EXPECT_EQ(ra.makespan, rb.makespan);
        EXPECT_EQ(ra.dram_total_bytes, rb.dram_total_bytes);
        EXPECT_EQ(ra.rejected_arrivals, rb.rejected_arrivals);
        ASSERT_EQ(ra.completions.size(), rb.completions.size());
        for (std::size_t i = 0; i < ra.completions.size(); ++i) {
            EXPECT_EQ(ra.completions[i].abbr, rb.completions[i].abbr);
            EXPECT_EQ(ra.completions[i].arrival, rb.completions[i].arrival);
            EXPECT_EQ(ra.completions[i].start, rb.completions[i].start);
            EXPECT_EQ(ra.completions[i].end, rb.completions[i].end);
            EXPECT_EQ(ra.completions[i].dram_bytes, rb.completions[i].dram_bytes);
        }
    }
}

// ---- placement ----

TEST(placement, every_model_is_hosted_somewhere) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    ASSERT_EQ(place.hosts.size(), cfg.models.size());
    for (const auto& hosts : place.hosts) EXPECT_FALSE(hosts.empty());
}

TEST(placement, respects_cache_capacity_when_feasible) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    EXPECT_FALSE(place.oversubscribed);
    for (std::size_t s = 0; s < cfg.socs.size(); ++s) {
        std::uint64_t used = 0;
        for (auto m : place.resident[s]) used += place.footprint_pages[s][m];
        EXPECT_LE(used, place.capacity_pages[s]) << "SoC " << s;
    }
}

TEST(placement, honors_replication_limit) {
    auto cfg = colocation_cfg();
    cfg.replication_limit = 2;
    const auto place = plan_placement(cfg);
    for (const auto& hosts : place.hosts) {
        EXPECT_GE(hosts.size(), 1u);
        EXPECT_LE(hosts.size(), 2u);
    }
}

TEST(placement, replicates_up_to_capacity_without_a_limit) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    // Two small models on four 16MB SoCs: everything fits everywhere.
    for (const auto& hosts : place.hosts) EXPECT_EQ(hosts.size(), 4u);
}

TEST(placement, smaller_cache_means_fewer_pages) {
    auto cfg = colocation_cfg();
    cfg.socs[2].soc.cache.total_bytes = mib(8);
    const auto place = plan_placement(cfg);
    EXPECT_LT(place.capacity_pages[2], place.capacity_pages[0]);
}

TEST(placement, footprints_and_reuse_are_populated) {
    auto cfg = colocation_cfg();
    const auto place = plan_placement(cfg);
    for (std::size_t s = 0; s < cfg.socs.size(); ++s)
        for (std::size_t m = 0; m < cfg.models.size(); ++m) {
            EXPECT_GE(place.footprint_pages[s][m], 1u);
            EXPECT_GE(place.reused_fraction[s][m], 0.0);
            EXPECT_LE(place.reused_fraction[s][m], 1.0);
        }
}

// ---- router ----

TEST(router, round_robin_cycles_through_the_replica_set) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::round_robin;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    std::vector<std::uint64_t> hits(cfg.socs.size(), 0);
    for (int i = 0; i < 8; ++i) {
        const auto s = router.route(static_cast<cycle_t>(i) * 1000, 0);
        ASSERT_GE(s, 0);
        hits[static_cast<std::size_t>(s)] += 1;
    }
    for (auto h : hits) EXPECT_EQ(h, 2u);  // 8 arrivals over 4 hosts
}

TEST(router, least_outstanding_avoids_the_busy_soc) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::least_outstanding;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    // Saturate SoC picked first, then expect the next picks to spread.
    const auto first = router.route(0, 0);
    const auto second = router.route(0, 0);
    const auto third = router.route(0, 0);
    EXPECT_NE(first, second);
    EXPECT_NE(second, third);
    EXPECT_NE(first, third);
}

TEST(router, cache_affinity_sticks_to_the_warm_host_under_light_load) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::cache_affinity;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    const auto first = router.route(0, 0);
    ASSERT_GE(first, 0);
    // Far apart in time (no backlog): the model stays on its warm host.
    const auto second = router.route(ms_to_cycles(50.0), 0);
    const auto third = router.route(ms_to_cycles(100.0), 0);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, third);
    EXPECT_TRUE(router.warm(static_cast<std::uint32_t>(first), 0));
}

TEST(router, cache_affinity_separates_models_across_socs) {
    auto cfg = colocation_cfg();
    cfg.router = route_policy::cache_affinity;
    const auto place = plan_placement(cfg);
    request_router router(cfg, place);
    const auto home0 = router.route(0, 0);
    const auto home1 = router.route(1, 1);
    EXPECT_NE(home0, home1);  // second model steers clear of the busy host
}

TEST(router, mapping_snapshot_covers_every_placed_pair) {
    auto cfg = colocation_cfg();
    plan_placement(cfg);  // warms the registry
    const auto snap = sim::snapshot_mappings();
    for (const auto& inst : cfg.socs)
        for (const auto* m : cfg.models)
            EXPECT_NE(snap.find(*m, inst.soc.mapper()), nullptr);
}

// ---- cluster simulation ----

TEST(cluster, conserves_every_arrival) {
    auto cfg = colocation_cfg();
    cfg.socs[0].admission_queue_limit = 1;  // force some queue drops
    cfg.socs[1].admission_queue_limit = 1;
    const auto res = run_cluster(cfg);
    EXPECT_EQ(res.arrivals, cfg.total_arrivals);
    EXPECT_EQ(res.arrivals, res.completed + res.dropped_queue +
                                res.dropped_unroutable);
    std::uint64_t tenant_routed = 0, tenant_completed = 0;
    for (const auto& [abbr, tenant] : res.tenants) {
        tenant_routed += tenant.routed;
        tenant_completed += tenant.completed;
        EXPECT_EQ(tenant.dropped, tenant.routed - tenant.completed);
    }
    EXPECT_EQ(tenant_routed, res.arrivals - res.dropped_unroutable);
    EXPECT_EQ(tenant_completed, res.completed);
}

TEST(cluster, fleet_percentiles_cover_every_completion) {
    const auto res = run_cluster(colocation_cfg());
    EXPECT_EQ(res.fleet_latency_ms.count(), res.completed);
    EXPECT_GT(res.fleet_latency_ms.p99(), 0.0);
    EXPECT_GE(res.fleet_latency_ms.p99(), res.fleet_latency_ms.p50());
    EXPECT_GT(res.throughput_per_s(), 0.0);
}

TEST(cluster, zero_capacity_admission_queues_drop_everything) {
    auto cfg = colocation_cfg();
    for (auto& inst : cfg.socs) inst.admission_queue_limit = 0;
    const auto res = run_cluster(cfg);
    EXPECT_EQ(res.completed, 0u);
    EXPECT_EQ(res.dropped_queue, cfg.total_arrivals);
    EXPECT_DOUBLE_EQ(res.drop_rate(), 1.0);
}

TEST(cluster, empty_fleet_throws) {
    EXPECT_THROW(run_cluster(cluster_config{}), std::invalid_argument);
}

TEST(cluster, heterogeneous_fleet_serves_with_skewed_mix) {
    auto cfg = colocation_cfg();
    cfg.socs[2].soc.cache.total_bytes = mib(8);
    cfg.socs[3].soc.cache.total_bytes = mib(8);
    cfg.traffic_share = {3.0, 1.0};
    cfg.total_arrivals = 48;
    const auto res = run_cluster(cfg);
    EXPECT_EQ(res.completed, 48u);
    // The skew must show up in per-tenant routing (~75% / ~25%).
    EXPECT_GT(res.tenants.at("RS.").routed, res.tenants.at("MB.").routed);
}

TEST(cluster, partial_traffic_share_defaults_missing_models_to_one) {
    auto cfg = colocation_cfg();
    cfg.traffic_share = {2.0};  // MB. unspecified -> weight 1 (2:1 mix)
    const auto w = traffic_weights(cfg);
    ASSERT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w[0], 2.0);
    EXPECT_DOUBLE_EQ(w[1], 1.0);
    cfg.total_arrivals = 48;
    const auto res = run_cluster(cfg);
    EXPECT_GT(res.tenants.at("MB.").routed, 0u);  // not starved
    EXPECT_GT(res.tenants.at("RS.").routed, res.tenants.at("MB.").routed);
}

TEST(cluster, all_zero_traffic_mix_throws) {
    auto cfg = colocation_cfg();
    cfg.traffic_share = {0.0, 0.0};
    EXPECT_THROW(run_cluster(cfg), std::invalid_argument);
    EXPECT_THROW(plan_placement(cfg), std::invalid_argument);
}

TEST(cluster, bit_identical_across_repeated_runs) {
    const auto cfg = colocation_cfg();
    expect_identical(run_cluster(cfg), run_cluster(cfg));
}

TEST(cluster, bit_identical_across_sweep_pool_widths) {
    auto cfg = colocation_cfg();
    cfg.threads = 1;
    const auto sequential = run_cluster(cfg);
    cfg.threads = 4;
    const auto parallel = run_cluster(cfg);
    expect_identical(sequential, parallel);
}

TEST(cluster, seed_changes_the_stream) {
    auto cfg = colocation_cfg();
    const auto a = run_cluster(cfg);
    cfg.seed = 1234;
    const auto b = run_cluster(cfg);
    EXPECT_NE(a.makespan, b.makespan);
}

// ---- the headline: affinity routing beats round robin on tail latency ----

TEST(cluster, cache_affinity_beats_round_robin_on_fleet_p99) {
    // >= 2 models colocated on >= 4 SoCs at a fixed seed, loaded enough
    // that routing quality shows up as queueing. Round robin is load- and
    // cache-blind; affinity keeps each model on a stable warm subset.
    auto cfg = colocation_cfg();
    cfg.router = route_policy::round_robin;
    const auto rr = run_cluster(cfg);
    cfg.router = route_policy::cache_affinity;
    const auto aff = run_cluster(cfg);

    ASSERT_EQ(rr.completed, cfg.total_arrivals);
    ASSERT_EQ(aff.completed, cfg.total_arrivals);
    EXPECT_LT(aff.fleet_latency_ms.p99(), rr.fleet_latency_ms.p99());
    EXPECT_LT(aff.fleet_latency_ms.p95(), rr.fleet_latency_ms.p95());
}

}  // namespace
}  // namespace camdn::serve

// Checkpoint/restore suite (ctest label: checkpoint).
//
// Covers the resumable scheduler end to end:
//   * resume equivalence — splitting a run at randomized (seeded)
//     *non-quiescent* cycles (mid-layer: tiles, DMA chunks and page
//     negotiations in flight), serializing, and resuming in a fresh
//     scheduler is bit-identical to the unsplit run (makespan, every
//     completion record, cache/DRAM stats, queue delays, telemetry
//     counters) for closed_loop (with think time), open_loop_poisson,
//     open_loop_mmpp, tenant_churn and closed_loop_churn workloads;
//   * snapshot round-trip — encode -> decode -> re-encode is byte-equal
//     including the in-flight engine and typed-event sections, and
//     malformed input (truncation, bad magic, version skew — legacy v1
//     with an explicit message — trailing garbage, wrong configuration)
//     is rejected with snapshot_error;
//   * warm resume — a new trace segment on the warm machine keeps the
//     clock and cache warmth; time-sliced cluster rounds carry mid-layer
//     state deterministically across sweep-pool widths;
//   * the drained-run makespan fix — the cancellable bandwidth-epoch
//     timer stops the MoCA epoch chain once the run drains, so the
//     makespan is the last real event.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cache/cpt.h"
#include "cache/page_allocator.h"
#include "common/rng.h"
#include "model/model_zoo.h"
#include "runtime/scheduler.h"
#include "runtime/scheduler_snapshot.h"
#include "runtime/workload.h"
#include "serve/cluster.h"
#include "sim/experiment.h"

namespace camdn {
namespace {

using runtime::resume_mode;
using runtime::scheduler_snapshot;
using sim::experiment_config;
using sim::experiment_result;

// ---- result comparison ------------------------------------------------

void expect_identical(const experiment_result& a, const experiment_result& b) {
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dram_total_bytes, b.dram_total_bytes);
    EXPECT_EQ(a.rejected_arrivals, b.rejected_arrivals);

    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        const auto& x = a.completions[i];
        const auto& y = b.completions[i];
        EXPECT_EQ(x.slot, y.slot) << "completion " << i;
        EXPECT_EQ(x.abbr, y.abbr) << "completion " << i;
        EXPECT_EQ(x.arrival, y.arrival) << "completion " << i;
        EXPECT_EQ(x.start, y.start) << "completion " << i;
        EXPECT_EQ(x.end, y.end) << "completion " << i;
        EXPECT_EQ(x.dram_bytes, y.dram_bytes) << "completion " << i;
        EXPECT_EQ(x.cores, y.cores) << "completion " << i;
    }

    EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
    EXPECT_EQ(a.cache_stats.misses, b.cache_stats.misses);
    EXPECT_EQ(a.cache_stats.evictions, b.cache_stats.evictions);
    EXPECT_EQ(a.cache_stats.inter_task_evictions,
              b.cache_stats.inter_task_evictions);
    EXPECT_EQ(a.cache_stats.region_reads, b.cache_stats.region_reads);
    EXPECT_EQ(a.cache_stats.region_fills, b.cache_stats.region_fills);
    EXPECT_EQ(a.cache_stats.bypass_reads, b.cache_stats.bypass_reads);
    EXPECT_EQ(a.cache_stats.multicast_combined,
              b.cache_stats.multicast_combined);
    EXPECT_EQ(a.cache_stats.slice_busy_cycles,
              b.cache_stats.slice_busy_cycles);
    EXPECT_EQ(a.dram_stats.reads, b.dram_stats.reads);
    EXPECT_EQ(a.dram_stats.writes, b.dram_stats.writes);
    EXPECT_EQ(a.dram_stats.row_hits, b.dram_stats.row_hits);
    EXPECT_EQ(a.dram_stats.row_misses, b.dram_stats.row_misses);
    EXPECT_EQ(a.dram_stats.throttled, b.dram_stats.throttled);
    EXPECT_EQ(a.dram_stats.bus_busy_deci, b.dram_stats.bus_busy_deci);

    EXPECT_EQ(a.queue_delay_ms.count(), b.queue_delay_ms.count());
    EXPECT_DOUBLE_EQ(a.queue_delay_ms.p50(), b.queue_delay_ms.p50());
    EXPECT_DOUBLE_EQ(a.queue_delay_ms.p99(), b.queue_delay_ms.p99());

    ASSERT_EQ(a.telemetry.size(), b.telemetry.size());
    for (std::size_t e = 0; e < a.telemetry.size(); ++e) {
        const auto& x = a.telemetry[e];
        const auto& y = b.telemetry[e];
        EXPECT_EQ(x.index, y.index) << "epoch " << e;
        EXPECT_EQ(x.start, y.start) << "epoch " << e;
        EXPECT_EQ(x.end, y.end) << "epoch " << e;
        EXPECT_EQ(x.dram_bytes, y.dram_bytes) << "epoch " << e;
        EXPECT_EQ(x.dram_throttled, y.dram_throttled) << "epoch " << e;
        EXPECT_EQ(x.idle_pages, y.idle_pages) << "epoch " << e;
        EXPECT_EQ(x.active_slots, y.active_slots) << "epoch " << e;
        ASSERT_EQ(x.tasks.size(), y.tasks.size());
        for (std::size_t s = 0; s < x.tasks.size(); ++s) {
            const auto& cx = x.tasks[s];
            const auto& cy = y.tasks[s];
            EXPECT_EQ(cx.cache_hits, cy.cache_hits) << e << "/" << s;
            EXPECT_EQ(cx.cache_misses, cy.cache_misses) << e << "/" << s;
            EXPECT_EQ(cx.region_lines, cy.region_lines) << e << "/" << s;
            EXPECT_EQ(cx.fill_lines, cy.fill_lines) << e << "/" << s;
            EXPECT_EQ(cx.dma_bytes, cy.dma_bytes) << e << "/" << s;
            EXPECT_EQ(cx.layers_retired, cy.layers_retired) << e << "/" << s;
            EXPECT_EQ(cx.compute_cycles, cy.compute_cycles) << e << "/" << s;
            EXPECT_EQ(cx.page_wait_cycles, cy.page_wait_cycles)
                << e << "/" << s;
            EXPECT_EQ(cx.page_timeouts, cy.page_timeouts) << e << "/" << s;
            EXPECT_EQ(cx.completions, cy.completions) << e << "/" << s;
            EXPECT_EQ(cx.slack_cycles, cy.slack_cycles) << e << "/" << s;
        }
    }
}

// ---- split-run driver -------------------------------------------------

/// Runs `cfg` in segments: at each boundary the run pauses (when a pause
/// point at/after it exists before completion), the state is serialized to
/// bytes, decoded, and resumed in a brand-new scheduler with a brand-new
/// generator. Returns the final result; counts actual pauses and — the
/// typed-event engine's whole point — the pauses taken mid-flight, with
/// inferences running and layers split mid-tile.
experiment_result run_split(const experiment_config& cfg,
                            const std::vector<cycle_t>& boundaries,
                            std::size_t* pauses = nullptr,
                            std::size_t* midflight = nullptr) {
    auto gen = runtime::make_workload_generator(cfg);
    auto sched = std::make_unique<runtime::scheduler>(cfg, *gen);
    for (const cycle_t b : boundaries) {
        if (!sched->run_segment(b)) break;  // workload completed first
        if (pauses) ++*pauses;
        const std::vector<std::uint8_t> bytes = sched->save().encode();
        const scheduler_snapshot snap = scheduler_snapshot::decode(bytes);
        if (midflight && !snap.running.empty()) ++*midflight;
        gen = runtime::make_workload_generator(cfg);
        sched = std::make_unique<runtime::scheduler>(cfg, *gen, snap,
                                                     resume_mode::exact);
    }
    return sched->run();
}

/// ~10 seeded boundaries spread over the continuous run's makespan.
std::vector<cycle_t> seeded_boundaries(cycle_t makespan, std::uint64_t seed,
                                       std::size_t count = 10) {
    rng r(seed);
    std::vector<cycle_t> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(1 + r.next_below(std::max<cycle_t>(makespan, 2) - 1));
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<const model::model*> small_catalog() {
    return {&model::model_by_abbr("MB."), &model::model_by_abbr("EF.")};
}

experiment_config base_cfg() {
    experiment_config cfg;
    cfg.workload = small_catalog();
    cfg.co_located = 2;
    cfg.telemetry = true;
    cfg.seed = 17;
    return cfg;
}

void check_resume_equivalence(const experiment_config& cfg,
                              std::uint64_t boundary_seed) {
    const experiment_result continuous = sim::run_experiment(cfg);
    const auto boundaries =
        seeded_boundaries(continuous.makespan, boundary_seed);
    std::size_t pauses = 0;
    std::size_t midflight = 0;
    const experiment_result split =
        run_split(cfg, boundaries, &pauses, &midflight);
    // A reasonable share of the boundaries must genuinely pause mid-run —
    // otherwise the property degenerates to comparing two continuous runs.
    EXPECT_GE(pauses, 3u) << "too few mid-run checkpoint boundaries";
    // And most of those must be *non-quiescent*: the seeded cycles land
    // inside layers, so the snapshots carry running inferences, layer-run
    // cursors and DMA flights — the mid-layer property under test.
    EXPECT_GE(midflight, 3u) << "too few mid-flight (non-quiescent) pauses";
    expect_identical(continuous, split);
}

// ---- resume equivalence per workload generator ------------------------

TEST(checkpoint, resume_equivalence_closed_loop_with_think_time) {
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::closed_loop;
    cfg.pol = sim::policy::moca;  // exercises the bw-epoch timer re-arm
    cfg.inferences_per_slot = 4;
    cfg.think_time_ms = 1.0;
    check_resume_equivalence(cfg, 101);
}

TEST(checkpoint, resume_equivalence_open_loop_poisson) {
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.pol = sim::policy::camdn_full;
    cfg.arrival_rate_per_ms = 1.0;
    cfg.total_arrivals = 12;
    cfg.admission_queue_limit = 4;
    check_resume_equivalence(cfg, 202);
}

TEST(checkpoint, resume_equivalence_open_loop_mmpp) {
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::open_loop_mmpp;
    cfg.pol = sim::policy::camdn_adaptive;  // controller state must carry
    cfg.arrival_rate_per_ms = 1.0;
    cfg.mmpp_rate_scale = {0.25, 3.0};
    cfg.mmpp_sojourn_ms = 3.0;
    cfg.total_arrivals = 12;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    check_resume_equivalence(cfg, 303);
}

TEST(checkpoint, resume_equivalence_tenant_churn) {
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::tenant_churn;
    cfg.pol = sim::policy::camdn_full;
    cfg.qos_mode = true;  // deadline bookkeeping must carry too
    cfg.workload = {&model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
                    &model::model_by_abbr("RS."),
                    &model::model_by_abbr("VT.")};
    cfg.arrival_rate_per_ms = 0.6;
    cfg.churn_interval_ms = 4.0;
    cfg.churn_active_models = 2;
    cfg.total_arrivals = 12;
    cfg.admission_queue_limit = 8;
    check_resume_equivalence(cfg, 404);
}

TEST(checkpoint, resume_equivalence_three_slots_mid_layer) {
    // Three concurrent slots put three layer runs in one snapshot at once
    // (regression: the engine-section record stride must match exactly, or
    // multi-slot snapshots with little DMA state are rejected as
    // truncated).
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.pol = sim::policy::camdn_full;
    cfg.co_located = 3;
    cfg.arrival_rate_per_ms = 2.0;  // saturating: all slots stay busy
    cfg.total_arrivals = 15;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    check_resume_equivalence(cfg, 606);
}

TEST(checkpoint, resume_equivalence_closed_loop_churn_hybrid) {
    // The hybrid generator swaps a slot's model mid-run (CPT teardown
    // under adaptation) while re-dispatching closed-loop with think time;
    // mid-layer splits must still be bit-identical.
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::closed_loop_churn;
    cfg.pol = sim::policy::camdn_adaptive;
    cfg.workload = {&model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
                    &model::model_by_abbr("RS."),
                    &model::model_by_abbr("VT.")};
    cfg.inferences_per_slot = 4;
    cfg.think_time_ms = 1.0;
    cfg.churn_interval_ms = 4.0;
    cfg.churn_active_models = 2;
    check_resume_equivalence(cfg, 505);
}

TEST(checkpoint, repeated_boundaries_round_trip_without_progress) {
    // Boundaries that all land before the first quiescent instant after
    // the first one collapse onto the same checkpoint: every extra
    // boundary exercises a save/encode/decode/resume cycle with no
    // simulation progress in between, and the result must still match.
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.pol = sim::policy::camdn_full;
    cfg.arrival_rate_per_ms = 0.5;
    cfg.total_arrivals = 6;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    const experiment_result continuous = sim::run_experiment(cfg);
    const cycle_t mid = continuous.makespan / 2;
    const experiment_result split =
        run_split(cfg, {mid, mid, mid, mid + 1, mid + 2});
    expect_identical(continuous, split);
}

// ---- snapshot round-trip and rejection --------------------------------

scheduler_snapshot mid_run_snapshot(const experiment_config& cfg,
                                    cycle_t boundary) {
    auto gen = runtime::make_workload_generator(cfg);
    runtime::scheduler sched(cfg, *gen);
    EXPECT_TRUE(sched.run_segment(boundary));
    return sched.save();
}

experiment_config roundtrip_cfg() {
    auto cfg = base_cfg();
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.pol = sim::policy::camdn_adaptive;
    cfg.arrival_rate_per_ms = 0.8;
    cfg.total_arrivals = 8;
    cfg.admission_queue_limit = 8;
    return cfg;
}

TEST(checkpoint, snapshot_reencode_is_byte_identical) {
    const auto cfg = roundtrip_cfg();
    const auto snap = mid_run_snapshot(cfg, ms_to_cycles(2.0));
    const auto bytes = snap.encode();
    const auto decoded = scheduler_snapshot::decode(bytes);
    const auto bytes2 = decoded.encode();
    ASSERT_EQ(bytes.size(), bytes2.size());
    EXPECT_EQ(bytes, bytes2);
    // The mid-run snapshot is non-trivial: warm machine state is present.
    EXPECT_FALSE(decoded.machine.empty());
    EXPECT_FALSE(decoded.telemetry.empty());
    EXPECT_FALSE(decoded.controller.empty());
    EXPECT_FALSE(decoded.workload.empty());
    EXPECT_GT(decoded.now, 0u);
}

TEST(checkpoint, mid_layer_snapshot_carries_in_flight_state) {
    // Walk pause points until one lands with an inference mid-layer; the
    // snapshot must then carry the running slot, a layer-run cursor or DMA
    // flight in the engine section, and pending typed events — and still
    // re-encode byte-identically.
    const auto cfg = roundtrip_cfg();
    auto gen = runtime::make_workload_generator(cfg);
    runtime::scheduler sched(cfg, *gen);
    scheduler_snapshot snap;
    bool found = false;
    for (cycle_t b = ms_to_cycles(0.5); sched.run_segment(b);
         b += ms_to_cycles(0.25)) {
        snap = sched.save();
        if (!snap.running.empty()) {
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no pause point landed mid-inference";
    EXPECT_FALSE(snap.engine.empty());
    EXPECT_FALSE(snap.typed_events.empty());
    const auto bytes = snap.encode();
    EXPECT_EQ(bytes, scheduler_snapshot::decode(bytes).encode());

    // The in-flight slot's busy cores are accounted: cores split between
    // the free stack and the running records exactly.
    std::size_t assigned = 0;
    for (const auto& rs : snap.running) {
        EXPECT_FALSE(rs.model.empty());
        EXPECT_EQ(rs.cores.size(), rs.core_busy_since.size());
        assigned += rs.cores.size();
    }
    EXPECT_EQ(snap.free_cores.size() + assigned, cfg.soc.npu.cores);
}

TEST(checkpoint, legacy_version1_snapshots_are_rejected_with_clear_error) {
    const auto cfg = roundtrip_cfg();
    auto bytes = mid_run_snapshot(cfg, ms_to_cycles(2.0)).encode();
    // Rewrite the version field (little-endian u32 at offset 4) to 1.
    bytes[4] = 1;
    bytes[5] = bytes[6] = bytes[7] = 0;
    try {
        scheduler_snapshot::decode(bytes);
        FAIL() << "legacy v1 snapshot accepted";
    } catch (const snapshot_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("version 1"), std::string::npos) << what;
        EXPECT_NE(what.find("legacy"), std::string::npos) << what;
    }
}

TEST(checkpoint, truncated_snapshots_are_rejected) {
    const auto cfg = roundtrip_cfg();
    const auto bytes = mid_run_snapshot(cfg, ms_to_cycles(2.0)).encode();
    ASSERT_GT(bytes.size(), 64u);
    // Any strict prefix must throw, never crash or mis-parse. The header
    // is covered exhaustively; the (large) body by seeded sampling — the
    // full sweep would be quadratic in the snapshot size.
    std::vector<std::size_t> lengths;
    for (std::size_t len = 0; len < 64; ++len) lengths.push_back(len);
    rng r(7);
    for (int i = 0; i < 64; ++i)
        lengths.push_back(static_cast<std::size_t>(
            r.next_below(bytes.size() - 1)));
    lengths.push_back(bytes.size() - 1);
    for (const std::size_t len : lengths) {
        std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
        EXPECT_THROW(scheduler_snapshot::decode(cut), snapshot_error)
            << "prefix length " << len;
    }
}

TEST(checkpoint, bad_magic_version_and_trailing_bytes_are_rejected) {
    const auto cfg = roundtrip_cfg();
    const auto bytes = mid_run_snapshot(cfg, ms_to_cycles(2.0)).encode();

    auto corrupt = bytes;
    corrupt[0] ^= 0xff;  // magic
    try {
        scheduler_snapshot::decode(corrupt);
        FAIL() << "bad magic accepted";
    } catch (const snapshot_error& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }

    corrupt = bytes;
    corrupt[4] += 1;  // version
    try {
        scheduler_snapshot::decode(corrupt);
        FAIL() << "version skew accepted";
    } catch (const snapshot_error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }

    corrupt = bytes;
    corrupt.push_back(0);  // trailing garbage
    EXPECT_THROW(scheduler_snapshot::decode(corrupt), snapshot_error);
}

TEST(checkpoint, resume_rejects_mismatched_configurations) {
    const auto cfg = roundtrip_cfg();
    const auto snap = mid_run_snapshot(cfg, ms_to_cycles(2.0));

    // Different machine (slot count): both resume modes refuse.
    auto other = cfg;
    other.co_located = 4;
    auto gen = runtime::make_workload_generator(other);
    EXPECT_THROW(runtime::scheduler(other, *gen, snap, resume_mode::exact),
                 snapshot_error);
    EXPECT_THROW(runtime::scheduler(other, *gen, snap, resume_mode::warm),
                 snapshot_error);

    // Different arrival side (seed): exact refuses, warm accepts.
    auto reseeded = cfg;
    reseeded.seed = cfg.seed + 1;
    auto gen2 = runtime::make_workload_generator(reseeded);
    EXPECT_THROW(runtime::scheduler(reseeded, *gen2, snap, resume_mode::exact),
                 snapshot_error);
    EXPECT_NO_THROW(
        runtime::scheduler(reseeded, *gen2, snap, resume_mode::warm));
}

TEST(checkpoint, corrupt_but_well_formed_state_is_rejected) {
    const auto cfg = roundtrip_cfg();
    const auto snap = mid_run_snapshot(cfg, ms_to_cycles(2.0));

    // Duplicated free-core stack entry (one core dispatched twice).
    auto dup = snap;
    ASSERT_GE(dup.free_cores.size(), 2u);
    dup.free_cores[0] = dup.free_cores[1];
    auto gen = runtime::make_workload_generator(cfg);
    EXPECT_THROW(runtime::scheduler(cfg, *gen, dup, resume_mode::exact),
                 snapshot_error);

    // Page pool whose contents are not a permutation of the real pages:
    // byte-surgery on a serialized pool (u32 total, u64 count, then the
    // free list) duplicating the first free pcpn into the second slot.
    cache::cache_config cc;
    cache::page_allocator pool(cc);
    snapshot_writer w;
    pool.save_state(w);
    auto bytes = w.take();
    ASSERT_GT(bytes.size(), 20u);
    for (int b = 0; b < 4; ++b) bytes[16 + b] = bytes[12 + b];
    snapshot_reader r(bytes);
    cache::page_allocator fresh(cc);
    EXPECT_THROW(fresh.restore_state(r), snapshot_error);

    // CPT entry mapping a physical page beyond the cache.
    cache::cache_page_table cpt(cc);
    snapshot_writer cw;
    cpt.save_state(cw);
    auto cbytes = cw.take();
    ASSERT_GT(cbytes.size(), 13u);
    for (int b = 0; b < 4; ++b) cbytes[8 + b] = 0xff;  // entry 0 pcpn
    cbytes[12] = 1;                                    // entry 0 valid
    snapshot_reader cr(cbytes);
    cache::cache_page_table fresh_cpt(cc);
    EXPECT_THROW(fresh_cpt.restore_state(cr), snapshot_error);
}

TEST(checkpoint, continuing_past_a_held_pause_lifts_the_hold) {
    // After a hold-dispatch pause, run() on the same scheduler must lift
    // the hold and dispatch the carried backlog — not finalize with the
    // queue still frozen.
    const auto* mb = &model::model_by_abbr("MB.");
    experiment_config seg;
    seg.workload = {mb};
    seg.co_located = 1;
    seg.pol = sim::policy::camdn_full;
    seg.kind = runtime::workload_kind::trace_replay;
    for (cycle_t i = 0; i < 4; ++i) seg.trace.push_back({1000 + i, mb});
    seg.admission_queue_limit = 8;

    auto gen = runtime::make_workload_generator(seg);
    runtime::scheduler sched(seg, *gen);
    ASSERT_TRUE(sched.run_segment_hold_dispatch(/*hold_after=*/1001));
    const auto res = sched.run();
    EXPECT_EQ(res.completions.size(), 4u);
}

TEST(checkpoint, exact_resume_of_a_held_snapshot_rearms_the_bw_chain) {
    // Hold-dispatch cancels the MoCA bandwidth-epoch chain before the
    // save; an exact resume must re-arm it (like a warm resume does), not
    // run the rest of the workload with bandwidth regulation dead.
    const auto* mb = &model::model_by_abbr("MB.");
    experiment_config seg;
    seg.workload = {mb};
    seg.co_located = 2;
    seg.pol = sim::policy::moca;
    seg.kind = runtime::workload_kind::trace_replay;
    for (cycle_t i = 0; i < 6; ++i) seg.trace.push_back({1000 + 10 * i, mb});
    seg.admission_queue_limit = 8;

    auto gen = runtime::make_workload_generator(seg);
    runtime::scheduler sched(seg, *gen);
    ASSERT_TRUE(sched.run_segment_hold_dispatch(/*hold_after=*/1005));
    const auto snap = sched.save();
    EXPECT_FALSE(snap.bw_timer_armed);
    ASSERT_FALSE(snap.admission_queue.empty());

    auto gen2 = runtime::make_workload_generator(seg);
    runtime::scheduler resumed(seg, *gen2, snap, resume_mode::exact);
    const auto res = resumed.run();
    EXPECT_EQ(res.completions.size(), 6u);
    // The chain ran after the resume: completions spaced more than one
    // bw epoch apart prove epochs kept firing without deadlocking, and
    // the run terminated (drain cancelled the re-armed chain again).
    EXPECT_GT(res.makespan, 1005u);
}

// ---- warm resume (new workload on the warm machine) -------------------

TEST(checkpoint, warm_resume_carries_clock_and_cache_warmth) {
    // Segment 1: a trace of MB. inferences on the transparent-path MoCA
    // policy populates the cache.
    const auto* mb = &model::model_by_abbr("MB.");
    experiment_config seg1;
    seg1.workload = {mb};
    seg1.co_located = 2;
    seg1.pol = sim::policy::moca;
    seg1.kind = runtime::workload_kind::trace_replay;
    for (int i = 0; i < 6; ++i)
        seg1.trace.push_back({ms_to_cycles(0.5) * (i + 1), mb});
    seg1.telemetry = true;

    runtime::scheduler_snapshot snap;
    const auto res1 =
        sim::run_experiment_segment(seg1, nullptr, &snap);
    ASSERT_EQ(res1.completions.size(), 6u);

    // Segment 2: the same trace shape, shifted past segment 1's end.
    experiment_config seg2 = seg1;
    seg2.trace.clear();
    for (int i = 0; i < 6; ++i)
        seg2.trace.push_back({snap.now + ms_to_cycles(0.5) * (i + 1), mb});

    const auto warm = sim::run_experiment_segment(seg2, &snap, nullptr);
    const auto cold = sim::run_experiment_segment(seg2, nullptr, nullptr);
    ASSERT_EQ(warm.completions.size(), 6u);
    ASSERT_EQ(cold.completions.size(), 6u);

    // The clock continued: segment 2 completions happen after segment 1.
    EXPECT_GT(warm.completions.front().start, res1.makespan);
    // Warmth: the resumed run's first-inference hit rate beats cold start.
    // (Cumulative stats carry, so compare the per-segment delta on warm.)
    const auto warm_delta_hits = warm.cache_stats.hits - res1.cache_stats.hits;
    const auto warm_delta_miss =
        warm.cache_stats.misses - res1.cache_stats.misses;
    const double warm_rate =
        static_cast<double>(warm_delta_hits) /
        static_cast<double>(warm_delta_hits + warm_delta_miss);
    const double cold_rate =
        static_cast<double>(cold.cache_stats.hits) /
        static_cast<double>(cold.cache_stats.hits + cold.cache_stats.misses);
    EXPECT_GT(warm_rate, cold_rate);
    // Warm resume starts a fresh result: only segment-2 completions and
    // telemetry epochs are reported.
    EXPECT_FALSE(warm.telemetry.empty());
    EXPECT_EQ(warm.telemetry.front().index, 0u);
}

TEST(checkpoint, hold_dispatch_carries_the_admission_queue) {
    // Four back-to-back arrivals on one slot; dispatch is held just after
    // the first, so the remaining three pause in the admission queue and
    // ride the snapshot with their true arrival stamps.
    const auto* mb = &model::model_by_abbr("MB.");
    experiment_config seg;
    seg.workload = {mb};
    seg.co_located = 1;
    seg.pol = sim::policy::camdn_full;
    seg.kind = runtime::workload_kind::trace_replay;
    for (cycle_t i = 0; i < 4; ++i) seg.trace.push_back({1000 + i, mb});
    seg.admission_queue_limit = 8;

    auto gen = runtime::make_workload_generator(seg);
    runtime::scheduler sched(seg, *gen);
    ASSERT_TRUE(sched.run_segment_hold_dispatch(/*hold_after=*/1001));
    const auto res1 = sched.segment_result();
    const auto snap = sched.save();
    EXPECT_EQ(res1.completions.size(), 1u);  // dispatched before the hold
    ASSERT_EQ(snap.admission_queue.size(), 3u);
    EXPECT_EQ(snap.admission_queue.front().arrival, 1001u);
    EXPECT_EQ(snap.admission_queue.back().arrival, 1003u);

    // Snapshot round-trip keeps the queue; a warm resume with no further
    // arrivals drains exactly the carried backlog.
    const auto decoded = scheduler_snapshot::decode(snap.encode());
    experiment_config seg2 = seg;
    seg2.trace.clear();
    const auto res2 = sim::run_experiment_segment(seg2, &decoded, nullptr);
    ASSERT_EQ(res2.completions.size(), 3u);
    for (const auto& rec : res2.completions) {
        EXPECT_GE(rec.arrival, 1001u);  // true arrival stamps survived
        EXPECT_LE(rec.arrival, 1003u);
        EXPECT_GE(rec.start, snap.now);  // served at/after the resume
    }
}

// ---- time-sliced fleet rounds (serve::run_cluster) --------------------

serve::cluster_config time_sliced_cluster() {
    serve::soc_instance_config inst;
    inst.slots = 2;
    inst.admission_queue_limit = 32;
    auto cfg = serve::uniform_cluster(2, inst);
    cfg.models = {&model::model_by_abbr("MB."), &model::model_by_abbr("EF."),
                  &model::model_by_abbr("RS.")};
    cfg.arrival_rate_per_ms = 2.0;
    cfg.total_arrivals = 48;
    cfg.seed = 11;
    cfg.feedback_rounds = 4;
    cfg.round_cycles = ms_to_cycles(6.0);
    cfg.telemetry = true;
    cfg.threads = 1;
    return cfg;
}

TEST(checkpoint, time_sliced_rounds_are_deterministic_across_pool_widths) {
    auto cfg = time_sliced_cluster();
    const auto a = serve::run_cluster(cfg);
    cfg.threads = 4;
    const auto b = serve::run_cluster(cfg);

    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped_queue, b.dropped_queue);
    EXPECT_EQ(a.dropped_unroutable, b.dropped_unroutable);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.replacements, b.replacements);
    ASSERT_EQ(a.per_soc.size(), b.per_soc.size());
    for (std::size_t i = 0; i < a.per_soc.size(); ++i) {
        EXPECT_EQ(a.per_soc[i].makespan, b.per_soc[i].makespan) << i;
        EXPECT_EQ(a.per_soc[i].completions.size(),
                  b.per_soc[i].completions.size())
            << i;
    }
}

TEST(checkpoint, time_sliced_rounds_account_for_every_arrival) {
    // Rounds pause SoCs mid-layer, so intermediate per-SoC results hold
    // partial work — but across all rounds every routed arrival either
    // completes or is dropped at a full queue, exactly once.
    const auto cfg = time_sliced_cluster();
    const auto res = serve::run_cluster(cfg);
    EXPECT_EQ(res.arrivals, cfg.total_arrivals);
    EXPECT_EQ(res.completed + res.dropped_queue + res.dropped_unroutable,
              res.arrivals);
    // The slicing is real: rounds beyond the first exist and carry work.
    EXPECT_EQ(res.per_soc.size(), cfg.socs.size() * cfg.feedback_rounds);
    // Intermediate rounds paused at their windows: some round boundary
    // cut a SoC mid-run (its round makespan sits at the window edge while
    // later rounds continue past it).
    EXPECT_GT(res.makespan, cfg.round_cycles);
}

TEST(checkpoint, time_sliced_and_drain_sliced_complete_the_same_stream) {
    auto ts = time_sliced_cluster();
    auto ds = ts;
    ds.round_cycles = 0;  // drain-sliced legacy rounds
    const auto a = serve::run_cluster(ts);
    const auto b = serve::run_cluster(ds);
    // Same stream, same fleet: both serve every arrival (scheduling
    // differs, so latencies may — the invariant is accounting).
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed + a.dropped_queue + a.dropped_unroutable,
              a.arrivals);
    EXPECT_EQ(b.completed + b.dropped_queue + b.dropped_unroutable,
              b.arrivals);
}

// ---- drained-run makespan (cancellable bw-epoch timer) ----------------

TEST(checkpoint, drained_open_loop_run_does_not_inflate_makespan) {
    // MoCA re-arms its bandwidth epoch every cfg.bw_epoch cycles. Before
    // the cancellable timer, the pending epoch event dragged the clock past
    // the last completion on drained runs, inflating the makespan by up to
    // one epoch. The makespan must now be exactly the last completion.
    experiment_config cfg;
    cfg.workload = small_catalog();
    cfg.pol = sim::policy::moca;
    cfg.co_located = 2;
    cfg.kind = runtime::workload_kind::open_loop_poisson;
    cfg.arrival_rate_per_ms = 2.0;
    cfg.total_arrivals = 6;
    cfg.admission_queue_limit = runtime::unbounded_queue;
    cfg.bw_epoch = 50'000;

    const auto res = sim::run_experiment(cfg);
    ASSERT_EQ(res.completions.size(), 6u);
    cycle_t last_end = 0;
    for (const auto& rec : res.completions)
        last_end = std::max(last_end, rec.end);
    EXPECT_EQ(res.makespan, last_end);
}

TEST(checkpoint, closed_loop_think_time_zero_matches_legacy_exactly) {
    experiment_config cfg;
    cfg.workload = small_catalog();
    cfg.pol = sim::policy::camdn_full;
    cfg.co_located = 2;
    cfg.inferences_per_slot = 2;
    cfg.seed = 9;

    auto with_field = cfg;
    with_field.think_time_ms = 0.0;
    expect_identical(sim::run_experiment(cfg), sim::run_experiment(with_field));

    // A positive think time stretches the run but serves the same plan.
    auto thinking = cfg;
    thinking.think_time_ms = 1.0;
    const auto slow = sim::run_experiment(thinking);
    EXPECT_EQ(slow.completions.size(), 4u);
    EXPECT_GT(slow.makespan, sim::run_experiment(cfg).makespan);
}

}  // namespace
}  // namespace camdn
